(* Tests for the serializability certifier (§2.0): dependency-graph
   construction and the acyclicity criterion, on hand-built schedules
   including the paper's Figure 1 lost-update anomaly. *)

module Certifier = Hdd_core.Certifier
module G = Hdd_graph.Digraph

let checkb = Alcotest.check Alcotest.bool

let g ~segment ~key = Granule.make ~segment ~key

let x = g ~segment:0 ~key:0
let y = g ~segment:0 ~key:1

let test_empty_schedule () =
  let log = Sched_log.create () in
  checkb "empty schedule serializable" true (Certifier.serializable log)

let test_read_dependency () =
  (* t1 writes x^5; t2 reads it: t2 depends on t1 *)
  let log = Sched_log.create () in
  Sched_log.log_write log ~txn:1 ~granule:x ~version:5;
  Sched_log.log_read log ~txn:2 ~granule:x ~version:5;
  let dg = Certifier.dependency_graph log in
  checkb "t2 -> t1" true (G.mem_arc dg 2 1);
  checkb "serializable" true (Certifier.serializable log)

let test_overwrite_dependency () =
  (* t1 reads x^0 (bootstrap); t2 writes x^7 whose predecessor is x^0:
     t2 depends on t1 *)
  let log = Sched_log.create () in
  Sched_log.log_read log ~txn:1 ~granule:x ~version:0;
  Sched_log.log_write log ~txn:2 ~granule:x ~version:7;
  let dg = Certifier.dependency_graph log in
  checkb "t2 -> t1" true (G.mem_arc dg 2 1);
  checkb "t1 -> bootstrap" true (G.mem_arc dg 1 0)

let test_own_version_no_arc () =
  let log = Sched_log.create () in
  Sched_log.log_write log ~txn:1 ~granule:x ~version:5;
  Sched_log.log_read log ~txn:1 ~granule:x ~version:5;
  let dg = Certifier.dependency_graph log in
  checkb "no self arc" false (G.mem_arc dg 1 1);
  checkb "serializable" true (Certifier.serializable log)

(* Figure 1: the lost update.  Both transactions read the initial
   balance x^0, then each installs its own update (versions 5 and 6).
   Version-order arcs give t1 -> t2 (t1 wrote a version over what t2
   read) and t2 -> t1 symmetrically: a cycle, hence not one-copy
   serializable. *)
let test_lost_update_cycle () =
  let log = Sched_log.create () in
  Sched_log.log_read log ~txn:1 ~granule:x ~version:0;
  Sched_log.log_read log ~txn:2 ~granule:x ~version:0;
  Sched_log.log_write log ~txn:1 ~granule:x ~version:5;
  Sched_log.log_write log ~txn:2 ~granule:x ~version:6;
  let dg = Certifier.dependency_graph log in
  checkb "t1 -> t2 (t1 overwrote what t2 read)" true (G.mem_arc dg 1 2);
  checkb "t2 -> t1 (t2 overwrote what t1 read)" true (G.mem_arc dg 2 1);
  let verdict = Certifier.certify log in
  checkb "not serializable" false verdict.Certifier.serializable;
  match verdict.Certifier.cycle with
  | Some cycle -> checkb "cycle witness nonempty" true (List.length cycle >= 2)
  | None -> Alcotest.fail "cycle witness expected"

let test_serial_order () =
  let log = Sched_log.create () in
  Sched_log.log_write log ~txn:1 ~granule:x ~version:5;
  Sched_log.log_read log ~txn:2 ~granule:x ~version:5;
  Sched_log.log_write log ~txn:2 ~granule:y ~version:6;
  Sched_log.log_read log ~txn:3 ~granule:y ~version:6;
  (match Certifier.equivalent_serial_order log with
  | Some order ->
    let pos t = Option.get (List.find_index (Int.equal t) order) in
    checkb "t1 before t2" true (pos 1 < pos 2);
    checkb "t2 before t3" true (pos 2 < pos 3)
  | None -> Alcotest.fail "serializable schedule must have an order");
  (* make it cyclic *)
  Sched_log.log_read log ~txn:3 ~granule:x ~version:0;
  Sched_log.log_write log ~txn:1 ~granule:x ~version:9
  |> fun () ->
  checkb "no order once cyclic" true
    (Certifier.equivalent_serial_order log = None)

let test_aborted_steps_excluded () =
  let log = Sched_log.create () in
  Sched_log.log_read log ~txn:1 ~granule:x ~version:0;
  Sched_log.log_write log ~txn:2 ~granule:x ~version:5;
  Sched_log.log_read log ~txn:2 ~granule:y ~version:0;
  Sched_log.log_write log ~txn:1 ~granule:y ~version:6;
  (* cyclic as logged; dropping t2 (aborted) removes the cycle *)
  checkb "cyclic before drop" false (Certifier.serializable log);
  Sched_log.drop_txn log 2;
  checkb "serializable after drop" true (Certifier.serializable log)

let test_bootstrap_node_present () =
  let log = Sched_log.create () in
  Sched_log.log_read log ~txn:5 ~granule:x ~version:0;
  let dg = Certifier.dependency_graph log in
  checkb "reader depends on bootstrap" true (G.mem_arc dg 5 0)

let suite =
  [ Alcotest.test_case "empty schedule" `Quick test_empty_schedule;
    Alcotest.test_case "read dependency" `Quick test_read_dependency;
    Alcotest.test_case "overwrite dependency" `Quick test_overwrite_dependency;
    Alcotest.test_case "own versions induce no arc" `Quick test_own_version_no_arc;
    Alcotest.test_case "lost update certifies cyclic" `Quick test_lost_update_cycle;
    Alcotest.test_case "equivalent serial order" `Quick test_serial_order;
    Alcotest.test_case "aborted steps excluded" `Quick test_aborted_steps_excluded;
    Alcotest.test_case "bootstrap node" `Quick test_bootstrap_node_present ]
