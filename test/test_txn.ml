(* Tests for the transaction substrate: logical clock, records, the
   activity registry's I_old / C_late queries, and the schedule log. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_clock_monotone () =
  let c = Time.Clock.create () in
  checki "starts at zero" 0 (Time.Clock.now c);
  let a = Time.Clock.tick c in
  let b = Time.Clock.tick c in
  checkb "strictly increasing" true (b > a && a > 0);
  checki "now tracks last tick" b (Time.Clock.now c)

let test_granule () =
  let g1 = Granule.make ~segment:1 ~key:5 in
  let g2 = Granule.make ~segment:1 ~key:5 in
  let g3 = Granule.make ~segment:2 ~key:5 in
  checkb "equal" true (Granule.equal g1 g2);
  checkb "not equal" false (Granule.equal g1 g3);
  checkb "compare orders by segment first" true (Granule.compare g1 g3 < 0);
  Alcotest.check Alcotest.string "printing" "D1/5" (Granule.to_string g1)

let test_txn_lifecycle () =
  let t = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:5 in
  checkb "active" true (Txn.is_active t);
  checkb "update" true (Txn.is_update t);
  Alcotest.check (Alcotest.option Alcotest.int) "class" (Some 0) (Txn.class_of t);
  Txn.commit t ~at:9;
  checkb "committed" true (Txn.is_committed t);
  Alcotest.check (Alcotest.option Alcotest.int) "end time" (Some 9) (Txn.end_time t);
  Alcotest.check_raises "double commit rejected"
    (Invalid_argument "Txn.commit: transaction 1 not active") (fun () ->
      Txn.commit t ~at:10)

let test_txn_commit_before_init_rejected () =
  let t = Txn.make ~id:2 ~kind:(Txn.Update 0) ~init:5 in
  Alcotest.check_raises "commit at init rejected"
    (Invalid_argument "Txn.commit: end time 5 not after initiation 5")
    (fun () -> Txn.commit t ~at:5)

let test_active_at () =
  let t = Txn.make ~id:3 ~kind:(Txn.Update 0) ~init:5 in
  checkb "before init" false (Txn.active_at t 4);
  checkb "at init (strict bound)" false (Txn.active_at t 5);
  checkb "just after init" true (Txn.active_at t 6);
  checkb "while open" true (Txn.active_at t 100);
  Txn.commit t ~at:10;
  checkb "before commit" true (Txn.active_at t 9);
  checkb "at commit" false (Txn.active_at t 10)

let test_read_only_txn () =
  let t = Txn.make ~id:4 ~kind:Txn.Read_only ~init:3 in
  checkb "not update" false (Txn.is_update t);
  Alcotest.check (Alcotest.option Alcotest.int) "no class" None (Txn.class_of t)

(* --- registry --- *)

let mk_registry () = Registry.create ~classes:3 ()

let test_registry_register_validation () =
  let r = mk_registry () in
  Alcotest.check_raises "read-only rejected"
    (Invalid_argument "Registry.register: read-only transaction") (fun () ->
      Registry.register r (Txn.make ~id:1 ~kind:Txn.Read_only ~init:1));
  Registry.register r (Txn.make ~id:2 ~kind:(Txn.Update 0) ~init:5);
  Alcotest.check_raises "initiation must increase"
    (Invalid_argument "Registry.register: initiation times must be increasing")
    (fun () ->
      Registry.register r (Txn.make ~id:3 ~kind:(Txn.Update 0) ~init:5))

let test_i_old_empty () =
  let r = mk_registry () in
  checki "no transactions: identity" 42 (Registry.i_old r ~class_id:0 ~at:42)

let test_i_old_basic () =
  let r = mk_registry () in
  let t1 = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:10 in
  let t2 = Txn.make ~id:2 ~kind:(Txn.Update 0) ~init:20 in
  Registry.register r t1;
  Registry.register r t2;
  (* both active at 25: oldest is t1 *)
  checki "oldest active at 25" 10 (Registry.i_old r ~class_id:0 ~at:25);
  (* before t1 started *)
  checki "identity before any initiation" 5 (Registry.i_old r ~class_id:0 ~at:5);
  Txn.commit t1 ~at:30;
  checki "t1 still counted at 25 (historic)" 10 (Registry.i_old r ~class_id:0 ~at:25);
  checki "after t1's commit the oldest is t2" 20
    (Registry.i_old r ~class_id:0 ~at:35);
  Txn.commit t2 ~at:40;
  checki "all finished: identity" 50 (Registry.i_old r ~class_id:0 ~at:50)

let test_i_old_ignores_other_classes () =
  let r = mk_registry () in
  Registry.register r (Txn.make ~id:1 ~kind:(Txn.Update 1) ~init:10);
  checki "class 0 unaffected" 15 (Registry.i_old r ~class_id:0 ~at:15);
  checki "class 1 sees it" 10 (Registry.i_old r ~class_id:1 ~at:15)

let test_i_old_aborted () =
  let r = mk_registry () in
  let t = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:10 in
  Registry.register r t;
  Txn.abort t ~at:12;
  checki "active until abort" 10 (Registry.i_old r ~class_id:0 ~at:11);
  checki "gone after abort" 20 (Registry.i_old r ~class_id:0 ~at:20)

let test_c_late_computable () =
  let r = mk_registry () in
  let t1 = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:10 in
  Registry.register r t1;
  (match Registry.c_late r ~class_id:0 ~at:15 with
  | Error id -> checki "blocked by t1" 1 id
  | Ok _ -> Alcotest.fail "should not be computable while t1 is active");
  checkb "computable flag" false (Registry.c_late_computable r ~class_id:0 ~at:15);
  Txn.commit t1 ~at:30;
  (match Registry.c_late r ~class_id:0 ~at:15 with
  | Ok v -> checki "latest commit spanning 15" 30 v
  | Error _ -> Alcotest.fail "computable after commit")

let test_c_late_no_spanning () =
  let r = mk_registry () in
  let t1 = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:10 in
  Registry.register r t1;
  Txn.commit t1 ~at:12;
  (* nothing active at 20 *)
  (match Registry.c_late r ~class_id:0 ~at:20 with
  | Ok v -> checki "identity when idle" 20 v
  | Error _ -> Alcotest.fail "computable");
  (* aborted transactions contribute their abort instant as an end time *)
  let t2 = Txn.make ~id:2 ~kind:(Txn.Update 0) ~init:30 in
  Registry.register r t2;
  Txn.abort t2 ~at:50;
  match Registry.c_late r ~class_id:0 ~at:35 with
  | Ok v -> checki "aborted window covered" 50 v
  | Error _ -> Alcotest.fail "computable"

let test_registry_active_count_and_prune () =
  let r = mk_registry () in
  let t1 = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:10 in
  let t2 = Txn.make ~id:2 ~kind:(Txn.Update 0) ~init:20 in
  Registry.register r t1;
  Registry.register r t2;
  checki "two active" 2 (Registry.active_count r ~class_id:0);
  Txn.commit t1 ~at:25;
  checki "one active" 1 (Registry.active_count r ~class_id:0);
  checki "two retained" 2 (List.length (Registry.transactions r ~class_id:0));
  Registry.prune r ~upto:25;
  checki "t1 pruned" 1 (List.length (Registry.transactions r ~class_id:0));
  (* t2 still active, never pruned *)
  Txn.commit t2 ~at:30;
  Registry.prune r ~upto:29;
  checki "t2 kept: finished after watermark" 1
    (List.length (Registry.transactions r ~class_id:0));
  Registry.prune r ~upto:30;
  checki "t2 pruned" 0 (List.length (Registry.transactions r ~class_id:0))

let test_registry_growth () =
  let r = mk_registry () in
  for i = 1 to 100 do
    Registry.register r (Txn.make ~id:i ~kind:(Txn.Update 2) ~init:i)
  done;
  checki "all retained" 100 (List.length (Registry.transactions r ~class_id:2));
  checki "oldest active" 1 (Registry.i_old r ~class_id:2 ~at:100)

(* --- schedule log --- *)

let g0 = Granule.make ~segment:0 ~key:0

let test_sched_log () =
  let log = Sched_log.create () in
  Sched_log.log_write log ~txn:1 ~granule:g0 ~version:5;
  Sched_log.log_read log ~txn:2 ~granule:g0 ~version:5;
  checki "two steps" 2 (Sched_log.length log);
  (match Sched_log.steps log with
  | [ w; r ] ->
    checkb "write first" true (w.Sched_log.action = Sched_log.Write);
    checkb "read second" true (r.Sched_log.action = Sched_log.Read);
    checki "read version" 5 r.Sched_log.version
  | _ -> Alcotest.fail "expected two steps");
  Sched_log.drop_txn log 1;
  (match Sched_log.steps log with
  | [ r ] -> checki "only the read survives" 2 r.Sched_log.txn
  | _ -> Alcotest.fail "expected one step after drop")

let suite =
  [ Alcotest.test_case "clock monotone" `Quick test_clock_monotone;
    Alcotest.test_case "granules" `Quick test_granule;
    Alcotest.test_case "transaction lifecycle" `Quick test_txn_lifecycle;
    Alcotest.test_case "commit-at-init rejected" `Quick test_txn_commit_before_init_rejected;
    Alcotest.test_case "active_at" `Quick test_active_at;
    Alcotest.test_case "read-only transactions" `Quick test_read_only_txn;
    Alcotest.test_case "registry: validation" `Quick test_registry_register_validation;
    Alcotest.test_case "registry: I_old on empty class" `Quick test_i_old_empty;
    Alcotest.test_case "registry: I_old basic" `Quick test_i_old_basic;
    Alcotest.test_case "registry: I_old per class" `Quick test_i_old_ignores_other_classes;
    Alcotest.test_case "registry: I_old with aborts" `Quick test_i_old_aborted;
    Alcotest.test_case "registry: C_late computability" `Quick test_c_late_computable;
    Alcotest.test_case "registry: C_late idle and aborted" `Quick test_c_late_no_spanning;
    Alcotest.test_case "registry: active count and prune" `Quick test_registry_active_count_and_prune;
    Alcotest.test_case "registry: growth" `Quick test_registry_growth;
    Alcotest.test_case "schedule log" `Quick test_sched_log ]
