(* Shared test fixtures. *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition

(* the paper's inventory decomposition: D0 reorders, D1 inventory, D2 events *)
let inventory_spec =
  Spec.make
    ~segments:[ "reorders"; "inventory"; "events" ]
    ~types:
      [ Spec.txn_type ~name:"type1" ~writes:[ 2 ] ~reads:[];
        Spec.txn_type ~name:"type2" ~writes:[ 1 ] ~reads:[ 1; 2 ];
        Spec.txn_type ~name:"type3" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ]

let inventory = Partition.build_exn inventory_spec

(* --- seeded stress-suite knobs ---

   Every engine-level stress suite reads its seed count from an
   environment variable (in-tree default 30, the nightly raises it into
   the hundreds) and scales worker/shard counts and workload profiles
   off the seed the same way; one copy of that arithmetic lives here. *)

let seeds_from_env ?(default = 30) var =
  match Sys.getenv_opt var with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> default)
  | None -> default

let scaled_workers seed = [| 2; 4; 8 |].(seed mod 3)

let stress_profile seed =
  [| Hdd_runtime.Differential.Abort_heavy;
     Hdd_runtime.Differential.Adhoc_read;
     Hdd_runtime.Differential.Mixed |].(seed / 3 mod 3)

(* --- golden-trace helpers --- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* The directory to (re)write goldens into, when the run asks for an
   update instead of a comparison. *)
let golden_update_dir () =
  match Sys.getenv_opt "HDD_GOLDEN_UPDATE" with
  | Some dir when dir <> "" && dir <> "0" -> Some dir
  | _ -> None

let contains s affix =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  m = 0 || go 0
