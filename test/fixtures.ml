(* Shared test fixtures. *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition

(* the paper's inventory decomposition: D0 reorders, D1 inventory, D2 events *)
let inventory_spec =
  Spec.make
    ~segments:[ "reorders"; "inventory"; "events" ]
    ~types:
      [ Spec.txn_type ~name:"type1" ~writes:[ 2 ] ~reads:[];
        Spec.txn_type ~name:"type2" ~writes:[ 1 ] ~reads:[ 1; 2 ];
        Spec.txn_type ~name:"type3" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ]

let inventory = Partition.build_exn inventory_spec
