(* The sharded engine: codec round-trip properties (1000 seeds,
   truncation at every byte, single-bit corruption), scripted
   publication faults over the loopback transport, the cross-shard
   differential stress at 2/4/8 shards (reduced seed count in-tree; CI
   nightly raises HDD_SHARD_SEEDS), byte-stable golden traces for the
   curated scenarios, and forged-trace regressions pinning that the
   oracle names the check that failed. *)

module Sh = Hdd_shard
module R = Hdd_runtime
module E = Hdd_runtime.Engine
module D = Hdd_runtime.Differential
module T = Hdd_obs.Trace
module TW = Hdd_core.Timewall
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- strided clocks --- *)

let test_sclock () =
  let shards = 3 in
  let cs = Array.init shards (fun me -> Sh.Sclock.create ~shards ~me) in
  let all = ref [] in
  for _ = 1 to 50 do
    Array.iteri
      (fun me c ->
        let t = Sh.Sclock.tick c in
        checki "stride residue" me (t mod shards);
        all := t :: !all;
        (* gossip the stamp to a random peer, as packets do *)
        Sh.Sclock.catch_up cs.((me + 1) mod shards) t)
      cs
  done;
  let n = List.length !all in
  checki "globally unique" n (List.length (List.sort_uniq compare !all))

(* --- random packets for the codec properties --- *)

let rand_snap prng =
  let classes = 1 + Prng.int prng 4 in
  Registry.snapshot_of_parts
    (Array.init classes (fun _ ->
         let t = ref (Prng.int prng 5) in
         let actives =
           List.init (Prng.int prng 4) (fun i ->
               t := !t + 1 + Prng.int prng 9;
               (100 + i, !t))
         in
         let wi = ref 0 and we = ref 0 in
         let windows =
           Array.init (Prng.int prng 5) (fun _ ->
               wi := !wi + 1 + Prng.int prng 7;
               we := max !we !wi + 1 + Prng.int prng 7;
               (!wi, !we))
         in
         (actives, windows, Prng.int prng 1000)))

let rand_wall prng =
  TW.make ~s:(Prng.int prng 4)
    ~m:(Prng.int prng 1000)
    ~components:(Array.init (1 + Prng.int prng 5) (fun _ -> Prng.int prng 1000))
    ~released_at:(Prng.int prng 1000)

(* an int with the extremes over-represented: varint edge cases *)
let rand_int prng =
  match Prng.int prng 8 with
  | 0 -> max_int
  | 1 -> min_int
  | 2 -> -1
  | 3 -> 0
  | _ -> Prng.int prng 1_000_000 - 500_000

let rand_event prng =
  let i = Prng.int prng 100 and j = Prng.int prng 100 in
  match Prng.int prng 19 with
  | 0 ->
    let kind =
      match Prng.int prng 4 with
      | 0 -> T.Update i
      | 1 -> T.Read_only
      | 2 -> T.Hosted i
      | _ -> T.Adhoc { wsegs = [ i ]; rsegs = [ i; j ] }
    in
    T.Begin { txn = i; kind; init = j }
  | 1 ->
    T.Read
      { txn = i; protocol = T.A; segment = j mod 7; key = j;
        threshold = rand_int prng; version = rand_int prng }
  | 2 -> T.Block { txn = i; protocol = T.B; segment = j mod 7; key = j; on = [ i; j ] }
  | 3 ->
    let stage =
      match Prng.int prng 3 with
      | 0 -> T.Routing
      | 1 -> T.Barrier
      | _ -> T.Rule
    in
    T.Reject
      { txn = i; protocol = (if j land 1 = 0 then Some T.C else None); stage;
        segment = -1; reason = Printf.sprintf "forged %d" j }
  | 4 -> T.Write { txn = i; segment = j mod 7; key = j; ts = rand_int prng }
  | 5 -> T.Commit { txn = i; at = j }
  | 6 -> T.Abort { txn = i; at = j }
  | 7 ->
    T.Wall_release
      { m = i; released_at = j;
        components = Array.init (1 + (j mod 4)) (fun k -> k * i) }
  | 8 -> T.Wall_blocked { on = i }
  | 9 ->
    T.Gc
      { watermark = i; vector = Array.init (1 + (j mod 4)) (fun k -> k + i);
        dropped = j }
  | 10 -> T.Seg_gc { segment = i mod 7; dropped = j }
  | 11 -> T.Registry_prune { upto = i; records_dropped = j; windows_dropped = i }
  | 12 -> T.Sim { label = "restart"; txn = i }
  | 13 -> T.Note (Printf.sprintf "note %d" i)
  | 14 -> T.Durable_ack { txn = i; at = j }
  | 15 -> T.Durable_recovered { txn = i; at = j }
  | 16 -> T.Recovery_complete { last_time = i }
  | 17 ->
    T.Checkpoint_cut
      { seq = i; components = Array.init (1 + (j mod 4)) (fun k -> k * j) }
  | _ ->
    T.Repartition
      { epoch = 1 + i;
        kind = (if j land 1 = 0 then "migrate" else "split");
        moved = [ i mod 7; j mod 7 ];
        fresh_store = j land 2 = 0 }

let rand_records prng =
  List.init (Prng.int prng 6) (fun k ->
      { T.seq = k; at = k + Prng.int prng 9; dom = Prng.int prng 4;
        ev = rand_event prng })

let rand_desc prng =
  let g () =
    Granule.make ~segment:(Prng.int prng 5) ~key:(Prng.int prng 8)
  in
  { E.d_id = 1 + Prng.int prng 1000;
    d_kind = (if Prng.bool prng then `Update (Prng.int prng 5) else `Read_only);
    d_ops =
      List.init (Prng.int prng 5) (fun _ ->
          if Prng.bool prng then E.Read (g ())
          else E.Write (g (), rand_int prng));
    d_abort = Prng.bool prng }

let rand_counters prng =
  { Sh.Wire.k_committed = Prng.int prng 100; k_aborted = Prng.int prng 100;
    k_reads_a = Prng.int prng 100; k_reads_b = Prng.int prng 100;
    k_reads_c = Prng.int prng 100; k_writes = Prng.int prng 100;
    k_stale_waits = Prng.int prng 100; k_wall_releases = Prng.int prng 100;
    k_wall_lag_sum = Prng.int prng 1000; k_wall_lag_max = Prng.int prng 100 }

let rand_msg prng =
  match Prng.int prng 13 with
  | 0 ->
    Sh.Wire.Pub
      { p_shard = Prng.int prng 8; p_seq = Prng.int prng 1000;
        p_upto = (if Prng.int prng 5 = 0 then max_int else Prng.int prng 1000);
        p_marks = Array.init (1 + Prng.int prng 5) (fun _ -> Prng.int prng 50);
        p_snap = rand_snap prng }
  | 1 ->
    Sh.Wire.Delta
      { dl_shard = Prng.int prng 8; dl_segment = Prng.int prng 5;
        dl_versions =
          List.init (Prng.int prng 5) (fun k ->
              (k, 1 + Prng.int prng 1000, rand_int prng)) }
  | 2 -> Sh.Wire.Wall (rand_wall prng)
  | 3 ->
    Sh.Wire.Read_req
      { req = Prng.int prng 1000; segment = Prng.int prng 5;
        key = Prng.int prng 8; threshold = rand_int prng }
  | 4 ->
    Sh.Wire.Read_reply
      { req = Prng.int prng 1000;
        slice =
          List.init (Prng.int prng 4) (fun k -> (k * 7, rand_int prng)) }
  | 5 -> Sh.Wire.Lock_req { req = Prng.int prng 1000; segment = Prng.int prng 5 }
  | 6 -> Sh.Wire.Lock_reply { req = Prng.int prng 1000; granted = Prng.bool prng }
  | 7 -> Sh.Wire.Unlock { segment = Prng.int prng 5 }
  | 8 -> Sh.Wire.Exec (rand_desc prng)
  | 9 -> Sh.Wire.Drain
  | 10 ->
    Sh.Wire.Outcome
      { shard = Prng.int prng 8;
        outcomes =
          List.init (Prng.int prng 5) (fun k -> (k + 1, Prng.bool prng));
        counters = rand_counters prng }
  | 11 ->
    Sh.Wire.Trace_slice { shard = Prng.int prng 8; records = rand_records prng }
  | _ -> Sh.Wire.Bye { shard = Prng.int prng 8 }

let rand_packet prng =
  { Sh.Wire.src = Prng.int prng 9; dst = Prng.int prng 9;
    stamp = Prng.int prng 100_000; msg = rand_msg prng }

let test_codec_roundtrip () =
  for seed = 1 to 1000 do
    let prng = Prng.create seed in
    let pkt = rand_packet prng in
    let buf = Sh.Wire.encode pkt in
    match Sh.Wire.decode buf ~pos:0 with
    | Ok (pkt', used) ->
      checki (Printf.sprintf "seed %d: full frame consumed" seed)
        (Bytes.length buf) used;
      checkb
        (Printf.sprintf "seed %d: decode (encode p) = p" seed)
        true
        (Sh.Wire.equal pkt pkt')
    | Error e -> Alcotest.failf "seed %d: round-trip failed: %s" seed e
  done

(* a chunky representative frame for the corruption properties *)
let corruption_victim () =
  let prng = Prng.create 424242 in
  let pkt =
    { Sh.Wire.src = 0; dst = 1; stamp = 99;
      msg =
        Sh.Wire.Pub
          { p_shard = 0; p_seq = 3; p_upto = 512;
            p_marks = [| 1; 2; 3 |]; p_snap = rand_snap prng } }
  in
  Sh.Wire.encode pkt

let test_codec_truncation () =
  let buf = corruption_victim () in
  let n = Bytes.length buf in
  for len = 0 to n - 1 do
    match Sh.Wire.decode (Bytes.sub buf 0 len) ~pos:0 with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "truncated frame at %d/%d bytes decoded" len n
  done

let test_codec_bitflip () =
  let buf = corruption_victim () in
  let n = Bytes.length buf in
  for i = 0 to n - 1 do
    for bit = 0 to 7 do
      let c = Bytes.copy buf in
      Bytes.set c i (Char.chr (Char.code (Bytes.get c i) lxor (1 lsl bit)));
      match Sh.Wire.decode c ~pos:0 with
      | Error _ -> ()
      | Ok _ ->
        Alcotest.failf "bit %d of byte %d/%d flipped yet the frame decoded"
          bit i n
    done
  done

(* --- the cross-shard oracle --- *)

let ok_or_fail what (r : D.report) =
  if not (D.ok r) then
    Alcotest.failf "%s: oracle rejected the run:@.%a" what D.pp_report r

let test_goldens_pass_oracle () =
  List.iter
    (fun (gl : Sh.Shard_diff.golden) ->
      List.iter
        (fun shards ->
          ok_or_fail
            (Printf.sprintf "%s @ %d shards" gl.Sh.Shard_diff.g_name shards)
            (Sh.Shard_diff.golden_check ~shards gl))
        [ 1; 2; 3 ])
    Sh.Shard_diff.goldens

let shard_seeds () = Fixtures.seeds_from_env "HDD_SHARD_SEEDS"
let profile_of = Fixtures.stress_profile

let test_shard_stress () =
  let seeds = shard_seeds () in
  let failures = ref [] in
  for seed = 1 to seeds do
    let shards = Fixtures.scaled_workers seed
    and profile = profile_of seed in
    let r = Sh.Shard_diff.stress_one ~seed ~shards ~txns:30 ~profile () in
    if not (D.ok r) then
      failures :=
        Format.asprintf "seed %d shards %d: %a" seed shards D.pp_report r
        :: !failures
  done;
  if !failures <> [] then
    Alcotest.failf "%d/%d sharded stress runs diverged:@.%s"
      (List.length !failures) seeds
      (String.concat "\n" !failures)

let test_shard_stress_domains () =
  (* real parallelism over the mutexed loopback: a few seeds suffice,
     the deterministic sweep above carries the breadth *)
  for seed = 1 to 4 do
    let shards = 2 + (2 * (seed mod 2)) in
    let r =
      Sh.Shard_diff.stress_one ~mode:`Domains ~seed ~shards ~txns:25
        ~profile:(profile_of seed) ()
    in
    ok_or_fail (Printf.sprintf "domains seed %d shards %d" seed shards) r
  done

(* Process mode lives in its own executable (test_shard_proc): OCaml 5
   refuses Unix.fork in a process that has ever spawned domains, and
   the suites before this one have. *)

(* --- scripted publication faults --- *)

let stress_script seed =
  (* same derivation as Shard_diff.stress_one, reduced for fault runs *)
  let prng = Prng.create ((seed * 2) + 1) in
  let partition =
    if seed land 1 = 0 then D.chain_partition (4 + Prng.int prng 5)
    else D.tree_partition (3 + Prng.int prng 3)
  in
  let script =
    D.gen_script ~partition ~seed ~txns:25 ~ro_frac:0.3 ~abort_frac:0.1 ()
  in
  (partition, script)

let test_netfault_all_kinds () =
  (* every fault kind fires, and the oracle stays green: a perturbed
     publication stream may add waiting, never inconsistency *)
  let fired_kinds = ref [] in
  List.iter
    (fun seed ->
      let partition, script = stress_script seed in
      let fault =
        Sh.Netfault.plan
          [ Sh.Netfault.Drop 0; Sh.Netfault.Dup 2;
            Sh.Netfault.Delay { pub = 4; by = 2 }; Sh.Netfault.Reorder 6;
            Sh.Netfault.Drop 8; Sh.Netfault.Dup 10 ]
      in
      let r =
        Sh.Shard_diff.check_det ~fault ~partition ~init:D.default_init
          ~shards:2 ~seed ~script ()
      in
      ok_or_fail (Printf.sprintf "faulted seed %d" seed) r;
      fired_kinds :=
        List.map Sh.Netfault.kind (Sh.Netfault.fired fault) @ !fired_kinds)
    [ 1; 2; 3; 4 ];
  let kinds = List.sort_uniq compare !fired_kinds in
  List.iter
    (fun k ->
      checkb (Printf.sprintf "fault kind %s fired" k) true (List.mem k kinds))
    Sh.Netfault.kinds

let test_netfault_drop_storm () =
  (* publications are pure hints: losing the first thirty wholesale
     still converges and still certifies *)
  let partition, script = stress_script 6 in
  let fault =
    Sh.Netfault.plan (List.init 30 (fun n -> Sh.Netfault.Drop n))
  in
  let r =
    Sh.Shard_diff.check_det ~fault ~partition ~init:D.default_init ~shards:4
      ~seed:6 ~script ()
  in
  ok_or_fail "drop storm" r;
  checkb "drops actually fired" true (Sh.Netfault.fired fault <> [])

(* --- golden traces --- *)

let golden_file name = Filename.concat "golden" ("shard_" ^ name ^ ".trace")

let read_file = Fixtures.read_file

let golden_text gl =
  T.text_of_records (Sh.Shard_diff.golden_records gl)

let test_golden_traces () =
  match Fixtures.golden_update_dir () with
  | Some dir ->
    List.iter
      (fun (gl : Sh.Shard_diff.golden) ->
        let path =
          Filename.concat dir ("shard_" ^ gl.Sh.Shard_diff.g_name ^ ".trace")
        in
        let oc = open_out_bin path in
        output_string oc (golden_text gl);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      Sh.Shard_diff.goldens
  | _ ->
    List.iter
      (fun (gl : Sh.Shard_diff.golden) ->
        let name = gl.Sh.Shard_diff.g_name in
        let current = golden_text gl in
        checks
          (Printf.sprintf "shard %s: run-to-run stable" name)
          current (golden_text gl);
        let path = golden_file name in
        if not (Sys.file_exists path) then
          Alcotest.failf
            "%s missing — regenerate with HDD_GOLDEN_UPDATE=test/golden" path;
        checks
          (Printf.sprintf "shard %s: matches golden" name)
          (read_file path) current)
      Sh.Shard_diff.goldens

(* --- forged traces: the oracle names the failed check --- *)

let stats_zero =
  { E.committed = 0; aborted = 0; reads_a = 0; reads_b = 0; reads_c = 0;
    writes = 0; publications = 0; wall_releases = 0; wall_lag_sum = 0;
    wall_lag_max = 0; repartitions = 0; escalations = 0 }

let rcd seq at ev = { T.seq; at; dom = 1; ev }

(* the Figure 1 lost update, forged as a merged trace: both tellers read
   the bootstrap version and both commit — exactly the history HDD can
   never produce, so the MVSG check must fail and must say so *)
let test_forged_lost_update () =
  let b_read txn at version =
    rcd at at
      (T.Read
         { txn; protocol = T.B; segment = 0; key = 0; threshold = txn;
           version })
  in
  let records =
    [ rcd 1 1 (T.Begin { txn = 1; kind = T.Update 0; init = 1 });
      rcd 2 2 (T.Begin { txn = 2; kind = T.Update 0; init = 2 });
      b_read 1 3 0;
      b_read 2 4 0;
      (* MVTO stamps a write with its writer's initiation time *)
      rcd 5 5 (T.Write { txn = 1; segment = 0; key = 0; ts = 1 });
      rcd 6 6 (T.Write { txn = 2; segment = 0; key = 0; ts = 2 });
      rcd 7 7 (T.Commit { txn = 1; at = 7 });
      rcd 8 8 (T.Commit { txn = 2; at = 8 }) ]
  in
  let run =
    { E.records; outcomes = [ (1, true); (2, true) ];
      stats = { stats_zero with E.committed = 2; writes = 2; reads_b = 2 } }
  in
  let gl = Sh.Shard_diff.fig1 in
  let r =
    D.check_run ~partition:gl.Sh.Shard_diff.g_partition
      ~init:gl.Sh.Shard_diff.g_init
      ~script:
        [| gl.Sh.Shard_diff.g_script.(0); gl.Sh.Shard_diff.g_script.(1) |]
      run
  in
  checkb "forged lost update rejected" false (D.ok r);
  checkb "mvsg-certification named" true
    (List.mem "mvsg-certification" (D.failures r));
  checkb "read-from-equality named" true
    (List.mem "read-from-equality" (D.failures r));
  let rendered = Format.asprintf "%a" D.pp_report r in
  checkb "pp_report leads with the names" true
    (String.length rendered > 0
    && String.sub rendered 0 (String.length "FAILED checks:")
       = "FAILED checks:")

(* a clean forged history whose only lie is the verdict: txn 2 claims
   aborted while the serial oracle commits it *)
let test_forged_verdict_flip () =
  let records =
    [ rcd 1 1 (T.Begin { txn = 1; kind = T.Update 0; init = 1 });
      rcd 2 2
        (T.Read
           { txn = 1; protocol = T.B; segment = 0; key = 0; threshold = 1;
             version = 0 });
      rcd 3 3 (T.Write { txn = 1; segment = 0; key = 0; ts = 1 });
      rcd 4 4 (T.Commit { txn = 1; at = 4 });
      rcd 5 5 (T.Begin { txn = 2; kind = T.Update 0; init = 5 });
      rcd 6 6
        (T.Read
           { txn = 2; protocol = T.B; segment = 0; key = 0; threshold = 5;
             version = 1 });
      rcd 7 7 (T.Write { txn = 2; segment = 0; key = 0; ts = 5 });
      rcd 8 8 (T.Abort { txn = 2; at = 8 }) ]
  in
  let run =
    { E.records; outcomes = [ (1, true); (2, false) ];
      stats = { stats_zero with E.committed = 1; aborted = 1 } }
  in
  let gl = Sh.Shard_diff.fig1 in
  let r =
    D.check_run ~partition:gl.Sh.Shard_diff.g_partition
      ~init:gl.Sh.Shard_diff.g_init
      ~script:
        [| gl.Sh.Shard_diff.g_script.(0); gl.Sh.Shard_diff.g_script.(1) |]
      run
  in
  Alcotest.(check (list string))
    "exactly the verdict check fails" [ "serial-oracle-agreement" ]
    (D.failures r)

(* a legitimate run with a backwards wall spliced onto the tail: only
   the monitor replay can see it, and it must be the one to shout *)
let test_forged_backwards_wall () =
  let gl = Sh.Shard_diff.fig34 in
  let run =
    Sh.Cluster.run_script_det ~partition:gl.Sh.Shard_diff.g_partition
      ~init:gl.Sh.Shard_diff.g_init ~shards:2 ~seed:7
      ~script:gl.Sh.Shard_diff.g_script ()
  in
  let big = 1_000_000 in
  let forged =
    run.E.records
    @ [ rcd 9000 big
          (T.Wall_release
             { m = big; released_at = big; components = [| big; big; big |] });
        rcd 9001 (big + 1)
          (T.Wall_release
             { m = big; released_at = big - 1;
               components = [| big - 1; big; big |] }) ]
  in
  let r =
    D.check_run ~partition:gl.Sh.Shard_diff.g_partition
      ~init:gl.Sh.Shard_diff.g_init ~script:gl.Sh.Shard_diff.g_script
      { run with E.records = forged }
  in
  Alcotest.(check (list string))
    "exactly the monitor check fails" [ "monitor-replay" ] (D.failures r)

let suite =
  [ Alcotest.test_case "sclock: strided, unique, gossiped" `Quick test_sclock;
    Alcotest.test_case "codec: 1000-seed round-trip" `Quick
      test_codec_roundtrip;
    Alcotest.test_case "codec: truncation at every byte errors" `Quick
      test_codec_truncation;
    Alcotest.test_case "codec: every single-bit flip errors" `Quick
      test_codec_bitflip;
    Alcotest.test_case "oracle: curated scenarios at 1/2/3 shards" `Quick
      test_goldens_pass_oracle;
    Alcotest.test_case "oracle: stress at 2/4/8 shards" `Slow
      test_shard_stress;
    Alcotest.test_case "oracle: domain-mode stress" `Slow
      test_shard_stress_domains;
    Alcotest.test_case "netfault: every kind fires, oracle green" `Quick
      test_netfault_all_kinds;
    Alcotest.test_case "netfault: 30-drop storm stays sound" `Quick
      test_netfault_drop_storm;
    Alcotest.test_case "golden shard traces byte-stable" `Quick
      test_golden_traces;
    Alcotest.test_case "forged lost update: mvsg check named" `Quick
      test_forged_lost_update;
    Alcotest.test_case "forged verdict flip: serial check named" `Quick
      test_forged_verdict_flip;
    Alcotest.test_case "forged backwards wall: monitor check named" `Quick
      test_forged_backwards_wall ]
