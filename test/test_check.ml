(* The schedule-space explorer and the property-based conformance
   harness: exhaustive certification of the anomaly scenarios, sleep-set
   soundness cross-checks, counterexample shrinking, and seeded
   properties for the paper's protocol guarantees. *)

module Explore = Hdd_check.Explore
module Scenarios = Hdd_check.Scenarios
module Shrink = Hdd_check.Shrink
module Gen = Hdd_check.Gen
module Certifier = Hdd_core.Certifier
module Scheduler = Hdd_core.Scheduler
module Timewall = Hdd_core.Timewall
module Outcome = Hdd_core.Outcome
module Adapters = Hdd_sim.Adapters
module Controller = Hdd_sim.Controller
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- the conformance sweep: every scenario, every system --- *)

let test_scenario_conformance () =
  List.iter
    (fun (sc : Scenarios.t) ->
      List.iter
        (fun (sys : Explore.system) ->
          let s = Explore.explore sys sc.Scenarios.workload in
          let expected =
            List.mem sys.Explore.sys_name sc.Scenarios.expect_anomaly
          in
          checkb
            (Printf.sprintf "%s/%s not capped" sc.Scenarios.sc_name
               sys.Explore.sys_name)
            false s.Explore.capped;
          checkb
            (Printf.sprintf "%s/%s anomalies %s" sc.Scenarios.sc_name
               sys.Explore.sys_name
               (if expected then "found" else "absent"))
            expected
            (s.Explore.anomalies > 0);
          checki
            (Printf.sprintf "%s/%s totals add up" sc.Scenarios.sc_name
               sys.Explore.sys_name)
            s.Explore.schedules
            (s.Explore.serializable + s.Explore.anomalies))
        Explore.all_systems)
    Scenarios.all

(* --- the Figure 1 lost update, exhaustively --- *)

let test_fig1_exhaustive_counts () =
  let wl = Scenarios.fig1.Scenarios.workload in
  (* no concurrency control: every schedule runs to completion, so the
     leaf count is the number of interleavings of two 4-step programs:
     C(8,4) = 70 *)
  let s = Explore.explore ~prune:false (Explore.system "NoCC") wl in
  checki "NoCC leaves" 70 s.Explore.schedules;
  checki "nothing pruned" 0 s.Explore.pruned;
  checkb "lost updates rediscovered" true (s.Explore.anomalies > 0);
  (* HDD certifies every single interleaving.  Its leaf count is below
     70: a protocol-B write rejection aborts the program early, so the
     rejected branch has fewer remaining steps to interleave. *)
  let h = Explore.explore ~prune:false Explore.hdd wl in
  checki "HDD anomalies" 0 h.Explore.anomalies;
  checkb "HDD explored" true (h.Explore.schedules > 0);
  checkb "HDD rejection path exercised" true (h.Explore.rejections > 0)

let test_fig1_witness_cycle () =
  let wl = Scenarios.fig1.Scenarios.workload in
  let s = Explore.explore (Explore.system "NoCC") wl in
  match s.Explore.examples with
  | [] -> Alcotest.fail "expected an anomalous example"
  | tr :: _ -> (
    checkb "verdict refused" false tr.Explore.t_verdict.Certifier.serializable;
    match tr.Explore.t_verdict.Certifier.cycle with
    | Some cycle -> checkb "witness cycle" true (List.length cycle >= 2)
    | None -> Alcotest.fail "expected a witness cycle")

let test_fig1_2pl_deadlocks () =
  let wl = Scenarios.fig1.Scenarios.workload in
  let s = Explore.explore (Explore.system "2PL") wl in
  checkb "2PL deadlocks somewhere" true (s.Explore.deadlocks > 0);
  checki "2PL stays serializable" 0 s.Explore.anomalies

(* --- sleep-set pruning is sound: same behaviours, fewer runs --- *)

let signature (tr : Explore.trial) =
  ( List.sort compare tr.Explore.t_committed,
    List.sort compare tr.Explore.t_aborted,
    tr.Explore.t_deadlock,
    tr.Explore.t_verdict.Certifier.serializable )

let behaviours ~prune sys wl =
  let set = Hashtbl.create 64 in
  let s =
    Explore.explore ~prune ~on_trial:(fun tr ->
        Hashtbl.replace set (signature tr) ())
      sys wl
  in
  let sigs = Hashtbl.fold (fun k () acc -> k :: acc) set [] in
  (s, List.sort compare sigs)

let test_pruning_preserves_behaviours () =
  let wl = Scenarios.fig1.Scenarios.workload in
  List.iter
    (fun name ->
      let sys = Explore.system name in
      let full, sig_full = behaviours ~prune:false sys wl in
      let pruned, sig_pruned = behaviours ~prune:true sys wl in
      checkb (name ^ ": same behaviour set") true (sig_full = sig_pruned);
      checkb
        (name ^ ": pruning only removes runs")
        true
        (pruned.Explore.schedules <= full.Explore.schedules);
      checki
        (name ^ ": same anomaly presence")
        (min 1 full.Explore.anomalies)
        (min 1 pruned.Explore.anomalies))
    [ "HDD"; "2PL"; "TSO-noRTS"; "NoCC" ]

(* --- tolerant replay --- *)

let test_run_schedule_tolerant () =
  let wl = Scenarios.fig1.Scenarios.workload in
  (* junk indices are skipped; quiesce completes the rest *)
  let tr = Explore.run_schedule Explore.hdd wl [ 9; -3; 0; 0; 7; 1; 0 ] in
  checki "all programs finished" 2
    (List.length tr.Explore.t_committed + List.length tr.Explore.t_aborted);
  checkb "serializable" true tr.Explore.t_verdict.Certifier.serializable;
  let tr2 = Explore.run_schedule Explore.hdd wl [ 9; -3; 0; 0; 7; 1; 0 ] in
  checkb "deterministic replay" true
    (tr.Explore.t_events = tr2.Explore.t_events)

(* --- shrinking --- *)

let first_anomaly sys wl =
  let s = Explore.explore sys wl in
  match s.Explore.examples with
  | tr :: _ -> tr
  | [] -> Alcotest.fail "expected an anomalous trial"

let test_shrink_lost_update () =
  let wl = Scenarios.fig1.Scenarios.workload in
  let sys = Explore.system "NoCC" in
  let tr = first_anomaly sys wl in
  match Shrink.minimize sys wl tr.Explore.t_schedule with
  | None -> Alcotest.fail "minimize lost the failure"
  | Some r ->
    checkb "still failing" false
      r.Shrink.r_trial.Explore.t_verdict.Certifier.serializable;
    (* the lost update needs both programs and all four operations *)
    checki "both programs survive" 2
      (List.length r.Shrink.r_workload.Explore.progs);
    checki "irreducible op count" 4
      (List.fold_left
         (fun acc (p : Explore.prog) -> acc + List.length p.Explore.ops)
         0 r.Shrink.r_workload.Explore.progs);
    (* a second pass finds nothing more to delete *)
    (match
       Shrink.minimize sys r.Shrink.r_workload r.Shrink.r_schedule
     with
    | None -> Alcotest.fail "shrunk schedule no longer fails"
    | Some r2 -> checki "fixpoint" 0 r2.Shrink.r_deleted);
    (* the report renders and names the witness *)
    let report = Format.asprintf "%a" Shrink.pp_report r in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
      at 0
    in
    checkb "report shows witness" true (contains report "witness")

let test_shrink_none_on_success () =
  let wl = Scenarios.fig1.Scenarios.workload in
  (* a serial schedule is serializable everywhere *)
  let serial = [ 0; 0; 0; 0; 1; 1; 1; 1 ] in
  checkb "nothing to shrink" true
    (Shrink.minimize (Explore.system "NoCC") wl serial = None)

(* --- seeded properties --- *)

let prop_tst_specs_build =
  QCheck2.Test.make ~name:"gen: tst specs validate" ~count:200
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      match Hdd_core.Partition.build (Gen.tst_spec g) with
      | Ok _ -> true
      | Error _ -> false)

let prop_non_tst_specs_rejected =
  QCheck2.Test.make ~name:"gen: non-tst specs rejected" ~count:200
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      match Hdd_core.Partition.build (Gen.non_tst_spec g) with
      | Ok _ -> false
      | Error _ -> true)

let prop_hdd_random_schedules_serializable =
  QCheck2.Test.make
    ~name:"explore: HDD certifies random workloads and schedules"
    ~count:150
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      let wl = Gen.workload ~adhoc:(seed mod 2 = 0) g in
      let tr = Explore.run_schedule Explore.hdd wl (Gen.schedule g wl) in
      tr.Explore.t_verdict.Certifier.serializable)

let prop_baselines_random_schedules_serializable =
  QCheck2.Test.make
    ~name:"explore: full-strength baselines certify random schedules"
    ~count:40
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      let wl = Gen.workload ~adhoc:(seed mod 2 = 0) g in
      let sched = Gen.schedule g wl in
      List.for_all
        (fun name ->
          let tr = Explore.run_schedule (Explore.system name) wl sched in
          tr.Explore.t_verdict.Certifier.serializable)
        [ "2PL"; "TSO"; "MVTO"; "MV2PL"; "SDD-1" ])

(* Protocols A and C: reads outside the root segment never block and
   never reject — in ad-hoc-free workloads for updates (the §7.1.1
   barrier may reject an updater inside an ad-hoc window), and
   unconditionally for read-only transactions. *)
let watched_hdd violations ~adhoc_free =
  { Explore.sys_name = "HDD+watch";
    build =
      (fun ~log wl ->
        let ctrl =
          Adapters.hdd ~log ~partition:wl.Explore.partition
            ~init:wl.Explore.init ()
        in
        Controller.with_hooks
          ~on_read:(fun txn g outcome ->
            let cross =
              match txn.Txn.kind with
              | Txn.Read_only -> true
              | Txn.Update c -> adhoc_free && g.Granule.segment <> c
            in
            match outcome with
            | Outcome.Granted _ -> ()
            | Outcome.Blocked _ | Outcome.Rejected _ ->
              if cross then incr violations)
          ctrl) }

let prop_protocol_a_c_no_wait_no_reject =
  QCheck2.Test.make
    ~name:"scheduler: protocol A/C reads never wait, never reject"
    ~count:150
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      let adhoc = seed mod 3 = 0 in
      let wl = Gen.workload ~adhoc g in
      let violations = ref 0 in
      let sys = watched_hdd violations ~adhoc_free:(not adhoc) in
      let _ = Explore.run_schedule sys wl (Gen.schedule g wl) in
      !violations = 0)

(* Protocol C consistency: the threshold a read-only transaction gets in
   every segment is exactly the matching component of the latest wall
   released strictly before its initiation. *)
let prop_read_only_thresholds_match_wall =
  QCheck2.Test.make
    ~name:"scheduler: read-only thresholds equal the governing wall"
    ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      let wl = Gen.workload g in
      let n = Hdd_core.Partition.segment_count wl.Explore.partition in
      let ok = ref true in
      let sys =
        { Explore.sys_name = "HDD+walls";
          build =
            (fun ~log wl ->
              let ctrl, sched, _clock =
                Adapters.hdd_detailed ~log ~wall_every_commits:1
                  ~partition:wl.Explore.partition ~init:wl.Explore.init ()
              in
              let mgr = Scheduler.wall_manager sched in
              Controller.with_hooks
                ~on_begin:(fun kind txn ->
                  match kind with
                  | Controller.Read_only -> (
                    match Timewall.latest_before mgr txn.Txn.init with
                    | None -> ok := false
                    | Some wall ->
                      for s = 0 to n - 1 do
                        match Scheduler.read_threshold sched txn ~segment:s with
                        | Some th ->
                          if th <> Timewall.threshold wall ~class_id:s then
                            ok := false
                        | None -> ok := false
                      done)
                  | _ -> ())
                ctrl) }
      in
      let _ = Explore.run_schedule sys wl (Gen.schedule g wl) in
      !ok)

(* Clock domination: successive walls dominate each other component-wise
   and never reference the future. *)
let prop_walls_monotone =
  QCheck2.Test.make ~name:"scheduler: released walls are monotone"
    ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      let wl = Gen.workload ~adhoc:(seed mod 2 = 0) g in
      let n = Hdd_core.Partition.segment_count wl.Explore.partition in
      let captured = ref None in
      let sys =
        { Explore.sys_name = "HDD+monotone";
          build =
            (fun ~log wl ->
              let ctrl, sched, clock =
                Adapters.hdd_detailed ~log ~wall_every_commits:1
                  ~partition:wl.Explore.partition ~init:wl.Explore.init ()
              in
              captured := Some (sched, clock);
              ctrl) }
      in
      let _ = Explore.run_schedule sys wl (Gen.schedule g wl) in
      match !captured with
      | None -> false
      | Some (sched, clock) ->
        let walls = Timewall.released (Scheduler.wall_manager sched) in
        let now = Time.Clock.now clock in
        let dominated = ref true in
        let rec pairs = function
          | w1 :: (w2 :: _ as rest) ->
            if not (w1.Timewall.released_at < w2.Timewall.released_at) then
              dominated := false;
            for c = 0 to n - 1 do
              if
                Timewall.threshold w1 ~class_id:c
                > Timewall.threshold w2 ~class_id:c
              then dominated := false
            done;
            pairs rest
          | _ -> ()
        in
        pairs walls;
        List.iter
          (fun w ->
            if w.Timewall.released_at > now then dominated := false;
            for c = 0 to n - 1 do
              if Timewall.threshold w ~class_id:c > now then
                dominated := false
            done)
          walls;
        List.length walls >= 1 && !dominated)

let suite =
  [ Alcotest.test_case "conformance: all scenarios, all systems" `Quick
      test_scenario_conformance;
    Alcotest.test_case "fig1: exhaustive interleaving counts" `Quick
      test_fig1_exhaustive_counts;
    Alcotest.test_case "fig1: anomaly carries a witness cycle" `Quick
      test_fig1_witness_cycle;
    Alcotest.test_case "fig1: 2PL deadlocks instead of corrupting" `Quick
      test_fig1_2pl_deadlocks;
    Alcotest.test_case "pruning: sleep sets preserve behaviours" `Quick
      test_pruning_preserves_behaviours;
    Alcotest.test_case "replay: tolerant and deterministic" `Quick
      test_run_schedule_tolerant;
    Alcotest.test_case "shrink: lost update minimizes to 4 ops" `Quick
      test_shrink_lost_update;
    Alcotest.test_case "shrink: serializable runs yield None" `Quick
      test_shrink_none_on_success;
    QCheck_alcotest.to_alcotest prop_tst_specs_build;
    QCheck_alcotest.to_alcotest prop_non_tst_specs_rejected;
    QCheck_alcotest.to_alcotest prop_hdd_random_schedules_serializable;
    QCheck_alcotest.to_alcotest prop_baselines_random_schedules_serializable;
    QCheck_alcotest.to_alcotest prop_protocol_a_c_no_wait_no_reject;
    QCheck_alcotest.to_alcotest prop_read_only_thresholds_match_wall;
    QCheck_alcotest.to_alcotest prop_walls_monotone ]
