(* The dynamic-decomposition layer (DESIGN.md §17): the
   repartition-equivalence property (live ownership migrations behind
   park barriers are invisible to the four-check differential oracle
   and to per-descriptor outcomes), the TST-ness mutation property
   (advisor moves can never produce an illegal hierarchy — on failure
   the shrinker prints the violating DHG edge), the drift detector's
   hotspot and tst-break signals, exact state carry across executor
   swaps, the monitor's Partition-epoch invariant shown to fire on
   forged traces, and byte-stable goldens for the two drift scenarios.

   Reduced seed count in-tree; nightly raises HDD_ADAPT_SEEDS. *)

module T = Hdd_obs.Trace
module Monitor = Hdd_obs.Monitor
module Spec = Hdd_core.Spec
module P = Hdd_core.Partition
module Sched = Hdd_core.Scheduler
module E = Hdd_runtime.Engine
module D = Hdd_runtime.Differential
module Drift = Hdd_adapt.Drift
module Advise = Hdd_adapt.Advise
module Exec = Hdd_adapt.Exec
module Scenario = Hdd_adapt.Scenario
module Gen = Hdd_check.Gen
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains = Fixtures.contains
let adapt_seeds () = Fixtures.seeds_from_env "HDD_ADAPT_SEEDS"

(* --- the repartition-equivalence property --- *)

(* Same script, same engine config, twice: once plan-free, once with a
   whole-map ownership rotation available at every coordinator wall
   opportunity.  Outcomes must match descriptor by descriptor, both
   runs must pass the four-check oracle, and the plan run must actually
   have repartitioned. *)
let test_repartition_equivalence () =
  let seeds = adapt_seeds () in
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
  for seed = 1 to seeds do
    let workers = Fixtures.scaled_workers seed in
    let prng = Prng.create (seed * 2 + 1) in
    let partition =
      if seed land 1 = 0 then D.chain_partition (4 + Prng.int prng 5)
      else D.tree_partition (3 + Prng.int prng 3)
    in
    let script =
      D.gen_script ~partition ~seed ~txns:60 ~ro_frac:0.25 ~abort_frac:0.15 ()
    in
    let config = E.default_config ~workers in
    let init = D.default_init in
    let run0 = E.run_script ~partition ~init config ~script in
    let plan =
      D.rotation_plan ~segments:(P.segment_count partition) ~workers 8
    in
    let run1 = E.run_script ~partition ~init ~plan config ~script in
    if run1.E.stats.E.repartitions < 1 then
      fail "seed %d (%d workers): no repartition ran" seed workers;
    if run0.E.outcomes <> run1.E.outcomes then
      fail "seed %d (%d workers): outcomes diverge under repartitions" seed
        workers;
    let r0 = D.check_run ~partition ~init ~script run0 in
    let r1 = D.check_run ~partition ~init ~script run1 in
    if not (D.ok r0) then
      fail "seed %d (%d workers) plan-free: %a" seed workers D.pp_report r0;
    if not (D.ok r1) then
      fail "seed %d (%d workers) with plan: %a" seed workers D.pp_report r1
  done;
  if !failures <> [] then
    Alcotest.failf "%d equivalence failures:@.%s" (List.length !failures)
      (String.concat "\n" (List.rev !failures))

(* The ISSUE's acceptance shape, pinned explicitly: oracle green at 2,
   4 and 8 domains with at least one live repartition per run. *)
let test_oracle_under_migration_2_4_8 () =
  List.iter
    (fun workers ->
      let r =
        D.stress_one ~repartitions:3 ~seed:(100 + workers) ~workers ~txns:80
          ~profile:D.Mixed ()
      in
      checkb
        (Printf.sprintf "oracle green at %d domains" workers)
        true (D.ok r);
      checkb
        (Printf.sprintf "repartitioned at %d domains" workers)
        true
        (r.D.r_repartitions >= 1))
    [ 2; 4; 8 ]

(* --- the TST-ness mutation property --- *)

let pp_moves moves =
  String.concat "; "
    (List.rev_map (Format.asprintf "%a" Advise.pp_move) moves)

(* Random TST specs mutated by random advisor moves stay
   TST-hierarchical at every step.  Splits must always validate;
   merges are drawn from the advisor's own candidate enumeration, so a
   candidate that fails to build is an advisor bug.  The failure
   output is the shrunk witness: the exact move sequence and the DHG
   edge the build error names. *)
let test_advisor_moves_preserve_tst () =
  let seeds = Int.max 100 (adapt_seeds ()) in
  for seed = 1 to seeds do
    let prng = Prng.create (seed * 7 + 3) in
    let spec = ref (Gen.tst_spec prng) in
    let applied = ref [] in
    for _step = 1 to 4 do
      let n = Spec.segment_count !spec in
      let candidates = Advise.merge_candidates !spec in
      let pick_merge = candidates <> [] && Prng.bool prng in
      let move =
        if pick_merge then begin
          let a, b = List.nth candidates (Prng.int prng (List.length candidates)) in
          Advise.Merge { a; b }
        end
        else Advise.Split { segment = Prng.int prng n; pivot = 8 }
      in
      let next =
        match move with
        | Advise.Merge { a; b } -> fst (Advise.merge_spec !spec ~a ~b)
        | Advise.Split { segment; _ } -> Advise.split_spec !spec ~segment
        | Advise.Migrate _ -> !spec
      in
      applied := move :: !applied;
      (match P.build next with
      | Ok _ -> ()
      | Error e ->
        let a, b = Drift.witness_edge e in
        Alcotest.failf
          "seed %d: advisor move broke TST-ness at DHG edge (%d, %d)@.moves: \
           %s@.error: %s"
          seed a b (pp_moves !applied) (P.error_to_string e));
      spec := next
    done;
    (* migrations only touch the owner map: any in-range target map is
       well-formed *)
    let nseg = Spec.segment_count !spec in
    let owner_map = E.default_owner_map ~segments:nseg ~workers:3 in
    (match
       Advise.target_map ~owner_map
         (Advise.Migrate { class_id = Prng.int prng nseg; to_worker = 2 })
     with
    | Some m ->
      Array.iter
        (fun w ->
          if w < 0 || w >= 3 then
            Alcotest.failf "seed %d: migrate target map out of range" seed)
        m
    | None -> Alcotest.failf "seed %d: migrate target map missing" seed)
  done

(* --- the drift detector --- *)

let chain_spec depth =
  Spec.make
    ~segments:(List.init depth (fun i -> Printf.sprintf "D%d" i))
    ~types:
      (List.init depth (fun i ->
           Spec.txn_type
             ~name:(Printf.sprintf "t%d" i)
             ~writes:[ i ]
             ~reads:(if i < depth - 1 then [ i; i + 1 ] else [ i ])))

let rcd =
  let seq = ref 0 in
  fun ev ->
    incr seq;
    { T.seq = !seq; at = !seq; dom = 0; ev }

let commit_burst ~cls ~n ~from =
  List.concat
    (List.init n (fun i ->
         let txn = from + i in
         [ rcd (T.Begin { txn; kind = T.Update cls; init = txn });
           rcd (T.Commit { txn; at = txn }) ]))

let test_drift_hotspot () =
  let cfg = { Drift.default_config with min_commits = 16 } in
  let d = Drift.create ~config:cfg ~spec:(chain_spec 4) () in
  (* below min_commits: silent even at 100% share *)
  Drift.observe d (commit_burst ~cls:1 ~n:8 ~from:1);
  checki "silent below min_commits" 0 (List.length (Drift.signals d));
  (* past the threshold the hottest class is flagged with its share *)
  Drift.observe d (commit_burst ~cls:1 ~n:16 ~from:100);
  (match Drift.signals d with
  | [ Drift.Hotspot { class_id; share; commits } ] ->
    checki "hot class" 1 class_id;
    checki "window commits" 24 commits;
    checkb "share is total" true (share = 1.0)
  | sigs ->
    Alcotest.failf "expected one hotspot, got %d signals" (List.length sigs));
  (* a balanced tail dilutes the share below threshold *)
  Drift.observe d (commit_burst ~cls:0 ~n:20 ~from:200);
  Drift.observe d (commit_burst ~cls:2 ~n:20 ~from:300);
  checki "balanced window is silent" 0 (List.length (Drift.signals d))

let test_drift_tst_break () =
  let cfg = { Drift.default_config with adhoc_promote = 3 } in
  let d = Drift.create ~config:cfg ~spec:(chain_spec 3) () in
  (* a recurring ad-hoc writer of D2 reading D0 bends the chain
     0 -> 1 -> 2 into a cycle *)
  let adhoc txn =
    [ rcd
        (T.Begin
           { txn;
             kind = T.Adhoc { wsegs = [ 2 ]; rsegs = [ 0; 2 ] };
             init = txn });
      rcd (T.Commit { txn; at = txn }) ]
  in
  Drift.observe d (adhoc 1);
  Drift.observe d (adhoc 2);
  checki "below promotion threshold" 0 (List.length (Drift.signals d));
  Drift.observe d (adhoc 3);
  (match Drift.signals d with
  | [ Drift.Tst_break { edge; wsegs; rsegs; error } ] ->
    checkb "footprint recorded" true (wsegs = [ 2 ] && rsegs = [ 0; 2 ]);
    let a, b = edge in
    checkb "edge names real segments" true (a >= 0 && b >= 0 && a <> b);
    (match error with
    | P.Cyclic _ | P.Not_semi_tree _ -> ()
    | e -> Alcotest.failf "unexpected error: %s" (P.error_to_string e))
  | sigs ->
    Alcotest.failf "expected one tst-break, got %d signals"
      (List.length sigs));
  (* the observed spec admits the promoted footprint as a real type *)
  let ospec = Drift.observed_spec d in
  checki "promoted type joined the analysis" 4
    (Array.length ospec.Spec.types);
  (* and the advisor's repair restores legality *)
  match Advise.propose ~workers:2 d with
  | { Advise.move = Advise.Merge _; spec = Some repaired; _ } :: _ ->
    checkb "repaired spec validates" true
      (match P.build repaired with Ok _ -> true | Error _ -> false)
  | _ -> Alcotest.fail "expected a merge repair first"

(* --- the executor: exact state carry across swaps --- *)

let test_executor_carries_state () =
  let seeds = Int.max 50 (adapt_seeds () / 2) in
  for seed = 1 to seeds do
    let prng = Prng.create (seed * 11 + 5) in
    let depth = 3 + Prng.int prng 3 in
    let trace = T.create ~capacity:65536 () in
    let x =
      Exec.create ~trace ~spec:(chain_spec depth) ~init:(fun _ -> 0) ()
    in
    (* keys are disjoint per original segment, so the executor's remap
       stays injective through merges and the carried values must match
       the writes exactly — no newest-wins collision resolution hides a
       loss *)
    let keyspace = 8 in
    let written = Hashtbl.create 32 in
    let run_updates n =
      for _ = 1 to n do
        let cls = Prng.int prng (Spec.segment_count (Exec.spec x)) in
        let key = (cls * keyspace) + Prng.int prng keyspace in
        let v = Prng.int prng 10000 in
        let s = Exec.scheduler x in
        let t = Sched.begin_update s ~class_id:cls in
        let g = Granule.make ~segment:cls ~key in
        ignore (Sched.read s t g);
        match Sched.write s t g v with
        | Hdd_core.Outcome.Granted () ->
          Sched.commit s t;
          Hashtbl.replace written (cls, key) v
        | _ -> Sched.abort s t
      done
    in
    (* phase 1 writes against the original decomposition; granules keep
       their original addresses through every later repair *)
    run_updates 30;
    let snapshot () =
      Hashtbl.fold
        (fun (seg, key) _ acc ->
          ((seg, key), Exec.value x (Granule.make ~segment:seg ~key)) :: acc)
        written []
      |> List.sort compare
    in
    let before = snapshot () in
    List.iter
      (fun ((seg, key), v) ->
        match Hashtbl.find_opt written (seg, key) with
        | Some w when w <> v ->
          Alcotest.failf "seed %d: wrote %d to D%d/%d but read %d" seed w seg
            key v
        | _ -> ())
      before;
    (* 1-3 random repairs, each validated then applied at quiescence *)
    let repairs = 1 + Prng.int prng 3 in
    for _ = 1 to repairs do
      let spec = Exec.spec x in
      let n = Spec.segment_count spec in
      let candidates = Advise.merge_candidates spec in
      let move =
        if candidates <> [] && Prng.bool prng then begin
          let a, b =
            List.nth candidates (Prng.int prng (List.length candidates))
          in
          Advise.Merge { a; b }
        end
        else Advise.Split { segment = Prng.int prng n; pivot = keyspace / 2 }
      in
      (match Exec.apply x move with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "seed %d: %a rejected: %s" seed
          (fun ppf -> Format.fprintf ppf "%a" Advise.pp_move)
          move e);
      let after = snapshot () in
      if before <> after then
        Alcotest.failf "seed %d: values drifted across %a" seed
          (fun ppf -> Format.fprintf ppf "%a" Advise.pp_move)
          move
    done;
    checki (Printf.sprintf "seed %d: epoch counts repairs" seed) repairs
      (Exec.epoch x);
    (* the repaired decomposition still serves traffic, and the whole
       trace replays clean through the monitor *)
    run_updates 10;
    let m = Monitor.create ~raise_on_violation:false ~wall_rule:`Any_released () in
    List.iter (Monitor.feed m) (T.records trace);
    (match Monitor.violations m with
    | [] -> ()
    | vs ->
      Alcotest.failf "seed %d: monitor violations:@.%s" seed
        (String.concat "\n" vs));
    checki
      (Printf.sprintf "seed %d: monitor saw every epoch" seed)
      repairs (Monitor.last_epoch m)
  done

(* --- the monitor's Partition-epoch invariant, shown to fire --- *)

let repart ~epoch ?(kind = "migrate") ?(fresh_store = false) () =
  rcd (T.Repartition { epoch; kind; moved = [ 0 ]; fresh_store })

let violations_of records =
  let m = Monitor.create ~raise_on_violation:false ~wall_rule:`Any_released () in
  List.iter (Monitor.feed m) records;
  Monitor.violations m

let test_monitor_epoch_monotonic () =
  (* forward motion is clean *)
  checki "increasing epochs pass" 0
    (List.length
       (violations_of [ repart ~epoch:1 (); repart ~epoch:2 () ]));
  (* backwards and repeated epochs fire *)
  (match violations_of [ repart ~epoch:2 (); repart ~epoch:1 () ] with
  | [ v ] ->
    checkb "violation names the epochs" true
      (contains v "epoch" && contains v "1" && contains v "2")
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs));
  checki "equal epoch fires" 1
    (List.length (violations_of [ repart ~epoch:3 (); repart ~epoch:3 () ]))

let test_monitor_no_active_at_repartition () =
  let active_then_repart =
    [ rcd (T.Begin { txn = 7; kind = T.Update 0; init = 1 });
      repart ~epoch:1 () ]
  in
  (match violations_of active_then_repart with
  | [ v ] ->
    checkb "violation names the straggler" true
      (contains v "[7]")
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs));
  (* committed-before is fine *)
  checki "quiescent repartition passes" 0
    (List.length
       (violations_of
          [ rcd (T.Begin { txn = 7; kind = T.Update 0; init = 1 });
            rcd (T.Commit { txn = 7; at = 2 });
            repart ~epoch:1 () ]))

let test_monitor_fresh_store_reset () =
  (* a committed version, then a repartition, then a bootstrap read
     below the old version: legal only if the swap declared a fresh
     store (the shadow DB must reset with it) *)
  let stream ~fresh_store =
    [ rcd (T.Begin { txn = 1; kind = T.Update 0; init = 5 });
      rcd (T.Write { txn = 1; segment = 0; key = 0; ts = 5 });
      rcd (T.Commit { txn = 1; at = 6 });
      repart ~epoch:1 ~kind:"split" ~fresh_store ();
      rcd (T.Begin { txn = 2; kind = T.Update 0; init = 10 });
      rcd
        (T.Read
           { txn = 2; protocol = T.B; segment = 0; key = 0; threshold = 10;
             version = 0 });
      rcd (T.Commit { txn = 2; at = 11 }) ]
  in
  checki "stale read fires without a fresh store" 1
    (List.length (violations_of (stream ~fresh_store:false)));
  checki "fresh store resets the shadow" 0
    (List.length (violations_of (stream ~fresh_store:true)))

(* --- golden traces for the two drift scenarios --- *)

let golden_file (gl : Scenario.golden) =
  Filename.concat "golden" ("adapt_" ^ gl.Scenario.g_name ^ ".trace")

let read_file = Fixtures.read_file

let golden_text gl = T.text_of_records (Scenario.golden_records gl)

let test_golden_traces () =
  match Fixtures.golden_update_dir () with
  | Some dir ->
    List.iter
      (fun (gl : Scenario.golden) ->
        let path =
          Filename.concat dir ("adapt_" ^ gl.Scenario.g_name ^ ".trace")
        in
        let oc = open_out_bin path in
        output_string oc (golden_text gl);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      Scenario.goldens
  | _ ->
    List.iter
      (fun (gl : Scenario.golden) ->
        let name = gl.Scenario.g_name in
        let current = golden_text gl in
        checks
          (Printf.sprintf "adapt %s: run-to-run stable" name)
          current (golden_text gl);
        checkb
          (Printf.sprintf "adapt %s: contains a repartition" name)
          true
          (contains current "repartition");
        let path = golden_file gl in
        if not (Sys.file_exists path) then
          Alcotest.failf
            "%s missing — regenerate with HDD_GOLDEN_UPDATE=test/golden" path;
        checks
          (Printf.sprintf "adapt %s: matches golden" name)
          (read_file path) current)
      Scenario.goldens

let test_golden_scenarios_replay_clean () =
  List.iter
    (fun gl ->
      let records = Scenario.golden_records gl in
      match violations_of records with
      | [] -> ()
      | vs ->
        Alcotest.failf "%s: monitor violations:@.%s" gl.Scenario.g_name
          (String.concat "\n" vs))
    Scenario.goldens

(* --- the adapt benchmark's structure --- *)

let test_adaptbench_quick () =
  let r =
    Hdd_adapt.Adaptbench.run ~workers:2 ~seconds:0.2 ~rotate_every_s:0.05
      ~depth:4 ()
  in
  checkb "live run repartitioned" true (r.Hdd_adapt.Adaptbench.a_live_repartitions >= 1);
  checkb "steady committed" true (r.Hdd_adapt.Adaptbench.a_steady_committed > 0);
  checkb "live committed" true (r.Hdd_adapt.Adaptbench.a_live_committed > 0);
  checkb "stw committed" true (r.Hdd_adapt.Adaptbench.a_stw_committed > 0);
  let j = Hdd_adapt.Adaptbench.to_json r in
  let module J = Hdd_benchkit.Jsonlite in
  List.iter
    (fun path ->
      match J.path path j with
      | Some _ -> ()
      | None ->
        Alcotest.failf "BENCH_adapt.json missing %s" (String.concat "." path))
    [ [ "retention_live" ];
      [ "retention_floor" ];
      [ "live"; "repartitions" ];
      [ "stop_the_world"; "restarts" ] ]

let suite =
  [ Alcotest.test_case "repartition equivalence: plan vs plan-free" `Quick
      test_repartition_equivalence;
    Alcotest.test_case "oracle green with migrations at 2/4/8 domains"
      `Quick test_oracle_under_migration_2_4_8;
    Alcotest.test_case "advisor moves preserve TST-ness (mutation property)"
      `Quick test_advisor_moves_preserve_tst;
    Alcotest.test_case "drift: hotspot signal" `Quick test_drift_hotspot;
    Alcotest.test_case "drift: tst-break signal and merge repair" `Quick
      test_drift_tst_break;
    Alcotest.test_case "executor: exact state carry across swaps" `Quick
      test_executor_carries_state;
    Alcotest.test_case "monitor: partition epoch monotonicity fires" `Quick
      test_monitor_epoch_monotonic;
    Alcotest.test_case "monitor: no active transactions at a repartition"
      `Quick test_monitor_no_active_at_repartition;
    Alcotest.test_case "monitor: fresh_store resets the shadow DB" `Quick
      test_monitor_fresh_store_reset;
    Alcotest.test_case "golden adapt traces byte-stable" `Quick
      test_golden_traces;
    Alcotest.test_case "golden scenarios replay clean" `Quick
      test_golden_scenarios_replay_clean;
    Alcotest.test_case "adaptbench: structure and gates input" `Quick
      test_adaptbench_quick ]
