(* Tests for the simulation layer: event queue, workload generators, the
   closed-loop runner, and the end-to-end certification runs — every
   controller on every workload must produce a one-copy-serializable
   committed schedule (the empirical Theorems 1 and 2), while the
   no-control strawman must not. *)

module EQ = Hdd_sim.Event_queue
module Workload = Hdd_sim.Workload
module Runner = Hdd_sim.Runner
module Harness = Hdd_sim.Harness
module Controller = Hdd_sim.Controller
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- event queue --- *)

let test_event_queue_order () =
  let q = EQ.create () in
  EQ.push q ~time:3. "c";
  EQ.push q ~time:1. "a";
  EQ.push q ~time:2. "b";
  let pops = List.init 3 (fun _ -> EQ.pop q) in
  Alcotest.check
    (Alcotest.list (Alcotest.option (Alcotest.pair (Alcotest.float 0.) Alcotest.string)))
    "time order"
    [ Some (1., "a"); Some (2., "b"); Some (3., "c") ]
    pops;
  checkb "drained" true (EQ.pop q = None)

let test_event_queue_fifo_ties () =
  let q = EQ.create () in
  EQ.push q ~time:1. "first";
  EQ.push q ~time:1. "second";
  EQ.push q ~time:1. "third";
  let order = List.init 3 (fun _ -> snd (Option.get (EQ.pop q))) in
  Alcotest.check (Alcotest.list Alcotest.string) "insertion order on ties"
    [ "first"; "second"; "third" ] order

let test_event_queue_growth () =
  let q = EQ.create () in
  for i = 999 downto 0 do
    EQ.push q ~time:(float_of_int i) i
  done;
  checki "size" 1000 (EQ.size q);
  let sorted = ref true in
  let last = ref (-1.) in
  for _ = 1 to 1000 do
    let t, _ = Option.get (EQ.pop q) in
    if t < !last then sorted := false;
    last := t
  done;
  checkb "heap order maintained" true !sorted;
  checkb "empty" true (EQ.is_empty q)

(* The pre-heap implementation was a sorted list with stable insertion:
   new events go after existing ones at the same time.  The heap must
   reproduce its pop order exactly on any interleaved push/pop trace. *)
let test_event_queue_matches_sorted_list () =
  let module Ref = struct
    type 'a t = (float * 'a) list ref

    let create () : 'a t = ref []

    let push (q : 'a t) ~time x =
      let rec ins = function
        | [] -> [ (time, x) ]
        | ((t', _) as hd) :: tl ->
          if t' <= time then hd :: ins tl else (time, x) :: hd :: tl
      in
      q := ins !q

    let pop (q : 'a t) =
      match !q with [] -> None | hd :: tl -> q := tl; Some hd
  end in
  let g = Prng.create 0xE0E0 in
  let q = EQ.create () in
  let r = Ref.create () in
  let mismatch = ref None in
  let pops = ref 0 in
  for step = 1 to 2000 do
    if Prng.int g 3 < 2 || EQ.is_empty q then begin
      (* coarse times force plenty of ties *)
      let time = float_of_int (Prng.int g 50) in
      EQ.push q ~time step;
      Ref.push r ~time step
    end
    else begin
      incr pops;
      if EQ.pop q <> Ref.pop r then mismatch := Some step
    end
  done;
  while not (EQ.is_empty q) do
    incr pops;
    if EQ.pop q <> Ref.pop r then mismatch := Some (-1)
  done;
  (match !mismatch with
  | Some step -> Alcotest.failf "heap diverged from sorted list at step %d" step
  | None -> ());
  checkb "reference drained too" true (Ref.pop r = None);
  checkb "trace exercised pops" true (!pops > 500)

(* --- workloads --- *)

let test_workload_templates_valid () =
  List.iter
    (fun (wl : Workload.t) ->
      let rng = Prng.create 1 in
      List.iter
        (fun (tpl : Workload.template) ->
          let ops = tpl.Workload.gen rng in
          checkb
            (wl.Workload.wl_name ^ "/" ^ tpl.Workload.tpl_name ^ " nonempty")
            true (ops <> []);
          (* every access must respect the declared pattern *)
          List.iter
            (fun op ->
              let seg, is_write =
                match op with
                | Workload.Read g -> (g.Granule.segment, false)
                | Workload.Write (g, _) -> (g.Granule.segment, true)
              in
              match tpl.Workload.kind with
              | Controller.Read_only ->
                checkb "read-only templates never write" false is_write
              | Controller.Adhoc { writes; reads } ->
                if is_write then
                  checkb "adhoc writes declared" true (List.mem seg writes)
                else
                  checkb "adhoc reads declared" true
                    (List.mem seg reads || List.mem seg writes)
              | Controller.Update cls ->
                if is_write then checki "writes in the root segment" cls seg
                else
                  checkb "reads declared"
                    true
                    (Hdd_core.Partition.may_read wl.Workload.partition
                       ~class_id:cls ~segment:seg))
            ops)
        wl.Workload.templates)
    [ Workload.inventory (); Workload.chain ~depth:4 (); Workload.tree () ]

let test_workload_pick_deterministic () =
  let wl = Workload.inventory () in
  let a = Workload.pick_template wl (Prng.create 9) in
  let b = Workload.pick_template wl (Prng.create 9) in
  Alcotest.check Alcotest.string "same seed same pick" a.Workload.tpl_name
    b.Workload.tpl_name

let test_tree_ro_spans_branches () =
  let wl = Workload.tree ~branches:3 () in
  let ro =
    List.find (fun t -> t.Workload.kind = Controller.Read_only)
      wl.Workload.templates
  in
  let rng = Prng.create 3 in
  let ops = ro.Workload.gen rng in
  let segs =
    List.filter_map
      (function Workload.Read g -> Some g.Granule.segment | _ -> None)
      ops
    |> List.sort_uniq compare
  in
  checkb "two distinct branches plus the base" true (List.length segs = 3)

(* --- runner --- *)

let small_config =
  { Runner.default_config with
    Runner.mpl = 6;
    target_commits = 300;
    seed = 7 }

let test_runner_reaches_target () =
  let wl = Workload.inventory () in
  let r = Runner.run small_config wl (Harness.make Harness.Hdd wl) in
  checki "committed exactly the target" 300 r.Runner.committed;
  checkb "virtual time advanced" true (r.Runner.vtime > 0.);
  checkb "throughput positive" true (r.Runner.throughput > 0.);
  checkb "mean response sane" true (r.Runner.mean_response > 0.)

let test_runner_deterministic () =
  let wl = Workload.inventory () in
  let r1 = Runner.run small_config wl (Harness.make Harness.Hdd wl) in
  let r2 = Runner.run small_config wl (Harness.make Harness.Hdd wl) in
  checki "same commits" r1.Runner.committed r2.Runner.committed;
  checkb "same vtime" true (r1.Runner.vtime = r2.Runner.vtime);
  checki "same restarts" r1.Runner.restarts r2.Runner.restarts

let test_runner_counters_flow () =
  let wl = Workload.inventory () in
  let r = Runner.run small_config wl (Harness.make Harness.S2pl wl) in
  let c = r.Runner.counters in
  checkb "reads happened" true (c.Controller.reads > 0);
  checkb "2PL registers reads" true (c.Controller.read_registrations > 0);
  checki "commit counter matches" r.Runner.committed c.Controller.commits

(* --- end-to-end certification: the heart of the reproduction --- *)

let certify_all wl =
  List.iter
    (fun spec ->
      let result, serializable =
        Harness.certified_run ~config:small_config spec wl
      in
      checkb
        (Printf.sprintf "%s on %s serializable" (Harness.spec_name spec)
           result.Runner.workload)
        true serializable;
      checki
        (Printf.sprintf "%s reached the target" (Harness.spec_name spec))
        300 result.Runner.committed)
    Harness.all_controlled

let test_certified_inventory () = certify_all (Workload.inventory ())
let test_certified_chain () = certify_all (Workload.chain ~depth:4 ())
let test_certified_tree () = certify_all (Workload.tree ~branches:3 ())

let prop_random_hierarchies_certify =
  QCheck2.Test.make
    ~name:"random hierarchies: HDD (and MVTO) certify on random shapes"
    ~count:15
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let wl = Workload.random_hierarchy ~seed () in
      let config =
        { Runner.default_config with
          Runner.mpl = 6;
          target_commits = 150;
          seed }
      in
      let _, hdd_ok = Harness.certified_run ~config Harness.Hdd wl in
      let _, mvto_ok = Harness.certified_run ~config Harness.Mvto wl in
      hdd_ok && mvto_ok)

let test_open_loop_light_load () =
  (* far below capacity: no queueing, response ~ ops x op_cost *)
  let wl = Workload.inventory ~ro_weight:0. () in
  let config =
    { Runner.default_config with Runner.mpl = 8; target_commits = 300; seed = 2 }
  in
  let r =
    Runner.run_open ~arrival_rate:0.05 config wl (Harness.make Harness.Hdd wl)
  in
  checki "reaches the target" 300 r.Runner.committed;
  checkb "no queueing at light load" true (r.Runner.mean_response < 10.);
  (* throughput tracks the arrival rate, not the capacity *)
  checkb "throughput ~ arrival rate" true
    (r.Runner.throughput > 0.03 && r.Runner.throughput < 0.08)

let test_open_loop_overload_queues () =
  let wl = Workload.inventory ~ro_weight:0. () in
  let config =
    { Runner.default_config with Runner.mpl = 4; target_commits = 300; seed = 2 }
  in
  let light =
    Runner.run_open ~arrival_rate:0.1 config wl (Harness.make Harness.Hdd wl)
  in
  let heavy =
    Runner.run_open ~arrival_rate:5.0 config wl (Harness.make Harness.Hdd wl)
  in
  checkb "overload inflates response times" true
    (heavy.Runner.mean_response > 5. *. light.Runner.mean_response)

let test_open_loop_validation () =
  let wl = Workload.inventory () in
  checkb "non-positive rate rejected" true
    (try
       ignore
         (Runner.run_open ~arrival_rate:0. Runner.default_config wl
            (Harness.make Harness.Hdd wl));
       false
     with Invalid_argument _ -> true)

let test_deadlock_detection_resolves () =
  (* a single hot granule with read-then-write templates under 2PL: the
     classic shared-lock upgrade deadlock; the driver must detect it,
     abort a victim and still reach the commit target *)
  let partition =
    Hdd_core.Partition.build_exn
      (Hdd_core.Spec.make ~segments:[ "hot" ]
         ~types:[ Hdd_core.Spec.txn_type ~name:"rmw" ~writes:[ 0 ] ~reads:[ 0 ] ])
  in
  let g = Granule.make ~segment:0 ~key:0 in
  let wl =
    { Workload.wl_name = "deadlock";
      partition;
      templates =
        [ { Workload.tpl_name = "rmw"; kind = Controller.Update 0;
            weight = 1.0;
            gen = (fun _ -> [ Workload.Read g; Workload.Write (g, 1) ]) } ];
      init = (fun _ -> 0) }
  in
  let config =
    { Runner.default_config with Runner.mpl = 4; target_commits = 200; seed = 3 }
  in
  let log = Sched_log.create () in
  let r = Runner.run config wl (Harness.make ~log Harness.S2pl wl) in
  checki "target reached despite deadlocks" 200 r.Runner.committed;
  checkb "deadlocks detected and broken" true (r.Runner.deadlocks > 0);
  checkb "still serializable" true (Hdd_core.Certifier.serializable log)

let test_gc_under_concurrency_certifies () =
  (* long HDD run with aggressive collection: versions stay bounded and
     the schedule still certifies *)
  let wl = Workload.inventory ~items:8 ~base_keys:16 () in
  let log = Sched_log.create () in
  let clock = Time.Clock.create () in
  let store =
    Hdd_mvstore.Store.create ~segments:3 ~init:wl.Workload.init
  in
  let sched =
    Hdd_core.Scheduler.create ~log ~gc_every_commits:16
      ~partition:wl.Workload.partition ~clock ~store ()
  in
  let controller =
    { Controller.name = "HDD+GC";
      begin_txn =
        (function
        | Controller.Update class_id ->
          Hdd_core.Scheduler.begin_update sched ~class_id
        | Controller.Read_only -> Hdd_core.Scheduler.begin_read_only sched
        | Controller.Adhoc { writes; reads } ->
          Hdd_core.Scheduler.begin_adhoc_update sched ~writes ~reads);
      read = Hdd_core.Scheduler.read sched;
      write = Hdd_core.Scheduler.write sched;
      commit = Hdd_core.Scheduler.commit sched;
      abort = Hdd_core.Scheduler.abort sched;
      try_commit = None;
      snapshot = (fun () -> Controller.zero_counters) }
  in
  let config =
    { Runner.default_config with Runner.mpl = 8; target_commits = 1500; seed = 5 }
  in
  let r = Runner.run config wl controller in
  checki "completed" 1500 r.Runner.committed;
  checkb "versions bounded by collection" true
    (Hdd_mvstore.Store.version_count store < 2000);
  checkb "serializable with GC running" true
    (Hdd_core.Certifier.serializable log)

let test_nocc_not_serializable_under_contention () =
  (* few granules, many workers: conflicts guaranteed *)
  let wl =
    Workload.chain ~depth:2 ~keys_per_segment:2 ~cross_read_fraction:0.5
      ~ro_weight:0. ()
  in
  let config = { small_config with Runner.mpl = 8; target_commits = 400 } in
  let _, serializable = Harness.certified_run ~config Harness.Nocc wl in
  checkb "no control, contended: anomalies appear" false serializable

let test_hdd_zero_cross_class_registrations () =
  (* the paper's headline claim, measured end to end: registrations come
     only from root-segment (protocol B) reads.  In a workload whose
     writes are blind and whose every read is cross-class or read-only,
     HDD registers nothing at all. *)
  let partition =
    Hdd_core.Partition.build_exn
      (Hdd_core.Spec.make ~segments:[ "derived"; "events" ]
         ~types:
           [ Hdd_core.Spec.txn_type ~name:"feed" ~writes:[ 1 ] ~reads:[];
             Hdd_core.Spec.txn_type ~name:"derive" ~writes:[ 0 ] ~reads:[ 1 ] ])
  in
  let gr s k = Granule.make ~segment:s ~key:k in
  let wl =
    { Workload.wl_name = "blind-writes";
      partition;
      templates =
        [ { Workload.tpl_name = "feed"; kind = Controller.Update 1;
            weight = 0.4;
            gen = (fun rng -> [ Workload.Write (gr 1 (Prng.int rng 32), 1) ]) };
          { Workload.tpl_name = "derive"; kind = Controller.Update 0;
            weight = 0.4;
            gen =
              (fun rng ->
                [ Workload.Read (gr 1 (Prng.int rng 32));
                  Workload.Write (gr 0 (Prng.int rng 32), 1) ]) };
          { Workload.tpl_name = "audit"; kind = Controller.Read_only;
            weight = 0.2;
            gen =
              (fun rng ->
                [ Workload.Read (gr 0 (Prng.int rng 32));
                  Workload.Read (gr 1 (Prng.int rng 32)) ]) } ];
      init = (fun _ -> 0) }
  in
  let log = Sched_log.create () in
  let c = Harness.make ~log Harness.Hdd wl in
  let r = Runner.run small_config wl c in
  checkb "reads happened" true (r.Runner.counters.Controller.reads > 0);
  checki "zero read registrations" 0
    r.Runner.counters.Controller.read_registrations;
  checkb "still serializable" true (Hdd_core.Certifier.serializable log)

let test_hdd_never_blocks_or_rejects_cross_reads () =
  let wl = Workload.tree ~branches:3 ~ro_weight:0.4 () in
  let r = Runner.run small_config wl (Harness.make Harness.Hdd wl) in
  (* blocks can only come from protocol B (root-segment) reads; in the
     tree workload feeders write blind and derivers read-modify-write
     their own granule, so root conflicts are the only source *)
  checkb "hdd commits everything it starts eventually" true
    (r.Runner.committed = 300)

(* --- retry policy --- *)

module Retry = Hdd_sim.Retry

let test_retry_backoff_shape () =
  let p = { Retry.default with Retry.jitter = 0.0 } in
  let rng = Prng.create 1 in
  Alcotest.check (Alcotest.float 1e-9) "first backoff is base" p.Retry.base
    (Retry.backoff p rng ~attempt:1);
  Alcotest.check (Alcotest.float 1e-9) "doubles per restart"
    (p.Retry.base *. 2.)
    (Retry.backoff p rng ~attempt:2);
  Alcotest.check (Alcotest.float 1e-9) "caps" p.Retry.cap
    (Retry.backoff p rng ~attempt:40);
  Alcotest.check_raises "attempt 0 rejected"
    (Invalid_argument "Retry.backoff: attempt must be >= 1") (fun () ->
      ignore (Retry.backoff p rng ~attempt:0))

let test_retry_jitter_bounded_and_deterministic () =
  let p = Retry.default in
  for attempt = 1 to 10 do
    let d = Retry.backoff p (Prng.create 5) ~attempt in
    let det =
      Float.min p.Retry.cap
        (p.Retry.base *. (p.Retry.multiplier ** float_of_int (attempt - 1)))
    in
    checkb "at least the deterministic part" true (d >= det);
    checkb "jitter bounded" true (d < det *. (1. +. p.Retry.jitter));
    Alcotest.check (Alcotest.float 1e-9) "same seed, same draw" d
      (Retry.backoff p (Prng.create 5) ~attempt)
  done

let test_retry_fixed_matches_legacy () =
  let p = Retry.fixed 4.0 in
  let rng = Prng.create 2 in
  for attempt = 1 to 5 do
    Alcotest.check (Alcotest.float 1e-9) "constant" 4.0
      (Retry.backoff p rng ~attempt)
  done;
  checkb "never gives up" false (Retry.exhausted p ~attempt:1_000_000);
  let m = Retry.monitor p in
  for _ = 1 to 1_000_000 do
    Retry.note_restart m
  done;
  checkb "never livelocked" false (Retry.livelocked m)

let test_retry_exhaustion_and_livelock () =
  let p = { Retry.default with Retry.max_restarts = 3; livelock_window = 5 } in
  checkb "below the cap" false (Retry.exhausted p ~attempt:2);
  checkb "at the cap" true (Retry.exhausted p ~attempt:3);
  let m = Retry.monitor p in
  for _ = 1 to 4 do
    Retry.note_restart m
  done;
  checkb "four restarts: not yet" false (Retry.livelocked m);
  Retry.note_commit m;
  checki "a commit resets the streak" 0 (Retry.consecutive_restarts m);
  for _ = 1 to 5 do
    Retry.note_restart m
  done;
  checkb "five consecutive restarts trip the detector" true
    (Retry.livelocked m)

let test_runner_restart_cap_gives_up () =
  (* TSO on the contended inventory workload restarts plenty; with an
     immediate give-up policy every restart becomes an abandonment and
     the run still terminates *)
  let wl = Workload.inventory () in
  let config =
    { small_config with
      Runner.retry = { (Retry.fixed 4.0) with Retry.max_restarts = 1 } }
  in
  let r = Runner.run config wl (Harness.make Harness.Tso wl) in
  checki "target still reached" 300 r.Runner.committed;
  checkb "transactions were abandoned" true (r.Runner.gave_up > 0);
  checki "every restart gave up" r.Runner.restarts r.Runner.gave_up;
  Alcotest.check (Alcotest.float 1e-9) "no backoff was ever scheduled" 0.
    r.Runner.total_backoff

let test_runner_backoff_accumulates () =
  let wl = Workload.inventory () in
  let r =
    Runner.run small_config wl (Harness.make Harness.Tso wl)
  in
  checkb "some restarts happened" true (r.Runner.restarts > 0);
  checkb "give-ups are rare under the default cap" true
    (r.Runner.gave_up * 10 < r.Runner.restarts + 10);
  checkb "backoff time accumulated" true
    (r.Runner.total_backoff >= 4.0 *. float_of_int (r.Runner.restarts - r.Runner.gave_up));
  checkb "streak recorded" true
    (r.Runner.max_restart_streak > 0
     && r.Runner.max_restart_streak <= r.Runner.restarts)

let suite =
  [ Alcotest.test_case "event queue: time order" `Quick test_event_queue_order;
    Alcotest.test_case "event queue: fifo on ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "event queue: growth" `Quick test_event_queue_growth;
    Alcotest.test_case "event queue: matches sorted-list reference" `Quick
      test_event_queue_matches_sorted_list;
    Alcotest.test_case "workloads: templates respect the spec" `Quick test_workload_templates_valid;
    Alcotest.test_case "workloads: deterministic pick" `Quick test_workload_pick_deterministic;
    Alcotest.test_case "workloads: tree RO spans branches" `Quick test_tree_ro_spans_branches;
    Alcotest.test_case "runner: reaches the target" `Quick test_runner_reaches_target;
    Alcotest.test_case "runner: deterministic" `Quick test_runner_deterministic;
    Alcotest.test_case "runner: counters flow" `Quick test_runner_counters_flow;
    Alcotest.test_case "certified: inventory, all protocols" `Slow test_certified_inventory;
    Alcotest.test_case "certified: chain-4, all protocols" `Slow test_certified_chain;
    Alcotest.test_case "certified: tree-3, all protocols" `Slow test_certified_tree;
    QCheck_alcotest.to_alcotest prop_random_hierarchies_certify;
    Alcotest.test_case "runner: open loop, light load" `Quick test_open_loop_light_load;
    Alcotest.test_case "runner: open loop, overload" `Quick test_open_loop_overload_queues;
    Alcotest.test_case "runner: open loop validation" `Quick test_open_loop_validation;
    Alcotest.test_case "runner: deadlock detection" `Quick test_deadlock_detection_resolves;
    Alcotest.test_case "gc: under concurrency, certified" `Slow test_gc_under_concurrency_certifies;
    Alcotest.test_case "NoCC under contention is not serializable" `Quick test_nocc_not_serializable_under_contention;
    Alcotest.test_case "HDD: zero registrations on cross-class reads" `Quick test_hdd_zero_cross_class_registrations;
    Alcotest.test_case "HDD: full completion on the tree" `Quick test_hdd_never_blocks_or_rejects_cross_reads;
    Alcotest.test_case "retry: backoff shape" `Quick test_retry_backoff_shape;
    Alcotest.test_case "retry: jitter bounded, deterministic" `Quick test_retry_jitter_bounded_and_deterministic;
    Alcotest.test_case "retry: fixed matches legacy" `Quick test_retry_fixed_matches_legacy;
    Alcotest.test_case "retry: exhaustion and livelock" `Quick test_retry_exhaustion_and_livelock;
    Alcotest.test_case "runner: restart cap gives up" `Quick test_runner_restart_cap_gives_up;
    Alcotest.test_case "runner: backoff accumulates" `Quick test_runner_backoff_accumulates ]
