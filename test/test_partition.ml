(* Tests for Spec and Partition: DHG construction, TST-hierarchy
   validation (§3.2), classification, critical paths and UCPs. *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module G = Hdd_graph.Digraph

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_path = Alcotest.check (Alcotest.option (Alcotest.list Alcotest.int))

(* the paper's inventory decomposition: D0 reorders, D1 inventory, D2 events *)
let inventory_spec =
  Spec.make
    ~segments:[ "reorders"; "inventory"; "events" ]
    ~types:
      [ Spec.txn_type ~name:"t1" ~writes:[ 2 ] ~reads:[];
        Spec.txn_type ~name:"t2" ~writes:[ 1 ] ~reads:[ 1; 2 ];
        Spec.txn_type ~name:"t3" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ]

let test_spec_accessors () =
  checki "segments" 3 (Spec.segment_count inventory_spec);
  Alcotest.check Alcotest.string "name" "inventory"
    (Spec.segment_name inventory_spec 1);
  checki "index lookup" 2 (Spec.segment_index inventory_spec "events");
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Spec.segment_index inventory_spec "nope"));
  let t3 = inventory_spec.Spec.types.(2) in
  Alcotest.check (Alcotest.list Alcotest.int) "access set" [ 0; 1; 2 ]
    (Spec.access_set t3);
  checki "types writing D1" 1 (List.length (Spec.types_writing inventory_spec 1))

let test_spec_validation () =
  Alcotest.check_raises "empty segments"
    (Invalid_argument "Spec.make: no segments") (fun () ->
      ignore (Spec.make ~segments:[] ~types:[]));
  Alcotest.check_raises "duplicate segment"
    (Invalid_argument "Spec.make: duplicate segment \"a\"") (fun () ->
      ignore (Spec.make ~segments:[ "a"; "a" ] ~types:[]));
  Alcotest.check_raises "range check"
    (Invalid_argument "Spec.make: type \"x\" references segment 9 (of 1)")
    (fun () ->
      ignore
        (Spec.make ~segments:[ "a" ]
           ~types:[ Spec.txn_type ~name:"x" ~writes:[ 9 ] ~reads:[] ]));
  Alcotest.check_raises "writeless type"
    (Invalid_argument "Spec.make: type \"x\" writes no segment") (fun () ->
      ignore
        (Spec.make ~segments:[ "a" ]
           ~types:[ Spec.txn_type ~name:"x" ~writes:[] ~reads:[ 0 ] ]))

let test_dhg_construction () =
  let dhg = Partition.dhg_of_spec inventory_spec in
  (* t2: 1 -> 2; t3: 0 -> 1 and 0 -> 2; reads of the own segment add no arc *)
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "arcs" [ (0, 1); (0, 2); (1, 2) ] (G.arcs dhg);
  checki "all segments present" 3 (G.node_count dhg)

let test_build_accepts_inventory () =
  match Partition.build inventory_spec with
  | Ok p ->
    checki "segment count" 3 (Partition.segment_count p);
    Alcotest.check
      (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
      "critical arcs drop the transitive 0->2" [ (0, 1); (1, 2) ]
      (G.arcs p.Partition.reduction)
  | Error e -> Alcotest.fail (Partition.error_to_string e)

let test_build_rejects_multi_write () =
  let spec =
    Spec.make ~segments:[ "a"; "b" ]
      ~types:[ Spec.txn_type ~name:"bad" ~writes:[ 0; 1 ] ~reads:[] ]
  in
  match Partition.build spec with
  | Error (Partition.Multiple_write_segments ("bad", [ 0; 1 ])) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Partition.error_to_string e)
  | Ok _ -> Alcotest.fail "multi-write accepted"

let test_build_rejects_cycle () =
  (* class 0 writes a and reads b; class 1 writes b and reads a *)
  let spec =
    Spec.make ~segments:[ "a"; "b" ]
      ~types:
        [ Spec.txn_type ~name:"x" ~writes:[ 0 ] ~reads:[ 1 ];
          Spec.txn_type ~name:"y" ~writes:[ 1 ] ~reads:[ 0 ] ]
  in
  match Partition.build spec with
  | Error (Partition.Cyclic _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Partition.error_to_string e)
  | Ok _ -> Alcotest.fail "cycle accepted"

let test_build_rejects_diamond () =
  (* two undirected paths: 0 -> 1 -> 3 and 0 -> 2 -> 3 *)
  let spec =
    Spec.make ~segments:[ "bottom"; "l"; "r"; "top" ]
      ~types:
        [ Spec.txn_type ~name:"l" ~writes:[ 1 ] ~reads:[ 3 ];
          Spec.txn_type ~name:"r" ~writes:[ 2 ] ~reads:[ 3 ];
          Spec.txn_type ~name:"b" ~writes:[ 0 ] ~reads:[ 1; 2 ] ]
  in
  match Partition.build spec with
  | Error (Partition.Not_semi_tree _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ Partition.error_to_string e)
  | Ok _ -> Alcotest.fail "diamond accepted"

let test_build_exn () =
  checkb "ok case" true (Partition.build_exn inventory_spec |> fun _ -> true);
  checkb "error case raises" true
    (try
       ignore
         (Partition.build_exn
            (Spec.make ~segments:[ "a"; "b" ]
               ~types:[ Spec.txn_type ~name:"bad" ~writes:[ 0; 1 ] ~reads:[] ]));
       false
     with Invalid_argument _ -> true)

let inv = Partition.build_exn inventory_spec

let test_critical_path () =
  check_path "CP 0 to 2" (Some [ 0; 1; 2 ]) (Partition.critical_path inv 0 2);
  check_path "CP to itself" (Some [ 1 ]) (Partition.critical_path inv 1 1);
  check_path "no downward CP" None (Partition.critical_path inv 2 0)

let test_higher_than () =
  checkb "events higher than reorders" true (Partition.higher_than inv 2 0);
  checkb "inventory higher than reorders" true (Partition.higher_than inv 1 0);
  checkb "not reflexive" false (Partition.higher_than inv 1 1);
  checkb "not symmetric" false (Partition.higher_than inv 0 2)

let test_on_one_critical_path () =
  checkb "0 and 2" true (Partition.on_one_critical_path inv 0 2);
  checkb "2 and 0" true (Partition.on_one_critical_path inv 2 0);
  checkb "same class" true (Partition.on_one_critical_path inv 1 1)

let test_ucp () =
  check_path "ucp 0 to 2" (Some [ 0; 1; 2 ]) (Partition.ucp inv 0 2);
  check_path "ucp 2 to 0 reverses" (Some [ 2; 1; 0 ]) (Partition.ucp inv 2 0)

let test_lowest_classes () =
  Alcotest.check (Alcotest.list Alcotest.int) "reorders is lowest" [ 0 ]
    (Partition.lowest_classes inv)

let test_may_read () =
  checkb "own segment" true (Partition.may_read inv ~class_id:1 ~segment:1);
  checkb "higher segment" true (Partition.may_read inv ~class_id:0 ~segment:2);
  checkb "lower segment forbidden" false
    (Partition.may_read inv ~class_id:2 ~segment:0)

let test_branching_hierarchy () =
  (* a semi-tree that is not a chain: two classes below one base *)
  let spec =
    Spec.make ~segments:[ "left"; "right"; "base" ]
      ~types:
        [ Spec.txn_type ~name:"feed" ~writes:[ 2 ] ~reads:[];
          Spec.txn_type ~name:"l" ~writes:[ 0 ] ~reads:[ 2 ];
          Spec.txn_type ~name:"r" ~writes:[ 1 ] ~reads:[ 2 ] ]
  in
  let p = Partition.build_exn spec in
  checkb "siblings not on one CP" false (Partition.on_one_critical_path p 0 1);
  check_path "ucp crosses the base" (Some [ 0; 2; 1 ]) (Partition.ucp p 0 1);
  Alcotest.check (Alcotest.list Alcotest.int) "two lowest classes" [ 0; 1 ]
    (Partition.lowest_classes p)

let test_class_of_type () =
  checki "t3 rooted in D0" 0
    (Partition.class_of_type inv inventory_spec.Spec.types.(2))

let test_to_dot () =
  let dot = Partition.to_dot inv in
  checkb "nonempty dot" true (String.length dot > 20)

let suite =
  [ Alcotest.test_case "spec accessors" `Quick test_spec_accessors;
    Alcotest.test_case "spec validation" `Quick test_spec_validation;
    Alcotest.test_case "DHG construction" `Quick test_dhg_construction;
    Alcotest.test_case "accepts the inventory partition" `Quick test_build_accepts_inventory;
    Alcotest.test_case "rejects multi-write types" `Quick test_build_rejects_multi_write;
    Alcotest.test_case "rejects cyclic DHGs" `Quick test_build_rejects_cycle;
    Alcotest.test_case "rejects non-semi-tree DHGs" `Quick test_build_rejects_diamond;
    Alcotest.test_case "build_exn" `Quick test_build_exn;
    Alcotest.test_case "critical paths" `Quick test_critical_path;
    Alcotest.test_case "higher-than" `Quick test_higher_than;
    Alcotest.test_case "on one critical path" `Quick test_on_one_critical_path;
    Alcotest.test_case "undirected critical paths" `Quick test_ucp;
    Alcotest.test_case "lowest classes" `Quick test_lowest_classes;
    Alcotest.test_case "declared access control" `Quick test_may_read;
    Alcotest.test_case "branching hierarchy" `Quick test_branching_hierarchy;
    Alcotest.test_case "class of type" `Quick test_class_of_type;
    Alcotest.test_case "dot export" `Quick test_to_dot ]
