(* Tests for the multi-version storage substrate: version chains, segment
   controllers, the store, garbage collection, and the single-version
   store used by the classical baselines. *)

module Chain = Hdd_mvstore.Chain
module Achain = Hdd_mvstore.Achain
module Segment = Hdd_mvstore.Segment
module Store = Hdd_mvstore.Store
module Sv = Hdd_mvstore.Sv_store

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_chain_bootstrap () =
  let c = Chain.create ~initial:7 in
  checki "one version" 1 (Chain.length c);
  match Chain.latest_committed c with
  | Some v ->
    checki "bootstrap value" 7 v.Chain.value;
    checki "bootstrap ts" 0 v.Chain.ts;
    checkb "committed" true (v.Chain.state = Chain.Committed)
  | None -> Alcotest.fail "bootstrap version missing"

let test_chain_install_order () =
  let c = Chain.create ~initial:0 in
  ignore (Chain.install c ~ts:5 ~writer:1 ~value:50);
  ignore (Chain.install c ~ts:3 ~writer:2 ~value:30);
  ignore (Chain.install c ~ts:9 ~writer:3 ~value:90);
  Alcotest.check (Alcotest.list Alcotest.int) "newest first"
    [ 9; 5; 3; 0 ]
    (List.map (fun v -> v.Chain.ts) (Chain.versions c))

let test_chain_install_validation () =
  let c = Chain.create ~initial:0 in
  ignore (Chain.install c ~ts:5 ~writer:1 ~value:1);
  Alcotest.check_raises "duplicate ts"
    (Invalid_argument "Chain.install: duplicate version timestamp") (fun () ->
      ignore (Chain.install c ~ts:5 ~writer:2 ~value:2));
  Alcotest.check_raises "non-positive ts"
    (Invalid_argument "Chain.install: ts must be positive") (fun () ->
      ignore (Chain.install c ~ts:0 ~writer:2 ~value:2))

let test_chain_commit_discard () =
  let c = Chain.create ~initial:0 in
  ignore (Chain.install c ~ts:5 ~writer:1 ~value:50);
  Chain.commit c ~ts:5;
  (match Chain.latest_committed c with
  | Some v -> checki "committed version visible" 50 v.Chain.value
  | None -> Alcotest.fail "latest_committed");
  Alcotest.check_raises "discard of committed rejected"
    (Invalid_argument "Chain.discard: version is committed") (fun () ->
      Chain.discard c ~ts:5);
  ignore (Chain.install c ~ts:8 ~writer:2 ~value:80);
  Chain.discard c ~ts:8;
  checki "discarded removed" 2 (Chain.length c);
  checkb "missing commit raises" true
    (try
       Chain.commit c ~ts:99;
       false
     with Not_found -> true)

let test_committed_before () =
  let c = Chain.create ~initial:0 in
  ignore (Chain.install c ~ts:5 ~writer:1 ~value:50);
  Chain.commit c ~ts:5;
  ignore (Chain.install c ~ts:9 ~writer:2 ~value:90);
  (* ts 9 pending: snapshot readers below 12 see ts 5 *)
  (match Chain.committed_before c ~ts:12 with
  | Some v -> checki "skips pending" 5 v.Chain.ts
  | None -> Alcotest.fail "committed_before");
  (match Chain.committed_before c ~ts:5 with
  | Some v -> checki "strictly below" 0 v.Chain.ts
  | None -> Alcotest.fail "committed_before strict");
  match Chain.committed_before c ~ts:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "nothing below zero"

let test_candidate_before () =
  let c = Chain.create ~initial:0 in
  ignore (Chain.install c ~ts:5 ~writer:1 ~value:50);
  (match Chain.candidate_before c ~ts:7 with
  | Some (Chain.Wait_for w) -> checki "waits for writer" 1 w
  | _ -> Alcotest.fail "expected Wait_for");
  Chain.commit c ~ts:5;
  (match Chain.candidate_before c ~ts:7 with
  | Some (Chain.Version v) -> checki "sees committed" 5 v.Chain.ts
  | _ -> Alcotest.fail "expected Version");
  match Chain.candidate_before c ~ts:3 with
  | Some (Chain.Version v) -> checki "older snapshot" 0 v.Chain.ts
  | _ -> Alcotest.fail "expected bootstrap"

let test_mark_read_and_predecessor_rts () =
  let c = Chain.create ~initial:0 in
  ignore (Chain.install c ~ts:5 ~writer:1 ~value:50);
  Chain.commit c ~ts:5;
  (match Chain.candidate_before c ~ts:20 with
  | Some (Chain.Version v) ->
    Chain.mark_read v ~at:20;
    Chain.mark_read v ~at:10 (* lower read does not regress the rts *)
  | _ -> Alcotest.fail "setup");
  (match Chain.predecessor_rts c ~ts:15 with
  | Some rts -> checki "rts visible to writers" 20 rts
  | None -> Alcotest.fail "predecessor_rts");
  match Chain.predecessor_rts c ~ts:30 with
  | Some rts -> checki "rts of newest below 30" 20 rts
  | None -> Alcotest.fail "predecessor_rts newest"

let test_gc () =
  let c = Chain.create ~initial:0 in
  List.iter
    (fun ts ->
      ignore (Chain.install c ~ts ~writer:ts ~value:ts);
      Chain.commit c ~ts)
    [ 2; 4; 6; 8 ];
  ignore (Chain.install c ~ts:10 ~writer:10 ~value:10);
  (* keep the snapshot at 7 readable: versions 6, 8 and pending 10 stay,
     plus version 4 is... strictly older than 6 -> collected *)
  let dropped = Chain.gc c ~before:7 in
  checki "dropped 0,2,4" 3 dropped;
  Alcotest.check (Alcotest.list Alcotest.int) "remaining" [ 10; 8; 6 ]
    (List.map (fun v -> v.Chain.ts) (Chain.versions c));
  (match Chain.committed_before c ~ts:7 with
  | Some v -> checki "snapshot at 7 still served" 6 v.Chain.ts
  | None -> Alcotest.fail "snapshot lost");
  checki "gc idempotent" 0 (Chain.gc c ~before:7)

let test_segment () =
  let s = Segment.create ~id:3 ~init:(fun key -> key * 100) in
  checki "id" 3 (Segment.id s);
  checkb "untouched" false (Segment.mem s 7);
  let c = Segment.chain s 7 in
  (match Achain.latest_committed c with
  | Some v -> checki "initialised by key" 700 v.Chain.value
  | None -> Alcotest.fail "init");
  checkb "materialised" true (Segment.mem s 7);
  checkb "same chain returned" true (Segment.chain s 7 == c);
  checki "granule count" 1 (Segment.granule_count s);
  Alcotest.check (Alcotest.list Alcotest.int) "keys" [ 7 ] (Segment.keys s)

let test_store_routing () =
  let st = Store.create ~segments:2 ~init:(fun g -> g.Granule.segment * 10 + g.Granule.key) in
  checki "segments" 2 (Store.segment_count st);
  let g = Granule.make ~segment:1 ~key:3 in
  (match Store.committed_before st g ~ts:5 with
  | Some v -> checki "routed to segment 1" 13 v.Chain.value
  | None -> Alcotest.fail "routing");
  ignore (Store.install st g ~ts:4 ~writer:9 ~value:99);
  Store.commit_version st g ~ts:4;
  match Store.committed_before st g ~ts:5 with
  | Some v -> checki "new version" 99 v.Chain.value
  | None -> Alcotest.fail "after install"


let test_store_validation () =
  Alcotest.check_raises "zero segments"
    (Invalid_argument "Store.create: segments must be > 0") (fun () ->
      ignore (Store.create ~segments:0 ~init:(fun _ -> 0)));
  let st = Store.create ~segments:1 ~init:(fun _ -> 0) in
  Alcotest.check_raises "segment out of range"
    (Invalid_argument "Store.segment: 5 out of range") (fun () ->
      ignore (Store.segment st 5))

let test_store_gc_and_count () =
  let st = Store.create ~segments:2 ~init:(fun _ -> 0) in
  let g = Granule.make ~segment:0 ~key:1 in
  ignore (Store.install st g ~ts:2 ~writer:1 ~value:1);
  Store.commit_version st g ~ts:2;
  ignore (Store.install st g ~ts:4 ~writer:2 ~value:2);
  Store.commit_version st g ~ts:4;
  checki "versions counted" 3 (Store.version_count st);
  checki "gc drops old" 2 (Store.gc st ~before:10);
  checki "after gc" 1 (Store.version_count st)

(* the array-backed chain must agree with the list-backed one on random
   operation sequences (the DESIGN §6 representation ablation) *)
let test_achain_agrees_with_chain () =
  let rng = Hdd_util.Prng.create 77 in
  let c = Chain.create ~initial:0 in
  let a = Achain.create ~initial:0 in
  let pending = ref [] in
  for step = 1 to 300 do
    match Hdd_util.Prng.int rng 4 with
    | 0 ->
      let ts = step * 2 in
      ignore (Chain.install c ~ts ~writer:step ~value:step);
      ignore (Achain.install a ~ts ~writer:step ~value:step);
      pending := ts :: !pending
    | 1 -> (
      match !pending with
      | ts :: rest ->
        Chain.commit c ~ts;
        Achain.commit a ~ts;
        pending := rest
      | [] -> ())
    | 2 -> (
      match !pending with
      | ts :: rest ->
        Chain.discard c ~ts;
        Achain.discard a ~ts;
        pending := rest
      | [] -> ())
    | _ ->
      let ts = 1 + Hdd_util.Prng.int rng (step * 2) in
      let obs_c =
        match Chain.committed_before c ~ts with
        | Some v -> Some (v.Chain.ts, v.Chain.value)
        | None -> None
      in
      let obs_a =
        match Achain.committed_before a ~ts with
        | Some v -> Some (v.Chain.ts, v.Chain.value)
        | None -> None
      in
      Alcotest.check
        (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
        "committed_before agrees" obs_c obs_a;
      (match (Chain.candidate_before c ~ts, Achain.candidate_before a ~ts) with
      | Some (Chain.Version v1), Some (Chain.Version v2) ->
        checki "candidate ts agrees" v1.Chain.ts v2.Chain.ts
      | Some (Chain.Wait_for w1), Some (Chain.Wait_for w2) ->
        checki "wait target agrees" w1 w2
      | None, None -> ()
      | _ -> Alcotest.fail "candidate_before disagrees")
  done;
  checki "same length" (Chain.length c) (Achain.length a);
  (* and gc agrees *)
  checki "gc drops the same count" (Chain.gc c ~before:300)
    (Achain.gc a ~before:300)

let test_achain_basics () =
  let a = Achain.create ~initial:7 in
  (match Achain.latest_committed a with
  | Some v -> checki "bootstrap" 7 v.Chain.value
  | None -> Alcotest.fail "bootstrap");
  ignore (Achain.install a ~ts:5 ~writer:1 ~value:50);
  Alcotest.check_raises "duplicate ts"
    (Invalid_argument "Achain.install: duplicate version timestamp")
    (fun () -> ignore (Achain.install a ~ts:5 ~writer:2 ~value:2));
  Achain.commit a ~ts:5;
  Alcotest.check_raises "discard committed"
    (Invalid_argument "Achain.discard: version is committed") (fun () ->
      Achain.discard a ~ts:5);
  (match Achain.predecessor_rts a ~ts:9 with
  | Some rts -> checki "fresh rts" 0 rts
  | None -> Alcotest.fail "predecessor");
  Alcotest.check (Alcotest.list Alcotest.int) "newest first" [ 5; 0 ]
    (List.map (fun v -> v.Chain.ts) (Achain.versions a))

let test_sv_store () =
  let sv = Sv.create ~init:(fun g -> g.Granule.key) in
  let g = Granule.make ~segment:0 ~key:5 in
  let v, wts = Sv.read sv g in
  checki "initial value" 5 v;
  checki "initial wts" 0 wts;
  Sv.write sv g ~value:50 ~wts:3;
  let v, wts = Sv.read sv g in
  checki "written value" 50 v;
  checki "written wts" 3 wts;
  Sv.set_rts sv g 7;
  Sv.set_rts sv g 4 (* must not regress *);
  checki "rts" 7 (Sv.cell sv g).Sv.rts;
  checki "granules" 1 (Sv.granule_count sv)

let suite =
  [ Alcotest.test_case "chain: bootstrap" `Quick test_chain_bootstrap;
    Alcotest.test_case "chain: install keeps order" `Quick test_chain_install_order;
    Alcotest.test_case "chain: install validation" `Quick test_chain_install_validation;
    Alcotest.test_case "chain: commit and discard" `Quick test_chain_commit_discard;
    Alcotest.test_case "chain: committed_before" `Quick test_committed_before;
    Alcotest.test_case "chain: candidate_before" `Quick test_candidate_before;
    Alcotest.test_case "chain: read marks and predecessor rts" `Quick test_mark_read_and_predecessor_rts;
    Alcotest.test_case "chain: garbage collection" `Quick test_gc;
    Alcotest.test_case "segment controller" `Quick test_segment;
    Alcotest.test_case "store: routing" `Quick test_store_routing;
    Alcotest.test_case "store: validation" `Quick test_store_validation;
    Alcotest.test_case "store: gc and version count" `Quick test_store_gc_and_count;
    Alcotest.test_case "achain: agreement with chain" `Quick test_achain_agrees_with_chain;
    Alcotest.test_case "achain: basics" `Quick test_achain_basics;
    Alcotest.test_case "single-version store" `Quick test_sv_store ]
