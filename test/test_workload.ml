(* The open-loop workload suite (DESIGN.md §18): the TPC-C-shaped mix
   on the branch decomposition, the arrival samplers, the open-loop SLO
   measurement, and the hybrid benchmark's own gates. *)

module P = Hdd_core.Partition
module Hy = Hdd_hybrid.Hybrid_sched
module Runner = Hdd_sim.Runner
module Adapters = Hdd_sim.Adapters
module Workload = Hdd_sim.Workload
module Controller = Hdd_sim.Controller
module Tpcc = Hdd_workload.Tpcc
module Arrivals = Hdd_workload.Arrivals
module Openloop = Hdd_workload.Openloop
module Wbench = Hdd_workload.Wbench
module Prng = Hdd_util.Prng

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checki = Alcotest.check Alcotest.int

(* Every generated operation must be legal for its template's class —
   updates write only their root segment and read only segments the
   partition grants — and the stock class must stay escalatable, or the
   hybrid has nothing to work with. *)
let test_tpcc_shape () =
  List.iter
    (fun contention ->
      let wl = Tpcc.workload ~contention () in
      let total =
        List.fold_left (fun a t -> a +. t.Workload.weight) 0.
          wl.Workload.templates
      in
      checkb "weights sum to ~1" true (abs_float (total -. 1.) < 1e-6);
      let stock = Tpcc.stock_class ~branches:Tpcc.default_branches in
      let el = Hy.eligible_classes wl.Workload.partition in
      checkb "stock class is escalatable" true el.(stock);
      let prng = Prng.create 5 in
      List.iter
        (fun (tpl : Workload.template) ->
          match tpl.Workload.kind with
          | Controller.Update cls ->
            List.iter
              (fun op ->
                let g, writing =
                  match op with
                  | Workload.Read g -> (g, false)
                  | Workload.Write (g, _) -> (g, true)
                in
                if writing then
                  checki
                    (Printf.sprintf "%s writes its root" tpl.Workload.tpl_name)
                    cls g.Granule.segment
                else
                  checkb
                    (Printf.sprintf "%s reads legally" tpl.Workload.tpl_name)
                    true
                    (P.may_read wl.Workload.partition ~class_id:cls
                       ~segment:g.Granule.segment))
              (tpl.Workload.gen prng)
          | _ -> ())
        wl.Workload.templates)
    [ `Low; `High ]

let test_arrivals () =
  let prng = Prng.create 3 in
  let p = Arrivals.poisson ~rate:2.0 in
  let n = 4000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let x = p prng in
    checkb "gap nonnegative" true (x >= 0.);
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  checkb "poisson mean near 1/rate" true (abs_float (mean -. 0.5) < 0.05);
  let b =
    Arrivals.bursty ~rate_calm:0.5 ~rate_burst:8.0 ~mean_calm:20.
      ~mean_burst:5.
  in
  let sum_b = ref 0. in
  for _ = 1 to n do
    let x = b prng in
    checkb "bursty gap nonnegative" true (x >= 0.);
    sum_b := !sum_b +. x
  done;
  let mean_b = !sum_b /. float_of_int n in
  checkb "bursty mean between the two regimes" true
    (mean_b > 1. /. 8. && mean_b < 1. /. 0.5);
  checkb "users sampler validates" true
    (try
       let (_ : Arrivals.t) = Arrivals.users ~count:0 ~think_time:1. in
       false
     with Invalid_argument _ -> true)

(* A million simulated users against the low-contention mix: the SLO
   record must be internally consistent and the offered rate must be
   exactly the population over the think time. *)
let test_openloop_slo () =
  let wl = Tpcc.workload ~contention:`Low () in
  let controller =
    Adapters.hdd ~partition:wl.Workload.partition ~init:wl.Workload.init ()
  in
  let config =
    { Runner.default_config with Runner.mpl = 8; target_commits = 200 }
  in
  let _r, slo =
    Openloop.run_users ~users:1_000_000 ~think_time:2_000_000. config wl
      controller
  in
  checki "every commit measured" 200 slo.Openloop.s_committed;
  check (Alcotest.float 1e-9) "offered rate is users/think" 0.5
    slo.Openloop.s_offered_rate;
  checkb "quantiles ordered" true
    (slo.Openloop.s_p50 <= slo.Openloop.s_p99
    && slo.Openloop.s_p99 <= slo.Openloop.s_p999);
  checkb "mean positive" true (slo.Openloop.s_mean > 0.)

let test_wbench_quick_gates () =
  let r = Wbench.run ~quick:true () in
  checks "gates green" "" (String.concat "\n" (Wbench.gates r));
  checki "six cells" 6 (List.length r.Wbench.w_cells);
  checkb "deterministic rerun" true (Wbench.run ~quick:true () = r)

let suite =
  [ Alcotest.test_case "tpcc shape is legal" `Quick test_tpcc_shape;
    Alcotest.test_case "arrival samplers" `Quick test_arrivals;
    Alcotest.test_case "open-loop SLO" `Quick test_openloop_slo;
    Alcotest.test_case "bench gates green (quick)" `Slow
      test_wbench_quick_gates ]
