(* Tests for the activity-link machinery: A, B, E (§4.1, §5.1), the
   paper's Properties 2.1 and 2.2 as randomized properties, time walls
   and the Lemma 2.1 separation, and the topologically-follows relation
   (Properties 1.1 and 1.2). *)

module Activity = Hdd_core.Activity
module Partition = Hdd_core.Partition
module Timewall = Hdd_core.Timewall
module Follows = Hdd_core.Follows

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let chain3 = History_gen.chain_partition 3

let mk_ctx partition =
  let registry =
    Registry.create ~classes:(Partition.segment_count partition) ()
  in
  (Activity.make_ctx partition registry, registry)

(* --- A function on hand-built histories --- *)

let test_a_fn_idle () =
  let ctx, _ = mk_ctx chain3 in
  (* no activity anywhere: A is the identity *)
  checki "identity through an idle chain" 42
    (Activity.a_fn ctx ~from_class:0 ~to_class:2 42)

let test_a_fn_direct () =
  let ctx, reg = mk_ctx chain3 in
  let t = Txn.make ~id:1 ~kind:(Txn.Update 2) ~init:10 in
  Registry.register reg t;
  (* class 2 has an active transaction from 10: the threshold for a
     class-1 reader initiated at 15 is 10 *)
  checki "oldest active caps the threshold" 10
    (Activity.a_fn ctx ~from_class:1 ~to_class:2 15);
  Txn.commit t ~at:12;
  checki "after commit the threshold is the query time" 15
    (Activity.a_fn ctx ~from_class:1 ~to_class:2 15)

let test_a_fn_composes () =
  let ctx, reg = mk_ctx chain3 in
  (* class 1 active from 5, class 2 active from 3 *)
  Registry.register reg (Txn.make ~id:1 ~kind:(Txn.Update 2) ~init:3);
  Registry.register reg (Txn.make ~id:2 ~kind:(Txn.Update 1) ~init:5);
  (* A_0^2(9) = I_2(I_1(9)) = I_2(5) = 3 *)
  checki "two-hop composition" 3 (Activity.a_fn ctx ~from_class:0 ~to_class:2 9);
  checki "one-hop to class 1" 5 (Activity.a_fn ctx ~from_class:0 ~to_class:1 9)

let test_a_fn_same_class_identity () =
  let ctx, _ = mk_ctx chain3 in
  checki "A_i^i is the identity" 7 (Activity.a_fn ctx ~from_class:1 ~to_class:1 7)

let test_a_fn_trace () =
  let ctx, reg = mk_ctx chain3 in
  Registry.register reg (Txn.make ~id:1 ~kind:(Txn.Update 1) ~init:5);
  let trace = Activity.a_fn_trace ctx ~from_class:0 ~to_class:2 9 in
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "trace shows each hop" [ (0, 9); (1, 5); (2, 5) ] trace

let test_a_fn_no_path () =
  let ctx, _ = mk_ctx chain3 in
  Alcotest.check_raises "downward A undefined"
    (Invalid_argument "Activity: no critical path from T2 to T0") (fun () ->
      ignore (Activity.a_fn ctx ~from_class:2 ~to_class:0 5))

(* --- B function --- *)

let test_b_fn_blocked () =
  let ctx, reg = mk_ctx chain3 in
  Registry.register reg (Txn.make ~id:7 ~kind:(Txn.Update 2) ~init:3);
  match Activity.b_fn ctx ~from_class:0 ~to_class:2 5 with
  | Error id -> checki "blocked by the straggler" 7 id
  | Ok _ -> Alcotest.fail "B computable with an active transaction"

let test_b_fn_applies_above_bottom () =
  let ctx, reg = mk_ctx chain3 in
  let t2 = Txn.make ~id:1 ~kind:(Txn.Update 2) ~init:3 in
  let t1 = Txn.make ~id:2 ~kind:(Txn.Update 1) ~init:4 in
  let t0 = Txn.make ~id:3 ~kind:(Txn.Update 0) ~init:5 in
  Registry.register reg t2;
  Registry.register reg t1;
  Registry.register reg t0;
  Txn.commit t2 ~at:10;
  Txn.commit t1 ~at:20;
  (* t0 stays active: B from class 0 up to 2 never consults class 0, so it
     must still be computable *)
  (match Activity.b_fn ctx ~from_class:0 ~to_class:2 5 with
  | Ok v ->
    (* C_2(5) = 10 (t2 spans 5), then C_1(10) = 20 (t1 spans 10) *)
    checki "C_late composed above the bottom class" 20 v
  | Error _ -> Alcotest.fail "B must ignore the bottom class");
  Txn.commit t0 ~at:30

(* --- Properties 2.1 and 2.2 on random quiescent histories --- *)

let seeds = QCheck2.Gen.int_range 0 100000

let prop_a_b_inverse =
  QCheck2.Test.make ~name:"Property 2.1: A(B(m)) >= m" ~count:60 seeds
    (fun seed ->
      let h = History_gen.random ~seed ~steps:60 ~classes:3 () in
      let ctx = Activity.make_ctx chain3 h.History_gen.registry in
      let horizon = Time.Clock.now h.History_gen.clock in
      let ok = ref true in
      for m = 1 to horizon do
        match Activity.b_fn ctx ~from_class:0 ~to_class:2 m with
        | Error _ -> ok := false (* quiescent: must be computable *)
        | Ok b ->
          if Activity.a_fn ctx ~from_class:0 ~to_class:2 b < m then ok := false
      done;
      !ok)

let prop_a_b_epsilon =
  QCheck2.Test.make ~name:"Property 2.2: A(B(m) - 1) < m" ~count:60 seeds
    (fun seed ->
      let h = History_gen.random ~seed ~steps:60 ~classes:3 () in
      let ctx = Activity.make_ctx chain3 h.History_gen.registry in
      let horizon = Time.Clock.now h.History_gen.clock in
      let ok = ref true in
      for m = 1 to horizon do
        match Activity.b_fn ctx ~from_class:0 ~to_class:2 m with
        | Error _ -> ok := false
        | Ok b ->
          if Activity.a_fn ctx ~from_class:0 ~to_class:2 (b - 1) >= m then
            ok := false
      done;
      !ok)

let prop_i_old_monotone =
  QCheck2.Test.make ~name:"I_old is monotone and below the identity" ~count:60
    seeds (fun seed ->
      let h = History_gen.random ~seed ~steps:60 ~classes:3 () in
      let ctx = Activity.make_ctx chain3 h.History_gen.registry in
      let horizon = Time.Clock.now h.History_gen.clock in
      let ok = ref true in
      for cls = 0 to 2 do
        for m = 1 to horizon - 1 do
          let a = Activity.i_old ctx ~class_id:cls m in
          let b = Activity.i_old ctx ~class_id:cls (m + 1) in
          if a > b || a > m then ok := false
        done
      done;
      !ok)

(* --- E function and time walls --- *)

let branch2 = History_gen.branch_partition 2
(* classes: 0, 1 = branches; 2 = base (higher than both) *)

let test_e_fn_same_class () =
  let ctx, _ = mk_ctx branch2 in
  match Activity.e_fn ctx ~s:0 ~i:0 9 with
  | Ok v -> checki "identity" 9 v
  | Error _ -> Alcotest.fail "identity computable"

let test_e_fn_up () =
  let ctx, reg = mk_ctx branch2 in
  Registry.register reg (Txn.make ~id:1 ~kind:(Txn.Update 2) ~init:4);
  match Activity.e_fn ctx ~s:0 ~i:2 9 with
  | Ok v -> checki "up-step is I_old" 4 v
  | Error _ -> Alcotest.fail "up path computable"

let test_e_fn_across_branches () =
  let ctx, reg = mk_ctx branch2 in
  let tb = Txn.make ~id:1 ~kind:(Txn.Update 2) ~init:4 in
  Registry.register reg tb;
  Txn.commit tb ~at:12;
  (* E_0^1(9) walks 0 -> 2 upward: I_2(9) = 4 (tb spans 9), then 2 -> 1
     downward, applying C_late at the source class 2: C_2(4) = 4 under the
     strict boundary (tb, initiated exactly at 4, is not active at 4), so
     both branch thresholds line up at tb's initiation. *)
  (match Activity.e_fn ctx ~s:0 ~i:1 9 with
  | Ok v -> checki "across branches" 4 v
  | Error _ -> Alcotest.fail "computable");
  match Activity.e_fn ctx ~s:0 ~i:2 9 with
  | Ok v -> checki "base threshold matches" 4 v
  | Error _ -> Alcotest.fail "computable"

(* A hierarchy deep enough for E to descend through an intermediate class:
   0 -> 2 <- 1 <- 3 (class 3 sits below branch 1).  C_late right after
   I_old at the apex can never block (any straggler there would already
   have lowered I_old), so blocking needs a descent of length two. *)
let deep_tree =
  let module Spec = Hdd_core.Spec in
  Partition.build_exn
    (Spec.make
       ~segments:[ "b0"; "b1"; "base"; "leaf" ]
       ~types:
         [ Spec.txn_type ~name:"feed" ~writes:[ 2 ] ~reads:[];
           Spec.txn_type ~name:"d0" ~writes:[ 0 ] ~reads:[ 0; 2 ];
           Spec.txn_type ~name:"d1" ~writes:[ 1 ] ~reads:[ 1; 2 ];
           Spec.txn_type ~name:"leaf" ~writes:[ 3 ] ~reads:[ 1; 3 ] ])

let test_e_fn_blocked_reports_straggler () =
  let ctx, reg = mk_ctx deep_tree in
  (* straggler in the intermediate class 1: E_0^3 must wait for it *)
  Registry.register reg (Txn.make ~id:9 ~kind:(Txn.Update 1) ~init:4);
  match Activity.e_fn ctx ~s:0 ~i:3 9 with
  | Error id -> checki "straggler reported" 9 id
  | Ok _ -> Alcotest.fail "must wait for the intermediate straggler"

let test_timewall_compute_idle () =
  let ctx, _ = mk_ctx branch2 in
  match Timewall.compute ctx ~m:5 with
  | Ok components ->
    Alcotest.check (Alcotest.array Alcotest.int) "identity wall"
      [| 5; 5; 5 |] components
  | Error _ -> Alcotest.fail "idle wall computable"

let test_timewall_manager () =
  let partition = deep_tree in
  let registry = Registry.create ~classes:4 () in
  let ctx = Activity.make_ctx partition registry in
  let clock = Time.Clock.create () in
  let mgr = Timewall.create ctx ~clock in
  checki "initial wall released" 1 (Timewall.release_count mgr);
  let w0 = Timewall.current mgr in
  (* stragglers in the base and the intermediate class: the release is
     blocked by the intermediate one on the descent towards the leaf *)
  let tb = Txn.make ~id:1 ~kind:(Txn.Update 2) ~init:(Time.Clock.tick clock) in
  Registry.register registry tb;
  let t1 = Txn.make ~id:2 ~kind:(Txn.Update 1) ~init:(Time.Clock.tick clock) in
  Registry.register registry t1;
  Txn.commit tb ~at:(Time.Clock.tick clock);
  (match Timewall.try_release mgr with
  | Error id -> checki "blocked by the intermediate straggler" 2 id
  | Ok _ -> Alcotest.fail "must block");
  Txn.commit t1 ~at:(Time.Clock.tick clock);
  (match Timewall.try_release mgr with
  | Ok w -> checkb "newer wall" true (w.Timewall.released_at > w0.Timewall.released_at)
  | Error _ -> Alcotest.fail "must release after commit");
  checki "two released walls" 2 (Timewall.release_count mgr);
  (* latest_before picks the newest wall strictly before the time *)
  let newest = Timewall.current mgr in
  (match Timewall.latest_before mgr (newest.Timewall.released_at + 1) with
  | Some w -> checkb "newest selected" true (w == newest)
  | None -> Alcotest.fail "wall available");
  match Timewall.latest_before mgr w0.Timewall.released_at with
  | Some _ -> Alcotest.fail "nothing strictly before the first wall"
  | None -> ()

let test_timewall_threshold_accessor () =
  let ctx, _ = mk_ctx branch2 in
  let clock = Time.Clock.create () in
  let mgr = Timewall.create ctx ~clock in
  let w = Timewall.current mgr in
  checki "threshold accessor matches array" w.Timewall.components.(1)
    (Timewall.threshold w ~class_id:1)

(* Lemma 2.1, empirically: build a random history on the branch
   hierarchy, compute a wall, and verify that across every pair of
   classes on one critical path no old-side transaction topologically
   follows... precisely: t1 on the old side of the wall can never
   directly depend on t2 on the new side, and PSR admits arcs only along
   =>, so we check not (t1 => t2). *)
let prop_wall_separation =
  QCheck2.Test.make ~name:"Lemma 2.1: no => crosses a time wall" ~count:60
    seeds (fun seed ->
      let h = History_gen.random ~seed ~steps:80 ~classes:3 () in
      let ctx = Activity.make_ctx branch2 h.History_gen.registry in
      let horizon = Time.Clock.now h.History_gen.clock in
      let ok = ref true in
      List.iter
        (fun m ->
          match Timewall.compute ctx ~m with
          | Error _ -> ok := false
          | Ok wall ->
            List.iter
              (fun (t1 : Txn.t) ->
                List.iter
                  (fun (t2 : Txn.t) ->
                    match (Txn.class_of t1, Txn.class_of t2) with
                    | Some c1, Some c2 ->
                      if
                        t1.Txn.init < wall.(c1)
                        && t2.Txn.init >= wall.(c2)
                        && Follows.follows ctx t1 t2 = Some true
                      then ok := false
                    | _ -> ())
                  h.History_gen.all)
              h.History_gen.all)
        [ 1; horizon / 2; horizon ];
      !ok)

(* --- the => relation (§4.3) --- *)

let test_follows_same_class () =
  let ctx, reg = mk_ctx chain3 in
  let t1 = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:5 in
  let t2 = Txn.make ~id:2 ~kind:(Txn.Update 0) ~init:9 in
  Registry.register reg t1;
  Registry.register reg t2;
  Alcotest.check (Alcotest.option Alcotest.bool) "later follows earlier"
    (Some true) (Follows.follows ctx t2 t1);
  Alcotest.check (Alcotest.option Alcotest.bool) "earlier does not"
    (Some false) (Follows.follows ctx t1 t2)

let test_follows_undefined () =
  let ctx, _ = mk_ctx branch2 in
  let t1 = Txn.make ~id:1 ~kind:(Txn.Update 0) ~init:5 in
  let t2 = Txn.make ~id:2 ~kind:(Txn.Update 1) ~init:9 in
  Alcotest.check (Alcotest.option Alcotest.bool)
    "siblings not on one critical path" None (Follows.follows ctx t1 t2);
  let ro = Txn.make ~id:3 ~kind:Txn.Read_only ~init:7 in
  Alcotest.check (Alcotest.option Alcotest.bool) "read-only undefined" None
    (Follows.follows ctx ro t1);
  checkb "defined predicate" false (Follows.defined ctx t1 t2)

let prop_follows_antisymmetric =
  QCheck2.Test.make ~name:"Property 1.1: => is antisymmetric" ~count:60 seeds
    (fun seed ->
      let h = History_gen.random ~seed ~steps:60 ~classes:3 () in
      let ctx = Activity.make_ctx chain3 h.History_gen.registry in
      List.for_all
        (fun t1 ->
          List.for_all
            (fun t2 ->
              t1 == t2
              || not
                   (Follows.follows ctx t1 t2 = Some true
                   && Follows.follows ctx t2 t1 = Some true))
            h.History_gen.all)
        h.History_gen.all)

(* The paper proves Property 1.2 by exhausting 13 cases — precisely the
   13 weak orderings of the three classes (T_i, T_k, T_j).  The test
   classifies every applicable triple by that signature and requires all
   13 cases to have been exercised, so the property test covers the same
   ground as the appendix proof. *)
let weak_order_signature i k j =
  let cmp a b = if a < b then '<' else if a = b then '=' else '>' in
  Printf.sprintf "%c%c%c" (cmp i k) (cmp k j) (cmp i j)

let follows_cases_covered : (string, unit) Hashtbl.t = Hashtbl.create 13

let prop_follows_transitive =
  QCheck2.Test.make
    ~name:"Property 1.2: => is critical-path transitive (13-case coverage)"
    ~count:40 seeds
    (fun seed ->
      let h = History_gen.random ~seed ~steps:40 ~classes:3 () in
      let ctx = Activity.make_ctx chain3 h.History_gen.registry in
      let covered = Hashtbl.create 13 in
      (* all classes of a chain are on one critical path *)
      let holds =
        List.for_all
          (fun t1 ->
            List.for_all
              (fun t2 ->
                List.for_all
                  (fun t3 ->
                    if
                      Follows.follows ctx t1 t2 = Some true
                      && Follows.follows ctx t2 t3 = Some true
                    then begin
                      (match
                         (Txn.class_of t1, Txn.class_of t2, Txn.class_of t3)
                       with
                      | Some i, Some k, Some j ->
                        Hashtbl.replace covered
                          (weak_order_signature i k j) ()
                      | _ -> ());
                      Follows.follows ctx t1 t3 = Some true
                    end
                    else true)
                  h.History_gen.all)
              h.History_gen.all)
          h.History_gen.all
      in
      (* per-seed coverage is partial; the aggregate check below sums it *)
      Hashtbl.iter
        (fun sig_ () -> Hashtbl.replace follows_cases_covered sig_ ())
        covered;
      holds)

let test_follows_case_coverage () =
  (* runs after the property (alcotest preserves suite order): all 13
     weak orderings of (i, k, j) must have produced applicable premises *)
  checki "all 13 proof cases of Property 1.2 exercised" 13
    (Hashtbl.length follows_cases_covered)

(* --- mixed histories: aborts, ad-hoc updates, read-only transactions --- *)

let prop_a_b_inverse_abort_heavy =
  (* Property 2.1 again, but on histories where most finishes are aborts
     and a fifth of the begins are ad-hoc updates joining two classes:
     aborts count as activity ends and ad-hoc members widen windows, and
     the composition bound must survive both *)
  QCheck2.Test.make ~name:"Property 2.1 under abort-heavy ad-hoc histories"
    ~count:60 seeds (fun seed ->
      let h =
        History_gen.random ~seed ~steps:60 ~classes:3 ~commit_bias:2
          ~adhoc_weight:20 ()
      in
      let ctx = Activity.make_ctx chain3 h.History_gen.registry in
      let horizon = Time.Clock.now h.History_gen.clock in
      let ok = ref true in
      for m = 1 to horizon do
        match Activity.b_fn ctx ~from_class:0 ~to_class:2 m with
        | Error _ -> ok := false
        | Ok b ->
          if Activity.a_fn ctx ~from_class:0 ~to_class:2 b < m then ok := false
      done;
      !ok)

let prop_ro_invisible_to_registry =
  (* Protocol C's precondition: ad-hoc read-only transactions must never
     reach the registry (walls serve them; activity links ignore them),
     while ad-hoc updates must be on record in every class they joined —
     and a quiesced history must still release a wall that dominates the
     initial one in every component *)
  QCheck2.Test.make
    ~name:"read-only invisible to activity, ad-hoc updates fully joined"
    ~count:60 seeds (fun seed ->
      let h =
        History_gen.random ~seed ~steps:80 ~classes:3 ~commit_bias:4
          ~ro_weight:30 ~adhoc_weight:15 ()
      in
      let registered cls =
        List.map
          (fun (t : Txn.t) -> t.Txn.id)
          (Registry.transactions h.History_gen.registry ~class_id:cls)
      in
      let all_registered = List.concat_map registered [ 0; 1; 2 ] in
      let ro_hidden =
        List.for_all
          (fun (t : Txn.t) -> not (List.mem t.Txn.id all_registered))
          h.History_gen.read_only
      in
      let adhoc_joined =
        List.for_all
          (fun ((t : Txn.t), joined) ->
            List.for_all (fun c -> List.mem t.Txn.id (registered c)) joined)
          h.History_gen.adhoc
      in
      let ctx = Activity.make_ctx chain3 h.History_gen.registry in
      let mgr = Timewall.create ctx ~clock:h.History_gen.clock in
      let w0 = Timewall.current mgr in
      let wall_ok =
        match Timewall.try_release mgr with
        | Error _ -> false (* quiescent: must be computable *)
        | Ok w ->
          List.for_all
            (fun c ->
              Timewall.threshold w ~class_id:c
              >= Timewall.threshold w0 ~class_id:c)
            [ 0; 1; 2 ]
      in
      ro_hidden && adhoc_joined && wall_ok)

let suite =
  [ Alcotest.test_case "A: idle identity" `Quick test_a_fn_idle;
    Alcotest.test_case "A: direct arc" `Quick test_a_fn_direct;
    Alcotest.test_case "A: multi-hop composition" `Quick test_a_fn_composes;
    Alcotest.test_case "A: same class" `Quick test_a_fn_same_class_identity;
    Alcotest.test_case "A: trace" `Quick test_a_fn_trace;
    Alcotest.test_case "A: undefined downward" `Quick test_a_fn_no_path;
    Alcotest.test_case "B: blocked by stragglers" `Quick test_b_fn_blocked;
    Alcotest.test_case "B: excludes the bottom class" `Quick test_b_fn_applies_above_bottom;
    Alcotest.test_case "E: same class" `Quick test_e_fn_same_class;
    Alcotest.test_case "E: upward path" `Quick test_e_fn_up;
    Alcotest.test_case "E: across branches" `Quick test_e_fn_across_branches;
    Alcotest.test_case "E: straggler reported" `Quick test_e_fn_blocked_reports_straggler;
    Alcotest.test_case "wall: idle compute" `Quick test_timewall_compute_idle;
    Alcotest.test_case "wall: manager lifecycle" `Quick test_timewall_manager;
    Alcotest.test_case "wall: threshold accessor" `Quick test_timewall_threshold_accessor;
    Alcotest.test_case "follows: same class" `Quick test_follows_same_class;
    Alcotest.test_case "follows: undefined cases" `Quick test_follows_undefined;
    QCheck_alcotest.to_alcotest prop_a_b_inverse;
    QCheck_alcotest.to_alcotest prop_a_b_epsilon;
    QCheck_alcotest.to_alcotest prop_i_old_monotone;
    QCheck_alcotest.to_alcotest prop_wall_separation;
    QCheck_alcotest.to_alcotest prop_follows_antisymmetric;
    QCheck_alcotest.to_alcotest prop_follows_transitive;
    QCheck_alcotest.to_alcotest prop_a_b_inverse_abort_heavy;
    QCheck_alcotest.to_alcotest prop_ro_invisible_to_registry;
    Alcotest.test_case "Property 1.2: proof-case coverage" `Quick
      test_follows_case_coverage ]
