(* The observability stack: the trace ring (encode/decode round-trips,
   eviction, determinism), the metrics registry and its standard event
   bridge, seeded violations for each of the four invariant monitors
   (every check shown to actually fire, guarding against vacuity), the
   monitors run green over every curated explorer scenario, golden
   byte-stable traces for those scenarios, and the observability-
   invisibility property: a full observability stack changes no outcome
   of any schedule. *)

module Trace = Hdd_obs.Trace
module Metrics = Hdd_obs.Metrics
module Monitor = Hdd_obs.Monitor
module Explore = Hdd_check.Explore
module Scenarios = Hdd_check.Scenarios
module Gen = Hdd_check.Gen
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- the trace ring --- *)

(* one of each event shape, exercising both the flattened and the boxed
   slot encodings *)
let one_of_each =
  [ Trace.Begin { txn = 1; kind = Trace.Update 2; init = 10 };
    Trace.Begin { txn = 2; kind = Trace.Read_only; init = 11 };
    Trace.Begin { txn = 3; kind = Trace.Hosted 4; init = 12 };
    Trace.Begin
      { txn = 4;
        kind = Trace.Adhoc { wsegs = [ 0; 2 ]; rsegs = [ 1 ] };
        init = 13 };
    Trace.Read
      { txn = 1; protocol = Trace.A; segment = 3; key = 7; threshold = 10;
        version = 9 };
    Trace.Block
      { txn = 1; protocol = Trace.B; segment = 2; key = 0; on = [ 5; 6 ] };
    Trace.Reject
      { txn = 2; protocol = Some Trace.B; stage = Trace.Rule; segment = 1;
        reason = "late write" };
    Trace.Reject
      { txn = 2; protocol = None; stage = Trace.Routing; segment = -1;
        reason = "read-only transactions do not write" };
    Trace.Write { txn = 1; segment = 2; key = 3; ts = 10 };
    Trace.Commit { txn = 1; at = 15 };
    Trace.Abort { txn = 2; at = 16 };
    Trace.Wall_release
      { m = 14; released_at = 17; components = [| 14; 13; 12 |] };
    Trace.Wall_blocked { on = 9 };
    Trace.Gc { watermark = 12; vector = [| 12; 13; 14 |]; dropped = 5 };
    Trace.Seg_gc { segment = 1; dropped = 3 };
    Trace.Registry_prune
      { upto = 12; records_dropped = 4; windows_dropped = 2 };
    Trace.Sim { label = "restart"; txn = 3 };
    Trace.Repartition
      { epoch = 1; kind = "migrate"; moved = [ 2; 0 ]; fresh_store = false };
    Trace.Repartition
      { epoch = 2; kind = "split"; moved = [ 1; 3 ]; fresh_store = true };
    Trace.Note "checkpoint" ]

let test_ring_roundtrip () =
  let t = Trace.create () in
  List.iteri (fun i ev -> Trace.emit t ~at:(100 + i) ev) one_of_each;
  let rs = Trace.records t in
  checki "all retained" (List.length one_of_each) (List.length rs);
  List.iteri
    (fun i (r : Trace.record) ->
      checki "seq" i r.Trace.seq;
      checki "at" (100 + i) r.Trace.at;
      checkb
        (Format.asprintf "event %d round-trips" i)
        true
        (r.Trace.ev = List.nth one_of_each i))
    rs

let test_ring_eviction () =
  let t = Trace.create ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit t ~at:i (Trace.Wall_blocked { on = i })
  done;
  checki "emitted counts evictions" 10 (Trace.emitted t);
  checki "dropped" 6 (Trace.dropped t);
  let rs = Trace.records t in
  checki "ring keeps capacity" 4 (List.length rs);
  List.iteri
    (fun i (r : Trace.record) ->
      checki "oldest evicted first" (6 + i) r.Trace.seq;
      checkb "payload survives" true (r.Trace.ev = Trace.Wall_blocked { on = 6 + i }))
    rs;
  Trace.clear t;
  checki "clear resets emitted" 0 (Trace.emitted t);
  checki "clear empties the ring" 0 (List.length (Trace.records t))

let test_ring_disabled_and_subscribers () =
  let t = Trace.create () in
  let seen = ref [] in
  Trace.subscribe t (fun r -> seen := r.Trace.seq :: !seen);
  Trace.subscribe t (fun r -> seen := (1000 + r.Trace.seq) :: !seen);
  Trace.disable t;
  Trace.emit t ~at:1 (Trace.Note "while off");
  checki "disabled emits nothing" 0 (Trace.emitted t);
  checkb "disabled calls no subscriber" true (!seen = []);
  Trace.enable t;
  Trace.emit t ~at:2 (Trace.Note "while on");
  checkb "subscribers run in subscription order" true (!seen = [ 1000; 0 ]);
  (* emit_here reuses the last explicit timestamp *)
  Trace.emit_here t (Trace.Note "no clock here");
  match List.rev (Trace.records t) with
  | last :: _ -> checki "emit_here at last_at" 2 last.Trace.at
  | [] -> Alcotest.fail "no records"

let test_to_text_deterministic () =
  let render () =
    let t = Trace.create () in
    List.iteri (fun i ev -> Trace.emit t ~at:i ev) one_of_each;
    Trace.to_text t
  in
  let a = render () in
  checkb "non-empty" true (String.length a > 0);
  checks "byte-stable across runs" a (render ())

(* --- metrics --- *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter" 5 (Metrics.value c);
  checkb "get-or-create returns the same cell" true
    (Metrics.counter m "c" == c);
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.5;
  checkb "gauge" true (Metrics.gauge_value g = 2.5);
  let h = Metrics.histogram ~buckets:[| 1.; 10.; 100. |] m "h" in
  List.iter (fun x -> Metrics.observe h x) [ 0.5; 5.; 50.; 500. ];
  checki "hist count" 4 (Metrics.hist_count h);
  checkb "hist sum" true (Metrics.hist_sum h = 555.5);
  checkb "median in the right bucket" true (Metrics.quantile h 0.5 = 10.);
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: c has another kind") (fun () ->
      ignore (Metrics.gauge m "c"));
  match Metrics.snapshot m with
  | [ ("c", Metrics.Counter 5); ("g", Metrics.Gauge 2.5);
      ("h", Metrics.Histogram { count = 4; _ }) ] ->
    ()
  | _ -> Alcotest.fail "snapshot shape (name-sorted) off"

(* The p999 tail quantile (DESIGN.md §18 SLOs): empty and single-sample
   degenerate cases, and a heavy-tailed histogram where p50 and p99 sit
   in the body but p999 lands in the tail — the case the finer
   [latency_buckets] grid exists for. *)
let test_metrics_p999 () =
  let m = Metrics.create () in
  let empty = Metrics.histogram ~buckets:Metrics.latency_buckets m "e" in
  checkb "empty histogram quantiles are 0" true
    (Metrics.p50 empty = 0. && Metrics.p999 empty = 0.);
  let one = Metrics.histogram ~buckets:Metrics.latency_buckets m "one" in
  Metrics.observe one 3.0;
  checkb "single sample: all quantiles agree" true
    (Metrics.p50 one = Metrics.p99 one && Metrics.p99 one = Metrics.p999 one);
  checkb "single sample: bound covers the observation" true
    (Metrics.p999 one >= 3.0 && Float.is_finite (Metrics.p999 one));
  let heavy = Metrics.histogram ~buckets:Metrics.latency_buckets m "heavy" in
  for _ = 1 to 2000 do
    Metrics.observe heavy 1.0
  done;
  for _ = 1 to 5 do
    Metrics.observe heavy 800.0
  done;
  checkb "p50 and p99 sit in the body" true
    (Metrics.p50 heavy = Metrics.p99 heavy && Metrics.p99 heavy < 2.);
  checkb "p999 lands in the tail" true
    (Metrics.p999 heavy >= 800. && Float.is_finite (Metrics.p999 heavy));
  let off = Metrics.histogram ~buckets:Metrics.latency_buckets m "off" in
  Metrics.observe off 1e12;
  checkb "observation past the last bound reports infinity" true
    (Metrics.p999 off = infinity)

let test_metrics_bridge () =
  let t = Trace.create () in
  let m = Metrics.create () in
  Metrics.attach m t;
  List.iteri (fun i ev -> Trace.emit t ~at:i ev) one_of_each;
  let count name =
    match Metrics.find m name with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.failf "counter %s missing" name
  in
  checki "begins" 4 (count "txn.begins");
  checki "commits" 1 (count "txn.commits");
  checki "aborts" 1 (count "txn.aborts");
  checki "reads.a" 1 (count "reads.a");
  checki "writes" 1 (count "writes");
  checki "blocks" 1 (count "blocks");
  checki "rejects" 2 (count "rejects");
  checki "wall releases" 1 (count "wall.releases");
  checki "gc collections" 1 (count "gc.collections");
  checki "gc versions dropped" 5 (count "gc.versions_dropped");
  checki "registry pruned records" 4 (count "registry.pruned_records");
  checki "repartitions" 2 (count "adapt.repartitions");
  checki "sim label becomes a counter" 1 (count "sim.restart")

(* --- the monitors: every invariant shown to fire --- *)

(* each seeded stream is valid except for the one poisoned event, so a
   violation proves the specific check tripped, not some earlier one *)
let catch_violation events =
  let t = Trace.create () in
  let m = Monitor.create () in
  Monitor.attach m t;
  match List.iteri (fun i ev -> Trace.emit t ~at:i ev) events with
  | () ->
    checkb "monitor saw the stream" true (Monitor.events_seen m > 0);
    None
  | exception Monitor.Violation msg -> Some msg

let expect_violation name events =
  match catch_violation events with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: monitor stayed silent" name

let expect_clean name events =
  match catch_violation events with
  | Some msg -> Alcotest.failf "%s: unexpected violation: %s" name msg
  | None -> ()

let begin_u ?(txn = 1) ?(cls = 0) init =
  Trace.Begin { txn; kind = Trace.Update cls; init }

let test_monitor_no_wait_no_reject () =
  expect_violation "protocol A block"
    [ begin_u 1;
      Trace.Block { txn = 1; protocol = Trace.A; segment = 1; key = 0; on = [ 9 ] } ];
  expect_violation "protocol C rule reject"
    [ Trace.Begin { txn = 1; kind = Trace.Read_only; init = 1 };
      Trace.Reject
        { txn = 1; protocol = Some Trace.C; stage = Trace.Rule; segment = 1;
          reason = "version collected past timestamp" } ];
  expect_clean "protocol B may block and reject"
    [ begin_u 1;
      Trace.Block { txn = 1; protocol = Trace.B; segment = 0; key = 0; on = [ 9 ] };
      Trace.Reject
        { txn = 1; protocol = Some Trace.B; stage = Trace.Rule; segment = 0;
          reason = "late write" } ];
  expect_clean "routing and barrier rejections are by design"
    [ begin_u 1;
      Trace.Reject
        { txn = 1; protocol = Some Trace.A; stage = Trace.Routing; segment = 2;
          reason = "outside the read pattern" };
      Trace.Reject
        { txn = 1; protocol = Some Trace.C; stage = Trace.Barrier; segment = -1;
          reason = "ad-hoc barrier up" } ]

let wall ~released ~components =
  Trace.Wall_release { m = released - 1; released_at = released; components }

let test_monitor_wall_monotonicity () =
  expect_violation "release times must strictly increase"
    [ wall ~released:10 ~components:[| 5; 5 |];
      wall ~released:10 ~components:[| 6; 6 |] ];
  expect_violation "components must not move backwards"
    [ wall ~released:10 ~components:[| 5; 5 |];
      wall ~released:12 ~components:[| 6; 4 |] ];
  expect_clean "monotone walls pass"
    [ wall ~released:10 ~components:[| 5; 5 |];
      wall ~released:12 ~components:[| 6; 5 |] ]

let test_monitor_write_ts_ordering () =
  expect_violation "write must carry its initiation time"
    [ begin_u 5; Trace.Write { txn = 1; segment = 0; key = 0; ts = 6 } ];
  expect_violation "duplicate committed timestamp per granule"
    [ begin_u ~txn:1 5;
      Trace.Write { txn = 1; segment = 0; key = 0; ts = 5 };
      Trace.Commit { txn = 1; at = 6 };
      begin_u ~txn:2 5;
      Trace.Write { txn = 2; segment = 0; key = 0; ts = 5 };
      Trace.Commit { txn = 2; at = 7 } ];
  expect_violation "read must return the newest version below threshold"
    [ begin_u ~txn:1 5;
      Trace.Write { txn = 1; segment = 0; key = 0; ts = 5 };
      Trace.Commit { txn = 1; at = 6 };
      begin_u ~txn:2 ~cls:1 9;
      (* version 5 is committed and below the threshold; serving 0 skips it *)
      Trace.Read
        { txn = 2; protocol = Trace.A; segment = 0; key = 0; threshold = 9;
          version = 0 } ];
  expect_violation "version at or above threshold"
    [ begin_u ~txn:1 5;
      Trace.Read
        { txn = 1; protocol = Trace.B; segment = 0; key = 0; threshold = 5;
          version = 5 } ];
  expect_clean "a conforming write/commit/read sequence"
    [ begin_u ~txn:1 5;
      Trace.Write { txn = 1; segment = 0; key = 0; ts = 5 };
      Trace.Commit { txn = 1; at = 6 };
      begin_u ~txn:2 ~cls:1 9;
      Trace.Read
        { txn = 2; protocol = Trace.A; segment = 0; key = 0; threshold = 9;
          version = 5 } ]

let test_monitor_gc_watermark () =
  expect_violation "gc above an active update's initiation time"
    [ begin_u ~txn:1 ~cls:0 5;
      Trace.Gc { watermark = 6; vector = [| 6; 6 |]; dropped = 1 } ];
  expect_violation "gc above a used threshold"
    [ begin_u ~txn:1 ~cls:0 20;
      Trace.Read
        { txn = 1; protocol = Trace.A; segment = 1; key = 0; threshold = 8;
          version = 0 };
      Trace.Gc { watermark = 9; vector = [| 20; 9 |]; dropped = 1 } ];
  expect_violation "gc above the current wall"
    [ wall ~released:10 ~components:[| 5; 5 |];
      Trace.Gc { watermark = 6; vector = [| 6; 5 |]; dropped = 1 } ];
  expect_violation "gc above an ad-hoc transaction's initiation (all segments)"
    [ Trace.Begin
        { txn = 1; kind = Trace.Adhoc { wsegs = [ 0 ]; rsegs = [ 1 ] };
          init = 5 };
      Trace.Gc { watermark = 4; vector = [| 4; 6 |]; dropped = 1 } ];
  expect_clean "gc at the watermark passes"
    [ begin_u ~txn:1 ~cls:0 5;
      wall ~released:4 ~components:[| 5; 5 |];
      Trace.Gc { watermark = 5; vector = [| 5; 5 |]; dropped = 1 } ]

(* --- the monitors over every curated scenario --- *)

let traced_schedule (sc : Scenarios.t) schedule =
  let trace = Trace.create () in
  let monitor = Monitor.create () in
  Monitor.attach monitor trace;
  let trial =
    Explore.run_schedule (Explore.hdd_traced trace) sc.Scenarios.workload
      schedule
  in
  (trial, trace, monitor)

let test_monitors_green_on_scenarios () =
  List.iter
    (fun (sc : Scenarios.t) ->
      for seed = 0 to 4 do
        let g = Prng.create (1000 + seed) in
        let schedule = Gen.schedule g sc.Scenarios.workload in
        match traced_schedule sc schedule with
        | _, _, monitor ->
          checkb
            (Printf.sprintf "%s/%d saw events" sc.Scenarios.sc_name seed)
            true
            (Monitor.events_seen monitor > 0)
        | exception Monitor.Violation msg ->
          Alcotest.failf "%s seed %d: %s" sc.Scenarios.sc_name seed msg
      done)
    Scenarios.all

(* --- golden traces --- *)

(* The serialized trace of every curated scenario under one fixed
   schedule must be byte-stable: same seed, same bytes, run after run,
   machine after machine.  Goldens live in test/golden/ and regenerate
   with HDD_GOLDEN_UPDATE=<dir> pointing at that directory. *)

let golden_schedule (sc : Scenarios.t) =
  Gen.schedule (Prng.create 42) sc.Scenarios.workload

let golden_text (sc : Scenarios.t) =
  let _, trace, _ = traced_schedule sc (golden_schedule sc) in
  Trace.to_text trace

let golden_file sc_name = Filename.concat "golden" (sc_name ^ ".trace")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_golden_traces () =
  match Sys.getenv_opt "HDD_GOLDEN_UPDATE" with
  | Some dir when dir <> "" && dir <> "0" ->
    List.iter
      (fun (sc : Scenarios.t) ->
        let path = Filename.concat dir (sc.Scenarios.sc_name ^ ".trace") in
        let oc = open_out_bin path in
        output_string oc (golden_text sc);
        close_out oc;
        Printf.printf "wrote %s\n" path)
      Scenarios.all
  | _ ->
    List.iter
      (fun (sc : Scenarios.t) ->
        let current = golden_text sc in
        checks
          (Printf.sprintf "%s: run-to-run stable" sc.Scenarios.sc_name)
          current (golden_text sc);
        let path = golden_file sc.Scenarios.sc_name in
        if not (Sys.file_exists path) then
          Alcotest.failf
            "%s missing — regenerate with HDD_GOLDEN_UPDATE=test/golden"
            path;
        checks
          (Printf.sprintf "%s: matches golden" sc.Scenarios.sc_name)
          (read_file path) current)
      Scenarios.all

(* --- observability invisibility --- *)

(* the mirror of PR 3's GC-invisibility property: running the same
   schedule with a full observability stack (enabled trace, metrics
   bridge, raising monitors) must produce the identical trial, field for
   field, as running it bare *)
let prop_observability_invisible =
  QCheck2.Test.make
    ~name:"observability: tracing + monitors change no outcome"
    ~count:1000
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let g = Prng.create seed in
      let wl = Gen.workload ~adhoc:(seed mod 4 = 0) g in
      let schedule = Gen.schedule g wl in
      let bare = Explore.run_schedule Explore.hdd wl schedule in
      let observed =
        Explore.run_schedule (Explore.hdd_observed ()) wl schedule
      in
      bare.Explore.t_events <> []
      && bare.Explore.t_schedule = observed.Explore.t_schedule
      && bare.Explore.t_events = observed.Explore.t_events
      && bare.Explore.t_committed = observed.Explore.t_committed
      && bare.Explore.t_aborted = observed.Explore.t_aborted
      && bare.Explore.t_deadlock = observed.Explore.t_deadlock
      && bare.Explore.t_verdict.Hdd_core.Certifier.serializable
         = observed.Explore.t_verdict.Hdd_core.Certifier.serializable)

let suite =
  [ Alcotest.test_case "trace: every event round-trips the ring" `Quick
      test_ring_roundtrip;
    Alcotest.test_case "trace: eviction, counters, clear" `Quick
      test_ring_eviction;
    Alcotest.test_case "trace: disabled is silent; subscribers ordered"
      `Quick test_ring_disabled_and_subscribers;
    Alcotest.test_case "trace: to_text is deterministic" `Quick
      test_to_text_deterministic;
    Alcotest.test_case "metrics: counters, gauges, histograms" `Quick
      test_metrics_basics;
    Alcotest.test_case "metrics: p999 tail quantile" `Quick
      test_metrics_p999;
    Alcotest.test_case "metrics: the standard event bridge" `Quick
      test_metrics_bridge;
    Alcotest.test_case "monitor: A/C no-wait no-reject fires" `Quick
      test_monitor_no_wait_no_reject;
    Alcotest.test_case "monitor: wall monotonicity fires" `Quick
      test_monitor_wall_monotonicity;
    Alcotest.test_case "monitor: write-timestamp ordering fires" `Quick
      test_monitor_write_ts_ordering;
    Alcotest.test_case "monitor: gc watermark bound fires" `Quick
      test_monitor_gc_watermark;
    Alcotest.test_case "monitor: green over every curated scenario" `Quick
      test_monitors_green_on_scenarios;
    Alcotest.test_case "golden traces byte-stable" `Quick
      test_golden_traces;
    QCheck_alcotest.to_alcotest prop_observability_invisible ]
