(* Unit tests for hdd_util: PRNG determinism, distributions, statistics,
   table rendering. *)

module Prng = Hdd_util.Prng
module Dist = Hdd_util.Dist
module Stats = Hdd_util.Stats
module Table = Hdd_util.Table

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 7 and b = Prng.create 8 in
  checkb "different seeds diverge" true (Prng.bits64 a <> Prng.bits64 b)

let test_prng_int_bounds () =
  let g = Prng.create 1 in
  for _ = 1 to 1000 do
    let x = Prng.int g 17 in
    checkb "0 <= x < 17" true (x >= 0 && x < 17)
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_prng_float_bounds () =
  let g = Prng.create 2 in
  for _ = 1 to 1000 do
    let x = Prng.float g 3.5 in
    checkb "0 <= x < 3.5" true (x >= 0. && x < 3.5)
  done

let test_prng_copy () =
  let a = Prng.create 9 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  check Alcotest.int64 "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

let test_bernoulli_extremes () =
  let g = Prng.create 21 in
  for _ = 1 to 200 do
    checkb "p=0 never" false (Dist.bernoulli g ~p:0.);
    checkb "p=1 always" true (Dist.bernoulli g ~p:1.0)
  done;
  let g = Prng.create 22 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Dist.bernoulli g ~p:0.3 then incr hits
  done;
  checkb "p=0.3 frequency" true (!hits > 2700 && !hits < 3300)

let test_prng_split_independence () =
  let g = Prng.create 3 in
  let h = Prng.split g in
  (* the split stream must differ from the parent's continuation *)
  checkb "split differs" true (Prng.bits64 h <> Prng.bits64 g)

let test_prng_shuffle_permutation () =
  let g = Prng.create 4 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is a permutation"
    (Array.init 50 Fun.id) sorted

let test_prng_pick () =
  let g = Prng.create 5 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    checkb "pick from array" true (Array.mem (Prng.pick g a) a)
  done;
  Alcotest.check_raises "empty pick rejected"
    (Invalid_argument "Prng.pick: empty array") (fun () ->
      ignore (Prng.pick g [||]))

let test_exponential_mean () =
  let g = Prng.create 11 in
  let n = 20000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Dist.exponential g ~rate:2.0
  done;
  let mean = !total /. float_of_int n in
  (* mean of Exp(2) is 0.5; allow generous tolerance *)
  checkb "exponential mean near 0.5" true (abs_float (mean -. 0.5) < 0.03)

let test_uniform_int_range () =
  let g = Prng.create 12 in
  for _ = 1 to 1000 do
    let x = Dist.uniform_int g ~lo:5 ~hi:9 in
    checkb "in [5,9]" true (x >= 5 && x <= 9)
  done

let test_zipf_uniform_degenerate () =
  let g = Prng.create 13 in
  let z = Dist.zipf ~n:4 ~alpha:0. in
  let counts = Array.make 4 0 in
  for _ = 1 to 8000 do
    let i = Dist.zipf_draw z g in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c -> checkb "roughly uniform" true (c > 1600 && c < 2400))
    counts

let test_zipf_skew () =
  let g = Prng.create 14 in
  let z = Dist.zipf ~n:100 ~alpha:1.2 in
  let counts = Array.make 100 0 in
  for _ = 1 to 10000 do
    let i = Dist.zipf_draw z g in
    counts.(i) <- counts.(i) + 1
  done;
  checkb "rank 0 dominates rank 50" true (counts.(0) > 10 * (counts.(50) + 1));
  checki "domain size" 100 (Dist.zipf_n z)

let test_zipf_validation () =
  Alcotest.check_raises "n=0 rejected"
    (Invalid_argument "Dist.zipf: n must be positive") (fun () ->
      ignore (Dist.zipf ~n:0 ~alpha:1.));
  Alcotest.check_raises "alpha<0 rejected"
    (Invalid_argument "Dist.zipf: alpha must be >= 0") (fun () ->
      ignore (Dist.zipf ~n:3 ~alpha:(-1.)))

let test_stats_moments () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  checki "count" 8 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 5.0 (Stats.mean s);
  check (Alcotest.float 1e-6) "stddev" 2.13809 (Stats.stddev s);
  check (Alcotest.float 1e-9) "min" 2. (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 9. (Stats.max_value s);
  check (Alcotest.float 1e-9) "total" 40. (Stats.total s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  check (Alcotest.float 1e-9) "p50" 50. (Stats.percentile s 50.);
  check (Alcotest.float 1e-9) "p95" 95. (Stats.percentile s 95.);
  check (Alcotest.float 1e-9) "p100" 100. (Stats.percentile s 100.);
  check (Alcotest.float 1e-9) "p0 -> first" 1. (Stats.percentile s 0.)

let test_stats_empty () =
  let s = Stats.create () in
  checkb "mean of empty is nan" true (Float.is_nan (Stats.mean s));
  Alcotest.check_raises "percentile of empty rejected"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile s 50.))

let test_stats_growth () =
  let s = Stats.create () in
  for i = 1 to 1000 do
    Stats.add s (float_of_int i)
  done;
  checki "all observations kept" 1000 (Array.length (Stats.observations s))

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -3.; 42. ];
  let counts = Stats.Histogram.counts h in
  checki "bucket 0 gets 0.5 and clamped -3" 2 counts.(0);
  checki "bucket 1" 2 counts.(1);
  checki "bucket 9 gets 9.9 and clamped 42" 2 counts.(9);
  checkb "render mentions counts" true
    (String.length (Stats.Histogram.render h ~width:20) > 0)

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_rule t;
  Table.add_row t [ "333"; "4" ];
  let s = Table.render t in
  checkb "has title" true (String.length s > 0);
  checkb "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l >= 3 && String.sub l 0 1 = "|"))

let test_table_width_mismatch () =
  let t = Table.create ~title:"demo" ~columns:[ "a" ] in
  Alcotest.check_raises "row width checked"
    (Invalid_argument "Table.add_row: row width differs from header")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  check Alcotest.string "float cell" "3.14" (Table.cell_float ~decimals:2 3.14159);
  check Alcotest.string "nan cell" "-" (Table.cell_float nan);
  check Alcotest.string "pct cell" "12.3%" (Table.cell_pct 0.123);
  check Alcotest.string "int cell" "7" (Table.cell_int 7)

let suite =
  [ Alcotest.test_case "prng: deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng: seed sensitivity" `Quick test_prng_seed_sensitivity;
    Alcotest.test_case "prng: int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng: float bounds" `Quick test_prng_float_bounds;
    Alcotest.test_case "prng: copy" `Quick test_prng_copy;
    Alcotest.test_case "dist: bernoulli" `Quick test_bernoulli_extremes;
    Alcotest.test_case "prng: split independence" `Quick test_prng_split_independence;
    Alcotest.test_case "prng: shuffle permutes" `Quick test_prng_shuffle_permutation;
    Alcotest.test_case "prng: pick" `Quick test_prng_pick;
    Alcotest.test_case "dist: exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "dist: uniform range" `Quick test_uniform_int_range;
    Alcotest.test_case "dist: zipf alpha=0 uniform" `Quick test_zipf_uniform_degenerate;
    Alcotest.test_case "dist: zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "dist: zipf validation" `Quick test_zipf_validation;
    Alcotest.test_case "stats: moments" `Quick test_stats_moments;
    Alcotest.test_case "stats: percentiles" `Quick test_stats_percentile;
    Alcotest.test_case "stats: empty" `Quick test_stats_empty;
    Alcotest.test_case "stats: growth" `Quick test_stats_growth;
    Alcotest.test_case "stats: histogram" `Quick test_histogram;
    Alcotest.test_case "table: render" `Quick test_table_render;
    Alcotest.test_case "table: width mismatch" `Quick test_table_width_mismatch;
    Alcotest.test_case "table: cells" `Quick test_table_cells ]
