(* Tests for the baseline controllers: strict 2PL, strict TSO, MVTO,
   MV2PL, SDD-1-style pipelining and the no-control strawman — plus the
   paper's Figure 3 and Figure 4 counter-examples exhibited on the
   crippled variants and caught by the certifier. *)

module B = Hdd_baselines
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let gr s k = Granule.make ~segment:s ~key:k

let grant = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> Alcotest.fail "unexpected block"
  | Outcome.Rejected why -> Alcotest.fail ("unexpected rejection: " ^ why)

let blocked = function
  | Outcome.Blocked ids -> ids
  | Outcome.Granted _ -> Alcotest.fail "expected a block, got a grant"
  | Outcome.Rejected why -> Alcotest.fail ("expected a block, got: " ^ why)

(* --- strict 2PL --- *)

let mk_2pl ?read_locks ?log () =
  B.S2pl.create ?read_locks ?log ~clock:(Time.Clock.create ())
    ~init:(fun _ -> 0) ()

let test_2pl_basic () =
  let c = mk_2pl () in
  let t = B.S2pl.begin_txn c ~read_only:false in
  checki "read initial" 0 (grant (B.S2pl.read c t (gr 0 0)));
  grant (B.S2pl.write c t (gr 0 0) 5);
  checki "reads own write" 5 (grant (B.S2pl.read c t (gr 0 0)));
  checki "locks held" 1 (B.S2pl.lock_count c);
  B.S2pl.commit c t;
  checki "locks released at commit" 0 (B.S2pl.lock_count c);
  let t2 = B.S2pl.begin_txn c ~read_only:false in
  checki "committed value visible" 5 (grant (B.S2pl.read c t2 (gr 0 0)));
  B.S2pl.commit c t2

let test_2pl_conflicts () =
  let c = mk_2pl () in
  let t1 = B.S2pl.begin_txn c ~read_only:false in
  let t2 = B.S2pl.begin_txn c ~read_only:false in
  grant (B.S2pl.write c t1 (gr 0 0) 1);
  (* reader blocks behind the exclusive holder *)
  checkb "read blocked by X" true (blocked (B.S2pl.read c t2 (gr 0 0)) = [ t1.Txn.id ]);
  (* shared readers coexist *)
  checki "other granule fine" 0 (grant (B.S2pl.read c t2 (gr 0 1)));
  let t3 = B.S2pl.begin_txn c ~read_only:false in
  checki "shared lock granted" 0 (grant (B.S2pl.read c t3 (gr 0 1)));
  (* writer blocks behind both shared holders *)
  let t4 = B.S2pl.begin_txn c ~read_only:false in
  checki "write blocked by readers" 2
    (List.length (blocked (B.S2pl.write c t4 (gr 0 1) 9)));
  B.S2pl.commit c t1;
  (* t2 can now read the committed value *)
  checki "after release" 1 (grant (B.S2pl.read c t2 (gr 0 0)));
  B.S2pl.commit c t2;
  B.S2pl.commit c t3;
  B.S2pl.commit c t4

let test_2pl_upgrade () =
  let c = mk_2pl () in
  let t1 = B.S2pl.begin_txn c ~read_only:false in
  checki "shared first" 0 (grant (B.S2pl.read c t1 (gr 0 0)));
  grant (B.S2pl.write c t1 (gr 0 0) 7);
  checki "upgrade in place keeps one lock" 1 (B.S2pl.lock_count c);
  B.S2pl.commit c t1

let test_2pl_abort_restores () =
  let c = mk_2pl () in
  let t1 = B.S2pl.begin_txn c ~read_only:false in
  grant (B.S2pl.write c t1 (gr 0 0) 9);
  B.S2pl.abort c t1;
  let t2 = B.S2pl.begin_txn c ~read_only:false in
  checki "undo restored the old value" 0 (grant (B.S2pl.read c t2 (gr 0 0)));
  B.S2pl.commit c t2

let test_2pl_registrations_counted () =
  let c = mk_2pl () in
  let t = B.S2pl.begin_txn c ~read_only:false in
  ignore (B.S2pl.read c t (gr 0 0));
  ignore (B.S2pl.read c t (gr 0 1));
  ignore (B.S2pl.read c t (gr 0 0));
  B.S2pl.commit c t;
  (* re-reads under a held lock do not re-register *)
  checki "one registration per lock" 2
    (B.S2pl.metrics c).B.Cc_metrics.read_registrations

(* --- strict TSO --- *)

let mk_tso ?read_timestamps ?thomas_write_rule ?log () =
  B.Tso.create ?read_timestamps ?thomas_write_rule ?log
    ~clock:(Time.Clock.create ()) ~init:(fun _ -> 0) ()

let test_tso_basic () =
  let c = mk_tso () in
  let t = B.Tso.begin_txn c in
  checki "read" 0 (grant (B.Tso.read c t (gr 0 0)));
  grant (B.Tso.write c t (gr 0 0) 4);
  B.Tso.commit c t;
  let t2 = B.Tso.begin_txn c in
  checki "visible" 4 (grant (B.Tso.read c t2 (gr 0 0)));
  B.Tso.commit c t2

let test_tso_rejects_late_read () =
  let c = mk_tso () in
  let old = B.Tso.begin_txn c in
  let young = B.Tso.begin_txn c in
  grant (B.Tso.write c young (gr 0 0) 1);
  B.Tso.commit c young;
  match B.Tso.read c old (gr 0 0) with
  | Outcome.Rejected _ -> B.Tso.abort c old
  | _ -> Alcotest.fail "read below the write stamp must be rejected"

let test_tso_rejects_late_write () =
  let c = mk_tso () in
  let old = B.Tso.begin_txn c in
  let young = B.Tso.begin_txn c in
  checki "young reads" 0 (grant (B.Tso.read c young (gr 0 0)));
  B.Tso.commit c young;
  match B.Tso.write c old (gr 0 0) 1 with
  | Outcome.Rejected _ -> B.Tso.abort c old
  | _ -> Alcotest.fail "write below the read stamp must be rejected"

let test_tso_thomas_write_rule () =
  let c = mk_tso ~thomas_write_rule:true () in
  let old = B.Tso.begin_txn c in
  let young = B.Tso.begin_txn c in
  grant (B.Tso.write c young (gr 0 0) 2);
  B.Tso.commit c young;
  (* the obsolete write is silently skipped *)
  grant (B.Tso.write c old (gr 0 0) 1);
  B.Tso.commit c old;
  let t = B.Tso.begin_txn c in
  checki "newer value survives" 2 (grant (B.Tso.read c t (gr 0 0)));
  B.Tso.commit c t

let test_tso_strictness_blocks_dirty () =
  let c = mk_tso () in
  let w = B.Tso.begin_txn c in
  grant (B.Tso.write c w (gr 0 0) 3);
  let r = B.Tso.begin_txn c in
  checkb "dirty read blocks" true (blocked (B.Tso.read c r (gr 0 0)) = [ w.Txn.id ]);
  B.Tso.commit c w;
  checki "after commit" 3 (grant (B.Tso.read c r (gr 0 0)));
  B.Tso.commit c r

let test_tso_abort_restores () =
  let c = mk_tso () in
  let w = B.Tso.begin_txn c in
  grant (B.Tso.write c w (gr 0 0) 3);
  B.Tso.abort c w;
  let t = B.Tso.begin_txn c in
  checki "undo restored" 0 (grant (B.Tso.read c t (gr 0 0)));
  B.Tso.commit c t

(* --- MVTO --- *)

let mk_mvto ?log () =
  B.Mvto.create ?log ~clock:(Time.Clock.create ()) ~segments:1
    ~init:(fun _ -> 0) ()

let test_mvto_snapshot_read () =
  let c = mk_mvto () in
  let old = B.Mvto.begin_txn c in
  let young = B.Mvto.begin_txn c in
  grant (B.Mvto.write c young (gr 0 0) 9);
  B.Mvto.commit c young;
  (* unlike single-version TSO, the old reader is served the old version *)
  checki "old version served" 0 (grant (B.Mvto.read c old (gr 0 0)));
  B.Mvto.commit c old

let test_mvto_rejects_late_write () =
  let c = mk_mvto () in
  let old = B.Mvto.begin_txn c in
  let young = B.Mvto.begin_txn c in
  checki "young reads bootstrap" 0 (grant (B.Mvto.read c young (gr 0 0)));
  B.Mvto.commit c young;
  match B.Mvto.write c old (gr 0 0) 1 with
  | Outcome.Rejected _ -> B.Mvto.abort c old
  | _ -> Alcotest.fail "predecessor read by a younger txn: reject"

let test_mvto_registers_reads () =
  let c = mk_mvto () in
  let t = B.Mvto.begin_txn c in
  ignore (B.Mvto.read c t (gr 0 0));
  B.Mvto.commit c t;
  checki "every read registered" 1
    (B.Mvto.metrics c).B.Cc_metrics.read_registrations

(* --- MV2PL --- *)

let mk_mv2pl ?log () =
  B.Mv2pl.create ?log ~clock:(Time.Clock.create ()) ~segments:1
    ~init:(fun _ -> 0) ()

let test_mv2pl_updaters_lock () =
  let c = mk_mv2pl () in
  let t1 = B.Mv2pl.begin_txn c ~read_only:false in
  let t2 = B.Mv2pl.begin_txn c ~read_only:false in
  grant (B.Mv2pl.write c t1 (gr 0 0) 5);
  checkb "updater read blocks on X" true
    (blocked (B.Mv2pl.read c t2 (gr 0 0)) = [ t1.Txn.id ]);
  checki "t1 reads its buffer" 5 (grant (B.Mv2pl.read c t1 (gr 0 0)));
  B.Mv2pl.commit c t1;
  checki "after commit" 5 (grant (B.Mv2pl.read c t2 (gr 0 0)));
  B.Mv2pl.commit c t2

let test_mv2pl_read_only_never_blocks () =
  let c = mk_mv2pl () in
  let w = B.Mv2pl.begin_txn c ~read_only:false in
  grant (B.Mv2pl.write c w (gr 0 0) 5);
  (* a read-only transaction sails past the exclusive lock *)
  let ro = B.Mv2pl.begin_txn c ~read_only:true in
  checki "snapshot read under X lock" 0 (grant (B.Mv2pl.read c ro (gr 0 0)));
  B.Mv2pl.commit c w;
  (* still the snapshot as of its begin *)
  checki "stable snapshot" 0 (grant (B.Mv2pl.read c ro (gr 0 0)));
  B.Mv2pl.commit c ro;
  let m = B.Mv2pl.metrics c in
  checki "read-only never registers" 0 m.B.Cc_metrics.read_registrations;
  checki "read-only never blocks" 0 m.B.Cc_metrics.blocks

let test_mv2pl_version_order_is_commit_order () =
  let c = mk_mv2pl () in
  (* t_young begins later but commits first; versions must order by
     commit *)
  let t_old = B.Mv2pl.begin_txn c ~read_only:false in
  ignore t_old;
  let t_young = B.Mv2pl.begin_txn c ~read_only:false in
  grant (B.Mv2pl.write c t_young (gr 0 0) 1);
  B.Mv2pl.commit c t_young;
  grant (B.Mv2pl.write c t_old (gr 0 0) 2);
  B.Mv2pl.commit c t_old;
  let ro = B.Mv2pl.begin_txn c ~read_only:true in
  checki "last committer wins" 2 (grant (B.Mv2pl.read c ro (gr 0 0)));
  B.Mv2pl.commit c ro

let test_mv2pl_ro_rejected_write () =
  let c = mk_mv2pl () in
  let ro = B.Mv2pl.begin_txn c ~read_only:true in
  (match B.Mv2pl.write c ro (gr 0 0) 1 with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "read-only write must be rejected");
  B.Mv2pl.commit c ro

(* --- SDD-1 --- *)

let inventory =
  Hdd_core.Partition.build_exn
    (Hdd_core.Spec.make
       ~segments:[ "reorders"; "inventory"; "events" ]
       ~types:
         [ Hdd_core.Spec.txn_type ~name:"t1" ~writes:[ 2 ] ~reads:[];
           Hdd_core.Spec.txn_type ~name:"t2" ~writes:[ 1 ] ~reads:[ 1; 2 ];
           Hdd_core.Spec.txn_type ~name:"t3" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ])

let mk_sdd1 ?log () =
  B.Sdd1.create ?log ~clock:(Time.Clock.create ()) ~partition:inventory
    ~init:(fun _ -> 0) ()

let test_sdd1_pipelines_conflicting_classes () =
  let c = mk_sdd1 () in
  (* an older class-2 writer forces a younger class-1 reader of D2 to
     wait *)
  let w = B.Sdd1.begin_txn c ~class_id:2 in
  let r = B.Sdd1.begin_txn c ~class_id:1 in
  checkb "read of D2 waits for the older writer" true
    (blocked (B.Sdd1.read c r (gr 2 0)) = [ w.Txn.id ]);
  grant (B.Sdd1.write c w (gr 2 0) 3);
  B.Sdd1.commit c w;
  checki "after the writer finishes" 3 (grant (B.Sdd1.read c r (gr 2 0)));
  B.Sdd1.commit c r;
  checki "no registrations ever" 0
    (B.Sdd1.metrics c).B.Cc_metrics.read_registrations

let test_sdd1_no_wait_for_younger () =
  let c = mk_sdd1 () in
  let older = B.Sdd1.begin_txn c ~class_id:2 in
  let _younger = B.Sdd1.begin_txn c ~class_id:1 in
  (* the older transaction never waits for the younger one *)
  grant (B.Sdd1.write c older (gr 2 0) 1);
  B.Sdd1.commit c older

let test_sdd1_writer_waits_for_older_reader_class () =
  let c = mk_sdd1 () in
  (* class 1 reads D2, so a younger class-2 writer must wait for an older
     active class-1 transaction *)
  let r = B.Sdd1.begin_txn c ~class_id:1 in
  let w = B.Sdd1.begin_txn c ~class_id:2 in
  checkb "write pipelines behind the older reader class" true
    (blocked (B.Sdd1.write c w (gr 2 0) 1) = [ r.Txn.id ]);
  B.Sdd1.commit c r;
  grant (B.Sdd1.write c w (gr 2 0) 1);
  B.Sdd1.commit c w

let test_sdd1_adhoc_covers_everything () =
  let c = mk_sdd1 () in
  let ro = B.Sdd1.begin_adhoc c in
  let w = B.Sdd1.begin_txn c ~class_id:2 in
  (* the younger writer waits even though no named class reads D2 here:
     the ad-hoc class covers every segment *)
  checkb "writer waits for the ad-hoc transaction" true
    (blocked (B.Sdd1.write c w (gr 2 0) 1) = [ ro.Txn.id ]);
  checki "ad-hoc read proceeds (no older writers)" 0
    (grant (B.Sdd1.read c ro (gr 2 0)));
  B.Sdd1.commit c ro;
  grant (B.Sdd1.write c w (gr 2 0) 1);
  B.Sdd1.commit c w

let test_sdd1_class_validation () =
  let c = mk_sdd1 () in
  Alcotest.check_raises "range" (Invalid_argument "Sdd1.begin_txn: class 7")
    (fun () -> ignore (B.Sdd1.begin_txn c ~class_id:7))

(* --- NoCC and the Figure 1 lost update --- *)

let test_nocc_lost_update_certified_cyclic () =
  let log = Sched_log.create () in
  let c = B.Nocc.create ~log ~clock:(Time.Clock.create ()) ~init:(fun _ -> 100) () in
  let acct = gr 0 0 in
  let t1 = B.Nocc.begin_txn c in
  let t2 = B.Nocc.begin_txn c in
  let b1 = grant (B.Nocc.read c t1 acct) in
  let b2 = grant (B.Nocc.read c t2 acct) in
  grant (B.Nocc.write c t1 acct (b1 + 50));
  grant (B.Nocc.write c t2 acct (b2 - 50));
  B.Nocc.commit c t1;
  B.Nocc.commit c t2;
  (* the deposit is lost *)
  let t3 = B.Nocc.begin_txn c in
  checki "final balance reflects only the withdrawal" 50
    (grant (B.Nocc.read c t3 acct));
  B.Nocc.commit c t3;
  checkb "certifier flags the schedule" false (Certifier.serializable log)

(* --- Figure 3: 2PL without read locks admits the anomaly --- *)

let test_figure3_anomaly_2pl_no_read_locks () =
  let log = Sched_log.create () in
  let c = mk_2pl ~read_locks:false ~log () in
  let y = gr 2 0 and v = gr 1 0 and order = gr 0 0 in
  (* t3 starts and reads the arrivals, missing y *)
  let t3 = B.S2pl.begin_txn c ~read_only:false in
  let _missed = grant (B.S2pl.read c t3 y) in
  (* t1 inserts y and commits *)
  let t1 = B.S2pl.begin_txn c ~read_only:false in
  grant (B.S2pl.write c t1 y 1);
  B.S2pl.commit c t1;
  (* t2 reads y, posts the inventory level, commits *)
  let t2 = B.S2pl.begin_txn c ~read_only:false in
  let seen = grant (B.S2pl.read c t2 y) in
  grant (B.S2pl.write c t2 v (10 + seen));
  B.S2pl.commit c t2;
  (* t3 reads the new inventory (no lock conflict: t2 released) *)
  let v_seen = grant (B.S2pl.read c t3 v) in
  checki "t3 sees the post-y inventory" 11 v_seen;
  grant (B.S2pl.write c t3 order v_seen);
  B.S2pl.commit c t3;
  checkb "Figure 3: not serializable" false (Certifier.serializable log)

let test_figure3_full_2pl_serializable () =
  let log = Sched_log.create () in
  let c = mk_2pl ~log () in
  let y = gr 2 0 and v = gr 1 0 and order = gr 0 0 in
  let t3 = B.S2pl.begin_txn c ~read_only:false in
  ignore (grant (B.S2pl.read c t3 y));
  let t1 = B.S2pl.begin_txn c ~read_only:false in
  (* with read locks, t1's insert blocks behind t3 *)
  (match B.S2pl.write c t1 y 1 with
  | Outcome.Blocked ids -> checkb "t1 blocked by t3" true (ids = [ t3.Txn.id ])
  | _ -> Alcotest.fail "t1 must block");
  (* t3 finishes first in this variant *)
  ignore (grant (B.S2pl.read c t3 v));
  grant (B.S2pl.write c t3 order 0);
  B.S2pl.commit c t3;
  grant (B.S2pl.write c t1 y 1);
  B.S2pl.commit c t1;
  checkb "full 2PL stays serializable" true (Certifier.serializable log)

(* --- Figure 4: TSO without read timestamps admits the anomaly --- *)

let test_figure4_anomaly_tso_no_rts_youngest_t3 () =
  let log = Sched_log.create () in
  let c = mk_tso ~read_timestamps:false ~log () in
  let y = gr 2 0 and v = gr 1 0 and order = gr 0 0 in
  (* initiation order: t1 < t2 < t3; t3 reads the arrivals BEFORE t1's
     insert lands, which no read timestamp records *)
  let t1 = B.Tso.begin_txn c in
  let t2 = B.Tso.begin_txn c in
  let t3 = B.Tso.begin_txn c in
  ignore (grant (B.Tso.read c t3 y)) (* sees no y, leaves no trace *);
  grant (B.Tso.write c t1 y 1);
  (* honest TSO would reject t1's write: rts(y) = I(t3) > I(t1) *)
  B.Tso.commit c t1;
  let seen = grant (B.Tso.read c t2 y) in
  grant (B.Tso.write c t2 v (10 + seen));
  B.Tso.commit c t2;
  let v_seen = grant (B.Tso.read c t3 v) in
  checki "t3 sees the inventory derived from the unseen y" 11 v_seen;
  grant (B.Tso.write c t3 order v_seen);
  B.Tso.commit c t3;
  checkb "Figure 4: not serializable" false (Certifier.serializable log)

let test_figure4_honest_tso_prevents () =
  let log = Sched_log.create () in
  let c = mk_tso ~log () in
  let y = gr 2 0 in
  let t1 = B.Tso.begin_txn c in
  let _t2 = B.Tso.begin_txn c in
  let t3 = B.Tso.begin_txn c in
  ignore (grant (B.Tso.read c t3 y));
  (* the read timestamp now stops t1 *)
  (match B.Tso.write c t1 y 1 with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "honest TSO must reject t1's late write");
  B.Tso.abort c t1;
  B.Tso.commit c t3;
  checkb "serializable" true (Certifier.serializable log)

let suite =
  [ Alcotest.test_case "2PL: basics" `Quick test_2pl_basic;
    Alcotest.test_case "2PL: conflicts" `Quick test_2pl_conflicts;
    Alcotest.test_case "2PL: lock upgrade" `Quick test_2pl_upgrade;
    Alcotest.test_case "2PL: abort restores" `Quick test_2pl_abort_restores;
    Alcotest.test_case "2PL: read registrations" `Quick test_2pl_registrations_counted;
    Alcotest.test_case "TSO: basics" `Quick test_tso_basic;
    Alcotest.test_case "TSO: rejects late reads" `Quick test_tso_rejects_late_read;
    Alcotest.test_case "TSO: rejects late writes" `Quick test_tso_rejects_late_write;
    Alcotest.test_case "TSO: Thomas write rule" `Quick test_tso_thomas_write_rule;
    Alcotest.test_case "TSO: strictness" `Quick test_tso_strictness_blocks_dirty;
    Alcotest.test_case "TSO: abort restores" `Quick test_tso_abort_restores;
    Alcotest.test_case "MVTO: snapshot reads" `Quick test_mvto_snapshot_read;
    Alcotest.test_case "MVTO: rejects late writes" `Quick test_mvto_rejects_late_write;
    Alcotest.test_case "MVTO: registers reads" `Quick test_mvto_registers_reads;
    Alcotest.test_case "MV2PL: updaters lock" `Quick test_mv2pl_updaters_lock;
    Alcotest.test_case "MV2PL: read-only never blocks" `Quick test_mv2pl_read_only_never_blocks;
    Alcotest.test_case "MV2PL: version order = commit order" `Quick test_mv2pl_version_order_is_commit_order;
    Alcotest.test_case "MV2PL: read-only cannot write" `Quick test_mv2pl_ro_rejected_write;
    Alcotest.test_case "SDD-1: pipelines conflicting classes" `Quick test_sdd1_pipelines_conflicting_classes;
    Alcotest.test_case "SDD-1: never waits for younger" `Quick test_sdd1_no_wait_for_younger;
    Alcotest.test_case "SDD-1: writers wait for reader classes" `Quick test_sdd1_writer_waits_for_older_reader_class;
    Alcotest.test_case "SDD-1: ad-hoc class" `Quick test_sdd1_adhoc_covers_everything;
    Alcotest.test_case "SDD-1: class validation" `Quick test_sdd1_class_validation;
    Alcotest.test_case "Figure 1: lost update under NoCC" `Quick test_nocc_lost_update_certified_cyclic;
    Alcotest.test_case "Figure 3: anomaly without read locks" `Quick test_figure3_anomaly_2pl_no_read_locks;
    Alcotest.test_case "Figure 3: full 2PL prevents it" `Quick test_figure3_full_2pl_serializable;
    Alcotest.test_case "Figure 4: anomaly without read timestamps" `Quick test_figure4_anomaly_tso_no_rts_youngest_t3;
    Alcotest.test_case "Figure 4: honest TSO prevents it" `Quick test_figure4_honest_tso_prevents ]
