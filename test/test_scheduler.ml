(* Tests for the HDD scheduler: protocol routing, Protocol A's
   no-registration guarantee, Protocol B's MVTO behaviour, Protocol C
   walls, spec-violation rejection, and the Figure 3 / Figure 4
   counter-example timings which HDD renders serializable. *)

module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Timewall = Hdd_core.Timewall
module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
module Achain = Hdd_mvstore.Achain

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* inventory hierarchy: D0 reorders <- D1 inventory <- D2 events *)
let partition =
  History_gen.chain_partition 3 |> fun _ ->
  (* use the named inventory spec for readability of failures *)
  Hdd_core.Partition.build_exn
    (Hdd_core.Spec.make
       ~segments:[ "reorders"; "inventory"; "events" ]
       ~types:
         [ Hdd_core.Spec.txn_type ~name:"t1" ~writes:[ 2 ] ~reads:[];
           Hdd_core.Spec.txn_type ~name:"t2" ~writes:[ 1 ] ~reads:[ 1; 2 ];
           Hdd_core.Spec.txn_type ~name:"t3" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ])

let mk ?log () =
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  (Scheduler.create ?log ~partition ~clock ~store (), store)

let gr s k = Granule.make ~segment:s ~key:k

let grant = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> Alcotest.fail "unexpected block"
  | Outcome.Rejected why -> Alcotest.fail ("unexpected rejection: " ^ why)

let test_begin_validation () =
  let s, _ = mk () in
  Alcotest.check_raises "class range"
    (Invalid_argument "Scheduler.begin_update: class 9") (fun () ->
      ignore (Scheduler.begin_update s ~class_id:9))

let test_protocol_b_read_write () =
  let s, _ = mk () in
  let t = Scheduler.begin_update s ~class_id:2 in
  checki "bootstrap value" 0 (grant (Scheduler.read s t (gr 2 0)));
  grant (Scheduler.write s t (gr 2 0) 42);
  Scheduler.commit s t;
  let t2 = Scheduler.begin_update s ~class_id:2 in
  checki "sees committed write" 42 (grant (Scheduler.read s t2 (gr 2 0)));
  Scheduler.commit s t2;
  let m = Scheduler.metrics s in
  checki "protocol B reads" 2 m.Scheduler.reads_b;
  checki "registrations = protocol B reads" 2 m.Scheduler.read_registrations

let test_protocol_b_blocks_on_pending () =
  let s, _ = mk () in
  let w = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s w (gr 2 0) 1);
  let r = Scheduler.begin_update s ~class_id:2 in
  (match Scheduler.read s r (gr 2 0) with
  | Outcome.Blocked [ blocker ] -> checki "blocked on writer" w.Txn.id blocker
  | _ -> Alcotest.fail "expected block on pending version");
  Scheduler.commit s w;
  checki "after commit the read proceeds" 1 (grant (Scheduler.read s r (gr 2 0)));
  Scheduler.commit s r

let test_protocol_b_rejects_late_write () =
  let s, _ = mk () in
  let w1 = Scheduler.begin_update s ~class_id:2 in
  let r = Scheduler.begin_update s ~class_id:2 in
  (* the younger r reads the bootstrap version, registering rts = I(r) *)
  checki "read" 0 (grant (Scheduler.read s r (gr 2 0)));
  (* the older w1 now writes the same granule: its predecessor has been
     read by a younger transaction *)
  (match Scheduler.write s w1 (gr 2 0) 5 with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "late write must be rejected");
  Scheduler.abort s w1;
  Scheduler.commit s r;
  checki "one reject" 1 (Scheduler.metrics s).Scheduler.rejects

let test_protocol_a_never_registers () =
  let s, store = mk () in
  let feeder = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s feeder (gr 2 7) 99);
  Scheduler.commit s feeder;
  let t = Scheduler.begin_update s ~class_id:0 in
  checki "cross-class read sees committed" 99 (grant (Scheduler.read s t (gr 2 7)));
  let m = Scheduler.metrics s in
  checki "served by protocol A" 1 m.Scheduler.reads_a;
  checki "no registration for cross-class reads" 0 m.Scheduler.read_registrations;
  (* and the version's rts is untouched *)
  (match Store.latest_committed store (gr 2 7) with
  | Some v -> checki "rts untouched" 0 v.Chain.rts
  | None -> Alcotest.fail "version");
  Scheduler.commit s t

let test_protocol_a_threshold_excludes_active () =
  let s, _ = mk () in
  (* an active class-2 transaction wrote but did not commit *)
  let w = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s w (gr 2 0) 123);
  (* a class-1 reader must not wait and must see the bootstrap version *)
  let t = Scheduler.begin_update s ~class_id:1 in
  checki "never waits, reads below the activity link" 0
    (grant (Scheduler.read s t (gr 2 0)));
  checki "no blocks" 0 (Scheduler.metrics s).Scheduler.blocks;
  Scheduler.commit s w;
  Scheduler.commit s t

let test_protocol_a_threshold_exposed () =
  let s, _ = mk () in
  let w = Scheduler.begin_update s ~class_id:2 in
  let t = Scheduler.begin_update s ~class_id:0 in
  (* the threshold for reading D2 is capped by w's initiation *)
  (match Scheduler.read_threshold s t ~segment:2 with
  | Some th -> checkb "capped by the active writer" true (th <= w.Txn.init)
  | None -> Alcotest.fail "declared read");
  (match Scheduler.read_threshold s t ~segment:0 with
  | Some th -> checki "own segment: own timestamp" t.Txn.init th
  | None -> Alcotest.fail "own segment");
  Scheduler.commit s w;
  Scheduler.abort s t

let test_spec_violations_rejected () =
  let s, _ = mk () in
  let t = Scheduler.begin_update s ~class_id:2 in
  (* class 2 is the top: reading the lower D0 is undeclared *)
  (match Scheduler.read s t (gr 0 0) with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "downward read must be rejected");
  (match Scheduler.write s t (gr 1 0) 5 with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "cross-segment write must be rejected");
  Scheduler.abort s t;
  let ro = Scheduler.begin_read_only s in
  (match Scheduler.write s ro (gr 2 0) 5 with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "read-only write must be rejected");
  Scheduler.commit s ro

let test_read_only_wall_snapshot () =
  let s, _ = mk () in
  (* commit a value, release a wall, commit a newer value *)
  let w1 = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s w1 (gr 2 0) 1);
  Scheduler.commit s w1;
  (match Scheduler.release_wall s with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "wall releasable on idle system");
  let ro = Scheduler.begin_read_only s in
  let w2 = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s w2 (gr 2 0) 2);
  Scheduler.commit s w2;
  (* ro still sees the wall-time snapshot *)
  checki "snapshot below the wall" 1 (grant (Scheduler.read s ro (gr 2 0)));
  checki "served by protocol C" 1 (Scheduler.metrics s).Scheduler.reads_c;
  checki "still no registration" 0
    (Scheduler.metrics s).Scheduler.read_registrations;
  Scheduler.commit s ro

let test_read_only_consistent_across_segments () =
  let s, _ = mk () in
  (* a class-1 transaction derives D1 from D2; the wall must never show a
     D1 state ahead of the D2 state it was derived from *)
  let f = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s f (gr 2 0) 10);
  Scheduler.commit s f;
  let d = Scheduler.begin_update s ~class_id:1 in
  let base = grant (Scheduler.read s d (gr 2 0)) in
  grant (Scheduler.write s d (gr 1 0) (base * 2));
  Scheduler.commit s d;
  ignore (Scheduler.release_wall s);
  let ro = Scheduler.begin_read_only s in
  let derived = grant (Scheduler.read s ro (gr 1 0)) in
  let raw = grant (Scheduler.read s ro (gr 2 0)) in
  Scheduler.commit s ro;
  checkb "derived value consistent with its source" true
    (derived = 0 || derived = raw * 2)

let test_hosted_read_only () =
  let s, _ = mk () in
  let f = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s f (gr 2 0) 5);
  Scheduler.commit s f;
  (* hosted below class 1: may read D1 and D2, not D0 *)
  let ro = Scheduler.begin_read_only_on_path s ~below:1 in
  checki "reads along the path" 5 (grant (Scheduler.read s ro (gr 2 0)));
  checki "reads the path bottom" 0 (grant (Scheduler.read s ro (gr 1 0)));
  (match Scheduler.read s ro (gr 0 0) with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "off-path read must be rejected");
  Scheduler.commit s ro;
  checki "no registrations" 0 (Scheduler.metrics s).Scheduler.read_registrations

let test_abort_discards_versions () =
  let s, store = mk () in
  let w = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s w (gr 2 0) 9);
  Scheduler.abort s w;
  checki "only the bootstrap version remains" 1
    (Achain.length (Store.chain store (gr 2 0)));
  let t = Scheduler.begin_update s ~class_id:2 in
  checki "aborted write invisible" 0 (grant (Scheduler.read s t (gr 2 0)));
  Scheduler.commit s t

let test_rewrite_same_granule () =
  let s, _ = mk () in
  let w = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s w (gr 2 0) 1);
  grant (Scheduler.write s w (gr 2 0) 2);
  Scheduler.commit s w;
  let t = Scheduler.begin_update s ~class_id:2 in
  checki "last write wins" 2 (grant (Scheduler.read s t (gr 2 0)));
  Scheduler.commit s t

(* --- Figure 3: the 2PL-without-read-locks anomaly timing, under HDD ---

   y = an arrival record (D2), v = the inventory level (D1).
   Timing: t3 reads arrivals missing y; t1 inserts y and commits; t2 reads
   y, posts v, commits; t3 reads v and commits.  Without read locks this
   is the paper's non-serializable interleaving; under HDD the activity
   link hands t3 the version of v consistent with what it (did not) see
   in the arrivals, and the schedule certifies serializable. *)
let figure3_timing ~log =
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s = Scheduler.create ~log ~partition ~clock ~store () in
  let y = gr 2 0 and v = gr 1 0 and order = gr 0 0 in
  let t3 = Scheduler.begin_update s ~class_id:0 in
  let seen_y_by_t3 = grant (Scheduler.read s t3 y) in
  let t1 = Scheduler.begin_update s ~class_id:2 in
  grant (Scheduler.write s t1 y 1);
  Scheduler.commit s t1;
  let t2 = Scheduler.begin_update s ~class_id:1 in
  let seen_y_by_t2 = grant (Scheduler.read s t2 y) in
  grant (Scheduler.write s t2 v (10 + seen_y_by_t2));
  Scheduler.commit s t2;
  let seen_v_by_t3 = grant (Scheduler.read s t3 v) in
  grant (Scheduler.write s t3 order (seen_y_by_t3 + seen_v_by_t3));
  Scheduler.commit s t3;
  (seen_y_by_t3, seen_y_by_t2, seen_v_by_t3)

let test_figure3_under_hdd () =
  let log = Sched_log.create () in
  let seen_y_by_t3, seen_y_by_t2, seen_v_by_t3 = figure3_timing ~log in
  checki "t3 missed y" 0 seen_y_by_t3;
  checki "t2 saw y" 1 seen_y_by_t2;
  (* the crux: protocol A must NOT hand t3 the inventory version derived
     from the y it never saw — that would be the Figure 3 cycle *)
  checki "t3 sees the pre-t2 inventory" 0 seen_v_by_t3;
  checkb "schedule serializable" true (Certifier.serializable log)

(* Figure 4's TSO variant of the same anomaly uses the identical timing
   with initiation order t3 < t1 < t2; the HDD scheduler assigns
   initiation timestamps in begin order, which figure3_timing already
   does, so the check above covers both counter-examples from the HDD
   side.  The baselines' crippled variants are exercised in
   test_baselines. *)

let test_wall_auto_release () =
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s =
    Scheduler.create ~wall_every_commits:2 ~partition ~clock ~store ()
  in
  let initial = Timewall.release_count (Scheduler.wall_manager s) in
  for _ = 1 to 6 do
    let t = Scheduler.begin_update s ~class_id:2 in
    grant (Scheduler.write s t (gr 2 0) 1);
    Scheduler.commit s t
  done;
  checkb "walls released as commits accumulate" true
    (Timewall.release_count (Scheduler.wall_manager s) > initial)

let test_outcome_helpers () =
  checkb "granted" true (Outcome.is_granted (Outcome.Granted 3));
  Alcotest.check (Alcotest.option Alcotest.int) "granted value" (Some 3)
    (Outcome.granted (Outcome.Granted 3));
  checkb "blocked not granted" false
    (Outcome.is_granted (Outcome.Blocked [ 1; 2 ]));
  Alcotest.check (Alcotest.option Alcotest.int) "rejected empty" None
    (Outcome.granted (Outcome.Rejected "x"));
  let render o = Format.asprintf "%a" (Outcome.pp Format.pp_print_int) o in
  checkb "pp granted" true (render (Outcome.Granted 5) = "granted 5");
  checkb "pp blocked mentions ids" true
    (render (Outcome.Blocked [ 7; 8 ]) = "blocked on 7,8");
  checkb "pp rejected mentions reason" true
    (render (Outcome.Rejected "late") = "rejected: late")

let test_metrics_shape () =
  let s, _ = mk () in
  let t = Scheduler.begin_update s ~class_id:0 in
  ignore (Scheduler.read s t (gr 0 0));
  ignore (Scheduler.read s t (gr 1 0));
  ignore (Scheduler.read s t (gr 2 0));
  ignore (Scheduler.write s t (gr 0 0) 1);
  Scheduler.commit s t;
  let m = Scheduler.metrics s in
  checki "begins" 1 m.Scheduler.begins;
  checki "commits" 1 m.Scheduler.commits;
  checki "1 protocol B read" 1 m.Scheduler.reads_b;
  checki "2 protocol A reads" 2 m.Scheduler.reads_a;
  checki "writes" 1 m.Scheduler.writes

let suite =
  [ Alcotest.test_case "begin validation" `Quick test_begin_validation;
    Alcotest.test_case "protocol B read/write" `Quick test_protocol_b_read_write;
    Alcotest.test_case "protocol B blocks on pending" `Quick test_protocol_b_blocks_on_pending;
    Alcotest.test_case "protocol B rejects late writes" `Quick test_protocol_b_rejects_late_write;
    Alcotest.test_case "protocol A: no registration" `Quick test_protocol_a_never_registers;
    Alcotest.test_case "protocol A: excludes active writers" `Quick test_protocol_a_threshold_excludes_active;
    Alcotest.test_case "protocol A: threshold exposure" `Quick test_protocol_a_threshold_exposed;
    Alcotest.test_case "spec violations rejected" `Quick test_spec_violations_rejected;
    Alcotest.test_case "protocol C: wall snapshot" `Quick test_read_only_wall_snapshot;
    Alcotest.test_case "protocol C: cross-segment consistency" `Quick test_read_only_consistent_across_segments;
    Alcotest.test_case "hosted read-only (fictitious class)" `Quick test_hosted_read_only;
    Alcotest.test_case "abort discards versions" `Quick test_abort_discards_versions;
    Alcotest.test_case "rewrite of the same granule" `Quick test_rewrite_same_granule;
    Alcotest.test_case "Figure 3 timing is serializable under HDD" `Quick test_figure3_under_hdd;
    Alcotest.test_case "wall auto-release" `Quick test_wall_auto_release;
    Alcotest.test_case "outcome helpers" `Quick test_outcome_helpers;
    Alcotest.test_case "metrics" `Quick test_metrics_shape ]
