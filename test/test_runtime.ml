(* The parallel runtime: unit tests for the multicore primitives, the
   1000-seed registry snapshot-vs-live equivalence property, JSON schema
   versioning, and the randomized multicore differential stress
   (reduced seed count in-tree; CI nightly raises HDD_PAR_SEEDS to the
   full 500). *)

module R = Hdd_runtime
module T = Hdd_obs.Trace
module J = Hdd_benchkit.Jsonlite
module P = Hdd_core.Partition

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- global logical clock --- *)

let test_gclock_unique () =
  let clock = R.Gclock.create () in
  let domains = 4 and per = 2000 in
  let spawned =
    Array.init domains (fun _ ->
        Domain.spawn (fun () -> Array.init per (fun _ -> R.Gclock.tick clock)))
  in
  let all =
    Array.to_list spawned
    |> List.concat_map (fun d -> Array.to_list (Domain.join d))
  in
  let sorted = List.sort_uniq compare all in
  checki "all ticks distinct" (domains * per) (List.length sorted);
  checki "clock advanced exactly once per tick" (domains * per)
    (R.Gclock.now clock);
  List.iter (fun t -> checkb "tick positive" true (t > 0)) sorted

(* --- bounded MPSC mailbox --- *)

let test_mailbox_fifo () =
  let mb = R.Mailbox.create ~capacity:8 in
  for i = 1 to 5 do
    checkb "push accepted" true (R.Mailbox.push mb i)
  done;
  checki "length" 5 (R.Mailbox.length mb);
  for i = 1 to 5 do
    check (Alcotest.option Alcotest.int) "fifo order" (Some i)
      (R.Mailbox.try_pop mb)
  done;
  check (Alcotest.option Alcotest.int) "empty" None (R.Mailbox.try_pop mb);
  R.Mailbox.close mb;
  checkb "push to closed refused" false (R.Mailbox.push mb 99);
  checkb "drained" true (R.Mailbox.is_drained mb)

let test_mailbox_backpressure () =
  (* a tiny ring forces the producer to wait for the consumer *)
  let n = 500 in
  let mb = R.Mailbox.create ~capacity:4 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          ignore (R.Mailbox.push mb i)
        done;
        R.Mailbox.close mb)
  in
  let received = ref [] in
  let rec drain () =
    match R.Mailbox.try_pop mb with
    | Some v ->
      received := v :: !received;
      drain ()
    | None -> if not (R.Mailbox.is_drained mb) then (Domain.cpu_relax (); drain ())
  in
  drain ();
  Domain.join producer;
  checki "all delivered" n (List.length !received);
  check
    (Alcotest.list Alcotest.int)
    "in order" (List.init n (fun i -> i + 1))
    (List.rev !received)

(* --- seqlock-published wall --- *)

let test_seqwall_no_tearing () =
  (* every published wall has all components equal to its anchor; a torn
     read would mix two publications and break the uniformity *)
  let mk m =
    Hdd_core.Timewall.make ~s:0 ~m ~components:(Array.make 6 m)
      ~released_at:(m + 1)
  in
  let sw = R.Seqwall.create (mk 0) in
  let rounds = 2000 in
  let writer =
    Domain.spawn (fun () ->
        for m = 1 to rounds do
          R.Seqwall.publish sw (mk m)
        done)
  in
  let torn = ref 0 and seen_m = ref (-1) in
  let reads = ref 0 in
  while !seen_m < rounds do
    let w = R.Seqwall.read sw in
    incr reads;
    let m = w.Hdd_core.Timewall.m in
    Array.iter
      (fun c -> if c <> m then incr torn)
      w.Hdd_core.Timewall.components;
    if w.Hdd_core.Timewall.released_at <> m + 1 then incr torn;
    if m > !seen_m then seen_m := m
  done;
  Domain.join writer;
  checki "no torn reads" 0 !torn;
  checkb "reader made progress" true (!reads > 0)

(* --- immutable store snapshots --- *)

let test_store_snapshot () =
  let module S = Hdd_mvstore.Snapshot in
  let g = Granule.make ~segment:0 ~key:1 in
  let s0 = S.empty in
  checkb "empty has nothing" true (S.latest_before s0 g ~ts:100 = None);
  let s1 = S.add_commit s0 g ~ts:5 ~value:50 in
  let s2 = S.add_commit s1 g ~ts:9 ~value:90 in
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "latest below 100" (Some (9, 90))
    (S.latest_before s2 g ~ts:100);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "latest below 9" (Some (5, 50))
    (S.latest_before s2 g ~ts:9);
  checkb "below oldest" true (S.latest_before s2 g ~ts:5 = None);
  (* older snapshots are unaffected by later additions *)
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "s1 frozen" (Some (5, 50))
    (S.latest_before s1 g ~ts:100);
  checki "version count" 2 (S.version_count s2);
  checkb "non-monotone ts refused" true
    (try
       ignore (S.add_commit s2 g ~ts:9 ~value:0);
       false
     with Invalid_argument _ -> true)

(* --- per-domain traces merge by logical time --- *)

let test_trace_merge () =
  let t1 = T.create ~domain:1 () and t2 = T.create ~domain:2 () in
  T.emit t1 ~at:3 (T.Note "a");
  T.emit t2 ~at:1 (T.Note "b");
  T.emit t1 ~at:5 (T.Note "c");
  T.emit t2 ~at:4 (T.Note "d");
  let merged = T.merged [ t1; t2 ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted by (at, dom)"
    [ (1, 2); (3, 1); (4, 2); (5, 1) ]
    (List.map (fun (r : T.record) -> (r.at, r.dom)) merged);
  checki "domain tag" 1 (T.domain t1)

(* --- monitor wall rules --- *)

let test_monitor_any_released () =
  let mk_records () =
    let wall1 = T.Wall_release { m = 1; released_at = 2; components = [| 5; 5 |] } in
    let wall2 = T.Wall_release { m = 3; released_at = 4; components = [| 7; 7 |] } in
    let begin_ro = T.Begin { txn = 9; kind = T.Read_only; init = 6 } in
    let read_old =
      T.Read { txn = 9; protocol = T.C; segment = 1; key = 0; threshold = 5;
               version = 0 }
    in
    List.mapi
      (fun i ev -> { T.seq = i; at = i + 1; dom = 0; ev })
      [ wall1; wall2; begin_ro; read_old ]
  in
  (* under the serial rule the reader must hold the newest wall (7) *)
  let strict =
    Hdd_obs.Monitor.create ~raise_on_violation:false ~wall_rule:`Latest ()
  in
  List.iter (Hdd_obs.Monitor.feed strict) (mk_records ());
  checkb "Latest flags the stale wall" true
    (Hdd_obs.Monitor.violations strict <> []);
  (* the parallel rule accepts any wall released before initiation *)
  let relaxed =
    Hdd_obs.Monitor.create ~raise_on_violation:false
      ~wall_rule:`Any_released ()
  in
  List.iter (Hdd_obs.Monitor.feed relaxed) (mk_records ());
  check (Alcotest.list Alcotest.string) "Any_released accepts it" []
    (Hdd_obs.Monitor.violations relaxed);
  (* but still rejects a threshold no released wall ever had *)
  let bogus =
    Hdd_obs.Monitor.create ~raise_on_violation:false
      ~wall_rule:`Any_released ()
  in
  List.iter (Hdd_obs.Monitor.feed bogus)
    (List.map
       (fun (r : T.record) ->
         match r.ev with
         | T.Read p -> { r with ev = T.Read { p with threshold = 6 } }
         | _ -> r)
       (mk_records ()));
  checkb "Any_released rejects invented threshold" true
    (Hdd_obs.Monitor.violations bogus <> [])

(* --- registry snapshot-vs-live equivalence, 1000 seeds --- *)

let test_registry_snapshot_property () =
  let seeds = 1000 in
  for seed = 1 to seeds do
    let prng = Hdd_util.Prng.create seed in
    let classes = 1 + Hdd_util.Prng.int prng 4 in
    let reg = Registry.create ~classes () in
    let now = ref 0 in
    let tick () = incr now; !now in
    let actives = ref [] in
    let steps = 10 + Hdd_util.Prng.int prng 40 in
    let next_id = ref 0 in
    let mutate () =
      if !actives <> [] && Hdd_util.Prng.float prng 1. < 0.45 then begin
        let arr = Array.of_list !actives in
        let t = Hdd_util.Prng.pick prng arr in
        actives := List.filter (fun u -> u != t) !actives;
        if Hdd_util.Prng.bool prng then Txn.commit t ~at:(tick ())
        else Txn.abort t ~at:(tick ())
      end
      else begin
        incr next_id;
        let c = Hdd_util.Prng.int prng classes in
        let t =
          Txn.make ~id:!next_id ~kind:(Txn.Update c) ~init:(tick ())
        in
        Registry.register reg t;
        actives := t :: !actives
      end
    in
    for _ = 1 to steps do mutate () done;
    let capture = !now in
    let snap = Registry.snapshot reg in
    let queries =
      List.init 20 (fun _ ->
          (Hdd_util.Prng.int prng classes, Hdd_util.Prng.int prng (capture + 1)))
    in
    let expect =
      List.map
        (fun (c, at) ->
          ( Registry.i_old reg ~class_id:c ~at,
            Registry.c_late reg ~class_id:c ~at ))
        queries
    in
    let compare_snap () =
      List.iter2
        (fun (c, at) (io, cl) ->
          if Registry.snap_i_old snap ~class_id:c ~at <> io then
            Alcotest.failf "seed %d: snap_i_old(%d, %d) diverges" seed c at;
          if Registry.snap_c_late snap ~class_id:c ~at <> cl then
            Alcotest.failf "seed %d: snap_c_late(%d, %d) diverges" seed c at)
        queries expect
    in
    compare_snap ();
    (* the snapshot is immutable: later registry activity on fresh
       transactions must not change any answer at or below capture *)
    for _ = 1 to 10 do mutate () done;
    compare_snap ();
    List.iter
      (fun c ->
        checki "generation frozen at capture"
          (Registry.snap_generation snap ~class_id:c)
          (Registry.snap_generation snap ~class_id:c))
      (List.init classes Fun.id)
  done

(* --- JSON schema versioning --- *)

let test_jsonlite_schema () =
  let doc = J.with_schema [ ("x", J.num_of_int 1) ] in
  check (Alcotest.option Alcotest.int) "stamped" (Some J.schema_version)
    (J.schema_of doc);
  check (Alcotest.option Alcotest.int) "survives round-trip"
    (Some J.schema_version)
    (J.schema_of (J.of_string (J.to_string doc)));
  check (Alcotest.option Alcotest.int) "pre-versioning doc" None
    (J.schema_of (J.Obj [ ("x", J.Num 1.) ]));
  (* unknown fields are kept by the parser and ignored by accessors *)
  let fancy =
    J.of_string
      {|{"schema_version": 99, "future_blob": {"deep": [1, 2, {"k": true}]},
         "x": 7}|}
  in
  check (Alcotest.option Alcotest.int) "future version readable" (Some 99)
    (J.schema_of fancy);
  check
    (Alcotest.option (Alcotest.float 0.))
    "known fields still reachable" (Some 7.)
    (Option.bind (J.member "x" fancy) J.number)

(* --- the engine itself --- *)

let ok_or_fail label r =
  if not (R.Differential.ok r) then
    Alcotest.failf "%s:@.%a" label R.Differential.pp_report r

let test_engine_single_worker () =
  let partition = R.Differential.chain_partition 4 in
  let script =
    R.Differential.gen_script ~partition ~seed:7 ~txns:60 ()
  in
  let config = R.Engine.default_config ~workers:1 in
  let r = R.Differential.check ~partition ~init:R.Differential.default_init ~config script in
  ok_or_fail "single worker" r;
  checki "every descriptor got a verdict" 60 (r.R.Differential.r_committed + r.R.Differential.r_aborted);
  checkb "traced events present" true (r.R.Differential.r_events > 0);
  checkb "walls released" true (r.R.Differential.r_wall_releases >= 1)

let test_engine_cross_class_values () =
  (* deterministic two-class script: the cross-class reader must see the
     initial value while the writer is uncommitted, then the committed
     value once the writer's activity has cleared *)
  let partition = R.Differential.chain_partition 2 in
  let g1 = Granule.make ~segment:1 ~key:0 in
  let script =
    [| { R.Engine.d_id = 1; d_kind = `Update 1;
         d_ops = [ R.Engine.Write (g1, 111); R.Engine.Read g1 ];
         d_abort = false };
       { R.Engine.d_id = 2; d_kind = `Update 1;
         d_ops = [ R.Engine.Write (g1, 222) ]; d_abort = true };
       { R.Engine.d_id = 3; d_kind = `Update 0;
         d_ops =
           [ R.Engine.Write (Granule.make ~segment:0 ~key:0, 9);
             R.Engine.Read g1 ];
         d_abort = false } |]
  in
  let config = R.Engine.default_config ~workers:2 in
  let r = R.Differential.check ~partition ~init:R.Differential.default_init ~config script in
  ok_or_fail "two-class script" r;
  checki "aborts" 1 r.R.Differential.r_aborted;
  checki "commits" 2 r.R.Differential.r_committed

let stress_seeds () =
  match Sys.getenv_opt "HDD_PAR_SEEDS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 30)
  | None -> 30

let test_multicore_stress () =
  let seeds = stress_seeds () in
  let workers_of s = [| 2; 4; 8 |].(s mod 3) in
  let profile_of s =
    [| R.Differential.Abort_heavy; R.Differential.Adhoc_read;
       R.Differential.Mixed |].(s / 3 mod 3)
  in
  let failures = ref [] in
  for seed = 1 to seeds do
    let workers = workers_of seed and profile = profile_of seed in
    let r = R.Differential.stress_one ~seed ~workers ~txns:40 ~profile in
    if not (R.Differential.ok r) then
      failures :=
        Format.asprintf "seed %d workers %d: %a" seed workers
          R.Differential.pp_report r
        :: !failures
  done;
  if !failures <> [] then
    Alcotest.failf "%d/%d stress runs diverged:@.%s"
      (List.length !failures) seeds
      (String.concat "\n" !failures)

let test_run_timed_smoke () =
  let partition = R.Differential.chain_partition 4 in
  let t =
    R.Engine.run_timed ~partition ~init:R.Differential.default_init
      ~workers:2 ~seconds:0.1
      ~mix:
        { R.Engine.ro_frac = 0.1; abort_frac = 0.05; cross_reads = 2;
          own_ops = 2; keys_per_segment = 4 }
      ~seed:3 ()
  in
  let s = t.R.Engine.t_stats in
  checkb "made progress" true (s.R.Engine.committed > 0);
  checkb "cross-class reads happened" true (s.R.Engine.reads_a > 0);
  let hist =
    Hdd_obs.Metrics.histogram t.R.Engine.t_latency "commit_latency_us"
  in
  let samples = Hdd_obs.Metrics.hist_count hist in
  checkb "latency samples for update commits" true
    (samples > 0 && samples <= s.R.Engine.committed)

let test_parbench_json () =
  let r =
    R.Parbench.run ~workers_list:[ 1; 2 ] ~depth:4 ~seconds:0.05 ~seed:1 ()
  in
  let json = R.Parbench.to_json r in
  check (Alcotest.option Alcotest.int) "schema stamped"
    (Some J.schema_version) (J.schema_of json);
  let parsed = J.of_string (J.to_string json) in
  (match J.member "points" parsed with
  | Some (J.List pts) -> checki "two points" 2 (List.length pts)
  | _ -> Alcotest.fail "points missing");
  checkb "no 1->4 ratio without a 4-worker point" true
    (r.R.Parbench.r_scaling_1_to_4 = None)

let suite =
  [ Alcotest.test_case "gclock: ticks unique across domains" `Quick
      test_gclock_unique;
    Alcotest.test_case "mailbox: fifo, close, drain" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox: backpressure across domains" `Quick
      test_mailbox_backpressure;
    Alcotest.test_case "seqwall: no torn reads under concurrent publish"
      `Quick test_seqwall_no_tearing;
    Alcotest.test_case "store snapshot: immutable latest-before" `Quick
      test_store_snapshot;
    Alcotest.test_case "trace: per-domain merge by logical time" `Quick
      test_trace_merge;
    Alcotest.test_case "monitor: Any_released wall rule" `Quick
      test_monitor_any_released;
    Alcotest.test_case "registry: snapshot equals live on 1000 seeds" `Quick
      test_registry_snapshot_property;
    Alcotest.test_case "jsonlite: schema_version and unknown fields" `Quick
      test_jsonlite_schema;
    Alcotest.test_case "engine: single-worker differential" `Quick
      test_engine_single_worker;
    Alcotest.test_case "engine: deterministic two-class script" `Quick
      test_engine_cross_class_values;
    Alcotest.test_case "engine: randomized multicore stress" `Slow
      test_multicore_stress;
    Alcotest.test_case "engine: timed benchmark mode" `Quick
      test_run_timed_smoke;
    Alcotest.test_case "parbench: scaling report" `Quick test_parbench_json ]
