(* The parallel runtime: unit tests for the multicore primitives, the
   1000-seed registry snapshot-vs-live equivalence property, JSON schema
   versioning, and the randomized multicore differential stress
   (reduced seed count in-tree; CI nightly raises HDD_PAR_SEEDS to the
   full 500). *)

module R = Hdd_runtime
module T = Hdd_obs.Trace
module J = Hdd_benchkit.Jsonlite
module P = Hdd_core.Partition

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- global logical clock --- *)

let test_gclock_unique () =
  let clock = R.Gclock.create () in
  let domains = 4 and per = 2000 in
  let spawned =
    Array.init domains (fun _ ->
        Domain.spawn (fun () -> Array.init per (fun _ -> R.Gclock.tick clock)))
  in
  let all =
    Array.to_list spawned
    |> List.concat_map (fun d -> Array.to_list (Domain.join d))
  in
  let sorted = List.sort_uniq compare all in
  checki "all ticks distinct" (domains * per) (List.length sorted);
  checki "clock advanced exactly once per tick" (domains * per)
    (R.Gclock.now clock);
  List.iter (fun t -> checkb "tick positive" true (t > 0)) sorted

(* --- bounded MPSC mailbox --- *)

let test_mailbox_fifo () =
  let mb = R.Mailbox.create ~capacity:8 in
  for i = 1 to 5 do
    checkb "push accepted" true (R.Mailbox.push mb i)
  done;
  checki "length" 5 (R.Mailbox.length mb);
  for i = 1 to 5 do
    check (Alcotest.option Alcotest.int) "fifo order" (Some i)
      (R.Mailbox.try_pop mb)
  done;
  check (Alcotest.option Alcotest.int) "empty" None (R.Mailbox.try_pop mb);
  for i = 1 to 6 do
    ignore (R.Mailbox.push mb i)
  done;
  let buf = Array.make 4 0 in
  checki "pop_into bounded by max" 4 (R.Mailbox.pop_into mb buf ~max:4);
  checkb "pop_into kept order" true (buf = [| 1; 2; 3; 4 |]);
  checki "pop_into drains the rest" 2 (R.Mailbox.pop_into mb buf ~max:4);
  checki "pop_into on empty" 0 (R.Mailbox.pop_into mb buf ~max:4);
  R.Mailbox.close mb;
  checkb "push to closed refused" false (R.Mailbox.push mb 99);
  checkb "drained" true (R.Mailbox.is_drained mb)

let test_mailbox_backpressure () =
  (* a tiny ring forces the producer to wait for the consumer *)
  let n = 500 in
  let mb = R.Mailbox.create ~capacity:4 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to n do
          ignore (R.Mailbox.push mb i)
        done;
        R.Mailbox.close mb)
  in
  let received = ref [] in
  let rec drain () =
    match R.Mailbox.try_pop mb with
    | Some v ->
      received := v :: !received;
      drain ()
    | None -> if not (R.Mailbox.is_drained mb) then (Domain.cpu_relax (); drain ())
  in
  drain ();
  Domain.join producer;
  checki "all delivered" n (List.length !received);
  check
    (Alcotest.list Alcotest.int)
    "in order" (List.init n (fun i -> i + 1))
    (List.rev !received)

(* --- seqlock-published wall --- *)

let test_seqwall_no_tearing () =
  (* every published wall has all components equal to its anchor; a torn
     read would mix two publications and break the uniformity *)
  let mk m =
    Hdd_core.Timewall.make ~s:0 ~m ~components:(Array.make 6 m)
      ~released_at:(m + 1)
  in
  let sw = R.Seqwall.create (mk 0) in
  let rounds = 2000 in
  let writer =
    Domain.spawn (fun () ->
        for m = 1 to rounds do
          R.Seqwall.publish sw (mk m)
        done)
  in
  let torn = ref 0 and seen_m = ref (-1) in
  let reads = ref 0 in
  while !seen_m < rounds do
    let w = R.Seqwall.read sw in
    incr reads;
    let m = w.Hdd_core.Timewall.m in
    Array.iter
      (fun c -> if c <> m then incr torn)
      w.Hdd_core.Timewall.components;
    if w.Hdd_core.Timewall.released_at <> m + 1 then incr torn;
    if m > !seen_m then seen_m := m
  done;
  Domain.join writer;
  checki "no torn reads" 0 !torn;
  checkb "reader made progress" true (!reads > 0)

(* --- immutable store snapshots --- *)

let test_store_snapshot () =
  let module S = Hdd_mvstore.Snapshot in
  let g = Granule.make ~segment:0 ~key:1 in
  let s0 = S.empty in
  checkb "empty has nothing" true (S.latest_before s0 g ~ts:100 = None);
  let s1 = S.add_commit s0 g ~ts:5 ~value:50 in
  let s2 = S.add_commit s1 g ~ts:9 ~value:90 in
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "latest below 100" (Some (9, 90))
    (S.latest_before s2 g ~ts:100);
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "latest below 9" (Some (5, 50))
    (S.latest_before s2 g ~ts:9);
  checkb "below oldest" true (S.latest_before s2 g ~ts:5 = None);
  (* older snapshots are unaffected by later additions *)
  check
    (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "s1 frozen" (Some (5, 50))
    (S.latest_before s1 g ~ts:100);
  checki "version count" 2 (S.version_count s2);
  checkb "non-monotone ts refused" true
    (try
       ignore (S.add_commit s2 g ~ts:9 ~value:0);
       false
     with Invalid_argument _ -> true)

(* --- per-domain traces merge by logical time --- *)

let test_trace_merge () =
  let t1 = T.create ~domain:1 () and t2 = T.create ~domain:2 () in
  T.emit t1 ~at:3 (T.Note "a");
  T.emit t2 ~at:1 (T.Note "b");
  T.emit t1 ~at:5 (T.Note "c");
  T.emit t2 ~at:4 (T.Note "d");
  let merged = T.merged [ t1; t2 ] in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "sorted by (at, dom)"
    [ (1, 2); (3, 1); (4, 2); (5, 1) ]
    (List.map (fun (r : T.record) -> (r.at, r.dom)) merged);
  checki "domain tag" 1 (T.domain t1)

(* --- monitor wall rules --- *)

let test_monitor_any_released () =
  let mk_records () =
    let wall1 = T.Wall_release { m = 1; released_at = 2; components = [| 5; 5 |] } in
    let wall2 = T.Wall_release { m = 3; released_at = 4; components = [| 7; 7 |] } in
    let begin_ro = T.Begin { txn = 9; kind = T.Read_only; init = 6 } in
    let read_old =
      T.Read { txn = 9; protocol = T.C; segment = 1; key = 0; threshold = 5;
               version = 0 }
    in
    List.mapi
      (fun i ev -> { T.seq = i; at = i + 1; dom = 0; ev })
      [ wall1; wall2; begin_ro; read_old ]
  in
  (* under the serial rule the reader must hold the newest wall (7) *)
  let strict =
    Hdd_obs.Monitor.create ~raise_on_violation:false ~wall_rule:`Latest ()
  in
  List.iter (Hdd_obs.Monitor.feed strict) (mk_records ());
  checkb "Latest flags the stale wall" true
    (Hdd_obs.Monitor.violations strict <> []);
  (* the parallel rule accepts any wall released before initiation *)
  let relaxed =
    Hdd_obs.Monitor.create ~raise_on_violation:false
      ~wall_rule:`Any_released ()
  in
  List.iter (Hdd_obs.Monitor.feed relaxed) (mk_records ());
  check (Alcotest.list Alcotest.string) "Any_released accepts it" []
    (Hdd_obs.Monitor.violations relaxed);
  (* but still rejects a threshold no released wall ever had *)
  let bogus =
    Hdd_obs.Monitor.create ~raise_on_violation:false
      ~wall_rule:`Any_released ()
  in
  List.iter (Hdd_obs.Monitor.feed bogus)
    (List.map
       (fun (r : T.record) ->
         match r.ev with
         | T.Read p -> { r with ev = T.Read { p with threshold = 6 } }
         | _ -> r)
       (mk_records ()));
  checkb "Any_released rejects invented threshold" true
    (Hdd_obs.Monitor.violations bogus <> [])

(* --- registry snapshot-vs-live equivalence, 1000 seeds --- *)

let test_registry_snapshot_property () =
  let seeds = 1000 in
  for seed = 1 to seeds do
    let prng = Hdd_util.Prng.create seed in
    let classes = 1 + Hdd_util.Prng.int prng 4 in
    let reg = Registry.create ~classes () in
    let now = ref 0 in
    let tick () = incr now; !now in
    let actives = ref [] in
    let steps = 10 + Hdd_util.Prng.int prng 40 in
    let next_id = ref 0 in
    let mutate () =
      if !actives <> [] && Hdd_util.Prng.float prng 1. < 0.45 then begin
        let arr = Array.of_list !actives in
        let t = Hdd_util.Prng.pick prng arr in
        actives := List.filter (fun u -> u != t) !actives;
        if Hdd_util.Prng.bool prng then Txn.commit t ~at:(tick ())
        else Txn.abort t ~at:(tick ())
      end
      else begin
        incr next_id;
        let c = Hdd_util.Prng.int prng classes in
        let t =
          Txn.make ~id:!next_id ~kind:(Txn.Update c) ~init:(tick ())
        in
        Registry.register reg t;
        actives := t :: !actives
      end
    in
    for _ = 1 to steps do mutate () done;
    let capture = !now in
    let snap = Registry.snapshot reg in
    let queries =
      List.init 20 (fun _ ->
          (Hdd_util.Prng.int prng classes, Hdd_util.Prng.int prng (capture + 1)))
    in
    let expect =
      List.map
        (fun (c, at) ->
          ( Registry.i_old reg ~class_id:c ~at,
            Registry.c_late reg ~class_id:c ~at ))
        queries
    in
    let compare_snap () =
      List.iter2
        (fun (c, at) (io, cl) ->
          if Registry.snap_i_old snap ~class_id:c ~at <> io then
            Alcotest.failf "seed %d: snap_i_old(%d, %d) diverges" seed c at;
          if Registry.snap_c_late snap ~class_id:c ~at <> cl then
            Alcotest.failf "seed %d: snap_c_late(%d, %d) diverges" seed c at)
        queries expect
    in
    compare_snap ();
    (* the snapshot is immutable: later registry activity on fresh
       transactions must not change any answer at or below capture *)
    for _ = 1 to 10 do mutate () done;
    compare_snap ();
    List.iter
      (fun c ->
        checki "generation frozen at capture"
          (Registry.snap_generation snap ~class_id:c)
          (Registry.snap_generation snap ~class_id:c))
      (List.init classes Fun.id)
  done

(* --- JSON schema versioning --- *)

let test_jsonlite_schema () =
  let doc = J.with_schema [ ("x", J.num_of_int 1) ] in
  check (Alcotest.option Alcotest.int) "stamped" (Some J.schema_version)
    (J.schema_of doc);
  check (Alcotest.option Alcotest.int) "survives round-trip"
    (Some J.schema_version)
    (J.schema_of (J.of_string (J.to_string doc)));
  check (Alcotest.option Alcotest.int) "pre-versioning doc" None
    (J.schema_of (J.Obj [ ("x", J.Num 1.) ]));
  (* unknown fields are kept by the parser and ignored by accessors *)
  let fancy =
    J.of_string
      {|{"schema_version": 99, "future_blob": {"deep": [1, 2, {"k": true}]},
         "x": 7}|}
  in
  check (Alcotest.option Alcotest.int) "future version readable" (Some 99)
    (J.schema_of fancy);
  check
    (Alcotest.option (Alcotest.float 0.))
    "known fields still reachable" (Some 7.)
    (Option.bind (J.member "x" fancy) J.number)

(* --- the engine itself --- *)

let ok_or_fail label r =
  if not (R.Differential.ok r) then
    Alcotest.failf "%s:@.%a" label R.Differential.pp_report r

let test_engine_single_worker () =
  let partition = R.Differential.chain_partition 4 in
  let script =
    R.Differential.gen_script ~partition ~seed:7 ~txns:60 ()
  in
  let config = R.Engine.default_config ~workers:1 in
  let r = R.Differential.check ~partition ~init:R.Differential.default_init ~config script in
  ok_or_fail "single worker" r;
  checki "every descriptor got a verdict" 60 (r.R.Differential.r_committed + r.R.Differential.r_aborted);
  checkb "traced events present" true (r.R.Differential.r_events > 0);
  checkb "walls released" true (r.R.Differential.r_wall_releases >= 1)

let cross_class_check ~publish_every =
  let partition = R.Differential.chain_partition 2 in
  let g1 = Granule.make ~segment:1 ~key:0 in
  let script =
    [| { R.Engine.d_id = 1; d_kind = `Update 1;
         d_ops = [ R.Engine.Write (g1, 111); R.Engine.Read g1 ];
         d_abort = false };
       { R.Engine.d_id = 2; d_kind = `Update 1;
         d_ops = [ R.Engine.Write (g1, 222) ]; d_abort = true };
       { R.Engine.d_id = 3; d_kind = `Update 0;
         d_ops =
           [ R.Engine.Write (Granule.make ~segment:0 ~key:0, 9);
             R.Engine.Read g1 ];
         d_abort = false } |]
  in
  let config =
    { (R.Engine.default_config ~workers:2) with publish_every }
  in
  let r = R.Differential.check ~partition ~init:R.Differential.default_init ~config script in
  ok_or_fail (Printf.sprintf "two-class script at K=%d" publish_every) r;
  checki "aborts" 1 r.R.Differential.r_aborted;
  checki "commits" 2 r.R.Differential.r_committed

(* deterministic two-class script: the cross-class reader must see the
   initial value while the writer is uncommitted, then the committed
   value once the writer's activity has cleared *)
let test_engine_cross_class_values () = cross_class_check ~publish_every:1

(* the PR 5 drain-deadlock shape — a worker going idle while a peer
   still needs its publication — re-run at every batch K: with K > 1 the
   blocked reader must get unstuck through a republication request, not
   by luck of the next commit *)
let test_drain_deadlock_every_k () =
  List.iter (fun k -> cross_class_check ~publish_every:k) [ 1; 4; 16; 64 ]

let stress_seeds () = Fixtures.seeds_from_env "HDD_PAR_SEEDS"

let test_multicore_stress () =
  let seeds = stress_seeds () in
  let failures = ref [] in
  for seed = 1 to seeds do
    let workers = Fixtures.scaled_workers seed
    and profile = Fixtures.stress_profile seed in
    let r = R.Differential.stress_one ~seed ~workers ~txns:40 ~profile () in
    if not (R.Differential.ok r) then
      failures :=
        Format.asprintf "seed %d workers %d: %a" seed workers
          R.Differential.pp_report r
        :: !failures
  done;
  if !failures <> [] then
    Alcotest.failf "%d/%d stress runs diverged:@.%s"
      (List.length !failures) seeds
      (String.concat "\n" !failures)

let test_run_timed_smoke () =
  let partition = R.Differential.chain_partition 4 in
  let t =
    R.Engine.run_timed ~partition ~init:R.Differential.default_init
      ~workers:2 ~seconds:0.1
      ~mix:
        { R.Engine.ro_frac = 0.1; abort_frac = 0.05; cross_reads = 2;
          own_ops = 2; keys_per_segment = 4 }
      ~seed:3 ()
  in
  let s = t.R.Engine.t_stats in
  checkb "made progress" true (s.R.Engine.committed > 0);
  checkb "cross-class reads happened" true (s.R.Engine.reads_a > 0);
  let hist =
    Hdd_obs.Metrics.histogram t.R.Engine.t_latency "commit_latency_us"
  in
  let samples = Hdd_obs.Metrics.hist_count hist in
  checkb "latency samples for update commits" true
    (samples > 0 && samples <= s.R.Engine.committed)

let test_parbench_json () =
  let r =
    R.Parbench.run ~workers_list:[ 1; 2 ] ~depth:4 ~seconds:0.05 ~seed:1 ()
  in
  let json = R.Parbench.to_json r in
  check (Alcotest.option Alcotest.int) "schema stamped"
    (Some J.schema_version) (J.schema_of json);
  let parsed = J.of_string (J.to_string json) in
  (match J.member "points" parsed with
  | Some (J.List pts) -> checki "two points" 2 (List.length pts)
  | _ -> Alcotest.fail "points missing");
  checkb "no 1->4 ratio without a 4-worker point" true
    (r.R.Parbench.r_scaling_1_to_4 = None)

(* --- activity board: the seqlocked per-class fast path --- *)

let test_actboard_registry_equivalence () =
  (* 1000 random single-owner histories, driven into the registry and
     the board in lockstep: whenever the board's record decides (returns
     >= 0) it must equal Registry.i_old exactly — the monitor replays
     thresholds from the trace, so a lower-but-serializable answer still
     fails the oracle.  Mid-transition reads must refuse to decide. *)
  let out = Array.make 6 0 in
  for seed = 1 to 1000 do
    let prng = Hdd_util.Prng.create (seed + 7919) in
    let ab = R.Actboard.create ~classes:1 in
    let reg = Registry.create ~classes:1 () in
    let now = ref 0 in
    let tick () = incr now; !now in
    let next_id = ref 0 in
    let probe () =
      let at = 1 + Hdd_util.Prng.int prng (!now + 2) in
      checkb "single-threaded read always stable" true
        (R.Actboard.read_into ab 0 ~out ~retries:4);
      let fast = R.Actboard.i_old_of_record out ~at in
      if fast >= 0 then
        checki
          (Printf.sprintf "seed %d I_old at %d" seed at)
          (Registry.i_old reg ~class_id:0 ~at)
          fast
    in
    for _ = 1 to 12 do
      if Hdd_util.Prng.bool prng then ignore (tick ());
      probe ();
      incr next_id;
      R.Actboard.begin_txn ab 0;
      let init = tick () in
      Registry.register_active reg ~class_id:0 ~id:!next_id ~init;
      R.Actboard.set_busy ab 0 ~init;
      probe ();
      if Hdd_util.Prng.bool prng then ignore (tick ());
      probe ();
      R.Actboard.set_ending ab 0;
      checkb "read mid-transition stays stable" true
        (R.Actboard.read_into ab 0 ~out ~retries:4);
      checki "transition state falls back" (-1)
        (R.Actboard.i_old_of_record out ~at:(!now + 1));
      let endt = tick () in
      Registry.finish_active reg ~class_id:0 ~endt;
      R.Actboard.set_idle ab 0 ~init ~endt;
      probe ()
    done
  done

(* --- version rings --- *)

let test_vring_ring () =
  let v = R.Vring.create ~entries:8 in
  checki "capacity" 8 (R.Vring.capacity v);
  checki "empty ring: view complete" 0
    (R.Vring.latest_below v ~key:0 ~ts:100 ~floor:0);
  (* one transaction writing two keys publishes with a single advance *)
  R.Vring.stage v 0 ~ts:5 ~key:1 ~value:50;
  R.Vring.stage v 1 ~ts:5 ~key:2 ~value:51;
  checki "staged entries invisible" 0
    (R.Vring.latest_below v ~key:1 ~ts:100 ~floor:0);
  R.Vring.advance v 2;
  checki "found after advance" 5
    (R.Vring.latest_below v ~key:1 ~ts:100 ~floor:0);
  checki "whole equal-ts block visible" 5
    (R.Vring.latest_below v ~key:2 ~ts:100 ~floor:0);
  check (Alcotest.option Alcotest.int) "value travels" (Some 50)
    (R.Vring.value_at v ~key:1 ~ts:5);
  (* threshold at the entry: strictly-below finds nothing newer *)
  checki "threshold excludes own ts" 0
    (R.Vring.latest_below v ~key:1 ~ts:5 ~floor:0);
  (* floor at the block's ts: the stop block is still examined in full,
     so a multi-key transaction straddling the floor resolves in-ring *)
  checki "stop block examined in full" 5
    (R.Vring.latest_below v ~key:1 ~ts:100 ~floor:5);
  (* overflow the ring: a scan that would need evicted entries reports
     the wrap instead of a silently incomplete answer *)
  for i = 0 to 11 do
    R.Vring.stage v (2 + i) ~ts:(10 + i) ~key:(i mod 3) ~value:i;
    R.Vring.advance v (3 + i)
  done;
  checki "head counts every append" 14 (R.Vring.head v);
  checki "newest still found" 21 (R.Vring.latest_below v ~key:2 ~ts:100 ~floor:20);
  checki "wrapped scan falls back" (-1)
    (R.Vring.latest_below v ~key:7 ~ts:100 ~floor:4)

(* --- epoch wall vs seqlock wall --- *)

let mkwall m =
  Hdd_core.Timewall.make ~s:0 ~m ~components:(Array.make 6 m)
    ~released_at:(m + 1)

let test_epochwall_seqwall_equivalence () =
  (* 1000 random release schedules driven into both implementations:
     every read agrees — the epoch wall is a drop-in for the seqlock *)
  for seed = 1 to 1000 do
    let prng = Hdd_util.Prng.create (seed * 31) in
    let ew = R.Epochwall.create (mkwall 0) in
    let sw = R.Seqwall.create (mkwall 0) in
    let m = ref 0 in
    for _ = 1 to 20 do
      if Hdd_util.Prng.bool prng then begin
        m := !m + 1 + Hdd_util.Prng.int prng 5;
        R.Epochwall.publish ew (mkwall !m);
        R.Seqwall.publish sw (mkwall !m)
      end;
      let a = R.Epochwall.read ew and b = R.Seqwall.read sw in
      checki "same wall" b.Hdd_core.Timewall.m a.Hdd_core.Timewall.m
    done
  done

let test_epochwall_pinned_reader () =
  (* pin a reader mid-read: capture the epoch, let the writer advance
     twice (a full lap rewrites the captured slot), then finish the
     read — the result must be one of the complete published walls *)
  let ew = R.Epochwall.create (mkwall 0) in
  for m = 1 to 100 do
    let e = R.Epochwall.epoch ew in
    R.Epochwall.publish ew (mkwall (2 * m));
    R.Epochwall.publish ew (mkwall ((2 * m) + 1));
    let w = R.Epochwall.read_slot ew e in
    let a = w.Hdd_core.Timewall.m in
    Array.iter (fun c -> checki "pinned read complete" a c)
      w.Hdd_core.Timewall.components;
    checki "released_at consistent" (a + 1) w.Hdd_core.Timewall.released_at
  done;
  (* and the concurrent hunt: wait-free reads are complete and monotone *)
  let ew = R.Epochwall.create (mkwall 0) in
  let rounds = 2000 in
  let writer =
    Domain.spawn (fun () ->
        for m = 1 to rounds do
          R.Epochwall.publish ew (mkwall m)
        done)
  in
  let torn = ref 0 and seen = ref (-1) and last = ref 0 in
  while !seen < rounds do
    let w = R.Epochwall.read ew in
    let m = w.Hdd_core.Timewall.m in
    Array.iter
      (fun c -> if c <> m then incr torn)
      w.Hdd_core.Timewall.components;
    if w.Hdd_core.Timewall.released_at <> m + 1 then incr torn;
    if m < !last then incr torn;
    last := m;
    if m > !seen then seen := m
  done;
  Domain.join writer;
  checki "no torn or backwards reads" 0 !torn

(* --- zero-allocation commit path --- *)

let test_alloc_probe_zero () =
  check (Alcotest.float 0.) "Protocol B commit path allocates nothing" 0.
    (R.Engine.alloc_probe ())

(* --- batched publication changes nothing observable --- *)

let batch_seeds () = Fixtures.seeds_from_env ~default:12 "HDD_BATCH_SEEDS"

let test_batching_identity () =
  (* every batch K must pass the full four-check oracle AND reach the
     same verdict totals as per-commit publication — batching may only
     delay when peers learn of activity, never what they conclude
     (reduced seed count in-tree; nightly raises HDD_BATCH_SEEDS) *)
  let seeds = batch_seeds () in
  let ks = [ 1; 4; 16; 64 ] in
  let profiles =
    [| R.Differential.Mixed; R.Differential.Abort_heavy;
       R.Differential.Adhoc_read |]
  in
  let failures = ref [] in
  for seed = 1 to seeds do
    let workers = [| 2; 4; 8 |].(seed mod 3) in
    let profile = profiles.(seed mod 3) in
    let outcomes =
      List.map
        (fun k ->
          let r =
            R.Differential.stress_one ~publish_every:k ~seed ~workers
              ~txns:40 ~profile ()
          in
          if not (R.Differential.ok r) then
            failures :=
              Format.asprintf "seed %d K=%d: %a" seed k
                R.Differential.pp_report r
              :: !failures;
          (k, r.R.Differential.r_committed, r.R.Differential.r_aborted))
        ks
    in
    match outcomes with
    | (_, c1, a1) :: rest ->
      List.iter
        (fun (k, c, a) ->
          if c <> c1 || a <> a1 then
            failures :=
              Printf.sprintf
                "seed %d: K=%d verdicts (%d committed, %d aborted) differ \
                 from K=1 (%d, %d)"
                seed k c a c1 a1
              :: !failures)
        rest
    | [] -> ()
  done;
  if !failures <> [] then
    Alcotest.failf "%d batching divergences:@.%s" (List.length !failures)
      (String.concat "\n" !failures)

let suite =
  [ Alcotest.test_case "gclock: ticks unique across domains" `Quick
      test_gclock_unique;
    Alcotest.test_case "mailbox: fifo, close, drain" `Quick test_mailbox_fifo;
    Alcotest.test_case "mailbox: backpressure across domains" `Quick
      test_mailbox_backpressure;
    Alcotest.test_case "seqwall: no torn reads under concurrent publish"
      `Quick test_seqwall_no_tearing;
    Alcotest.test_case "store snapshot: immutable latest-before" `Quick
      test_store_snapshot;
    Alcotest.test_case "trace: per-domain merge by logical time" `Quick
      test_trace_merge;
    Alcotest.test_case "monitor: Any_released wall rule" `Quick
      test_monitor_any_released;
    Alcotest.test_case "registry: snapshot equals live on 1000 seeds" `Quick
      test_registry_snapshot_property;
    Alcotest.test_case "jsonlite: schema_version and unknown fields" `Quick
      test_jsonlite_schema;
    Alcotest.test_case "engine: single-worker differential" `Quick
      test_engine_single_worker;
    Alcotest.test_case "engine: deterministic two-class script" `Quick
      test_engine_cross_class_values;
    Alcotest.test_case "engine: drain-deadlock scenario at every batch K"
      `Quick test_drain_deadlock_every_k;
    Alcotest.test_case "actboard: record I_old equals registry on 1000 seeds"
      `Quick test_actboard_registry_equivalence;
    Alcotest.test_case "vring: splice, equal-ts blocks, wrap fallback"
      `Quick test_vring_ring;
    Alcotest.test_case "epochwall: equals seqwall on 1000 schedules" `Quick
      test_epochwall_seqwall_equivalence;
    Alcotest.test_case "epochwall: pinned reader never sees a torn wall"
      `Quick test_epochwall_pinned_reader;
    Alcotest.test_case "engine: commit path allocates zero bytes" `Quick
      test_alloc_probe_zero;
    Alcotest.test_case "engine: batched publication outcome identity" `Slow
      test_batching_identity;
    Alcotest.test_case "engine: randomized multicore stress" `Slow
      test_multicore_stress;
    Alcotest.test_case "engine: timed benchmark mode" `Quick
      test_run_timed_smoke;
    Alcotest.test_case "parbench: scaling report" `Quick test_parbench_json ]
