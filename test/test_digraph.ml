(* Unit and property tests for the digraph substrate: traversal, closure,
   reduction, semi-trees, critical paths (paper §3.1). *)

module G = Hdd_graph.Digraph

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_arcs = Alcotest.check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
let check_nodes = Alcotest.check (Alcotest.list Alcotest.int)
let check_path = Alcotest.check (Alcotest.option (Alcotest.list Alcotest.int))

(* The paper's Figure 5 transitive semi-tree: a chain with a transitively
   induced shortcut. *)
let fig5 = G.of_arcs [ (1, 2); (2, 3); (1, 3); (4, 2) ]

let chain = G.of_arcs [ (0, 1); (1, 2); (2, 3) ]

let test_basic_ops () =
  let g = G.of_arcs [ (1, 2); (2, 3) ] in
  check_nodes "nodes" [ 1; 2; 3 ] (G.nodes g);
  check_arcs "arcs" [ (1, 2); (2, 3) ] (G.arcs g);
  checkb "mem_arc" true (G.mem_arc g 1 2);
  checkb "not mem_arc" false (G.mem_arc g 2 1);
  check_nodes "succ" [ 2 ] (G.succ g 1);
  check_nodes "pred" [ 1 ] (G.pred g 2);
  checki "node_count" 3 (G.node_count g);
  checki "arc_count" 2 (G.arc_count g)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Digraph.add_arc: self-loop") (fun () ->
      ignore (G.add_arc G.empty 1 1))

let test_add_idempotent () =
  let g = G.add_arc (G.add_arc G.empty 1 2) 1 2 in
  checki "duplicate arc not double counted" 1 (G.arc_count g)

let test_remove_arc () =
  let g = G.remove_arc (G.of_arcs [ (1, 2); (2, 3) ]) 1 2 in
  checkb "removed" false (G.mem_arc g 1 2);
  checkb "other kept" true (G.mem_arc g 2 3)

let test_reachable () =
  check_nodes "reach from 1" [ 1; 2; 3 ] (G.reachable fig5 1);
  check_nodes "reach from 3" [ 3 ] (G.reachable fig5 3);
  checkb "has_path 4->3" true (G.has_path fig5 4 3);
  checkb "no path 3->1" false (G.has_path fig5 3 1);
  checkb "trivial path" true (G.has_path fig5 2 2)

let test_topological_sort () =
  (match G.topological_sort chain with
  | None -> Alcotest.fail "chain is acyclic"
  | Some order ->
    check_nodes "topo order of a chain" [ 0; 1; 2; 3 ] order);
  let cyclic = G.of_arcs [ (1, 2); (2, 3); (3, 1) ] in
  checkb "cyclic has no topo sort" true (G.topological_sort cyclic = None)

let test_is_acyclic () =
  checkb "fig5 acyclic" true (G.is_acyclic fig5);
  checkb "2-cycle" false (G.is_acyclic (G.of_arcs [ (1, 2); (2, 1) ]))

let test_find_cycle () =
  checkb "acyclic: no cycle" true (G.find_cycle chain = None);
  let g = G.of_arcs [ (1, 2); (2, 3); (3, 1); (0, 1) ] in
  match G.find_cycle g with
  | None -> Alcotest.fail "cycle expected"
  | Some c ->
    checkb "cycle has >= 2 nodes" true (List.length c >= 2);
    (* verify it really is a cycle in g *)
    let rec arcs_ok = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> G.mem_arc g a b && arcs_ok rest
    in
    checkb "internal arcs exist" true (arcs_ok c);
    let first = List.hd c and last = List.nth c (List.length c - 1) in
    checkb "closing arc exists" true (G.mem_arc g last first)

let test_scc () =
  let g = G.of_arcs [ (1, 2); (2, 1); (2, 3); (3, 4); (4, 3) ] in
  let comps = G.scc g |> List.sort compare in
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "two non-trivial sccs" [ [ 1; 2 ]; [ 3; 4 ] ] comps

let test_transitive_closure () =
  let c = G.transitive_closure chain in
  checkb "0 reaches 3 directly in closure" true (G.mem_arc c 0 3);
  checki "closure arc count" 6 (G.arc_count c)

let test_transitive_reduction () =
  let r = G.transitive_reduction fig5 in
  check_arcs "shortcut removed" [ (1, 2); (2, 3); (4, 2) ] (G.arcs r);
  Alcotest.check_raises "cyclic input rejected"
    (Invalid_argument "Digraph.transitive_reduction: cyclic graph")
    (fun () -> ignore (G.transitive_reduction (G.of_arcs [ (1, 2); (2, 1) ])))

let test_reduction_preserves_closure () =
  let r = G.transitive_reduction fig5 in
  checkb "same closure" true
    (G.equal (G.transitive_closure r) (G.transitive_closure fig5))

let test_is_semi_tree () =
  checkb "reduction of fig5 is a semi-tree" true
    (G.is_semi_tree (G.transitive_reduction fig5));
  (* two parallel undirected paths *)
  let diamond = G.of_arcs [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  checkb "diamond is not" false (G.is_semi_tree diamond);
  (* antiparallel pair is a duplicated undirected edge *)
  checkb "antiparallel pair is not" false
    (G.is_semi_tree (G.of_arcs [ (1, 2); (2, 1) ]));
  checkb "empty is" true (G.is_semi_tree G.empty);
  checkb "forest is" true (G.is_semi_tree (G.of_arcs [ (1, 2); (3, 4) ]))

let test_is_transitive_semi_tree () =
  checkb "fig5" true (G.is_transitive_semi_tree fig5);
  checkb "chain with all shortcuts" true
    (G.is_transitive_semi_tree
       (G.of_arcs [ (0, 1); (1, 2); (2, 3); (0, 2); (0, 3); (1, 3) ]));
  checkb "diamond is not" false
    (G.is_transitive_semi_tree (G.of_arcs [ (1, 2); (1, 3); (2, 4); (3, 4) ]));
  checkb "cyclic is not" false
    (G.is_transitive_semi_tree (G.of_arcs [ (1, 2); (2, 1) ]))

let test_critical_arcs () =
  check_arcs "critical arcs of fig5" [ (1, 2); (2, 3); (4, 2) ]
    (G.critical_arcs fig5)

let test_critical_path () =
  check_path "1 to 3 via 2" (Some [ 1; 2; 3 ]) (G.critical_path fig5 1 3);
  check_path "same node" (Some [ 2 ]) (G.critical_path fig5 2 2);
  check_path "no path 3 to 1" None (G.critical_path fig5 3 1);
  check_path "4 to 3" (Some [ 4; 2; 3 ]) (G.critical_path fig5 4 3);
  check_path "absent node" None (G.critical_path fig5 9 1)

let test_higher_than () =
  checkb "3 higher than 1" true (G.higher_than fig5 3 1);
  checkb "1 not higher than 3" false (G.higher_than fig5 1 3);
  checkb "not higher than itself" false (G.higher_than fig5 2 2);
  checkb "3 higher than 4" true (G.higher_than fig5 3 4);
  checkb "1 and 4 unrelated" false
    (G.higher_than fig5 1 4 || G.higher_than fig5 4 1)

let test_undirected_critical_path () =
  check_path "1 to 4 through 2" (Some [ 1; 2; 4 ])
    (G.undirected_critical_path fig5 1 4);
  check_path "4 to 3" (Some [ 4; 2; 3 ]) (G.undirected_critical_path fig5 4 3);
  check_path "same node" (Some [ 1 ]) (G.undirected_critical_path fig5 1 1);
  let forest = G.of_arcs [ (1, 2); (3, 4) ] in
  check_path "disconnected" None (G.undirected_critical_path forest 1 3)

let test_to_dot () =
  let dot = G.to_dot ~name:"t" fig5 in
  checkb "mentions digraph" true
    (String.length dot > 7 && String.sub dot 0 7 = "digraph");
  checkb "dashes the induced arc" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains dot "style=dashed")

(* --- property tests --- *)

let arb_dag =
  (* random DAG over n nodes: only arcs low -> high *)
  QCheck2.Gen.(
    sized_size (int_range 2 9) (fun n ->
        let pairs =
          List.concat
            (List.init n (fun i ->
                 List.init (n - i - 1) (fun k -> (i, i + k + 1))))
        in
        let* keep = flatten_l (List.map (fun p -> map (fun b -> (p, b)) bool) pairs) in
        return
          (List.filter_map (fun (p, b) -> if b then Some p else None) keep)))

let prop_reduction_idempotent =
  QCheck2.Test.make ~name:"transitive reduction is idempotent" ~count:200
    arb_dag (fun arcs ->
      let g = G.of_arcs arcs in
      let r = G.transitive_reduction g in
      G.equal r (G.transitive_reduction r))

let prop_reduction_closure =
  QCheck2.Test.make ~name:"reduction preserves the transitive closure"
    ~count:200 arb_dag (fun arcs ->
      let g = G.of_arcs arcs in
      let r = G.transitive_reduction g in
      G.equal (G.transitive_closure r) (G.transitive_closure g))

let prop_reduction_minimal =
  QCheck2.Test.make ~name:"every reduction arc is necessary" ~count:100
    arb_dag (fun arcs ->
      let g = G.of_arcs arcs in
      let r = G.transitive_reduction g in
      List.for_all
        (fun (u, v) ->
          not (G.has_path (G.remove_arc r u v) u v))
        (G.arcs r))

let prop_topo_respects_arcs =
  QCheck2.Test.make ~name:"topological sort respects arcs" ~count:200 arb_dag
    (fun arcs ->
      let g = G.of_arcs arcs in
      match G.topological_sort g with
      | None -> false (* DAGs always sort *)
      | Some order ->
        let pos = Hashtbl.create 16 in
        List.iteri (fun i u -> Hashtbl.replace pos u i) order;
        List.for_all
          (fun (u, v) -> Hashtbl.find pos u < Hashtbl.find pos v)
          (G.arcs g))

let prop_semi_tree_unique_ucp =
  QCheck2.Test.make
    ~name:"in a semi-tree reduction the UCP exists within a component"
    ~count:100 arb_dag (fun arcs ->
      let g = G.of_arcs arcs in
      if not (G.is_transitive_semi_tree g) then true
      else
        let nodes = G.nodes g in
        List.for_all
          (fun i ->
            List.for_all
              (fun j ->
                match G.undirected_critical_path g i j with
                | Some (first :: _ as path) ->
                  first = i && List.nth path (List.length path - 1) = j
                | Some [] -> false
                | None -> true)
              nodes)
          nodes)

let suite =
  [ Alcotest.test_case "basic operations" `Quick test_basic_ops;
    Alcotest.test_case "self loops rejected" `Quick test_self_loop_rejected;
    Alcotest.test_case "add is idempotent" `Quick test_add_idempotent;
    Alcotest.test_case "remove arc" `Quick test_remove_arc;
    Alcotest.test_case "reachability" `Quick test_reachable;
    Alcotest.test_case "topological sort" `Quick test_topological_sort;
    Alcotest.test_case "acyclicity" `Quick test_is_acyclic;
    Alcotest.test_case "cycle witness" `Quick test_find_cycle;
    Alcotest.test_case "strongly connected components" `Quick test_scc;
    Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
    Alcotest.test_case "transitive reduction" `Quick test_transitive_reduction;
    Alcotest.test_case "reduction keeps closure" `Quick test_reduction_preserves_closure;
    Alcotest.test_case "semi-tree recognition" `Quick test_is_semi_tree;
    Alcotest.test_case "transitive semi-tree recognition" `Quick test_is_transitive_semi_tree;
    Alcotest.test_case "critical arcs" `Quick test_critical_arcs;
    Alcotest.test_case "critical paths" `Quick test_critical_path;
    Alcotest.test_case "higher-than order" `Quick test_higher_than;
    Alcotest.test_case "undirected critical paths" `Quick test_undirected_critical_path;
    Alcotest.test_case "dot export" `Quick test_to_dot;
    QCheck_alcotest.to_alcotest prop_reduction_idempotent;
    QCheck_alcotest.to_alcotest prop_reduction_closure;
    QCheck_alcotest.to_alcotest prop_reduction_minimal;
    QCheck_alcotest.to_alcotest prop_topo_respects_arcs;
    QCheck_alcotest.to_alcotest prop_semi_tree_unique_ucp ]
