(* Shared test helper: random transaction histories over a partition.

   Generates begin/commit/abort event sequences against a Registry and a
   logical clock, used by the activity-link, time-wall and follows tests
   to probe the paper's properties on many histories. *)

module Prng = Hdd_util.Prng
module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition

(* A linear hierarchy D0 <- D1 <- ... (class i writes Di, reads upward). *)
let chain_partition depth =
  let segments = List.init depth (fun i -> Printf.sprintf "s%d" i) in
  let types =
    List.init depth (fun i ->
        Spec.txn_type
          ~name:(Printf.sprintf "c%d" i)
          ~writes:[ i ]
          ~reads:(List.init (depth - i) (fun k -> i + k)))
  in
  Partition.build_exn (Spec.make ~segments ~types)

(* Base on top, [branches] classes below it reading the base. *)
let branch_partition branches =
  let segments =
    List.init branches (fun i -> Printf.sprintf "b%d" i) @ [ "base" ]
  in
  let types =
    Spec.txn_type ~name:"feed" ~writes:[ branches ] ~reads:[]
    :: List.init branches (fun i ->
           Spec.txn_type
             ~name:(Printf.sprintf "d%d" i)
             ~writes:[ i ]
             ~reads:[ i; branches ])
  in
  Partition.build_exn (Spec.make ~segments ~types)

type t = {
  registry : Registry.t;
  clock : Time.Clock.clock;
  all : Txn.t list;  (** every generated transaction, oldest first *)
}

(* Random history: at each step begin a transaction in a random class or
   finish (commit, mostly) a random active one.  With [quiesce] all
   remaining transactions commit at the end, making C_late computable
   everywhere. *)
let random ?(quiesce = true) ~seed ~steps ~classes () =
  let rng = Prng.create seed in
  let registry = Registry.create ~classes in
  let clock = Time.Clock.create () in
  let active = ref [] in
  let all = ref [] in
  let next_id = ref 1 in
  for _ = 1 to steps do
    let begin_one = !active = [] || Prng.bool rng in
    if begin_one then begin
      let cls = Prng.int rng classes in
      let txn =
        Txn.make ~id:!next_id ~kind:(Txn.Update cls)
          ~init:(Time.Clock.tick clock)
      in
      incr next_id;
      Registry.register registry txn;
      active := txn :: !active;
      all := txn :: !all
    end
    else begin
      let arr = Array.of_list !active in
      let victim = Prng.pick rng arr in
      active := List.filter (fun t -> t != victim) !active;
      if Prng.int rng 10 < 8 then
        Txn.commit victim ~at:(Time.Clock.tick clock)
      else Txn.abort victim ~at:(Time.Clock.tick clock)
    end
  done;
  if quiesce then
    List.iter
      (fun t -> Txn.commit t ~at:(Time.Clock.tick clock))
      (List.rev !active);
  { registry; clock; all = List.rev !all }
