(* Shared test helper: random transaction histories over a partition.

   Generates begin/commit/abort event sequences against a Registry and a
   logical clock, used by the activity-link, time-wall and follows tests
   to probe the paper's properties on many histories.

   Histories can mix in ad-hoc read-only transactions (never registered:
   Protocol C serves them from walls, so activity links must ignore
   them), ad-hoc update transactions (registered in several classes, the
   §7.1.1 rule), and abort-heavy schedules (aborts count as activity
   ends, the boundary Property 2.1 is touchiest around). *)

module Prng = Hdd_util.Prng
module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition

(* A linear hierarchy D0 <- D1 <- ... (class i writes Di, reads upward). *)
let chain_partition depth =
  let segments = List.init depth (fun i -> Printf.sprintf "s%d" i) in
  let types =
    List.init depth (fun i ->
        Spec.txn_type
          ~name:(Printf.sprintf "c%d" i)
          ~writes:[ i ]
          ~reads:(List.init (depth - i) (fun k -> i + k)))
  in
  Partition.build_exn (Spec.make ~segments ~types)

(* Base on top, [branches] classes below it reading the base. *)
let branch_partition branches =
  let segments =
    List.init branches (fun i -> Printf.sprintf "b%d" i) @ [ "base" ]
  in
  let types =
    Spec.txn_type ~name:"feed" ~writes:[ branches ] ~reads:[]
    :: List.init branches (fun i ->
           Spec.txn_type
             ~name:(Printf.sprintf "d%d" i)
             ~writes:[ i ]
             ~reads:[ i; branches ])
  in
  Partition.build_exn (Spec.make ~segments ~types)

type t = {
  registry : Registry.t;
  clock : Time.Clock.clock;
  all : Txn.t list;
      (** every registered (update or ad-hoc update) transaction, oldest
          first; read-only transactions are kept apart because the
          activity machinery never sees them *)
  read_only : Txn.t list;  (** ad-hoc read-only transactions, oldest first *)
  adhoc : (Txn.t * int list) list;
      (** ad-hoc update transactions with the classes they joined *)
}

(* Random history: at each step begin a transaction in a random class or
   finish a random active one — committing [commit_bias]/10 of the time,
   so lowering it makes histories abort-heavy.  [ro_weight] and
   [adhoc_weight] are percent chances that a begin is an ad-hoc
   read-only or ad-hoc update transaction; both default off, which keeps
   the draw sequence (and thus every existing seeded expectation) of the
   plain generator.  With [quiesce] all remaining transactions commit at
   the end, making C_late computable everywhere. *)
let random ?(quiesce = true) ?(commit_bias = 8) ?(ro_weight = 0)
    ?(adhoc_weight = 0) ~seed ~steps ~classes () =
  let rng = Prng.create seed in
  let registry = Registry.create ~classes () in
  let clock = Time.Clock.create () in
  let active = ref [] in
  let all = ref [] in
  let read_only = ref [] in
  let adhoc = ref [] in
  let next_id = ref 1 in
  for _ = 1 to steps do
    let begin_one = !active = [] || Prng.bool rng in
    if begin_one then begin
      let id = !next_id in
      incr next_id;
      if ro_weight > 0 && Prng.int rng 100 < ro_weight then begin
        let txn =
          Txn.make ~id ~kind:Txn.Read_only ~init:(Time.Clock.tick clock)
        in
        active := txn :: !active;
        read_only := txn :: !read_only
      end
      else if adhoc_weight > 0 && Prng.int rng 100 < adhoc_weight then begin
        let c1 = Prng.int rng classes in
        let c2 = Prng.int rng classes in
        let joined = List.sort_uniq compare [ c1; c2 ] in
        let txn =
          Txn.make ~id ~kind:(Txn.Update c1) ~init:(Time.Clock.tick clock)
        in
        List.iter (fun c -> Registry.register_in registry ~class_id:c txn)
          joined;
        active := txn :: !active;
        all := txn :: !all;
        adhoc := (txn, joined) :: !adhoc
      end
      else begin
        let cls = Prng.int rng classes in
        let txn =
          Txn.make ~id ~kind:(Txn.Update cls) ~init:(Time.Clock.tick clock)
        in
        Registry.register registry txn;
        active := txn :: !active;
        all := txn :: !all
      end
    end
    else begin
      let arr = Array.of_list !active in
      let victim = Prng.pick rng arr in
      active := List.filter (fun t -> t != victim) !active;
      if Prng.int rng 10 < commit_bias then
        Txn.commit victim ~at:(Time.Clock.tick clock)
      else Txn.abort victim ~at:(Time.Clock.tick clock)
    end
  done;
  if quiesce then
    List.iter
      (fun t -> Txn.commit t ~at:(Time.Clock.tick clock))
      (List.rev !active);
  { registry; clock; all = List.rev !all;
    read_only = List.rev !read_only; adhoc = List.rev !adhoc }
