(* Adaptive hybrid CC and the open-loop workload suite (DESIGN.md §18).

   The load-bearing property is escalation equivalence: the same seeded
   script on the multicore engine, with and without forced live CC mode
   flips, must produce identical outcomes and pass the four-check
   differential oracle in both runs — at 2, 4 and 8 worker domains.
   Around it: the serial hybrid scheduler's certification across flips,
   the monitor's escalation invariant on forged traces, a byte-stable
   golden escalation trace, the contention/policy unit layer, the
   prudent-precedence baseline the escalated mode borrows, the
   closed-loop placement controller, and the workload suite's gates.

   Reduced seed count in-tree; nightly raises HDD_HYBRID_SEEDS. *)

module R = Hdd_runtime
module E = Hdd_runtime.Engine
module D = Hdd_runtime.Differential
module T = Hdd_obs.Trace
module Monitor = Hdd_obs.Monitor
module P = Hdd_core.Partition
module Certifier = Hdd_core.Certifier
module Hy = Hdd_hybrid.Hybrid_sched
module Contention = Hdd_hybrid.Contention
module Policy = Hdd_hybrid.Policy
module Control = Hdd_adapt.Control
module Prudent = Hdd_baselines.Prudent
module Runner = Hdd_sim.Runner
module Controller = Hdd_sim.Controller
module Tpcc = Hdd_workload.Tpcc
module Prng = Hdd_util.Prng
open Hdd_core.Outcome

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checki = Alcotest.check Alcotest.int

let hybrid_seeds () = Fixtures.seeds_from_env "HDD_HYBRID_SEEDS"

(* --- the escalation-equivalence property --- *)

(* Same script, same engine config, twice: once plan-free, once with a
   forced per-class CC mode flip available at every coordinator poll
   (every class alternating, the last step restoring all-plain).
   Outcomes must match descriptor by descriptor, both runs must pass
   the four-check oracle, and the flip run must actually have
   escalated. *)
let test_escalation_equivalence () =
  let seeds = hybrid_seeds () in
  let failures = ref [] in
  let fail fmt = Format.kasprintf (fun s -> failures := s :: !failures) fmt in
  for seed = 1 to seeds do
    let workers = Fixtures.scaled_workers seed in
    let prng = Prng.create ((seed * 2) + 1) in
    let partition =
      if seed land 1 = 0 then D.chain_partition (4 + Prng.int prng 5)
      else D.tree_partition (3 + Prng.int prng 3)
    in
    let script =
      D.gen_script ~partition ~seed ~txns:60 ~ro_frac:0.25 ~abort_frac:0.15 ()
    in
    let config = E.default_config ~workers in
    let init = D.default_init in
    let run0 = E.run_script ~partition ~init config ~script in
    let mode_plan =
      D.escalation_plan ~segments:(P.segment_count partition) 6
    in
    let run1 = E.run_script ~partition ~init ~mode_plan config ~script in
    if run1.E.stats.E.escalations < 1 then
      fail "seed %d (%d workers): no mode flip ran" seed workers;
    if run0.E.outcomes <> run1.E.outcomes then
      fail "seed %d (%d workers): outcomes diverge under escalations" seed
        workers;
    let r0 = D.check_run ~partition ~init ~script run0 in
    let r1 = D.check_run ~partition ~init ~script run1 in
    if not (D.ok r0) then
      fail "seed %d (%d workers) plan-free: %a" seed workers D.pp_report r0;
    if not (D.ok r1) then
      fail "seed %d (%d workers) with flips: %a" seed workers D.pp_report r1
  done;
  if !failures <> [] then
    Alcotest.failf "%d escalation-equivalence failures:@.%s"
      (List.length !failures)
      (String.concat "\n" (List.rev !failures))

(* The ISSUE's acceptance shape, pinned explicitly: oracle green at 2,
   4 and 8 domains with live mode flips applied in each run. *)
let test_oracle_under_flips_2_4_8 () =
  List.iter
    (fun workers ->
      let r =
        D.stress_one ~escalations:3 ~seed:(200 + workers) ~workers ~txns:80
          ~profile:D.Mixed ()
      in
      checkb
        (Printf.sprintf "oracle green at %d domains" workers)
        true (D.ok r);
      checkb
        (Printf.sprintf "escalated at %d domains" workers)
        true
        (r.D.r_escalations >= 1))
    [ 2; 4; 8 ]

(* Repartitions and escalations composed in one run stay green. *)
let test_flips_compose_with_repartitions () =
  let r =
    D.stress_one ~repartitions:2 ~escalations:2 ~seed:7 ~workers:4 ~txns:80
      ~profile:D.Mixed ()
  in
  checkb "oracle green under both plans" true (D.ok r);
  checkb "repartitioned" true (r.D.r_repartitions >= 1);
  checkb "escalated" true (r.D.r_escalations >= 1)

(* --- forged traces: the escalation invariant bites --- *)

let rec_ at ev = { T.seq = at; at; dom = 0; ev }

let feed_forged records =
  let m = Monitor.create ~raise_on_violation:false ~wall_rule:`Any_released () in
  List.iter (Monitor.feed m) records;
  Monitor.violations m

let test_forged_seq_regression () =
  let vs =
    feed_forged
      [ rec_ 1 (T.Escalation { seq = 1; modes = [ 1 ] });
        rec_ 2 (T.Escalation { seq = 1; modes = [ 0 ] }) ]
  in
  checkb "stale sequence number is a violation" true (vs <> []);
  checkb "message names the sequence" true
    (List.exists (fun v -> Fixtures.contains v "sequence") vs)

let test_forged_flip_with_txn_in_flight () =
  let vs =
    feed_forged
      [ rec_ 1 (T.Begin { txn = 1; kind = T.Update 0; init = 1 });
        rec_ 2 (T.Escalation { seq = 1; modes = [ 1 ] }) ]
  in
  checkb "flip with the class's txn in flight is a violation" true
    (vs <> []);
  checkb "message names the drain barrier" true
    (List.exists (fun v -> Fixtures.contains v "drain") vs)

let test_forged_escalated_write_at_init () =
  let vs =
    feed_forged
      [ rec_ 1 (T.Escalation { seq = 1; modes = [ 1 ] });
        rec_ 2 (T.Begin { txn = 1; kind = T.Update 0; init = 2 });
        rec_ 3 (T.Write { txn = 1; segment = 0; key = 0; ts = 2 }) ]
  in
  checkb "escalated write stamped at init is a violation" true (vs <> [])

let test_forged_legal_escalated_run_is_clean () =
  let vs =
    feed_forged
      [ rec_ 1 (T.Escalation { seq = 1; modes = [ 1 ] });
        rec_ 2 (T.Begin { txn = 1; kind = T.Update 0; init = 2 });
        rec_ 3 (T.Write { txn = 1; segment = 0; key = 0; ts = 3 });
        rec_ 4 (T.Commit { txn = 1; at = 4 });
        rec_ 5 (T.Escalation { seq = 2; modes = [ 0 ] }) ]
  in
  checks "no violations" "" (String.concat "\n" vs)

(* A flip of an unrelated class while another class's txn is in flight
   is legal — the invariant is per changed class, not global. *)
let test_forged_flip_of_other_class_is_legal () =
  let vs =
    feed_forged
      [ rec_ 1 (T.Begin { txn = 1; kind = T.Update 0; init = 1 });
        rec_ 2 (T.Escalation { seq = 1; modes = [ 0; 1 ] }) ]
  in
  checks "no violations" "" (String.concat "\n" vs)

(* --- the serial hybrid scheduler --- *)

let branch2 = Hdd_benchkit.Fixtures.branch_partition 2
let base_g k = Granule.make ~segment:2 ~key:k

let test_eligibility () =
  let el = Hy.eligible_classes branch2 in
  checkb "base class is root-only eligible" true el.(2);
  checkb "branch classes read the base and are not" false (el.(0) || el.(1));
  let h = Hy.create ~partition:branch2 ~init:(fun _ -> 0) () in
  checkb "escalating a branch class is refused" true
    (try
       Hy.request_modes h [| 1; 0; 0 |];
       false
     with Invalid_argument _ -> true);
  checkb "bad vector length is refused" true
    (try
       Hy.request_modes h [| 1 |];
       false
     with Invalid_argument _ -> true)

(* The lazy flip: a staged target waits for the changing class to
   drain, then lands at the next transaction boundary. *)
let test_flip_waits_for_drain () =
  let h = Hy.create ~partition:branch2 ~init:(fun _ -> 0) () in
  let t = Hy.begin_update h ~class_id:2 in
  Hy.request_modes h [| 0; 0; 1 |];
  checkb "flip is pending while the class has a txn in flight" true
    (Hy.pending h <> None);
  checki "mode still plain" 0 (Hy.modes h).(2);
  ignore (Hy.write h t (base_g 0) 1);
  Hy.commit h t;
  checkb "flip landed at the commit boundary" true (Hy.pending h = None);
  checki "mode escalated" 1 (Hy.modes h).(2);
  checki "one escalation applied" 1 (Hy.escalations h)

(* Escalated semantics in one deterministic script: lock-free reads
   with precedence edges, exclusive deferred writes, commit-waits,
   commit-stamped versions visible to the next transaction. *)
let test_escalated_script () =
  let log = Sched_log.create () in
  let h = Hy.create ~log ~partition:branch2 ~init:(fun _ -> 0) () in
  Hy.request_modes h [| 0; 0; 1 |];
  let w = Hy.begin_update h ~class_id:2 in
  (match Hy.write h w (base_g 0) 9 with
  | Granted () -> ()
  | _ -> Alcotest.fail "escalated write should take the free slot");
  let r = Hy.begin_update h ~class_id:2 in
  (match Hy.read h r (base_g 0) with
  | Granted 0 -> ()
  | Granted v -> Alcotest.failf "reader saw uncommitted %d" v
  | _ -> Alcotest.fail "escalated read must not wait");
  (match Hy.try_commit h w with
  | Blocked [ id ] -> checki "writer waits for the reader" id r.Txn.id
  | _ -> Alcotest.fail "writer must commit-wait on the reader");
  (match Hy.try_commit h r with
  | Granted () -> ()
  | _ -> Alcotest.fail "reader has no predecessors");
  Hy.commit h r;
  (match Hy.try_commit h w with
  | Granted () -> ()
  | _ -> Alcotest.fail "writer is free once the reader finished");
  Hy.commit h w;
  let t = Hy.begin_update h ~class_id:2 in
  (match Hy.read h t (base_g 0) with
  | Granted 9 -> ()
  | Granted v -> Alcotest.failf "expected the commit-stamped 9, got %d" v
  | _ -> Alcotest.fail "read failed");
  Hy.commit h t;
  checkb "the whole script certifies" true (Certifier.serializable log)

let test_escalated_writer_blocks_writer () =
  let h = Hy.create ~partition:branch2 ~init:(fun _ -> 0) () in
  Hy.request_modes h [| 0; 0; 1 |];
  let w1 = Hy.begin_update h ~class_id:2 in
  let w2 = Hy.begin_update h ~class_id:2 in
  ignore (Hy.write h w1 (base_g 0) 1);
  (match Hy.write h w2 (base_g 0) 2 with
  | Blocked [ id ] -> checki "second writer waits for the slot" id w1.Txn.id
  | _ -> Alcotest.fail "slot must be exclusive");
  (match Hy.try_commit h w1 with
  | Granted () -> Hy.commit h w1
  | _ -> Alcotest.fail "w1 has no predecessors");
  (match Hy.write h w2 (base_g 0) 2 with
  | Granted () -> ()
  | _ -> Alcotest.fail "slot freed by w1's commit");
  Hy.commit h w2

let test_adhoc_refused_while_escalated () =
  let h = Hy.create ~partition:branch2 ~init:(fun _ -> 0) () in
  Hy.request_modes h [| 0; 0; 1 |];
  checkb "ad hoc touching the escalated class is refused" true
    (try
       ignore (Hy.begin_adhoc_update h ~writes:[ 0 ] ~reads:[ 2 ]);
       false
     with Invalid_argument _ -> true);
  ignore (Hy.begin_adhoc_update h ~writes:[ 0 ] ~reads:[ 1 ])

(* Certification and monitor replay across flips, driven by the
   simulator over the TPC-C-shaped mix: plain, escalated and
   de-escalated phases all in one schedule log. *)
let test_certified_across_flips () =
  let wl = Tpcc.workload ~contention:`High () in
  let log = Sched_log.create () in
  let trace = T.create () in
  let h =
    Hy.create ~log ~trace ~partition:wl.Hdd_sim.Workload.partition
      ~init:wl.Hdd_sim.Workload.init ()
  in
  let stock = Tpcc.stock_class ~branches:Tpcc.default_branches in
  let segments = P.segment_count wl.Hdd_sim.Workload.partition in
  let esc = Array.make segments 0 in
  esc.(stock) <- 1;
  let flips = ref 0 in
  let controller =
    Controller.with_hooks
      ~on_finish:(fun _ ~commit:_ ->
        incr flips;
        if !flips = 40 then Hy.request_modes h esc
        else if !flips = 120 then
          Hy.request_modes h (Array.make segments 0))
      (Hy.controller h)
  in
  let config =
    { Runner.default_config with Runner.mpl = 8; target_commits = 200 }
  in
  let r = Runner.run ~trace config wl controller in
  checki "every commit arrived" 200 r.Runner.committed;
  checkb "both flips were applied" true (Hy.escalations h >= 2);
  checkb "the merged schedule certifies" true (Certifier.serializable log);
  let m =
    Monitor.create ~raise_on_violation:false ~wall_rule:`Any_released ()
  in
  List.iter (Monitor.feed m) (T.records trace);
  checks "monitor replay is clean" ""
    (String.concat "\n" (Monitor.violations m));
  checkb "monitor saw the flips" true (Monitor.last_esc_seq m >= 2)

(* The closed loop end to end: contention detection escalates the hot
   class without help, outcomes stay certified. *)
let test_auto_escalates_under_contention () =
  let wl = Tpcc.workload ~contention:`High () in
  let log = Sched_log.create () in
  let trace = T.create () in
  let h =
    Hy.create ~log ~trace ~partition:wl.Hdd_sim.Workload.partition
      ~init:wl.Hdd_sim.Workload.init ()
  in
  let controller, contention, policy =
    Hy.auto
      ~policy:
        { Policy.default_config with
          Policy.escalate_above = 0.15;
          min_finished = 8 }
      ~decide_every:4 h ~trace
  in
  let config =
    { Runner.default_config with Runner.mpl = 12; target_commits = 300 }
  in
  let r = Runner.run ~trace config wl controller in
  checki "every commit arrived" 300 r.Runner.committed;
  checkb "the policy escalated the stock class" true (Hy.escalations h >= 1);
  checkb "policy counted its flips" true (Policy.flips policy >= 1);
  checkb "contention window saw traffic" true
    (Contention.window_finished contention > 0);
  checkb "schedule stays certified" true (Certifier.serializable log)

(* --- golden escalation trace --- *)

let golden_records () =
  let trace = T.create () in
  let h = Hy.create ~trace ~partition:branch2 ~init:(fun _ -> 0) () in
  let t1 = Hy.begin_update h ~class_id:2 in
  ignore (Hy.read h t1 (base_g 0));
  ignore (Hy.write h t1 (base_g 0) 7);
  Hy.commit h t1;
  Hy.request_modes h [| 0; 0; 1 |];
  let w1 = Hy.begin_update h ~class_id:2 in
  ignore (Hy.read h w1 (base_g 1));
  ignore (Hy.write h w1 (base_g 0) 9);
  let r1 = Hy.begin_update h ~class_id:2 in
  ignore (Hy.read h r1 (base_g 0));
  let w2 = Hy.begin_update h ~class_id:2 in
  ignore (Hy.write h w2 (base_g 0) 11);
  ignore (Hy.try_commit h w1);
  Hy.commit h r1;
  ignore (Hy.try_commit h w1);
  Hy.commit h w1;
  ignore (Hy.write h w2 (base_g 0) 11);
  Hy.commit h w2;
  let d = Hy.begin_update h ~class_id:0 in
  ignore (Hy.read h d (base_g 0));
  ignore (Hy.write h d (Granule.make ~segment:0 ~key:0) 1);
  Hy.commit h d;
  Hy.request_modes h [| 0; 0; 0 |];
  let t2 = Hy.begin_update h ~class_id:2 in
  ignore (Hy.write h t2 (base_g 2) 3);
  Hy.commit h t2;
  T.records trace

let golden_path = Filename.concat "golden" "hybrid_escalation.trace"

let test_golden_escalation_trace () =
  let current = T.text_of_records (golden_records ()) in
  match Fixtures.golden_update_dir () with
  | Some dir ->
    let path = Filename.concat dir "hybrid_escalation.trace" in
    let oc = open_out_bin path in
    output_string oc current;
    close_out oc;
    Printf.printf "wrote %s\n" path
  | None ->
    checks "run-to-run stable" current (T.text_of_records (golden_records ()));
    checkb "contains both escalations" true
      (Fixtures.contains current "escalation");
    if not (Sys.file_exists golden_path) then
      Alcotest.failf
        "%s missing — regenerate with HDD_GOLDEN_UPDATE=test/golden"
        golden_path;
    checks "matches golden" (Fixtures.read_file golden_path) current

let test_golden_replays_clean () =
  let m =
    Monitor.create ~raise_on_violation:false ~wall_rule:`Any_released ()
  in
  List.iter (Monitor.feed m) (golden_records ());
  checks "no violations" "" (String.concat "\n" (Monitor.violations m));
  checki "two escalations seen" 2 (Monitor.last_esc_seq m)

(* --- contention window --- *)

let upd txn cls at = rec_ at (T.Begin { txn; kind = T.Update cls; init = at })

let test_contention_window () =
  let c = Contention.create ~window:4 ~classes:2 () in
  let finish txn at ~abort =
    Contention.feed c
      (rec_ at (if abort then T.Abort { txn; at } else T.Commit { txn; at }))
  in
  Contention.feed c (upd 1 0 1);
  Contention.feed c (rec_ 2 (T.Read { txn = 1; protocol = T.B; segment = 0;
                                      key = 0; threshold = 1; version = 0 }));
  Contention.feed c (rec_ 3 (T.Write { txn = 1; segment = 0; key = 0; ts = 1 }));
  finish 1 4 ~abort:false;
  checki "one finished attempt" 1 (Contention.finished c ~class_id:0);
  check (Alcotest.float 1e-9) "no aborts yet" 0.
    (Contention.abort_rate c ~class_id:0);
  check (Alcotest.float 1e-9) "write share" 0.5
    (Contention.write_share c ~class_id:0);
  Contention.feed c (upd 2 0 5);
  finish 2 6 ~abort:true;
  check (Alcotest.float 1e-9) "per-attempt abort rate" 0.5
    (Contention.abort_rate c ~class_id:0);
  (match Contention.hottest c with
  | Some (0, r) -> check (Alcotest.float 1e-9) "hottest rate" 0.5 r
  | _ -> Alcotest.fail "class 0 is hottest");
  (* roll the window: four clean class-1 finishes evict class 0 *)
  for i = 3 to 6 do
    Contention.feed c (upd i 1 (2 * i));
    finish i ((2 * i) + 1) ~abort:false
  done;
  checki "class 0 evicted from the window" 0
    (Contention.finished c ~class_id:0);
  checki "window holds its size" 4 (Contention.window_finished c)

(* --- policy hysteresis --- *)

let storm c ~classes ~cls ~n ~rate =
  (* feed n finished attempts of class cls at the given abort rate *)
  let aborted = int_of_float (float_of_int n *. rate) in
  for i = 1 to n do
    let id = 1000 + i in
    Contention.feed c (upd id cls i);
    Contention.feed c
      (rec_ (i + 1)
         (if i <= aborted then T.Abort { txn = id; at = i + 1 }
          else T.Commit { txn = id; at = i + 1 }));
  done;
  ignore classes

let test_policy_escalates_with_hold () =
  let c = Contention.create ~classes:2 () in
  let p =
    Policy.create
      ~config:
        { Policy.default_config with
          Policy.min_finished = 10;
          hold = 2;
          cooldown = 0 }
      ~eligible:[| true; true |] ()
  in
  storm c ~classes:2 ~cls:0 ~n:20 ~rate:0.5;
  checkb "first decision only starts the streak" true
    (Policy.decide p c = None);
  (match Policy.decide p c with
  | Some m ->
    checki "class 0 escalated" 1 m.(0);
    checki "class 1 untouched" 0 m.(1)
  | None -> Alcotest.fail "second agreeing decision must flip");
  checki "one flip" 1 (Policy.flips p)

let test_policy_respects_eligibility_and_cooldown () =
  let c = Contention.create ~classes:2 () in
  let p =
    Policy.create
      ~config:
        { Policy.default_config with
          Policy.min_finished = 10;
          hold = 1;
          cooldown = 100 }
      ~eligible:[| false; true |] ()
  in
  storm c ~classes:2 ~cls:0 ~n:30 ~rate:0.9;
  checkb "ineligible class never escalates" true (Policy.decide p c = None);
  let c1 = Contention.create ~classes:2 () in
  storm c1 ~classes:2 ~cls:1 ~n:30 ~rate:0.9;
  (match Policy.decide p c1 with
  | Some m -> checki "eligible class escalated" 1 m.(1)
  | None -> Alcotest.fail "hot eligible class must escalate");
  (* rate collapses but the cooldown pins the mode *)
  let c2 = Contention.create ~classes:2 () in
  storm c2 ~classes:2 ~cls:1 ~n:30 ~rate:0.0;
  checkb "cooldown blocks the immediate de-escalation" true
    (Policy.decide p c2 = None)

(* --- the prudent baseline the escalated mode borrows --- *)

let test_prudent_commit_wait () =
  let clock = Time.Clock.create () in
  let p = Prudent.create ~clock ~segments:1 ~init:(fun _ -> 0) () in
  let g = Granule.make ~segment:0 ~key:0 in
  let r = Prudent.begin_txn p ~read_only:false in
  let w = Prudent.begin_txn p ~read_only:false in
  (match Prudent.read p r g with
  | Granted 0 -> ()
  | _ -> Alcotest.fail "read takes the initial version");
  (match Prudent.write p w g 5 with
  | Granted () -> ()
  | _ -> Alcotest.fail "write takes the free slot");
  (match Prudent.try_commit p w with
  | Blocked [ id ] -> checki "writer waits for the reader" id r.Txn.id
  | _ -> Alcotest.fail "writer must commit-wait");
  (match Prudent.try_commit p r with
  | Granted () -> Prudent.commit p r
  | _ -> Alcotest.fail "reader never waits");
  (match Prudent.try_commit p w with
  | Granted () -> Prudent.commit p w
  | _ -> Alcotest.fail "writer free after the reader");
  let t = Prudent.begin_txn p ~read_only:false in
  match Prudent.read p t g with
  | Granted 5 -> ()
  | _ -> Alcotest.fail "committed value visible"

(* --- the closed-loop placement controller --- *)

let test_control_migrates_hot_class () =
  let cfg =
    { Control.default_config with
      Control.window_min = 10;
      hold = 2;
      cooldown_s = 0. }
  in
  let owner_map = E.default_owner_map ~segments:4 ~workers:2 in
  let ctl = Control.create ~config:cfg ~workers:2 ~owner_map () in
  let counts = Array.make 4 0 in
  checkb "first observation only cuts" true (Control.decide ctl counts = None);
  counts.(0) <- 20;
  checkb "first hot window starts the streak" true
    (Control.decide ctl counts = None);
  counts.(0) <- 40;
  (match Control.decide ctl counts with
  | Some target ->
    checkb "hot class moved off its owner" true
      (target.(0) <> owner_map.(0));
    checki "other classes stay" target.(1) owner_map.(1)
  | None -> Alcotest.fail "second hot window must move");
  checki "one move" 1 (Control.moves ctl)

let test_control_hysteresis () =
  let cfg =
    { Control.default_config with
      Control.window_min = 10;
      hold = 2;
      cooldown_s = 3600.;
      max_moves = 1 }
  in
  let owner_map = E.default_owner_map ~segments:4 ~workers:2 in
  let ctl = Control.create ~config:cfg ~workers:2 ~owner_map () in
  let counts = Array.make 4 0 in
  ignore (Control.decide ctl counts);
  (* balanced windows never build a streak *)
  for _ = 1 to 5 do
    Array.iteri (fun i v -> counts.(i) <- v + 5) counts;
    checkb "balanced window does not move" true
      (Control.decide ctl counts = None)
  done;
  checki "no moves" 0 (Control.moves ctl)

(* run_timed's control hook applies the controller's repairs behind
   park barriers and counts them *)
let test_control_drives_engine () =
  let partition = D.chain_partition 6 in
  let cfg =
    { Control.default_config with
      Control.window_min = 16;
      hot_share = 0.0;
      hold = 1;
      cooldown_s = 0. }
  in
  let workers = 2 in
  let owner_map =
    E.default_owner_map ~segments:(P.segment_count partition) ~workers
  in
  let ctl = Control.create ~config:cfg ~workers ~owner_map () in
  let mix =
    { E.ro_frac = 0.2; abort_frac = 0.1; cross_reads = 1; own_ops = 3;
      keys_per_segment = 16 }
  in
  let t =
    E.run_timed ~partition ~init:D.default_init ~workers ~seconds:0.2
      ~control:(Control.hook ctl) ~mix ~seed:11 ()
  in
  checkb "committed work" true (t.E.t_stats.E.committed > 0);
  checki "engine counted exactly the controller's moves"
    (Control.moves ctl) t.E.t_stats.E.repartitions

let suite =
  [ Alcotest.test_case "engine: escalation equivalence (seeded)" `Slow
      test_escalation_equivalence;
    Alcotest.test_case "engine: oracle green under flips at 2/4/8" `Slow
      test_oracle_under_flips_2_4_8;
    Alcotest.test_case "engine: flips compose with repartitions" `Quick
      test_flips_compose_with_repartitions;
    Alcotest.test_case "monitor: forged stale escalation seq" `Quick
      test_forged_seq_regression;
    Alcotest.test_case "monitor: forged flip with txn in flight" `Quick
      test_forged_flip_with_txn_in_flight;
    Alcotest.test_case "monitor: forged escalated write at init" `Quick
      test_forged_escalated_write_at_init;
    Alcotest.test_case "monitor: legal escalated run is clean" `Quick
      test_forged_legal_escalated_run_is_clean;
    Alcotest.test_case "monitor: flip of a drained class is legal" `Quick
      test_forged_flip_of_other_class_is_legal;
    Alcotest.test_case "hybrid: eligibility" `Quick test_eligibility;
    Alcotest.test_case "hybrid: flip waits for drain" `Quick
      test_flip_waits_for_drain;
    Alcotest.test_case "hybrid: escalated script" `Quick test_escalated_script;
    Alcotest.test_case "hybrid: exclusive write slots" `Quick
      test_escalated_writer_blocks_writer;
    Alcotest.test_case "hybrid: adhoc refused while escalated" `Quick
      test_adhoc_refused_while_escalated;
    Alcotest.test_case "hybrid: certified across flips" `Quick
      test_certified_across_flips;
    Alcotest.test_case "hybrid: auto loop escalates under contention" `Quick
      test_auto_escalates_under_contention;
    Alcotest.test_case "hybrid: golden escalation trace" `Quick
      test_golden_escalation_trace;
    Alcotest.test_case "hybrid: golden replays clean" `Quick
      test_golden_replays_clean;
    Alcotest.test_case "contention: sliding window" `Quick
      test_contention_window;
    Alcotest.test_case "policy: escalates with hold" `Quick
      test_policy_escalates_with_hold;
    Alcotest.test_case "policy: eligibility and cooldown" `Quick
      test_policy_respects_eligibility_and_cooldown;
    Alcotest.test_case "prudent: commit-wait discipline" `Quick
      test_prudent_commit_wait;
    Alcotest.test_case "control: migrates the hot class" `Quick
      test_control_migrates_hot_class;
    Alcotest.test_case "control: hysteresis holds still" `Quick
      test_control_hysteresis;
    Alcotest.test_case "control: drives the engine" `Quick
      test_control_drives_engine ]
