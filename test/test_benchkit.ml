(* Benchkit's serialisers: the Jsonlite emitter/parser pair (round-trip
   stability over escapes, big and negative ints, float edge cases,
   deeply nested values) and the Chrome trace-event exporter producing
   JSON the parser itself accepts. *)

module J = Hdd_benchkit.Jsonlite
module Obs_export = Hdd_benchkit.Obs_export
module Trace = Hdd_obs.Trace
module Metrics = Hdd_obs.Metrics
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* emit/parse/emit: one parse must reach the fixed point, so emitted
   JSON re-parses to the same serialization *)
let stable name v =
  let s = J.to_string v in
  let s' = J.to_string (J.of_string s) in
  checks name s s'

let test_string_escapes () =
  List.iter
    (fun s -> stable (Printf.sprintf "string %S" s) (J.Str s))
    [ "";
      "plain";
      "quote \" backslash \\ slash /";
      "newline \n tab \t return \r";
      "control \001\002\031";
      "backspace \b formfeed \012";
      "high bytes \xc3\xa9\xe2\x82\xac" ]

let test_numbers () =
  List.iter
    (fun f -> stable (Printf.sprintf "number %g" f) (J.Num f))
    [ 0.; -0.; 1.; -1.; 42.; -273.; 0.1; -0.25; 1e-7; 1.5e20;
      9007199254740992. (* 2^53 *); -9007199254740992.;
      4611686018427387903. (* max OCaml int *); 3.141592653589793 ]

let test_nonfinite_floats_are_null () =
  List.iter
    (fun f ->
      checks "non-finite emits null" "null"
        (String.trim (J.to_string (J.Num f))))
    [ Float.nan; Float.infinity; Float.neg_infinity ];
  (* and inside structures: the null survives a round-trip *)
  checkb "nested non-finite parses back as null" true
    (J.of_string (J.to_string (J.List [ J.Num Float.nan; J.Num 1. ]))
    = J.List [ J.Null; J.Num 1. ])

let test_nesting () =
  stable "empty structures" (J.List [ J.Obj []; J.List []; J.Null ]);
  stable "mixed nesting"
    (J.Obj
       [ ("a", J.List [ J.Num 1.; J.Str "x"; J.Bool true; J.Null ]);
         ("b", J.Obj [ ("c", J.List [ J.Obj [ ("d", J.Num (-2.5)) ] ]) ]);
         ("empty key", J.Str "");
         ("esc\"key", J.Num 7.) ])

(* random values, seeded: shrink-free but replayable *)
let rec gen_value g depth =
  match if depth = 0 then Prng.int g 4 else Prng.int g 6 with
  | 0 -> J.Null
  | 1 -> J.Bool (Prng.bool g)
  | 2 ->
    J.Num
      (match Prng.int g 4 with
      | 0 -> Float.of_int (Prng.int g 1000 - 500)
      | 1 -> Float.of_int (Prng.int g 1_000_000) /. 97.
      | 2 -> Float.of_int (Prng.int g 1_000_000) *. 1e12
      | _ -> -.Float.of_int (Prng.int g 1000) /. 13.)
  | 3 ->
    J.Str
      (String.init (Prng.int g 12) (fun _ -> Char.chr (Prng.int g 128)))
  | 4 -> J.List (List.init (Prng.int g 4) (fun _ -> gen_value g (depth - 1)))
  | _ ->
    J.Obj
      (List.init (Prng.int g 4) (fun i ->
           (Printf.sprintf "k%d_%c" i (Char.chr (32 + Prng.int g 95)),
            gen_value g (depth - 1))))

let prop_roundtrip_stable =
  QCheck2.Test.make ~name:"jsonlite: emit/parse/emit reaches a fixed point"
    ~count:500
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let g = Prng.create seed in
      let v = gen_value g 3 in
      let s = J.to_string v in
      J.to_string (J.of_string s) = s)

(* --- the trace exporter --- *)

let test_chrome_trace_parses () =
  let t = Trace.create () in
  Trace.emit t ~at:1 (Trace.Begin { txn = 1; kind = Trace.Update 0; init = 1 });
  Trace.emit t ~at:2
    (Trace.Read
       { txn = 1; protocol = Trace.B; segment = 0; key = 0; threshold = 1;
         version = 0 });
  Trace.emit t ~at:2 (Trace.Write { txn = 1; segment = 0; key = 0; ts = 1 });
  Trace.emit t ~at:3 (Trace.Commit { txn = 1; at = 3 });
  Trace.emit t ~at:3 (Trace.Begin { txn = 2; kind = Trace.Read_only; init = 4 });
  Trace.emit t ~at:4
    (Trace.Wall_release { m = 3; released_at = 4; components = [| 3 |] });
  Trace.emit t ~at:4 (Trace.Gc { watermark = 3; vector = [| 3 |]; dropped = 2 });
  let json = Obs_export.chrome_trace t in
  let reparsed = J.of_string (J.to_string json) in
  (match Option.map (fun e -> e <> J.List []) (J.member "traceEvents" reparsed) with
  | Some true -> ()
  | _ -> Alcotest.fail "traceEvents empty or missing");
  (* one complete slice for the finished transaction, one zero-duration
     slice for the still-active reader *)
  match J.member "traceEvents" reparsed with
  | Some (J.List events) ->
    let phases =
      List.filter_map
        (fun e ->
          match (J.member "ph" e, J.member "dur" e) with
          | Some (J.Str "X"), Some (J.Num d) -> Some d
          | _ -> None)
        events
    in
    checkb "two transaction slices" true (List.length phases = 2);
    checkb "one has positive duration, one is zero" true
      (List.sort compare phases = [ 0.; 2. ])
  | _ -> Alcotest.fail "traceEvents not a list"

let test_metrics_json_parses () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "c") 3;
  Metrics.set (Metrics.gauge m "g") 1.5;
  Metrics.observe (Metrics.histogram ~buckets:[| 1.; 2. |] m "h") 1.5;
  let json = Obs_export.metrics_json m in
  let reparsed = J.of_string (J.to_string json) in
  checkb "counter" true (J.member "c" reparsed = Some (J.Num 3.));
  checkb "gauge" true (J.member "g" reparsed = Some (J.Num 1.5));
  match Option.bind (J.member "h" reparsed) (J.member "count") with
  | Some (J.Num 1.) -> ()
  | _ -> Alcotest.fail "histogram count missing"

let suite =
  [ Alcotest.test_case "jsonlite: string escapes round-trip" `Quick
      test_string_escapes;
    Alcotest.test_case "jsonlite: int and float edge cases" `Quick
      test_numbers;
    Alcotest.test_case "jsonlite: non-finite floats emit null" `Quick
      test_nonfinite_floats_are_null;
    Alcotest.test_case "jsonlite: nested structures" `Quick test_nesting;
    QCheck_alcotest.to_alcotest prop_roundtrip_stable;
    Alcotest.test_case "obs_export: chrome trace parses back" `Quick
      test_chrome_trace_parses;
    Alcotest.test_case "obs_export: metrics snapshot parses back" `Quick
      test_metrics_json_parses ]
