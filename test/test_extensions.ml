(* Tests for the §7 future-work features built out in this repository:
   legalizing acyclic decompositions (§7.2.1), decomposition from access
   traces (§7.2.2), ad-hoc update transactions (§7.1.1), and wall-driven
   garbage collection (§7.3). *)

module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module Legalize = Hdd_core.Legalize
module Decompose = Hdd_core.Decompose
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Certifier = Hdd_core.Certifier
module Store = Hdd_mvstore.Store
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- legalize --- *)

let test_legal_spec_untouched () =
  let r = Legalize.legalize Fixtures.inventory_spec in
  checki "no merges" 0 (List.length r.Legalize.merges);
  checki "same segment count" 3 (Spec.segment_count r.Legalize.spec);
  checkb "identity map" true
    (Array.to_list r.Legalize.segment_map = [ 0; 1; 2 ])

let diamond_spec =
  Spec.make ~segments:[ "bottom"; "l"; "r"; "top" ]
    ~types:
      [ Spec.txn_type ~name:"l" ~writes:[ 1 ] ~reads:[ 3 ];
        Spec.txn_type ~name:"r" ~writes:[ 2 ] ~reads:[ 3 ];
        Spec.txn_type ~name:"b" ~writes:[ 0 ] ~reads:[ 1; 2 ] ]

let test_legalize_diamond () =
  checkb "diamond illegal before" false (Legalize.is_legal diamond_spec);
  let r = Legalize.legalize diamond_spec in
  checkb "legal after" true (Legalize.is_legal r.Legalize.spec);
  checkb "merged something" true (List.length r.Legalize.merges >= 1);
  checkb "granularity preserved where possible" true
    (Spec.segment_count r.Legalize.spec >= 2);
  (* the map is consistent with the merged spec *)
  Array.iter
    (fun m ->
      checkb "mapped id in range" true
        (m >= 0 && m < Spec.segment_count r.Legalize.spec))
    r.Legalize.segment_map

let test_legalize_cycle () =
  let spec =
    Spec.make ~segments:[ "a"; "b"; "c" ]
      ~types:
        [ Spec.txn_type ~name:"x" ~writes:[ 0 ] ~reads:[ 1 ];
          Spec.txn_type ~name:"y" ~writes:[ 1 ] ~reads:[ 2 ];
          Spec.txn_type ~name:"z" ~writes:[ 2 ] ~reads:[ 0 ] ]
  in
  let r = Legalize.legalize spec in
  checkb "cycle collapsed to a legal spec" true (Legalize.is_legal r.Legalize.spec);
  checki "one segment remains" 1 (Spec.segment_count r.Legalize.spec)

let test_legalize_multi_write () =
  let spec =
    Spec.make ~segments:[ "a"; "b"; "c" ]
      ~types:
        [ Spec.txn_type ~name:"wide" ~writes:[ 0; 2 ] ~reads:[ 1 ];
          Spec.txn_type ~name:"feed" ~writes:[ 1 ] ~reads:[] ]
  in
  let r = Legalize.legalize spec in
  checkb "legal" true (Legalize.is_legal r.Legalize.spec);
  checkb "a and c merged" true
    (r.Legalize.segment_map.(0) = r.Legalize.segment_map.(2));
  checkb "b kept apart" true
    (r.Legalize.segment_map.(1) <> r.Legalize.segment_map.(0))

let prop_legalize_random =
  (* random read patterns over a fixed class-per-segment skeleton must
     always legalize, and the result must validate *)
  QCheck2.Test.make ~name:"legalize: random acyclic specs become legal"
    ~count:100
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let n = 3 + Prng.int rng 4 in
      let types =
        List.init n (fun i ->
            (* class i reads a random subset of strictly-higher segments:
               acyclic by construction, semi-tree not guaranteed *)
            let reads =
              List.filter (fun _ -> Prng.bool rng)
                (List.init (n - i - 1) (fun k -> i + k + 1))
            in
            Spec.txn_type
              ~name:(Printf.sprintf "t%d" i)
              ~writes:[ i ] ~reads)
      in
      let spec =
        Spec.make ~segments:(List.init n (fun i -> Printf.sprintf "s%d" i))
          ~types
      in
      let r = Legalize.legalize spec in
      Legalize.is_legal r.Legalize.spec
      && Array.length r.Legalize.segment_map = n)

(* --- decompose --- *)

let test_decompose_inventory_like () =
  let trace =
    [ { Decompose.tag = "log-sale"; writes = [ "sales" ]; reads = [] };
      { Decompose.tag = "log-arrival"; writes = [ "arrivals" ]; reads = [] };
      { Decompose.tag = "recompute";
        writes = [ "level" ];
        reads = [ "sales"; "arrivals"; "level" ] };
      { Decompose.tag = "reorder";
        writes = [ "orders" ];
        reads = [ "arrivals"; "level"; "orders" ] } ]
  in
  let d = Decompose.decompose trace in
  checkb "legal" true (Legalize.is_legal d.Decompose.legal.Legalize.spec);
  (* sales and arrivals are never co-written, but the reorder type reads
     arrivals+level while recompute reads sales+arrivals: the hierarchy
     glues what it must and no more *)
  let seg = Decompose.segment_of d in
  checkb "orders apart from level" true (seg "orders" <> seg "level");
  checkb "level apart from the event items" true
    (seg "level" <> seg "sales" || seg "level" <> seg "arrivals")

let test_decompose_co_written_items () =
  let trace =
    [ { Decompose.tag = "pair-writer"; writes = [ "x"; "y" ]; reads = [] };
      { Decompose.tag = "reader"; writes = [ "z" ]; reads = [ "x" ] } ]
  in
  let d = Decompose.decompose trace in
  checki "x and y share a segment" (Decompose.segment_of d "x")
    (Decompose.segment_of d "y");
  checkb "z separate" true
    (Decompose.segment_of d "z" <> Decompose.segment_of d "x")

let test_decompose_validation () =
  checkb "empty trace rejected" true
    (try
       ignore (Decompose.decompose []);
       false
     with Invalid_argument _ -> true);
  checkb "writeless type rejected" true
    (try
       ignore
         (Decompose.decompose
            [ { Decompose.tag = "ro"; writes = []; reads = [ "a" ] } ]);
       false
     with Invalid_argument _ -> true);
  checkb "duplicate tags rejected" true
    (try
       ignore
         (Decompose.decompose
            [ { Decompose.tag = "t"; writes = [ "a" ]; reads = [] };
              { Decompose.tag = "t"; writes = [ "b" ]; reads = [] } ]);
       false
     with Invalid_argument _ -> true)

let prop_decompose_random =
  QCheck2.Test.make ~name:"decompose: random traces yield legal partitions"
    ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let items = Array.init 8 (fun i -> Printf.sprintf "i%d" i) in
      let pick () = items.(Prng.int rng 8) in
      let trace =
        List.init (2 + Prng.int rng 4) (fun k ->
            { Decompose.tag = Printf.sprintf "t%d" k;
              writes = [ pick () ];
              reads = List.init (Prng.int rng 3) (fun _ -> pick ()) })
      in
      let d = Decompose.decompose trace in
      Legalize.is_legal d.Decompose.legal.Legalize.spec
      && List.for_all
           (fun (_, s) ->
             s >= 0
             && s < Spec.segment_count d.Decompose.legal.Legalize.spec)
           d.Decompose.items)

(* --- ad-hoc update transactions --- *)

let gr s k = Granule.make ~segment:s ~key:k

let mk_sched ?log ?gc_on_wall () =
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  ( Scheduler.create ?log ?gc_on_wall ~partition:Fixtures.inventory ~clock
      ~store (),
    store )

let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> Alcotest.fail "unexpected block"
  | Outcome.Rejected why -> Alcotest.fail ("unexpected rejection: " ^ why)

let test_adhoc_basic () =
  let log = Sched_log.create () in
  let s, _ = mk_sched ~log () in
  (* an ad-hoc transaction that writes both the events and the orders
     segments — impossible for any declared class *)
  let a = Scheduler.begin_adhoc_update s ~writes:[ 0; 2 ] ~reads:[ 1 ] in
  ok (Scheduler.write s a (gr 2 0) 5);
  checki "reads the inventory" 0 (ok (Scheduler.read s a (gr 1 0)));
  ok (Scheduler.write s a (gr 0 0) 1);
  Scheduler.commit s a;
  let t = Scheduler.begin_update s ~class_id:1 in
  checki "committed adhoc write visible" 5 (ok (Scheduler.read s t (gr 2 0)));
  Scheduler.commit s t;
  checkb "serializable" true (Certifier.serializable log)

let test_adhoc_validation () =
  let s, _ = mk_sched () in
  checkb "empty writes rejected" true
    (try
       ignore (Scheduler.begin_adhoc_update s ~writes:[] ~reads:[ 1 ]);
       false
     with Invalid_argument _ -> true);
  checkb "segment range" true
    (try
       ignore (Scheduler.begin_adhoc_update s ~writes:[ 9 ] ~reads:[]);
       false
     with Invalid_argument _ -> true);
  let a = Scheduler.begin_adhoc_update s ~writes:[ 0 ] ~reads:[ 1 ] in
  (match Scheduler.read s a (gr 2 0) with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "undeclared read must be rejected");
  (match Scheduler.write s a (gr 1 0) 1 with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "undeclared write must be rejected");
  Scheduler.abort s a

let test_adhoc_barrier_rejects_window_timestamps () =
  (* an update transaction whose timestamp falls inside the ad-hoc
     window must not execute: it restarts with a later timestamp *)
  let s, _ = mk_sched () in
  let a = Scheduler.begin_adhoc_update s ~writes:[ 2 ] ~reads:[] in
  ok (Scheduler.write s a (gr 2 0) 42);
  let t = Scheduler.begin_update s ~class_id:0 in
  (match Scheduler.read s t (gr 2 0) with
  | Outcome.Rejected _ -> ()
  | _ -> Alcotest.fail "in-window timestamp must be rejected");
  Scheduler.abort s t;
  Scheduler.commit s a;
  (* a transaction begun before the window is untouched by the barrier *)
  let t2 = Scheduler.begin_update s ~class_id:0 in
  checki "post-window reader sees the ad-hoc write" 42
    (ok (Scheduler.read s t2 (gr 2 0)));
  Scheduler.commit s t2

let test_adhoc_older_transactions_unaffected () =
  let s, _ = mk_sched () in
  (* begun BEFORE the ad-hoc: its timestamp is outside the window *)
  let t = Scheduler.begin_update s ~class_id:0 in
  let a = Scheduler.begin_adhoc_update s ~writes:[ 2 ] ~reads:[] in
  ok (Scheduler.write s a (gr 2 0) 42);
  checki "older reader proceeds and misses the ad-hoc write" 0
    (ok (Scheduler.read s t (gr 2 0)));
  Scheduler.commit s a;
  checki "still its own snapshot" 0 (ok (Scheduler.read s t (gr 2 0)));
  Scheduler.commit s t

let test_adhoc_read_only_unaffected () =
  let s, _ = mk_sched () in
  let a = Scheduler.begin_adhoc_update s ~writes:[ 2 ] ~reads:[] in
  ok (Scheduler.write s a (gr 2 0) 42);
  (* a read-only transaction inside the window still runs: its wall
     thresholds exclude the ad-hoc consistently in every segment *)
  let ro = Scheduler.begin_read_only s in
  checki "wall snapshot excludes the pending ad-hoc" 0
    (ok (Scheduler.read s ro (gr 2 0)));
  Scheduler.commit s ro;
  Scheduler.commit s a

let test_adhoc_registers_reads () =
  let s, _ = mk_sched () in
  let a = Scheduler.begin_adhoc_update s ~writes:[ 0 ] ~reads:[ 2 ] in
  ignore (ok (Scheduler.read s a (gr 2 0)));
  Scheduler.commit s a;
  checki "adhoc reads register" 1
    (Scheduler.metrics s).Scheduler.read_registrations

let prop_adhoc_mixed_serializable =
  QCheck2.Test.make
    ~name:"adhoc: random mixes of classed and ad-hoc transactions certify"
    ~count:40
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let log = Sched_log.create () in
      let clock = Time.Clock.create () in
      let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
      let s =
        Scheduler.create ~log ~partition:Fixtures.inventory ~clock ~store ()
      in
      let active = ref [] in
      let steps = 120 in
      for _ = 1 to steps do
        match Prng.int rng 5 with
        | 0 ->
          (* begin a transaction: mostly classed, sometimes ad-hoc *)
          let txn =
            if Prng.int rng 4 = 0 then
              Scheduler.begin_adhoc_update s
                ~writes:[ Prng.int rng 3 ]
                ~reads:[ Prng.int rng 3 ]
            else Scheduler.begin_update s ~class_id:(Prng.int rng 3)
          in
          active := txn :: !active
        | 1 | 2 when !active <> [] ->
          (* an operation by a random active transaction; outcome ignored:
             blocked operations simply do nothing, rejected ones abort *)
          let txn = Prng.pick rng (Array.of_list !active) in
          let g = gr (Prng.int rng 3) (Prng.int rng 4) in
          (match
             if Prng.bool rng then
               match Scheduler.read s txn g with
               | Outcome.Granted _ -> `Ok
               | Outcome.Blocked _ -> `Ok
               | Outcome.Rejected _ -> `Dead
             else
               match Scheduler.write s txn g (Prng.int rng 100) with
               | Outcome.Granted _ -> `Ok
               | Outcome.Blocked _ -> `Ok
               | Outcome.Rejected _ -> `Dead
           with
          | `Ok -> ()
          | `Dead ->
            Scheduler.abort s txn;
            active := List.filter (fun t -> t != txn) !active)
        | 3 when !active <> [] ->
          let txn = Prng.pick rng (Array.of_list !active) in
          Scheduler.commit s txn;
          active := List.filter (fun t -> t != txn) !active
        | _ -> ()
      done;
      List.iter (fun txn -> Scheduler.commit s txn) !active;
      Certifier.serializable log)

(* --- garbage collection --- *)

let test_gc_drops_and_preserves () =
  let log = Sched_log.create () in
  (* wall-driven GC off: this test wants versions to pile up so the
     manual collection visibly drops them *)
  let s, store = mk_sched ~log ~gc_on_wall:false () in
  (* write the same event granule many times *)
  for i = 1 to 20 do
    let t = Scheduler.begin_update s ~class_id:2 in
    ignore (Scheduler.write s t (gr 2 0) i);
    Scheduler.commit s t
  done;
  let before = Store.version_count store in
  checkb "versions accumulated" true (before >= 20);
  let dropped = Scheduler.collect_garbage s in
  checkb "something collected" true (dropped > 10);
  (* correctness after collection *)
  let t = Scheduler.begin_update s ~class_id:0 in
  checki "latest value still served" 20 (ok (Scheduler.read s t (gr 2 0)));
  Scheduler.commit s t;
  checkb "still serializable" true (Certifier.serializable log)

let test_gc_respects_active_readers () =
  let s, store = mk_sched () in
  (* a long-running class-0 transaction pins its activity-link snapshot *)
  let pinned = Scheduler.begin_update s ~class_id:0 in
  let seen_before = ok (Scheduler.read s pinned (gr 2 0)) in
  for i = 1 to 10 do
    let t = Scheduler.begin_update s ~class_id:2 in
    ignore (Scheduler.write s t (gr 2 0) i);
    Scheduler.commit s t
  done;
  ignore (Scheduler.collect_garbage s);
  (* the pinned transaction must still read its snapshot *)
  checki "snapshot survives collection" seen_before
    (ok (Scheduler.read s pinned (gr 2 0)));
  Scheduler.commit s pinned;
  ignore store

let test_auto_gc_bounds_versions () =
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s =
    Scheduler.create ~gc_every_commits:8 ~partition:Fixtures.inventory ~clock
      ~store ()
  in
  for i = 1 to 200 do
    let t = Scheduler.begin_update s ~class_id:2 in
    ignore (Scheduler.write s t (gr 2 (i mod 4)) i);
    Scheduler.commit s t
  done;
  (* 200 writes over 4 granules: without collection that is ~204 versions *)
  checkb "auto-GC keeps the version count bounded" true
    (Store.version_count store < 40);
  let t = Scheduler.begin_update s ~class_id:0 in
  checkb "latest values still served" true
    (ok (Scheduler.read s t (gr 2 0)) > 0);
  Scheduler.commit s t

let test_gc_watermark_monotone_enough () =
  let s, _ = mk_sched () in
  let w0 = Scheduler.gc_watermark s in
  let t = Scheduler.begin_update s ~class_id:2 in
  ignore (Scheduler.write s t (gr 2 0) 1);
  Scheduler.commit s t;
  let w1 = Scheduler.gc_watermark s in
  checkb "watermark does not regress on idle commit" true (w1 >= w0)

let suite =
  [ Alcotest.test_case "legalize: legal spec untouched" `Quick test_legal_spec_untouched;
    Alcotest.test_case "legalize: diamond" `Quick test_legalize_diamond;
    Alcotest.test_case "legalize: cycle collapses" `Quick test_legalize_cycle;
    Alcotest.test_case "legalize: multi-write types" `Quick test_legalize_multi_write;
    QCheck_alcotest.to_alcotest prop_legalize_random;
    Alcotest.test_case "decompose: inventory-like trace" `Quick test_decompose_inventory_like;
    Alcotest.test_case "decompose: co-written items cluster" `Quick test_decompose_co_written_items;
    Alcotest.test_case "decompose: validation" `Quick test_decompose_validation;
    QCheck_alcotest.to_alcotest prop_decompose_random;
    Alcotest.test_case "adhoc: basic multi-segment update" `Quick test_adhoc_basic;
    Alcotest.test_case "adhoc: validation" `Quick test_adhoc_validation;
    Alcotest.test_case "adhoc: barrier rejects window timestamps" `Quick test_adhoc_barrier_rejects_window_timestamps;
    Alcotest.test_case "adhoc: older transactions unaffected" `Quick test_adhoc_older_transactions_unaffected;
    Alcotest.test_case "adhoc: read-only unaffected" `Quick test_adhoc_read_only_unaffected;
    Alcotest.test_case "adhoc: reads register" `Quick test_adhoc_registers_reads;
    QCheck_alcotest.to_alcotest prop_adhoc_mixed_serializable;
    Alcotest.test_case "gc: drops and preserves" `Quick test_gc_drops_and_preserves;
    Alcotest.test_case "gc: respects active readers" `Quick test_gc_respects_active_readers;
    Alcotest.test_case "gc: auto-collection bounds versions" `Quick test_auto_gc_bounds_versions;
    Alcotest.test_case "gc: watermark sanity" `Quick test_gc_watermark_monotone_enough ]
