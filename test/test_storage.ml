(* Tests for the durability substrate: codec roundtrips, WAL recovery
   with torn and corrupt tails, and end-to-end crash/recover/resume of a
   durable HDD database. *)

module Codec = Hdd_storage.Codec
module Wal = Hdd_storage.Wal
module Durable = Hdd_storage.Durable
module Fault = Hdd_storage.Fault
module Torture = Hdd_storage.Torture
module Checkpoint = Hdd_storage.Checkpoint
module Group_commit = Hdd_storage.Group_commit
module Replica = Hdd_storage.Replica
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Store = Hdd_mvstore.Store
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

(* Remove the log AND any checkpoint/manifest siblings a previous run
   left beside it: a stale manifest would hand recovery a checkpoint cut
   from some other history. *)
let fresh name =
  let path = tmp name in
  let dir = Filename.dirname path in
  Array.iter
    (fun f ->
      if
        String.length f >= String.length name
        && String.sub f 0 (String.length name) = name
      then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  path

let gr s k = Granule.make ~segment:s ~key:k

let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> Alcotest.fail "unexpected block"
  | Outcome.Rejected why -> Alcotest.fail ("unexpected rejection: " ^ why)

(* --- codec --- *)

let sample_records =
  [ Codec.Begin { txn = 7; class_id = 2; init = 13 };
    Codec.Write { txn = 7; granule = gr 2 5; ts = 13; value = 42 };
    Codec.Write { txn = 7; granule = gr 0 0; ts = 13; value = -1 };
    Codec.Commit { txn = 7; at = 15 };
    Codec.Abort { txn = 9; at = 20 } ]

let test_codec_roundtrip () =
  List.iter
    (fun r ->
      let frame = Codec.encode r in
      match Codec.decode frame ~pos:0 with
      | Ok (r', next) ->
        checkb "roundtrip" true (Codec.equal_record r r');
        checki "consumed whole frame" (Bytes.length frame) next
      | Error _ -> Alcotest.fail "decode failed")
    sample_records

let test_codec_truncation () =
  let frame = Codec.encode (List.hd sample_records) in
  for cut = 0 to Bytes.length frame - 1 do
    match Codec.decode (Bytes.sub frame 0 cut) ~pos:0 with
    | Error `Truncated -> ()
    | Error `Corrupt -> Alcotest.fail "truncation misread as corruption"
    | Ok _ -> Alcotest.fail "decoded a truncated frame"
  done

let test_codec_corruption () =
  let frame = Codec.encode (List.nth sample_records 1) in
  (* flip one payload byte *)
  let bad = Bytes.copy frame in
  Bytes.set_uint8 bad 12 (Bytes.get_uint8 bad 12 lxor 0xff);
  match Codec.decode bad ~pos:0 with
  | Error `Corrupt -> ()
  | _ -> Alcotest.fail "corruption undetected"

let prop_codec_random =
  QCheck2.Test.make ~name:"codec: random records roundtrip" ~count:300
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let r =
        match Prng.int rng 4 with
        | 0 ->
          Codec.Begin
            { txn = Prng.int rng 10000; class_id = Prng.int rng 8;
              init = Prng.int rng 100000 }
        | 1 ->
          Codec.Write
            { txn = Prng.int rng 10000;
              granule = gr (Prng.int rng 8) (Prng.int rng 1000);
              ts = Prng.int rng 100000;
              value = Prng.int rng 1000000 - 500000 }
        | 2 -> Codec.Commit { txn = Prng.int rng 10000; at = Prng.int rng 100000 }
        | _ -> Codec.Abort { txn = Prng.int rng 10000; at = Prng.int rng 100000 }
      in
      match Codec.decode (Codec.encode r) ~pos:0 with
      | Ok (r', _) -> Codec.equal_record r r'
      | Error _ -> false)

(* --- WAL --- *)

let test_wal_roundtrip () =
  let path = fresh "hdd_wal_roundtrip.log" in
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) sample_records;
  checki "appended" 5 (Wal.appended wal);
  Wal.sync wal;
  Wal.close wal;
  let { Wal.records; complete; _ } = Wal.read_all ~path in
  checkb "complete" true complete;
  checki "all back" 5 (List.length records);
  List.iter2
    (fun a b -> checkb "in order" true (Codec.equal_record a b))
    sample_records records

let test_wal_torn_tail () =
  let path = fresh "hdd_wal_torn.log" in
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) sample_records;
  Wal.close wal;
  (* tear the last 3 bytes off, as a crash mid-append would *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 3)));
  let { Wal.records; complete; _ } = Wal.read_all ~path in
  checkb "tail dropped" false complete;
  checki "intact prefix survives" 4 (List.length records)

let test_wal_append_across_sessions () =
  let path = fresh "hdd_wal_sessions.log" in
  let w1 = Wal.create ~path () in
  Wal.append w1 (List.hd sample_records);
  Wal.close w1;
  let w2 = Wal.create ~path () in
  Wal.append w2 (List.nth sample_records 3);
  Wal.close w2;
  let { Wal.records; complete; _ } = Wal.read_all ~path in
  checkb "complete" true complete;
  checki "both sessions present" 2 (List.length records)

(* --- WAL damage properties ---

   A cut at any byte offset and a flip of any single bit must both be
   detected, recover to an intact prefix of what was written, and leave
   a log that [Durable.of_recovery] can truncate and resume cleanly. *)

(* A structurally valid random log — per transaction a Begin, a few
   Writes, then Commit or Abort, timestamps monotone: the shape
   [Durable.recover] replays. *)
let random_log rng =
  let time = ref 0 in
  let tick () =
    incr time;
    !time
  in
  let recs = ref [] in
  let ntxn = 1 + Prng.int rng 4 in
  for id = 1 to ntxn do
    let cls = Prng.int rng 3 in
    let init = tick () in
    recs := Codec.Begin { txn = id; class_id = cls; init } :: !recs;
    for _ = 1 to 1 + Prng.int rng 3 do
      recs :=
        Codec.Write
          { txn = id; granule = gr cls (Prng.int rng 3); ts = init;
            value = Prng.int rng 1000 }
        :: !recs
    done;
    if Prng.int rng 4 > 0 then
      recs := Codec.Commit { txn = id; at = tick () } :: !recs
    else recs := Codec.Abort { txn = id; at = tick () } :: !recs
  done;
  List.rev !recs

let write_log path records =
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) records;
  Wal.sync wal;
  Wal.close wal

let file_bytes path = In_channel.with_open_bin path In_channel.input_all

let rewrite path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let is_prefix_of written got =
  let rec go = function
    | _, [] -> true
    | w :: ws, g :: gs -> Codec.equal_record w g && go (ws, gs)
    | [], _ :: _ -> false
  in
  go (written, got)

(* The full damaged-log contract: read_all yields a prefix of what was
   written, recover agrees byte-for-byte with read_all, of_recovery
   resumes (truncating the dead tail), and the resumed log is intact. *)
let recovers_cleanly path written =
  let { Wal.records; complete; bytes_read } = Wal.read_all ~path in
  let prefix_ok = is_prefix_of written records in
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  let agree =
    r.Durable.valid_bytes = bytes_read && r.Durable.log_intact = complete
  in
  let db = Durable.of_recovery ~path ~partition:Fixtures.inventory r in
  let t = Durable.begin_update db ~class_id:0 in
  let resumed =
    match Durable.write db t (gr 0 0) 1 with
    | Outcome.Granted () -> true
    | _ -> false
  in
  Durable.commit db t;
  Durable.close db;
  let r2 = Wal.read_all ~path in
  prefix_ok && agree && resumed && r2.Wal.complete
  && List.length r2.Wal.records = List.length records + 3

let prop_wal_truncation_boundary =
  QCheck2.Test.make
    ~name:"wal: a cut at any byte offset recovers an intact prefix" ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_wal_cut_%d.log" seed) in
      let written = random_log rng in
      write_log path written;
      let full = file_bytes path in
      let cut = Prng.int rng (String.length full + 1) in
      rewrite path (String.sub full 0 cut);
      let { Wal.bytes_read; _ } = Wal.read_all ~path in
      bytes_read <= cut && recovers_cleanly path written)

let prop_wal_bitflip =
  QCheck2.Test.make
    ~name:"wal: any single flipped bit is detected and the prefix recovers"
    ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_wal_flip_%d.log" seed) in
      let written = random_log rng in
      write_log path written;
      let full = Bytes.of_string (file_bytes path) in
      let pos = Prng.int rng (Bytes.length full) in
      let bit = Prng.int rng 8 in
      Bytes.set_uint8 full pos (Bytes.get_uint8 full pos lxor (1 lsl bit));
      rewrite path (Bytes.to_string full);
      let { Wal.records; complete; _ } = Wal.read_all ~path in
      (* CRC-32 catches every single-bit error, so the damage can never
         pass for a complete log; frames wholly before it must survive *)
      let frames_before =
        let n = ref 0 and off = ref 0 in
        List.iter
          (fun r ->
            off := !off + Bytes.length (Codec.encode r);
            if !off <= pos then incr n)
          written;
        !n
      in
      (not complete)
      && List.length records >= frames_before
      && recovers_cleanly path written)

(* --- durable database end to end --- *)

let partition = Fixtures.inventory

let test_durable_crash_recovery () =
  let path = fresh "hdd_durable_crash.log" in
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  (* committed work *)
  let t1 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t1 (gr 2 0) 11);
  ok (Durable.write db t1 (gr 2 1) 22);
  Durable.commit db t1;
  let t2 = Durable.begin_update db ~class_id:1 in
  let base = ok (Durable.read db t2 (gr 2 0)) in
  ok (Durable.write db t2 (gr 1 0) (base * 2));
  Durable.commit db t2;
  (* an aborted transaction *)
  let t3 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t3 (gr 2 0) 999);
  Durable.abort db t3;
  (* an in-flight transaction lost to the crash *)
  let t4 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t4 (gr 2 1) 777);
  Durable.close db (* crash: t4 never committed *);
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "log intact" true r.Durable.log_intact;
  checki "two commits recovered" 2 r.Durable.committed;
  checki "one abort recovered" 1 r.Durable.aborted;
  checki "t4 lost" 1 r.Durable.lost_uncommitted;
  (* recovered state: committed values visible, aborted/lost invisible *)
  let read_latest g =
    match
      Store.committed_before r.Durable.store g ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing recovered version"
  in
  checki "t1's first write" 11 (read_latest (gr 2 0));
  checki "t1's second write" 22 (read_latest (gr 2 1));
  checki "t2's derived value" 22 (read_latest (gr 1 0));
  (* resume and keep working *)
  let db2 = Durable.of_recovery ~path ~partition r in
  let t5 = Durable.begin_update db2 ~class_id:0 in
  checki "resumed reads see recovered data" 22
    (ok (Durable.read db2 t5 (gr 2 1)));
  ok (Durable.write db2 t5 (gr 0 0) 5);
  Durable.commit db2 t5;
  Durable.close db2;
  let r2 = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checki "post-resume commit recovered too" 3 r2.Durable.committed

let test_durable_torn_commit_loses_transaction () =
  let path = fresh "hdd_durable_torn.log" in
  let db = Durable.create ~path ~partition () in
  let t1 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t1 (gr 2 0) 1);
  Durable.commit db t1;
  let t2 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t2 (gr 2 0) 2);
  Durable.commit db t2;
  Durable.close db;
  (* tear into t2's commit record *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 5)));
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "tear detected" false r.Durable.log_intact;
  checki "only t1 committed" 1 r.Durable.committed;
  (match
     Store.committed_before r.Durable.store (gr 2 0)
       ~ts:(r.Durable.last_time + 1)
   with
  | Some v -> checki "t1's value stands" 1 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "t1 lost")

let test_durable_rewrite_same_granule () =
  let path = fresh "hdd_durable_rewrite.log" in
  let db = Durable.create ~path ~partition () in
  let t = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t (gr 2 0) 1);
  ok (Durable.write db t (gr 2 0) 2);
  Durable.commit db t;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  match
    Store.committed_before r.Durable.store (gr 2 0)
      ~ts:(r.Durable.last_time + 1)
  with
  | Some v -> checki "last write wins after recovery" 2 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "version lost"

let prop_durable_random_recovery =
  QCheck2.Test.make
    ~name:"durable: recovery agrees with the in-memory committed state"
    ~count:25
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_durable_rand_%d.log" seed) in
      let db = Durable.create ~path ~partition () in
      let expected : (Granule.t, int) Hashtbl.t = Hashtbl.create 16 in
      for _ = 1 to 40 do
        let cls = Prng.int rng 3 in
        let t = Durable.begin_update db ~class_id:cls in
        let writes =
          List.init
            (1 + Prng.int rng 2)
            (fun _ -> (gr cls (Prng.int rng 3), Prng.int rng 1000))
        in
        let granted =
          List.filter_map
            (fun (g, v) ->
              match Durable.write db t g v with
              | Outcome.Granted () -> Some (g, v)
              | _ -> None)
            writes
        in
        if Prng.int rng 10 < 8 && granted <> [] then begin
          Durable.commit db t;
          List.iter (fun (g, v) -> Hashtbl.replace expected g v) granted
        end
        else Durable.abort db t
      done;
      Durable.close db;
      let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
      Hashtbl.fold
        (fun g v acc ->
          acc
          &&
          match
            Store.committed_before r.Durable.store g
              ~ts:(r.Durable.last_time + 1)
          with
          | Some version -> version.Hdd_mvstore.Chain.value = v
          | None -> false)
        expected true)

let test_checkpoint_compacts_and_preserves () =
  let path = fresh "hdd_durable_ckpt.log" in
  let db = Durable.create ~path ~partition () in
  (* many overwrites of few granules: the log grows, the state does not *)
  for i = 1 to 50 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 (i mod 3)) i);
    Durable.commit db t
  done;
  checki "nothing in flight" 0 (Durable.in_flight db);
  let m = Durable.checkpoint db in
  let log_size = (Unix.stat path).Unix.st_size in
  checki "cut covers the whole log so far" log_size m.Checkpoint.log_offset;
  checkb "snapshot file exists" true
    (Sys.file_exists (Checkpoint.data_path ~log:path ~seq:m.Checkpoint.seq));
  (* the snapshot is the wall-cut: few granules, not fifty versions *)
  checkb "snapshot far smaller than the log" true
    (m.Checkpoint.bytes * 4 < log_size);
  (* the database keeps working and appending after the cut *)
  let t = Durable.begin_update db ~class_id:1 in
  let latest = ok (Durable.read db t (gr 2 2)) in
  ok (Durable.write db t (gr 1 0) latest);
  Durable.commit db t;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "intact" true r.Durable.log_intact;
  (match r.Durable.from_checkpoint with
  | Some m' -> checki "recovered through the cut" m.Checkpoint.seq m'.Checkpoint.seq
  | None -> Alcotest.fail "recovery ignored the checkpoint");
  let read_latest g =
    match
      Store.committed_before r.Durable.store g ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing version"
  in
  checki "latest of granule 0" 48 (read_latest (gr 2 0));
  checki "latest of granule 1" 49 (read_latest (gr 2 1));
  checki "latest of granule 2" 50 (read_latest (gr 2 2));
  checki "post-checkpoint commit present" 50 (read_latest (gr 1 0));
  (* and it lands on the same state as the full-log replay *)
  let oracle =
    Durable.recover ~use_checkpoints:false ~path ~segments:3
      ~init:(fun _ -> 0) ()
  in
  checkb "equivalent to full replay at the wall" true
    (Store.dump r.Durable.store
    = Store.trim_dump ~wall:m.Checkpoint.wall (Store.dump oracle.Durable.store))

let test_checkpoint_with_in_flight () =
  let path = fresh "hdd_durable_ckpt_busy.log" in
  let db = Durable.create ~path ~partition () in
  let t = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t (gr 2 0) 77);
  checki "one in flight" 1 (Durable.in_flight db);
  (* no drain required: the granted write rides in the pending table *)
  let m = Durable.checkpoint db in
  Durable.commit db t;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  (match r.Durable.from_checkpoint with
  | Some m' -> checki "used the busy cut" m.Checkpoint.seq m'.Checkpoint.seq
  | None -> Alcotest.fail "recovery ignored the checkpoint");
  checki "in-flight write committed by the tail" 77
    (match
       Store.committed_before r.Durable.store (gr 2 0)
         ~ts:(r.Durable.last_time + 1)
     with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "in-flight write lost")

let test_crash_point_fuzz () =
  (* cut the log at EVERY byte boundary: recovery must never raise, never
     resurrect an uncommitted write, and the committed count must be
     monotone in the cut position *)
  let path = fresh "hdd_durable_fuzz.log" in
  let db = Durable.create ~path ~partition () in
  for i = 1 to 6 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 (i mod 2)) i);
    if i mod 3 = 0 then Durable.abort db t else Durable.commit db t
  done;
  Durable.close db;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let cut_path = fresh "hdd_durable_fuzz_cut.log" in
  let last_committed = ref 0 in
  for cut = 0 to String.length full do
    Out_channel.with_open_bin cut_path (fun oc ->
        Out_channel.output_string oc (String.sub full 0 cut));
    let r = Durable.recover ~path:cut_path ~segments:3 ~init:(fun _ -> 0) () in
    checkb "commits monotone in the prefix" true
      (r.Durable.committed >= !last_committed);
    last_committed := Int.max !last_committed r.Durable.committed
  done;
  checki "the full log recovers every commit" 4 !last_committed

let test_durable_adhoc_logged () =
  let path = fresh "hdd_durable_adhoc.log" in
  let db = Durable.create ~path ~partition () in
  let a = Durable.begin_adhoc_update db ~writes:[ 1; 2 ] ~reads:[] in
  ok (Durable.write db a (gr 2 0) 7);
  ok (Durable.write db a (gr 1 0) 8);
  Durable.commit db a;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  let read_latest g =
    match
      Store.committed_before r.Durable.store g ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing version"
  in
  checki "adhoc write to D2 recovered" 7 (read_latest (gr 2 0));
  checki "adhoc write to D1 recovered" 8 (read_latest (gr 1 0))

(* --- fault injection through the sink --- *)

let faulty_db ~plan ~path =
  Durable.create ~sync_on_commit:true
    ~sink:(Fault.apply plan (Fault.file_sink ~fsync:false ~path ()))
    ~path ~partition ()

let test_wal_missing_file () =
  let path = fresh "hdd_wal_missing.log" in
  let { Wal.records; complete; bytes_read } = Wal.read_all ~path in
  checkb "missing file is the empty log" true complete;
  checki "no records" 0 (List.length records);
  checki "no bytes" 0 bytes_read;
  (* recovery of a database that was never written: initial state *)
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 42) () in
  checkb "intact" true r.Durable.log_intact;
  checki "nothing committed" 0 r.Durable.committed;
  (match
     Store.committed_before r.Durable.store (gr 2 0)
       ~ts:(r.Durable.last_time + 1)
   with
  | Some v -> checki "bootstrap value" 42 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "bootstrap version missing")

(* Crash between the write-append and the commit-append must never
   resurrect the transaction.  The workload logs exactly 7 frames
   (B,W,C for t1; B,W,W,C for t2); crash after every prefix length and
   check that t2's writes appear only once its commit frame is down.
   Note the crash fires while the commit append is still in flight, so
   the ack is returned only if the NEXT frame is also reached: acked
   implies the commit frame is durable, never the converse — at
   crash_at = 7 t2's commit is durable but unacknowledged (the
   "in-flight commit" recovery may keep). *)
let test_flush_ordering_no_resurrection () =
  for crash_at = 1 to 8 do
    let path = fresh "hdd_fault_order.log" in
    let plan = Fault.plan [ Fault.Crash_after_frames crash_at ] in
    let db = faulty_db ~plan ~path in
    let t1_acked = ref false and t2_acked = ref false in
    (try
       let t1 = Durable.begin_update db ~class_id:2 in
       ignore (Durable.write db t1 (gr 2 0) 1);
       Durable.commit db t1;
       t1_acked := true;
       let t2 = Durable.begin_update db ~class_id:2 in
       ignore (Durable.write db t2 (gr 2 1) 2);
       ignore (Durable.write db t2 (gr 2 0) 3);
       Durable.commit db t2;
       t2_acked := true
     with Fault.Crash _ -> ());
    (try Durable.close db with Fault.Crash _ -> ());
    checkb "t1 acked iff a frame beyond its commit went down" (crash_at >= 4)
      !t1_acked;
    checkb "t2 acked iff the crash never fired" (crash_at >= 8) !t2_acked;
    let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
    let latest g =
      match
        Store.committed_before r.Durable.store g
          ~ts:(r.Durable.last_time + 1)
      with
      | Some v -> v.Hdd_mvstore.Chain.value
      | None -> Alcotest.fail "missing version"
    in
    (* everything is deterministic: a txn's values are installed exactly
       when its commit frame (t1: frame 3, t2: frame 7) is durable; a
       write frame without its commit frame never resurrects *)
    let expect_0 = if crash_at >= 7 then 3 else if crash_at >= 3 then 1 else 0
    and expect_1 = if crash_at >= 7 then 2 else 0 in
    checki "granule 0 recovers its committed prefix" expect_0
      (latest (gr 2 0));
    checki "granule 1 recovers its committed prefix" expect_1
      (latest (gr 2 1))
  done

let test_fault_corrupt_mid_log () =
  let path = fresh "hdd_fault_corrupt.log" in
  (* three committed txns, one bit flipped inside the second txn's
     frames: recovery keeps the first, hides the rest, reports damage *)
  let plan = Fault.plan [ Fault.Bit_flip { byte = 130; bit = 4 } ] in
  let db = faulty_db ~plan ~path in
  for i = 1 to 3 do
    let t = Durable.begin_update db ~class_id:2 in
    ignore (Durable.write db t (gr 2 i) i);
    Durable.commit db t
  done;
  Durable.close db;
  checkb "the flip fired" true
    (List.exists
       (function Fault.Bit_flip _ -> true | _ -> false)
       (Fault.fired plan));
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "damage detected" false r.Durable.log_intact;
  checki "only the prefix commit survives" 1 r.Durable.committed;
  (match
     Store.committed_before r.Durable.store (gr 2 1)
       ~ts:(r.Durable.last_time + 1)
   with
  | Some v -> checki "first txn intact" 1 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "first txn lost");
  (* the corrupted txns are hidden entirely, never half-applied *)
  List.iter
    (fun key ->
      match
        Store.committed_before r.Durable.store (gr 2 key)
          ~ts:(r.Durable.last_time + 1)
      with
      | Some v -> checki "corrupted txn hidden" 0 v.Hdd_mvstore.Chain.value
      | None -> ())
    [ 2; 3 ]

let test_double_recovery () =
  let path = fresh "hdd_fault_double.log" in
  (* session 1 tears mid-append; session 2 (on the recovered state)
     crashes whole-frame; session 3 must see both sessions' commits *)
  let plan1 = Fault.plan [ Fault.Torn_write { frame = 4; keep = 10 } ] in
  let db1 = faulty_db ~plan:plan1 ~path in
  (try
     let t1 = Durable.begin_update db1 ~class_id:2 in
     ignore (Durable.write db1 t1 (gr 2 0) 1);
     Durable.commit db1 t1;
     let t2 = Durable.begin_update db1 ~class_id:2 in
     ignore (Durable.write db1 t2 (gr 2 1) 2);
     Durable.commit db1 t2
   with Fault.Crash _ -> ());
  (try Durable.close db1 with Fault.Crash _ -> ());
  let r1 = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "tear detected" false r1.Durable.log_intact;
  checki "session 1 commit recovered" 1 r1.Durable.committed;
  (* resume on the recovery (truncating the torn tail), commit, crash *)
  let plan2 = Fault.plan [ Fault.Crash_after_frames 3 ] in
  let db2 =
    Durable.of_recovery ~sync_on_commit:true
      ~sink:(Fault.apply plan2 (Fault.file_sink ~fsync:false ~path ()))
      ~path ~partition r1
  in
  (try
     let t3 = Durable.begin_update db2 ~class_id:1 in
     ignore (Durable.write db2 t3 (gr 1 0) 33);
     Durable.commit db2 t3;
     let t4 = Durable.begin_update db2 ~class_id:1 in
     ignore (Durable.write db2 t4 (gr 1 1) 44);
     Durable.commit db2 t4
   with Fault.Crash _ -> ());
  (try Durable.close db2 with Fault.Crash _ -> ());
  let r2 = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checki "both sessions' commits recovered" 2 r2.Durable.committed;
  let latest g =
    match
      Store.committed_before r2.Durable.store g ~ts:(r2.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing version"
  in
  checki "session 1's value" 1 (latest (gr 2 0));
  checki "session 2's value" 33 (latest (gr 1 0));
  checkb "session 2's unfinished txn hidden" true (latest (gr 1 1) = 0);
  checkb "clock dominates both sessions" true
    (r2.Durable.last_time >= r1.Durable.last_time)

let test_transient_append_error () =
  let path = fresh "hdd_fault_transient.log" in
  let plan = Fault.plan [ Fault.Append_error { frame = 0 } ] in
  let db = faulty_db ~plan ~path in
  (* the very first begin fails; Durable rolls the scheduler back *)
  (match Durable.begin_update db ~class_id:2 with
  | _ -> Alcotest.fail "append error swallowed"
  | exception Fault.Io_error _ -> ());
  checki "no half-begun transaction" 0 (Durable.in_flight db);
  (* the fault was transient: the next transaction goes through *)
  let t = Durable.begin_update db ~class_id:2 in
  ignore (Durable.write db t (gr 2 0) 9);
  Durable.commit db t;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "log intact" true r.Durable.log_intact;
  checki "the retried transaction committed" 1 r.Durable.committed

(* --- group commit --- *)

let grouped_db ?(max_batch = 4) ?(max_delay = 100) ~plan ~path () =
  Durable.create
    ~sink:(Fault.apply plan (Fault.file_sink ~fsync:false ~path ()))
    ~group:{ Group_commit.max_batch; max_delay }
    ~faults:plan ~path ~partition ()

let commit_one db i =
  let t = Durable.begin_update db ~class_id:2 in
  ignore (Durable.write db t (gr 2 (i mod 3)) i);
  Durable.commit_ticket db t

let test_group_batching_defers_acks () =
  let path = fresh "hdd_group_batch.log" in
  let plan = Fault.plan [] in
  let db = grouped_db ~plan ~path () in
  let g = Option.get (Durable.group db) in
  (* three commits: under max_batch, nothing synced, nothing acked *)
  let tks = List.init 3 (fun i -> commit_one db (i + 1)) in
  checki "no fsync yet" 0 (Group_commit.fsyncs g);
  checkb "queued commits unacked" true
    (List.for_all (fun tk -> not (Durable.acked db tk)) tks);
  (* the fourth fills the batch: one fsync acks all four *)
  let tk4 = commit_one db 4 in
  checki "one fsync for four commits" 1 (Group_commit.fsyncs g);
  checkb "the whole batch acked" true
    (List.for_all (fun tk -> Durable.acked db tk) (tk4 :: tks));
  (* ack offsets are monotone in submission order *)
  let offs = List.map (fun tk -> Option.get (Durable.ack_offset db tk)) (tks @ [ tk4 ]) in
  checkb "ack offsets monotone" true (List.sort compare offs = offs);
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checki "all four commits recovered" 4 r.Durable.committed

let test_group_delay_flush () =
  let path = fresh "hdd_group_delay.log" in
  let plan = Fault.plan [] in
  let db = grouped_db ~max_batch:100 ~max_delay:3 ~plan ~path () in
  let tk = commit_one db 1 in
  checkb "not acked at submit" false (Durable.acked db tk);
  (* engine operations tick the logical delay timer *)
  let ro = Durable.begin_read_only db in
  ignore (Durable.read db ro (gr 2 0));
  ignore (Durable.read db ro (gr 2 1));
  ignore (Durable.read db ro (gr 2 2));
  checkb "aged batch flushed by ticks" true (Durable.acked db tk);
  Durable.close db

let test_group_crash_points () =
  (* a scripted crash at each pipeline point: recovery never raises and
     never exceeds what was submitted *)
  List.iter
    (fun point ->
      let path = fresh "hdd_group_crash.log" in
      let plan = Fault.plan [ Fault.Crash_at point ] in
      let db = grouped_db ~max_batch:2 ~max_delay:0 ~plan ~path () in
      let submitted = ref 0 in
      (try
         for i = 1 to 6 do
           ignore (commit_one db i);
           incr submitted
         done
       with Fault.Crash _ -> ());
      (try Durable.close db with Fault.Crash _ -> ());
      checkb "the crash fired" true (Fault.crashed plan);
      let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
      checkb "recovery bounded by submissions" true
        (r.Durable.committed <= !submitted + 1))
    [ Fault.Batch_append { batch = 1; frame = 0 };
      Fault.Batch_fsync 1;
      Fault.Batch_ack 1 ]

let test_group_transient_fsync_retries () =
  let path = fresh "hdd_group_transient.log" in
  let plan = Fault.plan [ Fault.Error_at (Fault.Batch_fsync 1) ] in
  let db = grouped_db ~max_batch:2 ~max_delay:0 ~plan ~path () in
  let g = Option.get (Durable.group db) in
  let tk = commit_one db 1 in
  (* the first fsync round failed transiently; the retry acked it *)
  checkb "acked through the retry" true (Durable.acked db tk);
  checkb "the failure was counted" true (Group_commit.sync_failures g >= 1);
  checkb "not livelocked" false (Group_commit.livelocked g);
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checki "the commit survived" 1 r.Durable.committed

(* --- checkpoint damage and fallback --- *)

let corrupt_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  let b = Bytes.of_string b in
  let i = n / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x10));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc b)

let test_checkpoint_fallback_chain () =
  let path = fresh "hdd_ckpt_fallback.log" in
  let db = Durable.create ~path ~partition () in
  for i = 1 to 10 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 (i mod 2)) i);
    Durable.commit db t
  done;
  let m1 = Durable.checkpoint db in
  for i = 11 to 20 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 (i mod 2)) i);
    Durable.commit db t
  done;
  let m2 = Durable.checkpoint db in
  Durable.close db;
  let latest r g =
    match
      Store.committed_before r.Durable.store g ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing version"
  in
  (* newest data file damaged: recovery falls back to the older cut *)
  corrupt_file (Checkpoint.data_path ~log:path ~seq:m2.Checkpoint.seq);
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  (match r.Durable.from_checkpoint with
  | Some m -> checki "fell back one checkpoint" m1.Checkpoint.seq m.Checkpoint.seq
  | None -> Alcotest.fail "fallback skipped the older checkpoint");
  checki "state intact through the fallback" 20 (latest r (gr 2 0));
  checki "state intact through the fallback" 19 (latest r (gr 2 1));
  (* both damaged: full replay, same answers *)
  corrupt_file (Checkpoint.data_path ~log:path ~seq:m1.Checkpoint.seq);
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "fell back to full replay" true (r.Durable.from_checkpoint = None);
  checkb "the log itself is undamaged" true r.Durable.log_intact;
  checki "state intact through full replay" 20 (latest r (gr 2 0))

let test_checkpoint_torn_manifest () =
  let path = fresh "hdd_ckpt_torn_manifest.log" in
  let db = Durable.create ~path ~partition () in
  for i = 1 to 5 do
    let t = Durable.begin_update db ~class_id:1 in
    ok (Durable.write db t (gr 1 0) i);
    Durable.commit db t
  done;
  ignore (Durable.checkpoint db);
  Durable.close db;
  (* tear the manifest mid-file: it must read as empty, not crash *)
  let mpath = Checkpoint.manifest_path ~log:path in
  let n = (Unix.stat mpath).Unix.st_size in
  Unix.truncate mpath (n / 2);
  checkb "torn manifest reads empty" true (Checkpoint.read_manifest ~log:path = []);
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
  checkb "full replay fallback" true (r.Durable.from_checkpoint = None);
  checki "every commit recovered" 5 r.Durable.committed

let test_checkpoint_write_faults_are_transient () =
  (* a transient error at each checkpoint point: the cut simply didn't
     happen, the handle stays usable, recovery is full replay *)
  List.iter
    (fun point ->
      let path = fresh "hdd_ckpt_transient.log" in
      let plan = Fault.plan [ Fault.Error_at point ] in
      let db =
        Durable.create ~sync_on_commit:true
          ~sink:(Fault.apply plan (Fault.file_sink ~fsync:false ~path ()))
          ~faults:plan ~path ~partition ()
      in
      let t = Durable.begin_update db ~class_id:2 in
      ok (Durable.write db t (gr 2 0) 5);
      Durable.commit db t;
      (match Durable.checkpoint db with
      | _ -> Alcotest.fail "scripted checkpoint fault swallowed"
      | exception Fault.Io_error _ -> ());
      (* still usable; and a later checkpoint succeeds *)
      let t = Durable.begin_update db ~class_id:2 in
      ok (Durable.write db t (gr 2 1) 6);
      Durable.commit db t;
      let m = Durable.checkpoint db in
      Durable.close db;
      let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
      (match r.Durable.from_checkpoint with
      | Some m' -> checki "the retried cut loads" m.Checkpoint.seq m'.Checkpoint.seq
      | None -> Alcotest.fail "retried checkpoint ignored");
      checki "both commits recovered" 2 r.Durable.committed)
    [ Fault.Checkpoint_write 1; Fault.Checkpoint_rename 1;
      Fault.Manifest_write 1; Fault.Manifest_rename 1 ]

(* --- log shipping --- *)

(* The primary's Protocol A/C answer at [ts] — what a consistent replica
   must return for any [ts] at or below its effective wall. *)
let primary_answer db g ~ts =
  match Store.committed_before (Durable.store db) g ~ts with
  | Some v -> v.Hdd_mvstore.Chain.value
  | None -> 0

let test_replica_chunked_ship () =
  let path = fresh "hdd_replica_ship.log" in
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  let replica = Replica.create ~segments:3 ~init:(fun _ -> 0) () in
  let sh = Replica.shipper ~log:path replica in
  let ship_now () =
    let wall = Scheduler.gc_watermark_vector (Durable.scheduler db) in
    Durable.sync db;
    match Replica.ship sh ~upto:(Durable.durable_offset db) ~wall with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "ship failed without faults"
  in
  (* enough commits that time walls actually release (every 16) *)
  for i = 1 to 20 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 0) i);
    Durable.commit db t
  done;
  ship_now ();
  let mid_wall = Replica.effective_wall replica in
  checkb "first chunk released a usable wall" true (mid_wall.(2) > 0);
  checkb "replica agrees with the primary at its wall" true
    (Replica.read replica (gr 2 0) ~ts:mid_wall.(2)
    = Ok (primary_answer db (gr 2 0) ~ts:mid_wall.(2)));
  for i = 21 to 40 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 0) i);
    Durable.commit db t
  done;
  ship_now ();
  let w = Replica.effective_wall replica in
  checkb "wall advanced with the second chunk" true (w.(2) > mid_wall.(2));
  checkb "second chunk visible at the new wall" true
    (Replica.read replica (gr 2 0) ~ts:w.(2)
    = Ok (primary_answer db (gr 2 0) ~ts:w.(2)));
  (* reads above the wall are refused, not answered stale *)
  checkb "above the wall refused" true
    (match Replica.read replica (gr 2 0) ~ts:(w.(2) + 100) with
    | Error `Too_new -> true
    | _ -> false);
  checki "zero staleness after the final ship" 0
    (Replica.staleness replica ~primary_wall:(Replica.wall replica));
  Durable.close db

let test_replica_resend_idempotent () =
  let path = fresh "hdd_replica_resend.log" in
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  for i = 1 to 5 do
    let t = Durable.begin_update db ~class_id:1 in
    ok (Durable.write db t (gr 1 0) i);
    Durable.commit db t
  done;
  let wall = Scheduler.gc_watermark_vector (Durable.scheduler db) in
  Durable.sync db;
  let upto = Durable.durable_offset db in
  Durable.close db;
  let replica = Replica.create ~segments:3 ~init:(fun _ -> 0) () in
  (* two shippers, both from 0: the second delivery re-applies the whole
     slice — replay is idempotent, the state must not change *)
  let sh1 = Replica.shipper ~log:path replica in
  (match Replica.ship sh1 ~upto ~wall with Ok () -> () | Error _ -> Alcotest.fail "ship 1");
  let d1 = Store.dump (Replica.store replica) in
  let sh2 = Replica.shipper ~log:path replica in
  (match Replica.ship sh2 ~upto ~wall with Ok () -> () | Error _ -> Alcotest.fail "ship 2");
  checkb "double delivery is a no-op" true (Store.dump (Replica.store replica) = d1)

let test_replica_transient_send_retries () =
  let path = fresh "hdd_replica_retry.log" in
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  let t = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t (gr 2 2) 9);
  Durable.commit db t;
  let wall = Scheduler.gc_watermark_vector (Durable.scheduler db) in
  Durable.sync db;
  let upto = Durable.durable_offset db in
  Durable.close db;
  let plan = Fault.plan [ Fault.Error_at (Fault.Ship_send 1) ] in
  let replica = Replica.create ~segments:3 ~init:(fun _ -> 0) () in
  let sh = Replica.shipper ~faults:plan ~log:path replica in
  (match Replica.ship sh ~upto ~wall with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "transient send not retried");
  checkb "the retry resent" true (Replica.sends sh >= 2);
  (* the write is installed in the replica's store (the wall may not
     have released yet for so short a history — check the state itself) *)
  checkb "delivered" true
    (match
       Store.committed_before (Replica.store replica) (gr 2 2)
         ~ts:(Replica.last_time replica + 1)
     with
    | Some v -> v.Hdd_mvstore.Chain.value = 9
    | None -> false)

let test_replica_crash_mid_ship_resumes () =
  let path = fresh "hdd_replica_crash.log" in
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  let t = Durable.begin_update db ~class_id:0 in
  ok (Durable.write db t (gr 0 0) 41);
  Durable.commit db t;
  let wall = Scheduler.gc_watermark_vector (Durable.scheduler db) in
  Durable.sync db;
  let upto = Durable.durable_offset db in
  Durable.close db;
  let plan = Fault.plan [ Fault.Crash_at (Fault.Ship_send 1) ] in
  let replica = Replica.create ~segments:3 ~init:(fun _ -> 0) () in
  let sh = Replica.shipper ~faults:plan ~log:path replica in
  (match Replica.ship sh ~upto ~wall with
  | _ -> Alcotest.fail "scripted ship crash swallowed"
  | exception Fault.Crash _ -> ());
  checki "cursor unmoved by the crash" 0 (Replica.shipped sh);
  (* the primary recovers, a new shipper resumes the same cursor *)
  let sh' = Replica.shipper ~from:(Replica.shipped sh) ~log:path replica in
  (match Replica.ship sh' ~upto ~wall with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "resumed ship failed");
  checki "cursor caught up" upto (Replica.shipped sh');
  checkb "the commit arrived" true
    (match
       Store.committed_before (Replica.store replica) (gr 0 0)
         ~ts:(Replica.last_time replica + 1)
     with
    | Some v -> v.Hdd_mvstore.Chain.value = 41
    | None -> false)

let test_replica_wall_clamped_by_pending () =
  let path = fresh "hdd_replica_clamp.log" in
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  (* enough committed history that a wall has released... *)
  for i = 1 to 20 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 0) i);
    Durable.commit db t
  done;
  (* ...then t2 in flight: its Begin and Write frames ship, no commit *)
  let t2 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t2 (gr 2 1) 8);
  let wall = Scheduler.gc_watermark_vector (Durable.scheduler db) in
  Durable.sync db;
  let upto = Durable.durable_offset db in
  let replica = Replica.create ~segments:3 ~init:(fun _ -> 0) () in
  let sh = Replica.shipper ~log:path replica in
  (match Replica.ship sh ~upto ~wall with Ok () -> () | Error _ -> Alcotest.fail "ship");
  let w = Replica.effective_wall replica in
  (* the half-shipped transaction clamps the effective wall below its init *)
  checkb "clamped below the in-flight init" true (w.(2) <= t2.Txn.init);
  checkb "a wall released for the committed prefix" true (w.(2) > 0);
  checkb "committed prefix still served consistently" true
    (Replica.read replica (gr 2 0) ~ts:w.(2)
    = Ok (primary_answer db (gr 2 0) ~ts:w.(2)));
  Durable.commit db t2;
  Durable.close db

(* --- 1000-seed properties: checkpoint equivalence, replica staleness --- *)

let qcheck_seeds =
  match Sys.getenv_opt "HDD_QCHECK_SEEDS" with
  | None | Some "" -> 1000
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ -> Alcotest.failf "HDD_QCHECK_SEEDS must be a positive int: %S" s)

(* A small fault-free workload with checkpoint cuts at random points. *)
let random_durable_history rng path ~ship =
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  let replica = Replica.create ~segments:3 ~init:(fun _ -> 0) () in
  let sh = Replica.shipper ~log:path replica in
  let cuts = ref 0 in
  let ship_now () =
    let wall = Scheduler.gc_watermark_vector (Durable.scheduler db) in
    Durable.sync db;
    match Replica.ship sh ~upto:(Durable.durable_offset db) ~wall with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "ship failed without faults"
  in
  for i = 1 to 8 + Prng.int rng 8 do
    let cls = Prng.int rng 3 in
    let t = Durable.begin_update db ~class_id:cls in
    for _ = 0 to Prng.int rng 2 do
      ignore (Durable.write db t (gr cls (Prng.int rng 3)) i)
    done;
    if Prng.int rng 8 = 0 then Durable.abort db t else Durable.commit db t;
    if Prng.int rng 4 = 0 then begin
      ignore (Durable.checkpoint db);
      incr cuts
    end;
    if ship && Prng.int rng 3 = 0 then ship_now ()
  done;
  if ship then ship_now ();
  Durable.close db;
  (replica, !cuts)

let prop_checkpoint_equivalence =
  QCheck2.Test.make
    ~name:
      "checkpoint: recover via newest cut = wall-cut of full replay (1000 \
       seeds)"
    ~count:qcheck_seeds
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_prop_ckpt_%d.log" (seed mod 97)) in
      let _, cuts = random_durable_history rng path ~ship:false in
      let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) () in
      let oracle =
        Durable.recover ~use_checkpoints:false ~path ~segments:3
          ~init:(fun _ -> 0) ()
      in
      let equivalent =
        match r.Durable.from_checkpoint with
        | None ->
          cuts = 0 && Store.dump r.Durable.store = Store.dump oracle.Durable.store
        | Some m ->
          Store.dump r.Durable.store
          = Store.trim_dump ~wall:m.Checkpoint.wall
              (Store.dump oracle.Durable.store)
      in
      equivalent
      && r.Durable.last_time >= oracle.Durable.last_time
      && r.Durable.committed = oracle.Durable.committed)

let prop_replica_staleness =
  QCheck2.Test.make
    ~name:
      "replica: wall-bounded reads match the primary, staleness 0 after the \
       final ship (1000 seeds)"
    ~count:qcheck_seeds
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_prop_ship_%d.log" (seed mod 97)) in
      let replica, _ = random_durable_history rng path ~ship:true in
      let oracle =
        Durable.recover ~use_checkpoints:false ~path ~segments:3
          ~init:(fun _ -> 0) ()
      in
      let w = Replica.effective_wall replica in
      (not (Replica.stalled replica))
      && Array.length w = 3
      && Replica.staleness replica ~primary_wall:(Replica.wall replica) = 0
      && List.for_all
           (fun seg ->
             List.for_all
               (fun key ->
                 let g = gr seg key in
                 let expect =
                   match
                     Store.committed_before oracle.Durable.store g ~ts:w.(seg)
                   with
                   | Some v -> v.Hdd_mvstore.Chain.value
                   | None -> 0
                 in
                 w.(seg) = 0 || Replica.read replica g ~ts:w.(seg) = Ok expect)
               [ 0; 1; 2 ])
           [ 0; 1; 2 ])

(* Cycle count defaults to 500 and scales up through the environment:
   the nightly CI job runs the same test with HDD_TORTURE_CYCLES=5000. *)
let torture_cycles =
  match Sys.getenv_opt "HDD_TORTURE_CYCLES" with
  | None | Some "" -> 500
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ -> Alcotest.failf "HDD_TORTURE_CYCLES must be a positive int: %S" s)

(* The invariant monitors ride along by default (the "monitor torture
   integration" of the observability PR): any monitor catch counts as a
   cycle violation.  HDD_TORTURE_MONITORS=0 detaches them. *)
let torture_monitors =
  match Sys.getenv_opt "HDD_TORTURE_MONITORS" with
  | Some "0" -> false
  | _ -> true

let test_torture_cycles () =
  let path = fresh "hdd_torture.log" in
  let report =
    Torture.run ~monitors:torture_monitors ~partition ~path
      ~seeds:torture_cycles ()
  in
  (match report.Torture.violating with
  | [] -> ()
  | bad ->
    Alcotest.failf "%a" Torture.pp_report { report with Torture.violating = bad });
  checki "all cycles ran" torture_cycles report.Torture.cycles;
  (* the fault mix is seed-dependent; scale expectations with the count *)
  checkb "crashes actually fired" true
    (report.Torture.crashes > torture_cycles / 5);
  checkb "corruption actually fired" true
    (report.Torture.corruptions > torture_cycles / 25);
  checkb "work was acknowledged" true
    (report.Torture.acknowledged > torture_cycles * 2);
  checkb "work was recovered" true (report.Torture.recovered > 0);
  (* exhaustive coverage: at full scale every logical fault point kind —
     batching, checkpointing and shipping boundaries alike — must have
     been crossed at least once (Fault.kinds is the closed enumeration) *)
  if torture_cycles >= 300 then
    List.iter
      (fun k ->
        checkb
          (Printf.sprintf "fault point kind %S exercised" k)
          true
          (match List.assoc_opt k report.Torture.reached_kinds with
          | Some n -> n > 0
          | None -> false))
      Fault.kinds

let suite =
  [ Alcotest.test_case "codec: roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: truncation" `Quick test_codec_truncation;
    Alcotest.test_case "codec: corruption" `Quick test_codec_corruption;
    QCheck_alcotest.to_alcotest prop_codec_random;
    Alcotest.test_case "wal: roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal: sessions append" `Quick test_wal_append_across_sessions;
    QCheck_alcotest.to_alcotest prop_wal_truncation_boundary;
    QCheck_alcotest.to_alcotest prop_wal_bitflip;
    Alcotest.test_case "durable: crash and recover" `Quick test_durable_crash_recovery;
    Alcotest.test_case "durable: torn commit loses the txn" `Quick test_durable_torn_commit_loses_transaction;
    Alcotest.test_case "durable: rewrite same granule" `Quick test_durable_rewrite_same_granule;
    Alcotest.test_case "durable: checkpoint cuts and recovers" `Quick test_checkpoint_compacts_and_preserves;
    Alcotest.test_case "durable: checkpoint with in-flight txns" `Quick test_checkpoint_with_in_flight;
    Alcotest.test_case "durable: crash-point fuzz" `Quick test_crash_point_fuzz;
    Alcotest.test_case "durable: ad-hoc transactions logged" `Quick test_durable_adhoc_logged;
    QCheck_alcotest.to_alcotest prop_durable_random_recovery;
    Alcotest.test_case "wal: missing file recovers empty" `Quick test_wal_missing_file;
    Alcotest.test_case "fault: write/commit flush ordering" `Quick test_flush_ordering_no_resurrection;
    Alcotest.test_case "fault: corruption mid-log" `Quick test_fault_corrupt_mid_log;
    Alcotest.test_case "fault: double recovery" `Quick test_double_recovery;
    Alcotest.test_case "fault: transient append error" `Quick test_transient_append_error;
    Alcotest.test_case "group: batching defers acks" `Quick test_group_batching_defers_acks;
    Alcotest.test_case "group: delay ticks flush" `Quick test_group_delay_flush;
    Alcotest.test_case "group: crash at each pipeline point" `Quick test_group_crash_points;
    Alcotest.test_case "group: transient fsync retries" `Quick test_group_transient_fsync_retries;
    Alcotest.test_case "checkpoint: fallback chain on damage" `Quick test_checkpoint_fallback_chain;
    Alcotest.test_case "checkpoint: torn manifest reads empty" `Quick test_checkpoint_torn_manifest;
    Alcotest.test_case "checkpoint: write faults are transient" `Quick test_checkpoint_write_faults_are_transient;
    Alcotest.test_case "replica: chunked ship serves walls" `Quick test_replica_chunked_ship;
    Alcotest.test_case "replica: resend is idempotent" `Quick test_replica_resend_idempotent;
    Alcotest.test_case "replica: transient send retries" `Quick test_replica_transient_send_retries;
    Alcotest.test_case "replica: crash mid-ship resumes" `Quick test_replica_crash_mid_ship_resumes;
    Alcotest.test_case "replica: wall clamped by in-flight" `Quick test_replica_wall_clamped_by_pending;
    QCheck_alcotest.to_alcotest prop_checkpoint_equivalence;
    QCheck_alcotest.to_alcotest prop_replica_staleness;
    Alcotest.test_case
      (Printf.sprintf "torture: %d crash/recover cycles" torture_cycles)
      `Slow test_torture_cycles ]
