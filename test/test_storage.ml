(* Tests for the durability substrate: codec roundtrips, WAL recovery
   with torn and corrupt tails, and end-to-end crash/recover/resume of a
   durable HDD database. *)

module Codec = Hdd_storage.Codec
module Wal = Hdd_storage.Wal
module Durable = Hdd_storage.Durable
module Fault = Hdd_storage.Fault
module Torture = Hdd_storage.Torture
module Scheduler = Hdd_core.Scheduler
module Outcome = Hdd_core.Outcome
module Store = Hdd_mvstore.Store
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let fresh name =
  let path = tmp name in
  if Sys.file_exists path then Sys.remove path;
  path

let gr s k = Granule.make ~segment:s ~key:k

let ok = function
  | Outcome.Granted v -> v
  | Outcome.Blocked _ -> Alcotest.fail "unexpected block"
  | Outcome.Rejected why -> Alcotest.fail ("unexpected rejection: " ^ why)

(* --- codec --- *)

let sample_records =
  [ Codec.Begin { txn = 7; class_id = 2; init = 13 };
    Codec.Write { txn = 7; granule = gr 2 5; ts = 13; value = 42 };
    Codec.Write { txn = 7; granule = gr 0 0; ts = 13; value = -1 };
    Codec.Commit { txn = 7; at = 15 };
    Codec.Abort { txn = 9; at = 20 } ]

let test_codec_roundtrip () =
  List.iter
    (fun r ->
      let frame = Codec.encode r in
      match Codec.decode frame ~pos:0 with
      | Ok (r', next) ->
        checkb "roundtrip" true (Codec.equal_record r r');
        checki "consumed whole frame" (Bytes.length frame) next
      | Error _ -> Alcotest.fail "decode failed")
    sample_records

let test_codec_truncation () =
  let frame = Codec.encode (List.hd sample_records) in
  for cut = 0 to Bytes.length frame - 1 do
    match Codec.decode (Bytes.sub frame 0 cut) ~pos:0 with
    | Error `Truncated -> ()
    | Error `Corrupt -> Alcotest.fail "truncation misread as corruption"
    | Ok _ -> Alcotest.fail "decoded a truncated frame"
  done

let test_codec_corruption () =
  let frame = Codec.encode (List.nth sample_records 1) in
  (* flip one payload byte *)
  let bad = Bytes.copy frame in
  Bytes.set_uint8 bad 12 (Bytes.get_uint8 bad 12 lxor 0xff);
  match Codec.decode bad ~pos:0 with
  | Error `Corrupt -> ()
  | _ -> Alcotest.fail "corruption undetected"

let prop_codec_random =
  QCheck2.Test.make ~name:"codec: random records roundtrip" ~count:300
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let r =
        match Prng.int rng 4 with
        | 0 ->
          Codec.Begin
            { txn = Prng.int rng 10000; class_id = Prng.int rng 8;
              init = Prng.int rng 100000 }
        | 1 ->
          Codec.Write
            { txn = Prng.int rng 10000;
              granule = gr (Prng.int rng 8) (Prng.int rng 1000);
              ts = Prng.int rng 100000;
              value = Prng.int rng 1000000 - 500000 }
        | 2 -> Codec.Commit { txn = Prng.int rng 10000; at = Prng.int rng 100000 }
        | _ -> Codec.Abort { txn = Prng.int rng 10000; at = Prng.int rng 100000 }
      in
      match Codec.decode (Codec.encode r) ~pos:0 with
      | Ok (r', _) -> Codec.equal_record r r'
      | Error _ -> false)

(* --- WAL --- *)

let test_wal_roundtrip () =
  let path = fresh "hdd_wal_roundtrip.log" in
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) sample_records;
  checki "appended" 5 (Wal.appended wal);
  Wal.sync wal;
  Wal.close wal;
  let { Wal.records; complete; _ } = Wal.read_all ~path in
  checkb "complete" true complete;
  checki "all back" 5 (List.length records);
  List.iter2
    (fun a b -> checkb "in order" true (Codec.equal_record a b))
    sample_records records

let test_wal_torn_tail () =
  let path = fresh "hdd_wal_torn.log" in
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) sample_records;
  Wal.close wal;
  (* tear the last 3 bytes off, as a crash mid-append would *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 3)));
  let { Wal.records; complete; _ } = Wal.read_all ~path in
  checkb "tail dropped" false complete;
  checki "intact prefix survives" 4 (List.length records)

let test_wal_append_across_sessions () =
  let path = fresh "hdd_wal_sessions.log" in
  let w1 = Wal.create ~path () in
  Wal.append w1 (List.hd sample_records);
  Wal.close w1;
  let w2 = Wal.create ~path () in
  Wal.append w2 (List.nth sample_records 3);
  Wal.close w2;
  let { Wal.records; complete; _ } = Wal.read_all ~path in
  checkb "complete" true complete;
  checki "both sessions present" 2 (List.length records)

(* --- WAL damage properties ---

   A cut at any byte offset and a flip of any single bit must both be
   detected, recover to an intact prefix of what was written, and leave
   a log that [Durable.of_recovery] can truncate and resume cleanly. *)

(* A structurally valid random log — per transaction a Begin, a few
   Writes, then Commit or Abort, timestamps monotone: the shape
   [Durable.recover] replays. *)
let random_log rng =
  let time = ref 0 in
  let tick () =
    incr time;
    !time
  in
  let recs = ref [] in
  let ntxn = 1 + Prng.int rng 4 in
  for id = 1 to ntxn do
    let cls = Prng.int rng 3 in
    let init = tick () in
    recs := Codec.Begin { txn = id; class_id = cls; init } :: !recs;
    for _ = 1 to 1 + Prng.int rng 3 do
      recs :=
        Codec.Write
          { txn = id; granule = gr cls (Prng.int rng 3); ts = init;
            value = Prng.int rng 1000 }
        :: !recs
    done;
    if Prng.int rng 4 > 0 then
      recs := Codec.Commit { txn = id; at = tick () } :: !recs
    else recs := Codec.Abort { txn = id; at = tick () } :: !recs
  done;
  List.rev !recs

let write_log path records =
  let wal = Wal.create ~path () in
  List.iter (Wal.append wal) records;
  Wal.sync wal;
  Wal.close wal

let file_bytes path = In_channel.with_open_bin path In_channel.input_all

let rewrite path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let is_prefix_of written got =
  let rec go = function
    | _, [] -> true
    | w :: ws, g :: gs -> Codec.equal_record w g && go (ws, gs)
    | [], _ :: _ -> false
  in
  go (written, got)

(* The full damaged-log contract: read_all yields a prefix of what was
   written, recover agrees byte-for-byte with read_all, of_recovery
   resumes (truncating the dead tail), and the resumed log is intact. *)
let recovers_cleanly path written =
  let { Wal.records; complete; bytes_read } = Wal.read_all ~path in
  let prefix_ok = is_prefix_of written records in
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  let agree =
    r.Durable.valid_bytes = bytes_read && r.Durable.log_intact = complete
  in
  let db = Durable.of_recovery ~path ~partition:Fixtures.inventory r in
  let t = Durable.begin_update db ~class_id:0 in
  let resumed =
    match Durable.write db t (gr 0 0) 1 with
    | Outcome.Granted () -> true
    | _ -> false
  in
  Durable.commit db t;
  Durable.close db;
  let r2 = Wal.read_all ~path in
  prefix_ok && agree && resumed && r2.Wal.complete
  && List.length r2.Wal.records = List.length records + 3

let prop_wal_truncation_boundary =
  QCheck2.Test.make
    ~name:"wal: a cut at any byte offset recovers an intact prefix" ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_wal_cut_%d.log" seed) in
      let written = random_log rng in
      write_log path written;
      let full = file_bytes path in
      let cut = Prng.int rng (String.length full + 1) in
      rewrite path (String.sub full 0 cut);
      let { Wal.bytes_read; _ } = Wal.read_all ~path in
      bytes_read <= cut && recovers_cleanly path written)

let prop_wal_bitflip =
  QCheck2.Test.make
    ~name:"wal: any single flipped bit is detected and the prefix recovers"
    ~count:60
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_wal_flip_%d.log" seed) in
      let written = random_log rng in
      write_log path written;
      let full = Bytes.of_string (file_bytes path) in
      let pos = Prng.int rng (Bytes.length full) in
      let bit = Prng.int rng 8 in
      Bytes.set_uint8 full pos (Bytes.get_uint8 full pos lxor (1 lsl bit));
      rewrite path (Bytes.to_string full);
      let { Wal.records; complete; _ } = Wal.read_all ~path in
      (* CRC-32 catches every single-bit error, so the damage can never
         pass for a complete log; frames wholly before it must survive *)
      let frames_before =
        let n = ref 0 and off = ref 0 in
        List.iter
          (fun r ->
            off := !off + Bytes.length (Codec.encode r);
            if !off <= pos then incr n)
          written;
        !n
      in
      (not complete)
      && List.length records >= frames_before
      && recovers_cleanly path written)

(* --- durable database end to end --- *)

let partition = Fixtures.inventory

let test_durable_crash_recovery () =
  let path = fresh "hdd_durable_crash.log" in
  let db = Durable.create ~sync_on_commit:true ~path ~partition () in
  (* committed work *)
  let t1 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t1 (gr 2 0) 11);
  ok (Durable.write db t1 (gr 2 1) 22);
  Durable.commit db t1;
  let t2 = Durable.begin_update db ~class_id:1 in
  let base = ok (Durable.read db t2 (gr 2 0)) in
  ok (Durable.write db t2 (gr 1 0) (base * 2));
  Durable.commit db t2;
  (* an aborted transaction *)
  let t3 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t3 (gr 2 0) 999);
  Durable.abort db t3;
  (* an in-flight transaction lost to the crash *)
  let t4 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t4 (gr 2 1) 777);
  Durable.close db (* crash: t4 never committed *);
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checkb "log intact" true r.Durable.log_intact;
  checki "two commits recovered" 2 r.Durable.committed;
  checki "one abort recovered" 1 r.Durable.aborted;
  checki "t4 lost" 1 r.Durable.lost_uncommitted;
  (* recovered state: committed values visible, aborted/lost invisible *)
  let read_latest g =
    match
      Store.committed_before r.Durable.store g ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing recovered version"
  in
  checki "t1's first write" 11 (read_latest (gr 2 0));
  checki "t1's second write" 22 (read_latest (gr 2 1));
  checki "t2's derived value" 22 (read_latest (gr 1 0));
  (* resume and keep working *)
  let db2 = Durable.of_recovery ~path ~partition r in
  let t5 = Durable.begin_update db2 ~class_id:0 in
  checki "resumed reads see recovered data" 22
    (ok (Durable.read db2 t5 (gr 2 1)));
  ok (Durable.write db2 t5 (gr 0 0) 5);
  Durable.commit db2 t5;
  Durable.close db2;
  let r2 = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checki "post-resume commit recovered too" 3 r2.Durable.committed

let test_durable_torn_commit_loses_transaction () =
  let path = fresh "hdd_durable_torn.log" in
  let db = Durable.create ~path ~partition () in
  let t1 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t1 (gr 2 0) 1);
  Durable.commit db t1;
  let t2 = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t2 (gr 2 0) 2);
  Durable.commit db t2;
  Durable.close db;
  (* tear into t2's commit record *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (String.sub full 0 (String.length full - 5)));
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checkb "tear detected" false r.Durable.log_intact;
  checki "only t1 committed" 1 r.Durable.committed;
  (match
     Store.committed_before r.Durable.store (gr 2 0)
       ~ts:(r.Durable.last_time + 1)
   with
  | Some v -> checki "t1's value stands" 1 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "t1 lost")

let test_durable_rewrite_same_granule () =
  let path = fresh "hdd_durable_rewrite.log" in
  let db = Durable.create ~path ~partition () in
  let t = Durable.begin_update db ~class_id:2 in
  ok (Durable.write db t (gr 2 0) 1);
  ok (Durable.write db t (gr 2 0) 2);
  Durable.commit db t;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  match
    Store.committed_before r.Durable.store (gr 2 0)
      ~ts:(r.Durable.last_time + 1)
  with
  | Some v -> checki "last write wins after recovery" 2 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "version lost"

let prop_durable_random_recovery =
  QCheck2.Test.make
    ~name:"durable: recovery agrees with the in-memory committed state"
    ~count:25
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Prng.create seed in
      let path = fresh (Printf.sprintf "hdd_durable_rand_%d.log" seed) in
      let db = Durable.create ~path ~partition () in
      let expected : (Granule.t, int) Hashtbl.t = Hashtbl.create 16 in
      for _ = 1 to 40 do
        let cls = Prng.int rng 3 in
        let t = Durable.begin_update db ~class_id:cls in
        let writes =
          List.init
            (1 + Prng.int rng 2)
            (fun _ -> (gr cls (Prng.int rng 3), Prng.int rng 1000))
        in
        let granted =
          List.filter_map
            (fun (g, v) ->
              match Durable.write db t g v with
              | Outcome.Granted () -> Some (g, v)
              | _ -> None)
            writes
        in
        if Prng.int rng 10 < 8 && granted <> [] then begin
          Durable.commit db t;
          List.iter (fun (g, v) -> Hashtbl.replace expected g v) granted
        end
        else Durable.abort db t
      done;
      Durable.close db;
      let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
      Hashtbl.fold
        (fun g v acc ->
          acc
          &&
          match
            Store.committed_before r.Durable.store g
              ~ts:(r.Durable.last_time + 1)
          with
          | Some version -> version.Hdd_mvstore.Chain.value = v
          | None -> false)
        expected true)

let test_checkpoint_compacts_and_preserves () =
  let path = fresh "hdd_durable_ckpt.log" in
  let db = Durable.create ~path ~partition () in
  (* many overwrites of few granules: the log grows, the state does not *)
  for i = 1 to 50 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 (i mod 3)) i);
    Durable.commit db t
  done;
  let size_before = (Unix.stat path).Unix.st_size in
  checki "nothing in flight" 0 (Durable.in_flight db);
  Durable.checkpoint db;
  let size_after = (Unix.stat path).Unix.st_size in
  checkb "log shrank considerably" true (size_after * 4 < size_before);
  (* the database keeps working and appending after the swap *)
  let t = Durable.begin_update db ~class_id:1 in
  let latest = ok (Durable.read db t (gr 2 2)) in
  ok (Durable.write db t (gr 1 0) latest);
  Durable.commit db t;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checkb "intact" true r.Durable.log_intact;
  let read_latest g =
    match
      Store.committed_before r.Durable.store g ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing version"
  in
  checki "latest of granule 0" 48 (read_latest (gr 2 0));
  checki "latest of granule 1" 49 (read_latest (gr 2 1));
  checki "latest of granule 2" 50 (read_latest (gr 2 2));
  checki "post-checkpoint commit present" 50 (read_latest (gr 1 0))

let test_checkpoint_refuses_in_flight () =
  let path = fresh "hdd_durable_ckpt_busy.log" in
  let db = Durable.create ~path ~partition () in
  let t = Durable.begin_update db ~class_id:2 in
  checki "one in flight" 1 (Durable.in_flight db);
  Alcotest.check_raises "refused"
    (Failure "Durable.checkpoint: update transactions in flight") (fun () ->
      Durable.checkpoint db);
  Durable.abort db t;
  Durable.checkpoint db;
  Durable.close db

let test_crash_point_fuzz () =
  (* cut the log at EVERY byte boundary: recovery must never raise, never
     resurrect an uncommitted write, and the committed count must be
     monotone in the cut position *)
  let path = fresh "hdd_durable_fuzz.log" in
  let db = Durable.create ~path ~partition () in
  for i = 1 to 6 do
    let t = Durable.begin_update db ~class_id:2 in
    ok (Durable.write db t (gr 2 (i mod 2)) i);
    if i mod 3 = 0 then Durable.abort db t else Durable.commit db t
  done;
  Durable.close db;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let cut_path = fresh "hdd_durable_fuzz_cut.log" in
  let last_committed = ref 0 in
  for cut = 0 to String.length full do
    Out_channel.with_open_bin cut_path (fun oc ->
        Out_channel.output_string oc (String.sub full 0 cut));
    let r = Durable.recover ~path:cut_path ~segments:3 ~init:(fun _ -> 0) in
    checkb "commits monotone in the prefix" true
      (r.Durable.committed >= !last_committed);
    last_committed := Int.max !last_committed r.Durable.committed
  done;
  checki "the full log recovers every commit" 4 !last_committed

let test_durable_adhoc_logged () =
  let path = fresh "hdd_durable_adhoc.log" in
  let db = Durable.create ~path ~partition () in
  let a = Durable.begin_adhoc_update db ~writes:[ 1; 2 ] ~reads:[] in
  ok (Durable.write db a (gr 2 0) 7);
  ok (Durable.write db a (gr 1 0) 8);
  Durable.commit db a;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  let read_latest g =
    match
      Store.committed_before r.Durable.store g ~ts:(r.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing version"
  in
  checki "adhoc write to D2 recovered" 7 (read_latest (gr 2 0));
  checki "adhoc write to D1 recovered" 8 (read_latest (gr 1 0))

(* --- fault injection through the sink --- *)

let faulty_db ~plan ~path =
  Durable.create ~sync_on_commit:true
    ~sink:(Fault.apply plan (Fault.file_sink ~fsync:false ~path ()))
    ~path ~partition ()

let test_wal_missing_file () =
  let path = fresh "hdd_wal_missing.log" in
  let { Wal.records; complete; bytes_read } = Wal.read_all ~path in
  checkb "missing file is the empty log" true complete;
  checki "no records" 0 (List.length records);
  checki "no bytes" 0 bytes_read;
  (* recovery of a database that was never written: initial state *)
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 42) in
  checkb "intact" true r.Durable.log_intact;
  checki "nothing committed" 0 r.Durable.committed;
  (match
     Store.committed_before r.Durable.store (gr 2 0)
       ~ts:(r.Durable.last_time + 1)
   with
  | Some v -> checki "bootstrap value" 42 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "bootstrap version missing")

(* Crash between the write-append and the commit-append must never
   resurrect the transaction.  The workload logs exactly 7 frames
   (B,W,C for t1; B,W,W,C for t2); crash after every prefix length and
   check that t2's writes appear only once its commit frame is down.
   Note the crash fires while the commit append is still in flight, so
   the ack is returned only if the NEXT frame is also reached: acked
   implies the commit frame is durable, never the converse — at
   crash_at = 7 t2's commit is durable but unacknowledged (the
   "in-flight commit" recovery may keep). *)
let test_flush_ordering_no_resurrection () =
  for crash_at = 1 to 8 do
    let path = fresh "hdd_fault_order.log" in
    let plan = Fault.plan [ Fault.Crash_after_frames crash_at ] in
    let db = faulty_db ~plan ~path in
    let t1_acked = ref false and t2_acked = ref false in
    (try
       let t1 = Durable.begin_update db ~class_id:2 in
       ignore (Durable.write db t1 (gr 2 0) 1);
       Durable.commit db t1;
       t1_acked := true;
       let t2 = Durable.begin_update db ~class_id:2 in
       ignore (Durable.write db t2 (gr 2 1) 2);
       ignore (Durable.write db t2 (gr 2 0) 3);
       Durable.commit db t2;
       t2_acked := true
     with Fault.Crash _ -> ());
    (try Durable.close db with Fault.Crash _ -> ());
    checkb "t1 acked iff a frame beyond its commit went down" (crash_at >= 4)
      !t1_acked;
    checkb "t2 acked iff the crash never fired" (crash_at >= 8) !t2_acked;
    let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
    let latest g =
      match
        Store.committed_before r.Durable.store g
          ~ts:(r.Durable.last_time + 1)
      with
      | Some v -> v.Hdd_mvstore.Chain.value
      | None -> Alcotest.fail "missing version"
    in
    (* everything is deterministic: a txn's values are installed exactly
       when its commit frame (t1: frame 3, t2: frame 7) is durable; a
       write frame without its commit frame never resurrects *)
    let expect_0 = if crash_at >= 7 then 3 else if crash_at >= 3 then 1 else 0
    and expect_1 = if crash_at >= 7 then 2 else 0 in
    checki "granule 0 recovers its committed prefix" expect_0
      (latest (gr 2 0));
    checki "granule 1 recovers its committed prefix" expect_1
      (latest (gr 2 1))
  done

let test_fault_corrupt_mid_log () =
  let path = fresh "hdd_fault_corrupt.log" in
  (* three committed txns, one bit flipped inside the second txn's
     frames: recovery keeps the first, hides the rest, reports damage *)
  let plan = Fault.plan [ Fault.Bit_flip { byte = 130; bit = 4 } ] in
  let db = faulty_db ~plan ~path in
  for i = 1 to 3 do
    let t = Durable.begin_update db ~class_id:2 in
    ignore (Durable.write db t (gr 2 i) i);
    Durable.commit db t
  done;
  Durable.close db;
  checkb "the flip fired" true
    (List.exists
       (function Fault.Bit_flip _ -> true | _ -> false)
       (Fault.fired plan));
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checkb "damage detected" false r.Durable.log_intact;
  checki "only the prefix commit survives" 1 r.Durable.committed;
  (match
     Store.committed_before r.Durable.store (gr 2 1)
       ~ts:(r.Durable.last_time + 1)
   with
  | Some v -> checki "first txn intact" 1 v.Hdd_mvstore.Chain.value
  | None -> Alcotest.fail "first txn lost");
  (* the corrupted txns are hidden entirely, never half-applied *)
  List.iter
    (fun key ->
      match
        Store.committed_before r.Durable.store (gr 2 key)
          ~ts:(r.Durable.last_time + 1)
      with
      | Some v -> checki "corrupted txn hidden" 0 v.Hdd_mvstore.Chain.value
      | None -> ())
    [ 2; 3 ]

let test_double_recovery () =
  let path = fresh "hdd_fault_double.log" in
  (* session 1 tears mid-append; session 2 (on the recovered state)
     crashes whole-frame; session 3 must see both sessions' commits *)
  let plan1 = Fault.plan [ Fault.Torn_write { frame = 4; keep = 10 } ] in
  let db1 = faulty_db ~plan:plan1 ~path in
  (try
     let t1 = Durable.begin_update db1 ~class_id:2 in
     ignore (Durable.write db1 t1 (gr 2 0) 1);
     Durable.commit db1 t1;
     let t2 = Durable.begin_update db1 ~class_id:2 in
     ignore (Durable.write db1 t2 (gr 2 1) 2);
     Durable.commit db1 t2
   with Fault.Crash _ -> ());
  (try Durable.close db1 with Fault.Crash _ -> ());
  let r1 = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checkb "tear detected" false r1.Durable.log_intact;
  checki "session 1 commit recovered" 1 r1.Durable.committed;
  (* resume on the recovery (truncating the torn tail), commit, crash *)
  let plan2 = Fault.plan [ Fault.Crash_after_frames 3 ] in
  let db2 =
    Durable.of_recovery ~sync_on_commit:true
      ~sink:(Fault.apply plan2 (Fault.file_sink ~fsync:false ~path ()))
      ~path ~partition r1
  in
  (try
     let t3 = Durable.begin_update db2 ~class_id:1 in
     ignore (Durable.write db2 t3 (gr 1 0) 33);
     Durable.commit db2 t3;
     let t4 = Durable.begin_update db2 ~class_id:1 in
     ignore (Durable.write db2 t4 (gr 1 1) 44);
     Durable.commit db2 t4
   with Fault.Crash _ -> ());
  (try Durable.close db2 with Fault.Crash _ -> ());
  let r2 = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checki "both sessions' commits recovered" 2 r2.Durable.committed;
  let latest g =
    match
      Store.committed_before r2.Durable.store g ~ts:(r2.Durable.last_time + 1)
    with
    | Some v -> v.Hdd_mvstore.Chain.value
    | None -> Alcotest.fail "missing version"
  in
  checki "session 1's value" 1 (latest (gr 2 0));
  checki "session 2's value" 33 (latest (gr 1 0));
  checkb "session 2's unfinished txn hidden" true (latest (gr 1 1) = 0);
  checkb "clock dominates both sessions" true
    (r2.Durable.last_time >= r1.Durable.last_time)

let test_transient_append_error () =
  let path = fresh "hdd_fault_transient.log" in
  let plan = Fault.plan [ Fault.Append_error { frame = 0 } ] in
  let db = faulty_db ~plan ~path in
  (* the very first begin fails; Durable rolls the scheduler back *)
  (match Durable.begin_update db ~class_id:2 with
  | _ -> Alcotest.fail "append error swallowed"
  | exception Fault.Io_error _ -> ());
  checki "no half-begun transaction" 0 (Durable.in_flight db);
  (* the fault was transient: the next transaction goes through *)
  let t = Durable.begin_update db ~class_id:2 in
  ignore (Durable.write db t (gr 2 0) 9);
  Durable.commit db t;
  Durable.close db;
  let r = Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) in
  checkb "log intact" true r.Durable.log_intact;
  checki "the retried transaction committed" 1 r.Durable.committed

(* Cycle count defaults to 500 and scales up through the environment:
   the nightly CI job runs the same test with HDD_TORTURE_CYCLES=5000. *)
let torture_cycles =
  match Sys.getenv_opt "HDD_TORTURE_CYCLES" with
  | None | Some "" -> 500
  | Some s -> (
    match int_of_string_opt s with
    | Some n when n > 0 -> n
    | _ -> Alcotest.failf "HDD_TORTURE_CYCLES must be a positive int: %S" s)

(* The invariant monitors ride along by default (the "monitor torture
   integration" of the observability PR): any monitor catch counts as a
   cycle violation.  HDD_TORTURE_MONITORS=0 detaches them. *)
let torture_monitors =
  match Sys.getenv_opt "HDD_TORTURE_MONITORS" with
  | Some "0" -> false
  | _ -> true

let test_torture_cycles () =
  let path = fresh "hdd_torture.log" in
  let report =
    Torture.run ~monitors:torture_monitors ~partition ~path
      ~seeds:torture_cycles ()
  in
  (match report.Torture.violating with
  | [] -> ()
  | bad ->
    Alcotest.failf "%a" Torture.pp_report { report with Torture.violating = bad });
  checki "all cycles ran" torture_cycles report.Torture.cycles;
  (* the fault mix is seed-dependent; scale expectations with the count *)
  checkb "crashes actually fired" true
    (report.Torture.crashes > torture_cycles / 5);
  checkb "corruption actually fired" true
    (report.Torture.corruptions > torture_cycles / 25);
  checkb "work was acknowledged" true
    (report.Torture.acknowledged > torture_cycles * 2);
  checkb "work was recovered" true (report.Torture.recovered > 0)

let suite =
  [ Alcotest.test_case "codec: roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec: truncation" `Quick test_codec_truncation;
    Alcotest.test_case "codec: corruption" `Quick test_codec_corruption;
    QCheck_alcotest.to_alcotest prop_codec_random;
    Alcotest.test_case "wal: roundtrip" `Quick test_wal_roundtrip;
    Alcotest.test_case "wal: torn tail" `Quick test_wal_torn_tail;
    Alcotest.test_case "wal: sessions append" `Quick test_wal_append_across_sessions;
    QCheck_alcotest.to_alcotest prop_wal_truncation_boundary;
    QCheck_alcotest.to_alcotest prop_wal_bitflip;
    Alcotest.test_case "durable: crash and recover" `Quick test_durable_crash_recovery;
    Alcotest.test_case "durable: torn commit loses the txn" `Quick test_durable_torn_commit_loses_transaction;
    Alcotest.test_case "durable: rewrite same granule" `Quick test_durable_rewrite_same_granule;
    Alcotest.test_case "durable: checkpoint compacts" `Quick test_checkpoint_compacts_and_preserves;
    Alcotest.test_case "durable: checkpoint refuses in-flight" `Quick test_checkpoint_refuses_in_flight;
    Alcotest.test_case "durable: crash-point fuzz" `Quick test_crash_point_fuzz;
    Alcotest.test_case "durable: ad-hoc transactions logged" `Quick test_durable_adhoc_logged;
    QCheck_alcotest.to_alcotest prop_durable_random_recovery;
    Alcotest.test_case "wal: missing file recovers empty" `Quick test_wal_missing_file;
    Alcotest.test_case "fault: write/commit flush ordering" `Quick test_flush_ordering_no_resurrection;
    Alcotest.test_case "fault: corruption mid-log" `Quick test_fault_corrupt_mid_log;
    Alcotest.test_case "fault: double recovery" `Quick test_double_recovery;
    Alcotest.test_case "fault: transient append error" `Quick test_transient_append_error;
    Alcotest.test_case
      (Printf.sprintf "torture: %d crash/recover cycles" torture_cycles)
      `Slow test_torture_cycles ]
