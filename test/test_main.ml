let () =
  Alcotest.run "hdd"
    [ ("util", Test_util.suite);
      ("digraph", Test_digraph.suite);
      ("txn", Test_txn.suite);
      ("mvstore", Test_mvstore.suite);
      ("partition", Test_partition.suite);
      ("activity", Test_activity.suite);
      ("certifier", Test_certifier.suite);
      ("scheduler", Test_scheduler.suite);
      ("baselines", Test_baselines.suite);
      ("sim", Test_sim.suite);
      ("extensions", Test_extensions.suite);
      ("check", Test_check.suite);
      ("hotpath", Test_hotpath.suite);
      ("storage", Test_storage.suite);
      ("obs", Test_obs.suite);
      ("benchkit", Test_benchkit.suite);
      ("runtime", Test_runtime.suite);
      ("shard", Test_shard.suite);
      ("adapt", Test_adapt.suite);
      ("hybrid", Test_hybrid.suite);
      ("workload", Test_workload.suite) ]
