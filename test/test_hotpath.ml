(* Properties guarding the hot-path machinery: the incremental registry
   index against the reference scans, the precomputed partition matrices
   against the per-call searches, and — the §7.3 safety property — that
   garbage collection never removes a version any admissible read could
   still be served: running identical schedules with collection at every
   opportunity and with collection off must produce identical outcomes,
   step for step. *)

module Partition = Hdd_core.Partition
module Scheduler = Hdd_core.Scheduler
module Explore = Hdd_check.Explore
module Gen = Hdd_check.Gen
module Adapters = Hdd_sim.Adapters
module Controller = Hdd_sim.Controller
module Store = Hdd_mvstore.Store
module Prng = Hdd_util.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- registry: incremental index vs the linear scans --- *)

let prop_registry_matches_scan =
  QCheck2.Test.make
    ~name:"registry: incremental i_old/c_late equal the reference scans"
    ~count:300
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      let classes = 1 + Prng.int g 3 in
      let reg = Registry.create ~classes () in
      let clock = ref 0 in
      let tick () =
        incr clock;
        !clock
      in
      let active = ref [] in
      let next_id = ref 1 in
      let floor = ref 0 in  (* smallest reliable query point after prune *)
      let ok = ref true in
      let check_queries () =
        for cls = 0 to classes - 1 do
          for _ = 1 to 3 do
            let at = !floor + Prng.int g (!clock - !floor + 2) in
            if
              Registry.i_old reg ~class_id:cls ~at
              <> Registry.i_old_scan reg ~class_id:cls ~at
            then ok := false;
            if
              Registry.c_late reg ~class_id:cls ~at
              <> Registry.c_late_scan reg ~class_id:cls ~at
            then ok := false
          done
        done
      in
      for _step = 1 to 60 do
        match Prng.int g 6 with
        | 0 | 1 ->
          let cls = Prng.int g classes in
          let txn =
            Txn.make ~id:!next_id ~kind:(Txn.Update cls) ~init:(tick ())
          in
          incr next_id;
          Registry.register reg txn;
          active := txn :: !active
        | 2 ->
          (* ad-hoc style: one transaction joins several classes *)
          let txn =
            Txn.make ~id:!next_id ~kind:(Txn.Update 0) ~init:(tick ())
          in
          incr next_id;
          for cls = 0 to classes - 1 do
            if cls = 0 || Prng.bool g then
              Registry.register_in reg ~class_id:cls txn
          done;
          active := txn :: !active
        | 3 when !active <> [] ->
          let txn = Prng.pick g (Array.of_list !active) in
          (if Prng.bool g then Txn.commit txn ~at:(tick ())
           else Txn.abort txn ~at:(tick ()));
          active := List.filter (fun t -> t != txn) !active
        | 4 when Prng.int g 3 = 0 ->
          let upto = Prng.int g (!clock + 1) in
          Registry.prune reg ~upto;
          floor := Int.max !floor upto
        | _ -> check_queries ()
      done;
      check_queries ();
      !ok)

(* --- partition: precomputed matrices vs the per-call searches --- *)

let prop_partition_matrices_match_search =
  QCheck2.Test.make
    ~name:"partition: CP/UCP matrices equal the path searches" ~count:200
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let g = Prng.create seed in
      let p = Partition.build_exn (Gen.tst_spec g) in
      let n = Partition.segment_count p in
      let ok = ref true in
      for i = -1 to n do
        for j = -1 to n do
          if Partition.critical_path p i j <> Partition.critical_path_search p i j
          then ok := false;
          if Partition.ucp p i j <> Partition.ucp_search p i j then
            ok := false
        done
      done;
      (* lowest classes come straight from the reduction *)
      let lowest_ref =
        List.filter
          (fun i -> Hdd_graph.Digraph.pred p.Partition.reduction i = [])
          (Hdd_graph.Digraph.nodes p.Partition.reduction)
      in
      if
        List.sort compare (Partition.lowest_classes p)
        <> List.sort compare lowest_ref
      then ok := false;
      !ok)

(* --- GC safety (§7.3): collection must be invisible to every read --- *)

(* Append a read-only sweep of every granule so released walls are
   exercised against collected chains too. *)
let with_ro_sweep (wl : Explore.workload) =
  let n = Partition.segment_count wl.Explore.partition in
  let ops =
    List.concat
      (List.init n (fun s ->
           List.init 2 (fun key ->
               Explore.Read (Granule.make ~segment:s ~key))))
  in
  { wl with
    Explore.progs =
      wl.Explore.progs
      @ [ { Explore.label = "sweep"; kind = Controller.Read_only; ops } ] }

let hdd_gc_system ~gc =
  { Explore.sys_name = (if gc then "HDD+gc" else "HDD-nogc");
    build =
      (fun ~log wl ->
        let ctrl, _, _ =
          if gc then
            Adapters.hdd_detailed ~log ~wall_every_commits:2
              ~gc_every_commits:1 ~gc_on_wall:true
              ~partition:wl.Explore.partition ~init:wl.Explore.init ()
          else
            Adapters.hdd_detailed ~log ~wall_every_commits:2
              ~gc_on_wall:false ~partition:wl.Explore.partition
              ~init:wl.Explore.init ()
        in
        ctrl) }

let collected_reject (e : Explore.event) =
  match e.Explore.ev_outcome with
  | `Rejected why ->
    why = "snapshot version collected"
    || why = "version collected past timestamp"
  | _ -> false

let prop_gc_never_breaks_reads =
  QCheck2.Test.make
    ~name:"scheduler: GC at every opportunity changes no outcome"
    ~count:1000
    QCheck2.Gen.(int_range 0 1000000)
    (fun seed ->
      let g = Prng.create seed in
      let wl = with_ro_sweep (Gen.workload ~adhoc:(seed mod 4 = 0) g) in
      let schedule = Gen.schedule g wl in
      let a = Explore.run_schedule (hdd_gc_system ~gc:true) wl schedule in
      let b = Explore.run_schedule (hdd_gc_system ~gc:false) wl schedule in
      a.Explore.t_events <> []
      && a.Explore.t_schedule = b.Explore.t_schedule
      && a.Explore.t_events = b.Explore.t_events
      && a.Explore.t_committed = b.Explore.t_committed
      && a.Explore.t_aborted = b.Explore.t_aborted
      && a.Explore.t_deadlock = b.Explore.t_deadlock
      && a.Explore.t_verdict.Hdd_core.Certifier.serializable
         = b.Explore.t_verdict.Hdd_core.Certifier.serializable
      && not (List.exists collected_reject a.Explore.t_events))

(* --- unit checks for the wall-driven collection plumbing --- *)

let test_gc_wall_trims_per_segment () =
  let store = Store.create ~segments:2 ~init:(fun _ -> 0) in
  let fill seg =
    let gr = Granule.make ~segment:seg ~key:0 in
    for ts = 1 to 10 do
      ignore (Store.install store gr ~ts ~writer:ts ~value:ts);
      Store.commit_version store gr ~ts
    done
  in
  fill 0;
  fill 1;
  (* segment 0 may be trimmed to ts 9; segment 1 must keep everything
     below threshold 1 (only the bootstrap version is below it) *)
  let dropped = Store.gc_wall store ~wall:[| 10; 1 |] in
  checkb "dropped from segment 0 only" true (dropped > 0);
  let len seg =
    Hdd_mvstore.Achain.length
      (Store.chain store (Granule.make ~segment:seg ~key:0))
  in
  checkb "segment 0 trimmed" true (len 0 < 11);
  checki "segment 1 untouched" 11 (len 1);
  (* reads above each threshold still served *)
  (match Store.committed_before store (Granule.make ~segment:0 ~key:0) ~ts:10 with
  | Some v -> checki "snapshot at 10 survives" 9 v.Hdd_mvstore.Chain.ts
  | None -> Alcotest.fail "segment 0 snapshot lost");
  (match Store.committed_before store (Granule.make ~segment:1 ~key:0) ~ts:1 with
  | Some v -> checki "bootstrap survives" 0 v.Hdd_mvstore.Chain.ts
  | None -> Alcotest.fail "segment 1 bootstrap lost");
  Alcotest.check_raises "vector length checked"
    (Invalid_argument "Store.gc_wall: threshold vector length mismatch")
    (fun () -> ignore (Store.gc_wall store ~wall:[| 1 |]))

let test_watermark_vector_floor_is_scalar () =
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:3 ~init:(fun _ -> 0) in
  let s =
    Scheduler.create ~partition:Fixtures.inventory ~clock ~store ()
  in
  (* a straggler in class 0 pins low segments but not the root of 2 *)
  let old0 = Scheduler.begin_update s ~class_id:0 in
  for i = 1 to 5 do
    let t = Scheduler.begin_update s ~class_id:2 in
    ignore (Scheduler.write s t (Granule.make ~segment:2 ~key:0) i);
    Scheduler.commit s t
  done;
  let vec = Scheduler.gc_watermark_vector s in
  checki "vector has one component per segment" 3 (Array.length vec);
  checki "floor equals the scalar watermark"
    (Array.fold_left Time.min vec.(0) vec)
    (Scheduler.gc_watermark s);
  Scheduler.commit s old0

let suite =
  [ QCheck_alcotest.to_alcotest prop_registry_matches_scan;
    QCheck_alcotest.to_alcotest prop_partition_matrices_match_search;
    QCheck_alcotest.to_alcotest prop_gc_never_breaks_reads;
    Alcotest.test_case "store: gc_wall trims per segment" `Quick
      test_gc_wall_trims_per_segment;
    Alcotest.test_case "scheduler: watermark vector floors the scalar"
      `Quick test_watermark_vector_floor_is_scalar ]
