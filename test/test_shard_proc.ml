(* Process-mode shard runs in their own executable: OCaml 5 refuses
   Unix.fork in a process that has ever spawned domains, and the main
   test binary's multicore suites do.  Everything here forks before any
   domain exists. *)

module Sh = Hdd_shard
module D = Hdd_runtime.Differential

let ok_or_fail what (r : D.report) =
  if not (D.ok r) then
    Alcotest.failf "%s: oracle rejected the run:@.%a" what D.pp_report r

let test_processes_smoke () =
  let r =
    Sh.Shard_diff.stress_one ~mode:`Processes ~seed:5 ~shards:2 ~txns:20
      ~profile:D.Mixed ()
  in
  ok_or_fail "process mode seed 5" r;
  Alcotest.(check bool) "made progress" true (r.D.r_committed > 0)

let test_processes_four_shards () =
  let r =
    Sh.Shard_diff.stress_one ~mode:`Processes ~seed:8 ~shards:4 ~txns:24
      ~profile:D.Adhoc_read ()
  in
  ok_or_fail "process mode seed 8 @ 4 shards" r

let () =
  Alcotest.run "hdd-shard-proc"
    [ ( "processes",
        [ Alcotest.test_case "2-shard fork smoke" `Slow test_processes_smoke;
          Alcotest.test_case "4-shard fork run" `Slow
            test_processes_four_shards ] ) ]
