module Trace = Hdd_obs.Trace

(* Per-class contention signals over a sliding window of finished update
   transactions, folded from the live trace stream.  The window is
   global (like {!Hdd_adapt.Drift}): one ring of the last [window]
   finished update transactions, with per-class running aggregates so a
   query is O(1). *)

type agg = {
  mutable finished : int;
  mutable aborted : int;
  mutable reads : int;
  mutable writes : int;
}

type live = {
  l_class : int;
  mutable l_reads : int;
  mutable l_writes : int;
}

type entry = { e_class : int; e_aborted : bool; e_reads : int; e_writes : int }

type t = {
  window : int;
  classes : int;
  aggs : agg array;
  live : (int, live) Hashtbl.t;  (* txn id -> in-flight op counts *)
  ring : entry array;
  mutable head : int;  (* next slot to overwrite *)
  mutable filled : int;
}

let dummy = { e_class = -1; e_aborted = false; e_reads = 0; e_writes = 0 }

let create ?(window = 256) ~classes () =
  if window <= 0 then invalid_arg "Contention: window must be > 0";
  { window;
    classes;
    aggs =
      Array.init classes (fun _ ->
          { finished = 0; aborted = 0; reads = 0; writes = 0 });
    live = Hashtbl.create 64;
    ring = Array.make window dummy;
    head = 0;
    filled = 0 }

let evict t =
  if t.filled = t.window then begin
    let e = t.ring.(t.head) in
    if e.e_class >= 0 && e.e_class < t.classes then begin
      let a = t.aggs.(e.e_class) in
      a.finished <- a.finished - 1;
      if e.e_aborted then a.aborted <- a.aborted - 1;
      a.reads <- a.reads - e.e_reads;
      a.writes <- a.writes - e.e_writes
    end;
    t.filled <- t.filled - 1
  end

let push t e =
  evict t;
  t.ring.(t.head) <- e;
  t.head <- (t.head + 1) mod t.window;
  t.filled <- t.filled + 1;
  if e.e_class >= 0 && e.e_class < t.classes then begin
    let a = t.aggs.(e.e_class) in
    a.finished <- a.finished + 1;
    if e.e_aborted then a.aborted <- a.aborted + 1;
    a.reads <- a.reads + e.e_reads;
    a.writes <- a.writes + e.e_writes
  end

let finish t id ~aborted =
  match Hashtbl.find_opt t.live id with
  | None -> ()
  | Some l ->
    Hashtbl.remove t.live id;
    push t
      { e_class = l.l_class; e_aborted = aborted; e_reads = l.l_reads;
        e_writes = l.l_writes }

let feed t (r : Trace.record) =
  match r.Trace.ev with
  | Trace.Begin { txn; kind = Trace.Update cls; _ } ->
    Hashtbl.replace t.live txn { l_class = cls; l_reads = 0; l_writes = 0 }
  | Trace.Begin _ -> ()
  | Trace.Read { txn; _ } -> (
    match Hashtbl.find_opt t.live txn with
    | Some l -> l.l_reads <- l.l_reads + 1
    | None -> ())
  | Trace.Write { txn; _ } -> (
    match Hashtbl.find_opt t.live txn with
    | Some l -> l.l_writes <- l.l_writes + 1
    | None -> ())
  | Trace.Commit { txn; _ } -> finish t txn ~aborted:false
  | Trace.Abort { txn; _ } -> finish t txn ~aborted:true
  | _ -> ()

let observe t records = List.iter (feed t) records
let attach t trace = Trace.subscribe trace (feed t)

let finished t ~class_id = t.aggs.(class_id).finished

let abort_rate t ~class_id =
  let a = t.aggs.(class_id) in
  if a.finished = 0 then 0.
  else float_of_int a.aborted /. float_of_int a.finished

let write_share t ~class_id =
  let a = t.aggs.(class_id) in
  let ops = a.reads + a.writes in
  if ops = 0 then 0. else float_of_int a.writes /. float_of_int ops

let window_finished t =
  Array.fold_left (fun acc a -> acc + a.finished) 0 t.aggs

let hottest t =
  let best = ref (-1) and best_rate = ref 0. in
  for c = 0 to t.classes - 1 do
    let r = abort_rate t ~class_id:c in
    if t.aggs.(c).finished > 0 && (!best < 0 || r > !best_rate) then begin
      best := c;
      best_rate := r
    end
  done;
  if !best < 0 then None else Some (!best, !best_rate)
