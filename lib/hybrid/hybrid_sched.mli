(** Adaptive hybrid concurrency control (DESIGN.md §18): the HDD
    scheduler with per-class escalation to commit-order serialization.

    A non-escalated class runs exactly as in {!Hdd_core.Scheduler} —
    Protocol B on its root segment, lock-free Protocol A cross-reads,
    versions stamped at initiation.  An {e escalated} class runs its
    root-segment operations under prudent-precedence ordering
    ({!Hdd_baselines.Prudent}): reads never wait and take the latest
    committed version while recording a precedence edge against any
    pending overwriter, writes take an exclusive deferred slot, and the
    commit point itself waits ({!try_commit}) until every recorded
    predecessor has finished.  Escalated write sets are installed at a
    single fresh {e commit} stamp, so the class trades MVTO's
    late-write rejections for commit-waits — the right trade once the
    abort rate under contention exceeds the cost of waiting.

    {b Eligibility.}  Only classes whose declared read set lies inside
    their own root segment ({!eligible_classes}) may escalate.  For
    such a class every composed Protocol A threshold and every wall
    component observed by other transactions is at most the initiation
    of any active escalated transaction — strictly below its commit
    stamp — so cross-class readers and read-only walls never observe a
    partially escalated cut, and the four-check differential oracle
    holds across mode flips.

    {b Mode flips.}  {!request_modes} validates and stages a target
    mode vector; it applies at the first transaction boundary where no
    update transaction of any {e changing} class is in flight, emitting
    one {!Hdd_obs.Trace.event.Escalation} record — the drain condition
    the monitor's escalation invariant replays.

    The module owns its clock and store (like the engine, unlike the
    bare scheduler) because commit stamps and mode flips must tick the
    same clock the scheduler stamps initiations from. *)

type t

val create :
  ?log:Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  ?wall_every_commits:int ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  unit ->
  t

val eligible_classes : Hdd_core.Partition.t -> bool array
(** [eligible_classes p].(c) is true when class [c]'s declared read set
    lies inside its own root segment, i.e. commit-stamp escalation is
    sound for it (see module preamble). *)

val scheduler : t -> int Hdd_core.Scheduler.t
(** The underlying HDD scheduler (for walls, GC, registry, metrics). *)

val modes : t -> int array
(** Current applied mode vector (a copy): 0 = plain HDD, 1 = escalated. *)

val eligible : t -> bool array
(** {!eligible_classes} of the partition (a copy). *)

val pending : t -> int array option
(** The staged-but-not-yet-drained target vector, if any. *)

val escalations : t -> int
(** Applied mode flips so far — the [seq] of the last Escalation record. *)

val escalated : t -> int -> bool
(** [escalated t cls] — is class [cls] currently escalated? *)

val request_modes : t -> int array -> unit
(** Stage a target mode vector; applies lazily at the next drained
    transaction boundary (see module preamble).
    @raise Invalid_argument on wrong length, entries outside [{0,1}],
    or a 1 for an ineligible class. *)

val begin_update : t -> class_id:int -> Txn.t
val begin_read_only : t -> Txn.t

val begin_adhoc_update : t -> writes:int list -> reads:int list -> Txn.t
(** @raise Invalid_argument when the declared access sets touch an
    escalated class — ad-hoc transactions bypass the class analysis the
    escalation soundness argument leans on, so they are refused while
    any segment they name is escalated. *)

val read : t -> Txn.t -> Granule.t -> int Hdd_core.Outcome.t
val write : t -> Txn.t -> Granule.t -> int -> unit Hdd_core.Outcome.t

val try_commit : t -> Txn.t -> unit Hdd_core.Outcome.t
(** Commit admission: [Granted] for plain transactions, and for
    escalated ones exactly when every recorded predecessor has
    finished; [Blocked live] otherwise.  The driver parks and re-polls,
    breaking commit-wait cycles like it does for
    {!Hdd_baselines.Prudent}. *)

val commit : t -> Txn.t -> unit
val abort : t -> Txn.t -> unit

val controller : t -> Hdd_sim.Controller.t
(** The simulator face, name ["Hybrid"], with [try_commit] wired. *)

val auto :
  ?contention_window:int ->
  ?policy:Policy.config ->
  ?decide_every:int ->
  t ->
  trace:Hdd_obs.Trace.t ->
  Hdd_sim.Controller.t * Contention.t * Policy.t
(** The closed adaptive loop: a {!Contention} fold attached to [trace],
    a {!Policy} over the eligible classes, and the {!controller}
    wrapped so that every [decide_every] (default 16) finished
    transactions the policy decides and any change is staged via
    {!request_modes}.  The trace passed here must be the same one the
    hybrid emits to, or the policy watches someone else's workload. *)
