type config = {
  escalate_above : float;
  deescalate_below : float;
  min_finished : int;
  hold : int;
  cooldown : int;
}

let default_config =
  { escalate_above = 0.25;
    deescalate_below = 0.05;
    min_finished = 16;
    hold = 2;
    cooldown = 8 }

type t = {
  cfg : config;
  eligible : bool array;
  modes : int array;
  streak : int array;  (* consecutive decisions pushing the class over *)
  mutable since_flip : int;  (* decisions since the last mode change *)
  mutable flips : int;
}

let create ?(config = default_config) ~eligible () =
  { cfg = config;
    eligible = Array.copy eligible;
    modes = Array.make (Array.length eligible) 0;
    streak = Array.make (Array.length eligible) 0;
    since_flip = max_int / 2;
    flips = 0 }

let modes t = Array.copy t.modes
let flips t = t.flips

(* One decision over the current contention window.  A class escalates
   after [hold] consecutive decisions find its abort rate at or above
   [escalate_above] (with at least [min_finished] attempts measured),
   and de-escalates symmetrically below [deescalate_below] — the gap
   between the two thresholds plus [cooldown] decisions between flips
   is the hysteresis that keeps the policy from thrashing when
   escalation itself removes the aborts it reacted to. *)
let decide t contention =
  t.since_flip <- t.since_flip + 1;
  let changed = ref false in
  Array.iteri
    (fun c el ->
      if el then begin
        let n = Contention.finished contention ~class_id:c in
        let rate = Contention.abort_rate contention ~class_id:c in
        let wants =
          if t.modes.(c) = 0 then
            n >= t.cfg.min_finished && rate >= t.cfg.escalate_above
          else n >= t.cfg.min_finished && rate <= t.cfg.deescalate_below
        in
        if wants then t.streak.(c) <- t.streak.(c) + 1
        else t.streak.(c) <- 0;
        if t.streak.(c) >= t.cfg.hold && t.since_flip >= t.cfg.cooldown
        then begin
          t.modes.(c) <- 1 - t.modes.(c);
          t.streak.(c) <- 0;
          changed := true
        end
      end)
    t.eligible;
  if !changed then begin
    t.since_flip <- 0;
    t.flips <- t.flips + 1;
    Some (Array.copy t.modes)
  end
  else None
