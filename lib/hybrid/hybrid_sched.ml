module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
module Scheduler = Hdd_core.Scheduler
module P = Hdd_core.Partition
module T = Hdd_obs.Trace
open Hdd_core.Outcome

(* Adaptive hybrid CC (DESIGN.md §18): the HDD scheduler runs every
   class as usual, but a class under contention can be escalated to
   commit-order serialization — prudent-precedence ordering on its root
   segment, versions stamped at commit instead of initiation.  Only
   root-only-eligible classes (declared read set inside the own root
   segment) may escalate: for those, every composed Protocol A
   threshold and every wall component is at most the initiation of any
   active escalated transaction, which is strictly below its commit
   stamp, so cross-class readers and read-only walls never see a
   half-escalated cut.  Mode flips apply lazily, when the changed
   classes have drained, and emit {!Hdd_obs.Trace.event.Escalation}. *)

type gstate = {
  mutable writer : Txn.id option;
  mutable readers : Txn.id list;
}

type est = {
  e_txn : Txn.t;
  e_cls : int;
  mutable e_reads : Granule.t list;
  mutable e_writes : Granule.t list;
  mutable e_buffer : (Granule.t * int) list;
  mutable e_preds : Txn.id list;
}

type xmetrics = {
  mutable x_reads : int;
  mutable x_writes : int;
  mutable x_read_registrations : int;
  mutable x_blocks : int;
  mutable x_rejects : int;
}

type t = {
  sched : int Scheduler.t;
  store : int Store.t;
  clock : Time.Clock.clock;
  partition : P.t;
  trace : T.t option;
  log : Sched_log.t option;
  eligible : bool array;
  modes : int array;
  mutable pending : int array option;
  mutable esc_seq : int;
  active : int array;  (* active update transactions per class *)
  granules : gstate Granule.Tbl.t;
  states : (Txn.id, est) Hashtbl.t;
  xm : xmetrics;
}

let eligible_classes partition =
  let n = P.segment_count partition in
  Array.init n (fun c ->
      let ok = ref true in
      for s = 0 to n - 1 do
        if s <> c && P.may_read partition ~class_id:c ~segment:s then
          ok := false
      done;
      !ok)

let create ?log ?trace ?wall_every_commits ~partition ~init () =
  let clock = Time.Clock.create () in
  let store = Store.create ~segments:(P.segment_count partition) ~init in
  let sched =
    Scheduler.create ?log ?trace ?wall_every_commits ~partition ~clock ~store
      ()
  in
  { sched;
    store;
    clock;
    partition;
    trace;
    log;
    eligible = eligible_classes partition;
    modes = Array.make (P.segment_count partition) 0;
    pending = None;
    esc_seq = 0;
    active = Array.make (P.segment_count partition) 0;
    granules = Granule.Tbl.create 256;
    states = Hashtbl.create 64;
    xm =
      { x_reads = 0; x_writes = 0; x_read_registrations = 0; x_blocks = 0;
        x_rejects = 0 } }

let scheduler t = t.sched
let modes t = Array.copy t.modes
let eligible t = Array.copy t.eligible
let escalations t = t.esc_seq
let pending t = match t.pending with Some p -> Some (Array.copy p) | None -> None
let escalated t cls = t.modes.(cls) <> 0

let emit t ev =
  match t.trace with
  | Some tr -> T.emit tr ~at:(Time.Clock.tick t.clock) ev
  | None -> ()

(* Apply a pending mode vector once every changed class has drained.
   Callers sit at transaction boundaries (begin/commit/abort), never
   inside a trace fan-out, so the Escalation record is emitted at a
   clean point: no update transaction of a changing class in flight —
   the monitor's escalation invariant. *)
let apply_pending t =
  match t.pending with
  | None -> false
  | Some target ->
    let drained = ref true in
    Array.iteri
      (fun c m -> if m <> t.modes.(c) && t.active.(c) > 0 then drained := false)
      target;
    if not !drained then false
    else begin
      Array.blit target 0 t.modes 0 (Array.length target);
      t.pending <- None;
      t.esc_seq <- t.esc_seq + 1;
      emit t (T.Escalation { seq = t.esc_seq; modes = Array.to_list t.modes });
      true
    end

let request_modes t target =
  if Array.length target <> Array.length t.modes then
    invalid_arg "Hybrid_sched.request_modes: vector length";
  Array.iteri
    (fun c m ->
      if m <> 0 && m <> 1 then
        invalid_arg "Hybrid_sched.request_modes: modes are 0 or 1";
      if m = 1 && not t.eligible.(c) then
        invalid_arg
          (Printf.sprintf
             "Hybrid_sched.request_modes: class %d reads outside its root \
              segment and may not escalate"
             c))
    target;
  t.pending <- Some (Array.copy target);
  ignore (apply_pending t)

let class_of (txn : Txn.t) =
  match txn.Txn.kind with Txn.Update c -> Some c | _ -> None

let begin_update t ~class_id =
  ignore (apply_pending t);
  let txn = Scheduler.begin_update t.sched ~class_id in
  t.active.(class_id) <- t.active.(class_id) + 1;
  if t.modes.(class_id) <> 0 then
    Hashtbl.replace t.states txn.Txn.id
      { e_txn = txn; e_cls = class_id; e_reads = []; e_writes = [];
        e_buffer = []; e_preds = [] };
  txn

let begin_read_only t = Scheduler.begin_read_only t.sched

let begin_adhoc_update t ~writes ~reads =
  List.iter
    (fun s ->
      if s >= 0 && s < Array.length t.modes && t.modes.(s) <> 0 then
        invalid_arg
          (Printf.sprintf
             "Hybrid_sched: ad-hoc transaction touches escalated class %d" s))
    (writes @ reads);
  Scheduler.begin_adhoc_update t.sched ~writes ~reads

let gstate_of t g =
  match Granule.Tbl.find_opt t.granules g with
  | Some s -> s
  | None ->
    let s = { writer = None; readers = [] } in
    Granule.Tbl.add t.granules g s;
    s

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

let add_pred st id =
  if not (List.mem id st.e_preds) then st.e_preds <- id :: st.e_preds

let buffered st g =
  List.find_map
    (fun (g', v) -> if Granule.equal g g' then Some v else None)
    st.e_buffer

(* Escalated root-segment read: never waits — the latest committed
   version, with a precedence edge recorded against any pending
   overwriter (the writer now commit-waits for us).  The Read record
   carries threshold = version + 1: nothing committed can sit between a
   latest-committed version and its successor timestamp, which is the
   shape the monitor's invariant 3 checks. *)
let esc_read t st g =
  let id = st.e_txn.Txn.id in
  t.xm.x_reads <- t.xm.x_reads + 1;
  match buffered st g with
  | Some v -> Granted v
  | None ->
    let gs = gstate_of t g in
    (match gs.writer with
    | Some w when w <> id -> (
      match Hashtbl.find_opt t.states w with
      | Some wst -> add_pred wst id
      | None -> ())
    | _ -> ());
    if not (List.mem id gs.readers) then begin
      gs.readers <- id :: gs.readers;
      st.e_reads <- g :: st.e_reads;
      t.xm.x_read_registrations <- t.xm.x_read_registrations + 1
    end;
    (match Store.latest_committed t.store g with
    | Some v ->
      log_read t ~txn:id ~granule:g ~version:v.Chain.ts;
      emit t
        (T.Read
           { txn = id; protocol = T.B; segment = g.Granule.segment;
             key = g.Granule.key; threshold = v.Chain.ts + 1;
             version = v.Chain.ts });
      Granted v.Chain.value
    | None ->
      t.xm.x_rejects <- t.xm.x_rejects + 1;
      Rejected "no committed version")

let esc_write t st g value =
  let id = st.e_txn.Txn.id in
  t.xm.x_writes <- t.xm.x_writes + 1;
  let gs = gstate_of t g in
  match gs.writer with
  | Some w when w <> id ->
    t.xm.x_blocks <- t.xm.x_blocks + 1;
    emit t
      (T.Block
         { txn = id; protocol = T.B; segment = g.Granule.segment;
           key = g.Granule.key; on = [ w ] });
    Blocked [ w ]
  | Some _ ->
    st.e_buffer <- (g, value) :: List.remove_assoc g st.e_buffer;
    Granted ()
  | None ->
    gs.writer <- Some id;
    st.e_writes <- g :: st.e_writes;
    List.iter (fun r -> if r <> id then add_pred st r) gs.readers;
    st.e_buffer <- (g, value) :: List.remove_assoc g st.e_buffer;
    Granted ()

let read t txn g =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some st when g.Granule.segment = st.e_cls -> esc_read t st g
  | _ -> Scheduler.read t.sched txn g

let write t txn g value =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some st when g.Granule.segment = st.e_cls -> esc_write t st g value
  | _ -> Scheduler.write t.sched txn g value

(* The commit-point admission check the driver polls: an escalated
   transaction may commit only once every recorded predecessor has
   finished.  Plain transactions are always admissible — the scheduler
   already enforced everything at operation time. *)
let try_commit t txn =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | None -> Granted ()
  | Some st ->
    let live = List.filter (Hashtbl.mem t.states) st.e_preds in
    if live = [] then Granted ()
    else begin
      t.xm.x_blocks <- t.xm.x_blocks + 1;
      Blocked live
    end

let release t st =
  let id = st.e_txn.Txn.id in
  List.iter
    (fun g ->
      let gs = gstate_of t g in
      gs.readers <- List.filter (fun r -> r <> id) gs.readers)
    st.e_reads;
  List.iter
    (fun g ->
      let gs = gstate_of t g in
      match gs.writer with Some w when w = id -> gs.writer <- None | _ -> ())
    st.e_writes;
  Hashtbl.remove t.states id

let finish_active t txn =
  match class_of txn with
  | Some c -> t.active.(c) <- t.active.(c) - 1
  | None -> ()

let commit t txn =
  (match Hashtbl.find_opt t.states txn.Txn.id with
  | Some st ->
    (* version order = commit order: one fresh stamp for the whole
       write set, strictly above every active initiation — invisible
       to every outstanding threshold and wall by construction *)
    let stamp = Time.Clock.tick t.clock in
    List.iter
      (fun (g, value) ->
        ignore (Store.install t.store g ~ts:stamp ~writer:txn.Txn.id ~value);
        Store.commit_version t.store g ~ts:stamp;
        log_write t ~txn:txn.Txn.id ~granule:g ~version:stamp;
        emit t
          (T.Write
             { txn = txn.Txn.id; segment = g.Granule.segment;
               key = g.Granule.key; ts = stamp }))
      (List.rev st.e_buffer);
    release t st
  | None -> ());
  Scheduler.commit t.sched txn;
  finish_active t txn;
  ignore (apply_pending t)

let abort t txn =
  (match Hashtbl.find_opt t.states txn.Txn.id with
  | Some st -> release t st (* nothing installed: the buffer just drops *)
  | None -> ());
  Scheduler.abort t.sched txn;
  finish_active t txn;
  ignore (apply_pending t)

(* --- the simulator face --- *)

let snapshot t () : Hdd_sim.Controller.counters =
  let m = Scheduler.metrics t.sched in
  { begins = m.Scheduler.begins;
    commits = m.Scheduler.commits;
    aborts = m.Scheduler.aborts;
    reads =
      m.Scheduler.reads_a + m.Scheduler.reads_b + m.Scheduler.reads_c
      + t.xm.x_reads;
    writes = m.Scheduler.writes + t.xm.x_writes;
    read_registrations = m.Scheduler.read_registrations
                         + t.xm.x_read_registrations;
    blocks = m.Scheduler.blocks + t.xm.x_blocks;
    rejects = m.Scheduler.rejects + t.xm.x_rejects }

let controller t : Hdd_sim.Controller.t =
  { name = "Hybrid";
    begin_txn =
      (function
      | Hdd_sim.Controller.Update class_id -> begin_update t ~class_id
      | Hdd_sim.Controller.Read_only -> begin_read_only t
      | Hdd_sim.Controller.Adhoc { writes; reads } ->
        begin_adhoc_update t ~writes ~reads);
    read = read t;
    write = write t;
    commit = commit t;
    abort = abort t;
    try_commit = Some (try_commit t);
    snapshot = snapshot t }

(* --- the closed policy loop --- *)

let auto ?contention_window ?policy ?(decide_every = 16) t ~trace =
  let contention =
    Contention.create ?window:contention_window
      ~classes:(P.segment_count t.partition) ()
  in
  Contention.attach contention trace;
  let pol = Policy.create ?config:policy ~eligible:t.eligible () in
  let finished = ref 0 in
  let c =
    Hdd_sim.Controller.with_hooks
      ~on_finish:(fun _ ~commit:_ ->
        incr finished;
        if !finished mod decide_every = 0 then
          match Policy.decide pol contention with
          | Some target -> request_modes t target
          | None -> ())
      (controller t)
  in
  (c, contention, pol)
