(** Per-class contention signals for the hybrid CC policy (DESIGN.md
    §18): a pure fold of the {!Hdd_obs.Trace} event stream — live via
    {!attach}, or offline over a merged trace via {!observe} — into a
    sliding window of the last [window] finished update transactions,
    with O(1) per-class queries.

    Each attempt counts separately: a transaction that restarts three
    times before committing contributes three aborted entries and one
    committed one, so {!abort_rate} is the per-attempt abort
    probability — exactly the wasted-work signal escalation exists to
    fix. *)

type t

val create : ?window:int -> classes:int -> unit -> t
(** [window] (default 256) is the number of finished update
    transactions retained.
    @raise Invalid_argument when [window <= 0]. *)

val feed : t -> Hdd_obs.Trace.record -> unit
(** Fold one record: [Begin] of an update classifies the attempt,
    [Read]/[Write] count its operations, [Commit]/[Abort] finish it
    into the window.  Read-only transactions and everything else are
    ignored. *)

val observe : t -> Hdd_obs.Trace.record list -> unit
(** [feed] a whole merged trace, in order. *)

val attach : t -> Hdd_obs.Trace.t -> unit
(** Subscribe {!feed} to a live trace. *)

val finished : t -> class_id:int -> int
(** Finished attempts of the class currently in the window. *)

val abort_rate : t -> class_id:int -> float
(** Aborted / finished attempts of the class in the window; 0 when the
    class has no finished attempts. *)

val write_share : t -> class_id:int -> float
(** Writes / (reads + writes) across the class's finished attempts in
    the window; 0 when it performed no operations. *)

val window_finished : t -> int
(** Total finished attempts currently in the window, all classes. *)

val hottest : t -> (int * float) option
(** The class with the highest {!abort_rate} among those with at least
    one finished attempt, with its rate. *)
