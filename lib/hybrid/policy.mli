(** The escalation policy (DESIGN.md §18): turns {!Contention} windows
    into per-class CC mode decisions with hysteresis.

    A class may escalate only when it is {e eligible} — its declared
    read set lies inside its own root segment
    ({!Hybrid_sched.eligible_classes}) — because only then is
    commit-stamp serialization sound for cross-class readers.  The
    hysteresis has three parts: separated thresholds
    ([escalate_above] > [deescalate_below]), a [hold] requirement of
    consecutive agreeing windows, and a [cooldown] of decisions between
    any two flips.  All three exist because escalation is
    self-defeating as a signal: once a class runs under commit-order
    serialization its abort rate collapses, and a naive policy would
    immediately de-escalate it back into contention. *)

type config = {
  escalate_above : float;  (** abort rate at/above which a class escalates *)
  deescalate_below : float;  (** abort rate at/below which it returns *)
  min_finished : int;  (** attempts the window must hold before judging *)
  hold : int;  (** consecutive agreeing decisions required *)
  cooldown : int;  (** decisions between any two mode changes *)
}

val default_config : config
(** escalate at 0.25, de-escalate at 0.05, min 16 attempts, hold 2,
    cooldown 8. *)

type t

val create : ?config:config -> eligible:bool array -> unit -> t
(** [eligible] marks the classes the policy may escalate; ineligible
    classes stay in mode 0 forever. *)

val decide : t -> Contention.t -> int array option
(** One decision over the contention window: [Some modes] when any
    class changed mode — pass it to {!Hybrid_sched.request_modes}. *)

val modes : t -> int array
(** The current decided mode vector (a copy). *)

val flips : t -> int
(** Mode changes decided so far. *)
