(** Cross-shard read throughput: HDD's publication-composed thresholds
    against an in-tree 2PC-read baseline ([BENCH_shard.json]).

    Both sides run the same closed loop — one domain per shard over the
    loopback hub, each transaction writing its own segment and reading
    [cross] keys of the next segment up the chain, which a different
    shard owns.  The HDD side serves those reads passively off received
    publications and deltas (Protocol A: no read-time round trip); the
    2PC side pays lock / read / unlock — three round trips per read —
    and in exchange gets the cheapest possible write path
    ({!Node.commit_local}: no registry, no replication, no
    publications).  The gate is simply that shipping CC state beats
    asking permission: [speedup > 1]. *)

type side = {
  s_txns : int;
  s_cross_reads : int;
  s_txns_per_sec : float;
  s_cross_reads_per_sec : float;
  s_lat_p50_us : float;
      (** closed-loop per-transaction latency quantiles: one sample is
          a full exec+pump round trip on the issuing shard *)
  s_lat_p95_us : float;
  s_lat_p99_us : float;
}

type result = {
  r_shards : int;
  r_seconds : float;
  r_cross_per_txn : int;
  r_publish_every : int;  (** publication batch of the batched HDD run *)
  r_hdd : side;  (** HDD at publish_every = 1 (per-commit publication) *)
  r_hdd_batched : side option;
      (** HDD at [r_publish_every]; [None] when the batch is 1 *)
  r_tpc : side;
  r_speedup : float;  (** per-commit HDD cross-reads/sec over 2PC's *)
  r_batch_delta_p50_us : float option;
      (** batched p50 minus per-commit p50 — negative means batching
          shortened the commit path *)
}

val run :
  ?shards:int ->
  ?seconds:float ->
  ?cross:int ->
  ?keys:int ->
  ?publish_every:int ->
  unit ->
  result
(** Defaults: 4 shards, 1s per side, 4 cross-shard reads per
    transaction, 64 keys per segment, publication batch 8 (clamped to
    >= 1; at 1 the batched side is skipped).  Spawns domains; do not
    call from a process that intends to fork afterwards. *)

val to_json : result -> Hdd_benchkit.Jsonlite.t
val gates : result -> string list
(** Structural failures ([] when sound): any side idle (including the
    batched one), or HDD not ahead of the baseline. *)

val pp : Format.formatter -> result -> unit
