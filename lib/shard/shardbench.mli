(** Cross-shard read throughput: HDD's publication-composed thresholds
    against an in-tree 2PC-read baseline ([BENCH_shard.json]).

    Both sides run the same closed loop — one domain per shard over the
    loopback hub, each transaction writing its own segment and reading
    [cross] keys of the next segment up the chain, which a different
    shard owns.  The HDD side serves those reads passively off received
    publications and deltas (Protocol A: no read-time round trip); the
    2PC side pays lock / read / unlock — three round trips per read —
    and in exchange gets the cheapest possible write path
    ({!Node.commit_local}: no registry, no replication, no
    publications).  The gate is simply that shipping CC state beats
    asking permission: [speedup > 1]. *)

type side = {
  s_txns : int;
  s_cross_reads : int;
  s_txns_per_sec : float;
  s_cross_reads_per_sec : float;
}

type result = {
  r_shards : int;
  r_seconds : float;
  r_cross_per_txn : int;
  r_hdd : side;
  r_tpc : side;
  r_speedup : float;  (** HDD cross-reads/sec over 2PC's *)
}

val run :
  ?shards:int -> ?seconds:float -> ?cross:int -> ?keys:int -> unit -> result
(** Defaults: 4 shards, 1s per side, 4 cross-shard reads per
    transaction, 64 keys per segment.  Spawns domains; do not call from
    a process that intends to fork afterwards. *)

val to_json : result -> Hdd_benchkit.Jsonlite.t
val gates : result -> string list
(** Structural failures ([] when sound): either side idle, or HDD not
    ahead of the baseline. *)

val pp : Format.formatter -> result -> unit
