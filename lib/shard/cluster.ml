module T = Hdd_obs.Trace
module E = Hdd_runtime.Engine

type script = E.desc array

let assign ~shards (d : E.desc) =
  match d.E.d_kind with
  | `Update c -> c mod shards
  | `Read_only -> d.E.d_id mod shards

let merge_records rls =
  List.sort
    (fun (a : T.record) b ->
      match compare a.T.at b.T.at with
      | 0 -> (
        match compare a.T.dom b.T.dom with
        | 0 -> compare a.T.seq b.T.seq
        | c -> c)
      | c -> c)
    (List.concat rls)

let stats_of_counters ks =
  List.fold_left
    (fun (s : E.stats) (k : Wire.counters) ->
      { E.committed = s.E.committed + k.Wire.k_committed;
        aborted = s.E.aborted + k.Wire.k_aborted;
        reads_a = s.E.reads_a + k.Wire.k_reads_a;
        reads_b = s.E.reads_b + k.Wire.k_reads_b;
        reads_c = s.E.reads_c + k.Wire.k_reads_c;
        writes = s.E.writes + k.Wire.k_writes;
        (* node publication counts do not travel on the wire *)
        publications = s.E.publications;
        wall_releases = s.E.wall_releases + k.Wire.k_wall_releases;
        wall_lag_sum = s.E.wall_lag_sum + k.Wire.k_wall_lag_sum;
        wall_lag_max = Int.max s.E.wall_lag_max k.Wire.k_wall_lag_max;
        repartitions = s.E.repartitions;
        escalations = s.E.escalations })
    { E.committed = 0; aborted = 0; reads_a = 0; reads_b = 0; reads_c = 0;
      writes = 0; publications = 0; wall_releases = 0; wall_lag_sum = 0;
      wall_lag_max = 0; repartitions = 0; escalations = 0 }
    ks

let collect nodes =
  let outcomes =
    Array.to_list nodes
    |> List.concat_map Node.outcomes
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let records = merge_records (Array.to_list nodes |> List.map Node.records) in
  { E.records;
    outcomes;
    stats =
      stats_of_counters (Array.to_list nodes |> List.map Node.counters) }

(* --- deterministic single-thread mode --- *)

let run_script_det ?fault ?(config = Node.default_config) ~partition ~init
    ~shards ~seed ~script () =
  let nets = Transport.Loopback.create ?fault ~nodes:shards () in
  let nodes =
    Array.init shards (fun i ->
        Node.create ~config ~partition ~init ~net:nets.(i) ())
  in
  Array.iteri
    (fun i n ->
      Node.set_on_wait n (fun () ->
          Array.iteri
            (fun j m ->
              if j <> i then begin
                Node.pump m;
                Node.publish m
              end)
            nodes))
    nodes;
  let queues = Array.init shards (fun _ -> Queue.create ()) in
  Array.iter (fun d -> Queue.add d queues.(assign ~shards d)) script;
  let prng = Hdd_util.Prng.create seed in
  let rec loop () =
    let live =
      Array.to_list queues
      |> List.mapi (fun i q -> (i, q))
      |> List.filter (fun (_, q) -> not (Queue.is_empty q))
    in
    match live with
    | [] -> ()
    | _ ->
      let i, q = List.nth live (Hdd_util.Prng.int prng (List.length live)) in
      Node.exec nodes.(i) (Queue.take q);
      Array.iter Node.pump nodes;
      loop ()
  in
  loop ();
  Array.iter Node.publish_final nodes;
  (* settle: deliver finals and let the coordinator release trailing
     walls; a fixed round count keeps the trace deterministic *)
  for _ = 1 to 3 do
    Array.iter Node.pump nodes
  done;
  collect nodes

(* --- one domain per shard --- *)

let run_script_domains ?(config = Node.default_config) ~partition ~init
    ~shards ~script () =
  let nets = Transport.Loopback.create ~nodes:shards () in
  let work = Array.init shards (fun _ -> Queue.create ()) in
  Array.iter (fun d -> Queue.add d work.(assign ~shards d)) script;
  let done_count = Atomic.make 0 in
  let stop = Atomic.make false in
  let run i =
    let node = Node.create ~config ~partition ~init ~net:nets.(i) () in
    Node.set_on_wait node (fun () -> Unix.sleepf 2e-6);
    let q = work.(i) in
    let rec go () =
      Node.pump node;
      match Queue.take_opt q with
      | Some d ->
        Node.exec node d;
        go ()
      | None -> ()
    in
    go ();
    Node.publish_final node;
    Atomic.incr done_count;
    (* keep serving publications and 2PC traffic until everyone is done *)
    while not (Atomic.get stop) do
      Node.pump node;
      Node.publish_final node;
      Unix.sleepf 10e-6
    done;
    Node.pump node;
    node
  in
  let doms = Array.init shards (fun i -> Domain.spawn (fun () -> run i)) in
  while Atomic.get done_count < shards do
    Unix.sleepf 50e-6
  done;
  Atomic.set stop true;
  let nodes = Array.map Domain.join doms in
  collect nodes

(* --- one process per shard --- *)

let child_main ~config ~partition ~init ~net i =
  let node = Node.create ~config ~partition ~init ~net () in
  Node.set_on_wait node (fun () -> Unix.sleepf 20e-6);
  let rec go () =
    Node.pump node;
    match Node.take_work node with
    | Some d ->
      Node.exec node d;
      go ()
    | None ->
      if Node.drained node then ()
      else begin
        Node.publish node;
        Unix.sleepf 20e-6;
        go ()
      end
  in
  go ();
  Node.publish_final node;
  let parent = Transport.Pipe.parent_addr ~nodes:net.Transport.nodes in
  let home msg =
    net.Transport.send
      { Wire.src = i; dst = parent; stamp = Node.now node; msg }
  in
  home (Wire.Bye { shard = i });
  (* Serve publications until the router says goodbye; the coordinator
     keeps releasing walls for still-working siblings through here, so
     outcomes, counters and the trace ship only after the Bye — a wall
     released now must reach the merged trace. *)
  while not (Node.bye_seen node) do
    Node.pump node;
    Node.publish_final node;
    Unix.sleepf 200e-6
  done;
  home
    (Wire.Outcome
       { shard = i; outcomes = Node.outcomes node;
         counters = Node.counters node });
  home (Wire.Trace_slice { shard = i; records = Node.records node })

let run_script_processes ?(config = Node.default_config) ~partition ~init
    ~shards ~script () =
  let parent = Transport.Pipe.parent_addr ~nodes:shards in
  (* down.(i): parent -> child i; up.(i): child i -> parent *)
  let down = Array.init shards (fun _ -> Unix.pipe ()) in
  let up = Array.init shards (fun _ -> Unix.pipe ()) in
  let pids =
    Array.init shards (fun i ->
        match Unix.fork () with
        | 0 ->
          (* child i keeps read end of down.(i) and write end of up.(i) *)
          Array.iteri
            (fun j (r, w) ->
              if j <> i then Unix.close r;
              Unix.close w)
            down;
          Array.iteri
            (fun j (r, w) ->
              Unix.close r;
              if j <> i then Unix.close w)
            up;
          let net =
            Transport.Pipe.endpoint ~me:i ~nodes:shards
              ~read_fd:(fst down.(i)) ~write_fd:(snd up.(i))
          in
          (try child_main ~config ~partition ~init ~net i
           with e ->
             prerr_endline
               (Printf.sprintf "shard %d died: %s" i (Printexc.to_string e)));
          exit 0
        | pid -> pid)
  in
  (* parent keeps write ends of down and read ends of up *)
  Array.iter (fun (r, _) -> Unix.close r) down;
  Array.iter (fun (_, w) -> Unix.close w) up;
  let sigpipe =
    (* a child that exits while we still route must not kill the
       parent (nor a sibling forward): surface EPIPE instead *)
    Sys.signal Sys.sigpipe Sys.Signal_ignore
  in
  let send_down i (pkt : Wire.packet) =
    try Transport.Pipe.write_all (snd down.(i)) (Wire.encode pkt)
    with Unix.Unix_error (EPIPE, _, _) -> ()
  in
  let fbs = Array.init shards (fun _ -> Transport.Framebuf.create ()) in
  let chunk = Bytes.create 65536 in
  let outcomes = ref [] and slices = ref [] and counters = ref [] in
  let byes = ref 0 in
  let fd_of = Array.map fst up in
  (* one routing round: forward child->child frames, keep the frames
     addressed to us.  Draining while dispatching keeps the pipes from
     filling up and deadlocking on large scripts. *)
  let eof = Array.make shards false in
  let service timeout =
    let live =
      Array.to_list fd_of
      |> List.filteri (fun i _ -> not eof.(i))
    in
    if live = [] then false
    else begin
    let ready, _, _ = Unix.select live [] [] timeout in
    let any = ready <> [] in
    List.iter
      (fun fd ->
        let i = ref 0 in
        Array.iteri (fun j f -> if f = fd then i := j) fd_of;
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> eof.(!i) <- true
        | n ->
          Transport.Framebuf.feed fbs.(!i) chunk ~len:n;
          let rec route () =
            match Transport.Framebuf.next fbs.(!i) with
            | None -> ()
            | Some pkt ->
              (if pkt.Wire.dst = parent then
                 match pkt.Wire.msg with
                 | Wire.Outcome { outcomes = o; counters = k; _ } ->
                   outcomes := o :: !outcomes;
                   counters := k :: !counters
                 | Wire.Trace_slice { records; _ } ->
                   slices := records :: !slices
                 | Wire.Bye _ -> incr byes
                 | _ -> ()
               else send_down pkt.Wire.dst pkt);
              route ()
          in
          route ())
      ready;
    any
    end
  in
  Array.iter
    (fun d ->
      let i = assign ~shards d in
      send_down i { Wire.src = parent; dst = i; stamp = 0; msg = Wire.Exec d };
      ignore (service 0.))
    script;
  Array.iteri
    (fun i _ ->
      send_down i { Wire.src = parent; dst = i; stamp = 0; msg = Wire.Drain })
    pids;
  let wait_for what cond =
    let idle = ref 0 in
    while not (cond ()) do
      if service 1.0 then idle := 0
      else begin
        incr idle;
        if !idle > 30 then
          failwith
            (Printf.sprintf
               "Cluster: shard process unresponsive waiting for %s (30s \
                without traffic)"
               what)
      end
    done
  in
  wait_for "drain acknowledgements" (fun () -> !byes >= shards);
  (* goodbyes; only now do the children ship outcomes and traces, so a
     wall the coordinator released while serving stragglers is on
     record before the trace crosses the pipe *)
  Array.iteri
    (fun i _ ->
      send_down i
        { Wire.src = parent; dst = i; stamp = 0; msg = Wire.Bye { shard = -1 } })
    pids;
  wait_for "traces and outcomes" (fun () ->
      List.length !slices >= shards && List.length !outcomes >= shards);
  Array.iter (fun (_, w) -> Unix.close w) down;
  Array.iter (fun pid -> ignore (Unix.waitpid [] pid)) pids;
  Array.iter (fun (r, _) -> Unix.close r) up;
  ignore (Sys.signal Sys.sigpipe sigpipe);
  { E.records = merge_records !slices;
    outcomes =
      List.concat !outcomes |> List.sort (fun (a, _) (b, _) -> compare a b);
    stats = stats_of_counters !counters }
