type t = {
  me : int;
  nodes : int;
  send : Wire.packet -> unit;
  poll : unit -> Wire.packet option;
}

let send_to t ~dst ~stamp msg =
  t.send { Wire.src = t.me; dst; stamp; msg }

let broadcast t ~stamp msg =
  for dst = 0 to t.nodes - 1 do
    if dst <> t.me then send_to t ~dst ~stamp msg
  done

module Loopback = struct
  let create ?fault ~nodes () =
    let qs = Array.init nodes (fun _ -> Queue.create ()) in
    (* held publication frames per destination: (pubs still to pass, frame) *)
    let held = Array.make nodes [] in
    let mu = Mutex.create () in
    let deliver dst frame = Queue.add frame qs.(dst) in
    (* a publication passing dst ages every held frame for dst; the ones
       that reach zero follow it out, oldest first *)
    let pass_pub dst frame =
      deliver dst frame;
      held.(dst) <-
        List.filter_map
          (fun (n, f) ->
            if n <= 1 then begin
              deliver dst f;
              None
            end
            else Some (n - 1, f))
          held.(dst)
    in
    let send (pkt : Wire.packet) =
      if pkt.dst < 0 || pkt.dst >= nodes then
        invalid_arg "Loopback: destination out of range";
      let frame = Wire.encode pkt in
      Mutex.lock mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
      match (pkt.msg, fault) with
      | Wire.Pub _, Some plan -> (
        match Netfault.on_pub plan with
        | Netfault.Deliver -> pass_pub pkt.dst frame
        | Netfault.Skip -> ()
        | Netfault.Twice ->
          pass_pub pkt.dst frame;
          pass_pub pkt.dst frame
        | Netfault.Hold n -> held.(pkt.dst) <- held.(pkt.dst) @ [ (n, frame) ])
      | _ -> deliver pkt.dst frame
    in
    let poll me () =
      Mutex.lock mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
      match Queue.take_opt qs.(me) with
      | None -> None
      | Some frame -> (
        match Wire.decode frame ~pos:0 with
        | Ok (pkt, _) -> Some pkt
        | Error e -> failwith ("Loopback: corrupt frame: " ^ e))
    in
    Array.init nodes (fun me -> { me; nodes; send; poll = poll me })
end

module Framebuf = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let feed t bytes ~len =
    let need = t.len + len in
    if need > Bytes.length t.buf then begin
      let cap = ref (Bytes.length t.buf * 2) in
      while need > !cap do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end;
    Bytes.blit bytes 0 t.buf t.len len;
    t.len <- t.len + len

  let next t =
    if t.len < 8 then None
    else
      let plen = Int32.to_int (Bytes.get_int32_le t.buf 0) in
      if plen < 0 then failwith "Framebuf: negative frame length"
      else if t.len < 8 + plen then None
      else begin
        let frame = Bytes.sub t.buf 0 (8 + plen) in
        Bytes.blit t.buf (8 + plen) t.buf 0 (t.len - 8 - plen);
        t.len <- t.len - 8 - plen;
        match Wire.decode frame ~pos:0 with
        | Ok (pkt, _) -> Some pkt
        | Error e -> failwith ("Framebuf: corrupt frame: " ^ e)
      end
end

module Pipe = struct
  let parent_addr ~nodes = nodes

  let write_all fd bytes =
    let n = Bytes.length bytes in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write fd bytes !off (n - !off)
    done

  let endpoint ~me ~nodes ~read_fd ~write_fd =
    Unix.set_nonblock read_fd;
    let fb = Framebuf.create () in
    let chunk = Bytes.create 65536 in
    let send (pkt : Wire.packet) = write_all write_fd (Wire.encode pkt) in
    let rec poll () =
      match Framebuf.next fb with
      | Some pkt -> Some pkt
      | None -> (
        match Unix.read read_fd chunk 0 (Bytes.length chunk) with
        | 0 -> None (* peer gone *)
        | n ->
          Framebuf.feed fb chunk ~len:n;
          poll ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
          None)
    in
    { me; nodes; send; poll }
end
