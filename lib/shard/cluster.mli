(** Drive a fleet of {!Node}s over a script and hand back an
    {!Hdd_runtime.Engine.run} — the same shape the multicore engine
    returns, so {!Hdd_runtime.Differential.check_run} certifies a
    sharded history with the identical four-check oracle.

    Three ways to run the same node code:

    - {!run_script_det}: every node on one thread, descriptors
      interleaved by a seeded round-robin, each node's wait hook
      pumping the others.  Fully deterministic — same seed, same
      merged trace, byte for byte — which is what the golden traces
      and the netfault suite want.
    - {!run_script_domains}: one domain per shard over the mutexed
      loopback hub; real parallelism, still one process.
    - {!run_script_processes}: one forked OS process per shard, pipes
      to a star router in the parent, traces and outcomes shipped home
      as {!Wire.Trace_slice}/{!Wire.Outcome} messages.  What
      [hdd_cli shard --processes] runs. *)

type script = Hdd_runtime.Engine.desc array

val assign : shards:int -> Hdd_runtime.Engine.desc -> int
(** Update classes go to their owner ([class mod shards]); read-only
    descriptors round-robin by id. *)

val run_script_det :
  ?fault:Netfault.plan ->
  ?config:Node.config ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  shards:int ->
  seed:int ->
  script:script ->
  unit ->
  Hdd_runtime.Engine.run

val run_script_domains :
  ?config:Node.config ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  shards:int ->
  script:script ->
  unit ->
  Hdd_runtime.Engine.run

val run_script_processes :
  ?config:Node.config ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  shards:int ->
  script:script ->
  unit ->
  Hdd_runtime.Engine.run

val merge_records :
  Hdd_obs.Trace.record list list -> Hdd_obs.Trace.record list
(** Gclock-merge: sort by (at, dom, seq) — the same order
    {!Hdd_obs.Trace.merged} uses, for slices that crossed the wire. *)

val stats_of_counters : Wire.counters list -> Hdd_runtime.Engine.stats
