(** One shard of the sharded engine: a single-threaded HDD node owning
    the segments of every class congruent to its id modulo the shard
    count (DESIGN.md §15).

    The node is the wire-protocol twin of the multicore runtime's
    worker ({!Hdd_runtime.Engine}): Protocol B runs against the node's
    own authoritative stores; Protocol A composes [I_old] thresholds
    along the critical path exactly as PR 5 does, except remote classes
    are answered from the latest {e received} activity publication
    instead of an [Atomic] load; Protocol C reads off the latest
    received wall.  Remote segments are served from a delta-replicated
    cache, and a read waits until the owner's publication shows the
    class {e quiescent below the threshold} and every delta the
    publication counts has been applied — which is why lost, late,
    duplicated or reordered publications can only ever add waiting,
    never admit an inconsistent read.

    Shard 0 doubles as the wall coordinator: it recomputes the
    engine-identical UCP walk over its own registry plus the cached
    remote publications and broadcasts each released wall.

    A node never blocks the OS thread: every wait is a [check]-loop
    that republishes its own activity (so mutually waiting shards
    unblock each other), runs the caller-installed [on_wait] hook (the
    deterministic cluster pumps the other nodes there; the domain and
    process clusters sleep), and pumps its own transport. *)

type config = {
  traced : bool;
  trace_capacity : int;
  stall_limit : int;
      (** wait iterations before a wait is declared a stall (a bug —
          the protocol is deadlock-free) and the node raises *)
  publish_every : int;
      (** publish activity once per this many finished update
          transactions (clamped to >= 1; default 1 = per commit).
          Version deltas still ship at every commit, and any wait
          republishes unconditionally, so batching delays only how
          soon idle peers see refreshed activity intervals — outcomes
          are identical at every value. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  net:Transport.t ->
  unit ->
  t
(** Shard id and shard count come from [net].  Shard 0 becomes the
    wall coordinator and seeds the trivial wall (m = 0, released at 0,
    all components 0 — sound because a stale wall only under-serves). *)

val me : t -> int
val now : t -> Time.t
val set_on_wait : t -> (unit -> unit) -> unit

val pump : t -> unit
(** Drain the transport: apply publications, deltas and walls, answer
    2PC lock/read traffic, queue [Exec] work; then (shard 0) attempt a
    wall release. *)

val publish : t -> unit
(** Broadcast the current activity publication. *)

val publish_final : t -> unit
(** Broadcast with unbounded coverage ([upto = max_int]) — only legal
    once this node will never register another transaction. *)

val exec : t -> Hdd_runtime.Engine.desc -> unit
(** Run one transaction to completion (may wait inside). *)

val read_2pc : t -> segment:int -> key:int -> Time.t * int
(** The 2PC-read baseline: lock, read, unlock at the owner — three
    round trips per cross-shard read, against HDD's zero.  Counted as a
    protocol-A read in the stats.  Local segments are served
    directly. *)

val commit_local : t -> segment:int -> key:int -> value:int -> unit
(** Install one committed version into an own segment, no registry, no
    replication — the 2PC baseline's write path (its reads go to the
    owner, so it ships nothing).  Deliberately cheaper than the HDD
    commit path: a conservative baseline.
    @raise Invalid_argument on a segment this shard does not own. *)

val take_work : t -> Hdd_runtime.Engine.desc option
(** Next queued [Exec] descriptor (process mode). *)

val drained : t -> bool
(** A [Drain] message arrived: no more [Exec]s are coming. *)

val bye_seen : t -> bool
(** The router said goodbye (process mode shutdown). *)

val outcomes : t -> (Txn.id * bool) list
val records : t -> Hdd_obs.Trace.record list
val trace : t -> Hdd_obs.Trace.t option
val counters : t -> Wire.counters
