(** Shard interconnect: who carries the {!Wire} frames.

    A transport value is one shard's endpoint — a [send] that ships an
    encoded packet toward its [dst] and a non-blocking [poll] that
    yields the next arrived packet, FIFO per channel.  Two carriers:

    - {!Loopback}: an in-memory hub.  Frames still round-trip through
      the real {!Wire} codec (so the bytes exercised are the bytes a
      socket would carry), delivery is FIFO per destination, and a
      {!Netfault.plan} can drop/duplicate/delay/reorder {e publication}
      frames only — the fault suite's contract.  Safe both from a
      single thread (the deterministic cluster) and across domains
      (one hub mutex).
    - {!Pipe}: a real [Unix] pipe endpoint for the forked process mode,
      star topology: every child speaks to the parent router, which
      forwards frames by [dst].  {!Framebuf} reassembles frames from
      the byte stream. *)

type t = {
  me : int;
  nodes : int;
  send : Wire.packet -> unit;
  poll : unit -> Wire.packet option;
}

val send_to : t -> dst:int -> stamp:Time.t -> Wire.msg -> unit

val broadcast : t -> stamp:Time.t -> Wire.msg -> unit
(** [send_to] every other node, ascending ids. *)

module Loopback : sig
  val create : ?fault:Netfault.plan -> nodes:int -> unit -> t array
  (** One endpoint per node.  With [fault], every [Wire.Pub] send
      consumes one {!Netfault.on_pub} ordinal; held frames that never
      age out are dropped at the end of the run (a delay is allowed to
      degenerate into a drop — both are mere staleness). *)
end

module Framebuf : sig
  type t

  val create : unit -> t
  val feed : t -> bytes -> len:int -> unit

  val next : t -> Wire.packet option
  (** The next complete frame, if any.
      @raise Failure on a corrupt frame (pipes do not corrupt;
      anything else is a bug). *)
end

module Pipe : sig
  val endpoint :
    me:int ->
    nodes:int ->
    read_fd:Unix.file_descr ->
    write_fd:Unix.file_descr ->
    t
  (** An endpoint over two fds.  [poll] reads whatever is available
      without blocking; [send] writes the whole frame.  [dst] rides in
      the packet, so a router on the peer end can forward.  In the star
      topology the parent is address [nodes] (see {!parent_addr}). *)

  val parent_addr : nodes:int -> int
  (** The router's own address: control messages ([Outcome],
      [Trace_slice], [Bye]) are sent to it rather than to a shard. *)

  val write_all : Unix.file_descr -> bytes -> unit
  (** Loop until the whole buffer is written (the router's send). *)
end
