(** The cross-shard differential oracle.

    A sharded run is accepted by exactly the four checks the multicore
    engine answers to ({!Hdd_runtime.Differential}): the per-shard
    traces are merged on the global clock order (at, dom, seq), the
    merged history is MVSG-certified, replayed through the invariant
    monitors, and compared — verdicts and Protocol-B read-from sets —
    against the serial single-process oracle.  {!Sclock} guarantees the
    merge is sound: timestamps are globally unique and extend
    happens-before across the wire. *)

type mode = [ `Det | `Domains | `Processes ]

val check :
  ?mode:mode ->
  ?config:Node.config ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  shards:int ->
  seed:int ->
  script:Cluster.script ->
  unit ->
  Hdd_runtime.Differential.report
(** Run [script] on a [shards]-node cluster in [mode] (default the
    deterministic single-thread mode; [seed] only shapes the [`Det]
    interleaving) and apply all four checks to the merged run. *)

val check_det :
  ?fault:Netfault.plan ->
  ?config:Node.config ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  shards:int ->
  seed:int ->
  script:Cluster.script ->
  unit ->
  Hdd_runtime.Differential.report
(** {!check} in deterministic mode with a {!Netfault.plan} scripted over
    the publication traffic — the fault suite's entry point: faults may
    add waiting, never a failed check. *)

val stress_case :
  seed:int ->
  txns:int ->
  profile:Hdd_runtime.Differential.profile ->
  Hdd_core.Partition.t * Cluster.script
(** The (hierarchy, script) pair {!stress_one} derives from a seed — even
    seeds draw a chain partition, odd seeds a tree — exposed so callers
    that need the raw run (the CLI's trace export) replay exactly the
    stress population. *)

val stress_one :
  ?mode:mode ->
  seed:int ->
  shards:int ->
  txns:int ->
  profile:Hdd_runtime.Differential.profile ->
  unit ->
  Hdd_runtime.Differential.report
(** The sharded twin of {!Hdd_runtime.Differential.stress_one}: the same
    seed draws the same hierarchy (chain or tree) and the same script,
    executed on [shards] nodes instead of worker domains. *)

(** {1 Curated scenarios}

    The explorer's Figure 1 / Figures 3-4 / wall scenarios as descriptor
    scripts, classes ordered so each class's root segment is its own
    index.  At two shards each scenario crosses the wire: Protocol A
    reads compose thresholds from remote snapshots and Protocol C reads
    wait out remote walls. *)

type golden = {
  g_name : string;
  g_partition : Hdd_core.Partition.t;
  g_init : Granule.t -> int;
  g_script : Cluster.script;
}

val fig1 : golden
val fig34 : golden
val wall : golden
val goldens : golden list

val golden_records :
  ?shards:int -> ?seed:int -> golden -> Hdd_obs.Trace.record list
(** The merged deterministic-mode trace (defaults: 2 shards, seed 7) —
    what the golden files under [test/golden/shard_*.trace] freeze. *)

val golden_check :
  ?shards:int -> ?seed:int -> golden -> Hdd_runtime.Differential.report
