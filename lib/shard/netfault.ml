type event =
  | Drop of int
  | Dup of int
  | Delay of { pub : int; by : int }
  | Reorder of int

let kind = function
  | Drop _ -> "net_drop"
  | Dup _ -> "net_dup"
  | Delay _ -> "net_delay"
  | Reorder _ -> "net_reorder"

let kinds = [ "net_drop"; "net_dup"; "net_delay"; "net_reorder" ]

let ordinal = function
  | Drop n | Dup n | Reorder n -> n
  | Delay { pub; _ } -> pub

type plan = {
  events : event list;
  mutable next : int;
  mutable fired : event list;  (** newest first *)
}

let plan events = { events; next = 0; fired = [] }
let none () = plan []

type action = Deliver | Skip | Twice | Hold of int

let on_pub p =
  let ord = p.next in
  p.next <- ord + 1;
  match List.find_opt (fun e -> ordinal e = ord) p.events with
  | None -> Deliver
  | Some e ->
    p.fired <- e :: p.fired;
    (match e with
    | Drop _ -> Skip
    | Dup _ -> Twice
    | Reorder _ -> Hold 1
    | Delay { by; _ } -> Hold (Int.max 1 by))

let fired p = List.rev p.fired
