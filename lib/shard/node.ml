module T = Hdd_obs.Trace
module P = Hdd_core.Partition
module TW = Hdd_core.Timewall
module Snap = Hdd_mvstore.Snapshot
module E = Hdd_runtime.Engine

type config = {
  traced : bool;
  trace_capacity : int;
  stall_limit : int;
  publish_every : int;
}

let default_config =
  { traced = true; trace_capacity = 1 lsl 16; stall_limit = 2_000_000;
    publish_every = 1 }

(* The latest accepted publication of a remote shard. *)
type rpub = {
  r_seq : int;
  r_upto : Time.t;
  r_marks : int array;
  r_snap : Registry.snapshot;
}

type counters = {
  mutable n_committed : int;
  mutable n_aborted : int;
  mutable n_reads_a : int;
  mutable n_reads_b : int;
  mutable n_reads_c : int;
  mutable n_writes : int;
  mutable n_stale_waits : int;
  mutable n_wall_releases : int;
  mutable n_wall_lag_sum : int;
  mutable n_wall_lag_max : int;
}

type coord = {
  primary : int;
  starts : int array;
  mutable last_m : Time.t;
  mutable last_seen : Time.t;  (** clock value at the last attempt *)
}

type t = {
  partition : P.t;
  nseg : int;
  shards : int;
  me : int;
  init_fn : Granule.t -> int;
  net : Transport.t;
  clock : Sclock.t;
  registry : Registry.t;
  store : Snap.t array;
      (** per segment: own segments authoritative, remote ones a
          delta-replicated cache *)
  applied : int array;  (** delta messages applied, per segment *)
  sent_marks : int array;  (** delta messages broadcast, per own segment *)
  mutable pub_seq : int;
  rpubs : rpub option array;  (** per shard *)
  mutable wall : TW.wall;
  trace : T.t option;
  c : counters;
  mutable outcomes : (Txn.id * bool) list;
  mutable on_wait : unit -> unit;
  stall_limit : int;
  publish_every : int;
  mutable since_pub : int;  (** commits since the last publication *)
  coord : coord option;
  (* process-mode work dispatch *)
  work : E.desc Queue.t;
  mutable drain_seen : bool;
  mutable bye : bool;
  (* 2PC baseline server state, per own segment *)
  locked : bool array;
  lock_waiters : (int * int) Queue.t array;  (** (requester shard, req) *)
  (* 2PC baseline client state *)
  mutable next_req : int;
  lock_replies : (int, bool) Hashtbl.t;
  read_replies : (int, (Time.t * int) list) Hashtbl.t;
}

let me t = t.me
let now t = Sclock.now t.clock
let set_on_wait t f = t.on_wait <- f
let owner t class_id = class_id mod t.shards
let outcomes t = List.rev t.outcomes
let trace t = t.trace
let records t = match t.trace with None -> [] | Some tr -> T.records tr
let take_work t = Queue.take_opt t.work
let drained t = t.drain_seen
let bye_seen t = t.bye

let counters t =
  { Wire.k_committed = t.c.n_committed;
    k_aborted = t.c.n_aborted;
    k_reads_a = t.c.n_reads_a;
    k_reads_b = t.c.n_reads_b;
    k_reads_c = t.c.n_reads_c;
    k_writes = t.c.n_writes;
    k_stale_waits = t.c.n_stale_waits;
    k_wall_releases = t.c.n_wall_releases;
    k_wall_lag_sum = t.c.n_wall_lag_sum;
    k_wall_lag_max = t.c.n_wall_lag_max }

let emit_at t ~at ev =
  match t.trace with None -> () | Some tr -> T.emit tr ~at ev

let op_at t =
  match t.trace with Some _ -> Sclock.tick t.clock | None -> 0

(* --- publications --- *)

let publish_upto t upto =
  t.since_pub <- 0;
  t.pub_seq <- t.pub_seq + 1;
  Transport.broadcast t.net ~stamp:(Sclock.now t.clock)
    (Wire.Pub
       { p_shard = t.me;
         p_seq = t.pub_seq;
         p_upto = upto;
         p_marks = Array.copy t.sent_marks;
         p_snap = Registry.snapshot t.registry })

(* The capture reads the clock first, so [upto] never claims more than
   the snapshot holds: everything of this shard's initiating later
   ticks later. *)
let publish t = publish_upto t (Sclock.now t.clock)
let publish_final t = publish_upto t max_int

(* --- receiving --- *)

let apply_delta t (d : Wire.delta) =
  List.iter
    (fun (key, ts, value) ->
      let g = Granule.make ~segment:d.Wire.dl_segment ~key in
      t.store.(d.Wire.dl_segment) <-
        Snap.add_commit t.store.(d.Wire.dl_segment) g ~ts ~value)
    d.Wire.dl_versions;
  t.applied.(d.Wire.dl_segment) <- t.applied.(d.Wire.dl_segment) + 1

let serve_local t ~segment ~key ~th =
  let g = Granule.make ~segment ~key in
  match Snap.latest_before t.store.(segment) g ~ts:th with
  | Some (vts, v) -> [ (vts, v) ]
  | None -> []

let handle t (pkt : Wire.packet) =
  Sclock.catch_up t.clock pkt.Wire.stamp;
  match pkt.Wire.msg with
  | Wire.Pub p ->
    let keep =
      match t.rpubs.(p.Wire.p_shard) with
      | Some old -> old.r_seq < p.Wire.p_seq
      | None -> true
    in
    if keep then
      t.rpubs.(p.Wire.p_shard) <-
        Some
          { r_seq = p.Wire.p_seq;
            r_upto = p.Wire.p_upto;
            r_marks = p.Wire.p_marks;
            r_snap = p.Wire.p_snap }
  | Wire.Delta d -> apply_delta t d
  | Wire.Wall w ->
    if w.TW.released_at > t.wall.TW.released_at then begin
      let advanced = w.TW.m > t.wall.TW.m in
      t.wall <- w;
      (* wall-driven registry GC, as in the serial scheduler: no
         composition or wall query ever reaches below the wall's
         argument [m], so windows closed under it are dead weight —
         and publication cost is O(retained windows), so without this
         every snapshot broadcast grows with history *)
      if advanced then Registry.prune t.registry ~upto:(w.TW.m - 1)
    end
  | Wire.Exec d -> Queue.add d t.work
  | Wire.Drain -> t.drain_seen <- true
  | Wire.Bye _ -> t.bye <- true
  | Wire.Lock_req { req; segment } ->
    if segment < 0 || segment >= t.nseg || owner t segment <> t.me then
      invalid_arg "Node: lock request for a segment this shard does not own";
    if t.locked.(segment) then Queue.add (pkt.Wire.src, req) t.lock_waiters.(segment)
    else begin
      t.locked.(segment) <- true;
      Transport.send_to t.net ~dst:pkt.Wire.src ~stamp:(Sclock.now t.clock)
        (Wire.Lock_reply { req; granted = true })
    end
  | Wire.Unlock { segment } -> (
    match Queue.take_opt t.lock_waiters.(segment) with
    | Some (dst, req) ->
      Transport.send_to t.net ~dst ~stamp:(Sclock.now t.clock)
        (Wire.Lock_reply { req; granted = true })
    | None -> t.locked.(segment) <- false)
  | Wire.Read_req { req; segment; key; threshold } ->
    Transport.send_to t.net ~dst:pkt.Wire.src ~stamp:(Sclock.now t.clock)
      (Wire.Read_reply
         { req; slice = serve_local t ~segment ~key ~th:threshold })
  | Wire.Lock_reply { req; granted } -> Hashtbl.replace t.lock_replies req granted
  | Wire.Read_reply { req; slice } -> Hashtbl.replace t.read_replies req slice
  | Wire.Outcome _ | Wire.Trace_slice _ -> ()  (* router traffic, not ours *)

(* --- the wall coordinator (shard 0) --- *)

exception Wall_stale
exception Wall_not_computable

let coordinator_attempt t co =
  let now_ = Sclock.now t.clock in
  if now_ <> co.last_seen then begin
    co.last_seen <- now_;
    try
      let own_snap = lazy (Registry.snapshot t.registry) in
      let pub_of c =
        if owner t c = t.me then (Lazy.force own_snap, now_)
        else
          match t.rpubs.(owner t c) with
          | Some p -> (p.r_snap, p.r_upto)
          | None -> raise Wall_stale
      in
      let q =
        Array.init t.nseg (fun c ->
            let snap, upto = pub_of c in
            Registry.snap_i_old snap ~class_id:c ~at:upto)
      in
      let m = Array.fold_left Time.min q.(0) q in
      if m > co.last_m && m < max_int then begin
        let i_old_at c a =
          let snap, upto = pub_of c in
          if upto < a then raise Wall_stale;
          Registry.snap_i_old snap ~class_id:c ~at:a
        in
        let c_late_at c a =
          let snap, upto = pub_of c in
          if upto < a then raise Wall_stale;
          match Registry.snap_c_late snap ~class_id:c ~at:a with
          | Ok v -> v
          | Error _ -> raise Wall_not_computable
        in
        let reduction = t.partition.P.reduction in
        let components = Array.make t.nseg Time.zero in
        for i = 0 to t.nseg - 1 do
          let path =
            match P.ucp t.partition co.starts.(i) i with
            | Some p -> p
            | None -> [ i ]
          in
          let rec walk a = function
            | [] | [ _ ] -> a
            | u :: (v :: _ as rest) ->
              if Hdd_graph.Digraph.mem_arc reduction u v then
                walk (i_old_at v a) rest
              else walk (c_late_at u a) rest
          in
          components.(i) <- walk m path
        done;
        (* stability: a component above q.(i) could admit a version a
           class-i straggler has yet to replicate *)
        Array.iteri (fun i v -> if v > q.(i) then raise Wall_stale) components;
        let released_at = Sclock.tick t.clock in
        let wall = TW.make ~s:co.primary ~m ~components ~released_at in
        t.wall <- wall;
        Transport.broadcast t.net ~stamp:released_at (Wire.Wall wall);
        emit_at t ~at:released_at
          (T.Wall_release
             { m; released_at; components = Array.copy components });
        co.last_m <- m;
        Registry.prune t.registry ~upto:(m - 1);
        t.c.n_wall_releases <- t.c.n_wall_releases + 1;
        let lag = released_at - m in
        t.c.n_wall_lag_sum <- t.c.n_wall_lag_sum + lag;
        if lag > t.c.n_wall_lag_max then t.c.n_wall_lag_max <- lag
      end
    with Wall_stale | Wall_not_computable -> ()
  end

let pump t =
  let rec drain () =
    match t.net.Transport.poll () with
    | Some pkt ->
      handle t pkt;
      drain ()
    | None -> ()
  in
  drain ();
  match t.coord with Some co -> coordinator_attempt t co | None -> ()

(* --- waiting --- *)

(* Republish-then-pump until [check] holds.  Republishing our own
   activity is what unblocks a peer that is itself waiting for our
   coverage; the hook lets the cluster pump other nodes (deterministic
   mode) or yield the core (domain/process mode). *)
let await t ~why check =
  if not (check ()) then begin
    t.c.n_stale_waits <- t.c.n_stale_waits + 1;
    let n = ref 0 in
    while not (check ()) do
      incr n;
      if !n > t.stall_limit then
        failwith
          (Printf.sprintf "Shard node %d: stalled waiting for %s" t.me why);
      publish t;
      t.on_wait ();
      pump t
    done
  end

(* The owner's publication covering argument [m] — the step of the
   threshold composition that crosses a shard boundary. *)
let await_pub t ~class_id m =
  let ow = owner t class_id in
  await t
    ~why:(Printf.sprintf "a publication of shard %d covering %d" ow m)
    (fun () ->
      match t.rpubs.(ow) with Some p -> p.r_upto >= m | None -> false);
  match t.rpubs.(ow) with Some p -> p | None -> assert false

(* A_i^j(m): I_old composed along the critical path, local classes from
   the live registry, remote ones from received publications. *)
let a_threshold t ~from_class ~to_class m =
  match P.critical_path t.partition from_class to_class with
  | None | Some [] ->
    invalid_arg
      (Printf.sprintf "Shard node: no critical path from T%d to T%d"
         from_class to_class)
  | Some (_ :: rest) ->
    List.fold_left
      (fun m cls ->
        if owner t cls = t.me then
          Registry.i_old t.registry ~class_id:cls ~at:m
        else
          let pub = await_pub t ~class_id:cls m in
          Registry.snap_i_old pub.r_snap ~class_id:cls ~at:m)
      m rest

(* Wait until the cache of remote segment [seg] provably holds every
   committed version below [th]: the owner's publication must cover the
   times queried, show class [seg] quiescent {e strictly} below [th],
   and every delta the publication counts must have been applied here.
   Strictly: versions carry their writer's initiation time and
   [latest_before]/the monitors are exclusive at the threshold, so a
   transaction initiated {e at} [th] can never serve — quiescence at
   [th - 1] is enough.  That exactness is what makes the wait cheap:
   [th] is typically an [I_old], the initiation time of the owner's
   oldest {e active} transaction, and the same snapshot that yielded it
   already shows everything below it finished — demanding [c_late]
   computable at [th] itself would stall every cross-shard read behind
   the owner's in-flight transaction.  A dropped or stale publication
   just fails the check a while longer — waiting, never
   inconsistency. *)
let await_store t ~seg ~th =
  let ow = owner t seg in
  await t
    ~why:
      (Printf.sprintf "segment D%d of shard %d to quiesce below %d" seg ow th)
    (fun () ->
      match t.rpubs.(ow) with
      | None -> false
      | Some p ->
        p.r_upto >= th - 1
        && t.applied.(seg) >= p.r_marks.(seg)
        && (match Registry.snap_c_late p.r_snap ~class_id:seg ~at:(th - 1) with
           | Ok _ -> true
           | Error _ -> false))

let bootstrap t g = (Time.zero, t.init_fn g)

let serve t ~segment ~key ~th =
  match serve_local t ~segment ~key ~th with
  | (vts, v) :: _ -> (vts, v)
  | [] -> bootstrap t (Granule.make ~segment ~key)

(* --- transaction execution --- *)

let exec_update t (d : E.desc) cls =
  let init = Sclock.tick t.clock in
  let txn = Txn.make ~id:d.E.d_id ~kind:(Txn.Update cls) ~init in
  Registry.register_in t.registry ~class_id:cls txn;
  emit_at t ~at:init (T.Begin { txn = d.E.d_id; kind = T.Update cls; init });
  let pending = ref [] in
  List.iter
    (fun op ->
      match op with
      | E.Write (g, v) ->
        if g.Granule.segment <> cls then
          invalid_arg
            (Printf.sprintf "Shard node: T%d writing outside root segment D%d"
               cls g.Granule.segment);
        pending :=
          (g, v)
          :: List.filter (fun (g', _) -> not (Granule.equal g g')) !pending;
        t.c.n_writes <- t.c.n_writes + 1;
        emit_at t ~at:(op_at t)
          (T.Write
             { txn = d.E.d_id; segment = g.Granule.segment;
               key = g.Granule.key; ts = init })
      | E.Read g ->
        let seg = g.Granule.segment in
        if seg = cls then begin
          (* Protocol B: this node runs class [cls] one transaction at
             a time against its own authoritative store *)
          let vts, _ = serve t ~segment:seg ~key:g.Granule.key ~th:init in
          t.c.n_reads_b <- t.c.n_reads_b + 1;
          emit_at t ~at:(op_at t)
            (T.Read
               { txn = d.E.d_id; protocol = T.B; segment = seg;
                 key = g.Granule.key; threshold = init; version = vts })
        end
        else begin
          if not (P.may_read t.partition ~class_id:cls ~segment:seg) then
            invalid_arg
              (Printf.sprintf "Shard node: T%d may not read D%d" cls seg);
          let th = a_threshold t ~from_class:cls ~to_class:seg init in
          if owner t seg <> t.me then await_store t ~seg ~th;
          let vts, _ = serve t ~segment:seg ~key:g.Granule.key ~th in
          t.c.n_reads_a <- t.c.n_reads_a + 1;
          emit_at t ~at:(op_at t)
            (T.Read
               { txn = d.E.d_id; protocol = T.A; segment = seg;
                 key = g.Granule.key; threshold = th; version = vts })
        end)
    d.E.d_ops;
  if d.E.d_abort then begin
    let a = Sclock.tick t.clock in
    Txn.abort txn ~at:a;
    emit_at t ~at:a (T.Abort { txn = d.E.d_id; at = a });
    t.c.n_aborted <- t.c.n_aborted + 1;
    t.outcomes <- (d.E.d_id, false) :: t.outcomes
  end
  else begin
    let e = Sclock.tick t.clock in
    Txn.commit txn ~at:e;
    let touched = ref [] in
    List.iter
      (fun ((g : Granule.t), v) ->
        let seg = g.segment in
        t.store.(seg) <- Snap.add_commit t.store.(seg) g ~ts:init ~value:v;
        let batch =
          match List.assoc_opt seg !touched with Some b -> b | None -> []
        in
        touched :=
          (seg, (g.key, init, v) :: batch)
          :: List.remove_assoc seg !touched)
      !pending;
    (* replicate before publishing: by the time any publication shows
       this transaction finished, its versions are already on the wire
       (FIFO), so a reader passing the marks check holds them *)
    List.iter
      (fun (seg, versions) ->
        Transport.broadcast t.net ~stamp:(Sclock.now t.clock)
          (Wire.Delta
             { dl_shard = t.me; dl_segment = seg;
               dl_versions = List.rev versions });
        t.sent_marks.(seg) <- t.sent_marks.(seg) + 1)
      !touched;
    emit_at t ~at:e (T.Commit { txn = d.E.d_id; at = e });
    t.c.n_committed <- t.c.n_committed + 1;
    t.outcomes <- (d.E.d_id, true) :: t.outcomes
  end;
  (* batched publication: amortize the snapshot + broadcast over K
     transactions.  Deltas (the versions themselves) already shipped
     above regardless of K; what batching delays is only how soon peers
     see this shard's refreshed activity intervals, and [await]'s
     unconditional republication bounds that delay whenever anyone is
     actually waiting on us. *)
  t.since_pub <- t.since_pub + 1;
  if t.since_pub >= t.publish_every then publish t

let exec_ro t (d : E.desc) =
  (* wall first, initiation tick second: released_at < init, always *)
  let wall = t.wall in
  let init = Sclock.tick t.clock in
  emit_at t ~at:init (T.Begin { txn = d.E.d_id; kind = T.Read_only; init });
  List.iter
    (fun op ->
      match op with
      | E.Write _ -> invalid_arg "Shard node: read-only transaction writes"
      | E.Read g ->
        let seg = g.Granule.segment in
        let th = TW.threshold wall ~class_id:seg in
        (* th = 0 can only serve the bootstrap value — nothing to wait for *)
        if owner t seg <> t.me && th > Time.zero then await_store t ~seg ~th;
        let vts, _ = serve t ~segment:seg ~key:g.Granule.key ~th in
        t.c.n_reads_c <- t.c.n_reads_c + 1;
        emit_at t ~at:(op_at t)
          (T.Read
             { txn = d.E.d_id; protocol = T.C; segment = seg;
               key = g.Granule.key; threshold = th; version = vts }))
    d.E.d_ops;
  let e = Sclock.tick t.clock in
  emit_at t ~at:e (T.Commit { txn = d.E.d_id; at = e });
  t.c.n_committed <- t.c.n_committed + 1;
  t.outcomes <- (d.E.d_id, true) :: t.outcomes

let exec t (d : E.desc) =
  match d.E.d_kind with
  | `Update cls -> exec_update t d cls
  | `Read_only -> exec_ro t d

(* --- the 2PC-read baseline --- *)

let read_2pc t ~segment ~key =
  t.c.n_reads_a <- t.c.n_reads_a + 1;
  if owner t segment = t.me then
    serve t ~segment ~key ~th:max_int
  else begin
    let ow = owner t segment in
    let req = t.next_req in
    t.next_req <- t.next_req + 1;
    Transport.send_to t.net ~dst:ow ~stamp:(Sclock.now t.clock)
      (Wire.Lock_req { req; segment });
    await t ~why:(Printf.sprintf "lock grant for D%d" segment) (fun () ->
        Hashtbl.mem t.lock_replies req);
    Hashtbl.remove t.lock_replies req;
    Transport.send_to t.net ~dst:ow ~stamp:(Sclock.now t.clock)
      (Wire.Read_req { req; segment; key; threshold = max_int });
    await t ~why:(Printf.sprintf "read reply for D%d" segment) (fun () ->
        Hashtbl.mem t.read_replies req);
    let slice =
      match Hashtbl.find_opt t.read_replies req with
      | Some s -> s
      | None -> []
    in
    Hashtbl.remove t.read_replies req;
    Transport.send_to t.net ~dst:ow ~stamp:(Sclock.now t.clock)
      (Wire.Unlock { segment });
    match slice with
    | (vts, v) :: _ -> (vts, v)
    | [] -> bootstrap t (Granule.make ~segment ~key)
  end

let commit_local t ~segment ~key ~value =
  if owner t segment <> t.me then
    invalid_arg "Node.commit_local: not an owned segment";
  let ts = Sclock.tick t.clock in
  let g = Granule.make ~segment ~key in
  t.store.(segment) <- Snap.add_commit t.store.(segment) g ~ts ~value;
  t.c.n_writes <- t.c.n_writes + 1;
  t.c.n_committed <- t.c.n_committed + 1

(* --- creation --- *)

let create ?(config = default_config) ~partition ~init ~net () =
  let shards = net.Transport.nodes and me = net.Transport.me in
  let nseg = P.segment_count partition in
  let clock = Sclock.create ~shards ~me in
  let trace =
    if config.traced then
      Some (T.create ~capacity:config.trace_capacity ~domain:(me + 1) ())
    else None
  in
  let primary =
    match P.lowest_classes partition with s :: _ -> s | [] -> 0
  in
  (* The bootstrap wall, identical on every node without a message:
     components all 1 — the only version below 1 is the bootstrap
     value, and no tick ever stamps below 1, so it is sound forever —
     released "at" 0, before every initiation, so read-only work never
     finds the slot empty.  (All-zero components would be sound too,
     but a C-read at threshold 0 would have to serve version 0, which
     the monitors rightly reject as not-below-threshold.) *)
  let wall0 =
    TW.make ~s:primary ~m:1
      ~components:(Array.make nseg 1)
      ~released_at:Time.zero
  in
  let coord =
    if me = 0 then
      Some
        { primary;
          starts = TW.component_starts partition;
          last_m = Time.zero;
          last_seen = -1 }
    else None
  in
  let t =
    { partition;
      nseg;
      shards;
      me;
      init_fn = init;
      net;
      clock;
      registry = Registry.create ?trace ~classes:nseg ();
      store = Array.make nseg Snap.empty;
      applied = Array.make nseg 0;
      sent_marks = Array.make nseg 0;
      pub_seq = 0;
      rpubs = Array.make shards None;
      wall = wall0;
      trace;
      c =
        { n_committed = 0; n_aborted = 0; n_reads_a = 0; n_reads_b = 0;
          n_reads_c = 0; n_writes = 0; n_stale_waits = 0;
          n_wall_releases = 0; n_wall_lag_sum = 0; n_wall_lag_max = 0 };
      outcomes = [];
      on_wait = (fun () -> ());
      stall_limit = config.stall_limit;
      publish_every = Int.max 1 config.publish_every;
      since_pub = 0;
      coord;
      work = Queue.create ();
      drain_seen = false;
      bye = false;
      locked = Array.make nseg false;
      lock_waiters = Array.init nseg (fun _ -> Queue.create ());
      next_req = 0;
      lock_replies = Hashtbl.create 16;
      read_replies = Hashtbl.create 16 }
  in
  (match t.trace, coord with
  | Some tr, Some _ ->
    T.emit tr ~at:Time.zero
      (T.Wall_release
         { m = 1; released_at = Time.zero;
           components = Array.make nseg 1 })
  | _ -> ());
  t
