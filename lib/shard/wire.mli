(** The sharded engine's wire protocol (DESIGN.md §15).

    Everything that crosses a shard boundary is one {!packet}: a source
    shard, a destination, the sender's {!Sclock} stamp (receivers
    {!Sclock.catch_up} on it before anything else), and a {!msg}.
    Packets travel as {!Hdd_util.Binc} frames — length-prefixed,
    CRC-guarded, with a result-returning {!decode} — so a torn pipe or
    a corrupted byte surfaces as a clean error, never a nonsense
    snapshot.

    The concurrency-control payloads are deliberately the same values
    the multicore runtime shares through [Atomic]s: frozen
    {!Registry.snapshot}s ([Pub]), committed version batches ([Delta])
    and released time walls ([Wall]).  Shipping CC state instead of
    taking locks is the whole point — the read path needs no
    registration round trip (PAPER.md; "transparent concurrency
    control" in PAPERS.md). *)

(** An activity publication: shard [p_shard]'s frozen registry view,
    exact for every argument at or below [p_upto].  [p_marks.(seg)] is
    the number of [Delta] messages for own segment [seg] broadcast
    before the capture: a receiver that has applied that many deltas
    and sees a class quiescent below a threshold in [p_snap] holds
    every version the threshold can reach.  [p_seq] orders
    publications per sender so late or duplicated ones are ignored. *)
type pub = {
  p_shard : int;
  p_seq : int;
  p_upto : Time.t;
  p_marks : int array;
  p_snap : Registry.snapshot;
}

(** A replication batch: the versions one commit installed into one of
    the sender's own segments.  Reliable FIFO per channel — faults are
    for publications only (see {!Netfault}). *)
type delta = {
  dl_shard : int;
  dl_segment : int;
  dl_versions : (int * Time.t * int) list;  (** key, write ts, value *)
}

(** Per-shard tallies carried home by [Outcome] in process mode. *)
type counters = {
  k_committed : int;
  k_aborted : int;
  k_reads_a : int;
  k_reads_b : int;
  k_reads_c : int;
  k_writes : int;
  k_stale_waits : int;
  k_wall_releases : int;
  k_wall_lag_sum : int;
  k_wall_lag_max : int;
}

type msg =
  | Pub of pub
  | Delta of delta
  | Wall of Hdd_core.Timewall.wall  (** coordinator broadcast *)
  | Read_req of { req : int; segment : int; key : int; threshold : Time.t }
      (** 2PC-baseline only: read at the owner *)
  | Read_reply of { req : int; slice : (Time.t * int) list }
      (** the visible slice under the threshold, newest first *)
  | Lock_req of { req : int; segment : int }  (** 2PC-baseline only *)
  | Lock_reply of { req : int; granted : bool }
  | Unlock of { segment : int }
  | Exec of Hdd_runtime.Engine.desc  (** router -> node work dispatch *)
  | Drain  (** router -> node: no more [Exec]s are coming *)
  | Outcome of {
      shard : int;
      outcomes : (Txn.id * bool) list;
      counters : counters;
    }
  | Trace_slice of { shard : int; records : Hdd_obs.Trace.record list }
  | Bye of { shard : int }

type packet = { src : int; dst : int; stamp : Time.t; msg : msg }

val encode : packet -> bytes
(** One {!Hdd_util.Binc} frame.
    @raise Invalid_argument on a message the codec cannot express
    (there are none today). *)

val decode : bytes -> pos:int -> (packet * int, string) result
(** Cut and decode one frame at [pos]; never raises. *)

val read_packet : Hdd_util.Binc.reader -> packet
(** The raw payload reader, for composing into larger frames.
    @raise Hdd_util.Binc.Error on malformed bytes. *)

val write_packet : Hdd_util.Binc.writer -> packet -> unit

val equal : packet -> packet -> bool
(** Structural equality (field-by-field; snapshots compare by their
    {!Registry.snap_parts}).  For the round-trip property suite. *)

val counters_zero : counters
