(** Scripted network faults for the loopback transport — the shard-net
    sibling of {!Hdd_storage.Fault}.

    The storage fault plans perturb WAL writes at scripted {e points};
    these perturb {e activity publications} ([Pub] messages) at
    scripted {e ordinals}: the [n]th [Pub] send through the transport
    (counting every per-destination send of every broadcast, from 0)
    can be dropped, duplicated, delayed behind later publications, or
    reordered with the next one to the same destination.

    Only publications are fair game.  [Delta] messages are the
    replication stream and are contractually reliable FIFO (a real
    deployment would put them on a sequenced channel); publications are
    pure hints — a reader that misses one just waits for the next, so
    every fault here must cost waiting, never consistency.  The
    transport fault suite pins exactly that: seeds run with faulted
    publications must still pass the full cross-shard oracle. *)

type event =
  | Drop of int  (** lose the [n]th publication send entirely *)
  | Dup of int  (** deliver the [n]th publication send twice *)
  | Delay of { pub : int; by : int }
      (** hold the [n]th publication until [by] later publications to
          the same destination have been delivered *)
  | Reorder of int
      (** swap the [n]th publication with the next one to the same
          destination (equals [Delay { by = 1 }]) *)

val kind : event -> string
(** Stable tag, mirroring {!Hdd_storage.Fault.kind}: ["net_drop"],
    ["net_dup"], ["net_delay"], ["net_reorder"]. *)

val kinds : string list
(** Every tag {!kind} can produce, for coverage assertions. *)

type plan
(** Mutable: the transport consumes one publication ordinal per [Pub]
    send and records which events fired. *)

val plan : event list -> plan
val none : unit -> plan

(** Transport-side interface. *)

type action =
  | Deliver
  | Skip
  | Twice
  | Hold of int  (** deliver after this many later pubs to the same dst *)

val on_pub : plan -> action
(** Consume the next publication ordinal and say what to do with it.
    An ordinal named by several events obeys the first in plan order. *)

val fired : plan -> event list
(** Events whose ordinal has been reached, oldest first. *)
