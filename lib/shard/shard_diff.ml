module D = Hdd_runtime.Differential
module E = Hdd_runtime.Engine
module P = Hdd_core.Partition
module Spec = Hdd_core.Spec
module Prng = Hdd_util.Prng

type mode = [ `Det | `Domains | `Processes ]

let run_mode ?config ~partition ~init ~shards ~seed ~script mode =
  match mode with
  | `Det ->
    Cluster.run_script_det ?config ~partition ~init ~shards ~seed ~script ()
  | `Domains ->
    Cluster.run_script_domains ?config ~partition ~init ~shards ~script ()
  | `Processes ->
    Cluster.run_script_processes ?config ~partition ~init ~shards ~script ()

let check ?(mode = `Det) ?config ~partition ~init ~shards ~seed ~script () =
  let run = run_mode ?config ~partition ~init ~shards ~seed ~script mode in
  D.check_run ~partition ~init ~script run

let check_det ?fault ?config ~partition ~init ~shards ~seed ~script () =
  let run =
    Cluster.run_script_det ?fault ?config ~partition ~init ~shards ~seed
      ~script ()
  in
  D.check_run ~partition ~init ~script run

(* Mirror of {!Hdd_runtime.Differential.stress_one}, with the cluster in
   place of the multicore engine: the same seed draws the same hierarchy
   and the same script, so a disagreement between the two harnesses is
   itself a signal. *)
let stress_case ~seed ~txns ~profile =
  let prng = Prng.create ((seed * 2) + 1) in
  let partition =
    if seed land 1 = 0 then D.chain_partition (4 + Prng.int prng 5)
    else D.tree_partition (3 + Prng.int prng 3)
  in
  let ro_frac, abort_frac =
    match profile with
    | D.Abort_heavy -> (0.1, 0.4)
    | D.Adhoc_read -> (0.5, 0.05)
    | D.Mixed -> (0.25, 0.15)
  in
  (partition, D.gen_script ~partition ~seed ~txns ~ro_frac ~abort_frac ())

let stress_one ?(mode = `Det) ~seed ~shards ~txns ~profile () =
  let partition, script = stress_case ~seed ~txns ~profile in
  check ~mode ~partition ~init:D.default_init ~shards ~seed ~script ()

(* --- curated scenarios for the golden traces --- *)

type golden = {
  g_name : string;
  g_partition : P.t;
  g_init : Granule.t -> int;
  g_script : Cluster.script;
}

let g ~segment ~key = Granule.make ~segment ~key
let u id cls ops = { E.d_id = id; d_kind = `Update cls; d_ops = ops; d_abort = false }
let ro id ops = { E.d_id = id; d_kind = `Read_only; d_ops = ops; d_abort = false }

(* Figure 1: two tellers read-modify-write one account; an auditor on
   the other shard reads it through the wall. *)
let fig1 =
  let acct = g ~segment:0 ~key:0 in
  { g_name = "fig1";
    g_partition =
      P.build_exn
        (Spec.make ~segments:[ "accounts" ]
           ~types:
             [ Spec.txn_type ~name:"teller" ~writes:[ 0 ] ~reads:[ 0 ] ]);
    g_init = (fun _ -> 100);
    g_script =
      [| u 1 0 [ E.Read acct; E.Write (acct, 110) ];
         u 2 0 [ E.Read acct; E.Write (acct, 120) ];
         ro 3 [ E.Read acct ] |] }

(* Figures 3/4 inventory pipeline, classes ordered so each class's root
   segment is its own index (the engine's write-routing invariant):
   type "reorder" writes D0 reading the whole chain, "post" writes D1
   reading D1-D2, "insert" writes D2.  At two shards the post class
   lands on shard 1 and its D2 read crosses the wire (Protocol A), while
   the audit walks all three segments off the walls (Protocol C). *)
let fig34 =
  let reorder = g ~segment:0 ~key:0
  and level = g ~segment:1 ~key:0
  and event = g ~segment:2 ~key:0 in
  { g_name = "fig34";
    g_partition =
      P.build_exn
        (Spec.make
           ~segments:[ "reorders"; "inventory"; "events" ]
           ~types:
             [ Spec.txn_type ~name:"reorder" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ];
               Spec.txn_type ~name:"post" ~writes:[ 1 ] ~reads:[ 1; 2 ];
               Spec.txn_type ~name:"insert" ~writes:[ 2 ] ~reads:[ 2 ] ]);
    g_init = (fun _ -> 0);
    g_script =
      [| u 1 2 [ E.Write (event, 1) ];
         u 2 1 [ E.Read event; E.Read level; E.Write (level, 1) ];
         u 3 0 [ E.Read event; E.Read level; E.Write (reorder, 1) ];
         ro 4 [ E.Read reorder; E.Read level; E.Read event ] |] }

(* The two-segment chain with a spanning read-only transaction — the
   explorer's "wall" scenario.  Class 1 lives on shard 1, so the low
   class's up-chain read and the audit's walled reads both compose
   thresholds from a remote snapshot. *)
let wall =
  let a = g ~segment:1 ~key:0 and b = g ~segment:0 ~key:0 in
  { g_name = "wall";
    g_partition =
      P.build_exn
        (Spec.make ~segments:[ "lower"; "upper" ]
           ~types:
             [ Spec.txn_type ~name:"low" ~writes:[ 0 ] ~reads:[ 0; 1 ];
               Spec.txn_type ~name:"high" ~writes:[ 1 ] ~reads:[ 1 ] ]);
    g_init = (fun _ -> 0);
    g_script =
      [| u 1 1 [ E.Write (a, 7) ];
         u 2 0 [ E.Read a; E.Write (b, 8) ];
         ro 3 [ E.Read a; E.Read b ] |] }

let goldens = [ fig1; fig34; wall ]

let golden_records ?(shards = 2) ?(seed = 7) gl =
  let run =
    Cluster.run_script_det ~partition:gl.g_partition ~init:gl.g_init ~shards
      ~seed ~script:gl.g_script ()
  in
  run.E.records

let golden_check ?(shards = 2) ?(seed = 7) gl =
  check ~partition:gl.g_partition ~init:gl.g_init ~shards ~seed
    ~script:gl.g_script ()
