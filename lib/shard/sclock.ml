type t = { shards : int; me : int; mutable last : Time.t }

let create ~shards ~me =
  if shards <= 0 || me < 0 || me >= shards then
    invalid_arg "Sclock.create: need 0 <= me < shards";
  { shards; me; last = Time.zero }

let tick t =
  (* smallest n > last with n mod shards = me *)
  let r = t.last mod t.shards in
  let n = t.last + ((t.me - r + t.shards) mod t.shards) in
  let n = if n <= t.last then n + t.shards else n in
  t.last <- n;
  n

let now t = t.last

let catch_up t stamp = if stamp > t.last then t.last <- stamp
