(** Strided Lamport clocks — the sharded engine's substitute for the
    multicore runtime's shared {!Hdd_runtime.Gclock}.

    Across processes there is no [Atomic] to tick, so each shard draws
    its timestamps from its own residue class: shard [me] of [shards]
    only ever emits times congruent to [me] modulo [shards].  Ticks are
    therefore {e globally unique} without coordination.  Receiving any
    message first {!catch_up}s the clock to the sender's stamp, so a
    tick taken after a receipt is strictly larger than every time the
    sender had handed out — the happens-before edge all the
    activity-link soundness arguments lean on (a registration on shard
    [s] with initiation below a remote reader's threshold must have
    been visible in the publication the threshold was computed from).

    Unlike a wall clock, ticks advance by at least [shards] each — the
    activity machinery only ever compares times, never differences, so
    the stride is harmless. *)

type t

val create : shards:int -> me:int -> t
(** @raise Invalid_argument unless [0 <= me < shards]. *)

val tick : t -> Time.t
(** The smallest unused time in this shard's residue class above
    everything seen so far: unique across all shards, monotone, and
    larger than any stamp previously passed to {!catch_up}. *)

val now : t -> Time.t
(** The largest time handed out or observed so far.  Every later
    {!tick} on this shard exceeds it, which is what makes a
    publication's [upto] bound sound: nothing of this shard's can
    initiate at or below [now] anymore. *)

val catch_up : t -> Time.t -> unit
(** Fold a received stamp into the clock ([now] becomes at least the
    stamp).  Call on every message receipt, before any tick that must
    order after the send. *)
