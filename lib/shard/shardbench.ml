module D = Hdd_runtime.Differential
module E = Hdd_runtime.Engine
module J = Hdd_benchkit.Jsonlite

type side = {
  s_txns : int;
  s_cross_reads : int;
  s_txns_per_sec : float;
  s_cross_reads_per_sec : float;
  s_lat_p50_us : float;
  s_lat_p95_us : float;
  s_lat_p99_us : float;
}

type result = {
  r_shards : int;
  r_seconds : float;
  r_cross_per_txn : int;
  r_publish_every : int;
  r_hdd : side;
  r_hdd_batched : side option;
  r_tpc : side;
  r_speedup : float;
  r_batch_delta_p50_us : float option;
}

(* closed-loop per-transaction latency quantile over the merged
   per-shard samples (each sample is one full exec+pump round trip) *)
let quantile samples p =
  let n = Array.length samples in
  if n = 0 then 0.
  else begin
    Array.sort compare samples;
    samples.(Int.min (n - 1) (int_of_float (p *. float_of_int (n - 1))))
  end

let max_samples = 1 lsl 16

(* One closed loop per shard domain, every transaction one own-segment
   write plus [cross] reads of the next segment up the chain — which a
   different shard owns, so every read crosses the interconnect.  The
   HDD side ships the whole transaction through {!Node.exec} (Protocol
   A/B over publications: zero read-time round trips); the 2PC side
   pays the lock / read / unlock conversation per read and commits
   locally without any replication or registry work, which is the
   kindest possible baseline.  [publish_every] is the HDD node's
   publication batch: versions still ship per commit, activity
   publications amortize over K. *)
let bench_side ~mode ~shards ~seconds ~cross ~keys ~publish_every () =
  let partition = D.chain_partition (shards + 1) in
  let nets = Transport.Loopback.create ~nodes:shards () in
  let stop = Atomic.make false in
  let done_count = Atomic.make 0 in
  let config = { Node.default_config with traced = false; publish_every } in
  let run me =
    let node =
      Node.create ~config ~partition ~init:D.default_init ~net:nets.(me) ()
    in
    Node.set_on_wait node (fun () -> Unix.sleepf 1e-6);
    let lat = Array.make max_samples 0. in
    let nlat = ref 0 in
    let deadline = Unix.gettimeofday () +. seconds in
    let next_id = ref (me + 1) in
    let n = ref 0 in
    let now = ref (Unix.gettimeofday ()) in
    while !now < deadline do
      let key = !n mod keys in
      (match mode with
      | `Hdd ->
        let ops =
          E.Write (Granule.make ~segment:me ~key, !n)
          :: List.init cross (fun k ->
                 E.Read
                   (Granule.make ~segment:(me + 1) ~key:((key + k) mod keys)))
        in
        Node.exec node
          { E.d_id = !next_id; d_kind = `Update me; d_ops = ops;
            d_abort = false }
      | `Tpc ->
        for k = 0 to cross - 1 do
          ignore
            (Node.read_2pc node ~segment:(me + 1) ~key:((key + k) mod keys))
        done;
        Node.commit_local node ~segment:me ~key ~value:!n;
        (* 2PC peers learn of nothing through publications, but the
           clock gossip keeps stamps comparable across shards *)
        Node.publish node);
      next_id := !next_id + shards;
      incr n;
      Node.pump node;
      let t1 = Unix.gettimeofday () in
      if !nlat < max_samples then begin
        lat.(!nlat) <- (t1 -. !now) *. 1e6;
        incr nlat
      end;
      now := t1
    done;
    Atomic.incr done_count;
    (* keep serving peers (publications, lock and read requests) until
       every loop is past its deadline *)
    while not (Atomic.get stop) do
      Node.pump node;
      Node.publish_final node;
      Unix.sleepf 2e-6
    done;
    Node.pump node;
    (node, Array.sub lat 0 !nlat)
  in
  let doms = Array.init shards (fun i -> Domain.spawn (fun () -> run i)) in
  while Atomic.get done_count < shards do
    Unix.sleepf 100e-6
  done;
  Atomic.set stop true;
  let joined = Array.map Domain.join doms in
  let nodes = Array.map fst joined in
  let lats = Array.concat (Array.to_list (Array.map snd joined)) in
  let sum f = Array.fold_left (fun a n -> a + f (Node.counters n)) 0 nodes in
  let txns = sum (fun k -> k.Wire.k_committed) in
  let reads = sum (fun k -> k.Wire.k_reads_a) in
  { s_txns = txns;
    s_cross_reads = reads;
    s_txns_per_sec = float_of_int txns /. seconds;
    s_cross_reads_per_sec = float_of_int reads /. seconds;
    s_lat_p50_us = quantile lats 0.5;
    s_lat_p95_us = quantile lats 0.95;
    s_lat_p99_us = quantile lats 0.99 }

let run ?(shards = 4) ?(seconds = 1.0) ?(cross = 4) ?(keys = 64)
    ?(publish_every = 8) () =
  let publish_every = Int.max 1 publish_every in
  let hdd =
    bench_side ~mode:`Hdd ~shards ~seconds ~cross ~keys ~publish_every:1 ()
  in
  let hdd_batched =
    if publish_every = 1 then None
    else
      Some
        (bench_side ~mode:`Hdd ~shards ~seconds ~cross ~keys ~publish_every
           ())
  in
  let tpc =
    bench_side ~mode:`Tpc ~shards ~seconds ~cross ~keys ~publish_every:1 ()
  in
  { r_shards = shards;
    r_seconds = seconds;
    r_cross_per_txn = cross;
    r_publish_every = publish_every;
    r_hdd = hdd;
    r_hdd_batched = hdd_batched;
    r_tpc = tpc;
    r_speedup =
      (if tpc.s_cross_reads_per_sec > 0. then
         hdd.s_cross_reads_per_sec /. tpc.s_cross_reads_per_sec
       else infinity);
    r_batch_delta_p50_us =
      Option.map (fun b -> b.s_lat_p50_us -. hdd.s_lat_p50_us) hdd_batched }

let side_json s =
  J.Obj
    [ ("txns", J.num_of_int s.s_txns);
      ("cross_reads", J.num_of_int s.s_cross_reads);
      ("txns_per_sec", J.Num s.s_txns_per_sec);
      ("cross_reads_per_sec", J.Num s.s_cross_reads_per_sec);
      ("commit_latency_us",
       J.Obj
         [ ("p50", J.Num s.s_lat_p50_us);
           ("p95", J.Num s.s_lat_p95_us);
           ("p99", J.Num s.s_lat_p99_us) ]) ]

let to_json r =
  J.with_schema
    [ ("shards", J.num_of_int r.r_shards);
      ("seconds", J.Num r.r_seconds);
      ("cross_reads_per_txn", J.num_of_int r.r_cross_per_txn);
      ("publish_every", J.num_of_int r.r_publish_every);
      ("hdd", side_json r.r_hdd);
      ("hdd_batched",
       match r.r_hdd_batched with None -> J.Null | Some s -> side_json s);
      ("twopc", side_json r.r_tpc);
      ("speedup", J.Num r.r_speedup);
      ("batch_latency_delta_p50_us",
       match r.r_batch_delta_p50_us with None -> J.Null | Some d -> J.Num d)
    ]

let gates r =
  let problems = ref [] in
  if r.r_hdd.s_txns = 0 then
    problems := "HDD side committed nothing" :: !problems;
  (match r.r_hdd_batched with
  | Some b when b.s_txns = 0 ->
    problems :=
      Printf.sprintf "HDD side committed nothing at publish_every=%d"
        r.r_publish_every
      :: !problems
  | _ -> ());
  if r.r_tpc.s_txns = 0 then
    problems := "2PC side committed nothing" :: !problems;
  if r.r_speedup <= 1.0 then
    problems :=
      Printf.sprintf
        "HDD cross-shard reads no faster than the 2PC baseline \
         (speedup %.2fx)"
        r.r_speedup
      :: !problems;
  List.rev !problems

let pp ppf r =
  Format.fprintf ppf
    "shards=%d cross=%d: HDD %.0f cross-reads/sec (%.0f txns/sec), 2PC \
     %.0f cross-reads/sec (%.0f txns/sec), speedup %.2fx@."
    r.r_shards r.r_cross_per_txn r.r_hdd.s_cross_reads_per_sec
    r.r_hdd.s_txns_per_sec r.r_tpc.s_cross_reads_per_sec
    r.r_tpc.s_txns_per_sec r.r_speedup;
  Format.fprintf ppf "  HDD commit latency p50/p95/p99 us: %.1f/%.1f/%.1f@."
    r.r_hdd.s_lat_p50_us r.r_hdd.s_lat_p95_us r.r_hdd.s_lat_p99_us;
  match r.r_hdd_batched with
  | None -> ()
  | Some b ->
    Format.fprintf ppf
      "  batched K=%d: %.0f txns/sec, p50/p95/p99 us %.1f/%.1f/%.1f \
       (p50 delta %+.1f us)@."
      r.r_publish_every b.s_txns_per_sec b.s_lat_p50_us b.s_lat_p95_us
      b.s_lat_p99_us
      (Option.value ~default:0. r.r_batch_delta_p50_us)
