module D = Hdd_runtime.Differential
module E = Hdd_runtime.Engine
module J = Hdd_benchkit.Jsonlite

type side = {
  s_txns : int;
  s_cross_reads : int;
  s_txns_per_sec : float;
  s_cross_reads_per_sec : float;
}

type result = {
  r_shards : int;
  r_seconds : float;
  r_cross_per_txn : int;
  r_hdd : side;
  r_tpc : side;
  r_speedup : float;
}

(* One closed loop per shard domain, every transaction one own-segment
   write plus [cross] reads of the next segment up the chain — which a
   different shard owns, so every read crosses the interconnect.  The
   HDD side ships the whole transaction through {!Node.exec} (Protocol
   A/B over publications: zero read-time round trips); the 2PC side
   pays the lock / read / unlock conversation per read and commits
   locally without any replication or registry work, which is the
   kindest possible baseline. *)
let bench_side ~mode ~shards ~seconds ~cross ~keys () =
  let partition = D.chain_partition (shards + 1) in
  let nets = Transport.Loopback.create ~nodes:shards () in
  let stop = Atomic.make false in
  let done_count = Atomic.make 0 in
  let config = { Node.default_config with traced = false } in
  let run me =
    let node =
      Node.create ~config ~partition ~init:D.default_init ~net:nets.(me) ()
    in
    Node.set_on_wait node (fun () -> Unix.sleepf 1e-6);
    let deadline = Unix.gettimeofday () +. seconds in
    let next_id = ref (me + 1) in
    let n = ref 0 in
    while Unix.gettimeofday () < deadline do
      let key = !n mod keys in
      (match mode with
      | `Hdd ->
        let ops =
          E.Write (Granule.make ~segment:me ~key, !n)
          :: List.init cross (fun k ->
                 E.Read
                   (Granule.make ~segment:(me + 1) ~key:((key + k) mod keys)))
        in
        Node.exec node
          { E.d_id = !next_id; d_kind = `Update me; d_ops = ops;
            d_abort = false }
      | `Tpc ->
        for k = 0 to cross - 1 do
          ignore
            (Node.read_2pc node ~segment:(me + 1) ~key:((key + k) mod keys))
        done;
        Node.commit_local node ~segment:me ~key ~value:!n);
      next_id := !next_id + shards;
      incr n;
      Node.publish node;
      Node.pump node
    done;
    Atomic.incr done_count;
    (* keep serving peers (publications, lock and read requests) until
       every loop is past its deadline *)
    while not (Atomic.get stop) do
      Node.pump node;
      Node.publish_final node;
      Unix.sleepf 2e-6
    done;
    Node.pump node;
    node
  in
  let doms = Array.init shards (fun i -> Domain.spawn (fun () -> run i)) in
  while Atomic.get done_count < shards do
    Unix.sleepf 100e-6
  done;
  Atomic.set stop true;
  let nodes = Array.map Domain.join doms in
  let sum f = Array.fold_left (fun a n -> a + f (Node.counters n)) 0 nodes in
  let txns = sum (fun k -> k.Wire.k_committed) in
  let reads = sum (fun k -> k.Wire.k_reads_a) in
  { s_txns = txns;
    s_cross_reads = reads;
    s_txns_per_sec = float_of_int txns /. seconds;
    s_cross_reads_per_sec = float_of_int reads /. seconds }

let run ?(shards = 4) ?(seconds = 1.0) ?(cross = 4) ?(keys = 64) () =
  let hdd = bench_side ~mode:`Hdd ~shards ~seconds ~cross ~keys () in
  let tpc = bench_side ~mode:`Tpc ~shards ~seconds ~cross ~keys () in
  { r_shards = shards;
    r_seconds = seconds;
    r_cross_per_txn = cross;
    r_hdd = hdd;
    r_tpc = tpc;
    r_speedup =
      (if tpc.s_cross_reads_per_sec > 0. then
         hdd.s_cross_reads_per_sec /. tpc.s_cross_reads_per_sec
       else infinity) }

let side_json s =
  J.Obj
    [ ("txns", J.num_of_int s.s_txns);
      ("cross_reads", J.num_of_int s.s_cross_reads);
      ("txns_per_sec", J.Num s.s_txns_per_sec);
      ("cross_reads_per_sec", J.Num s.s_cross_reads_per_sec) ]

let to_json r =
  J.with_schema
    [ ("shards", J.num_of_int r.r_shards);
      ("seconds", J.Num r.r_seconds);
      ("cross_reads_per_txn", J.num_of_int r.r_cross_per_txn);
      ("hdd", side_json r.r_hdd);
      ("twopc", side_json r.r_tpc);
      ("speedup", J.Num r.r_speedup) ]

let gates r =
  let problems = ref [] in
  if r.r_hdd.s_txns = 0 then
    problems := "HDD side committed nothing" :: !problems;
  if r.r_tpc.s_txns = 0 then
    problems := "2PC side committed nothing" :: !problems;
  if r.r_speedup <= 1.0 then
    problems :=
      Printf.sprintf
        "HDD cross-shard reads no faster than the 2PC baseline \
         (speedup %.2fx)"
        r.r_speedup
      :: !problems;
  List.rev !problems

let pp ppf r =
  Format.fprintf ppf
    "shards=%d cross=%d: HDD %.0f cross-reads/sec (%.0f txns/sec), 2PC \
     %.0f cross-reads/sec (%.0f txns/sec), speedup %.2fx@."
    r.r_shards r.r_cross_per_txn r.r_hdd.s_cross_reads_per_sec
    r.r_hdd.s_txns_per_sec r.r_tpc.s_cross_reads_per_sec
    r.r_tpc.s_txns_per_sec r.r_speedup
