module B = Hdd_util.Binc
module T = Hdd_obs.Trace
module TW = Hdd_core.Timewall
module E = Hdd_runtime.Engine

type pub = {
  p_shard : int;
  p_seq : int;
  p_upto : Time.t;
  p_marks : int array;
  p_snap : Registry.snapshot;
}

type delta = {
  dl_shard : int;
  dl_segment : int;
  dl_versions : (int * Time.t * int) list;
}

type counters = {
  k_committed : int;
  k_aborted : int;
  k_reads_a : int;
  k_reads_b : int;
  k_reads_c : int;
  k_writes : int;
  k_stale_waits : int;
  k_wall_releases : int;
  k_wall_lag_sum : int;
  k_wall_lag_max : int;
}

let counters_zero =
  { k_committed = 0; k_aborted = 0; k_reads_a = 0; k_reads_b = 0;
    k_reads_c = 0; k_writes = 0; k_stale_waits = 0; k_wall_releases = 0;
    k_wall_lag_sum = 0; k_wall_lag_max = 0 }

type msg =
  | Pub of pub
  | Delta of delta
  | Wall of TW.wall
  | Read_req of { req : int; segment : int; key : int; threshold : Time.t }
  | Read_reply of { req : int; slice : (Time.t * int) list }
  | Lock_req of { req : int; segment : int }
  | Lock_reply of { req : int; granted : bool }
  | Unlock of { segment : int }
  | Exec of E.desc
  | Drain
  | Outcome of {
      shard : int;
      outcomes : (Txn.id * bool) list;
      counters : counters;
    }
  | Trace_slice of { shard : int; records : T.record list }
  | Bye of { shard : int }

type packet = { src : int; dst : int; stamp : Time.t; msg : msg }

(* --- writing --- *)

let w_snap b snap =
  B.w_array b
    (fun b (actives, windows, gen) ->
      B.w_list b
        (fun b (id, t) ->
          B.w_int b id;
          B.w_int b t)
        actives;
      B.w_array b
        (fun b (i, e) ->
          B.w_int b i;
          B.w_int b e)
        windows;
      B.w_int b gen)
    (Registry.snap_parts snap)

let w_wall b (w : TW.wall) =
  B.w_int b w.TW.s;
  B.w_int b w.TW.m;
  B.w_array b B.w_int (TW.to_vector w);
  B.w_int b w.TW.released_at

let w_op b = function
  | E.Read g ->
    B.w_int b 0;
    B.w_int b g.Granule.segment;
    B.w_int b g.Granule.key
  | E.Write (g, v) ->
    B.w_int b 1;
    B.w_int b g.Granule.segment;
    B.w_int b g.Granule.key;
    B.w_int b v

let w_desc b (d : E.desc) =
  B.w_int b d.E.d_id;
  (match d.E.d_kind with
  | `Update c ->
    B.w_int b 0;
    B.w_int b c
  | `Read_only -> B.w_int b 1);
  B.w_list b w_op d.E.d_ops;
  B.w_bool b d.E.d_abort

let proto_int = function T.A -> 0 | T.B -> 1 | T.C -> 2
let stage_int = function T.Routing -> 0 | T.Barrier -> 1 | T.Rule -> 2

let w_kind b = function
  | T.Update c ->
    B.w_int b 0;
    B.w_int b c
  | T.Read_only -> B.w_int b 1
  | T.Hosted below ->
    B.w_int b 2;
    B.w_int b below
  | T.Adhoc { wsegs; rsegs } ->
    B.w_int b 3;
    B.w_list b B.w_int wsegs;
    B.w_list b B.w_int rsegs

let w_event b = function
  | T.Begin { txn; kind; init } ->
    B.w_int b 0;
    B.w_int b txn;
    w_kind b kind;
    B.w_int b init
  | T.Read { txn; protocol; segment; key; threshold; version } ->
    B.w_int b 1;
    B.w_int b txn;
    B.w_int b (proto_int protocol);
    B.w_int b segment;
    B.w_int b key;
    B.w_int b threshold;
    B.w_int b version
  | T.Block { txn; protocol; segment; key; on } ->
    B.w_int b 2;
    B.w_int b txn;
    B.w_int b (proto_int protocol);
    B.w_int b segment;
    B.w_int b key;
    B.w_list b B.w_int on
  | T.Reject { txn; protocol; stage; segment; reason } ->
    B.w_int b 3;
    B.w_int b txn;
    B.w_option b (fun b p -> B.w_int b (proto_int p)) protocol;
    B.w_int b (stage_int stage);
    B.w_int b segment;
    B.w_string b reason
  | T.Write { txn; segment; key; ts } ->
    B.w_int b 4;
    B.w_int b txn;
    B.w_int b segment;
    B.w_int b key;
    B.w_int b ts
  | T.Commit { txn; at } ->
    B.w_int b 5;
    B.w_int b txn;
    B.w_int b at
  | T.Abort { txn; at } ->
    B.w_int b 6;
    B.w_int b txn;
    B.w_int b at
  | T.Wall_release { m; released_at; components } ->
    B.w_int b 7;
    B.w_int b m;
    B.w_int b released_at;
    B.w_array b B.w_int components
  | T.Wall_blocked { on } ->
    B.w_int b 8;
    B.w_int b on
  | T.Gc { watermark; vector; dropped } ->
    B.w_int b 9;
    B.w_int b watermark;
    B.w_array b B.w_int vector;
    B.w_int b dropped
  | T.Seg_gc { segment; dropped } ->
    B.w_int b 10;
    B.w_int b segment;
    B.w_int b dropped
  | T.Registry_prune { upto; records_dropped; windows_dropped } ->
    B.w_int b 11;
    B.w_int b upto;
    B.w_int b records_dropped;
    B.w_int b windows_dropped
  | T.Sim { label; txn } ->
    B.w_int b 12;
    B.w_string b label;
    B.w_int b txn
  | T.Note s ->
    B.w_int b 13;
    B.w_string b s
  | T.Durable_ack { txn; at } ->
    B.w_int b 14;
    B.w_int b txn;
    B.w_int b at
  | T.Durable_recovered { txn; at } ->
    B.w_int b 15;
    B.w_int b txn;
    B.w_int b at
  | T.Recovery_complete { last_time } ->
    B.w_int b 16;
    B.w_int b last_time
  | T.Checkpoint_cut { seq; components } ->
    B.w_int b 17;
    B.w_int b seq;
    B.w_array b B.w_int components
  | T.Repartition { epoch; kind; moved; fresh_store } ->
    B.w_int b 18;
    B.w_int b epoch;
    B.w_string b kind;
    B.w_list b B.w_int moved;
    B.w_int b (if fresh_store then 1 else 0)
  | T.Escalation { seq; modes } ->
    B.w_int b 19;
    B.w_int b seq;
    B.w_list b B.w_int modes

let w_record b (r : T.record) =
  B.w_int b r.T.seq;
  B.w_int b r.T.at;
  B.w_int b r.T.dom;
  w_event b r.T.ev

let w_counters b k =
  B.w_int b k.k_committed;
  B.w_int b k.k_aborted;
  B.w_int b k.k_reads_a;
  B.w_int b k.k_reads_b;
  B.w_int b k.k_reads_c;
  B.w_int b k.k_writes;
  B.w_int b k.k_stale_waits;
  B.w_int b k.k_wall_releases;
  B.w_int b k.k_wall_lag_sum;
  B.w_int b k.k_wall_lag_max

let w_msg b = function
  | Pub p ->
    B.w_int b 0;
    B.w_int b p.p_shard;
    B.w_int b p.p_seq;
    B.w_int b p.p_upto;
    B.w_array b B.w_int p.p_marks;
    w_snap b p.p_snap
  | Delta d ->
    B.w_int b 1;
    B.w_int b d.dl_shard;
    B.w_int b d.dl_segment;
    B.w_list b
      (fun b (key, ts, v) ->
        B.w_int b key;
        B.w_int b ts;
        B.w_int b v)
      d.dl_versions
  | Wall w ->
    B.w_int b 2;
    w_wall b w
  | Read_req { req; segment; key; threshold } ->
    B.w_int b 3;
    B.w_int b req;
    B.w_int b segment;
    B.w_int b key;
    B.w_int b threshold
  | Read_reply { req; slice } ->
    B.w_int b 4;
    B.w_int b req;
    B.w_list b
      (fun b (ts, v) ->
        B.w_int b ts;
        B.w_int b v)
      slice
  | Lock_req { req; segment } ->
    B.w_int b 5;
    B.w_int b req;
    B.w_int b segment
  | Lock_reply { req; granted } ->
    B.w_int b 6;
    B.w_int b req;
    B.w_bool b granted
  | Unlock { segment } ->
    B.w_int b 7;
    B.w_int b segment
  | Exec d ->
    B.w_int b 8;
    w_desc b d
  | Drain -> B.w_int b 9
  | Outcome { shard; outcomes; counters } ->
    B.w_int b 10;
    B.w_int b shard;
    B.w_list b
      (fun b (id, c) ->
        B.w_int b id;
        B.w_bool b c)
      outcomes;
    w_counters b counters
  | Trace_slice { shard; records } ->
    B.w_int b 11;
    B.w_int b shard;
    B.w_list b w_record records
  | Bye { shard } ->
    B.w_int b 12;
    B.w_int b shard

let write_packet b pkt =
  B.w_int b pkt.src;
  B.w_int b pkt.dst;
  B.w_int b pkt.stamp;
  w_msg b pkt.msg

let encode pkt =
  let b = B.writer () in
  write_packet b pkt;
  B.frame b

(* --- reading --- *)

let bad what n = raise (B.Error (Printf.sprintf "bad %s tag %d" what n))

let r_snap r =
  Registry.snapshot_of_parts
    (B.r_array r (fun r ->
         let actives =
           B.r_list r (fun r ->
               let id = B.r_int r in
               let t = B.r_int r in
               (id, t))
         in
         let windows =
           B.r_array r (fun r ->
               let i = B.r_int r in
               let e = B.r_int r in
               (i, e))
         in
         let gen = B.r_int r in
         (actives, windows, gen)))

let r_wall r =
  let s = B.r_int r in
  let m = B.r_int r in
  let components = B.r_array r B.r_int in
  let released_at = B.r_int r in
  TW.make ~s ~m ~components ~released_at

let r_op r =
  match B.r_int r with
  | 0 ->
    let segment = B.r_int r in
    let key = B.r_int r in
    E.Read (Granule.make ~segment ~key)
  | 1 ->
    let segment = B.r_int r in
    let key = B.r_int r in
    let v = B.r_int r in
    E.Write (Granule.make ~segment ~key, v)
  | n -> bad "op" n

let r_desc r =
  let d_id = B.r_int r in
  let d_kind =
    match B.r_int r with
    | 0 -> `Update (B.r_int r)
    | 1 -> `Read_only
    | n -> bad "kind" n
  in
  let d_ops = B.r_list r r_op in
  let d_abort = B.r_bool r in
  { E.d_id; d_kind; d_ops; d_abort }

let int_proto r =
  match B.r_int r with
  | 0 -> T.A
  | 1 -> T.B
  | 2 -> T.C
  | n -> bad "protocol" n

let int_stage r =
  match B.r_int r with
  | 0 -> T.Routing
  | 1 -> T.Barrier
  | 2 -> T.Rule
  | n -> bad "stage" n

let r_kind r =
  match B.r_int r with
  | 0 -> T.Update (B.r_int r)
  | 1 -> T.Read_only
  | 2 -> T.Hosted (B.r_int r)
  | 3 ->
    let wsegs = B.r_list r B.r_int in
    let rsegs = B.r_list r B.r_int in
    T.Adhoc { wsegs; rsegs }
  | n -> bad "txn kind" n

let r_event r =
  match B.r_int r with
  | 0 ->
    let txn = B.r_int r in
    let kind = r_kind r in
    let init = B.r_int r in
    T.Begin { txn; kind; init }
  | 1 ->
    let txn = B.r_int r in
    let protocol = int_proto r in
    let segment = B.r_int r in
    let key = B.r_int r in
    let threshold = B.r_int r in
    let version = B.r_int r in
    T.Read { txn; protocol; segment; key; threshold; version }
  | 2 ->
    let txn = B.r_int r in
    let protocol = int_proto r in
    let segment = B.r_int r in
    let key = B.r_int r in
    let on = B.r_list r B.r_int in
    T.Block { txn; protocol; segment; key; on }
  | 3 ->
    let txn = B.r_int r in
    let protocol = B.r_option r int_proto in
    let stage = int_stage r in
    let segment = B.r_int r in
    let reason = B.r_string r in
    T.Reject { txn; protocol; stage; segment; reason }
  | 4 ->
    let txn = B.r_int r in
    let segment = B.r_int r in
    let key = B.r_int r in
    let ts = B.r_int r in
    T.Write { txn; segment; key; ts }
  | 5 ->
    let txn = B.r_int r in
    let at = B.r_int r in
    T.Commit { txn; at }
  | 6 ->
    let txn = B.r_int r in
    let at = B.r_int r in
    T.Abort { txn; at }
  | 7 ->
    let m = B.r_int r in
    let released_at = B.r_int r in
    let components = B.r_array r B.r_int in
    T.Wall_release { m; released_at; components }
  | 8 -> T.Wall_blocked { on = B.r_int r }
  | 9 ->
    let watermark = B.r_int r in
    let vector = B.r_array r B.r_int in
    let dropped = B.r_int r in
    T.Gc { watermark; vector; dropped }
  | 10 ->
    let segment = B.r_int r in
    let dropped = B.r_int r in
    T.Seg_gc { segment; dropped }
  | 11 ->
    let upto = B.r_int r in
    let records_dropped = B.r_int r in
    let windows_dropped = B.r_int r in
    T.Registry_prune { upto; records_dropped; windows_dropped }
  | 12 ->
    let label = B.r_string r in
    let txn = B.r_int r in
    T.Sim { label; txn }
  | 13 -> T.Note (B.r_string r)
  | 14 ->
    let txn = B.r_int r in
    let at = B.r_int r in
    T.Durable_ack { txn; at }
  | 15 ->
    let txn = B.r_int r in
    let at = B.r_int r in
    T.Durable_recovered { txn; at }
  | 16 -> T.Recovery_complete { last_time = B.r_int r }
  | 17 ->
    let seq = B.r_int r in
    let components = B.r_array r B.r_int in
    T.Checkpoint_cut { seq; components }
  | 18 ->
    let epoch = B.r_int r in
    let kind = B.r_string r in
    let moved = B.r_list r B.r_int in
    let fresh_store = B.r_int r <> 0 in
    T.Repartition { epoch; kind; moved; fresh_store }
  | 19 ->
    let seq = B.r_int r in
    let modes = B.r_list r B.r_int in
    T.Escalation { seq; modes }
  | n -> bad "event" n

let r_record r =
  let seq = B.r_int r in
  let at = B.r_int r in
  let dom = B.r_int r in
  let ev = r_event r in
  { T.seq; at; dom; ev }

let r_counters r =
  let k_committed = B.r_int r in
  let k_aborted = B.r_int r in
  let k_reads_a = B.r_int r in
  let k_reads_b = B.r_int r in
  let k_reads_c = B.r_int r in
  let k_writes = B.r_int r in
  let k_stale_waits = B.r_int r in
  let k_wall_releases = B.r_int r in
  let k_wall_lag_sum = B.r_int r in
  let k_wall_lag_max = B.r_int r in
  { k_committed; k_aborted; k_reads_a; k_reads_b; k_reads_c; k_writes;
    k_stale_waits; k_wall_releases; k_wall_lag_sum; k_wall_lag_max }

let r_msg r =
  match B.r_int r with
  | 0 ->
    let p_shard = B.r_int r in
    let p_seq = B.r_int r in
    let p_upto = B.r_int r in
    let p_marks = B.r_array r B.r_int in
    let p_snap = r_snap r in
    Pub { p_shard; p_seq; p_upto; p_marks; p_snap }
  | 1 ->
    let dl_shard = B.r_int r in
    let dl_segment = B.r_int r in
    let dl_versions =
      B.r_list r (fun r ->
          let key = B.r_int r in
          let ts = B.r_int r in
          let v = B.r_int r in
          (key, ts, v))
    in
    Delta { dl_shard; dl_segment; dl_versions }
  | 2 -> Wall (r_wall r)
  | 3 ->
    let req = B.r_int r in
    let segment = B.r_int r in
    let key = B.r_int r in
    let threshold = B.r_int r in
    Read_req { req; segment; key; threshold }
  | 4 ->
    let req = B.r_int r in
    let slice =
      B.r_list r (fun r ->
          let ts = B.r_int r in
          let v = B.r_int r in
          (ts, v))
    in
    Read_reply { req; slice }
  | 5 ->
    let req = B.r_int r in
    let segment = B.r_int r in
    Lock_req { req; segment }
  | 6 ->
    let req = B.r_int r in
    let granted = B.r_bool r in
    Lock_reply { req; granted }
  | 7 -> Unlock { segment = B.r_int r }
  | 8 -> Exec (r_desc r)
  | 9 -> Drain
  | 10 ->
    let shard = B.r_int r in
    let outcomes =
      B.r_list r (fun r ->
          let id = B.r_int r in
          let c = B.r_bool r in
          (id, c))
    in
    let counters = r_counters r in
    Outcome { shard; outcomes; counters }
  | 11 ->
    let shard = B.r_int r in
    let records = B.r_list r r_record in
    Trace_slice { shard; records }
  | 12 -> Bye { shard = B.r_int r }
  | n -> bad "msg" n

let read_packet r =
  let src = B.r_int r in
  let dst = B.r_int r in
  let stamp = B.r_int r in
  let msg = r_msg r in
  { src; dst; stamp; msg }

let decode buf ~pos = B.decode buf ~pos ~f:read_packet

(* --- equality (tests) --- *)

let equal_msg a b =
  match (a, b) with
  | Pub p, Pub q ->
    p.p_shard = q.p_shard && p.p_seq = q.p_seq && p.p_upto = q.p_upto
    && p.p_marks = q.p_marks
    && Registry.snap_parts p.p_snap = Registry.snap_parts q.p_snap
  | Wall v, Wall w ->
    v.TW.s = w.TW.s && v.TW.m = w.TW.m
    && TW.to_vector v = TW.to_vector w
    && v.TW.released_at = w.TW.released_at
  | a, b -> a = b

let equal a b =
  a.src = b.src && a.dst = b.dst && a.stamp = b.stamp
  && equal_msg a.msg b.msg
