(** A TPC-C-shaped workload mapped onto a TST decomposition (DESIGN.md
    §18): [branches] district segments over one shared stock base
    segment ({!Hdd_benchkit.Fixtures.branch_partition}).

    The stock class is root-only eligible (reads only its own base
    segment), so it is the class {!Hdd_hybrid.Hybrid_sched} may
    escalate; district classes cross-read stock lock-free via
    Protocol A, and the read-only stock-level mix rides Protocol C.
    [`High] contention concentrates stock accesses on zipf-hot keys in
    a read-here/write-there transfer shape — the restart storm MVTO
    suffers and commit-waits absorb. *)

type contention = [ `Low | `High ]

val contention_name : contention -> string

val stock_class : branches:int -> int
(** Class id of the escalatable stock class (the base segment). *)

val default_branches : int
val default_stock_keys : int
val default_district_keys : int

val workload :
  ?branches:int ->
  ?stock_keys:int ->
  ?district_keys:int ->
  contention:contention ->
  unit ->
  Hdd_sim.Workload.t
(** Defaults: 4 branches, 256 stock keys, 64 district keys per branch.
    [`Low]: zipf alpha 0.4 over all stock keys, 15% stock updates.
    [`High]: zipf alpha 1.2 over a 16x smaller hot set, 45% stock
    updates.
    @raise Invalid_argument when [branches < 1]. *)
