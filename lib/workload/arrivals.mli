(** Interarrival samplers for the open-loop workload suite (DESIGN.md
    §18): arrivals are decoupled from service — load is {e offered},
    not admitted, so queueing delay is part of the measured response
    time.  Feed these to {!Hdd_sim.Runner.run_arrivals}. *)

type t = Hdd_util.Prng.t -> float

val poisson : rate:float -> t
(** Memoryless arrivals at [rate] per unit of virtual time.
    @raise Invalid_argument when [rate <= 0]. *)

val bursty :
  rate_calm:float ->
  rate_burst:float ->
  mean_calm:float ->
  mean_burst:float ->
  t
(** Two-state Markov-modulated Poisson process: calm phases at
    [rate_calm] alternating with burst phases at [rate_burst], phase
    durations exponential with the given means.  The hostile arrival
    process for tail-latency experiments.
    @raise Invalid_argument on non-positive parameters. *)

val users : count:int -> think_time:float -> t
(** An open population of [count] simulated users each thinking for an
    exponential [think_time] between requests, approximated by its
    Poisson limit at rate [count / think_time] — the standard
    infinite-population approximation, which is what makes simulating
    millions of users cheap.
    @raise Invalid_argument on non-positive parameters. *)
