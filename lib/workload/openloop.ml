module Runner = Hdd_sim.Runner
module Metrics = Hdd_obs.Metrics

(* Open-loop measurement: offered arrivals, response times measured
   from the arrival instant (queueing included), SLO quantiles off an
   Hdd_obs.Metrics latency histogram.  Everything is virtual time, so
   a run is machine-independent and CI-gateable. *)

type slo = {
  s_committed : int;
  s_offered_rate : float;  (** arrivals per unit of virtual time, [nan]
                               for non-Poisson samplers *)
  s_mean : float;
  s_p50 : float;
  s_p99 : float;
  s_p999 : float;
}

let run ?trace ?(offered_rate = nan) ~interarrival config workload controller =
  let metrics = Metrics.create () in
  let hist =
    Metrics.histogram ~buckets:Metrics.latency_buckets metrics
      "openloop.response"
  in
  let result =
    Runner.run_arrivals ?trace
      ~on_response:(fun r -> Metrics.observe hist r)
      ~interarrival config workload controller
  in
  let slo =
    { s_committed = result.Runner.committed;
      s_offered_rate = offered_rate;
      s_mean = result.Runner.mean_response;
      s_p50 = Metrics.p50 hist;
      s_p99 = Metrics.p99 hist;
      s_p999 = Metrics.p999 hist }
  in
  (result, slo)

let run_users ?trace ~users ~think_time config workload controller =
  let interarrival = Arrivals.users ~count:users ~think_time in
  run ?trace
    ~offered_rate:(float_of_int users /. think_time)
    ~interarrival config workload controller

let pp_slo ppf s =
  Format.fprintf ppf
    "committed=%d offered=%.4f mean=%.2f p50=%.2f p99=%.2f p999=%.2f"
    s.s_committed s.s_offered_rate s.s_mean s.s_p50 s.s_p99 s.s_p999
