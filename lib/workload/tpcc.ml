module Workload = Hdd_sim.Workload
module Controller = Hdd_sim.Controller
module Fixtures = Hdd_benchkit.Fixtures
module Dist = Hdd_util.Dist
module Prng = Hdd_util.Prng

(* A TPC-C-shaped mix mapped onto a TST decomposition (DESIGN.md §18).

   The hierarchy is the benchkit branch fixture: [branches] district
   segments over one shared base segment playing the warehouse-wide
   stock table.  The stock class writes (and only reads) the base
   segment, so it is root-only eligible — exactly the class the hybrid
   may escalate.  District classes cross-read stock through Protocol A
   and write their own order lines; stock-level checks ride Protocol C.

   Contention is a workload property here, not a partition one: [`High]
   concentrates stock accesses on a few zipf-hot keys in a
   read-here/write-there "transfer" shape — under MVTO the reads
   register timestamps that make concurrent hot writes late (restart
   storm), under escalation the writes commit-wait instead. *)

type contention = [ `Low | `High ]

let contention_name = function `Low -> "low" | `High -> "high"

let stock_class ~branches = branches

let default_branches = 4
let default_stock_keys = 256
let default_district_keys = 64

let workload ?(branches = default_branches)
    ?(stock_keys = default_stock_keys)
    ?(district_keys = default_district_keys) ~contention () =
  if branches < 1 then invalid_arg "Tpcc.workload: branches must be >= 1";
  let partition = Fixtures.branch_partition branches in
  let base = branches in
  let alpha, hot_keys =
    match contention with
    | `Low -> (0.4, stock_keys)
    | `High -> (1.2, max 8 (stock_keys / 32))
  in
  let zipf = Dist.zipf ~n:hot_keys ~alpha in
  let hot rng = Dist.zipf_draw zipf rng in
  let stock g = Granule.make ~segment:base ~key:g in
  let district b k = Granule.make ~segment:b ~key:k in
  (* The stock class.  [`Low]: one update template — check two lines,
     restock one, spread over the whole segment.  [`High]: the class
     splits into summary checks (read the stock-summary row, key 0,
     plus a couple of zipf-hot lines; write nothing) and summary posts
     (read hot lines other than the summary, post to key 0).  The
     split is the hybrid's best case by construction: the ubiquitous
     checks keep bumping read timestamps on the summary row, so under
     MVTO nearly every slightly-late post is rejected — the restart
     storm; under escalation a post waits for the checks instead, the
     checks never wait (no writes, so no precedence edges into them),
     and with one write target the slot waits form a chain — the wait
     graph cannot cycle, so no deadlocks either. *)
  let hot_line rng = 1 + Prng.int rng (hot_keys - 1) in
  let stock_update rng =
    let a = hot rng in
    let b =
      let b = hot rng in
      if b = a then (b + 1) mod hot_keys else b
    in
    [ Workload.Read (stock a);
      Workload.Read (stock b);
      Workload.Write (stock a, Prng.int rng 1000) ]
  in
  let stock_check rng =
    [ Workload.Read (stock 0);
      Workload.Read (stock (hot_line rng));
      Workload.Read (stock (hot_line rng)) ]
  in
  let stock_post rng =
    List.init 6 (fun _ -> Workload.Read (stock (hot_line rng)))
    @ [ Workload.Write (stock 0, Prng.int rng 1000) ]
  in
  let new_order b rng =
    let lines = 2 + Prng.int rng 3 in
    let reads =
      List.init lines (fun _ -> Workload.Read (stock (hot rng)))
    in
    let writes =
      List.init lines (fun _ ->
          Workload.Write
            (district b (Prng.int rng district_keys), Prng.int rng 1000))
    in
    reads @ writes
  in
  let payment b rng =
    [ Workload.Read (district b (Prng.int rng district_keys));
      Workload.Write (district b (Prng.int rng district_keys), Prng.int rng 1000)
    ]
  in
  let stock_level rng =
    List.init 8 (fun _ -> Workload.Read (stock (hot rng)))
    @ List.init 4 (fun _ ->
          Workload.Read
            (district (Prng.int rng branches) (Prng.int rng district_keys)))
  in
  let stock_weight = match contention with `Low -> 0.15 | `High -> 0.5 in
  let per_branch w = w /. float_of_int branches in
  let stock_templates =
    match contention with
    | `Low ->
      [ { Workload.tpl_name = "stock_update";
          kind = Controller.Update base;
          weight = stock_weight;
          gen = stock_update } ]
    | `High ->
      [ { Workload.tpl_name = "stock_check";
          kind = Controller.Update base;
          weight = 0.7 *. stock_weight;
          gen = stock_check };
        { Workload.tpl_name = "stock_post";
          kind = Controller.Update base;
          weight = 0.3 *. stock_weight;
          gen = stock_post } ]
  in
  let templates =
    stock_templates
    @ { Workload.tpl_name = "stock_level";
        kind = Controller.Read_only;
        weight = 0.10;
        gen = stock_level }
    :: List.concat_map
         (fun b ->
           [ { Workload.tpl_name = Printf.sprintf "new_order_%d" b;
               kind = Controller.Update b;
               weight = per_branch (0.75 *. (1. -. stock_weight -. 0.10));
               gen = new_order b };
             { Workload.tpl_name = Printf.sprintf "payment_%d" b;
               kind = Controller.Update b;
               weight = per_branch (0.25 *. (1. -. stock_weight -. 0.10));
               gen = payment b } ])
         (List.init branches Fun.id)
  in
  { Workload.wl_name = Printf.sprintf "tpcc-%s" (contention_name contention);
    partition;
    templates;
    init = (fun g -> 100 + g.Granule.key) }
