(** Open-loop SLO measurement (DESIGN.md §18): drive a workload with an
    {!Arrivals} sampler through {!Hdd_sim.Runner.run_arrivals},
    response time measured from the {e arrival} instant so queueing
    delay counts, and report tail quantiles off a
    {!Hdd_obs.Metrics.latency_buckets} histogram.  All in virtual time:
    runs are deterministic per seed and machine-independent. *)

type slo = {
  s_committed : int;
  s_offered_rate : float;
      (** arrivals per unit of virtual time; [nan] when the sampler has
          no single rate *)
  s_mean : float;
  s_p50 : float;
  s_p99 : float;
  s_p999 : float;  (** bucket upper bounds, like {!Hdd_obs.Metrics.p999} *)
}

val run :
  ?trace:Hdd_obs.Trace.t ->
  ?offered_rate:float ->
  interarrival:Arrivals.t ->
  Hdd_sim.Runner.config ->
  Hdd_sim.Workload.t ->
  Hdd_sim.Controller.t ->
  Hdd_sim.Runner.result * slo

val run_users :
  ?trace:Hdd_obs.Trace.t ->
  users:int ->
  think_time:float ->
  Hdd_sim.Runner.config ->
  Hdd_sim.Workload.t ->
  Hdd_sim.Controller.t ->
  Hdd_sim.Runner.result * slo
(** {!run} under {!Arrivals.users}: an open population of [users]
    simulated users with exponential think times — the
    million-user-scale entry point. *)

val pp_slo : Format.formatter -> slo -> unit
