(** The hybrid-CC workload benchmark ([hdd_cli bench --hybrid],
    DESIGN.md §18): the {!Tpcc} suite at {low, high} contention, closed
    loop, across pure HDD, the adaptive {!Hdd_hybrid.Hybrid_sched} and
    the MV2PL baseline, plus an open-loop million-user SLO section per
    contention point.  All virtual time: deterministic per seed, so the
    throughput-ratio gates hold on any machine. *)

type cell = {
  c_controller : string;  (** "hdd" | "hybrid" | "mv2pl" *)
  c_contention : string;  (** "low" | "high" *)
  c_committed : int;
  c_restarts : int;
  c_gave_up : int;
  c_throughput : float;  (** commits per unit of virtual time *)
  c_escalations : int;  (** hybrid: applied mode flips; others 0 *)
  c_escalated_high : bool;
      (** hybrid: the stock class ran escalated at some point *)
}

type result = {
  w_seed : int;
  w_quick : bool;
  w_mpl : int;
  w_target : int;
  w_cells : cell list;
  w_ratio_low : float;  (** hybrid / hdd throughput, low contention *)
  w_ratio_high : float;  (** hybrid / hdd throughput, high contention *)
  w_slo_users : int;
  w_slo : (string * Openloop.slo) list;  (** hybrid, per contention *)
}

val ratio_floor_low : float
(** 0.9: at low contention the adaptive machinery may cost at most
    10% against pure HDD. *)

val ratio_floor_high : float
(** 1.3: at the high-contention zipf point escalation must beat MVTO's
    restart storm by at least 30%. *)

val run : ?quick:bool -> ?seed:int -> unit -> result
(** [quick] shrinks the closed loops (300 instead of 1500 target
    commits) for per-push CI. *)

val gates : result -> string list
(** Empty when every cell committed, the hybrid escalated at the high
    point, both throughput-ratio floors hold, and the SLO quantiles
    are finite and ordered. *)

val to_json : result -> Hdd_benchkit.Jsonlite.t
val pp : Format.formatter -> result -> unit
