module Runner = Hdd_sim.Runner
module Adapters = Hdd_sim.Adapters
module Workload = Hdd_sim.Workload
module Trace = Hdd_obs.Trace
module Hybrid = Hdd_hybrid.Hybrid_sched
module Policy = Hdd_hybrid.Policy
module J = Hdd_benchkit.Jsonlite

(* The hybrid-CC benchmark behind [hdd_cli bench --hybrid]: the TPC-C
   shaped open/closed workload suite over {low, high} contention ×
   {hdd, hybrid, mv2pl}, all in virtual time (deterministic per seed,
   so the throughput-ratio gates run in CI on any machine).

   The headline ratios compare hybrid against pure HDD closed-loop
   throughput: at low contention escalation must not cost more than
   10%, at the high-contention zipf point the commit-wait discipline
   must beat MVTO's restart storm by at least 30%. *)

type cell = {
  c_controller : string;
  c_contention : string;
  c_committed : int;
  c_restarts : int;
  c_gave_up : int;
  c_throughput : float;  (** commits per unit of virtual time *)
  c_escalations : int;  (** hybrid: applied mode flips; others 0 *)
  c_escalated_high : bool;
      (** hybrid: the stock class ran escalated at some point *)
}

type result = {
  w_seed : int;
  w_quick : bool;
  w_mpl : int;
  w_target : int;
  w_cells : cell list;
  w_ratio_low : float;  (** hybrid / hdd throughput, low contention *)
  w_ratio_high : float;  (** hybrid / hdd throughput, high contention *)
  w_slo_users : int;
  w_slo : (string * Openloop.slo) list;  (** per contention, hybrid *)
}

let ratio_floor_low = 0.9
let ratio_floor_high = 1.3

let hybrid_policy =
  { Policy.escalate_above = 0.15;
    deescalate_below = 0.01;
    min_finished = 8;
    hold = 1;
    cooldown = 16 }

let config ~quick ~seed =
  { Runner.default_config with
    Runner.mpl = 12;
    target_commits = (if quick then 300 else 1500);
    seed }

let closed_cell ~name ~contention ~cfg wl make =
  let controller, escalations, escalated = make () in
  let r = Runner.run cfg wl controller in
  { c_controller = name;
    c_contention = Tpcc.contention_name contention;
    c_committed = r.Runner.committed;
    c_restarts = r.Runner.restarts;
    c_gave_up = r.Runner.gave_up;
    c_throughput = r.Runner.throughput;
    c_escalations = escalations ();
    c_escalated_high = escalated () }

let make_hybrid ~partition ~init () =
  let trace = Trace.create () in
  Trace.enable trace;
  let h = Hybrid.create ~trace ~partition ~init () in
  let stock = Tpcc.stock_class ~branches:Tpcc.default_branches in
  let was_escalated = ref false in
  let controller, _contention, _policy =
    Hybrid.auto ~policy:hybrid_policy ~decide_every:4 h ~trace
  in
  let controller =
    Hdd_sim.Controller.with_hooks
      ~on_finish:(fun _ ~commit:_ ->
        if Hybrid.escalated h stock then was_escalated := true)
      controller
  in
  ( (controller, trace),
    (fun () -> Hybrid.escalations h),
    fun () -> !was_escalated )

let run ?(quick = false) ?(seed = 42) () =
  let cfg = config ~quick ~seed in
  let cells = ref [] in
  let tp = Hashtbl.create 8 in
  let slos = ref [] in
  List.iter
    (fun contention ->
      let wl = Tpcc.workload ~contention () in
      let partition = wl.Workload.partition in
      let init = wl.Workload.init in
      let segments = Hdd_core.Partition.segment_count partition in
      let plain () =
        (Adapters.hdd ~partition ~init (), (fun () -> 0), fun () -> false)
      in
      let mv2pl () =
        (Adapters.mv2pl ~segments ~init (), (fun () -> 0), fun () -> false)
      in
      List.iter
        (fun (name, make) ->
          let cell =
            match name with
            | "hybrid" ->
              let (controller, trace), esc, was = make_hybrid ~partition ~init () in
              let r = Runner.run ~trace cfg wl controller in
              { c_controller = name;
                c_contention = Tpcc.contention_name contention;
                c_committed = r.Runner.committed;
                c_restarts = r.Runner.restarts;
                c_gave_up = r.Runner.gave_up;
                c_throughput = r.Runner.throughput;
                c_escalations = esc ();
                c_escalated_high = was () }
            | _ -> closed_cell ~name ~contention ~cfg wl make
          in
          Hashtbl.replace tp (name, cell.c_contention) cell.c_throughput;
          cells := cell :: !cells)
        [ ("hdd", plain); ("hybrid", plain); ("mv2pl", mv2pl) ];
      (* open-loop SLO: a million-user population offered at 70% of the
         hybrid's measured closed-loop capacity *)
      let cap =
        try Hashtbl.find tp ("hybrid", Tpcc.contention_name contention)
        with Not_found -> 1.
      in
      let users = 1_000_000 in
      let rate = 0.7 *. cap in
      let think_time = float_of_int users /. rate in
      let (h2, trace2), _, _ = make_hybrid ~partition ~init () in
      let _r, slo =
        Openloop.run_users ~trace:trace2 ~users ~think_time cfg wl h2
      in
      slos := (Tpcc.contention_name contention, slo) :: !slos)
    [ `Low; `High ];
  let tp_of name c = try Hashtbl.find tp (name, c) with Not_found -> nan in
  { w_seed = seed;
    w_quick = quick;
    w_mpl = cfg.Runner.mpl;
    w_target = cfg.Runner.target_commits;
    w_cells = List.rev !cells;
    w_ratio_low = tp_of "hybrid" "low" /. tp_of "hdd" "low";
    w_ratio_high = tp_of "hybrid" "high" /. tp_of "hdd" "high";
    w_slo_users = 1_000_000;
    w_slo = List.rev !slos }

let gates r =
  let problems = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun c ->
      if c.c_committed <= 0 then
        fail "%s/%s committed nothing" c.c_controller c.c_contention)
    r.w_cells;
  (match
     List.find_opt
       (fun c -> c.c_controller = "hybrid" && c.c_contention = "high")
       r.w_cells
   with
  | Some c ->
    if c.c_escalations < 1 then
      fail "hybrid/high never escalated (escalations=%d)" c.c_escalations;
    if not c.c_escalated_high then
      fail "hybrid/high: the stock class never ran escalated"
  | None -> fail "missing hybrid/high cell");
  if not (r.w_ratio_low >= ratio_floor_low) then
    fail "hybrid/hdd ratio at low contention %.3f < %.2f" r.w_ratio_low
      ratio_floor_low;
  if not (r.w_ratio_high >= ratio_floor_high) then
    fail "hybrid/hdd ratio at high contention %.3f < %.2f" r.w_ratio_high
      ratio_floor_high;
  List.iter
    (fun (c, s) ->
      if s.Openloop.s_committed <= 0 then fail "slo/%s committed nothing" c;
      let finite f = Float.is_finite f in
      if
        not
          (finite s.Openloop.s_p50 && finite s.Openloop.s_p99
         && finite s.Openloop.s_p999)
      then fail "slo/%s has non-finite quantiles" c;
      if not (s.Openloop.s_p50 <= s.Openloop.s_p99) then
        fail "slo/%s p50 > p99" c;
      if not (s.Openloop.s_p99 <= s.Openloop.s_p999) then
        fail "slo/%s p99 > p999" c)
    r.w_slo;
  List.rev !problems

let cell_json c =
  J.Obj
    [ ("controller", J.Str c.c_controller);
      ("contention", J.Str c.c_contention);
      ("committed", J.num_of_int c.c_committed);
      ("restarts", J.num_of_int c.c_restarts);
      ("gave_up", J.num_of_int c.c_gave_up);
      ("throughput", J.Num c.c_throughput);
      ("escalations", J.num_of_int c.c_escalations);
      ("escalated_high", J.Bool c.c_escalated_high) ]

let slo_json (contention, s) =
  J.Obj
    [ ("contention", J.Str contention);
      ("committed", J.num_of_int s.Openloop.s_committed);
      ("offered_rate", J.Num s.Openloop.s_offered_rate);
      ("mean", J.Num s.Openloop.s_mean);
      ("p50", J.Num s.Openloop.s_p50);
      ("p99", J.Num s.Openloop.s_p99);
      ("p999", J.Num s.Openloop.s_p999) ]

let to_json r =
  J.with_schema
    [ ("bench", J.Str "hybrid");
      ("seed", J.num_of_int r.w_seed);
      ("quick", J.Bool r.w_quick);
      ("mpl", J.num_of_int r.w_mpl);
      ("target_commits", J.num_of_int r.w_target);
      ("cells", J.List (List.map cell_json r.w_cells));
      ("ratio_low", J.Num r.w_ratio_low);
      ("ratio_high", J.Num r.w_ratio_high);
      ("slo_users", J.num_of_int r.w_slo_users);
      ("slo", J.List (List.map slo_json r.w_slo)) ]

let pp ppf r =
  Format.fprintf ppf "hybrid bench (seed %d%s):@." r.w_seed
    (if r.w_quick then ", quick" else "");
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-7s %-4s committed=%-6d restarts=%-6d tput=%.4f esc=%d@."
        c.c_controller c.c_contention c.c_committed c.c_restarts
        c.c_throughput c.c_escalations)
    r.w_cells;
  Format.fprintf ppf "  ratio low=%.3f (floor %.2f) high=%.3f (floor %.2f)@."
    r.w_ratio_low ratio_floor_low r.w_ratio_high ratio_floor_high;
  List.iter
    (fun (c, s) ->
      Format.fprintf ppf "  slo %-4s %a@." c Openloop.pp_slo s)
    r.w_slo
