module Dist = Hdd_util.Dist
module Prng = Hdd_util.Prng

(* Interarrival samplers for the open-loop driver
   (Runner.run_arrivals).  Each sampler is a closure over the driver's
   PRNG; the bursty one carries phase state, which is fine because the
   driver draws arrivals from a single stream in order. *)

type t = Prng.t -> float

let poisson ~rate =
  if rate <= 0. then invalid_arg "Arrivals.poisson: rate must be > 0";
  fun rng -> Dist.exponential rng ~rate

(* Two-state MMPP: the arrival rate alternates between a calm and a
   burst phase, phase durations themselves exponential.  The sampler
   spends the interarrival across phase boundaries so the process has
   no artificial synchronization at phase switches. *)
let bursty ~rate_calm ~rate_burst ~mean_calm ~mean_burst =
  if rate_calm <= 0. || rate_burst <= 0. then
    invalid_arg "Arrivals.bursty: rates must be > 0";
  if mean_calm <= 0. || mean_burst <= 0. then
    invalid_arg "Arrivals.bursty: phase means must be > 0";
  let in_burst = ref false in
  let phase_left = ref 0. in
  fun rng ->
    let total = ref 0. in
    let served = ref false in
    let gap = ref 0. in
    while not !served do
      if !phase_left <= 0. then begin
        in_burst := not !in_burst;
        phase_left :=
          Dist.exponential rng
            ~rate:(1. /. (if !in_burst then mean_burst else mean_calm))
      end;
      let rate = if !in_burst then rate_burst else rate_calm in
      gap := Dist.exponential rng ~rate;
      if !gap <= !phase_left then begin
        phase_left := !phase_left -. !gap;
        total := !total +. !gap;
        served := true
      end
      else begin
        (* no arrival before the phase ends: consume the phase *)
        total := !total +. !phase_left;
        phase_left := 0.
      end
    done;
    !total

let users ~count ~think_time =
  if count <= 0 then invalid_arg "Arrivals.users: count must be > 0";
  if think_time <= 0. then invalid_arg "Arrivals.users: think_time must be > 0";
  poisson ~rate:(float_of_int count /. think_time)
