module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
module Trace = Hdd_obs.Trace

open Outcome

type metrics = {
  mutable begins : int;
  mutable commits : int;
  mutable aborts : int;
  mutable reads_a : int;
  mutable reads_b : int;
  mutable reads_c : int;
  mutable writes : int;
  mutable read_registrations : int;
  mutable blocks : int;
  mutable rejects : int;
}

let fresh_metrics () =
  { begins = 0; commits = 0; aborts = 0; reads_a = 0; reads_b = 0;
    reads_c = 0; writes = 0; read_registrations = 0; blocks = 0; rejects = 0 }

type mode =
  | Classed  (** regular update transaction; class taken from the record *)
  | Walled of Timewall.wall  (** ad-hoc read-only, protocol C *)
  | Hosted of int  (** read-only hosted below this class, §5.0 *)
  | Adhoc of { wsegs : int list; rsegs : int list }
      (** ad-hoc update transaction (§7.1.1): joins every class it
          accesses and runs MVTO (protocol B) on all of them *)

type 'a txn_state = {
  txn : Txn.t;
  mutable written : (Granule.t * 'a Chain.version) list;
      (** granules with a pending version, each with the handle
          {!Store.install} returned so commit and abort flip or drop the
          version in O(1) instead of re-finding it by timestamp *)
  mode : mode;
  mutable thresholds : (int * Time.t) list;
      (** memoised activity-link thresholds per segment: they depend only
          on registry history at times <= I(t), which never changes *)
}

type 'a t = {
  partition : Partition.t;
  ctx : Activity.ctx;
  reg : Registry.t;
  clock : Time.Clock.clock;
  store : 'a Store.t;
  log : Sched_log.t option;
  trace : Trace.t option;
  walls : Timewall.manager;
  states : (Txn.id, 'a txn_state) Hashtbl.t;
  m : metrics;
  wall_every_commits : int;
  gc_every_commits : int option;
  gc_on_wall : bool;
  mutable commits_since_gc : int;
  mutable commits_since_wall : int;
  mutable wall_pending : bool;
  mutable next_id : int;
  mutable adhoc_history : Txn.t list;
      (** ad-hoc update transactions whose activity window may still
          contain the timestamp of a live transaction *)
}

let create ?log ?trace ?(wall_every_commits = 16) ?gc_every_commits
    ?(gc_on_wall = true) ~partition ~clock ~store () =
  let reg = Registry.create ?trace ~classes:(Partition.segment_count partition) () in
  let ctx = Activity.make_ctx partition reg in
  Store.set_trace store trace;
  { partition; ctx; reg; clock; store; log; trace;
    walls = Timewall.create ?trace ctx ~clock;
    states = Hashtbl.create 64;
    m = fresh_metrics ();
    wall_every_commits;
    gc_every_commits;
    gc_on_wall;
    commits_since_gc = 0;
    commits_since_wall = 0;
    wall_pending = false;
    next_id = 1;
    adhoc_history = [] }

let partition t = t.partition
let activity_ctx t = t.ctx
let registry t = t.reg
let metrics t = t.m
let wall_manager t = t.walls

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let state_of t (txn : Txn.t) =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Scheduler: unknown transaction %d" txn.Txn.id)

(* Emission helpers: explicit option matches, so a disabled run allocates
   nothing and costs one branch per site. *)

let emit_begin t (txn : Txn.t) kind =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr ~at:txn.Txn.init
      (Trace.Begin { txn = txn.Txn.id; kind; init = txn.Txn.init })

let emit_read t (txn : Txn.t) proto (g : Granule.t) ~threshold ~version =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr ~at:(Time.Clock.now t.clock)
      (Trace.Read
         { txn = txn.Txn.id; protocol = proto; segment = g.Granule.segment;
           key = g.Granule.key; threshold; version })

(* Count, trace and build a rejection in one move; [segment] is [-1] when
   no single segment is to blame. *)
let reject t (txn : Txn.t) ?proto ~stage ~segment reason =
  t.m.rejects <- t.m.rejects + 1;
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr ~at:(Time.Clock.now t.clock)
      (Trace.Reject
         { txn = txn.Txn.id; protocol = proto; stage; segment; reason }));
  Rejected reason

let begin_update t ~class_id =
  if class_id < 0 || class_id >= Partition.segment_count t.partition then
    invalid_arg (Printf.sprintf "Scheduler.begin_update: class %d" class_id);
  let txn =
    Txn.make ~id:(fresh_id t) ~kind:(Txn.Update class_id)
      ~init:(Time.Clock.tick t.clock)
  in
  Registry.register t.reg txn;
  Hashtbl.replace t.states txn.Txn.id
    { txn; written = []; mode = Classed; thresholds = [] };
  t.m.begins <- t.m.begins + 1;
  emit_begin t txn (Trace.Update class_id);
  txn

let begin_read_only t =
  let init = Time.Clock.tick t.clock in
  let txn = Txn.make ~id:(fresh_id t) ~kind:Txn.Read_only ~init in
  let wall =
    match Timewall.latest_before t.walls init with
    | Some w -> w
    | None -> Timewall.current t.walls
  in
  Hashtbl.replace t.states txn.Txn.id
    { txn; written = []; mode = Walled wall; thresholds = [] };
  t.m.begins <- t.m.begins + 1;
  emit_begin t txn Trace.Read_only;
  txn

let begin_read_only_on_path t ~below =
  if below < 0 || below >= Partition.segment_count t.partition then
    invalid_arg (Printf.sprintf "Scheduler.begin_read_only_on_path: %d" below);
  let txn =
    Txn.make ~id:(fresh_id t) ~kind:Txn.Read_only
      ~init:(Time.Clock.tick t.clock)
  in
  Hashtbl.replace t.states txn.Txn.id
    { txn; written = []; mode = Hosted below; thresholds = [] };
  t.m.begins <- t.m.begins + 1;
  emit_begin t txn (Trace.Hosted below);
  txn

let begin_adhoc_update t ~writes ~reads =
  let n = Partition.segment_count t.partition in
  let check s =
    if s < 0 || s >= n then
      invalid_arg (Printf.sprintf "Scheduler.begin_adhoc_update: segment %d" s)
  in
  let wsegs = List.sort_uniq compare writes in
  let rsegs = List.sort_uniq compare reads in
  if wsegs = [] then
    invalid_arg "Scheduler.begin_adhoc_update: empty write set";
  List.iter check wsegs;
  List.iter check rsegs;
  let txn =
    Txn.make ~id:(fresh_id t)
      ~kind:(Txn.Update (List.hd wsegs))
      ~init:(Time.Clock.tick t.clock)
  in
  (* join every touched class so all activity-link thresholds account for
     this transaction while it is active *)
  List.iter
    (fun cls -> Registry.register_in t.reg ~class_id:cls txn)
    (List.sort_uniq compare (wsegs @ rsegs));
  Hashtbl.replace t.states txn.Txn.id
    { txn; written = []; mode = Adhoc { wsegs; rsegs }; thresholds = [] };
  t.adhoc_history <- txn :: t.adhoc_history;
  t.m.begins <- t.m.begins + 1;
  emit_begin t txn (Trace.Adhoc { wsegs; rsegs });
  txn

(* The ad-hoc barrier (§7.1.1): an update transaction whose timestamp
   falls inside an ad-hoc transaction's activity window must never
   execute.  Its activity-link thresholds, frozen by I_old at historic
   times, place the ad-hoc transaction in the future, while MVTO
   visibility (pure timestamp order) would place its root-segment
   versions in the past — the two disagree and cycles follow.  Rejecting
   the transaction restarts it with a fresh, post-window timestamp, on
   which both rules agree. *)
let adhoc_barrier t (txn : Txn.t) =
  List.exists
    (fun (a : Txn.t) -> a.Txn.id <> txn.Txn.id && Txn.active_at a txn.Txn.init)
    t.adhoc_history

(* Drop window records no live transaction's timestamp can fall into. *)
let prune_adhoc_history t =
  match t.adhoc_history with
  | [] -> ()
  | _ ->
    t.adhoc_history <-
      List.filter
        (fun (a : Txn.t) ->
          Txn.is_active a
          || Hashtbl.fold
               (fun _ (st : _ txn_state) acc ->
                 acc || Txn.active_at a st.txn.Txn.init)
               t.states false)
        t.adhoc_history

(* Threshold of a read of [segment] by a transaction hosted in a
   fictitious class just below [bottom]: compose I_old starting at
   [bottom] itself, then up the critical path to [segment]. *)
let hosted_threshold t ~bottom ~segment m =
  let after_bottom = Activity.i_old t.ctx ~class_id:bottom m in
  if segment = bottom then Some after_bottom
  else if Partition.higher_than t.partition segment bottom then
    Some (Activity.a_fn t.ctx ~from_class:bottom ~to_class:segment after_bottom)
  else None

let read_threshold t (txn : Txn.t) ~segment =
  let st = state_of t txn in
  match st.mode with
  | Walled wall -> Some (Timewall.threshold wall ~class_id:segment)
  | Hosted bottom -> hosted_threshold t ~bottom ~segment txn.Txn.init
  | Adhoc { wsegs; rsegs } ->
    if List.mem segment wsegs || List.mem segment rsegs then
      Some txn.Txn.init
    else None
  | Classed -> (
    match Txn.class_of txn with
    | None -> None
    | Some i ->
      if i = segment then Some txn.Txn.init
      else if Partition.higher_than t.partition segment i then
        Some (Activity.a_fn t.ctx ~from_class:i ~to_class:segment txn.Txn.init)
      else None)

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

let cached_threshold (st : _ txn_state) ~segment compute =
  match List.assoc_opt segment st.thresholds with
  | Some v -> v
  | None ->
    let v = compute () in
    st.thresholds <- (segment, v) :: st.thresholds;
    v

(* Protocol A / C read: committed version below the threshold; never
   blocks, never registers. *)
let snapshot_read t (txn : Txn.t) ~proto g threshold =
  match Store.committed_before t.store g ~ts:threshold with
  | Some v ->
    log_read t ~txn:txn.Txn.id ~granule:g ~version:v.Chain.ts;
    emit_read t txn proto g ~threshold ~version:v.Chain.ts;
    Granted v.Chain.value
  | None ->
    (* only possible if garbage collection outran the threshold *)
    reject t txn ~proto ~stage:Trace.Rule ~segment:g.Granule.segment
      "snapshot version collected"

(* Protocol B read: MVTO inside the root segment.  The read timestamp it
   leaves on the version is precisely the registration the hierarchical
   protocols avoid elsewhere. *)
let protocol_b_read t (txn : Txn.t) g =
  match Store.candidate_before t.store g ~ts:txn.Txn.init with
  | None ->
    reject t txn ~proto:Trace.B ~stage:Trace.Rule ~segment:g.Granule.segment
      "version collected past timestamp"
  | Some (Chain.Wait_for writer) ->
    t.m.blocks <- t.m.blocks + 1;
    (match t.trace with
    | None -> ()
    | Some tr ->
      Trace.emit tr ~at:(Time.Clock.now t.clock)
        (Trace.Block
           { txn = txn.Txn.id; protocol = Trace.B;
             segment = g.Granule.segment; key = g.Granule.key;
             on = [ writer ] }));
    Blocked [ writer ]
  | Some (Chain.Version v) ->
    Chain.mark_read v ~at:txn.Txn.init;
    t.m.read_registrations <- t.m.read_registrations + 1;
    log_read t ~txn:txn.Txn.id ~granule:g ~version:v.Chain.ts;
    emit_read t txn Trace.B g ~threshold:txn.Txn.init ~version:v.Chain.ts;
    Granted v.Chain.value

let read t txn g =
  let st = state_of t txn in
  let segment = g.Granule.segment in
  match st.mode with
  | Walled wall ->
    t.m.reads_c <- t.m.reads_c + 1;
    snapshot_read t txn ~proto:Trace.C g
      (Timewall.threshold wall ~class_id:segment)
  | Hosted bottom -> (
    match
      match List.assoc_opt segment st.thresholds with
      | Some v -> Some v
      | None -> hosted_threshold t ~bottom ~segment txn.Txn.init
    with
    | Some threshold ->
      st.thresholds <-
        (if List.mem_assoc segment st.thresholds then st.thresholds
         else (segment, threshold) :: st.thresholds);
      t.m.reads_c <- t.m.reads_c + 1;
      snapshot_read t txn ~proto:Trace.C g threshold
    | None ->
      reject t txn ~stage:Trace.Routing ~segment
        "segment not on the declared critical path")
  | Adhoc { wsegs; rsegs } ->
    if adhoc_barrier t txn then
      reject t txn ~stage:Trace.Barrier ~segment
        "timestamp inside an ad-hoc activity window"
    else if List.mem segment wsegs || List.mem segment rsegs then begin
      t.m.reads_b <- t.m.reads_b + 1;
      protocol_b_read t txn g
    end
    else
      reject t txn ~stage:Trace.Routing ~segment
        "segment outside the declared ad-hoc access set"
  | Classed when adhoc_barrier t txn ->
    reject t txn ~stage:Trace.Barrier ~segment
      "timestamp inside an ad-hoc activity window"
  | Classed -> (
    match Txn.class_of txn with
    | None -> assert false
    | Some i ->
      if i = segment then begin
        t.m.reads_b <- t.m.reads_b + 1;
        protocol_b_read t txn g
      end
      else if Partition.higher_than t.partition segment i then begin
        t.m.reads_a <- t.m.reads_a + 1;
        let threshold =
          cached_threshold st ~segment (fun () ->
              Activity.a_fn t.ctx ~from_class:i ~to_class:segment
                txn.Txn.init)
        in
        snapshot_read t txn ~proto:Trace.A g threshold
      end
      else
        reject t txn ~stage:Trace.Routing ~segment
          (Printf.sprintf
             "class T%d may not read segment D%d: not higher in the DHG" i
             segment))

let emit_write t (txn : Txn.t) (g : Granule.t) ~ts =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr ~at:(Time.Clock.now t.clock)
      (Trace.Write
         { txn = txn.Txn.id; segment = g.Granule.segment;
           key = g.Granule.key; ts })

(* MVTO write into [g] with timestamp [I(txn)], shared by regular and
   ad-hoc updaters. *)
let mvto_write t (st : _ txn_state) txn g value =
    let ts = txn.Txn.init in
    match List.find_opt (fun (g', _) -> Granule.equal g g') st.written with
    | Some (_, old) ->
      (* second write of the same granule: replace the pending version,
         through the handle kept from the first install *)
      Store.discard_installed t.store g old;
      let v = Store.install t.store g ~ts ~writer:txn.Txn.id ~value in
      st.written <-
        List.map
          (fun ((g', _) as p) -> if Granule.equal g g' then (g', v) else p)
          st.written;
      t.m.writes <- t.m.writes + 1;
      log_write t ~txn:txn.Txn.id ~granule:g ~version:ts;
      emit_write t txn g ~ts;
      Granted ()
    | None ->
      (* MVTO write rule: reject when the would-be predecessor version has
         been read by a younger transaction *)
      let late =
        match Store.predecessor_rts t.store g ~ts with
        | Some rts -> rts > ts
        | None -> false
      in
      if late then
        reject t txn ~proto:Trace.B ~stage:Trace.Rule
          ~segment:g.Granule.segment
          "a younger transaction already read the predecessor"
      else begin
        let v = Store.install t.store g ~ts ~writer:txn.Txn.id ~value in
        st.written <- (g, v) :: st.written;
        t.m.writes <- t.m.writes + 1;
        log_write t ~txn:txn.Txn.id ~granule:g ~version:ts;
        emit_write t txn g ~ts;
        Granted ()
      end

let write t txn g value =
  let st = state_of t txn in
  let segment = g.Granule.segment in
  match st.mode with
  | Walled _ | Hosted _ ->
    reject t txn ~stage:Trace.Routing ~segment
      "read-only transaction may not write"
  | Adhoc { wsegs; _ } ->
    if adhoc_barrier t txn then
      reject t txn ~stage:Trace.Barrier ~segment
        "timestamp inside an ad-hoc activity window"
    else if List.mem segment wsegs then mvto_write t st txn g value
    else
      reject t txn ~stage:Trace.Routing ~segment
        "segment outside the declared ad-hoc write set"
  | Classed when adhoc_barrier t txn ->
    reject t txn ~stage:Trace.Barrier ~segment
      "timestamp inside an ad-hoc activity window"
  | Classed -> (
    match Txn.class_of txn with
    | None -> assert false
    | Some i when i <> segment ->
      reject t txn ~stage:Trace.Routing ~segment
        (Printf.sprintf "class T%d may not write segment D%d" i segment)
    | Some _ -> mvto_write t st txn g value)

(* --- garbage collection (§7.3) --- *)

(* Per-segment watermark vector: component [s] is the lowest
   version-selection threshold any active transaction — or any transaction
   that may still begin — can use *for a read of segment [s]*.  Versions
   of [s] strictly older than the newest committed version below it are
   unreachable.  Each active transaction contributes only to the segments
   its protocol can actually serve it (its own class's segment at [I(t)],
   each higher segment at the re-evaluated activity-link threshold, a
   walled reader's components where they apply), which lets a segment
   whose readers are all recent be trimmed past the initiation time of an
   old straggler that cannot reach it.  Re-evaluating [a_fn] here is
   exact, not approximate: [I_old] at historic arguments is immutable, so
   the value equals the threshold memoised at read time.  Ad-hoc
   transactions contribute their initiation time to every segment — their
   activity window fences future compositions through every class they
   joined (§7.1.1).  Future update transactions get initiation times above
   the clock; future read-only transactions attach the current wall (and
   wall components are monotone across releases). *)
let gc_watermark_vector t =
  let n = Partition.segment_count t.partition in
  let vec = Array.make n (Time.Clock.now t.clock) in
  let shrink s v = if v < vec.(s) then vec.(s) <- v in
  let shrink_all v =
    for s = 0 to n - 1 do
      shrink s v
    done
  in
  let higher_segments cls =
    List.filter
      (fun s -> Partition.higher_than t.partition s cls)
      (List.init n Fun.id)
  in
  Array.iteri shrink
    (Timewall.current t.walls).Timewall.components;
  Hashtbl.iter
    (fun _ (st : _ txn_state) ->
      let i = st.txn.Txn.init in
      match st.mode with
      | Adhoc _ -> shrink_all i
      | Classed -> (
        match Txn.class_of st.txn with
        | None -> shrink_all i
        | Some cls ->
          shrink cls i;
          List.iter
            (fun s ->
              shrink s (Activity.a_fn t.ctx ~from_class:cls ~to_class:s i))
            (higher_segments cls))
      | Walled wall -> Array.iteri shrink wall.Timewall.components
      | Hosted bottom ->
        List.iter
          (fun s ->
            match hosted_threshold t ~bottom ~segment:s i with
            | Some v -> shrink s v
            | None -> ())
          (bottom :: higher_segments bottom))
    t.states;
  vec

(* The scalar watermark is the floor of the vector: what a uniform
   collection may trim every segment below. *)
let gc_watermark t =
  let vec = gc_watermark_vector t in
  Array.fold_left Time.min vec.(0) vec

let collect_with t vec =
  let dropped = Store.gc_wall t.store ~wall:vec in
  let watermark = Array.fold_left Time.min vec.(0) vec in
  Registry.prune t.reg ~upto:(watermark - 1);
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr ~at:(Time.Clock.now t.clock)
      (Trace.Gc { watermark; vector = Array.copy vec; dropped }));
  dropped

let collect_garbage t = collect_with t (gc_watermark_vector t)

let maybe_release_wall t =
  prune_adhoc_history t;
  t.commits_since_wall <- t.commits_since_wall + 1;
  if t.wall_pending || t.commits_since_wall >= t.wall_every_commits then begin
    match Timewall.try_release t.walls with
    | Ok _ ->
      t.wall_pending <- false;
      t.commits_since_wall <- 0;
      (* wall-driven GC (§7.3): a release proves every C_late below the
         new wall computable, so chains can be trimmed right away instead
         of waiting for a count-based trigger *)
      if t.gc_on_wall then ignore (collect_garbage t)
    | Error _ -> t.wall_pending <- true
  end

let commit t txn =
  let st = state_of t txn in
  let at = Time.Clock.tick t.clock in
  List.iter (fun (_, v) -> Store.commit_installed t.store v) st.written;
  Txn.commit txn ~at;
  Hashtbl.remove t.states txn.Txn.id;
  t.m.commits <- t.m.commits + 1;
  (* Commit must precede the wall/GC records the release below may emit:
     monitors move this transaction's pending versions into their shadow
     store before judging any collection. *)
  (match t.trace with
  | None -> ()
  | Some tr -> Trace.emit tr ~at (Trace.Commit { txn = txn.Txn.id; at }));
  if Txn.is_update txn then maybe_release_wall t;
  match t.gc_every_commits with
  | Some k ->
    t.commits_since_gc <- t.commits_since_gc + 1;
    if t.commits_since_gc >= k then begin
      t.commits_since_gc <- 0;
      ignore (collect_garbage t)
    end
  | None -> ()

let abort t txn =
  let st = state_of t txn in
  let at = Time.Clock.tick t.clock in
  List.iter (fun (g, v) -> Store.discard_installed t.store g v) st.written;
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at;
  Hashtbl.remove t.states txn.Txn.id;
  t.m.aborts <- t.m.aborts + 1;
  (match t.trace with
  | None -> ()
  | Some tr -> Trace.emit tr ~at (Trace.Abort { txn = txn.Txn.id; at }));
  if Txn.is_update txn then maybe_release_wall t

let release_wall t = Timewall.try_release t.walls

