(** Result of one concurrency-control decision, shared by the HDD
    scheduler and every baseline so one simulator drives them all. *)

type 'a t =
  | Granted of 'a
  | Blocked of Txn.id list
      (** wait until every listed transaction finishes, then retry the
          operation (several blockers arise under shared locks) *)
  | Rejected of string
      (** the transaction must abort; drivers restart it with a fresh
          timestamp *)

val granted : 'a t -> 'a option
val is_granted : 'a t -> bool
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
