(** The serializability certifier (§2.0, strengthened).

    Replays a {!Sched_log} into the full multiversion serialization graph
    (Bernstein & Goodman) with the version order given by write
    timestamps, and checks it for cycles: acyclicity certifies one-copy
    serializability.  This is a strict strengthening of the paper's §2
    dependency graph (reader-of-version and adjacent-overwrite arcs):
    the extra version-order arcs are what catch Figure 1's lost update
    when a single-version controller logs its in-place writes.  Every
    protocol in the repository, the paper's and the baselines', is
    validated against this single ground truth; the counter-example
    experiments (Figures 1, 3 and 4) use the witness cycle it reports.

    Arc orientation follows the paper ([t2 -> t1] reads "t2 depends on
    t1"). *)

type verdict = {
  graph : Hdd_graph.Digraph.t;  (** nodes are transaction ids *)
  serializable : bool;
  cycle : int list option;  (** witness when not serializable *)
}

val dependency_graph : Sched_log.t -> Hdd_graph.Digraph.t

val certify : Sched_log.t -> verdict

val serializable : Sched_log.t -> bool

val equivalent_serial_order : Sched_log.t -> Txn.id list option
(** A topological order of the dependency graph reversed into an
    equivalent serial schedule (dependants after the transactions they
    depend on); [None] when not serializable. *)

val pp_cycle : Format.formatter -> int list -> unit
(** Render a witness cycle as [t3 -> t1 -> t3] (the first node repeated
    to close the loop). *)

val pp_verdict : Format.formatter -> verdict -> unit
