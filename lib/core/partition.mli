(** Hierarchical database decomposition (§3.2).

    Builds the data hierarchy graph DHG(P, Tᵘ) of a {!Spec.t} — an arc
    [Di -> Dj] whenever some update-transaction type writes in [Di] and
    accesses [Dj] — and validates that the partition is *TST-hierarchical*:
    the DHG must be a transitive semi-tree.  On success it packages the
    graph, its transitive reduction (the critical arcs), and the derived
    transaction classification ([T_i] writes [D_i]) that the protocols and
    activity-link functions are defined over.  The transaction hierarchy
    graph THG shares the DHG's shape (classes and segments are in
    bijection), so one graph serves both roles. *)

type error =
  | Multiple_write_segments of string * int list
      (** a type writes more than one segment — §3.2's Property shows
          this always breaks TST-hierarchy; reported eagerly with the
          offending type *)
  | Cyclic of int list  (** witness cycle, as segment ids *)
  | Not_semi_tree of int * int
      (** two distinct undirected critical paths join these segments *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type t = private {
  spec : Spec.t;
  dhg : Hdd_graph.Digraph.t;  (** nodes: all segment ids *)
  reduction : Hdd_graph.Digraph.t;  (** critical arcs *)
  n : int;  (** segment count *)
  cp : int list option array;
      (** dense [CP_i^j] matrix, row-major [i*n + j], filled at build
          time — the graph is static, so path lookups on the read path
          are O(1) array reads *)
  ucp_m : int list option array;  (** dense undirected-CP matrix *)
  lowest : int list;  (** precomputed {!lowest_classes} *)
}

val dhg_of_spec : Spec.t -> Hdd_graph.Digraph.t
(** The raw graph, before any validation — exposed for experiments that
    show rejection of illegal partitions. *)

val build : Spec.t -> (t, error) result

val build_exn : Spec.t -> t
(** @raise Invalid_argument with the rendered error. *)

val segment_count : t -> int

val class_of_type : t -> Spec.txn_type -> int
(** The root segment (= class index) of an update type. *)

val critical_path : t -> int -> int -> int list option
(** [CP_i^j] as segment ids [i; ...; j]; [Some [i]] when [i = j].
    An O(1) lookup in the precomputed matrix. *)

val critical_path_search : t -> int -> int -> int list option
(** Reference implementation of {!critical_path}: the per-call DFS over
    the reduction that the matrix is built from.  Kept as the benchmark
    ablation partner and the oracle for the equivalence property. *)

val higher_than : t -> int -> int -> bool
(** [higher_than h j i] is the paper's [T_j ↑ T_i]. *)

val on_one_critical_path : t -> int -> int -> bool
(** Do [CP_i^j] or [CP_j^i] exist (or [i = j])? *)

val ucp : t -> int -> int -> int list option
(** Unique undirected critical path [<i, ..., j>]; O(1) matrix lookup. *)

val ucp_search : t -> int -> int -> int list option
(** Reference implementation of {!ucp} (per-call BFS), same role as
    {!critical_path_search}. *)

val lowest_classes : t -> int list
(** Classes minimal in the ↑ order — no other class lies below them
    (in-degree zero in the reduction).  §5.2 starts time walls here. *)

val may_read : t -> class_id:int -> segment:int -> bool
(** Does the declared access pattern let class [class_id] read [segment]?
    True when equal (Protocol B) or when the segment's class is higher
    (Protocol A). *)

val to_dot : t -> string
