(** Database decomposition specifications.

    The input to the whole technique (§3.2): a partition of the database
    into named data segments, and the *transaction analysis* — for every
    update-transaction type, which segments it writes and which it reads.
    {!Partition} turns a spec into a data hierarchy graph and validates the
    TST-hierarchy requirement. *)

type txn_type = {
  type_name : string;
  writes : int list;  (** segments written; a legal partition forces one *)
  reads : int list;  (** segments read (the root segment may be included) *)
}

type t = {
  segment_names : string array;  (** segment [i] is [D_i] *)
  types : txn_type array;
}

val make : segments:string list -> types:txn_type list -> t
(** @raise Invalid_argument on an empty segment list, duplicate segment
    names, or a type referencing an out-of-range segment. *)

val txn_type :
  name:string -> writes:int list -> reads:int list -> txn_type

val segment_count : t -> int
val segment_name : t -> int -> string

val segment_index : t -> string -> int
(** @raise Not_found *)

val access_set : txn_type -> int list
(** The paper's [a(t) = r(t) ∪ w(t)], as sorted distinct segment ids. *)

val types_writing : t -> int -> txn_type list
(** The transaction types rooted in segment [i] — class [T_i]'s members. *)

val pp : Format.formatter -> t -> unit
