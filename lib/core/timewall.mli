(** Time walls (§5.1–§5.2).

    A time wall [TW(m,s)] is the vector of extended-activity-link values
    [E_s^i(m)] over all classes: a frontier such that no direct dependency
    runs from a transaction on the old side to one on the new side
    (Lemma 2.1).  Protocol C serves a read-only transaction the latest
    committed versions below the components of the most recent wall
    released before its initiation — no read timestamps, no waiting.

    When the class hierarchy is a forest, dependencies never cross
    components, so each component gets its own start class (a lowest one)
    and the wall is assembled per component. *)

type wall = private {
  s : int;  (** start class of the primary component *)
  m : Time.t;  (** wall anchor time *)
  components : Time.t array;  (** [E_s^i(m)] per class [i] *)
  released_at : Time.t;  (** [RT(TW)] *)
}

val threshold : wall -> class_id:int -> Time.t

val to_vector : wall -> Time.t array
(** A defensive copy of the component vector — what checkpoints persist
    and log shipping sends alongside a batch. *)

val make :
  s:int -> m:Time.t -> components:Time.t array -> released_at:Time.t -> wall
(** Assemble a wall from externally computed components — the parallel
    runtime's wall coordinator evaluates [E] over published registry
    snapshots rather than through a live {!Activity.ctx}.  The array is
    copied. *)

val component_starts : Partition.t -> int array
(** For each class, the start class of its connected component (one
    lowest class per component; isolated nodes start at themselves) —
    the per-component wall assembly of §5.2, exposed for the parallel
    coordinator. *)

val compute :
  Activity.ctx -> m:Time.t -> (Time.t array, Txn.id) result
(** One attempt at building the component vector anchored at [m]; [Error
    id] when a [C^late] along some undirected path is not yet computable
    because [id] is still active — the caller retries after that
    transaction finishes. *)

type manager

val create :
  ?trace:Hdd_obs.Trace.t -> Activity.ctx -> clock:Time.Clock.clock -> manager
(** Also releases an initial wall (trivially computable on an idle
    system) so read-only transactions always find one.  With [trace],
    every release emits a [Wall_release] record (anchor, release time and
    a copy of the component vector) and every failed attempt emits
    [Wall_blocked] naming the transaction in the way. *)

val try_release : manager -> (wall, Txn.id) result
(** Anchor a new wall at a fresh current time and release it if
    computable. *)

val latest_before : manager -> Time.t -> wall option
(** The wall with maximal release time strictly before the given instant —
    the rule of Protocol C.  [None] only if even the initial wall was
    released later than the instant. *)

val current : manager -> wall
(** Most recently released wall. *)

val released : manager -> wall list
(** All released walls, oldest first. *)

val release_count : manager -> int
