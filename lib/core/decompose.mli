(** Database decomposition methodology via data analysis (§7.2.2).

    Input: the observed (or declared) access patterns of the update
    transaction types, over named data items.  Output: a legal
    TST-hierarchical decomposition and the item-to-segment assignment.

    The clustering is the minimal one forced by the theory:
    - items written by the same transaction type must share a segment
      (each update transaction writes one segment — §3.2's Property);
    - the candidate segments then pass through {!Legalize}, which merges
      further only where the data hierarchy graph demands it.

    Items only ever read keep their own (possibly shared) segments and
    end up as high as the hierarchy allows, which is what makes the HDD
    protocols profitable on them. *)

type trace_txn = {
  tag : string;  (** transaction type name *)
  writes : string list;  (** item names written *)
  reads : string list;  (** item names read *)
}

type t = {
  legal : Legalize.result;
  items : (string * int) list;
      (** item -> segment id in [legal.spec], sorted by item *)
}

val decompose : trace_txn list -> t
(** @raise Invalid_argument on an empty trace, a type writing nothing,
    or duplicate type tags. *)

val segment_of : t -> string -> int
(** @raise Not_found for an unknown item. *)
