type cache_entry = {
  mutable arg : Time.t;
  mutable stamp : int;
  mutable value : Time.t;
}

type pair_cache = (int * int, cache_entry) Hashtbl.t

type ctx = {
  partition : Partition.t;
  registry : Registry.t;
  cache : pair_cache;
}

let make_ctx partition registry =
  { partition; registry; cache = Hashtbl.create 32 }

let i_old ctx ~class_id m = Registry.i_old ctx.registry ~class_id ~at:m

let c_late ctx ~class_id m = Registry.c_late ctx.registry ~class_id ~at:m

let critical_path_exn ctx ~from_class ~to_class =
  match Partition.critical_path ctx.partition from_class to_class with
  | Some path -> path
  | None ->
    invalid_arg
      (Printf.sprintf "Activity: no critical path from T%d to T%d" from_class
         to_class)

let a_fn_trace ctx ~from_class ~to_class m =
  let path = critical_path_exn ctx ~from_class ~to_class in
  match path with
  | [] -> assert false
  | first :: rest ->
    (* A_i^j(m) composes I_old over the successive classes of CP_i^j,
       excluding the starting class itself. *)
    let _, acc =
      List.fold_left
        (fun (m, acc) cls ->
          let m' = i_old ctx ~class_id:cls m in
          (m', (cls, m') :: acc))
        (m, [ (first, m) ])
        rest
    in
    List.rev acc

let a_fn ctx ~from_class ~to_class m =
  match critical_path_exn ctx ~from_class ~to_class with
  | [] -> assert false
  | [ _ ] -> m  (* from = to: the identity (§5.0 hosting) *)
  | _ :: rest ->
    (* Per-(class-pair) composition cache.  The composed value depends
       only on the argument and on the activity of the classes I_old is
       applied at, so a cached value is valid while every such class's
       registry generation is unchanged.  Generations are monotone, which
       lets one summed stamp stand in for the whole vector: the sum is
       equal iff every component is. *)
    let stamp =
      List.fold_left
        (fun s cls -> s + Registry.generation ctx.registry ~class_id:cls)
        0 rest
    in
    let key = (from_class, to_class) in
    (match Hashtbl.find_opt ctx.cache key with
    | Some e when e.arg = m && e.stamp = stamp -> e.value
    | found ->
      let value =
        List.fold_left (fun m cls -> i_old ctx ~class_id:cls m) m rest
      in
      (match found with
      | Some e ->
        e.arg <- m;
        e.stamp <- stamp;
        e.value <- value
      | None -> Hashtbl.add ctx.cache key { arg = m; stamp; value });
      value)

let b_fn ctx ~from_class ~to_class m =
  let path = critical_path_exn ctx ~from_class ~to_class in
  (* path = [from; ...; to]; B walks it top-down, applying C_late at every
     class except the bottom one ([from]), the mirror image of A applying
     I_old at every class except the bottom: only then do Properties 2.1
     (A∘B >= id) and 2.2 (A∘(B - eps) < id) hold. *)
  let above_bottom = List.rev (List.tl path) in
  List.fold_left
    (fun acc cls ->
      match acc with
      | Error _ -> acc
      | Ok m -> c_late ctx ~class_id:cls m)
    (Ok m) above_bottom

let e_fn ctx ~s ~i m =
  match Partition.ucp ctx.partition s i with
  | None ->
    invalid_arg
      (Printf.sprintf "Activity.e_fn: T%d and T%d are not connected" s i)
  | Some path ->
    let reduction = ctx.partition.Partition.reduction in
    (* Up-steps (u -> v critical arc, v higher) apply I_old at the target
       class, composing like A.  Down-steps (v -> u critical arc, v lower)
       apply C_late at the *source* class u — the B composition excludes
       the bottom class of each descent, so the application happens where
       the step starts, not where it lands. *)
    let rec walk m = function
      | [] | [ _ ] -> Ok m
      | u :: (v :: _ as rest) ->
        if Hdd_graph.Digraph.mem_arc reduction u v then
          walk (i_old ctx ~class_id:v m) rest
        else begin
          assert (Hdd_graph.Digraph.mem_arc reduction v u);
          match c_late ctx ~class_id:u m with
          | Error _ as e -> e
          | Ok m' -> walk m' rest
        end
    in
    walk m path
