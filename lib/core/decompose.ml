type trace_txn = {
  tag : string;
  writes : string list;
  reads : string list;
}

type t = {
  legal : Legalize.result;
  items : (string * int) list;
}

let decompose trace =
  if trace = [] then invalid_arg "Decompose.decompose: empty trace";
  let tags = Hashtbl.create 8 in
  List.iter
    (fun tx ->
      if Hashtbl.mem tags tx.tag then
        invalid_arg
          (Printf.sprintf "Decompose.decompose: duplicate type %S" tx.tag);
      Hashtbl.add tags tx.tag ();
      if tx.writes = [] then
        invalid_arg
          (Printf.sprintf "Decompose.decompose: type %S writes nothing" tx.tag))
    trace;
  (* index the items *)
  let item_ids = Hashtbl.create 32 in
  let item_names = ref [] in
  let item name =
    match Hashtbl.find_opt item_ids name with
    | Some i -> i
    | None ->
      let i = Hashtbl.length item_ids in
      Hashtbl.add item_ids name i;
      item_names := name :: !item_names;
      i
  in
  List.iter
    (fun tx ->
      List.iter (fun n -> ignore (item n)) tx.writes;
      List.iter (fun n -> ignore (item n)) tx.reads)
    trace;
  let n = Hashtbl.length item_ids in
  let names = Array.of_list (List.rev !item_names) in
  (* cluster co-written items *)
  let parent = Array.init n Fun.id in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(Int.min ri rj) <- Int.max ri rj
  in
  List.iter
    (fun tx ->
      match List.map item tx.writes with
      | [] -> ()
      | first :: rest -> List.iter (union first) rest)
    trace;
  (* compact clusters into candidate segments *)
  let cluster_ids = Hashtbl.create 8 in
  let cluster i =
    let r = find i in
    match Hashtbl.find_opt cluster_ids r with
    | Some c -> c
    | None ->
      let c = Hashtbl.length cluster_ids in
      Hashtbl.add cluster_ids r c;
      c
  in
  for i = 0 to n - 1 do
    ignore (cluster i)
  done;
  let k = Hashtbl.length cluster_ids in
  let members = Array.make k [] in
  for i = n - 1 downto 0 do
    members.(cluster i) <- names.(i) :: members.(cluster i)
  done;
  let segments =
    List.init k (fun c -> String.concat "+" members.(c))
  in
  let types =
    List.map
      (fun tx ->
        Spec.txn_type ~name:tx.tag
          ~writes:
            (List.sort_uniq compare (List.map (fun w -> cluster (item w)) tx.writes))
          ~reads:
            (List.sort_uniq compare (List.map (fun r -> cluster (item r)) tx.reads)))
      trace
  in
  let spec = Spec.make ~segments ~types in
  let legal = Legalize.legalize spec in
  let items =
    List.init n (fun i ->
        (names.(i), legal.Legalize.segment_map.(cluster i)))
    |> List.sort compare
  in
  { legal; items }

let segment_of t name = List.assoc name t.items
