type result = {
  spec : Spec.t;
  partition : Partition.t;
  segment_map : int array;
  merges : (int * int) list;
}

let is_legal spec =
  match Partition.build spec with Ok _ -> true | Error _ -> false

(* Union-find over the original segment ids. *)
module Uf = struct
  let create n = Array.init n Fun.id

  let rec find uf i = if uf.(i) = i then i else find uf uf.(i)

  let union uf i j =
    let ri = find uf i and rj = find uf j in
    if ri <> rj then uf.(Int.min ri rj) <- Int.max ri rj
end

(* Compact the union-find roots into dense ids 0..k-1 (in root order) and
   return (original -> compact) plus the member lists per compact id. *)
let compact spec uf =
  let n = Spec.segment_count spec in
  let root_ids = Hashtbl.create 8 in
  let mapping = Array.make n 0 in
  for i = 0 to n - 1 do
    let r = Uf.find uf i in
    let id =
      match Hashtbl.find_opt root_ids r with
      | Some id -> id
      | None ->
        let id = Hashtbl.length root_ids in
        Hashtbl.add root_ids r id;
        id
    in
    mapping.(i) <- id
  done;
  let k = Hashtbl.length root_ids in
  let members = Array.make k [] in
  for i = n - 1 downto 0 do
    members.(mapping.(i)) <- i :: members.(mapping.(i))
  done;
  (mapping, members)

let merged_spec spec uf =
  let mapping, members = compact spec uf in
  let name id =
    String.concat "+"
      (List.map (Spec.segment_name spec) members.(id))
  in
  let segments = List.init (Array.length members) name in
  let remap l = List.sort_uniq compare (List.map (fun i -> mapping.(i)) l) in
  let types =
    Array.to_list spec.Spec.types
    |> List.map (fun (ty : Spec.txn_type) ->
           Spec.txn_type ~name:ty.Spec.type_name ~writes:(remap ty.Spec.writes)
             ~reads:(remap ty.Spec.reads))
  in
  (Spec.make ~segments ~types, mapping)

(* Pick one original segment per merged id, to report merges in original
   terms. *)
let original_of mapping target =
  let found = ref (-1) in
  Array.iteri (fun i m -> if !found < 0 && m = target then found := i) mapping;
  !found

let legalize spec =
  let n = Spec.segment_count spec in
  let uf = Uf.create n in
  let merges = ref [] in
  let record i j = merges := (i, j) :: !merges in
  (* multi-write types force their write segments together *)
  Array.iter
    (fun (ty : Spec.txn_type) ->
      match ty.Spec.writes with
      | [] | [ _ ] -> ()
      | first :: rest ->
        List.iter
          (fun w ->
            if Uf.find uf first <> Uf.find uf w then begin
              record first w;
              Uf.union uf first w
            end)
          rest)
    spec.Spec.types;
  let rec fixpoint () =
    let candidate, mapping = merged_spec spec uf in
    match Partition.build candidate with
    | Ok partition ->
      { spec = candidate; partition; segment_map = mapping;
        merges = List.rev !merges }
    | Error (Partition.Multiple_write_segments (_, ws)) ->
      (* can only appear transiently if a merge re-split... merge them *)
      (match ws with
      | a :: rest ->
        let oa = original_of mapping a in
        List.iter
          (fun b ->
            let ob = original_of mapping b in
            record oa ob;
            Uf.union uf oa ob)
          rest;
        fixpoint ()
      | [] -> assert false)
    | Error (Partition.Cyclic cycle) ->
      (* collapse the whole cycle into one segment *)
      (match cycle with
      | a :: rest ->
        let oa = original_of mapping a in
        List.iter
          (fun b ->
            let ob = original_of mapping b in
            if Uf.find uf oa <> Uf.find uf ob then begin
              record oa ob;
              Uf.union uf oa ob
            end)
          rest;
        fixpoint ()
      | [] -> assert false)
    | Error (Partition.Not_semi_tree (i, j)) ->
      let i, j = if i >= 0 && j >= 0 then (i, j) else (0, 1) in
      let oi = original_of mapping i and oj = original_of mapping j in
      record oi oj;
      Uf.union uf oi oj;
      fixpoint ()
  in
  fixpoint ()
