type wall = {
  s : int;
  m : Time.t;
  components : Time.t array;
  released_at : Time.t;
}

let threshold wall ~class_id = wall.components.(class_id)

let to_vector wall = Array.copy wall.components

let make ~s ~m ~components ~released_at =
  { s; m; components = Array.copy components; released_at }

(* Choose one lowest class per connected component of the hierarchy. *)
let component_starts (partition : Partition.t) =
  let n = Partition.segment_count partition in
  let starts = Array.make n (-1) in
  let lowest = Partition.lowest_classes partition in
  for i = 0 to n - 1 do
    match
      List.find_opt
        (fun s -> Partition.ucp partition s i <> None)
        lowest
    with
    | Some s -> starts.(i) <- s
    | None ->
      (* isolated node: it is its own (trivially lowest) start *)
      starts.(i) <- i
  done;
  starts

let compute (ctx : Activity.ctx) ~m =
  let n = Partition.segment_count ctx.Activity.partition in
  let starts = component_starts ctx.Activity.partition in
  let components = Array.make n Time.zero in
  let rec fill i =
    if i >= n then Ok components
    else
      match Activity.e_fn ctx ~s:starts.(i) ~i m with
      | Ok v ->
        components.(i) <- v;
        fill (i + 1)
      | Error id -> Error id
  in
  fill 0

type manager = {
  ctx : Activity.ctx;
  clock : Time.Clock.clock;
  primary_start : int;
  trace : Hdd_obs.Trace.t option;
  mutable walls : wall list;  (* newest first, never empty *)
  mutable count : int;
}

let try_release_inner mgr =
  let m = Time.Clock.tick mgr.clock in
  match compute mgr.ctx ~m with
  | Error id as e ->
    (match mgr.trace with
    | None -> ()
    | Some tr ->
      Hdd_obs.Trace.emit tr ~at:m (Hdd_obs.Trace.Wall_blocked { on = id }));
    e
  | Ok components ->
    let wall =
      { s = mgr.primary_start; m; components;
        released_at = Time.Clock.tick mgr.clock }
    in
    mgr.walls <- wall :: mgr.walls;
    mgr.count <- mgr.count + 1;
    (match mgr.trace with
    | None -> ()
    | Some tr ->
      Hdd_obs.Trace.emit tr ~at:wall.released_at
        (Hdd_obs.Trace.Wall_release
           { m; released_at = wall.released_at;
             components = Array.copy components }));
    Ok wall

let create ?trace ctx ~clock =
  let primary_start =
    match Partition.lowest_classes ctx.Activity.partition with
    | s :: _ -> s
    | [] -> 0
  in
  let mgr = { ctx; clock; primary_start; trace; walls = []; count = 0 } in
  (match try_release_inner mgr with
  | Ok _ -> ()
  | Error _ ->
    (* cannot happen: create is called before any transaction begins, but
       guard against misuse by installing a zero wall *)
    let n = Partition.segment_count ctx.Activity.partition in
    let t = Time.Clock.tick clock in
    mgr.walls <-
      [ { s = primary_start; m = t; components = Array.make n t;
          released_at = Time.Clock.tick clock } ];
    mgr.count <- 1);
  mgr

let try_release = try_release_inner

let latest_before mgr t =
  let rec go = function
    | [] -> None
    | w :: rest -> if w.released_at < t then Some w else go rest
  in
  go mgr.walls

let current mgr =
  match mgr.walls with
  | w :: _ -> w
  | [] -> assert false

let released mgr = List.rev mgr.walls

let release_count mgr = mgr.count
