(** The HDD concurrency controller: Protocols A, B and C of §4.2 and §5.2
    over a TST-hierarchical partition.

    Routing, for an access by transaction [t] to granule [d ∈ Dj]:

    - update [t ∈ Ti], [i = j] — {b Protocol B}: multi-version timestamp
      ordering keyed on [I(t)] inside the root segment.  Reads take the
      latest version below [I(t)] and *register* a read timestamp (the
      cost the technique confines to root segments); a read whose version
      is still pending blocks until its writer finishes; a write whose
      would-be predecessor has been read by a younger transaction is
      rejected (the transaction restarts).
    - update [t ∈ Ti], [i ≠ j], [Tj] higher — {b Protocol A}: serve the
      latest committed version below [A_i^j(I(t))].  No registration, no
      blocking, no rejection, ever.
    - read-only [t] — {b Protocol C}: serve, in every segment, the latest
      committed version below the matching component of the most recent
      time wall released before [I(t)].  Same guarantees as Protocol A.
    - read-only [t] whose read set lies on one critical path — hosted as a
      member of a fictitious class just below the path's lowest class
      (§5.0) and served through Protocol A thresholds.

    Writes outside the declared root segment and reads of segments that
    are neither the root nor higher are *specification violations* and are
    rejected: they would invalidate the partition analysis.

    The scheduler never decides scheduling policy for blocked or rejected
    transactions — the driver (simulator, example, test) retries or
    restarts; this keeps the controller reusable across drivers. *)

type metrics = {
  mutable begins : int;
  mutable commits : int;
  mutable aborts : int;
  mutable reads_a : int;  (** cross-class reads served by Protocol A *)
  mutable reads_b : int;  (** root-segment reads served by Protocol B *)
  mutable reads_c : int;  (** read-only reads served by Protocol C *)
  mutable writes : int;
  mutable read_registrations : int;
      (** read timestamps written — Protocol B reads only: the overhead
          the paper sets out to remove *)
  mutable blocks : int;
  mutable rejects : int;
}

type 'a t

val create :
  ?log:Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  ?wall_every_commits:int ->
  ?gc_every_commits:int ->
  ?gc_on_wall:bool ->
  partition:Partition.t ->
  clock:Time.Clock.clock ->
  store:'a Hdd_mvstore.Store.t ->
  unit ->
  'a t
(** [wall_every_commits] (default 16) controls how often Protocol C's time
    wall is refreshed: after that many commits the scheduler attempts a
    release, retrying on later commits while some [C^late] is not yet
    computable.  [gc_every_commits] (off by default) runs
    {!collect_garbage} after every that-many commits.  [gc_on_wall]
    (default on) runs it after every successful wall release — the
    wall-driven collection of §7.3 that keeps chains trimmed in steady
    state without a separate trigger.

    [trace] attaches a {!Hdd_obs.Trace} sink: every begin, read, write,
    block, rejection, commit, abort, wall release and garbage collection
    emits one structured record (DESIGN.md §12 catalogues the schema).
    The same sink is threaded to the {!Registry}, the {!Timewall} manager
    and every store segment.  Without it the emission sites cost one
    branch each. *)

val partition : 'a t -> Partition.t
val activity_ctx : 'a t -> Activity.ctx
val registry : 'a t -> Registry.t
val metrics : 'a t -> metrics
val wall_manager : 'a t -> Timewall.manager

val begin_update : 'a t -> class_id:int -> Txn.t
(** @raise Invalid_argument on an out-of-range class. *)

val begin_read_only : 'a t -> Txn.t

val begin_read_only_on_path : 'a t -> below:int -> Txn.t
(** Read-only transaction hosted below class [below] (§5.0): it may read
    [D_below] and any segment higher than it on a critical path. *)

val begin_adhoc_update : 'a t -> writes:int list -> reads:int list -> Txn.t
(** Ad-hoc update transaction (§7.1.1): an access pattern outside the
    analysed classification, handled *without restructuring the
    partition*.  The transaction joins every class whose segment it
    touches — so every activity-link threshold and time wall accounts for
    it while it runs — and all of its accesses execute under MVTO
    (protocol B) with read registration: it pays classical costs so the
    analysed classes keep paying none.

    The {e ad-hoc barrier}: an update transaction whose initiation
    timestamp falls inside an ad-hoc transaction's activity window is
    rejected at its first operation and restarts with a post-window
    timestamp.  Historic [I_old] thresholds place the ad-hoc transaction
    in such a reader's future while MVTO version visibility would place
    its writes in the past; admitting both views produces dependency
    cycles (found by experiment E14), so timestamps inside windows are
    forbidden.  Read-only transactions are unaffected: their wall and
    hosted thresholds are capped consistently in every segment.
    @raise Invalid_argument on an empty write set or an unknown
    segment. *)

val read : 'a t -> Txn.t -> Granule.t -> 'a Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Outcome.t

val commit : 'a t -> Txn.t -> unit
(** @raise Invalid_argument if the transaction is not active. *)

val abort : 'a t -> Txn.t -> unit
(** Discards pending versions and erases the transaction's steps from the
    schedule log. *)

val release_wall : 'a t -> (Timewall.wall, Txn.id) result
(** Force a wall release attempt (Protocol C maintenance). *)

val gc_watermark : 'a t -> Time.t
(** The lowest version-selection threshold any active transaction — or
    any transaction that can still begin — may use (§7.3): current
    protocol-B timestamps, the activity links of every active updater,
    the wall components held by active read-only transactions and the
    current wall for future ones.  Equals the minimum component of
    {!gc_watermark_vector}. *)

val gc_watermark_vector : 'a t -> Time.t array
(** The per-segment refinement of {!gc_watermark}: component [s] bounds
    the thresholds usable for reads of segment [s] only, so segments no
    old straggler can reach are trimmed further than the uniform
    watermark allows.  DESIGN.md §11 gives the safety argument. *)

val collect_garbage : 'a t -> int
(** Drop versions no reachable threshold can select (each chain keeps its
    newest committed version below its segment's watermark component) and
    prune the activity registries below the scalar watermark.  Returns
    the number of versions dropped. *)

val read_threshold : 'a t -> Txn.t -> segment:int -> Time.t option
(** The version-selection threshold the scheduler would use for a read of
    the segment by this transaction — exposed for experiments (Figure 6,
    Figure 9).  [None] when the access would be rejected. *)
