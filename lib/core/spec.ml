type txn_type = {
  type_name : string;
  writes : int list;
  reads : int list;
}

type t = {
  segment_names : string array;
  types : txn_type array;
}

let txn_type ~name ~writes ~reads =
  { type_name = name;
    writes = List.sort_uniq compare writes;
    reads = List.sort_uniq compare reads }

let make ~segments ~types =
  if segments = [] then invalid_arg "Spec.make: no segments";
  let names = Array.of_list segments in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Spec.make: duplicate segment %S" n);
      Hashtbl.add seen n ())
    names;
  let n = Array.length names in
  let check_range ty i =
    if i < 0 || i >= n then
      invalid_arg
        (Printf.sprintf "Spec.make: type %S references segment %d (of %d)"
           ty.type_name i n)
  in
  List.iter
    (fun ty ->
      if ty.writes = [] then
        invalid_arg
          (Printf.sprintf "Spec.make: type %S writes no segment" ty.type_name);
      List.iter (check_range ty) ty.writes;
      List.iter (check_range ty) ty.reads)
    types;
  { segment_names = names; types = Array.of_list types }

let segment_count t = Array.length t.segment_names
let segment_name t i = t.segment_names.(i)

let segment_index t name =
  let n = Array.length t.segment_names in
  let rec go i =
    if i >= n then raise Not_found
    else if String.equal t.segment_names.(i) name then i
    else go (i + 1)
  in
  go 0

let access_set ty = List.sort_uniq compare (ty.writes @ ty.reads)

let types_writing t i =
  Array.to_list t.types |> List.filter (fun ty -> List.mem i ty.writes)

let pp ppf t =
  Format.fprintf ppf "@[<v>segments:";
  Array.iteri (fun i n -> Format.fprintf ppf "@ D%d=%s" i n) t.segment_names;
  Array.iter
    (fun ty ->
      Format.fprintf ppf "@ %s: w=%a r=%a" ty.type_name
        (Format.pp_print_list Format.pp_print_int)
        ty.writes
        (Format.pp_print_list Format.pp_print_int)
        ty.reads)
    t.types;
  Format.fprintf ppf "@]"
