type 'a t =
  | Granted of 'a
  | Blocked of Txn.id list
  | Rejected of string

let granted = function Granted v -> Some v | Blocked _ | Rejected _ -> None
let is_granted o = granted o <> None

let pp pp_v ppf = function
  | Granted v -> Format.fprintf ppf "granted %a" pp_v v
  | Blocked ids ->
    Format.fprintf ppf "blocked on %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      ids
  | Rejected why -> Format.fprintf ppf "rejected: %s" why
