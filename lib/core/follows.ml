let classes_of t1 t2 =
  match (Txn.class_of t1, Txn.class_of t2) with
  | Some i, Some j -> Some (i, j)
  | _ -> None

let follows (ctx : Activity.ctx) (t1 : Txn.t) (t2 : Txn.t) =
  match classes_of t1 t2 with
  | None -> None
  | Some (i, j) ->
    if i = j then Some (t1.Txn.init > t2.Txn.init)
    else if Partition.higher_than ctx.Activity.partition i j then
      (* t1's class is higher: compare t1 against the activity link of
         t2's initiation lifted from Tj up to Ti *)
      Some (t1.Txn.init >= Activity.a_fn ctx ~from_class:j ~to_class:i t2.Txn.init)
    else if Partition.higher_than ctx.Activity.partition j i then
      Some (t2.Txn.init < Activity.a_fn ctx ~from_class:i ~to_class:j t1.Txn.init)
    else None

let defined ctx t1 t2 = follows ctx t1 t2 <> None
