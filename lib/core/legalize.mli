(** Legalizing acyclic decompositions (§7.2.1).

    A partition whose data hierarchy graph is acyclic but not a
    transitive semi-tree cannot run under the HDD protocols.  The paper
    proposes transforming such a partition into a legal one "while
    preserving the granularity of the original partition as much as
    possible".  This module implements that transformation by *merging
    segments*: whenever the transitive reduction of the DHG holds two
    distinct undirected paths between a pair of segments, the two
    endpoints of the offending edge are merged into one segment and the
    analysis repeats.  Merging strictly reduces the number of segments,
    so the loop terminates — in the worst case at a single segment, whose
    DHG is trivially a semi-tree.

    Merging is purely a renaming of the transaction analysis: the
    returned spec has the same transaction types with their segment
    references collapsed, and a mapping from original segment ids to the
    ids of the merged spec.  A cyclic DHG cannot be repaired by merging
    alone (the merged class would write and read itself harmlessly, so it
    actually can — a cycle collapses into one segment) and is handled the
    same way. *)

type result = {
  spec : Spec.t;  (** the legalized decomposition *)
  partition : Partition.t;  (** validated: building it cannot fail *)
  segment_map : int array;
      (** original segment id -> merged segment id *)
  merges : (int * int) list;
      (** the pairs merged, in order, as original segment ids *)
}

val legalize : Spec.t -> result
(** @raise Invalid_argument if some type writes several segments even
    after full collapse would not help (never happens: a single segment
    is always legal, so this function totalises). *)

val is_legal : Spec.t -> bool
(** Does the spec already validate as TST-hierarchical? *)
