(** The "topologically follows" relation [t1 => t2] (§4.3).

    Defined only between update transactions whose classes lie on one
    critical path of the hierarchy; it refines "later than" by the relative
    levels of the classes: the lower [t1]'s class sits, the later its
    initiation must be for [t1 => t2] to hold.  The concurrency control
    algorithm is correct because it admits a direct dependency
    [t1 -> t2] only when [t1 => t2] (the partition synchronization rule),
    and [=>] is antisymmetric and critical-path transitive. *)

val follows : Activity.ctx -> Txn.t -> Txn.t -> bool option
(** [follows ctx t1 t2] is [Some (t1 => t2)], or [None] when the relation
    is undefined for the pair: one of them is read-only, or their classes
    are not on one critical path.

    The three defining cases, with [t1 ∈ Ti], [t2 ∈ Tj]:
    - [Ti = Tj]: [I(t1) > I(t2)];
    - [Ti] higher than [Tj]: [I(t1) >= A_j^i(I(t2))];
    - [Tj] higher than [Ti]: [I(t2) < A_i^j(I(t1))]. *)

val defined : Activity.ctx -> Txn.t -> Txn.t -> bool
(** Is the relation defined for the pair (distinct update transactions on
    one critical path)? *)
