module Digraph = Hdd_graph.Digraph

type verdict = {
  graph : Digraph.t;
  serializable : bool;
  cycle : int list option;
}

(* Map (granule, version timestamp) -> writer, and granule -> sorted
   version timestamps, from the committed write steps of the log.  Version
   timestamp zero belongs to the bootstrap transaction. *)
let index_writes steps =
  let writers : (Granule.t * Time.t, Txn.id) Hashtbl.t = Hashtbl.create 256 in
  let versions : Time.t list Granule.Tbl.t = Granule.Tbl.create 256 in
  let touch g =
    if not (Granule.Tbl.mem versions g) then begin
      Granule.Tbl.add versions g [ Time.zero ];
      Hashtbl.replace writers (g, Time.zero) Txn.bootstrap.Txn.id
    end
  in
  List.iter
    (fun (s : Sched_log.step) ->
      touch s.Sched_log.granule;
      match s.Sched_log.action with
      | Sched_log.Write ->
        if not (Hashtbl.mem writers (s.granule, s.version)) then
          Granule.Tbl.replace versions s.granule
            (s.version :: Granule.Tbl.find versions s.granule);
        Hashtbl.replace writers (s.granule, s.version) s.txn
      | Sched_log.Read -> ())
    steps;
  let sorted = Granule.Tbl.create 256 in
  Granule.Tbl.iter
    (fun g vs -> Granule.Tbl.add sorted g (List.sort_uniq Time.compare vs))
    versions;
  (writers, sorted)

(* The full multiversion serialization graph of Bernstein & Goodman, with
   the version order given by the write timestamps.  Arcs point from the
   dependent transaction to the one it must follow (the paper's "t2 -> t1
   iff t2 depends on t1"):

   - the reader of a version depends on its writer;
   - for every read r_k(x^j) and every other version x^i of the granule
     written by a third transaction:
     - x^i older than x^j: the writer of x^j depends on the writer of
       x^i (the version order must be respected by any serialization);
     - x^i newer than x^j: the writer of x^i depends on the reader (the
       reader saw the granule before that overwrite).

   The paper's §2 presentation keeps only the first rule and the adjacent
   case of the last; the full graph additionally certifies *one-copy*
   serializability, which is what the single-version baselines must
   satisfy (it is what catches Figure 1's lost update). *)
let dependency_graph log =
  let steps = Sched_log.steps log in
  let writers, versions = index_writes steps in
  let writer_of g v =
    match Hashtbl.find_opt writers (g, v) with
    | Some w -> w
    | None -> Txn.bootstrap.Txn.id
  in
  let g0 =
    List.fold_left
      (fun acc (s : Sched_log.step) -> Digraph.add_node acc s.Sched_log.txn)
      (Digraph.add_node Digraph.empty Txn.bootstrap.Txn.id)
      steps
  in
  let add_arc acc a b = if a = b then acc else Digraph.add_arc acc a b in
  List.fold_left
    (fun acc (s : Sched_log.step) ->
      match s.Sched_log.action with
      | Sched_log.Write -> acc
      | Sched_log.Read ->
        let reader = s.txn in
        let read_writer = writer_of s.granule s.version in
        let acc = add_arc acc reader read_writer in
        List.fold_left
          (fun acc other ->
            if other = s.version then acc
            else
              let other_writer = writer_of s.granule other in
              if other_writer = reader then acc
              else if other < s.version then
                add_arc acc read_writer other_writer
              else add_arc acc other_writer reader)
          acc
          (match Granule.Tbl.find_opt versions s.granule with
          | Some vs -> vs
          | None -> []))
    g0 steps

let certify log =
  let graph = dependency_graph log in
  match Digraph.find_cycle graph with
  | None -> { graph; serializable = true; cycle = None }
  | Some c -> { graph; serializable = false; cycle = Some c }

let serializable log = (certify log).serializable

let equivalent_serial_order log =
  let graph = dependency_graph log in
  match Digraph.topological_sort graph with
  | None -> None
  | Some order -> Some (List.rev order)

let pp_cycle ppf cycle =
  match cycle with
  | [] -> Format.pp_print_string ppf "(empty cycle)"
  | first :: _ ->
    List.iter (fun id -> Format.fprintf ppf "t%d -> " id) cycle;
    Format.fprintf ppf "t%d" first

let pp_verdict ppf v =
  if v.serializable then Format.pp_print_string ppf "serializable"
  else
    Format.fprintf ppf "NOT serializable (witness %a)"
      (fun ppf -> function
        | Some c -> pp_cycle ppf c
        | None -> Format.pp_print_string ppf "?")
      v.cycle
