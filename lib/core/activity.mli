(** The activity link function [A], its backward inverse [B], and the
    extended function [E] (§4.1, §5.1).

    All three map logical times to logical times by composing the two
    registry queries along the (undirected) critical path of the class
    hierarchy:

    - [A_i^j(m)]: going *up* a critical path [T_i -> T_k -> … -> T_j],
      successively take the initiation time of the oldest active
      transaction — [I_j^old(… I_k^old(m) …)].  Protocol A reads segment
      [D_j] below this threshold.
    - [B_j^i(m)]: going back *down*, successively take the latest commit
      time — [C_i^late(… C_k^late(m) …)].  Only computable once every
      involved class has no straggler older than the argument; the paper's
      Properties 2.1/2.2 make [B] the inverse of [A] up to epsilon.
    - [E_s^i(m)]: along the unique *undirected* critical path from [T_s]
      to [T_i], apply [I^old] across forward (upward) arcs and [C^late]
      across backward (downward) arcs.  Time walls are vectors of [E]
      values. *)

type pair_cache
(** Per-(class-pair) cache of composed [A] values, stamped with the
    registry generations of the classes along the path so entries go
    stale exactly when a relevant class log advances. *)

type ctx = {
  partition : Partition.t;
  registry : Registry.t;
  cache : pair_cache;
}

val make_ctx : Partition.t -> Registry.t -> ctx

val i_old : ctx -> class_id:int -> Time.t -> Time.t
(** [I_class^old(m)] — re-exported for experiments and tests. *)

val c_late : ctx -> class_id:int -> Time.t -> (Time.t, Txn.id) result

val a_fn : ctx -> from_class:int -> to_class:int -> Time.t -> Time.t
(** [A_{from}^{to}(m)].  When [from = to] this is the identity (used by the
    fictitious-class hosting of §5.0).
    @raise Invalid_argument when no critical path joins the classes. *)

val a_fn_trace :
  ctx -> from_class:int -> to_class:int -> Time.t -> (int * Time.t) list
(** The successive [(class, I_old value)] pairs of the composition, for
    the Figure 6 experiment.  First element is [(from_class, m)]. *)

val b_fn :
  ctx -> from_class:int -> to_class:int -> Time.t -> (Time.t, Txn.id) result
(** [B_{to}^{from}(m)] where the critical path runs [from -> … -> to]:
    maps a time at the *top* class [to] back down to the bottom class
    [from].  [Error id] when some [C^late] along the way is not yet
    computable because transaction [id] is still active.
    @raise Invalid_argument when no critical path joins the classes. *)

val e_fn : ctx -> s:int -> i:int -> Time.t -> (Time.t, Txn.id) result
(** [E_s^i(m)] along the UCP.
    @raise Invalid_argument when the classes are in different components
    of the hierarchy. *)
