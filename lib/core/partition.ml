module Digraph = Hdd_graph.Digraph

type error =
  | Multiple_write_segments of string * int list
  | Cyclic of int list
  | Not_semi_tree of int * int

let pp_error ppf = function
  | Multiple_write_segments (name, segs) ->
    Format.fprintf ppf
      "transaction type %S writes several segments (%a): a TST-hierarchical \
       partition admits exactly one root segment per update transaction"
      name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Format.pp_print_int)
      segs
  | Cyclic cycle ->
    Format.fprintf ppf "the data hierarchy graph is cyclic: %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
         Format.pp_print_int)
      cycle
  | Not_semi_tree (i, j) ->
    Format.fprintf ppf
      "the transitive reduction of the data hierarchy graph is not a \
       semi-tree: segments %d and %d are joined by more than one undirected \
       path"
      i j

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  spec : Spec.t;
  dhg : Digraph.t;
  reduction : Digraph.t;
  n : int;  (* segment count; matrices below are n*n, row-major *)
  cp : int list option array;  (* [i*n + j] = CP_i^j *)
  ucp_m : int list option array;  (* [i*n + j] = undirected CP <i..j> *)
  lowest : int list;  (* classes minimal in the ↑ order *)
}

let dhg_of_spec (spec : Spec.t) =
  let g =
    Array.to_list spec.Spec.types
    |> List.concat_map (fun ty ->
           List.concat_map
             (fun w ->
               List.filter_map
                 (fun a -> if a <> w then Some (w, a) else None)
                 (Spec.access_set ty))
             ty.Spec.writes)
    |> Digraph.of_arcs
  in
  (* every segment is a node even when isolated *)
  let rec add g i =
    if i < 0 then g else add (Digraph.add_node g i) (i - 1)
  in
  add g (Spec.segment_count spec - 1)

(* Locate a pair of nodes joined by two undirected paths, for error
   reporting: the endpoints of the edge whose insertion closed a cycle in
   the union-find sweep. *)
let semi_tree_violation reduction =
  let parent = Hashtbl.create 16 in
  let rec find u =
    match Hashtbl.find_opt parent u with
    | None -> u
    | Some p ->
      let r = find p in
      Hashtbl.replace parent u r;
      r
  in
  Digraph.fold_arcs
    (fun u v acc ->
      match acc with
      | Some _ -> acc
      | None ->
        if Digraph.mem_arc reduction v u && u < v then Some (u, v)
        else
          let ru = find u and rv = find v in
          if ru = rv then Some (u, v)
          else begin
            Hashtbl.replace parent ru rv;
            None
          end)
    reduction None

(* Per-call path searches over the reduction.  These are the reference
   algorithms: [build] runs them once per class pair to fill the dense
   matrices that the accessors below serve from, and the test suite keeps
   them honest against the matrix lookups. *)

let cp_search ~dhg ~reduction i j =
  if i = j then if Digraph.mem_node dhg i then Some [ i ] else None
  else
    (* the reduction holds exactly the critical arcs; a directed path in it
       is a critical path, and in a semi-tree it is unique *)
    let rec dfs seen u =
      if u = j then Some [ j ]
      else if List.mem u seen then None
      else
        List.fold_left
          (fun found v ->
            match found with
            | Some _ -> found
            | None -> (
              match dfs (u :: seen) v with
              | Some path -> Some (u :: path)
              | None -> None))
          None
          (Digraph.succ reduction u)
    in
    if Digraph.mem_node dhg i && Digraph.mem_node dhg j then dfs [] i
    else None

let ucp_search ~dhg ~reduction i j =
  if i = j then if Digraph.mem_node dhg i then Some [ i ] else None
  else begin
    (* BFS on the undirected view of the reduction *)
    let parent = Hashtbl.create 16 in
    let q = Queue.create () in
    Queue.add i q;
    Hashtbl.replace parent i i;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let u = Queue.pop q in
      if u = j then found := true
      else
        List.iter
          (fun v ->
            if not (Hashtbl.mem parent v) then begin
              Hashtbl.replace parent v u;
              Queue.add v q
            end)
          (Digraph.succ reduction u @ Digraph.pred reduction u)
    done;
    if not !found then None
    else
      let rec walk u acc =
        if u = i then u :: acc else walk (Hashtbl.find parent u) (u :: acc)
      in
      Some (walk j [])
  end

let build spec =
  let multi =
    Array.to_list spec.Spec.types
    |> List.find_opt (fun ty -> List.length ty.Spec.writes > 1)
  in
  match multi with
  | Some ty -> Error (Multiple_write_segments (ty.Spec.type_name, ty.Spec.writes))
  | None -> (
    let dhg = dhg_of_spec spec in
    match Digraph.find_cycle dhg with
    | Some cycle -> Error (Cyclic cycle)
    | None ->
      let reduction = Digraph.transitive_reduction dhg in
      if Digraph.is_semi_tree reduction then begin
        (* The DHG is static from here on, so everything derivable from
           it is precomputed: the activity-link functions walk these flat
           arrays instead of re-deriving paths on every read. *)
        let n = Spec.segment_count spec in
        let cp =
          Array.init (n * n) (fun k ->
              cp_search ~dhg ~reduction (k / n) (k mod n))
        in
        let ucp_m =
          Array.init (n * n) (fun k ->
              ucp_search ~dhg ~reduction (k / n) (k mod n))
        in
        let lowest =
          List.filter
            (fun i -> Digraph.pred reduction i = [])
            (Digraph.nodes reduction)
        in
        Ok { spec; dhg; reduction; n; cp; ucp_m; lowest }
      end
      else
        let i, j =
          match semi_tree_violation reduction with
          | Some pair -> pair
          | None -> (-1, -1)
        in
        Error (Not_semi_tree (i, j)))

let build_exn spec =
  match build spec with
  | Ok t -> t
  | Error e -> invalid_arg ("Partition.build: " ^ error_to_string e)

let segment_count t = Spec.segment_count t.spec

let class_of_type _t (ty : Spec.txn_type) =
  match ty.Spec.writes with
  | [ w ] -> w
  | _ -> invalid_arg "Partition.class_of_type: not a single-root type"

let in_range t i j = i >= 0 && i < t.n && j >= 0 && j < t.n

let critical_path t i j =
  if in_range t i j then t.cp.((i * t.n) + j) else None

let critical_path_search t i j =
  cp_search ~dhg:t.dhg ~reduction:t.reduction i j

let higher_than t j i = i <> j && critical_path t i j <> None

let on_one_critical_path t i j =
  i = j || critical_path t i j <> None || critical_path t j i <> None

let ucp t i j = if in_range t i j then t.ucp_m.((i * t.n) + j) else None

let ucp_search t i j = ucp_search ~dhg:t.dhg ~reduction:t.reduction i j

let lowest_classes t = t.lowest

let may_read t ~class_id ~segment =
  class_id = segment || higher_than t segment class_id

let to_dot t =
  Digraph.to_dot ~name:"dhg"
    ~label:(fun i ->
      Printf.sprintf "D%d:%s" i (Spec.segment_name t.spec i))
    t.dhg
