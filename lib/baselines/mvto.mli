(** Multi-version timestamp ordering (Reed78) without hierarchy: the
    protocol the paper's Protocol B restricts to root segments, here
    applied to every access.

    Reads take the latest version below the transaction's timestamp and
    *register a read timestamp on it*; a read whose version is still
    pending waits for the writer; a write whose would-be predecessor has
    been read by a younger transaction is rejected.  Contrast with the HDD
    scheduler, which performs none of this bookkeeping on cross-class
    reads. *)

type 'a t

val create :
  ?log:Sched_log.t ->
  clock:Time.Clock.clock ->
  segments:int ->
  init:(Granule.t -> 'a) ->
  unit ->
  'a t

val metrics : 'a t -> Cc_metrics.t
val begin_txn : 'a t -> Txn.t
val read : 'a t -> Txn.t -> Granule.t -> 'a Hdd_core.Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Hdd_core.Outcome.t
val commit : 'a t -> Txn.t -> unit
val abort : 'a t -> Txn.t -> unit
val store : 'a t -> 'a Hdd_mvstore.Store.t
