(** No concurrency control at all: reads and writes go straight to the
    single-version store.  Exists to reproduce Figure 1 — the lost-update
    anomaly that motivates the whole subject — and to measure the raw cost
    floor of the substrate.  Never blocks, never rejects, and certifies as
    non-serializable on the slightest conflict. *)

type 'a t

val create :
  ?log:Sched_log.t ->
  clock:Time.Clock.clock ->
  init:(Granule.t -> 'a) ->
  unit ->
  'a t

val metrics : 'a t -> Cc_metrics.t
val begin_txn : 'a t -> Txn.t
val read : 'a t -> Txn.t -> Granule.t -> 'a Hdd_core.Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Hdd_core.Outcome.t
val commit : 'a t -> Txn.t -> unit
val abort : 'a t -> Txn.t -> unit
