(** SDD-1-style conflict-analysis concurrency control (Bernstein80's
    conflict-graph analysis, simplified to a centralized setting) — the
    second column of the paper's Figure 10.

    Like HDD, it exploits a-priori transaction analysis instead of
    per-granule registration: transaction classes declare which segments
    they read and write, and classes whose access sets conflict are forced
    to execute in timestamp order.  An operation on segment [s] waits until
    every *older active* transaction in a class that conflicts on [s] has
    finished ("serialized pipelining"); within a class, transactions
    pipeline in timestamp order.  Reads are therefore never registered —
    but, unlike HDD's Protocol A, they *can block*, which is exactly the
    contrast Figure 10 records.  Waiting is only ever for older
    transactions, so the protocol is deadlock-free.

    The class universe is a validated HDD partition so that workloads run
    unchanged across controllers; the protocol itself uses nothing but the
    read/write segment sets. *)

type 'a t

val create :
  ?log:Sched_log.t ->
  clock:Time.Clock.clock ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> 'a) ->
  unit ->
  'a t

val metrics : 'a t -> Cc_metrics.t

val begin_txn : 'a t -> class_id:int -> Txn.t
(** @raise Invalid_argument on an out-of-range class. *)

val begin_adhoc : ?updates:bool -> 'a t -> Txn.t
(** An ad-hoc transaction: SDD-1 gives it no special handling, so it
    joins a synthetic class whose declared access set covers every
    segment — conflict analysis then orders every writer against it.
    With [updates] (default false) the transaction may also write, and
    conflict analysis additionally orders every younger {e reader}
    behind it; without it the member is read-only and readers pass. *)

val read : 'a t -> Txn.t -> Granule.t -> 'a Hdd_core.Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Hdd_core.Outcome.t
val commit : 'a t -> Txn.t -> unit
val abort : 'a t -> Txn.t -> unit
