module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
open Hdd_core.Outcome

type 'a txn_state = { txn : Txn.t; mutable written : Granule.t list }

type 'a t = {
  clock : Time.Clock.clock;
  store : 'a Store.t;
  states : (Txn.id, 'a txn_state) Hashtbl.t;
  log : Sched_log.t option;
  m : Cc_metrics.t;
  mutable next_id : int;
}

let create ?log ~clock ~segments ~init () =
  { clock; store = Store.create ~segments ~init;
    states = Hashtbl.create 64; log; m = Cc_metrics.create ();
    next_id = 1 }

let metrics t = t.m
let store t = t.store

let state_of t (txn : Txn.t) =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Mvto: unknown transaction %d" txn.Txn.id)

let begin_txn t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let txn = Txn.make ~id ~kind:(Txn.Update 0) ~init:(Time.Clock.tick t.clock) in
  Hashtbl.replace t.states id { txn; written = [] };
  t.m.begins <- t.m.begins + 1;
  txn

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

let read t txn g =
  ignore (state_of t txn);
  t.m.reads <- t.m.reads + 1;
  match Store.candidate_before t.store g ~ts:txn.Txn.init with
  | None ->
    t.m.rejects <- t.m.rejects + 1;
    Rejected "version collected past timestamp"
  | Some (Chain.Wait_for writer) ->
    t.m.blocks <- t.m.blocks + 1;
    Blocked [ writer ]
  | Some (Chain.Version v) ->
    Chain.mark_read v ~at:txn.Txn.init;
    t.m.read_registrations <- t.m.read_registrations + 1;
    log_read t ~txn:txn.Txn.id ~granule:g ~version:v.Chain.ts;
    Granted v.Chain.value

let write t txn g value =
  let st = state_of t txn in
  let ts = txn.Txn.init in
  t.m.writes <- t.m.writes + 1;
  if List.exists (Granule.equal g) st.written then begin
    Store.discard_version t.store g ~ts;
    ignore (Store.install t.store g ~ts ~writer:txn.Txn.id ~value);
    log_write t ~txn:txn.Txn.id ~granule:g ~version:ts;
    Granted ()
  end
  else
    let late =
      match Store.predecessor_rts t.store g ~ts with
      | Some rts -> rts > ts
      | None -> false
    in
    if late then begin
      t.m.rejects <- t.m.rejects + 1;
      Rejected "a younger transaction already read the predecessor"
    end
    else begin
      ignore (Store.install t.store g ~ts ~writer:txn.Txn.id ~value);
      st.written <- g :: st.written;
      log_write t ~txn:txn.Txn.id ~granule:g ~version:ts;
      Granted ()
    end

let commit t txn =
  let st = state_of t txn in
  List.iter
    (fun g -> Store.commit_version t.store g ~ts:txn.Txn.init)
    st.written;
  Txn.commit txn ~at:(Time.Clock.tick t.clock);
  Hashtbl.remove t.states txn.Txn.id;
  t.m.commits <- t.m.commits + 1

let abort t txn =
  let st = state_of t txn in
  List.iter
    (fun g -> Store.discard_version t.store g ~ts:txn.Txn.init)
    st.written;
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at:(Time.Clock.tick t.clock);
  Hashtbl.remove t.states txn.Txn.id;
  t.m.aborts <- t.m.aborts + 1
