module Sv = Hdd_mvstore.Sv_store
open Hdd_core.Outcome

type 'a undo = { granule : Granule.t; old_value : 'a; old_wts : Time.t }

type 'a txn_state = { txn : Txn.t; mutable undo : 'a undo list }

type 'a t = {
  clock : Time.Clock.clock;
  store : 'a Sv.t;
  dirty : Txn.id Granule.Tbl.t;  (** granule -> uncommitted in-place writer *)
  states : (Txn.id, 'a txn_state) Hashtbl.t;
  log : Sched_log.t option;
  thomas : bool;
  read_timestamps : bool;
  m : Cc_metrics.t;
  mutable next_id : int;
}

let create ?log ?(thomas_write_rule = false) ?(read_timestamps = true) ~clock
    ~init () =
  { clock; store = Sv.create ~init; dirty = Granule.Tbl.create 256;
    states = Hashtbl.create 64; log; thomas = thomas_write_rule;
    read_timestamps; m = Cc_metrics.create (); next_id = 1 }

let metrics t = t.m

let state_of t (txn : Txn.t) =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Tso: unknown transaction %d" txn.Txn.id)

let begin_txn t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let txn = Txn.make ~id ~kind:(Txn.Update 0) ~init:(Time.Clock.tick t.clock) in
  Hashtbl.replace t.states id { txn; undo = [] };
  t.m.begins <- t.m.begins + 1;
  txn

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

let dirty_other t g id =
  match Granule.Tbl.find_opt t.dirty g with
  | Some w when w <> id -> Some w
  | _ -> None

let read t txn g =
  ignore (state_of t txn);
  let id = txn.Txn.id in
  t.m.reads <- t.m.reads + 1;
  match dirty_other t g id with
  | Some w ->
    t.m.blocks <- t.m.blocks + 1;
    Blocked [ w ]
  | None ->
    let cell = Sv.cell t.store g in
    if txn.Txn.init < cell.Sv.wts then begin
      t.m.rejects <- t.m.rejects + 1;
      Rejected "read timestamp below the granule's write stamp"
    end
    else begin
      (* writing the read register is the registration the paper counts *)
      if t.read_timestamps then begin
        Sv.set_rts t.store g txn.Txn.init;
        t.m.read_registrations <- t.m.read_registrations + 1
      end;
      log_read t ~txn:id ~granule:g ~version:cell.Sv.wts;
      Granted cell.Sv.value
    end

let write t txn g value =
  let st = state_of t txn in
  let id = txn.Txn.id in
  t.m.writes <- t.m.writes + 1;
  match dirty_other t g id with
  | Some w ->
    t.m.blocks <- t.m.blocks + 1;
    Blocked [ w ]
  | None ->
    let cell = Sv.cell t.store g in
    if txn.Txn.init < cell.Sv.rts then begin
      t.m.rejects <- t.m.rejects + 1;
      Rejected "write timestamp below the granule's read stamp"
    end
    else if txn.Txn.init < cell.Sv.wts then
      if t.thomas then Granted () (* obsolete write: ignore *)
      else begin
        t.m.rejects <- t.m.rejects + 1;
        Rejected "write timestamp below the granule's write stamp"
      end
    else begin
      let already = List.exists (fun u -> Granule.equal u.granule g) st.undo in
      if not already then
        st.undo <-
          { granule = g; old_value = cell.Sv.value; old_wts = cell.Sv.wts }
          :: st.undo;
      Sv.write t.store g ~value ~wts:txn.Txn.init;
      Granule.Tbl.replace t.dirty g id;
      log_write t ~txn:id ~granule:g ~version:txn.Txn.init;
      Granted ()
    end

let clear_dirty t st =
  List.iter (fun u -> Granule.Tbl.remove t.dirty u.granule) st.undo

let commit t txn =
  let st = state_of t txn in
  clear_dirty t st;
  Txn.commit txn ~at:(Time.Clock.tick t.clock);
  Hashtbl.remove t.states txn.Txn.id;
  t.m.commits <- t.m.commits + 1

let abort t txn =
  let st = state_of t txn in
  List.iter
    (fun u -> Sv.write t.store u.granule ~value:u.old_value ~wts:u.old_wts)
    st.undo;
  clear_dirty t st;
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at:(Time.Clock.tick t.clock);
  Hashtbl.remove t.states txn.Txn.id;
  t.m.aborts <- t.m.aborts + 1
