(** Counters shared by all baseline controllers, mirroring the cost model
    of the paper's comparison (Figure 10): how many read accesses had to be
    registered (read lock set or read timestamp written), how many blocked,
    how many were rejected. *)

type t = {
  mutable begins : int;
  mutable commits : int;
  mutable aborts : int;
  mutable reads : int;
  mutable writes : int;
  mutable read_registrations : int;
  mutable blocks : int;
  mutable rejects : int;
}

val create : unit -> t
val reset : t -> unit
