(** Multi-version two-phase locking (Chan82-style), the third column of the
    paper's Figure 10.

    Update transactions run strict 2PL with deferred writes: writes are
    buffered and installed as versions stamped with the commit instant, so
    the version order on a granule matches the commit order the locks
    enforce.  Read-only transactions set no locks and never block or get
    rejected: each reads the latest versions committed before its start —
    the special treatment Chan's method gives them.  Updaters still
    register a read lock per read, which is the contrast with HDD the
    comparison table draws. *)

type 'a t

val create :
  ?log:Sched_log.t ->
  clock:Time.Clock.clock ->
  segments:int ->
  init:(Granule.t -> 'a) ->
  unit ->
  'a t

val metrics : 'a t -> Cc_metrics.t
val begin_txn : 'a t -> read_only:bool -> Txn.t
val read : 'a t -> Txn.t -> Granule.t -> 'a Hdd_core.Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Hdd_core.Outcome.t
val commit : 'a t -> Txn.t -> unit
val abort : 'a t -> Txn.t -> unit
val store : 'a t -> 'a Hdd_mvstore.Store.t
