(** Basic timestamp ordering (Bernstein80), the paper's second classical
    comparator, in its strict single-version form.

    Every access is checked against the granule's read/write timestamp
    registers: a read below the write stamp or a write below the read
    stamp is rejected and the transaction restarts with a fresh timestamp.
    *Every granted read writes the read register* — the registration the
    paper attacks.  Strictness: a granule with an uncommitted in-place
    write blocks other transactions until the writer finishes, so no dirty
    value is ever observed and aborts never cascade. *)

type 'a t

val create :
  ?log:Sched_log.t ->
  ?thomas_write_rule:bool ->
  ?read_timestamps:bool ->
  clock:Time.Clock.clock ->
  init:(Granule.t -> 'a) ->
  unit ->
  'a t
(** [thomas_write_rule] (default false) turns a write below the granule's
    write stamp into a no-op instead of a rejection.  [read_timestamps]
    (default true) set to [false] reproduces the crippled variant of the
    paper's Figure 4: reads stop writing the read register, so later
    writes cannot detect them and non-serializable schedules slip
    through. *)

val metrics : 'a t -> Cc_metrics.t
val begin_txn : 'a t -> Txn.t
val read : 'a t -> Txn.t -> Granule.t -> 'a Hdd_core.Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Hdd_core.Outcome.t
val commit : 'a t -> Txn.t -> unit
val abort : 'a t -> Txn.t -> unit
