module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
open Hdd_core.Outcome

type mode = Shared | Exclusive

type lock = { mutable holders : (Txn.id * mode) list }

type 'a txn_state = {
  txn : Txn.t;
  read_only : bool;
  mutable locks : Granule.t list;
  mutable buffer : (Granule.t * 'a) list;  (** deferred writes, newest first *)
}

type 'a t = {
  clock : Time.Clock.clock;
  store : 'a Store.t;
  locks : lock Granule.Tbl.t;
  states : (Txn.id, 'a txn_state) Hashtbl.t;
  log : Sched_log.t option;
  m : Cc_metrics.t;
  mutable next_id : int;
}

let create ?log ~clock ~segments ~init () =
  { clock; store = Store.create ~segments ~init;
    locks = Granule.Tbl.create 256; states = Hashtbl.create 64; log;
    m = Cc_metrics.create (); next_id = 1 }

let metrics t = t.m
let store t = t.store

let lock_of t g =
  match Granule.Tbl.find_opt t.locks g with
  | Some l -> l
  | None ->
    let l = { holders = [] } in
    Granule.Tbl.add t.locks g l;
    l

let state_of t (txn : Txn.t) =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Mv2pl: unknown transaction %d" txn.Txn.id)

let begin_txn t ~read_only =
  let id = t.next_id in
  t.next_id <- id + 1;
  let kind = if read_only then Txn.Read_only else Txn.Update 0 in
  let txn = Txn.make ~id ~kind ~init:(Time.Clock.tick t.clock) in
  Hashtbl.replace t.states id { txn; read_only; locks = []; buffer = [] };
  t.m.begins <- t.m.begins + 1;
  txn

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

let buffered st g =
  List.find_map
    (fun (g', v) -> if Granule.equal g g' then Some v else None)
    st.buffer

let snapshot_read t (txn : Txn.t) g =
  match Store.committed_before t.store g ~ts:txn.Txn.init with
  | Some v ->
    log_read t ~txn:txn.Txn.id ~granule:g ~version:v.Chain.ts;
    Granted v.Chain.value
  | None ->
    t.m.rejects <- t.m.rejects + 1;
    Rejected "snapshot version collected"

let current_read t (txn : Txn.t) g =
  match Store.latest_committed t.store g with
  | Some v ->
    log_read t ~txn:txn.Txn.id ~granule:g ~version:v.Chain.ts;
    Granted v.Chain.value
  | None ->
    t.m.rejects <- t.m.rejects + 1;
    Rejected "no committed version"

let read t txn g =
  let st = state_of t txn in
  let id = txn.Txn.id in
  t.m.reads <- t.m.reads + 1;
  if st.read_only then snapshot_read t txn g
  else
    match buffered st g with
    | Some v -> Granted v (* own deferred write; no cross-txn dependency *)
    | None ->
      let lock = lock_of t g in
      if List.mem_assoc id lock.holders then current_read t txn g
      else
        let exclusive_others =
          List.filter_map
            (fun (h, m) -> if h <> id && m = Exclusive then Some h else None)
            lock.holders
        in
        if exclusive_others <> [] then begin
          t.m.blocks <- t.m.blocks + 1;
          Blocked exclusive_others
        end
        else begin
          lock.holders <- (id, Shared) :: lock.holders;
          st.locks <- g :: st.locks;
          t.m.read_registrations <- t.m.read_registrations + 1;
          current_read t txn g
        end

let write t txn g value =
  let st = state_of t txn in
  let id = txn.Txn.id in
  t.m.writes <- t.m.writes + 1;
  if st.read_only then begin
    t.m.rejects <- t.m.rejects + 1;
    Rejected "read-only transaction may not write"
  end
  else
    let lock = lock_of t g in
    let others =
      List.filter_map
        (fun (h, _) -> if h <> id then Some h else None)
        lock.holders
    in
    match List.assoc_opt id lock.holders with
    | Some Exclusive ->
      st.buffer <- (g, value) :: List.remove_assoc g st.buffer;
      Granted ()
    | Some Shared when others <> [] ->
      t.m.blocks <- t.m.blocks + 1;
      Blocked others
    | Some Shared ->
      lock.holders <- [ (id, Exclusive) ];
      st.buffer <- (g, value) :: List.remove_assoc g st.buffer;
      Granted ()
    | None when others <> [] ->
      t.m.blocks <- t.m.blocks + 1;
      Blocked others
    | None ->
      lock.holders <- [ (id, Exclusive) ];
      st.locks <- g :: st.locks;
      st.buffer <- (g, value) :: List.remove_assoc g st.buffer;
      Granted ()

let release t st =
  List.iter
    (fun g ->
      let lock = lock_of t g in
      lock.holders <-
        List.filter (fun (h, _) -> h <> st.txn.Txn.id) lock.holders)
    st.locks;
  Hashtbl.remove t.states st.txn.Txn.id

let commit t txn =
  let st = state_of t txn in
  let at = Time.Clock.tick t.clock in
  (* install deferred writes stamped with the commit instant: the version
     order on each granule equals the commit order the X locks serialise *)
  List.iter
    (fun (g, value) ->
      ignore (Store.install t.store g ~ts:at ~writer:txn.Txn.id ~value);
      Store.commit_version t.store g ~ts:at;
      log_write t ~txn:txn.Txn.id ~granule:g ~version:at)
    (List.rev st.buffer);
  Txn.commit txn ~at;
  release t st;
  t.m.commits <- t.m.commits + 1

let abort t txn =
  let st = state_of t txn in
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at:(Time.Clock.tick t.clock);
  release t st;
  t.m.aborts <- t.m.aborts + 1
