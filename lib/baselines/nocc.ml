module Sv = Hdd_mvstore.Sv_store
open Hdd_core.Outcome

type 'a t = {
  clock : Time.Clock.clock;
  store : 'a Sv.t;
  log : Sched_log.t option;
  m : Cc_metrics.t;
  mutable next_id : int;
}

let create ?log ~clock ~init () =
  { clock; store = Sv.create ~init; log; m = Cc_metrics.create ();
    next_id = 1 }

let metrics t = t.m

let begin_txn t =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.m.begins <- t.m.begins + 1;
  Txn.make ~id ~kind:(Txn.Update 0) ~init:(Time.Clock.tick t.clock)

let read t txn g =
  t.m.reads <- t.m.reads + 1;
  let value, wts = Sv.read t.store g in
  (match t.log with
  | Some log -> Sched_log.log_read log ~txn:txn.Txn.id ~granule:g ~version:wts
  | None -> ());
  Granted value

let write t txn g value =
  t.m.writes <- t.m.writes + 1;
  let wts = Time.Clock.tick t.clock in
  Sv.write t.store g ~value ~wts;
  (match t.log with
  | Some log -> Sched_log.log_write log ~txn:txn.Txn.id ~granule:g ~version:wts
  | None -> ());
  Granted ()

let commit t txn =
  Txn.commit txn ~at:(Time.Clock.tick t.clock);
  t.m.commits <- t.m.commits + 1

let abort t txn =
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at:(Time.Clock.tick t.clock);
  t.m.aborts <- t.m.aborts + 1
