(** Prudent-precedence ordering (PAPERS.md): the high-contention
    escalation target of the hybrid CC layer, also usable standalone.

    Reads never lock and never wait — each returns the latest committed
    version and records the precedence edge [reader ≺ pending
    overwriter].  Writes take an exclusive per-granule slot with
    deferred installation and collect the symmetric edge from every
    registered reader.  Serialization is enforced at the commit point:
    {!try_commit} answers [Blocked preds] while any recorded predecessor
    is still active, so the driver parks the transaction instead of
    aborting it — a read-over-pending-write race that MVTO resolves with
    a late-write reject becomes a short commit-wait here.  Mutual
    read-over races form commit-wait cycles, which surface as
    driver-level deadlocks and restart one participant.

    Read-only transactions read a snapshot at their initiation time with
    no registrations, as in {!Mv2pl}. *)

type 'a t

val create :
  ?log:Sched_log.t ->
  clock:Time.Clock.clock ->
  segments:int ->
  init:(Granule.t -> 'a) ->
  unit ->
  'a t

val metrics : 'a t -> Cc_metrics.t
val begin_txn : 'a t -> read_only:bool -> Txn.t
val read : 'a t -> Txn.t -> Granule.t -> 'a Hdd_core.Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Hdd_core.Outcome.t

val try_commit : 'a t -> Txn.t -> unit Hdd_core.Outcome.t
(** Commit admission: [Granted ()] when every recorded predecessor has
    finished, [Blocked live_preds] otherwise.  Call {!commit} only after
    a grant. *)

val commit : 'a t -> Txn.t -> unit
val abort : 'a t -> Txn.t -> unit
val store : 'a t -> 'a Hdd_mvstore.Store.t
