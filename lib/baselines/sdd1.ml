module Sv = Hdd_mvstore.Sv_store
module Partition = Hdd_core.Partition
module Spec = Hdd_core.Spec
open Hdd_core.Outcome

type 'a undo = { granule : Granule.t; old_value : 'a; old_wts : Time.t }

type 'a txn_state = {
  txn : Txn.t;
  class_id : int;  (** the ad-hoc class is index [segment_count] *)
  updates : bool;  (** ad-hoc members only: may this one write? *)
  mutable undo : 'a undo list;
}

type 'a t = {
  clock : Time.Clock.clock;
  store : 'a Sv.t;
  states : (Txn.id, 'a txn_state) Hashtbl.t;
  active : (Txn.id, 'a txn_state) Hashtbl.t array;
      (** per class; the last slot is the ad-hoc class *)
  accessors : int list array;  (** classes whose access set meets segment *)
  writers : int list array;  (** classes writing the segment *)
  adhoc : int;  (** index of the ad-hoc class *)
  log : Sched_log.t option;
  m : Cc_metrics.t;
  mutable next_id : int;
}

(* Static conflict analysis over the declared transaction types.  Ad-hoc
   transactions get a synthetic class whose access set covers every
   segment: SDD-1 gives them no special handling, so conflict analysis
   must assume they may read anything — and, for ad-hoc updates, write
   anything.  The class joins every [writers] list too; reads filter out
   its read-only members dynamically, since only updaters conflict. *)
let analyse (partition : Partition.t) =
  let spec = partition.Partition.spec in
  let n = Spec.segment_count spec in
  let adhoc = n in
  let accessors = Array.make n [ adhoc ] in
  let writers = Array.make n [ adhoc ] in
  Array.iter
    (fun (ty : Spec.txn_type) ->
      let cls =
        match ty.Spec.writes with [ w ] -> w | _ -> assert false
      in
      List.iter
        (fun s ->
          if not (List.mem cls accessors.(s)) then
            accessors.(s) <- cls :: accessors.(s))
        (Spec.access_set ty);
      List.iter
        (fun s ->
          if not (List.mem cls writers.(s)) then
            writers.(s) <- cls :: writers.(s))
        ty.Spec.writes)
    spec.Spec.types;
  (accessors, writers, adhoc)

let create ?log ~clock ~partition ~init () =
  let accessors, writers, adhoc = analyse partition in
  { clock; store = Sv.create ~init; states = Hashtbl.create 64;
    active = Array.init (adhoc + 1) (fun _ -> Hashtbl.create 16);
    accessors; writers; adhoc; log; m = Cc_metrics.create (); next_id = 1 }

let metrics t = t.m

let state_of t (txn : Txn.t) =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Sdd1: unknown transaction %d" txn.Txn.id)

let begin_in_class t class_id ~updates =
  let id = t.next_id in
  t.next_id <- id + 1;
  let txn =
    Txn.make ~id ~kind:(Txn.Update class_id) ~init:(Time.Clock.tick t.clock)
  in
  let st = { txn; class_id; updates; undo = [] } in
  Hashtbl.replace t.states id st;
  Hashtbl.replace t.active.(class_id) id st;
  t.m.begins <- t.m.begins + 1;
  txn

let begin_txn t ~class_id =
  if class_id < 0 || class_id >= t.adhoc then
    invalid_arg (Printf.sprintf "Sdd1.begin_txn: class %d" class_id);
  begin_in_class t class_id ~updates:true

let begin_adhoc ?(updates = false) t = begin_in_class t t.adhoc ~updates

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

(* Older active transactions in any of the given classes that satisfy
   [keep]. *)
let older_actives t classes ~than ~self ~keep =
  List.concat_map
    (fun c ->
      Hashtbl.fold
        (fun id st acc ->
          if
            id <> self && st.txn.Txn.init < than && Txn.is_active st.txn
            && keep st
          then id :: acc
          else acc)
        t.active.(c) [])
    classes
  |> List.sort_uniq compare

let any _ = true

let read t txn g =
  let st = state_of t txn in
  t.m.reads <- t.m.reads + 1;
  let seg = g.Granule.segment in
  let conflicting = List.sort_uniq compare (st.class_id :: t.writers.(seg)) in
  (* a read conflicts with an older ad-hoc member only if it may write *)
  let keep st' = st'.class_id <> t.adhoc || st'.updates in
  match older_actives t conflicting ~than:txn.Txn.init ~self:txn.Txn.id ~keep with
  | [] ->
    let value, wts = Sv.read t.store g in
    (* conflict analysis replaces registration: nothing is recorded *)
    log_read t ~txn:txn.Txn.id ~granule:g ~version:wts;
    Granted value
  | blockers ->
    t.m.blocks <- t.m.blocks + 1;
    Blocked blockers

let write t txn g value =
  let st = state_of t txn in
  t.m.writes <- t.m.writes + 1;
  if st.class_id = t.adhoc && not st.updates then begin
    t.m.rejects <- t.m.rejects + 1;
    Rejected "read-only ad-hoc transaction may not write"
  end
  else begin
  let seg = g.Granule.segment in
  let conflicting =
    List.sort_uniq compare
      (st.class_id :: (t.accessors.(seg) @ t.writers.(seg)))
  in
  match
    older_actives t conflicting ~than:txn.Txn.init ~self:txn.Txn.id ~keep:any
  with
  | [] ->
    let old_value, old_wts = Sv.read t.store g in
    let already = List.exists (fun u -> Granule.equal u.granule g) st.undo in
    if not already then
      st.undo <- { granule = g; old_value; old_wts } :: st.undo;
    let wts = Time.Clock.tick t.clock in
    Sv.write t.store g ~value ~wts;
    log_write t ~txn:txn.Txn.id ~granule:g ~version:wts;
    Granted ()
  | blockers ->
    t.m.blocks <- t.m.blocks + 1;
    Blocked blockers
  end

let finish t (st : 'a txn_state) =
  Hashtbl.remove t.active.(st.class_id) st.txn.Txn.id;
  Hashtbl.remove t.states st.txn.Txn.id

let commit t txn =
  let st = state_of t txn in
  Txn.commit txn ~at:(Time.Clock.tick t.clock);
  finish t st;
  t.m.commits <- t.m.commits + 1

let abort t txn =
  let st = state_of t txn in
  List.iter
    (fun u -> Sv.write t.store u.granule ~value:u.old_value ~wts:u.old_wts)
    st.undo;
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at:(Time.Clock.tick t.clock);
  finish t st;
  t.m.aborts <- t.m.aborts + 1
