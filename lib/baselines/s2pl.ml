module Sv = Hdd_mvstore.Sv_store
open Hdd_core.Outcome

type mode = Shared | Exclusive

type lock = { mutable holders : (Txn.id * mode) list }

type 'a undo = { granule : Granule.t; old_value : 'a; old_wts : Time.t }

type 'a txn_state = {
  txn : Txn.t;
  mutable locks : Granule.t list;
  mutable undo : 'a undo list;
}

type 'a t = {
  clock : Time.Clock.clock;
  store : 'a Sv.t;
  locks : lock Granule.Tbl.t;
  states : (Txn.id, 'a txn_state) Hashtbl.t;
  log : Sched_log.t option;
  read_locks : bool;
  m : Cc_metrics.t;
  mutable next_id : int;
}

let create ?log ?(read_locks = true) ~clock ~init () =
  { clock; store = Sv.create ~init; locks = Granule.Tbl.create 256;
    states = Hashtbl.create 64; log; read_locks; m = Cc_metrics.create ();
    next_id = 1 }

let metrics t = t.m

let lock_of t g =
  match Granule.Tbl.find_opt t.locks g with
  | Some l -> l
  | None ->
    let l = { holders = [] } in
    Granule.Tbl.add t.locks g l;
    l

let state_of t (txn : Txn.t) =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "S2pl: unknown transaction %d" txn.Txn.id)

let begin_txn t ~read_only =
  ignore read_only;
  let id = t.next_id in
  t.next_id <- id + 1;
  let txn =
    (* every 2PL transaction is "class 0": classes play no role here, but
       a concrete class keeps the record usable by shared reporting *)
    Txn.make ~id ~kind:(Txn.Update 0) ~init:(Time.Clock.tick t.clock)
  in
  Hashtbl.replace t.states id { txn; locks = []; undo = [] };
  t.m.begins <- t.m.begins + 1;
  txn

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

let holds lock id = List.mem_assoc id lock.holders

let others lock id =
  List.filter_map
    (fun (h, _) -> if h <> id then Some h else None)
    lock.holders

let read t txn g =
  let st = state_of t txn in
  let id = txn.Txn.id in
  let lock = lock_of t g in
  t.m.reads <- t.m.reads + 1;
  let grant () =
    let value, wts = Sv.read t.store g in
    log_read t ~txn:id ~granule:g ~version:wts;
    Granted value
  in
  if not t.read_locks then grant ()
  else if holds lock id then grant ()
  else
    let exclusive_others =
      List.filter_map
        (fun (h, m) -> if h <> id && m = Exclusive then Some h else None)
        lock.holders
    in
    if exclusive_others <> [] then begin
      t.m.blocks <- t.m.blocks + 1;
      Blocked exclusive_others
    end
    else begin
      lock.holders <- (id, Shared) :: lock.holders;
      st.locks <- g :: st.locks;
      (* setting the read lock is the registration the paper counts *)
      t.m.read_registrations <- t.m.read_registrations + 1;
      grant ()
    end

let write t txn g value =
  let st = state_of t txn in
  let id = txn.Txn.id in
  let lock = lock_of t g in
  t.m.writes <- t.m.writes + 1;
  let apply () =
    let old_value, old_wts = Sv.read t.store g in
    (* first write of the granule records the undo image *)
    let already = List.exists (fun u -> Granule.equal u.granule g) st.undo in
    if not already then
      st.undo <- { granule = g; old_value; old_wts } :: st.undo;
    (* stamp with the write instant, not I(t): under 2PL the version order
       on a granule is the lock order, which initiation times need not
       follow, and the certifier orders versions by their stamps *)
    let wts = Time.Clock.tick t.clock in
    Sv.write t.store g ~value ~wts;
    log_write t ~txn:id ~granule:g ~version:wts;
    Granted ()
  in
  match List.assoc_opt id lock.holders with
  | Some Exclusive -> apply ()
  | Some Shared ->
    let rest = others lock id in
    if rest <> [] then begin
      t.m.blocks <- t.m.blocks + 1;
      Blocked rest
    end
    else begin
      lock.holders <- [ (id, Exclusive) ];
      apply ()
    end
  | None ->
    let rest = others lock id in
    if rest <> [] then begin
      t.m.blocks <- t.m.blocks + 1;
      Blocked rest
    end
    else begin
      lock.holders <- [ (id, Exclusive) ];
      st.locks <- g :: st.locks;
      apply ()
    end

let release t st =
  List.iter
    (fun g ->
      let lock = lock_of t g in
      lock.holders <-
        List.filter (fun (h, _) -> h <> st.txn.Txn.id) lock.holders)
    st.locks;
  Hashtbl.remove t.states st.txn.Txn.id

let commit t txn =
  let st = state_of t txn in
  Txn.commit txn ~at:(Time.Clock.tick t.clock);
  release t st;
  t.m.commits <- t.m.commits + 1

let abort t txn =
  let st = state_of t txn in
  List.iter
    (fun u -> Sv.write t.store u.granule ~value:u.old_value ~wts:u.old_wts)
    st.undo;
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at:(Time.Clock.tick t.clock);
  release t st;
  t.m.aborts <- t.m.aborts + 1

let lock_count t =
  Granule.Tbl.fold (fun _ l acc -> acc + List.length l.holders) t.locks 0
