(** Strict two-phase locking (Eswaran/Gray), the paper's first classical
    comparator.

    Shared/exclusive granule locks held to commit; *every read sets a read
    lock* — the registration overhead the paper attacks.  The controller
    answers lock requests immediately: a conflicting request returns
    [Blocked holders] and the driver retries once those transactions
    finish (drivers detect waits-for deadlocks and restart a victim; a
    transaction here never blocks while holding nothing it must give up,
    so driver-side detection is complete).

    Writes are applied in place with an undo log, which strictness makes
    safe: no other transaction ever observes an uncommitted value. *)

type 'a t

val create :
  ?log:Sched_log.t ->
  ?read_locks:bool ->
  clock:Time.Clock.clock ->
  init:(Granule.t -> 'a) ->
  unit ->
  'a t
(** [read_locks] (default true).  [false] reproduces the crippled variant
    of the paper's Figure 3: reads return the current value without
    locking or registration, which admits non-serializable schedules —
    the counter-example experiment relies on it. *)

val metrics : 'a t -> Cc_metrics.t

val begin_txn : 'a t -> read_only:bool -> Txn.t
(** 2PL does not distinguish read-only transactions; the flag is recorded
    on the {!Txn.t} for reporting only. *)

val read : 'a t -> Txn.t -> Granule.t -> 'a Hdd_core.Outcome.t
val write : 'a t -> Txn.t -> Granule.t -> 'a -> unit Hdd_core.Outcome.t
val commit : 'a t -> Txn.t -> unit
val abort : 'a t -> Txn.t -> unit

val lock_count : 'a t -> int
(** Currently held locks, across all granules (for tests). *)
