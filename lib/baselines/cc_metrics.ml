type t = {
  mutable begins : int;
  mutable commits : int;
  mutable aborts : int;
  mutable reads : int;
  mutable writes : int;
  mutable read_registrations : int;
  mutable blocks : int;
  mutable rejects : int;
}

let create () =
  { begins = 0; commits = 0; aborts = 0; reads = 0; writes = 0;
    read_registrations = 0; blocks = 0; rejects = 0 }

let reset t =
  t.begins <- 0;
  t.commits <- 0;
  t.aborts <- 0;
  t.reads <- 0;
  t.writes <- 0;
  t.read_registrations <- 0;
  t.blocks <- 0;
  t.rejects <- 0
