module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
open Hdd_core.Outcome

(* Prudent precedence: reads never lock and never wait — they return the
   latest committed version and record the precedence edge
   [reader ≺ pending overwriter] instead.  Writes take an exclusive slot
   per granule with deferred installation, collecting the symmetric edge
   from every registered reader.  The price is paid at the commit point:
   a transaction may only commit once every recorded predecessor has
   finished, which the driver enforces through [try_commit] — a
   commit-wait cycle surfaces as a driver-level deadlock and restarts
   one participant. *)

type gstate = {
  mutable writer : Txn.id option;  (** pending exclusive writer *)
  mutable readers : Txn.id list;  (** active readers of the latest version *)
}

type 'a txn_state = {
  txn : Txn.t;
  read_only : bool;
  mutable reads : Granule.t list;  (** granules registered as reader *)
  mutable writes : Granule.t list;  (** granules whose writer slot we hold *)
  mutable buffer : (Granule.t * 'a) list;  (** deferred writes, newest first *)
  mutable preds : Txn.id list;  (** must finish before our commit *)
}

type 'a t = {
  clock : Time.Clock.clock;
  store : 'a Store.t;
  granules : gstate Granule.Tbl.t;
  states : (Txn.id, 'a txn_state) Hashtbl.t;
  log : Sched_log.t option;
  m : Cc_metrics.t;
  mutable next_id : int;
}

let create ?log ~clock ~segments ~init () =
  { clock; store = Store.create ~segments ~init;
    granules = Granule.Tbl.create 256; states = Hashtbl.create 64; log;
    m = Cc_metrics.create (); next_id = 1 }

let metrics t = t.m
let store t = t.store

let gstate_of t g =
  match Granule.Tbl.find_opt t.granules g with
  | Some s -> s
  | None ->
    let s = { writer = None; readers = [] } in
    Granule.Tbl.add t.granules g s;
    s

let state_of t (txn : Txn.t) =
  match Hashtbl.find_opt t.states txn.Txn.id with
  | Some s -> s
  | None ->
    invalid_arg (Printf.sprintf "Prudent: unknown transaction %d" txn.Txn.id)

let begin_txn t ~read_only =
  let id = t.next_id in
  t.next_id <- id + 1;
  let kind = if read_only then Txn.Read_only else Txn.Update 0 in
  let txn = Txn.make ~id ~kind ~init:(Time.Clock.tick t.clock) in
  Hashtbl.replace t.states id
    { txn; read_only; reads = []; writes = []; buffer = []; preds = [] };
  t.m.begins <- t.m.begins + 1;
  txn

let log_read t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_read log ~txn ~granule ~version

let log_write t ~txn ~granule ~version =
  match t.log with
  | None -> ()
  | Some log -> Sched_log.log_write log ~txn ~granule ~version

let buffered st g =
  List.find_map
    (fun (g', v) -> if Granule.equal g g' then Some v else None)
    st.buffer

let add_pred st id = if not (List.mem id st.preds) then st.preds <- id :: st.preds

let snapshot_read t (txn : Txn.t) g =
  match Store.committed_before t.store g ~ts:txn.Txn.init with
  | Some v ->
    log_read t ~txn:txn.Txn.id ~granule:g ~version:v.Chain.ts;
    Granted v.Chain.value
  | None ->
    t.m.rejects <- t.m.rejects + 1;
    Rejected "snapshot version collected"

let current_read t (txn : Txn.t) g =
  match Store.latest_committed t.store g with
  | Some v ->
    log_read t ~txn:txn.Txn.id ~granule:g ~version:v.Chain.ts;
    Granted v.Chain.value
  | None ->
    t.m.rejects <- t.m.rejects + 1;
    Rejected "no committed version"

let read t txn g =
  let st = state_of t txn in
  let id = txn.Txn.id in
  t.m.reads <- t.m.reads + 1;
  if st.read_only then snapshot_read t txn g
  else
    match buffered st g with
    | Some v -> Granted v (* own deferred write *)
    | None ->
      let gs = gstate_of t g in
      (* we read over the head of a pending write: the writer now
         commit-waits for us *)
      (match gs.writer with
      | Some w when w <> id -> (
        match Hashtbl.find_opt t.states w with
        | Some wst -> add_pred wst id
        | None -> ())
      | _ -> ());
      if not (List.mem id gs.readers) then begin
        gs.readers <- id :: gs.readers;
        st.reads <- g :: st.reads;
        t.m.read_registrations <- t.m.read_registrations + 1
      end;
      current_read t txn g

let write t txn g value =
  let st = state_of t txn in
  let id = txn.Txn.id in
  t.m.writes <- t.m.writes + 1;
  if st.read_only then begin
    t.m.rejects <- t.m.rejects + 1;
    Rejected "read-only transaction may not write"
  end
  else
    let gs = gstate_of t g in
    match gs.writer with
    | Some w when w <> id ->
      t.m.blocks <- t.m.blocks + 1;
      Blocked [ w ]
    | Some _ ->
      st.buffer <- (g, value) :: List.remove_assoc g st.buffer;
      Granted ()
    | None ->
      gs.writer <- Some id;
      st.writes <- g :: st.writes;
      (* every current reader of the version we overwrite precedes us *)
      List.iter (fun r -> if r <> id then add_pred st r) gs.readers;
      st.buffer <- (g, value) :: List.remove_assoc g st.buffer;
      Granted ()

let try_commit t txn =
  let st = state_of t txn in
  if st.read_only then Granted ()
  else
    let live = List.filter (Hashtbl.mem t.states) st.preds in
    if live = [] then Granted ()
    else begin
      t.m.blocks <- t.m.blocks + 1;
      Blocked live
    end

let release t st =
  List.iter
    (fun g ->
      let gs = gstate_of t g in
      gs.readers <- List.filter (fun r -> r <> st.txn.Txn.id) gs.readers)
    st.reads;
  List.iter
    (fun g ->
      let gs = gstate_of t g in
      match gs.writer with
      | Some w when w = st.txn.Txn.id -> gs.writer <- None
      | _ -> ())
    st.writes;
  Hashtbl.remove t.states st.txn.Txn.id

let commit t txn =
  let st = state_of t txn in
  let at = Time.Clock.tick t.clock in
  (* version order per granule = commit order, which the writer slots
     plus commit-waits serialise *)
  List.iter
    (fun (g, value) ->
      ignore (Store.install t.store g ~ts:at ~writer:txn.Txn.id ~value);
      Store.commit_version t.store g ~ts:at;
      log_write t ~txn:txn.Txn.id ~granule:g ~version:at)
    (List.rev st.buffer);
  Txn.commit txn ~at;
  release t st;
  t.m.commits <- t.m.commits + 1

let abort t txn =
  let st = state_of t txn in
  (match t.log with
  | Some log -> Sched_log.drop_txn log txn.Txn.id
  | None -> ());
  Txn.abort txn ~at:(Time.Clock.tick t.clock);
  release t st;
  t.m.aborts <- t.m.aborts + 1
