(** The paper's anomaly figures as bounded workloads for the explorer.

    Each scenario fixes a tiny workload together with the set of systems
    expected to exhibit a non-serializable committed schedule somewhere
    in its interleaving space.  The conformance tests sweep every system
    over every scenario and check the anomaly sets match exactly: the
    HDD scheduler and the full-strength baselines must certify every
    interleaving, while the explorer must {e rediscover} the classic
    anomalies on the susceptible systems — Figure 1's lost update under
    no concurrency control, and the Figure 3/4 failure modes on the
    deliberately crippled 2PL and TSO variants. *)

type t = {
  sc_name : string;
  description : string;
  workload : Explore.workload;
  expect_anomaly : string list;
      (** {!Explore.system} names for which some interleaving must fail
          certification; every other system must show zero anomalies. *)
}

val fig1 : t
(** Figure 1's lost update: two transactions of one class, both
    read-modify-write the same account granule. *)

val fig34 : t
(** The inventory pipeline of Figures 3 and 4: an event insert, an
    inventory posting that reads events, and a reorder computation that
    reads both.  Exposes the unprotected-read failure of 2PL without
    read locks (Figure 3) and of TSO without read timestamps
    (Figure 4). *)

val wall : t
(** A two-segment chain plus an ad-hoc read-only transaction spanning
    both segments — the schedules Protocol C's time walls exist to
    serialise. *)

val adhoc : t
(** The inventory partition with an ad-hoc update transaction writing
    two segments — outside every analysed class, handled by the §7.1.1
    barrier in HDD and by plain locking/timestamps in the baselines. *)

val all : t list

val find : string -> t
(** @raise Failure on an unknown scenario name. *)
