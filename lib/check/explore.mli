(** The schedule-space explorer: every interleaving of a small bounded
    workload, driven through any {!Hdd_sim.Controller.t} and certified
    against the one ground truth, {!Hdd_core.Certifier}.

    A workload here is a handful of straight-line transaction programs
    (begin, a fixed op sequence, commit).  The explorer owns the
    scheduling decision the simulator normally makes randomly: at every
    decision point it branches over each runnable program, replaying the
    prefix into a fresh controller instance per branch (controllers are
    mutable and cannot be snapshotted).  Blocked operations park the
    program until every blocker finishes; rejected operations abort it
    (the paper's formalism has no restarts, and the certifier judges
    committed work only); a global deadlock aborts every parked program
    and the schedule completes with the committed subset.

    With [prune] on (the default), sleep sets [Godefroid 1996] cut the
    tree to one representative per Mazurkiewicz trace: two steps of
    different programs are independent when both are data operations and
    they touch different granules (or are both reads).  Every controller
    here decides an access from per-granule state plus begin/commit
    history alone, so independent steps commute — same outcomes, same
    schedule log up to reordering of independent entries, hence the same
    dependency graph and the same verdict.  Begins and finishes are
    conservatively dependent on everything (they move timestamps, locks
    and time walls).  [prune:false] enumerates every interleaving
    literally; the test suite cross-checks that both modes see the same
    set of behaviours. *)

module Controller = Hdd_sim.Controller
module Certifier = Hdd_core.Certifier
module Partition = Hdd_core.Partition

type op = Read of Granule.t | Write of Granule.t * int

type prog = {
  label : string;
  kind : Controller.kind;
  ops : op list;
}

type workload = {
  name : string;
  partition : Partition.t;
  init : Granule.t -> int;
  progs : prog list;
}

val total_steps : workload -> int
(** Begin + ops + finish over all programs: the length of a block-free
    complete schedule. *)

val label : workload -> int -> string
(** The label of the program at an index. *)

(** A controller family the explorer can instantiate afresh for every
    interleaving. *)
type system = {
  sys_name : string;
  build : log:Sched_log.t -> workload -> Controller.t;
}

val system_of_spec : Hdd_sim.Harness.spec -> system
val hdd : system

val hdd_traced : ?wall_every_commits:int -> Hdd_obs.Trace.t -> system
(** HDD with the given trace sink attached and walls released every
    [wall_every_commits] (default 2) commits, so small scenarios exercise
    wall and GC events.  Use with {!run_schedule}: [explore] builds a
    fresh controller per branch, which restarts transaction ids and
    confuses monitors subscribed to the shared trace. *)

val hdd_observed : unit -> system
(** HDD with the same knobs as {!hdd} plus a fresh full observability
    stack (enabled trace, metrics bridge, monitor raising
    {!Hdd_obs.Monitor.Violation}) per controller build — the subject of
    the observability-invisibility property. *)

val all_systems : system list
(** [Harness.all] as systems: HDD, the full-strength baselines, the
    Figure 3/4 cripples and NoCC. *)

val system : string -> system
(** Look up by {!Hdd_sim.Harness.spec_name}.  @raise Failure on an
    unknown name. *)

type action = Begin | Finish | Access of op

type event = {
  ev_prog : int;  (** program index in [workload.progs] *)
  ev_txn : Txn.id;
  ev_action : action;
  ev_outcome : [ `Ok | `Blocked of Txn.id list | `Rejected of string ];
}

type trial = {
  t_schedule : int list;  (** the effective choice sequence, one program
                              index per executed step *)
  t_events : event list;  (** in execution order *)
  t_committed : int list;  (** program indices *)
  t_aborted : int list;
  t_deadlock : bool;  (** some programs were deadlock-aborted at the end *)
  t_verdict : Certifier.verdict;
}

val run_schedule : ?quiesce:bool -> system -> workload -> int list -> trial
(** Replay one fixed choice sequence against a fresh controller.  The
    replay is tolerant: out-of-range or currently-unrunnable choices are
    skipped, so any int list is a valid schedule — the property harness
    and the shrinker rely on this.  With [quiesce] (default true) the
    remaining programs are driven to completion lowest-index-first after
    the explicit choices run out. *)

type summary = {
  sum_system : string;
  sum_workload : string;
  schedules : int;  (** complete interleavings executed *)
  pruned : int;  (** branch choices skipped by sleep sets *)
  serializable : int;
  anomalies : int;  (** trials whose committed schedule failed to certify *)
  deadlocks : int;
  rejections : int;  (** trials with at least one rejected program *)
  examples : trial list;  (** the first few anomalous trials *)
  capped : bool;  (** true when [max_schedules] stopped the walk early *)
}

val explore :
  ?prune:bool ->
  ?max_schedules:int ->
  ?max_examples:int ->
  ?on_trial:(trial -> unit) ->
  system ->
  workload ->
  summary
(** Walk the whole schedule space ([max_schedules] default 500_000,
    [max_examples] default 3).  [on_trial] sees every completed trial —
    the cross-check tests use it to compare pruned and exhaustive
    behaviour sets. *)

val pp_event : workload -> Format.formatter -> event -> unit
val pp_trial : workload -> Format.formatter -> trial -> unit
val pp_summary : Format.formatter -> summary -> unit
