module Certifier = Hdd_core.Certifier
open Explore

type result = {
  r_workload : Explore.workload;
  r_schedule : int list;
  r_trial : Explore.trial;
  r_deleted : int;
}

let default_bad tr = not tr.t_verdict.Certifier.serializable

let drop_nth n l = List.filteri (fun i _ -> i <> n) l

(* Deleting program [i] renumbers the programs above it; the schedule
   follows suit. *)
let without_prog wl schedule i =
  let wl = { wl with progs = drop_nth i wl.progs } in
  let schedule =
    List.filter_map
      (fun t -> if t = i then None else Some (if t > i then t - 1 else t))
      schedule
  in
  (wl, schedule)

let without_op wl schedule i j =
  let progs =
    List.mapi
      (fun k p -> if k = i then { p with ops = drop_nth j p.ops } else p)
      wl.progs
  in
  ({ wl with progs }, schedule)

(* One left-to-right pass over every candidate deletion, restarted from
   scratch after each accepted one; terminates because every acceptance
   strictly shrinks the total size. *)
let minimize ?(bad = default_bad) sys wl schedule =
  let trial = run_schedule sys wl schedule in
  if not (bad trial) then None
  else begin
    let state = ref (wl, schedule, trial) in
    let deleted = ref 0 in
    let try_candidate (wl', sched') =
      let tr = run_schedule sys wl' sched' in
      if bad tr then begin
        state := (wl', sched', tr);
        incr deleted;
        true
      end
      else false
    in
    let pass () =
      let wl, sched, _ = !state in
      let n = List.length wl.progs in
      let rec progs i =
        if i >= n then false
        else if n > 1 && try_candidate (without_prog wl sched i) then true
        else progs (i + 1)
      in
      let rec ops i =
        if i >= n then false
        else
          let p = List.nth wl.progs i in
          let rec op j =
            if j >= List.length p.ops then false
            else if try_candidate (without_op wl sched i j) then true
            else op (j + 1)
          in
          if op 0 then true else ops (i + 1)
      in
      let rec choices k =
        if k >= List.length sched then false
        else if try_candidate (wl, drop_nth k sched) then true
        else choices (k + 1)
      in
      progs 0 || ops 0 || choices 0
    in
    while pass () do
      ()
    done;
    let wl, sched, tr = !state in
    Some { r_workload = wl; r_schedule = sched; r_trial = tr;
           r_deleted = !deleted }
  end

let pp_report ppf r =
  let wl = r.r_workload in
  let label_of_txn id =
    if id = 0 then Some "init"
    else
      List.find_map
        (fun ev ->
          match ev.ev_action with
          | Begin when ev.ev_txn = id -> Some (Explore.label wl ev.ev_prog)
          | _ -> None)
        r.r_trial.t_events
  in
  Format.fprintf ppf "@[<v>minimal counterexample (%d deletions):@,"
    r.r_deleted;
  List.iteri
    (fun i p ->
      Format.fprintf ppf "  prog %d %s [%a]: %d ops@," i p.label
        Explore.Controller.pp_kind p.kind (List.length p.ops))
    wl.progs;
  pp_trial wl ppf r.r_trial;
  (match r.r_trial.t_verdict.Certifier.cycle with
  | Some cycle ->
    Format.fprintf ppf "@,witness: ";
    List.iteri
      (fun i id ->
        if i > 0 then Format.pp_print_string ppf " -> ";
        match label_of_txn id with
        | Some l -> Format.fprintf ppf "%s(t%d)" l id
        | None -> Format.fprintf ppf "t%d" id)
      cycle
  | None -> ());
  Format.fprintf ppf "@]"
