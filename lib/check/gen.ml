module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module Prng = Hdd_util.Prng
module Controller = Hdd_sim.Controller
open Explore

let keys_per_segment = 2

let random_tree g n =
  Array.init n (fun i -> if i = 0 then -1 else Prng.int g i)

(* The ancestor chain of [i], nearest first: parent, grandparent, ... *)
let chain parent i =
  let rec up j = if j < 0 then [] else j :: up parent.(j) in
  up parent.(i)

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

let tst_spec g =
  let n = 2 + Prng.int g 3 in
  let parent = random_tree g n in
  (* Class [i] reads a contiguous prefix of its ancestor chain.  Reading
     [k] ancestors is only legal when the parent class reads [k - 1]:
     every deep arc [i -> a] must be transitively induced by the chain
     arcs, or two siblings reading a shared grandparent close an
     undirected cycle in the reduction.  Choosing depths top-down under
     that bound keeps every draw TST-hierarchical. *)
  let depth = Array.make n 0 in
  let types =
    List.init n (fun i ->
        let anc = chain parent i in
        let allowed =
          if anc = [] then 0
          else min (List.length anc) (1 + depth.(parent.(i)))
        in
        depth.(i) <- (if allowed = 0 then 0 else Prng.int g (allowed + 1));
        let reads = take depth.(i) anc in
        let reads = if Prng.bool g then i :: reads else reads in
        Spec.txn_type ~name:(Printf.sprintf "c%d" i) ~writes:[ i ] ~reads)
  in
  Spec.make
    ~segments:(List.init n (Printf.sprintf "seg%d"))
    ~types

let non_tst_spec g =
  match Prng.int g 3 with
  | 0 ->
    (* one type writing two segments *)
    Spec.make ~segments:[ "a"; "b" ]
      ~types:[ Spec.txn_type ~name:"wide" ~writes:[ 0; 1 ] ~reads:[] ]
  | 1 ->
    (* a two-segment cycle *)
    Spec.make ~segments:[ "a"; "b" ]
      ~types:
        [ Spec.txn_type ~name:"up" ~writes:[ 0 ] ~reads:[ 1 ];
          Spec.txn_type ~name:"down" ~writes:[ 1 ] ~reads:[ 0 ] ]
  | _ ->
    (* a diamond: two undirected critical paths join 3 and 0 *)
    Spec.make
      ~segments:[ "top"; "left"; "right"; "bottom" ]
      ~types:
        [ Spec.txn_type ~name:"l" ~writes:[ 1 ] ~reads:[ 0 ];
          Spec.txn_type ~name:"r" ~writes:[ 2 ] ~reads:[ 0 ];
          Spec.txn_type ~name:"b" ~writes:[ 3 ] ~reads:[ 1; 2 ] ]

let granule g ~segment =
  Granule.make ~segment ~key:(Prng.int g keys_per_segment)

let workload ?(adhoc = false) g =
  let spec = tst_spec g in
  let partition = Partition.build_exn spec in
  let n = Spec.segment_count spec in
  let readable_of =
    (* exactly the segments the scheduler will serve this class: its own
       (Protocol B) and every higher one (Protocol A) *)
    Array.init n (fun c ->
        Array.of_list
          (List.filter
             (fun s -> Partition.may_read partition ~class_id:c ~segment:s)
             (List.init n Fun.id)))
  in
  let update_prog idx =
    let c = Prng.int g n in
    let readable = readable_of.(c) in
    let nops = 1 + Prng.int g 3 in
    let ops =
      List.init nops (fun _ ->
          if Prng.bool g then Write (granule g ~segment:c, Prng.int g 100)
          else Read (granule g ~segment:(Prng.pick g readable)))
    in
    { label = Printf.sprintf "u%d" idx; kind = Controller.Update c; ops }
  in
  let nupd = 2 + Prng.int g 2 in
  let updates = List.init nupd update_prog in
  let ro =
    if Prng.int g 3 = 0 then []
    else
      let nops = 1 + Prng.int g 3 in
      [ { label = "ro"; kind = Controller.Read_only;
          ops =
            List.init nops (fun _ ->
                Read (granule g ~segment:(Prng.int g n))) } ]
  in
  let adhoc_prog =
    if not adhoc then []
    else begin
      let w1 = Prng.int g n in
      let w2 = Prng.int g n in
      let writes = List.sort_uniq compare [ w1; w2 ] in
      let reads = List.sort_uniq compare (writes @ [ Prng.int g n ]) in
      [ { label = "adhoc"; kind = Controller.Adhoc { writes; reads };
          ops =
            List.map (fun s -> Write (granule g ~segment:s, 900 + s)) writes
            @ List.map (fun s -> Read (granule g ~segment:s)) reads } ]
    end
  in
  { name = "rand";
    partition;
    init = (fun _ -> 0);
    progs = updates @ ro @ adhoc_prog }

let schedule g wl =
  let n = List.length wl.progs in
  let len = 2 * total_steps wl in
  List.init len (fun _ -> Prng.int g n)
