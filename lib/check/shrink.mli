(** Counterexample shrinking: greedy delta debugging over a failing
    trial.

    A failure is any trial matching the [bad] predicate (by default, a
    committed schedule the certifier refuses).  The shrinker repeatedly
    tries to delete a whole program, a single operation, or a single
    schedule choice, keeping any deletion that still fails, until no
    deletion does.  {!Explore.run_schedule}'s tolerant replay is what
    makes this sound: every candidate [(workload, schedule)] pair is
    executable, so candidates never need repair. *)

type result = {
  r_workload : Explore.workload;  (** the surviving programs *)
  r_schedule : int list;
  r_trial : Explore.trial;  (** the minimal failing trial *)
  r_deleted : int;  (** accepted deletions *)
}

val minimize :
  ?bad:(Explore.trial -> bool) ->
  Explore.system ->
  Explore.workload ->
  int list ->
  result option
(** [None] when the starting schedule does not fail [bad] — there is
    nothing to shrink. *)

val pp_report : Format.formatter -> result -> unit
(** The minimal event sequence plus the certifier's witness cycle with
    transaction ids resolved back to program labels. *)
