module Controller = Hdd_sim.Controller
module Harness = Hdd_sim.Harness
module Workload = Hdd_sim.Workload
module Certifier = Hdd_core.Certifier
module Partition = Hdd_core.Partition
module Outcome = Hdd_core.Outcome

type op = Read of Granule.t | Write of Granule.t * int

type prog = {
  label : string;
  kind : Controller.kind;
  ops : op list;
}

type workload = {
  name : string;
  partition : Partition.t;
  init : Granule.t -> int;
  progs : prog list;
}

let total_steps wl =
  List.fold_left (fun acc p -> acc + 2 + List.length p.ops) 0 wl.progs

type system = {
  sys_name : string;
  build : log:Sched_log.t -> workload -> Controller.t;
}

let system_of_spec spec =
  { sys_name = Harness.spec_name spec;
    build =
      (fun ~log wl ->
        (* Harness.make only consults the partition, the init function
           and the segment count; the template list is the runner's
           concern and stays empty here. *)
        let fake =
          { Workload.wl_name = wl.name;
            partition = wl.partition;
            templates = [];
            init = wl.init }
        in
        Harness.make ~log spec fake) }

let hdd = system_of_spec Harness.Hdd

(* A system variant with a trace sink threaded to the HDD scheduler.
   [wall_every_commits] defaults to 2 so even the tiny curated scenarios
   release walls and collect garbage — the events the golden traces and
   the monitor-over-scenarios test exist to see.  Meant for
   {!run_schedule} (one controller per call); [explore] rebuilds
   controllers per branch, which restarts transaction ids and would
   confuse any monitor attached to the shared trace. *)
let hdd_traced ?(wall_every_commits = 2) trace =
  { sys_name = "HDD-traced";
    build =
      (fun ~log wl ->
        Hdd_sim.Adapters.hdd ~log ~trace ~wall_every_commits
          ~partition:wl.partition ~init:wl.init ()) }

(* The observability-invisibility property's subject: identical knobs to
   {!hdd}, plus a fresh full observability stack — enabled trace, metrics
   bridge, raising monitor — per controller build, so replays never see a
   stale shadow. *)
let hdd_observed () =
  { sys_name = "HDD-observed";
    build =
      (fun ~log wl ->
        let trace = Hdd_obs.Trace.create () in
        let monitor = Hdd_obs.Monitor.create () in
        Hdd_obs.Monitor.attach monitor trace;
        let metrics = Hdd_obs.Metrics.create () in
        Hdd_obs.Metrics.attach metrics trace;
        Hdd_sim.Adapters.hdd ~log ~trace ~partition:wl.partition
          ~init:wl.init ()) }

let all_systems = List.map system_of_spec Harness.all

let system name =
  match
    List.find_opt (fun s -> s.sys_name = name) all_systems
  with
  | Some s -> s
  | None -> failwith ("Explore.system: unknown system " ^ name)

type action = Begin | Finish | Access of op

type event = {
  ev_prog : int;
  ev_txn : Txn.id;
  ev_action : action;
  ev_outcome : [ `Ok | `Blocked of Txn.id list | `Rejected of string ];
}

type trial = {
  t_schedule : int list;
  t_events : event list;
  t_committed : int list;
  t_aborted : int list;
  t_deadlock : bool;
  t_verdict : Certifier.verdict;
}

(* --- one live execution --- *)

type tstate =
  | Idle
  | Running of Txn.t * op list  (** remaining ops *)
  | Waiting of Txn.t * op list * Txn.id list  (** head op blocked on ids *)
  | Done of [ `Committed | `Aborted ]

type exec = {
  wl : workload;
  ctrl : Controller.t;
  log : Sched_log.t;
  states : tstate array;
  live : (Txn.id, int) Hashtbl.t;  (** active txn id -> program index *)
  mutable rev_events : event list;
  mutable rev_schedule : int list;
  mutable steps : int;
}

let start sys wl =
  let log = Sched_log.create () in
  let ctrl = sys.build ~log wl in
  { wl; ctrl; log;
    states = Array.make (List.length wl.progs) Idle;
    live = Hashtbl.create 8;
    rev_events = []; rev_schedule = []; steps = 0 }

let prog e t = List.nth e.wl.progs t

let enabled e t =
  match e.states.(t) with
  | Idle | Running _ -> true
  | Waiting (_, _, blockers) ->
    List.for_all (fun id -> not (Hashtbl.mem e.live id)) blockers
  | Done _ -> false

let enabled_progs e =
  let n = Array.length e.states in
  let rec go i = if i >= n then [] else if enabled e i then i :: go (i + 1) else go (i + 1) in
  go 0

let record e t txn action outcome =
  e.rev_events <- { ev_prog = t; ev_txn = txn; ev_action = action;
                    ev_outcome = outcome } :: e.rev_events;
  e.rev_schedule <- t :: e.rev_schedule;
  e.steps <- e.steps + 1

(* Execute one step of program [t]; [t] must be enabled.  A step budget
   guards against a controller returning Blocked on already-finished
   transactions forever (none does; the guard turns such a bug into a
   failure instead of a hang). *)
let step e t =
  if e.steps > 64 * (total_steps e.wl + 1) then
    failwith "Explore: step budget exceeded (controller livelock?)";
  let p = prog e t in
  match e.states.(t) with
  | Done _ -> invalid_arg "Explore.step: program already finished"
  | Idle ->
    let txn = e.ctrl.Controller.begin_txn p.kind in
    Hashtbl.replace e.live txn.Txn.id t;
    e.states.(t) <- Running (txn, p.ops);
    record e t txn.Txn.id Begin `Ok
  | Running (txn, []) ->
    e.ctrl.Controller.commit txn;
    Hashtbl.remove e.live txn.Txn.id;
    e.states.(t) <- Done `Committed;
    record e t txn.Txn.id Finish `Ok
  | Running (txn, (op :: rest as ops)) | Waiting (txn, (op :: rest as ops), _)
    ->
    let outcome =
      match op with
      | Read g -> (
        match e.ctrl.Controller.read txn g with
        | Outcome.Granted _ -> `Ok
        | Outcome.Blocked ids -> `Blocked ids
        | Outcome.Rejected why -> `Rejected why)
      | Write (g, v) -> (
        match e.ctrl.Controller.write txn g v with
        | Outcome.Granted () -> `Ok
        | Outcome.Blocked ids -> `Blocked ids
        | Outcome.Rejected why -> `Rejected why)
    in
    (match outcome with
    | `Ok -> e.states.(t) <- Running (txn, rest)
    | `Blocked ids -> e.states.(t) <- Waiting (txn, ops, ids)
    | `Rejected _ ->
      e.ctrl.Controller.abort txn;
      Hashtbl.remove e.live txn.Txn.id;
      e.states.(t) <- Done `Aborted);
    record e t txn.Txn.id (Access op) outcome
  | Waiting (_, [], _) -> assert false

(* Finish the execution: abort whatever is still parked (a genuine
   deadlock, or leftovers of a truncated schedule) and certify. *)
let finish e =
  let deadlock = ref false in
  Array.iteri
    (fun t st ->
      match st with
      | Waiting (txn, _, _) | Running (txn, _) ->
        deadlock := true;
        e.ctrl.Controller.abort txn;
        Hashtbl.remove e.live txn.Txn.id;
        e.states.(t) <- Done `Aborted;
        e.rev_events <-
          { ev_prog = t; ev_txn = txn.Txn.id; ev_action = Finish;
            ev_outcome = `Rejected "deadlock" } :: e.rev_events
      | Idle | Done _ -> ())
    e.states;
  let committed = ref [] and aborted = ref [] in
  Array.iteri
    (fun t st ->
      match st with
      | Done `Committed -> committed := t :: !committed
      | Done `Aborted -> aborted := t :: !aborted
      | _ -> ())
    e.states;
  { t_schedule = List.rev e.rev_schedule;
    t_events = List.rev e.rev_events;
    t_committed = List.rev !committed;
    t_aborted = List.rev !aborted;
    t_deadlock = !deadlock;
    t_verdict = Certifier.certify e.log }

let run_schedule ?(quiesce = true) sys wl schedule =
  let e = start sys wl in
  let n = Array.length e.states in
  List.iter
    (fun t -> if t >= 0 && t < n && enabled e t then step e t)
    schedule;
  if quiesce then begin
    let budget = ref (8 * (total_steps wl + 1)) in
    let rec go () =
      match enabled_progs e with
      | t :: _ when !budget > 0 ->
        decr budget;
        step e t;
        go ()
      | _ -> ()
    in
    go ()
  end;
  finish e

(* --- exhaustive walk with sleep sets --- *)

type desc = Dbegin | Dfinish | Dread of Granule.t | Dwrite of Granule.t

let desc_of e t =
  match e.states.(t) with
  | Idle -> Dbegin
  | Running (_, []) -> Dfinish
  | Running (_, op :: _) | Waiting (_, op :: _, _) -> (
    match op with Read g -> Dread g | Write (g, _) -> Dwrite g)
  | Waiting (_, [], _) | Done _ -> assert false

(* Two steps of different programs commute when both are data operations
   on different granules, or both are reads: every controller here
   decides them from per-granule state plus the begin/commit history,
   and reads at most raise a read timestamp to a max — commutative.
   Begins and finishes move timestamps, locks, activity links and time
   walls: dependent on everything. *)
let independent a b =
  match (a, b) with
  | (Dbegin | Dfinish), _ | _, (Dbegin | Dfinish) -> false
  | Dread _, Dread _ -> true
  | (Dread g1 | Dwrite g1), (Dread g2 | Dwrite g2) ->
    not (Granule.equal g1 g2)

type summary = {
  sum_system : string;
  sum_workload : string;
  schedules : int;
  pruned : int;
  serializable : int;
  anomalies : int;
  deadlocks : int;
  rejections : int;
  examples : trial list;
  capped : bool;
}

let explore ?(prune = true) ?(max_schedules = 500_000) ?(max_examples = 3)
    ?on_trial sys wl =
  let schedules = ref 0 and pruned = ref 0 and serializable = ref 0 in
  let anomalies = ref 0 and deadlocks = ref 0 and rejections = ref 0 in
  let examples = ref [] and capped = ref false in
  let replay prefix =
    let e = start sys wl in
    List.iter (fun t -> step e t) (List.rev prefix);
    e
  in
  (* [prefix] is kept reversed; [sleep] holds program indices whose next
     step is covered by an already-explored sibling subtree. *)
  let rec dfs prefix sleep =
    if !schedules >= max_schedules then capped := true
    else begin
      let e = replay prefix in
      match enabled_progs e with
      | [] ->
        let trial = finish e in
        incr schedules;
        if trial.t_verdict.Certifier.serializable then incr serializable
        else begin
          incr anomalies;
          if List.length !examples < max_examples then
            examples := trial :: !examples
        end;
        if trial.t_deadlock then incr deadlocks;
        if
          List.exists
            (fun ev ->
              match ev.ev_outcome with `Rejected _ -> true | _ -> false)
            trial.t_events
        then incr rejections;
        (match on_trial with Some f -> f trial | None -> ())
      | en ->
        let explored = ref [] in
        List.iter
          (fun t ->
            if prune && List.mem t sleep then incr pruned
            else begin
              let dt = desc_of e t in
              let child_sleep =
                if prune then
                  List.filter
                    (fun u -> independent (desc_of e u) dt)
                    (sleep @ !explored)
                else []
              in
              dfs (t :: prefix) child_sleep;
              explored := t :: !explored
            end)
          en
    end
  in
  dfs [] [];
  { sum_system = sys.sys_name;
    sum_workload = wl.name;
    schedules = !schedules;
    pruned = !pruned;
    serializable = !serializable;
    anomalies = !anomalies;
    deadlocks = !deadlocks;
    rejections = !rejections;
    examples = List.rev !examples;
    capped = !capped }

(* --- rendering --- *)

let label wl t = (List.nth wl.progs t).label

let pp_action ppf = function
  | Begin -> Format.pp_print_string ppf "begin"
  | Finish -> Format.pp_print_string ppf "commit"
  | Access (Read g) -> Format.fprintf ppf "read %a" Granule.pp g
  | Access (Write (g, v)) -> Format.fprintf ppf "write %a <- %d" Granule.pp g v

let pp_event wl ppf ev =
  Format.fprintf ppf "%s(t%d) %a" (label wl ev.ev_prog) ev.ev_txn pp_action
    ev.ev_action;
  match ev.ev_outcome with
  | `Ok -> ()
  | `Blocked ids ->
    Format.fprintf ppf "  [blocked on %s]"
      (String.concat "," (List.map (Printf.sprintf "t%d") ids))
  | `Rejected why -> Format.fprintf ppf "  [rejected: %s]" why

let pp_trial wl ppf trial =
  List.iteri
    (fun i ev -> Format.fprintf ppf "%3d. %a@," i (pp_event wl) ev)
    trial.t_events;
  Format.fprintf ppf "committed: {%s}  aborted: {%s}%s@,verdict: %a"
    (String.concat ", " (List.map (label wl) trial.t_committed))
    (String.concat ", " (List.map (label wl) trial.t_aborted))
    (if trial.t_deadlock then "  (deadlock)" else "")
    Certifier.pp_verdict trial.t_verdict

let pp_summary ppf s =
  Format.fprintf ppf
    "%s on %s: %d schedules (%d pruned%s), %d serializable, %d anomalies, \
     %d deadlocks, %d with rejections"
    s.sum_system s.sum_workload s.schedules s.pruned
    (if s.capped then ", CAPPED" else "")
    s.serializable s.anomalies s.deadlocks s.rejections
