(** Seeded random generation for the conformance properties: partition
    specs (legal and deliberately illegal), bounded workloads and
    schedules, all driven by {!Hdd_util.Prng} so every property failure
    replays from its seed. *)

module Spec = Hdd_core.Spec

val tst_spec : Hdd_util.Prng.t -> Spec.t
(** A random TST-hierarchical spec: a random tree of 2–4 segments, one
    type per segment writing its segment and reading a random subset of
    its ancestor path.  {!Hdd_core.Partition.build} must accept it. *)

val non_tst_spec : Hdd_util.Prng.t -> Spec.t
(** A random violation — a type writing two segments, a two-segment
    cycle, or a diamond join — {!Hdd_core.Partition.build} must reject
    it. *)

val workload : ?adhoc:bool -> Hdd_util.Prng.t -> Explore.workload
(** A bounded workload over a fresh {!tst_spec} partition: two or three
    update programs reading within their class's legal pattern, usually
    an ad-hoc read-only program, and — with [adhoc] (default false) — an
    ad-hoc update program writing several segments.  The default is
    adhoc-free because Protocol A's no-reject guarantee only holds
    outside ad-hoc activity windows (§7.1.1's barrier). *)

val schedule : Hdd_util.Prng.t -> Explore.workload -> int list
(** A random choice sequence for {!Explore.run_schedule}'s tolerant
    replay, long enough to interleave every program's steps. *)
