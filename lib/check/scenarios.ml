module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition
module Controller = Hdd_sim.Controller
open Explore

type t = {
  sc_name : string;
  description : string;
  workload : Explore.workload;
  expect_anomaly : string list;
}

(* Every susceptible system, for every scenario below: the point of the
   catalogue is that the same three cripples fail everywhere while HDD
   and the full-strength baselines never do. *)
let cripples = [ "NoCC"; "2PL-noRL"; "TSO-noRTS" ]

let g ~segment ~key = Granule.make ~segment ~key

(* --- Figure 1: the lost update --- *)

let accounts_partition =
  Partition.build_exn
    (Spec.make ~segments:[ "accounts" ]
       ~types:[ Spec.txn_type ~name:"teller" ~writes:[ 0 ] ~reads:[ 0 ] ])

let fig1 =
  let acct = g ~segment:0 ~key:0 in
  { sc_name = "fig1";
    description =
      "Figure 1 lost update: two tellers read-modify-write one account";
    workload =
      { name = "fig1";
        partition = accounts_partition;
        init = (fun _ -> 100);
        progs =
          [ { label = "t1"; kind = Controller.Update 0;
              ops = [ Read acct; Write (acct, 110) ] };
            { label = "t2"; kind = Controller.Update 0;
              ops = [ Read acct; Write (acct, 120) ] } ] };
    expect_anomaly = cripples }

(* --- Figures 3/4: the inventory pipeline --- *)

let inventory_partition =
  Partition.build_exn
    (Spec.make
       ~segments:[ "reorders"; "inventory"; "events" ]
       ~types:
         [ Spec.txn_type ~name:"type1" ~writes:[ 2 ] ~reads:[];
           Spec.txn_type ~name:"type2" ~writes:[ 1 ] ~reads:[ 1; 2 ];
           Spec.txn_type ~name:"type3" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ])

let event = g ~segment:2 ~key:0
let level = g ~segment:1 ~key:0
let reorder = g ~segment:0 ~key:0

let fig34 =
  { sc_name = "fig34";
    description =
      "Figures 3/4 inventory pipeline: unprotected reads break crippled \
       2PL and TSO";
    workload =
      { name = "fig34";
        partition = inventory_partition;
        init = (fun _ -> 0);
        progs =
          [ { label = "insert"; kind = Controller.Update 2;
              ops = [ Write (event, 1) ] };
            { label = "post"; kind = Controller.Update 1;
              ops = [ Read event; Write (level, 1) ] };
            { label = "reorder"; kind = Controller.Update 0;
              ops = [ Read event; Read level; Write (reorder, 1) ] } ] };
    expect_anomaly = cripples }

(* --- Protocol C territory: a read-only transaction over a chain --- *)

let chain_partition =
  Partition.build_exn
    (Spec.make ~segments:[ "lower"; "upper" ]
       ~types:
         [ Spec.txn_type ~name:"low" ~writes:[ 0 ] ~reads:[ 0; 1 ];
           Spec.txn_type ~name:"high" ~writes:[ 1 ] ~reads:[ 1 ] ])

let wall =
  let a = g ~segment:1 ~key:0 and b = g ~segment:0 ~key:0 in
  { sc_name = "wall";
    description =
      "two-segment chain with a spanning read-only transaction: the \
       schedules time walls serialise";
    workload =
      { name = "wall";
        partition = chain_partition;
        init = (fun _ -> 0);
        progs =
          [ { label = "high"; kind = Controller.Update 1;
              ops = [ Write (a, 7) ] };
            { label = "low"; kind = Controller.Update 0;
              ops = [ Read a; Write (b, 8) ] };
            { label = "audit"; kind = Controller.Read_only;
              ops = [ Read a; Read b ] } ] };
    expect_anomaly = cripples }

(* --- §7.1.1: an ad-hoc update outside the classification --- *)

let adhoc =
  { sc_name = "adhoc";
    description =
      "ad-hoc update writing two inventory segments, racing a classified \
       update and an audit";
    workload =
      { name = "adhoc";
        partition = inventory_partition;
        init = (fun _ -> 0);
        progs =
          [ { label = "patch";
              kind = Controller.Adhoc { writes = [ 1; 2 ]; reads = [ 1; 2 ] };
              ops = [ Write (event, 9); Write (level, 9) ] };
            { label = "reorder"; kind = Controller.Update 0;
              ops = [ Read event; Read level; Write (reorder, 1) ] };
            { label = "audit"; kind = Controller.Read_only;
              ops = [ Read event; Read level ] } ] };
    expect_anomaly = cripples }

let all = [ fig1; fig34; wall; adhoc ]

let find name =
  match List.find_opt (fun sc -> sc.sc_name = name) all with
  | Some sc -> sc
  | None -> failwith ("Scenarios.find: unknown scenario " ^ name)
