(** Aligned ASCII tables: the rendering used for every experiment so the
    benchmark output reads like the paper's tables. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rule : t -> unit
(** Horizontal separator between row groups. *)

val render : t -> string

val print : t -> unit
(** [render] followed by a newline on stdout. *)

val cell_float : ?decimals:int -> float -> string
(** Fixed-point cell, [“-”] for nan. *)

val cell_int : int -> string
val cell_pct : float -> string
(** Percentage with one decimal, e.g. [12.3%]. *)
