type row = Cells of string list | Rule

type t = {
  title : string;
  columns : string list;
  mutable rows : row list;  (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.columns) in
  List.iter
    (function
      | Rule -> ()
      | Cells cs ->
        List.iteri
          (fun i c -> widths.(i) <- Int.max widths.(i) (String.length c))
          cs)
    rows;
  let pad i s = s ^ String.make (widths.(i) - String.length s) ' ' in
  let line ch =
    let total = Array.fold_left ( + ) 0 widths + (3 * Array.length widths) + 1 in
    String.make total ch
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  let emit cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        Buffer.add_string buf (pad i c);
        Buffer.add_string buf " | ")
      cells;
    (* drop the trailing space for tidy right edge *)
    let len = Buffer.length buf in
    Buffer.truncate buf (len - 1);
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  List.iter
    (function
      | Rule ->
        Buffer.add_string buf (line '-');
        Buffer.add_char buf '\n'
      | Cells cs -> emit cs)
    rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let cell_float ?(decimals = 2) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x

let cell_int = string_of_int

let cell_pct x =
  if Float.is_nan x then "-" else Printf.sprintf "%.1f%%" (100. *. x)
