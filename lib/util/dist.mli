(** Random variates used by the workload generators.

    All draws are made through {!Prng} so a workload is a pure function of
    its seed. *)

val exponential : Prng.t -> rate:float -> float
(** Inter-arrival time of a Poisson process with intensity [rate] (> 0). *)

val uniform_int : Prng.t -> lo:int -> hi:int -> int
(** Uniform integer in [\[lo, hi\]] inclusive. *)

type zipf
(** Precomputed Zipf(α) sampler over [{0, …, n-1}]; rank 0 is hottest. *)

val zipf : n:int -> alpha:float -> zipf
(** Builds the cumulative table.  [alpha = 0.] degenerates to uniform.
    @raise Invalid_argument if [n <= 0] or [alpha < 0.]. *)

val zipf_draw : zipf -> Prng.t -> int

val zipf_n : zipf -> int
(** Domain size the sampler was built with. *)

val bernoulli : Prng.t -> p:float -> bool
(** True with probability [p]. *)
