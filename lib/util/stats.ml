type t = {
  mutable data : float array;
  mutable len : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable lo : float;
  mutable hi : float;
}

let create () =
  { data = Array.make 16 0.; len = 0; sum = 0.; sumsq = 0.;
    lo = infinity; hi = neg_infinity }

let add t x =
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.len
let total t = t.sum

let mean t = if t.len = 0 then nan else t.sum /. float_of_int t.len

let stddev t =
  if t.len < 2 then nan
  else
    let n = float_of_int t.len in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.) in
    sqrt (Float.max var 0.)

let min_value t = t.lo
let max_value t = t.hi

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.sub t.data 0 t.len in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100. *. float_of_int t.len)) in
  let idx = if rank <= 0 then 0 else Int.min (rank - 1) (t.len - 1) in
  sorted.(idx)

let observations t = Array.sub t.data 0 t.len

module Histogram = struct
  type h = { lo : float; hi : float; counts : int array }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be > 0";
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    { lo; hi; counts = Array.make buckets 0 }

  let bucket_of h x =
    let n = Array.length h.counts in
    if x < h.lo then 0
    else if x >= h.hi then n - 1
    else
      let frac = (x -. h.lo) /. (h.hi -. h.lo) in
      Int.min (n - 1) (int_of_float (frac *. float_of_int n))

  let add h x =
    let i = bucket_of h x in
    h.counts.(i) <- h.counts.(i) + 1

  let counts h = Array.copy h.counts

  let render h ~width =
    let peak = Array.fold_left Int.max 1 h.counts in
    let buf = Buffer.create 256 in
    let n = Array.length h.counts in
    let step = (h.hi -. h.lo) /. float_of_int n in
    Array.iteri
      (fun i c ->
        let bar = c * width / peak in
        Buffer.add_string buf
          (Printf.sprintf "%10.3f | %s %d\n"
             (h.lo +. (float_of_int i *. step))
             (String.make bar '#') c))
      h.counts;
    Buffer.contents buf
end
