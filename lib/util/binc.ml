type writer = Buffer.t

let writer () = Buffer.create 256

(* zigzag: sign bit into bit 0, so small magnitudes of either sign stay
   short.  [lsr 62] rather than 63: zigzag doubles, so the top bit of the
   doubled value is bit 62 of the magnitude. *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let w_int b n =
  let v = ref (zigzag n) in
  (* OCaml ints are 63-bit; as an unsigned quantity [!v] needs at most
     9 LEB128 digits *)
  let continue = ref true in
  while !continue do
    let digit = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_uint8 b digit;
      continue := false
    end
    else Buffer.add_uint8 b (digit lor 0x80)
  done

let w_bool b v = Buffer.add_uint8 b (if v then 1 else 0)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_list b f l =
  w_int b (List.length l);
  List.iter (f b) l

let w_array b f a =
  w_int b (Array.length a);
  Array.iter (f b) a

let w_option b f = function
  | None -> w_bool b false
  | Some v ->
    w_bool b true;
    f b v

let payload b = Buffer.to_bytes b

(* CRC-32 (IEEE), the same polynomial the WAL frames use. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 bytes =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  Bytes.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    bytes;
  !c lxor 0xFFFFFFFF

let frame b =
  let p = payload b in
  let out = Bytes.create (8 + Bytes.length p) in
  Bytes.set_int32_le out 0 (Int32.of_int (Bytes.length p));
  Bytes.set_int32_le out 4 (Int32.of_int (crc32 p));
  Bytes.blit p 0 out 8 (Bytes.length p);
  out

(* --- reading --- *)

type reader = { buf : bytes; mutable pos : int }

exception Error of string

let reader buf = { buf; pos = 0 }

let need r n =
  if r.pos + n > Bytes.length r.buf then raise (Error "truncated")

let r_byte r =
  need r 1;
  let v = Bytes.get_uint8 r.buf r.pos in
  r.pos <- r.pos + 1;
  v

let r_int r =
  let v = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 63 then raise (Error "varint overflow");
    let d = r_byte r in
    v := !v lor ((d land 0x7f) lsl !shift);
    shift := !shift + 7;
    if d land 0x80 = 0 then continue := false
  done;
  unzigzag !v

let r_bool r =
  match r_byte r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Error (Printf.sprintf "bad bool byte %d" n))

let r_string r =
  let n = r_int r in
  if n < 0 then raise (Error "negative string length");
  need r n;
  let s = Bytes.sub_string r.buf r.pos n in
  r.pos <- r.pos + n;
  s

let r_count r =
  let n = r_int r in
  (* an element costs at least one byte, so a count beyond the remaining
     bytes is corrupt — refuse before allocating *)
  if n < 0 || n > Bytes.length r.buf - r.pos then
    raise (Error (Printf.sprintf "bad count %d" n));
  n

let r_list r f = List.init (r_count r) (fun _ -> f r)
let r_array r f = Array.init (r_count r) (fun _ -> f r)

let r_option r f = if r_bool r then Some (f r) else None

let at_end r = r.pos = Bytes.length r.buf

(* --- frames --- *)

let unframe buf ~pos =
  let len = Bytes.length buf in
  if pos < 0 || pos + 8 > len then Result.Error "truncated frame header"
  else
    let plen = Int32.to_int (Bytes.get_int32_le buf pos) in
    let crc = Int32.to_int (Bytes.get_int32_le buf (pos + 4)) land 0xFFFFFFFF in
    if plen < 0 || plen > 1 lsl 26 then Result.Error "implausible frame length"
    else if pos + 8 + plen > len then Result.Error "truncated frame body"
    else
      let p = Bytes.sub buf (pos + 8) plen in
      if crc32 p <> crc then Result.Error "frame CRC mismatch"
      else Result.Ok (p, pos + 8 + plen)

let decode buf ~pos ~f =
  match unframe buf ~pos with
  | Result.Error _ as e -> e
  | Result.Ok (p, next) -> (
    let r = reader p in
    match f r with
    | v ->
      if at_end r then Result.Ok (v, next)
      else Result.Error "trailing payload bytes"
    | exception Error e -> Result.Error e
    | exception Invalid_argument e -> Result.Error ("invalid: " ^ e))
