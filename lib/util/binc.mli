(** Compact length-prefixed binary framing — the wire codec primitives
    of the sharded engine (DESIGN.md §15).

    {!Jsonlite} is the right tool for reports a human (or CI gate) reads
    back; the shard wire protocol instead moves registry snapshots and
    store deltas on every commit, so it wants a codec that is dense,
    allocation-light and — because it crosses process boundaries —
    paranoid: every frame is length-prefixed and CRC-guarded, and
    {!decode} returns a clean [Error] on any truncation or corruption
    rather than raising or silently mis-parsing.  The property suite
    cuts frames at every byte and flips single bits to pin exactly
    that.

    Integers use zigzag LEB128 varints (small magnitudes, the common
    case for times, ids and keys, cost one byte); strings and lists are
    count-prefixed.  A {e frame} is [[payload length : u32 LE][crc32 of
    payload : u32 LE][payload]], the same armor the WAL and checkpoint
    files wear. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer

val w_int : writer -> int -> unit
(** Zigzag LEB128; any OCaml [int] round-trips. *)

val w_bool : writer -> bool -> unit
val w_string : writer -> string -> unit

val w_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
(** Count-prefixed. *)

val w_array : writer -> (writer -> 'a -> unit) -> 'a array -> unit

val w_option : writer -> (writer -> 'a -> unit) -> 'a option -> unit

val payload : writer -> bytes
(** The raw accumulated payload (no frame armor). *)

val frame : writer -> bytes
(** The framed payload: length, CRC, body. *)

(** {1 Reading} *)

type reader

exception Error of string
(** Raised by the [r_*] readers on truncation or a malformed encoding.
    {!decode} catches it — only result-returning entry points are meant
    for untrusted bytes. *)

val reader : bytes -> reader

val r_int : reader -> int
val r_bool : reader -> bool
val r_string : reader -> string
val r_list : reader -> (reader -> 'a) -> 'a list
val r_array : reader -> (reader -> 'a) -> 'a array
val r_option : reader -> (reader -> 'a) -> 'a option

val at_end : reader -> bool

(** {1 Frames} *)

val crc32 : bytes -> int

val unframe : bytes -> pos:int -> (bytes * int, string) result
(** Cut one frame starting at [pos]: [Ok (payload, next)] after the CRC
    checks out, [Error reason] on a truncated or corrupt frame.  Never
    raises. *)

val decode : bytes -> pos:int -> f:(reader -> 'a) -> ('a * int, string) result
(** {!unframe}, then run [f] over the payload, requiring it to consume
    every byte.  Any {!Error} (and any [Invalid_argument] a validating
    constructor inside [f] raises) comes back as [Error]; nothing
    escapes. *)
