let exponential g ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be > 0";
  let u = Prng.float g 1.0 in
  (* 1 - u is in (0, 1], avoiding log 0 *)
  -.log (1.0 -. u) /. rate

let uniform_int g ~lo ~hi =
  if hi < lo then invalid_arg "Dist.uniform_int: hi < lo";
  lo + Prng.int g (hi - lo + 1)

type zipf = { cdf : float array }

let zipf ~n ~alpha =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if alpha < 0. then invalid_arg "Dist.zipf: alpha must be >= 0";
  let w = Array.init n (fun i -> 1.0 /. ((float_of_int (i + 1)) ** alpha)) in
  let total = Array.fold_left ( +. ) 0. w in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (w.(i) /. total);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { cdf }

let zipf_draw { cdf } g =
  let u = Prng.float g 1.0 in
  (* binary search for the first index with cdf.(i) >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) >= u then search lo mid else search (mid + 1) hi
  in
  search 0 (Array.length cdf - 1)

let zipf_n { cdf } = Array.length cdf

let bernoulli g ~p = Prng.float g 1.0 < p
