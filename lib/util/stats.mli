(** Streaming and batch statistics for experiment reporting. *)

type t
(** A mutable accumulator of float observations. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** [nan] when empty. *)

val stddev : t -> float
(** Sample standard deviation; [nan] when fewer than two observations. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]], by nearest-rank on the stored
    observations.  @raise Invalid_argument on empty accumulator or [p]
    outside the range. *)

val observations : t -> float array
(** Copy of all recorded observations, in insertion order. *)

(** Fixed-width histogram over [\[lo, hi)] with [buckets] bins; values
    outside the range are clamped to the edge bins. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val counts : h -> int array
  val bucket_of : h -> float -> int
  val render : h -> width:int -> string
  (** ASCII bar rendering used by the CLI. *)
end
