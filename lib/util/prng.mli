(** Deterministic pseudo-random number generation.

    A small, fast, splittable PRNG (splitmix64) so that every simulation and
    every property test in the repository is reproducible from a single seed.
    The standard-library [Random] is deliberately not used: its state is
    global and its stream is not stable across OCaml releases. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output.  Used to give each
    simulated transaction class its own stream so that adding a class does
    not perturb the draws of the others. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
