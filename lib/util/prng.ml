type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* splitmix64 finalizer: Stafford's mix13. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g =
  let s = bits64 g in
  { state = s }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the value is a non-negative OCaml int *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) in
  r mod bound

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  (* 53 significant bits, the double mantissa width *)
  r /. 9007199254740992.0 *. bound

let bool g = Int64.logand (bits64 g) 1L = 1L

let pick g a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int g (Array.length a))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
