module J = Hdd_benchkit.Jsonlite

type meta = {
  seq : int;
  file : string;  (** basename, relative to the log's directory *)
  log_offset : int;
  wall : Time.t array;
  last_time : Time.t;
  crc : int;
  bytes : int;
}

let manifest_path ~log = log ^ ".manifest"
let data_path ~log ~seq = Printf.sprintf "%s.ckpt.%d" log seq

let keep_checkpoints = 2

(* --- JSON shapes --- *)

let num = J.num_of_int
let ints l = J.List (List.map num l)

let int_of j = Option.map int_of_float (J.number j)

let int_field name j = Option.bind (J.member name j) int_of

let int_array_field name j =
  match J.member name j with
  | Some (J.List l) ->
    let vs = List.filter_map int_of l in
    if List.length vs = List.length l then Some (Array.of_list vs) else None
  | _ -> None

let meta_json m =
  J.Obj
    [ ("seq", num m.seq);
      ("file", J.Str m.file);
      ("log_offset", num m.log_offset);
      ("wall", ints (Array.to_list m.wall));
      ("last_time", num m.last_time);
      ("crc", num m.crc);
      ("bytes", num m.bytes) ]

let meta_of_json j =
  match
    ( int_field "seq" j,
      J.member "file" j,
      int_field "log_offset" j,
      int_array_field "wall" j,
      int_field "last_time" j,
      int_field "crc" j,
      int_field "bytes" j )
  with
  | Some seq, Some (J.Str file), Some log_offset, Some wall, Some last_time,
    Some crc, Some bytes ->
    Some { seq; file; log_offset; wall; last_time; crc; bytes }
  | _ -> None

let read_manifest ~log =
  let path = manifest_path ~log in
  if not (Sys.file_exists path) then []
  else
    match J.of_file path with
    | exception _ -> []
    | j -> (
      match J.member "entries" j with
      | Some (J.List l) ->
        List.filter_map meta_of_json l
        |> List.sort (fun a b -> compare b.seq a.seq)
      | _ -> [])

let manifest_json entries =
  J.with_schema [ ("entries", J.List (List.map meta_json entries)) ]

(* --- data file --- *)

let versions_json versions =
  J.List
    (List.map
       (fun ((g : Granule.t), vs) ->
         J.List
           [ num g.Granule.segment; num g.Granule.key;
             J.List (List.map (fun (ts, v) -> J.List [ num ts; num v ]) vs) ])
       versions)

let pending_json pending =
  J.List
    (List.map
       (fun (txn, class_id, init, writes) ->
         J.List
           [ num txn; num class_id; num init;
             J.List
               (List.map
                  (fun ((g : Granule.t), ts, v) ->
                    J.List
                      [ num g.Granule.segment; num g.Granule.key; num ts;
                        num v ])
                  writes) ])
       pending)

let data_json ~seq ~log_offset ~wall ~last_time ~committed ~aborted ~versions
    ~pending =
  J.with_schema
    [ ("seq", num seq);
      ("log_offset", num log_offset);
      ("wall", ints (Array.to_list wall));
      ("last_time", num last_time);
      ("committed", num committed);
      ("aborted", num aborted);
      ("versions", versions_json versions);
      ("pending", pending_json pending) ]

let pair_of = function
  | J.List [ a; b ] -> (
    match (int_of a, int_of b) with Some a, Some b -> Some (a, b) | _ -> None)
  | _ -> None

let versions_of_json = function
  | J.List l ->
    let entry = function
      | J.List [ s; k; J.List vs ] -> (
        match (int_of s, int_of k) with
        | Some segment, Some key ->
          let pairs = List.filter_map pair_of vs in
          if List.length pairs = List.length vs then
            Some (Granule.make ~segment ~key, pairs)
          else None
        | _ -> None)
      | _ -> None
    in
    let entries = List.filter_map entry l in
    if List.length entries = List.length l then Some entries else None
  | _ -> None

let pending_of_json = function
  | J.List l ->
    let write = function
      | J.List [ s; k; ts; v ] -> (
        match (int_of s, int_of k, int_of ts, int_of v) with
        | Some segment, Some key, Some ts, Some v ->
          Some (Granule.make ~segment ~key, ts, v)
        | _ -> None)
      | _ -> None
    in
    let entry = function
      | J.List [ txn; class_id; init; J.List ws ] -> (
        match (int_of txn, int_of class_id, int_of init) with
        | Some txn, Some class_id, Some init ->
          let writes = List.filter_map write ws in
          if List.length writes = List.length ws then
            Some (txn, class_id, init, writes)
          else None
        | _ -> None)
      | _ -> None
    in
    let entries = List.filter_map entry l in
    if List.length entries = List.length l then Some entries else None
  | _ -> None

(* --- atomic file discipline: temp + checksum + rename --- *)

let write_atomic ?faults ~point_write ~point_rename ~path payload =
  let tmp = path ^ ".tmp" in
  (match faults with
  | Some p -> Fault.cross_write p point_write ~path:tmp payload
  | None ->
    let oc = Out_channel.open_bin tmp in
    Out_channel.output_bytes oc payload;
    Out_channel.close oc);
  (match faults with Some p -> Fault.cross p point_rename | None -> ());
  Sys.rename tmp path

(* Keep the newest [keep_checkpoints] manifest entries (newest first on
   input); best-effort removal of the dropped entries' data files. *)
let prune ~log entries =
  let rec split i = function
    | [] -> ([], [])
    | m :: rest ->
      if i < keep_checkpoints then
        let k, d = split (i + 1) rest in
        (m :: k, d)
      else ([], m :: rest)
  in
  let keep, drop = split 0 entries in
  List.iter
    (fun m ->
      let p = Filename.concat (Filename.dirname log) m.file in
      if Sys.file_exists p then try Sys.remove p with Sys_error _ -> ())
    drop;
  keep

let write ?faults ~log ~seq ~log_offset ~wall ~last_time ~committed ~aborted
    ~versions ~pending () =
  let json =
    data_json ~seq ~log_offset ~wall ~last_time ~committed ~aborted ~versions
      ~pending
  in
  let payload = Bytes.of_string (J.to_string json) in
  let crc = Codec.crc32 payload in
  let path = data_path ~log ~seq in
  write_atomic ?faults ~point_write:(Fault.Checkpoint_write seq)
    ~point_rename:(Fault.Checkpoint_rename seq) ~path payload;
  let m =
    { seq; file = Filename.basename path; log_offset; wall = Array.copy wall;
      last_time; crc; bytes = Bytes.length payload }
  in
  let entries = prune ~log (m :: read_manifest ~log) in
  let manifest = Bytes.of_string (J.to_string (manifest_json entries)) in
  write_atomic ?faults ~point_write:(Fault.Manifest_write seq)
    ~point_rename:(Fault.Manifest_rename seq)
    ~path:(manifest_path ~log) manifest;
  m

(* --- load --- *)

let load_data ~log m =
  let path = Filename.concat (Filename.dirname log) m.file in
  if not (Sys.file_exists path) then None
  else
    let ic = In_channel.open_bin path in
    let payload = Bytes.of_string (In_channel.input_all ic) in
    In_channel.close ic;
    if Bytes.length payload <> m.bytes || Codec.crc32 payload <> m.crc then
      None
    else
      match J.of_string (Bytes.to_string payload) with
      | exception J.Parse_error _ -> None
      | j -> (
        match
          ( int_field "seq" j,
            int_field "log_offset" j,
            int_array_field "wall" j,
            int_field "last_time" j,
            int_field "committed" j,
            int_field "aborted" j,
            Option.bind (J.member "versions" j) versions_of_json,
            Option.bind (J.member "pending" j) pending_of_json )
        with
        | Some seq, Some log_offset, Some wall, Some last_time,
          Some committed, Some aborted, Some versions, Some pending
          when seq = m.seq && log_offset = m.log_offset ->
          Some (wall, last_time, committed, aborted, versions, pending)
        | _ -> None)

let restore ?trace ~segments ~init
    (_wall, last_time, committed, aborted, versions, pending) =
  let replay = Replay.create ?trace ~segments ~init () in
  List.iter
    (fun (g, vs) ->
      List.iter
        (fun (ts, value) ->
          Replay.install_writes replay ~txn:Txn.bootstrap.Txn.id
            [ (g, ts, value) ])
        vs)
    versions;
  replay.Replay.last_time <- last_time;
  replay.Replay.committed <- committed;
  replay.Replay.aborted <- aborted;
  Replay.restore_pending replay pending;
  replay

let best ?trace ~log ~segments ~init () =
  let rec try_entries = function
    | [] -> None
    | m :: rest -> (
      match load_data ~log m with
      | Some data -> Some (restore ?trace ~segments ~init data, m)
      | None -> try_entries rest)
  in
  try_entries (read_manifest ~log)

let latest_seq ~log =
  match read_manifest ~log with [] -> 0 | m :: _ -> m.seq
