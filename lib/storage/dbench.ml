module J = Hdd_benchkit.Jsonlite
module Partition = Hdd_core.Partition
module Outcome = Hdd_core.Outcome

(* Linear class hierarchy over three segments; the workload below keeps
   every class busy. *)
let partition () = Hdd_benchkit.Fixtures.chain_partition 3

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0. else sorted.(Int.min (n - 1) (p * n / 100))

let us s = s *. 1e6

(* One closed-loop committer: [txns] single-write update transactions,
   driven through [db], collecting per-commit ack latency (submit to
   acknowledged, in seconds).  Group-commit acks arrive on later
   operations, so every iteration polls the outstanding tickets; the
   final flush acks the stragglers. *)
let drive db ~txns =
  let waiting = ref [] in
  let lat = ref [] in
  let poll () =
    waiting :=
      List.filter
        (fun (tk, t0) ->
          if Durable.acked db tk then begin
            lat := (Unix.gettimeofday () -. t0) :: !lat;
            false
          end
          else true)
        !waiting
  in
  let t0 = Unix.gettimeofday () in
  for i = 1 to txns do
    let cls = i mod 3 in
    let t = Durable.begin_update db ~class_id:cls in
    (match
       Durable.write db t (Granule.make ~segment:cls ~key:(i mod 8)) i
     with
    | Outcome.Granted () -> ()
    | Outcome.Blocked _ | Outcome.Rejected _ -> ());
    let s0 = Unix.gettimeofday () in
    let tk = Durable.commit_ticket db t in
    waiting := (tk, s0) :: !waiting;
    poll ()
  done;
  Durable.flush db;
  poll ();
  let elapsed = Unix.gettimeofday () -. t0 in
  let lat = Array.of_list !lat in
  Array.sort compare lat;
  (elapsed, lat)

let scrub path =
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.iter
    (fun f ->
      if
        String.length f >= String.length base
        && String.sub f 0 (String.length base) = base
      then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

(* --- throughput and ack latency over the group-commit knob grid --- *)

type cell = {
  max_batch : int;
  max_delay : int;
  txns_per_sec : float;
  fsyncs : int;
  fsyncs_per_commit : float;
  p50_us : float;
  p99_us : float;
}

let commit_cell ~dir ~txns ~knob =
  let path = Filename.concat dir "hdd_dbench_commit.log" in
  scrub path;
  let db =
    match knob with
    | None ->
      Durable.create ~sync_on_commit:true ~path ~partition:(partition ()) ()
    | Some config ->
      Durable.create ~group:config ~path ~partition:(partition ()) ()
  in
  let elapsed, lat = drive db ~txns in
  let fsyncs =
    match Durable.group db with
    | Some g -> Group_commit.fsyncs g
    | None -> txns (* sync_on_commit: one fsync per commit by definition *)
  in
  Durable.close db;
  scrub path;
  let max_batch, max_delay =
    match knob with
    | None -> (0, 0)
    | Some c -> (c.Group_commit.max_batch, c.Group_commit.max_delay)
  in
  { max_batch; max_delay;
    txns_per_sec = float_of_int txns /. elapsed;
    fsyncs;
    fsyncs_per_commit = float_of_int fsyncs /. float_of_int txns;
    p50_us = us (percentile lat 50);
    p99_us = us (percentile lat 99) }

let knob_grid =
  [ None;
    Some { Group_commit.max_batch = 1; max_delay = 0 };
    Some { Group_commit.max_batch = 2; max_delay = 4 };
    Some { Group_commit.max_batch = 4; max_delay = 8 };
    Some { Group_commit.max_batch = 8; max_delay = 16 };
    Some { Group_commit.max_batch = 16; max_delay = 32 };
    Some { Group_commit.max_batch = 32; max_delay = 64 } ]

let cell_json c =
  J.Obj
    [ ("max_batch", J.num_of_int c.max_batch);
      ("max_delay", J.num_of_int c.max_delay);
      ("txns_per_sec", J.Num c.txns_per_sec);
      ("fsyncs", J.num_of_int c.fsyncs);
      ("fsyncs_per_commit", J.Num c.fsyncs_per_commit);
      ("ack_p50_us", J.Num c.p50_us);
      ("ack_p99_us", J.Num c.p99_us) ]

(* --- recovery: O(tail), not O(history) --- *)

(* Build a log of [txns] commits, checkpointing every [ckpt_every]
   commits (never, when 0), and time both recovery paths over it. *)
let recovery_case ~dir ~txns ~ckpt_every =
  let path = Filename.concat dir "hdd_dbench_recover.log" in
  scrub path;
  let db = Durable.create ~path ~partition:(partition ()) () in
  for i = 1 to txns do
    let cls = i mod 3 in
    let t = Durable.begin_update db ~class_id:cls in
    (match
       Durable.write db t (Granule.make ~segment:cls ~key:(i mod 8)) i
     with
    | Outcome.Granted () -> ()
    | Outcome.Blocked _ | Outcome.Rejected _ -> ());
    Durable.commit db t;
    if ckpt_every > 0 && i mod ckpt_every = 0 then
      ignore (Durable.checkpoint db)
  done;
  Durable.close db;
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (Unix.gettimeofday () -. t0, r)
  in
  let recover_ms, r =
    let dt, r =
      time (fun () ->
          Durable.recover ~path ~segments:3 ~init:(fun _ -> 0) ())
    in
    (dt *. 1e3, r)
  in
  let replay_ms, _ =
    let dt, r =
      time (fun () ->
          Durable.recover ~use_checkpoints:false ~path ~segments:3
            ~init:(fun _ -> 0) ())
    in
    (dt *. 1e3, r)
  in
  let tail_bytes =
    match r.Durable.from_checkpoint with
    | Some m -> r.Durable.valid_bytes - m.Checkpoint.log_offset
    | None -> r.Durable.valid_bytes
  in
  scrub path;
  (recover_ms, replay_ms, tail_bytes)

let run ?(quick = false) ?(dir = Filename.get_temp_dir_name ()) () =
  let txns = if quick then 600 else 4000 in
  let cells = List.map (fun knob -> commit_cell ~dir ~txns ~knob) knob_grid in
  let find_cell b =
    List.find (fun c -> c.max_batch = b) cells
  in
  let direct = List.find (fun c -> c.max_batch = 0) cells in
  let at8 = find_cell 8 in
  (* the headline the nightly gates on: an 8-deep batch window must cut
     fsyncs per commit at least 4x against sync-per-commit *)
  let fsync_reduction_at_8 =
    if at8.fsyncs_per_commit > 0. then
      direct.fsyncs_per_commit /. at8.fsyncs_per_commit
    else infinity
  in
  (* recovery flatness: same checkpoint cadence, growing history — the
     manifest path must not grow with the history, only with the tail *)
  let histories =
    if quick then [ 400; 800; 1600 ] else [ 2000; 4000; 8000 ]
  in
  let cadence = if quick then 128 else 512 in
  let flat_cases =
    List.map
      (fun h ->
        let recover_ms, replay_ms, tail_bytes =
          recovery_case ~dir ~txns:h ~ckpt_every:cadence
        in
        (h, recover_ms, replay_ms, tail_bytes))
      histories
  in
  let recovery_tail_flatness =
    match (flat_cases, List.rev flat_cases) with
    | (_, first_ms, _, _) :: _, (_, last_ms, _, _) :: _ when first_ms > 0. ->
      last_ms /. first_ms
    | _ -> nan
  in
  (* recovery time against the checkpoint interval at fixed history *)
  let intervals = if quick then [ 0; 64; 256 ] else [ 0; 128; 512; 2048 ] in
  let interval_cases =
    List.map
      (fun k ->
        let h = if quick then 1600 else 8000 in
        let recover_ms, replay_ms, tail_bytes =
          recovery_case ~dir ~txns:h ~ckpt_every:k
        in
        (k, recover_ms, replay_ms, tail_bytes))
      intervals
  in
  J.with_schema
    [ ("quick", J.Bool quick);
      ( "group_commit",
        J.Obj
          [ ("txns", J.num_of_int txns);
            ("grid", J.List (List.map cell_json cells));
            ("fsync_reduction_at_8", J.Num fsync_reduction_at_8) ] );
      ( "recovery",
        J.Obj
          [ ("checkpoint_cadence", J.num_of_int cadence);
            ( "by_history",
              J.List
                (List.map
                   (fun (h, recover_ms, replay_ms, tail_bytes) ->
                     J.Obj
                       [ ("history_txns", J.num_of_int h);
                         ("recover_ms", J.Num recover_ms);
                         ("full_replay_ms", J.Num replay_ms);
                         ("tail_bytes", J.num_of_int tail_bytes) ])
                   flat_cases) );
            ("recovery_tail_flatness", J.Num recovery_tail_flatness);
            ( "by_interval",
              J.List
                (List.map
                   (fun (k, recover_ms, replay_ms, tail_bytes) ->
                     J.Obj
                       [ ("checkpoint_every", J.num_of_int k);
                         ("recover_ms", J.Num recover_ms);
                         ("full_replay_ms", J.Num replay_ms);
                         ("tail_bytes", J.num_of_int tail_bytes) ])
                   interval_cases) ) ] ) ]

(* Structural gates: shape truths any healthy engine satisfies at any
   machine speed — the per-push CI check.  Magnitude regressions are the
   nightly baseline's job. *)
let gates report =
  let num keys =
    match Option.bind (J.path keys report) J.number with
    | Some f -> f
    | None -> nan
  in
  let problems = ref [] in
  let check cond msg = if not cond then problems := msg :: !problems in
  let reduction = num [ "group_commit"; "fsync_reduction_at_8" ] in
  check
    (reduction >= 4.)
    (Printf.sprintf
       "fsync_reduction_at_8 = %.2f: an 8-deep batch window must cut \
        fsyncs/commit at least 4x"
       reduction);
  let flatness = num [ "recovery"; "recovery_tail_flatness" ] in
  check
    (Float.is_finite flatness && flatness < 4.)
    (Printf.sprintf
       "recovery_tail_flatness = %.2f: checkpointed recovery time grew \
        with history length (should track the tail)"
       flatness);
  List.rev !problems
