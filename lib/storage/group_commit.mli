(** Group commit: the batching WAL writer of the durable engine.

    Transactions commit in memory immediately; their commit frames are
    queued and appended in batches, and one fsync then covers every
    queued commit — N transactions share a durability barrier instead
    of paying one each.  Per-transaction acknowledgments stay exact: a
    {!ticket} is {!acked} only after an fsync that covers its commit
    frame succeeded, and because an fsync is a barrier over the whole
    file, any later successful round also acks survivors of earlier
    failed ones.

    The pipeline crosses a named {!Fault.point} at every stage —
    [Batch_append] per frame, [Batch_fsync] per round, [Batch_ack] at
    delivery — so fault scripts address batching boundaries stably (the
    {!Fault} module documents why ordinals no longer work).  Transient
    fsync failures retry under {!Hdd_sim.Retry} with jittered
    exponential backoff; a give-up leaves the batch appended but
    unacknowledged, to be re-synced by a later round.  Livelock is
    surfaced through the [durable.fsync_livelocked] gauge.

    Flush triggers: the queue reaching [max_batch]; {!tick}s (one per
    engine operation — the logical-time form of a delay timer) reaching
    [max_delay]; or an explicit {!flush} (checkpoint cut, close).
    [max_delay = 0] degenerates to flush-per-commit. *)

type config = { max_batch : int; max_delay : int }

val default : config
(** [{ max_batch = 8; max_delay = 16 }]. *)

type ticket = private int
(** Submission order, 1-based.  Monotone: tickets ack in order. *)

type t

val create :
  ?faults:Fault.plan ->
  ?retry:Hdd_sim.Retry.policy ->
  ?rng:Hdd_util.Prng.t ->
  ?metrics:Hdd_obs.Metrics.t ->
  ?trace:Hdd_obs.Trace.t ->
  ?offset_of:(unit -> int) ->
  config:config ->
  Wal.t ->
  t
(** [faults] must be the same plan wrapping the WAL's sink, so logical
    points and byte-level events share one crash state.  [offset_of]
    reports the log length after an append (the plan's byte counter in
    fault runs); it is recorded per ticket for {!ack_offset}.  With
    [metrics], the pipeline maintains [durable.fsyncs],
    [durable.fsync_retries], [durable.fsync_giveups],
    [durable.batch_size] and the livelock gauge; with [trace], it emits
    [Sim] spans per batch and fsync round and a
    {!Hdd_obs.Trace.event.Durable_ack} per acknowledged commit.
    @raise Invalid_argument if [max_batch < 1] or [max_delay < 0]. *)

val submit : t -> txn:Txn.id -> at:Time.t -> Codec.record -> ticket
(** Queue a commit frame.  May flush (and therefore raise {!Fault.Crash}
    — fatal — or {!Fault.Io_error} — the append will be retried by a
    later flush) when the batch fills or [max_delay = 0]. *)

val tick : t -> unit
(** Advance the logical delay timer; flushes when the oldest queued (or
    unsynced) work is [max_delay] ticks old.  No-op when idle. *)

val flush : t -> unit
(** Append everything queued and run an fsync round if anything awaits
    one.  After a clean flush every submitted ticket is acked. *)

val acked : t -> ticket -> bool
val ack_offset : t -> ticket -> int option
(** Log length just after the ticket's commit frame was appended —
    the durability horizon a recovery must reach to contain it. *)

val unacked : t -> int
(** Tickets submitted but not yet acknowledged. *)

val fsyncs : t -> int
(** Successful fsync rounds — the denominator of fsyncs-per-commit. *)

val batches : t -> int
val sync_failures : t -> int

val synced_offset : t -> int
(** Log offset covered by the last successful fsync round — the durable
    horizon a log shipper may send from. *)

val livelocked : t -> bool
