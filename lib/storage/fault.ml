exception Crash of string
exception Io_error of string

type sink = {
  append : bytes -> unit;
  flush : unit -> unit;
  sync : unit -> unit;
  close : unit -> unit;
}

let file_sink ?(fsync = true) ~path () =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  { append = (fun b -> output_bytes oc b);
    flush = (fun () -> Stdlib.flush oc);
    sync =
      (fun () ->
        Stdlib.flush oc;
        if fsync then Unix.fsync fd);
    close = (fun () -> close_out oc (* flushes, closes the descriptor *)) }

type event =
  | Crash_after_frames of int
  | Crash_after_bytes of int
  | Torn_write of { frame : int; keep : int }
  | Bit_flip of { byte : int; bit : int }
  | Append_error of { frame : int }
  | Sync_error of { sync : int }

let pp_event ppf = function
  | Crash_after_frames n -> Format.fprintf ppf "crash-after-%d-frames" n
  | Crash_after_bytes n -> Format.fprintf ppf "crash-after-%d-bytes" n
  | Torn_write { frame; keep } ->
    Format.fprintf ppf "torn-write frame %d keep %d" frame keep
  | Bit_flip { byte; bit } ->
    Format.fprintf ppf "bit-flip byte %d bit %d" byte bit
  | Append_error { frame } -> Format.fprintf ppf "append-error frame %d" frame
  | Sync_error { sync } -> Format.fprintf ppf "sync-error sync %d" sync

type plan = {
  events : event list;
  mutable frames : int;
  mutable bytes : int;
  mutable sync_count : int;
  mutable is_crashed : bool;
  mutable fired_events : event list;
}

let plan events =
  { events; frames = 0; bytes = 0; sync_count = 0; is_crashed = false;
    fired_events = [] }

let crashed p = p.is_crashed
let fired p = p.fired_events
let bytes_appended p = p.bytes
let frames_appended p = p.frames
let syncs p = p.sync_count

let fire p ev = p.fired_events <- ev :: p.fired_events

(* the first not-yet-fired event satisfying [select] *)
let next_match p select =
  List.find_opt
    (fun ev -> select ev && not (List.mem ev p.fired_events))
    p.events

let apply p inner =
  let die msg =
    (* everything appended so far becomes the recoverable prefix *)
    p.is_crashed <- true;
    inner.flush ();
    raise (Crash msg)
  in
  let alive () =
    if p.is_crashed then raise (Crash "operation after simulated crash")
  in
  let append frame =
    alive ();
    let idx = p.frames in
    (match next_match p (function Append_error { frame = f } -> f = idx | _ -> false) with
    | Some ev ->
      fire p ev;
      raise (Io_error (Printf.sprintf "injected append error at frame %d" idx))
    | None -> ());
    let len = Bytes.length frame in
    let start = p.bytes in
    let frame =
      match
        List.filter
          (fun ev ->
            (match ev with
            | Bit_flip { byte; _ } -> byte >= start && byte < start + len
            | _ -> false)
            && not (List.mem ev p.fired_events))
          p.events
      with
      | [] -> frame
      | flips ->
        let b = Bytes.copy frame in
        List.iter
          (function
            | Bit_flip { byte; bit } as ev ->
              fire p ev;
              let off = byte - start in
              Bytes.set_uint8 b off
                (Bytes.get_uint8 b off lxor (1 lsl (bit land 7)))
            | _ -> ())
          flips;
        b
    in
    (match next_match p (function Torn_write { frame = f; _ } -> f = idx | _ -> false) with
    | Some (Torn_write { keep; _ } as ev) ->
      fire p ev;
      let keep = max 0 (min keep (len - 1)) in
      inner.append (Bytes.sub frame 0 keep);
      p.bytes <- start + keep;
      die (Printf.sprintf "torn write: frame %d cut to %d bytes" idx keep)
    | _ -> ());
    (match next_match p (function Crash_after_bytes n -> start + len >= n | _ -> false) with
    | Some (Crash_after_bytes n as ev) ->
      fire p ev;
      let keep = max 0 (min len (n - start)) in
      inner.append (Bytes.sub frame 0 keep);
      p.bytes <- start + keep;
      die (Printf.sprintf "crash after %d bytes" n)
    | _ -> ());
    inner.append frame;
    p.bytes <- start + len;
    p.frames <- p.frames + 1;
    match next_match p (function Crash_after_frames n -> p.frames >= n | _ -> false) with
    | Some ev ->
      fire p ev;
      die (Printf.sprintf "crash after %d frames" p.frames)
    | None -> ()
  in
  let flush () =
    alive ();
    inner.flush ()
  in
  let sync () =
    alive ();
    p.sync_count <- p.sync_count + 1;
    (match next_match p (function Sync_error { sync = s } -> s = p.sync_count | _ -> false) with
    | Some ev ->
      fire p ev;
      raise
        (Io_error (Printf.sprintf "injected fsync failure (sync %d)" p.sync_count))
    | None -> ());
    inner.sync ()
  in
  (* close must work even after a crash so tests can release descriptors *)
  { append; flush; sync; close = inner.close }
