exception Crash of string
exception Io_error of string

type sink = {
  append : bytes -> unit;
  flush : unit -> unit;
  sync : unit -> unit;
  close : unit -> unit;
}

let file_sink ?(fsync = true) ~path () =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  let oc = Unix.out_channel_of_descr fd in
  { append = (fun b -> output_bytes oc b);
    flush = (fun () -> Stdlib.flush oc);
    sync =
      (fun () ->
        Stdlib.flush oc;
        if fsync then Unix.fsync fd);
    close = (fun () -> close_out oc (* flushes, closes the descriptor *)) }

(* --- logical injection points --- *)

type point =
  | Batch_append of { batch : int; frame : int }
  | Batch_fsync of int
  | Batch_ack of int
  | Checkpoint_write of int
  | Checkpoint_rename of int
  | Manifest_write of int
  | Manifest_rename of int
  | Ship_send of int
  | Ship_apply of int

let kind = function
  | Batch_append _ -> "batch_append"
  | Batch_fsync _ -> "batch_fsync"
  | Batch_ack _ -> "batch_ack"
  | Checkpoint_write _ -> "checkpoint_write"
  | Checkpoint_rename _ -> "checkpoint_rename"
  | Manifest_write _ -> "manifest_write"
  | Manifest_rename _ -> "manifest_rename"
  | Ship_send _ -> "ship_send"
  | Ship_apply _ -> "ship_apply"

let kinds =
  [ "batch_append"; "batch_fsync"; "batch_ack"; "checkpoint_write";
    "checkpoint_rename"; "manifest_write"; "manifest_rename"; "ship_send";
    "ship_apply" ]

let pp_point ppf = function
  | Batch_append { batch; frame } ->
    Format.fprintf ppf "batch_append(%d,%d)" batch frame
  | Batch_fsync n -> Format.fprintf ppf "batch_fsync(%d)" n
  | Batch_ack n -> Format.fprintf ppf "batch_ack(%d)" n
  | Checkpoint_write n -> Format.fprintf ppf "checkpoint_write(%d)" n
  | Checkpoint_rename n -> Format.fprintf ppf "checkpoint_rename(%d)" n
  | Manifest_write n -> Format.fprintf ppf "manifest_write(%d)" n
  | Manifest_rename n -> Format.fprintf ppf "manifest_rename(%d)" n
  | Ship_send n -> Format.fprintf ppf "ship_send(%d)" n
  | Ship_apply n -> Format.fprintf ppf "ship_apply(%d)" n

type event =
  | Crash_after_frames of int
  | Crash_after_bytes of int
  | Torn_write of { frame : int; keep : int }
  | Bit_flip of { byte : int; bit : int }
  | Append_error of { frame : int }
  | Sync_error of { sync : int }
  | Crash_at of point
  | Error_at of point
  | Torn_at of { point : point; keep : int }
  | Corrupt_at of { point : point; byte : int; bit : int }

let pp_event ppf = function
  | Crash_after_frames n -> Format.fprintf ppf "crash-after-%d-frames" n
  | Crash_after_bytes n -> Format.fprintf ppf "crash-after-%d-bytes" n
  | Torn_write { frame; keep } ->
    Format.fprintf ppf "torn-write frame %d keep %d" frame keep
  | Bit_flip { byte; bit } ->
    Format.fprintf ppf "bit-flip byte %d bit %d" byte bit
  | Append_error { frame } -> Format.fprintf ppf "append-error frame %d" frame
  | Sync_error { sync } -> Format.fprintf ppf "sync-error sync %d" sync
  | Crash_at p -> Format.fprintf ppf "crash-at %a" pp_point p
  | Error_at p -> Format.fprintf ppf "error-at %a" pp_point p
  | Torn_at { point; keep } ->
    Format.fprintf ppf "torn-at %a keep %d" pp_point point keep
  | Corrupt_at { point; byte; bit } ->
    Format.fprintf ppf "corrupt-at %a byte %d bit %d" pp_point point byte bit

type plan = {
  events : event list;
  mutable frames : int;
  mutable bytes : int;
  mutable sync_count : int;
  mutable is_crashed : bool;
  mutable fired_events : event list;
  mutable reached_points : point list;
  mutable on_crash : (unit -> unit) list;
}

let plan events =
  { events; frames = 0; bytes = 0; sync_count = 0; is_crashed = false;
    fired_events = []; reached_points = []; on_crash = [] }

let crashed p = p.is_crashed
let fired p = p.fired_events
let reached p = p.reached_points
let bytes_appended p = p.bytes
let frames_appended p = p.frames
let syncs p = p.sync_count

let fire p ev = p.fired_events <- ev :: p.fired_events

(* the first not-yet-fired event satisfying [select] *)
let next_match p select =
  List.find_opt
    (fun ev -> select ev && not (List.mem ev p.fired_events))
    p.events

(* The one crash path: flush whatever every registered sink buffered (the
   appended prefix becomes the recoverable state), mark the plan dead,
   raise. *)
let crash_now p msg =
  p.is_crashed <- true;
  List.iter (fun f -> try f () with _ -> ()) p.on_crash;
  raise (Crash msg)

let alive p =
  if p.is_crashed then raise (Crash "operation after simulated crash")

let cross p pt =
  alive p;
  p.reached_points <- pt :: p.reached_points;
  (match next_match p (function Error_at q -> q = pt | _ -> false) with
  | Some ev ->
    fire p ev;
    raise
      (Io_error (Format.asprintf "injected transient error at %a" pp_point pt))
  | None -> ());
  match next_match p (function Crash_at q -> q = pt | _ -> false) with
  | Some ev ->
    fire p ev;
    crash_now p (Format.asprintf "crash at %a" pp_point pt)
  | None -> ()

let write_file path b =
  let oc = Out_channel.open_bin path in
  Out_channel.output_bytes oc b;
  Out_channel.close oc

let cross_write p pt ~path b =
  alive p;
  p.reached_points <- pt :: p.reached_points;
  (match next_match p (function Error_at q -> q = pt | _ -> false) with
  | Some ev ->
    fire p ev;
    raise
      (Io_error (Format.asprintf "injected transient error at %a" pp_point pt))
  | None -> ());
  (match next_match p (function Crash_at q -> q = pt | _ -> false) with
  | Some ev ->
    fire p ev;
    crash_now p (Format.asprintf "crash at %a" pp_point pt)
  | None -> ());
  (match
     next_match p (function Torn_at { point; _ } -> point = pt | _ -> false)
   with
  | Some (Torn_at { keep; _ } as ev) ->
    fire p ev;
    let keep = max 0 (min keep (Bytes.length b - 1)) in
    write_file path (Bytes.sub b 0 keep);
    crash_now p
      (Format.asprintf "torn write at %a: %d of %d bytes" pp_point pt keep
         (Bytes.length b))
  | _ -> ());
  let b =
    match
      List.filter
        (fun ev ->
          (match ev with
          | Corrupt_at { point; byte; _ } ->
            point = pt && byte >= 0 && byte < Bytes.length b
          | _ -> false)
          && not (List.mem ev p.fired_events))
        p.events
    with
    | [] -> b
    | flips ->
      let c = Bytes.copy b in
      List.iter
        (function
          | Corrupt_at { byte; bit; _ } as ev ->
            fire p ev;
            Bytes.set_uint8 c byte
              (Bytes.get_uint8 c byte lxor (1 lsl (bit land 7)))
          | _ -> ())
        flips;
      c
  in
  write_file path b

let apply p inner =
  p.on_crash <- inner.flush :: p.on_crash;
  let die msg =
    (* everything appended so far becomes the recoverable prefix *)
    crash_now p msg
  in
  let append frame =
    alive p;
    let idx = p.frames in
    (match next_match p (function Append_error { frame = f } -> f = idx | _ -> false) with
    | Some ev ->
      fire p ev;
      raise (Io_error (Printf.sprintf "injected append error at frame %d" idx))
    | None -> ());
    let len = Bytes.length frame in
    let start = p.bytes in
    let frame =
      match
        List.filter
          (fun ev ->
            (match ev with
            | Bit_flip { byte; _ } -> byte >= start && byte < start + len
            | _ -> false)
            && not (List.mem ev p.fired_events))
          p.events
      with
      | [] -> frame
      | flips ->
        let b = Bytes.copy frame in
        List.iter
          (function
            | Bit_flip { byte; bit } as ev ->
              fire p ev;
              let off = byte - start in
              Bytes.set_uint8 b off
                (Bytes.get_uint8 b off lxor (1 lsl (bit land 7)))
            | _ -> ())
          flips;
        b
    in
    (match next_match p (function Torn_write { frame = f; _ } -> f = idx | _ -> false) with
    | Some (Torn_write { keep; _ } as ev) ->
      fire p ev;
      let keep = max 0 (min keep (len - 1)) in
      inner.append (Bytes.sub frame 0 keep);
      p.bytes <- start + keep;
      die (Printf.sprintf "torn write: frame %d cut to %d bytes" idx keep)
    | _ -> ());
    (match next_match p (function Crash_after_bytes n -> start + len >= n | _ -> false) with
    | Some (Crash_after_bytes n as ev) ->
      fire p ev;
      let keep = max 0 (min len (n - start)) in
      inner.append (Bytes.sub frame 0 keep);
      p.bytes <- start + keep;
      die (Printf.sprintf "crash after %d bytes" n)
    | _ -> ());
    inner.append frame;
    p.bytes <- start + len;
    p.frames <- p.frames + 1;
    match next_match p (function Crash_after_frames n -> p.frames >= n | _ -> false) with
    | Some ev ->
      fire p ev;
      die (Printf.sprintf "crash after %d frames" p.frames)
    | None -> ()
  in
  let flush () =
    alive p;
    inner.flush ()
  in
  let sync () =
    alive p;
    p.sync_count <- p.sync_count + 1;
    (match next_match p (function Sync_error { sync = s } -> s = p.sync_count | _ -> false) with
    | Some ev ->
      fire p ev;
      raise
        (Io_error (Printf.sprintf "injected fsync failure (sync %d)" p.sync_count))
    | None -> ());
    inner.sync ()
  in
  (* close must work even after a crash so tests can release descriptors *)
  { append; flush; sync; close = inner.close }
