(** Checkpoints: consistent snapshots of the committed store, cut at a
    released time wall, that turn recovery from O(log) into O(tail).

    {b Walls as consistent prefixes.}  A released wall (clamped by the
    scheduler's watermark for in-flight activity) is a per-segment
    threshold vector [w] such that every transaction still running — or
    yet to begin — carries timestamps at or above it.  So the store cut
    at [w] by the {!Hdd_mvstore.Store.gc_wall} rule (newest committed
    version below [w.(i)] plus everything above), together with the
    engine's in-flight write table, is a pure function of the log
    prefix [0, log_offset): every record in the tail re-installs at or
    above [w], which is exactly what makes
    [load(checkpoint) + replay(tail) = cut(replay(whole log), w)] an
    equality and not an approximation — the checkpoint-equivalence
    invariant the torture harness checks.

    {b File discipline.}  The data file ([<log>.ckpt.<seq>], JSON) is
    written to a temp file, checksummed (CRC-32, the {!Codec}
    polynomial), and renamed into place; then the manifest
    ([<log>.manifest], JSON, newest entry first) is rewritten the same
    way.  A crash between the two leaves the old manifest pointing at
    old checkpoints — never at a half-written file.  {!best} verifies
    length and checksum and falls back entry by entry (and finally to
    full replay) on any damage.  All four steps cross {!Fault.point}s
    ([Checkpoint_write]/[Checkpoint_rename]/[Manifest_write]/
    [Manifest_rename]) so torture scripts can kill or corrupt each. *)

type meta = {
  seq : int;  (** strictly increasing per log *)
  file : string;  (** data file basename, relative to the log's directory *)
  log_offset : int;  (** replay the log from this byte *)
  wall : Time.t array;  (** the cut vector *)
  last_time : Time.t;  (** clock upper bound at the cut *)
  crc : int;  (** CRC-32 of the data file *)
  bytes : int;  (** length of the data file *)
}

val manifest_path : log:string -> string
val data_path : log:string -> seq:int -> string

val keep_checkpoints : int
(** Manifest entries retained (older data files are pruned). *)

val read_manifest : log:string -> meta list
(** Newest first.  A missing or unparseable manifest reads as empty —
    recovery then falls back to full replay. *)

val write :
  ?faults:Fault.plan ->
  log:string ->
  seq:int ->
  log_offset:int ->
  wall:Time.t array ->
  last_time:Time.t ->
  committed:int ->
  aborted:int ->
  versions:(Granule.t * (Time.t * int) list) list ->
  pending:(Txn.id * int * Time.t * (Granule.t * Time.t * int) list) list ->
  unit ->
  meta
(** Write checkpoint [seq]: data file (temp + checksum + rename), then
    the pruned manifest (temp + rename).  [versions] is the wall-cut
    committed dump ({!Hdd_mvstore.Store.dump_at_wall}); [pending] the
    engine's in-flight table ({!Replay.pending_dump}).
    @raise Fault.Crash or {!Fault.Io_error} from a scripted fault at any
    of the four points; the transient case leaves no manifest entry, so
    the checkpoint simply didn't happen. *)

val best :
  ?trace:Hdd_obs.Trace.t ->
  log:string ->
  segments:int ->
  init:(Granule.t -> int) ->
  unit ->
  (Replay.t * meta) option
(** Load the newest manifest entry whose data file exists, has the
    recorded length and checksum, and parses — falling back to older
    entries on damage; [None] when nothing valid remains.  The returned
    replay state holds the cut store, counters, last_time and the
    restored in-flight table, ready for tail replay. *)

val latest_seq : log:string -> int
(** Newest manifest sequence number; 0 when no manifest. *)
