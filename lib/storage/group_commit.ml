module Retry = Hdd_sim.Retry
module Metrics = Hdd_obs.Metrics
module Trace = Hdd_obs.Trace
module Prng = Hdd_util.Prng

type config = { max_batch : int; max_delay : int }

let default = { max_batch = 8; max_delay = 16 }

type ticket = int

type entry = { ticket : ticket; txn : Txn.id; at : Time.t; record : Codec.record }

type t = {
  wal : Wal.t;
  config : config;
  faults : Fault.plan option;
  retry : Retry.policy;
  rng : Prng.t;
  rmon : Retry.monitor;
  trace : Trace.t option;
  offset_of : unit -> int;
  mutable buf : entry list;  (** newest first *)
  mutable unsynced : entry list;  (** appended, awaiting fsync; newest first *)
  mutable submitted : int;
  mutable acked_upto : ticket;
  mutable age : int;  (** ticks since the oldest unflushed submission *)
  mutable batches : int;  (** append phases run *)
  mutable sync_rounds : int;  (** fsync attempts started (the point index) *)
  mutable fsyncs : int;  (** fsyncs that succeeded *)
  mutable sync_failures : int;
  mutable synced_offset : int;  (** log offset covered by the last fsync *)
  ack_offsets : (ticket, int) Hashtbl.t;
  (* metric refs, resolved once *)
  m_fsyncs : Metrics.counter option;
  m_retries : Metrics.counter option;
  m_giveups : Metrics.counter option;
  m_batch_hist : Metrics.histogram option;
  m_livelocked : Metrics.gauge option;
}

let create ?faults ?(retry = Retry.default) ?(rng = Prng.create 0x6702)
    ?metrics ?trace ?(offset_of = fun () -> 0) ~config wal =
  if config.max_batch < 1 then invalid_arg "Group_commit: max_batch must be >= 1";
  if config.max_delay < 0 then invalid_arg "Group_commit: max_delay must be >= 0";
  let m f = Option.map f metrics in
  { wal; config; faults; retry; rng; rmon = Retry.monitor retry; trace;
    offset_of; buf = []; unsynced = []; submitted = 0; acked_upto = 0;
    age = 0; batches = 0; sync_rounds = 0; fsyncs = 0; sync_failures = 0;
    synced_offset = 0; ack_offsets = Hashtbl.create 64;
    m_fsyncs = m (fun t -> Metrics.counter t "durable.fsyncs");
    m_retries = m (fun t -> Metrics.counter t "durable.fsync_retries");
    m_giveups = m (fun t -> Metrics.counter t "durable.fsync_giveups");
    m_batch_hist = m (fun t -> Metrics.histogram t "durable.batch_size");
    m_livelocked = m (fun t -> Metrics.gauge t "durable.fsync_livelocked") }

let cross t pt = match t.faults with Some p -> Fault.cross p pt | None -> ()

let count f = function Some c -> f c | None -> ()

let acked t k = k > 0 && k <= t.acked_upto
let ack_offset t k = Hashtbl.find_opt t.ack_offsets k
let unacked t = t.submitted - t.acked_upto
let fsyncs t = t.fsyncs
let batches t = t.batches
let sync_failures t = t.sync_failures
let synced_offset t = t.synced_offset
let livelocked t = Retry.livelocked t.rmon

(* Append the buffered commit frames (oldest first), each crossing its
   Batch_append point.  A transient append error leaves the failed entry
   and everything younger buffered for the next round. *)
let append_buffered t =
  match t.buf with
  | [] -> ()
  | buf ->
    t.batches <- t.batches + 1;
    let batch = t.batches in
    (match t.trace with
    | Some tr -> Trace.emit_here tr (Trace.Sim { label = "durable.batch"; txn = batch })
    | None -> ());
    let entries = List.rev buf in
    let n = List.length entries in
    count (fun h -> Metrics.observe h (float_of_int n)) t.m_batch_hist;
    List.iteri
      (fun frame e ->
        match
          cross t (Fault.Batch_append { batch; frame });
          Wal.append t.wal e.record
        with
        | () ->
          Hashtbl.replace t.ack_offsets e.ticket (t.offset_of ());
          t.unsynced <- e :: t.unsynced;
          t.buf <- List.filter (fun e' -> e'.ticket <> e.ticket) t.buf
        | exception Fault.Io_error _ ->
          (* failed entry and everything younger stay buffered *)
          ())
      entries

(* Acks ride behind the fsync.  A transient fault at the ack point only
   delays delivery: the entries stay queued and the next successful
   round re-delivers them — durability is a fact about the file, the
   ack merely reports it. *)
let deliver_acks t round =
  cross t (Fault.Batch_ack round);
  List.iter
    (fun e ->
      if e.ticket > t.acked_upto then t.acked_upto <- e.ticket;
      match t.trace with
      | Some tr ->
        Trace.emit tr ~at:e.at (Trace.Durable_ack { txn = e.txn; at = e.at })
      | None -> ())
    (List.rev t.unsynced);
  t.unsynced <- []

(* One fsync round over everything appended so far, with jittered
   exponential backoff on transient failures.  A successful fsync covers
   the whole file, so it acks every appended-but-unacked entry —
   including survivors of earlier failed rounds. *)
let sync_round t =
  t.sync_rounds <- t.sync_rounds + 1;
  let round = t.sync_rounds in
  let result =
    Retry.run t.retry t.rng ~monitor:t.rmon
      ~on_backoff:(fun ~attempt:_ ~delay:_ ->
        t.sync_failures <- t.sync_failures + 1;
        count Metrics.incr t.m_retries)
      ~transient:(function Fault.Io_error _ -> true | _ -> false)
      (fun () ->
        cross t (Fault.Batch_fsync round);
        Wal.sync t.wal)
  in
  count (fun g -> Metrics.set g (if livelocked t then 1. else 0.)) t.m_livelocked;
  match result with
  | Ok () ->
    t.fsyncs <- t.fsyncs + 1;
    t.synced_offset <- t.offset_of ();
    count Metrics.incr t.m_fsyncs;
    (match t.trace with
    | Some tr ->
      Trace.emit_here tr (Trace.Sim { label = "durable.fsync"; txn = round })
    | None -> ());
    (try deliver_acks t round with Fault.Io_error _ -> ())
  | Error _ ->
    t.sync_failures <- t.sync_failures + 1;
    count Metrics.incr t.m_giveups

let flush t =
  append_buffered t;
  if t.unsynced <> [] then sync_round t;
  if t.buf = [] then t.age <- 0

let submit t ~txn ~at record =
  t.submitted <- t.submitted + 1;
  let ticket = t.submitted in
  t.buf <- { ticket; txn; at; record } :: t.buf;
  if List.length t.buf >= t.config.max_batch || t.config.max_delay = 0 then
    flush t;
  ticket

let tick t =
  if t.buf <> [] || t.unsynced <> [] then begin
    t.age <- t.age + 1;
    if t.age >= t.config.max_delay then flush t
  end
