type record =
  | Begin of { txn : Txn.id; class_id : int; init : Time.t }
  | Write of { txn : Txn.id; granule : Granule.t; ts : Time.t; value : int }
  | Commit of { txn : Txn.id; at : Time.t }
  | Abort of { txn : Txn.id; at : Time.t }
  | Wall of { released_at : Time.t; components : Time.t array }

let equal_record a b = a = b

let pp_record ppf = function
  | Begin { txn; class_id; init } ->
    Format.fprintf ppf "begin t%d T%d @%d" txn class_id init
  | Write { txn; granule; ts; value } ->
    Format.fprintf ppf "write t%d %a^%d=%d" txn Granule.pp granule ts value
  | Commit { txn; at } -> Format.fprintf ppf "commit t%d @%d" txn at
  | Abort { txn; at } -> Format.fprintf ppf "abort t%d @%d" txn at
  | Wall { released_at; components } ->
    Format.fprintf ppf "wall @%d [%s]" released_at
      (String.concat ","
         (Array.to_list (Array.map string_of_int components)))

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 bytes =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  Bytes.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    bytes;
  !c lxor 0xFFFFFFFF

(* payload layout: 1-byte tag, then 8-byte little-endian signed ints.
   Wall is count-prefixed: released_at, n, then n components. *)
let tag = function
  | Begin _ -> 1
  | Write _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Wall _ -> 5

let fields = function
  | Begin { txn; class_id; init } -> [ txn; class_id; init ]
  | Write { txn; granule; ts; value } ->
    [ txn; granule.Granule.segment; granule.Granule.key; ts; value ]
  | Commit { txn; at } | Abort { txn; at } -> [ txn; at ]
  | Wall { released_at; components } ->
    released_at :: Array.length components :: Array.to_list components

let encode r =
  let fs = fields r in
  let payload = Bytes.create (1 + (8 * List.length fs)) in
  Bytes.set_uint8 payload 0 (tag r);
  List.iteri
    (fun i v -> Bytes.set_int64_le payload (1 + (8 * i)) (Int64.of_int v))
    fs;
  let frame = Bytes.create (8 + Bytes.length payload) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length payload));
  Bytes.set_int32_le frame 4 (Int32.of_int (crc32 payload));
  Bytes.blit payload 0 frame 8 (Bytes.length payload);
  frame

let decode buf ~pos =
  let len = Bytes.length buf in
  if pos + 8 > len then Error `Truncated
  else
    let plen = Int32.to_int (Bytes.get_int32_le buf pos) in
    let crc = Int32.to_int (Bytes.get_int32_le buf (pos + 4)) land 0xFFFFFFFF in
    if plen <= 0 || plen > 1 lsl 20 then Error `Corrupt
    else if pos + 8 + plen > len then Error `Truncated
    else
      let payload = Bytes.sub buf (pos + 8) plen in
      if crc32 payload <> crc then Error `Corrupt
      else
        let field i = Int64.to_int (Bytes.get_int64_le payload (1 + (8 * i))) in
        let expect n = plen = 1 + (8 * n) in
        let next = pos + 8 + plen in
        match Bytes.get_uint8 payload 0 with
        | 1 when expect 3 ->
          Ok (Begin { txn = field 0; class_id = field 1; init = field 2 }, next)
        | 2 when expect 5 ->
          Ok
            ( Write
                { txn = field 0;
                  granule =
                    Granule.make ~segment:(field 1) ~key:(field 2);
                  ts = field 3;
                  value = field 4 },
              next )
        | 3 when expect 2 -> Ok (Commit { txn = field 0; at = field 1 }, next)
        | 4 when expect 2 -> Ok (Abort { txn = field 0; at = field 1 }, next)
        | 5 when plen >= 1 + (8 * 2) ->
          let n = field 1 in
          if n < 0 || not (expect (2 + n)) then Error `Corrupt
          else
            Ok
              ( Wall
                  { released_at = field 0;
                    components = Array.init n (fun i -> field (2 + i)) },
                next )
        | _ -> Error `Corrupt
