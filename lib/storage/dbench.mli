(** The durable-engine benchmark behind [hdd_cli bench --durable] and
    [BENCH_durable.json].

    Two families of measurements, both against the real file sink (every
    fsync is a real [fsync(2)]):

    - {b Group commit}: a closed-loop single-write committer over the
      [max_batch x max_delay] knob grid (plus the sync-per-commit
      baseline, reported as [max_batch = 0]), measuring throughput,
      fsyncs per commit and the submit-to-acknowledged latency
      distribution (p50/p99).  Headline: [fsync_reduction_at_8], the
      factor by which an 8-deep batch window cuts fsyncs per commit
      against sync-per-commit.
    - {b Recovery}: logs built at several history lengths under a fixed
      checkpoint cadence — manifest recovery must track the {e tail},
      not the history ([recovery_tail_flatness], the ratio of the
      largest history's recovery time to the smallest's) — and at a
      fixed history under several checkpoint intervals, reporting
      recovery time against full-log replay.

    {!gates} checks the structural truths (reduction at least 4x,
    flatness bounded) that hold at any machine speed; magnitude
    regressions are gated nightly against the committed baseline. *)

val run : ?quick:bool -> ?dir:string -> unit -> Hdd_benchkit.Jsonlite.t
(** Run the full matrix ([quick] shrinks workloads roughly 6x for
    per-push CI) using scratch files under [dir] (default the system
    temp directory; the files are removed afterwards). *)

val gates : Hdd_benchkit.Jsonlite.t -> string list
(** Structural-gate failures in a {!run} report; empty means healthy. *)
