(** Deterministic fault injection for the durable storage layer.

    A {!sink} is the byte-level append interface the {!Wal} writes
    through.  The production path is {!file_sink} — plain append-only
    file I/O, exactly what the WAL did before the sink existed.  Tests
    and the {!Torture} harness wrap any sink with {!apply} and a
    scripted {!plan} of faults: simulated crashes after a byte or frame
    count, torn final writes, silent bit flips, transient append errors
    and fsync failures.  All fault logic lives in the wrapper, so the
    hot path carries no test hooks.

    {b Logical injection points.}  Batching made raw ordinals (frame
    index, byte offset) unstable addresses: the same script byte lands
    in a different operation depending on the group-commit knobs.  So
    the pipeline stages of the durable engine — batch append, batch
    fsync, ack delivery, checkpoint data/manifest write and rename, log
    shipping send/apply — each cross a named {!point}.  A script
    targets a point with {!event.Crash_at} / {!event.Error_at} /
    {!event.Torn_at} / {!event.Corrupt_at}, and the plan records every
    point reached so a harness can assert exhaustive coverage against
    {!kinds}.

    {b Crash model.}  {!Crash} simulates the machine dying at a chosen
    point in the append stream.  Everything appended before the crash
    point is flushed to the file — recovery will see exactly that
    prefix — and nothing after it is ever written; once crashed, every
    operation except {!sink.close} raises {!Crash} again.  Loss of
    OS-buffered bytes is expressed by scripting an earlier crash point,
    so the one model covers both torn appends and lost buffers while
    staying fully deterministic.  Crashes raised at logical points obey
    the same model: every sink registered with {!apply} on the plan is
    flushed before the exception propagates. *)

exception Crash of string
(** The simulated machine died.  The sink's file holds exactly the bytes
    appended before the crash point; the handle is unusable except for
    {!sink.close}. *)

exception Io_error of string
(** A transient I/O failure: the operation did not happen and the sink
    remains usable.  Callers treat it like a failed syscall — abort the
    affected transaction, retry with backoff, or give the operation up. *)

type sink = {
  append : bytes -> unit;  (** append one encoded frame *)
  flush : unit -> unit;  (** push buffered bytes to the OS *)
  sync : unit -> unit;  (** durability barrier (flush, then fsync) *)
  close : unit -> unit;  (** release resources; never injects faults *)
}

val file_sink : ?fsync:bool -> path:string -> unit -> sink
(** The production sink: open [path] for appending (creating it if
    needed) with the same flags the WAL always used.  [fsync] (default
    true) set to false turns {!sink.sync} into a plain flush — torture
    runs use it because under the simulated crash model the flush
    boundary {e is} the durability boundary, and skipping thousands of
    real fsyncs keeps 500-cycle runs fast.
    @raise Sys_error on an unwritable path. *)

(** A logical operation in the durable pipeline — the stable address a
    fault script targets.  Indexes identify the operation instance, not
    a byte position: batches and fsync rounds are numbered 1-based in
    execution order, checkpoints by their manifest sequence number,
    ships 1-based per shipper. *)
type point =
  | Batch_append of { batch : int; frame : int }
      (** appending frame [frame] (0-based) of commit batch [batch] *)
  | Batch_fsync of int  (** the [n]-th fsync round of the group pipeline *)
  | Batch_ack of int  (** delivering durability acks after fsync round [n] *)
  | Checkpoint_write of int  (** writing the temp data file of checkpoint [seq] *)
  | Checkpoint_rename of int  (** renaming checkpoint [seq] into place *)
  | Manifest_write of int  (** writing the temp manifest after checkpoint [seq] *)
  | Manifest_rename of int  (** renaming the manifest after checkpoint [seq] *)
  | Ship_send of int  (** sending ship batch [n] to the replica *)
  | Ship_apply of int  (** the replica applying ship batch [n] *)

val kind : point -> string
(** The point's kind name, e.g. ["batch_fsync"] — the coverage unit. *)

val kinds : string list
(** Every point kind, one per constructor of {!point}.  The torture
    harness asserts its runs reached (and fired faults at) all of them. *)

val pp_point : Format.formatter -> point -> unit

(** One scripted fault.  Frame indexes are 0-based positions in the
    append stream; byte offsets are absolute positions in the log file;
    points are logical operations.  Each event fires at most once. *)
type event =
  | Crash_after_frames of int
      (** crash at the end of the append that completes this many
          frames: the frame is on disk, but the appender never hears the
          acknowledgement *)
  | Crash_after_bytes of int
      (** bytes at offsets [>= n] never reach the file; the append that
          crosses the boundary is cut short and the crash fires — a torn
          tail at an arbitrary byte *)
  | Torn_write of { frame : int; keep : int }
      (** the append of frame [frame] writes only its first [keep] bytes
          (clamped to at most the frame length - 1) and then crashes *)
  | Bit_flip of { byte : int; bit : int }
      (** flip bit [bit land 7] of the byte at absolute offset [byte] as
          it is appended — silent corruption, no error is raised *)
  | Append_error of { frame : int }
      (** the append of frame [frame] raises {!Io_error} once, writing
          nothing; a retried append of the same frame index succeeds *)
  | Sync_error of { sync : int }
      (** the [sync]-th call to {!sink.sync} (1-based) raises
          {!Io_error} before reaching the inner sink *)
  | Crash_at of point
      (** crash when the pipeline crosses [point]: nothing of the
          operation at the point happens, appended bytes stay durable *)
  | Error_at of point
      (** crossing [point] raises {!Io_error} once; the operation did
          not happen and may be retried *)
  | Torn_at of { point : point; keep : int }
      (** a {!cross_write} at [point] writes only the first [keep] bytes
          of its payload and crashes — a torn checkpoint or manifest *)
  | Corrupt_at of { point : point; byte : int; bit : int }
      (** flip bit [bit land 7] of byte [byte] of the payload written at
          [point] — silent file corruption, no error *)

val pp_event : Format.formatter -> event -> unit

type plan
(** A mutable fault script: the events plus counters of frames, bytes
    and syncs seen so far, which events have fired, and which logical
    points were reached. *)

val plan : event list -> plan

val apply : plan -> sink -> sink
(** Wrap a sink so the plan's faults fire at their scripted points.  The
    wrapper counts every frame and byte that reaches the inner sink;
    wrapping with an empty plan is the identity plus counters.  The
    inner sink's [flush] is also registered on the plan, so a crash
    raised at a logical point ({!cross}, {!cross_write}) flushes the
    appended prefix exactly like a crash raised inside the sink. *)

val cross : plan -> point -> unit
(** Record that the pipeline reached [point] and fire any scripted
    {!event.Error_at} / {!event.Crash_at} targeting it.  Call it
    immediately {e before} performing the operation the point names, so
    a crash means the operation never happened.
    @raise Io_error on a scripted transient fault
    @raise Crash on a scripted crash, or when the plan already crashed *)

val cross_write : plan -> point -> path:string -> bytes -> unit
(** A whole-file write (checkpoint data, manifest) routed through the
    fault plan: crossing [point] can fail transiently ({!event.Error_at};
    nothing written), crash before writing ({!event.Crash_at}), write a
    torn prefix and crash ({!event.Torn_at}), or silently corrupt
    payload bytes ({!event.Corrupt_at}).  With no matching event the
    payload is written to [path] whole. *)

val crashed : plan -> bool
(** Has a crash event fired? *)

val fired : plan -> event list
(** Events that have fired, most recent first. *)

val reached : plan -> point list
(** Logical points crossed, most recent first (faulted or not). *)

val bytes_appended : plan -> int
(** Bytes that reached the inner sink (the on-disk length, for an
    initially empty file). *)

val frames_appended : plan -> int
(** Frames fully appended through the wrapper. *)

val syncs : plan -> int
