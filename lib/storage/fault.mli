(** Deterministic fault injection for the durable storage layer.

    A {!sink} is the byte-level append interface the {!Wal} writes
    through.  The production path is {!file_sink} — plain append-only
    file I/O, exactly what the WAL did before the sink existed.  Tests
    and the {!Torture} harness wrap any sink with {!apply} and a
    scripted {!plan} of faults: simulated crashes after a byte or frame
    count, torn final writes, silent bit flips, transient append errors
    and fsync failures.  All fault logic lives in the wrapper, so the
    hot path carries no test hooks.

    {b Crash model.}  {!Crash} simulates the machine dying at a chosen
    point in the append stream.  Everything appended before the crash
    point is flushed to the file — recovery will see exactly that
    prefix — and nothing after it is ever written; once crashed, every
    operation except {!sink.close} raises {!Crash} again.  Loss of
    OS-buffered bytes is expressed by scripting an earlier crash point,
    so the one model covers both torn appends and lost buffers while
    staying fully deterministic. *)

exception Crash of string
(** The simulated machine died.  The sink's file holds exactly the bytes
    appended before the crash point; the handle is unusable except for
    {!sink.close}. *)

exception Io_error of string
(** A transient I/O failure: the operation did not happen and the sink
    remains usable.  Callers treat it like a failed syscall — abort the
    affected transaction, or give the operation up. *)

type sink = {
  append : bytes -> unit;  (** append one encoded frame *)
  flush : unit -> unit;  (** push buffered bytes to the OS *)
  sync : unit -> unit;  (** durability barrier (flush, then fsync) *)
  close : unit -> unit;  (** release resources; never injects faults *)
}

val file_sink : ?fsync:bool -> path:string -> unit -> sink
(** The production sink: open [path] for appending (creating it if
    needed) with the same flags the WAL always used.  [fsync] (default
    true) set to false turns {!sink.sync} into a plain flush — torture
    runs use it because under the simulated crash model the flush
    boundary {e is} the durability boundary, and skipping thousands of
    real fsyncs keeps 500-cycle runs fast.
    @raise Sys_error on an unwritable path. *)

(** One scripted fault.  Frame indexes are 0-based positions in the
    append stream; byte offsets are absolute positions in the log file.
    Each event fires at most once. *)
type event =
  | Crash_after_frames of int
      (** crash at the end of the append that completes this many
          frames: the frame is on disk, but the appender never hears the
          acknowledgement *)
  | Crash_after_bytes of int
      (** bytes at offsets [>= n] never reach the file; the append that
          crosses the boundary is cut short and the crash fires — a torn
          tail at an arbitrary byte *)
  | Torn_write of { frame : int; keep : int }
      (** the append of frame [frame] writes only its first [keep] bytes
          (clamped to at most the frame length - 1) and then crashes *)
  | Bit_flip of { byte : int; bit : int }
      (** flip bit [bit land 7] of the byte at absolute offset [byte] as
          it is appended — silent corruption, no error is raised *)
  | Append_error of { frame : int }
      (** the append of frame [frame] raises {!Io_error} once, writing
          nothing; a retried append of the same frame index succeeds *)
  | Sync_error of { sync : int }
      (** the [sync]-th call to {!sink.sync} (1-based) raises
          {!Io_error} before reaching the inner sink *)

val pp_event : Format.formatter -> event -> unit

type plan
(** A mutable fault script: the events plus counters of frames, bytes
    and syncs seen so far, and which events have fired. *)

val plan : event list -> plan

val apply : plan -> sink -> sink
(** Wrap a sink so the plan's faults fire at their scripted points.  The
    wrapper counts every frame and byte that reaches the inner sink;
    wrapping with an empty plan is the identity plus counters. *)

val crashed : plan -> bool
(** Has a crash event fired? *)

val fired : plan -> event list
(** Events that have fired, most recent first. *)

val bytes_appended : plan -> int
(** Bytes that reached the inner sink (the on-disk length, for an
    initially empty file). *)

val frames_appended : plan -> int
(** Frames fully appended through the wrapper. *)

val syncs : plan -> int
