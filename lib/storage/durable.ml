module Scheduler = Hdd_core.Scheduler
module Partition = Hdd_core.Partition
module Outcome = Hdd_core.Outcome
module Store = Hdd_mvstore.Store

type t = {
  mutable wal : Wal.t;
  sched : int Scheduler.t;
  store : int Store.t;
  partition : Partition.t;
  sync_on_commit : bool;
  mutable in_flight : int;  (** update transactions begun and unfinished *)
}

type recovered = {
  store : int Store.t;
  last_time : Time.t;
  committed : int;
  aborted : int;
  lost_uncommitted : int;
  log_intact : bool;
  valid_bytes : int;
}

let build ?(sync_on_commit = false) ?sink ?log ?trace ~path ~partition ~clock
    ~store () =
  let sched = Scheduler.create ?log ?trace ~partition ~clock ~store () in
  { wal = Wal.create ?sink ~path (); sched; store; partition; sync_on_commit;
    in_flight = 0 }

let create ?sync_on_commit ?sink ?log ?trace ~path ~partition () =
  let clock = Time.Clock.create () in
  let store =
    Store.create ~segments:(Partition.segment_count partition)
      ~init:(fun _ -> 0)
  in
  build ?sync_on_commit ?sink ?log ?trace ~path ~partition ~clock ~store ()

let recover ~path ~segments ~init =
  let { Wal.records; complete; bytes_read } = Wal.read_all ~path in
  let store = Store.create ~segments ~init in
  (* redo-only replay: buffer each transaction's writes, install them at
     its commit record; txn ids may recur across sessions, so buffers are
     cleared at every commit/abort *)
  let pending : (Txn.id, (Granule.t * Time.t * int) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let last_time = ref Time.zero in
  let committed = ref 0 in
  let aborted = ref 0 in
  let see t = if t > !last_time then last_time := t in
  List.iter
    (fun (r : Codec.record) ->
      match r with
      | Codec.Begin { init; txn; _ } ->
        see init;
        Hashtbl.replace pending txn []
      | Codec.Write { txn; granule; ts; value } ->
        see ts;
        let buf =
          match Hashtbl.find_opt pending txn with Some b -> b | None -> []
        in
        Hashtbl.replace pending txn ((granule, ts, value) :: buf)
      | Codec.Commit { txn; at } ->
        see at;
        (match Hashtbl.find_opt pending txn with
        | None -> ()
        | Some writes ->
          List.iter
            (fun (granule, ts, value) ->
              (* the last write of a granule within a transaction wins;
                 writes were buffered newest-first, so install the first
                 occurrence of each granule *)
              match Store.committed_before store granule ~ts:(ts + 1) with
              | Some v when v.Hdd_mvstore.Chain.ts = ts -> ()
              | _ ->
                ignore (Store.install store granule ~ts ~writer:txn ~value);
                Store.commit_version store granule ~ts)
            writes;
          Hashtbl.remove pending txn);
        incr committed
      | Codec.Abort { txn; at } ->
        see at;
        Hashtbl.remove pending txn;
        incr aborted)
    records;
  { store;
    last_time = !last_time;
    committed = !committed;
    aborted = !aborted;
    lost_uncommitted = Hashtbl.length pending;
    log_intact = complete;
    valid_bytes = bytes_read }

let of_recovery ?sync_on_commit ?sink ?log ?trace ~path ~partition recovered =
  (* A torn or corrupt tail is dead bytes: recovery already ignores it,
     but appending after it would put every future record beyond the
     reach of the next recovery (replay stops at the first bad frame).
     Cut the log back to the intact prefix before reopening. *)
  if
    Sys.file_exists path
    && (Unix.stat path).Unix.st_size > recovered.valid_bytes
  then Unix.truncate path recovered.valid_bytes;
  let clock = Time.Clock.create () in
  Time.Clock.catch_up clock recovered.last_time;
  build ?sync_on_commit ?sink ?log ?trace ~path ~partition ~clock
    ~store:recovered.store ()

let scheduler t = t.sched

(* If the Begin record cannot be logged the transaction must not exist:
   roll the scheduler back before re-raising, so a transient append
   failure leaves no half-begun transaction behind. *)
let log_begin t txn record =
  (try Wal.append t.wal record
   with e ->
     (try Scheduler.abort t.sched txn with _ -> ());
     raise e);
  t.in_flight <- t.in_flight + 1;
  txn

let begin_update t ~class_id =
  let txn = Scheduler.begin_update t.sched ~class_id in
  log_begin t txn
    (Codec.Begin { txn = txn.Txn.id; class_id; init = txn.Txn.init })

let begin_adhoc_update t ~writes ~reads =
  let txn = Scheduler.begin_adhoc_update t.sched ~writes ~reads in
  log_begin t txn
    (Codec.Begin
       { txn = txn.Txn.id; class_id = List.hd (List.sort compare writes);
         init = txn.Txn.init })

let begin_read_only t = Scheduler.begin_read_only t.sched

let read t txn g = Scheduler.read t.sched txn g

let write t txn g value =
  match Scheduler.write t.sched txn g value with
  | Outcome.Granted () as ok ->
    Wal.append t.wal
      (Codec.Write
         { txn = txn.Txn.id; granule = g; ts = txn.Txn.init; value });
    ok
  | (Outcome.Blocked _ | Outcome.Rejected _) as other -> other

let commit t txn =
  Scheduler.commit t.sched txn;
  let at =
    match Txn.end_time txn with Some at -> at | None -> assert false
  in
  if Txn.is_update txn then begin
    Wal.append t.wal (Codec.Commit { txn = txn.Txn.id; at });
    if t.sync_on_commit then Wal.sync t.wal else Wal.flush t.wal;
    t.in_flight <- t.in_flight - 1
  end

let abort t txn =
  Scheduler.abort t.sched txn;
  if Txn.is_update txn then begin
    Wal.append t.wal
      (Codec.Abort
         { txn = txn.Txn.id;
           at = (match Txn.end_time txn with Some a -> a | None -> 0) });
    t.in_flight <- t.in_flight - 1
  end

let close t = Wal.close t.wal

let in_flight t = t.in_flight

(* Compact the log to the latest committed version of every granule, as
   one synthetic transaction (id 0), written to a side file and renamed
   over the log. *)
let checkpoint t =
  if t.in_flight > 0 then
    failwith "Durable.checkpoint: update transactions in flight";
  let side = Wal.path t.wal ^ ".ckpt" in
  if Sys.file_exists side then Sys.remove side;
  let snapshot = Wal.create ~path:side () in
  let latest = ref Time.zero in
  let versions = ref [] in
  for seg = 0 to Store.segment_count t.store - 1 do
    let segment = Store.segment t.store seg in
    List.iter
      (fun key ->
        match
          Hdd_mvstore.Achain.latest_committed
            (Hdd_mvstore.Segment.chain segment key)
        with
        | Some v when v.Hdd_mvstore.Chain.ts > Time.zero ->
          (* bootstrap versions (ts 0) come back through [init] *)
          if v.Hdd_mvstore.Chain.ts > !latest then
            latest := v.Hdd_mvstore.Chain.ts;
          versions :=
            (Granule.make ~segment:seg ~key, v.Hdd_mvstore.Chain.ts,
             v.Hdd_mvstore.Chain.value)
            :: !versions
        | _ -> ())
      (Hdd_mvstore.Segment.keys segment)
  done;
  Wal.append snapshot (Codec.Begin { txn = 0; class_id = 0; init = !latest });
  List.iter
    (fun (granule, ts, value) ->
      Wal.append snapshot (Codec.Write { txn = 0; granule; ts; value }))
    !versions;
  Wal.append snapshot (Codec.Commit { txn = 0; at = !latest });
  Wal.sync snapshot;
  Wal.close snapshot;
  let path = Wal.path t.wal in
  Wal.close t.wal;
  Sys.rename side path;
  t.wal <- Wal.create ~path ()
