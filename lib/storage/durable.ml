module Scheduler = Hdd_core.Scheduler
module Partition = Hdd_core.Partition
module Outcome = Hdd_core.Outcome
module Store = Hdd_mvstore.Store
module Trace = Hdd_obs.Trace

type t = {
  wal : Wal.t;
  sched : int Scheduler.t;
  store : int Store.t;
  partition : Partition.t;
  sync_on_commit : bool;
  clock : Time.Clock.clock;
  trace : Trace.t option;
  faults : Fault.plan option;
  group : Group_commit.t option;
  base_offset : int;  (** log length when this handle opened the file *)
  pending_writes : (Txn.id, Replay.pending_txn) Hashtbl.t;
  mutable in_flight : int;  (** update transactions begun and unfinished *)
  mutable logged_commits : int;  (** commit frames logged, ever (checkpoint metadata) *)
  mutable logged_aborts : int;
  mutable next_ckpt_seq : int;
  mutable direct_syncs : int;  (** sync_on_commit fsyncs (no group) *)
  mutable direct_synced_offset : int;
}

type ticket = Group of Group_commit.ticket | Logged of int | Readonly

type recovered = {
  store : int Store.t;
  last_time : Time.t;
  committed : int;
  aborted : int;
  lost_uncommitted : int;
  log_intact : bool;
  valid_bytes : int;
  from_checkpoint : Checkpoint.meta option;
}

let build ?(sync_on_commit = false) ?sink ?log ?trace ?group ?faults ?retry
    ?metrics ~path ~partition ~clock ~store ~committed ~aborted () =
  let sched = Scheduler.create ?log ?trace ~partition ~clock ~store () in
  let base_offset = Wal.size ~path in
  let wal = Wal.create ?sink ~path () in
  let group =
    Option.map
      (fun config ->
        (* In fault runs the plan's byte counter (plus the length at open)
           is the log offset — querying the file would force a flush per
           append.  Without a plan offsets are not tracked. *)
        let offset_of =
          Option.map (fun p () -> base_offset + Fault.bytes_appended p) faults
        in
        Group_commit.create ?faults ?retry ?metrics ?trace ?offset_of ~config
          wal)
      group
  in
  { wal; sched; store; partition; sync_on_commit; clock; trace; faults; group;
    base_offset; pending_writes = Hashtbl.create 64; in_flight = 0;
    logged_commits = committed; logged_aborts = aborted;
    next_ckpt_seq = Checkpoint.latest_seq ~log:path + 1; direct_syncs = 0;
    direct_synced_offset = 0 }

let create ?sync_on_commit ?sink ?log ?trace ?group ?faults ?retry ?metrics
    ~path ~partition () =
  let clock = Time.Clock.create () in
  let store =
    Store.create ~segments:(Partition.segment_count partition)
      ~init:(fun _ -> 0)
  in
  build ?sync_on_commit ?sink ?log ?trace ?group ?faults ?retry ?metrics ~path
    ~partition ~clock ~store ~committed:0 ~aborted:0 ()

let recover ?trace ?(use_checkpoints = true) ~path ~segments ~init () =
  let full () =
    let { Wal.records; complete; bytes_read } = Wal.read_all ~path in
    let replay = Replay.create ?trace ~segments ~init () in
    Replay.apply_all replay records;
    (replay, complete, bytes_read, None)
  in
  let replay, log_intact, valid_bytes, from_checkpoint =
    if not use_checkpoints then full ()
    else
      match Checkpoint.best ?trace ~log:path ~segments ~init () with
      | None -> full ()
      | Some (replay, m) ->
        let { Wal.records; complete; bytes_read } =
          Wal.read_from ~path ~offset:m.Checkpoint.log_offset
        in
        Replay.apply_all replay records;
        (replay, complete, bytes_read, Some m)
  in
  (match trace with
  | Some tr ->
    Trace.emit tr ~at:replay.Replay.last_time
      (Trace.Recovery_complete { last_time = replay.Replay.last_time })
  | None -> ());
  { store = replay.Replay.store;
    last_time = replay.Replay.last_time;
    committed = replay.Replay.committed;
    aborted = replay.Replay.aborted;
    lost_uncommitted = Replay.lost_uncommitted replay;
    log_intact;
    valid_bytes;
    from_checkpoint }

let of_recovery ?sync_on_commit ?sink ?log ?trace ?group ?faults ?retry
    ?metrics ~path ~partition recovered =
  (* A torn or corrupt tail is dead bytes: recovery already ignores it,
     but appending after it would put every future record beyond the
     reach of the next recovery (replay stops at the first bad frame).
     Cut the log back to the intact prefix before reopening. *)
  if
    Sys.file_exists path
    && (Unix.stat path).Unix.st_size > recovered.valid_bytes
  then Unix.truncate path recovered.valid_bytes;
  let clock = Time.Clock.create () in
  Time.Clock.catch_up clock recovered.last_time;
  build ?sync_on_commit ?sink ?log ?trace ?group ?faults ?retry ?metrics ~path
    ~partition ~clock ~store:recovered.store ~committed:recovered.committed
    ~aborted:recovered.aborted ()

let scheduler t = t.sched
let store (t : t) = t.store
let group t = t.group

let tick_group t = match t.group with Some g -> Group_commit.tick g | None -> ()

let log_offset t =
  match t.faults with
  | Some p -> t.base_offset + Fault.bytes_appended p
  | None ->
    Wal.flush t.wal;
    Wal.size ~path:(Wal.path t.wal)

let durable_offset t =
  match t.group with
  | Some g -> Group_commit.synced_offset g
  | None -> t.direct_synced_offset

(* If the Begin record cannot be logged the transaction must not exist:
   roll the scheduler back before re-raising, so a transient append
   failure leaves no half-begun transaction behind. *)
let log_begin t txn ~class_id record =
  (try Wal.append t.wal record
   with e ->
     (try Scheduler.abort t.sched txn with _ -> ());
     raise e);
  Hashtbl.replace t.pending_writes txn.Txn.id
    { Replay.class_id; init = txn.Txn.init; writes = [] };
  t.in_flight <- t.in_flight + 1;
  txn

let begin_update t ~class_id =
  tick_group t;
  let txn = Scheduler.begin_update t.sched ~class_id in
  log_begin t txn ~class_id
    (Codec.Begin { txn = txn.Txn.id; class_id; init = txn.Txn.init })

let begin_adhoc_update t ~writes ~reads =
  tick_group t;
  let txn = Scheduler.begin_adhoc_update t.sched ~writes ~reads in
  let class_id = List.hd (List.sort compare writes) in
  log_begin t txn ~class_id
    (Codec.Begin { txn = txn.Txn.id; class_id; init = txn.Txn.init })

let begin_read_only t =
  tick_group t;
  Scheduler.begin_read_only t.sched

let read t txn g =
  tick_group t;
  Scheduler.read t.sched txn g

let write t txn g value =
  tick_group t;
  match Scheduler.write t.sched txn g value with
  | Outcome.Granted () as ok ->
    Wal.append t.wal
      (Codec.Write { txn = txn.Txn.id; granule = g; ts = txn.Txn.init; value });
    (* mirror the write into the in-flight table only once it is in the
       log: a checkpoint must not persist a write recovery cannot see *)
    (match Hashtbl.find_opt t.pending_writes txn.Txn.id with
    | Some p -> p.Replay.writes <- (g, txn.Txn.init, value) :: p.Replay.writes
    | None -> ());
    ok
  | (Outcome.Blocked _ | Outcome.Rejected _) as other -> other

let commit_ticket t txn =
  Scheduler.commit t.sched txn;
  let at =
    match Txn.end_time txn with Some at -> at | None -> assert false
  in
  if not (Txn.is_update txn) then Readonly
  else begin
    let record = Codec.Commit { txn = txn.Txn.id; at } in
    let tk =
      match t.group with
      | Some g -> Group (Group_commit.submit g ~txn:txn.Txn.id ~at record)
      | None ->
        Wal.append t.wal record;
        if t.sync_on_commit then begin
          Wal.sync t.wal;
          t.direct_syncs <- t.direct_syncs + 1;
          t.direct_synced_offset <- log_offset t;
          match t.trace with
          | Some tr ->
            Trace.emit tr ~at (Trace.Durable_ack { txn = txn.Txn.id; at })
          | None -> ()
        end
        else Wal.flush t.wal;
        Logged (match t.faults with Some _ -> log_offset t | None -> 0)
    in
    Hashtbl.remove t.pending_writes txn.Txn.id;
    t.in_flight <- t.in_flight - 1;
    t.logged_commits <- t.logged_commits + 1;
    tk
  end

let commit t txn = ignore (commit_ticket t txn)

let acked t = function
  | Readonly | Logged _ -> true  (* a direct commit raising means no ticket *)
  | Group k -> (
    match t.group with Some g -> Group_commit.acked g k | None -> false)

let ack_offset t = function
  | Readonly -> None
  | Logged off -> Some off
  | Group k -> (
    match t.group with Some g -> Group_commit.ack_offset g k | None -> None)

let abort t txn =
  tick_group t;
  Scheduler.abort t.sched txn;
  if Txn.is_update txn then begin
    (* the in-memory abort is done whether or not the Abort frame makes
       it to the log: without the frame, recovery counts the transaction
       as lost-uncommitted instead of aborted — same database *)
    Hashtbl.remove t.pending_writes txn.Txn.id;
    t.in_flight <- t.in_flight - 1;
    Wal.append t.wal
      (Codec.Abort
         { txn = txn.Txn.id;
           at = (match Txn.end_time txn with Some a -> a | None -> 0) });
    t.logged_aborts <- t.logged_aborts + 1
  end

let flush t =
  (match t.group with Some g -> Group_commit.flush g | None -> ());
  Wal.flush t.wal

let sync t =
  match t.group with
  | Some g -> Group_commit.flush g
  | None ->
    Wal.sync t.wal;
    t.direct_syncs <- t.direct_syncs + 1;
    t.direct_synced_offset <- log_offset t

let close t =
  (match t.group with
  | Some g -> ( try Group_commit.flush g with Fault.Crash _ | Fault.Io_error _ -> ())
  | None -> ());
  Wal.close t.wal

let in_flight t = t.in_flight

let checkpoint t =
  (* every logged commit below the cut offset must be in the file *)
  (match t.group with Some g -> Group_commit.flush g | None -> Wal.flush t.wal);
  let log = Wal.path t.wal in
  let log_offset = log_offset t in
  let seq = t.next_ckpt_seq in
  let wall =
    let raw = Scheduler.gc_watermark_vector t.sched in
    (* clamp against the last checkpoint's cut so the persisted wall
       vectors are monotone across handles and recoveries *)
    match Checkpoint.read_manifest ~log with
    | m :: _ when Array.length m.Checkpoint.wall = Array.length raw ->
      Array.mapi (fun i v -> Stdlib.max v m.Checkpoint.wall.(i)) raw
    | _ -> raw
  in
  let versions = Store.dump_at_wall t.store ~wall in
  let pending =
    Hashtbl.fold
      (fun txn (p : Replay.pending_txn) acc ->
        (txn, p.Replay.class_id, p.Replay.init, p.Replay.writes) :: acc)
      t.pending_writes []
    |> List.sort compare
  in
  let m =
    Checkpoint.write ?faults:t.faults ~log ~seq ~log_offset ~wall
      ~last_time:(Time.Clock.now t.clock) ~committed:t.logged_commits
      ~aborted:t.logged_aborts ~versions ~pending ()
  in
  t.next_ckpt_seq <- seq + 1;
  (match t.trace with
  | Some tr ->
    Trace.emit tr ~at:(Time.Clock.now t.clock)
      (Trace.Checkpoint_cut { seq; components = Array.copy wall })
  | None -> ());
  m
