(** A durable HDD database: the scheduler over a multiversion store, with
    every update logged to a {!Wal} (redo-only logging), group commit,
    checkpoints, and crash recovery that rebuilds the committed state.

    Logging discipline: writes are appended as they are granted; the
    commit record is appended — and fsynced, directly
    ([sync_on_commit]) or through the batching pipeline ([group]) —
    so a transaction {e acknowledged} as durable survives a crash.
    Recovery ({!recover}) loads the newest valid checkpoint and replays
    the log tail after it (O(tail), not O(history)), falling back to
    full-log replay when no checkpoint survives; uncommitted tails
    vanish, which is the correct outcome.  {!of_recovery} then restarts
    a scheduler on the recovered store with the clock advanced past
    every recovered timestamp, so new transactions order strictly after
    everything recovered.

    Read-only transactions are never logged: they write nothing.

    {b Group commit.}  With [group], {!commit} queues the commit frame
    in a {!Group_commit} pipeline instead of appending it inline: the
    transaction is committed in memory immediately, and its durability
    acknowledgment arrives when a batched fsync covers its frame.
    {!commit_ticket} returns the handle to poll ({!acked},
    {!ack_offset}); every other engine operation {e ticks} the
    pipeline's logical delay timer, so batches drain even on read-heavy
    workloads.

    {b Checkpoints.}  {!checkpoint} cuts a consistent snapshot at a
    released wall (the scheduler's watermark vector, clamped monotone
    against the previous cut), persists it atomically next to the log
    ({!Checkpoint}), and records the log offset the snapshot covers.
    In-flight transactions need not drain: their granted writes ride
    along in the checkpoint's pending table, so a commit record in the
    tail finds them.

    {b Fault contract} (see {!Fault} and the DESIGN.md fault-model
    section).  When the WAL sink raises {!Fault.Io_error} the failure is
    transient and the handle stays usable: a failed {!begin_update}
    leaves no transaction behind (the scheduler is rolled back), and a
    failed {!write} leaves the granted write in memory but not on disk —
    the caller must {!abort} that transaction, or recovery could lose a
    write of a committed transaction.  An exception escaping a direct
    (non-group) {!commit} means the commit was {e not acknowledged}: the
    transaction may or may not be durable, and the handle must be
    abandoned and re-opened through {!recover}.  Under [group], {!commit}
    raises only on {!Fault.Crash} (always fatal); transient trouble in
    the pipeline merely delays the acknowledgment.  A transaction whose
    ticket was never acked may or may not survive — exactly the promise
    group commit makes. *)

type t

type ticket =
  | Group of Group_commit.ticket  (** group-commit pipeline ack *)
  | Logged of int  (** direct append; durable on return.  The payload is
                       the log offset after the commit frame (0 when no
                       fault plan tracks offsets). *)
  | Readonly  (** nothing to make durable *)

type recovered = {
  store : int Hdd_mvstore.Store.t;
  last_time : Time.t;  (** largest timestamp in the recovered prefix *)
  committed : int;
  aborted : int;
  lost_uncommitted : int;  (** transactions begun but never committed *)
  log_intact : bool;  (** false when a torn/corrupt tail was dropped *)
  valid_bytes : int;  (** absolute length of the intact prefix replayed *)
  from_checkpoint : Checkpoint.meta option;
      (** the checkpoint recovery started from; [None] = full replay *)
}

val create :
  ?sync_on_commit:bool ->
  ?sink:Fault.sink ->
  ?log:Hdd_txn.Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  ?group:Group_commit.config ->
  ?faults:Fault.plan ->
  ?retry:Hdd_sim.Retry.policy ->
  ?metrics:Hdd_obs.Metrics.t ->
  path:string ->
  partition:Hdd_core.Partition.t ->
  unit ->
  t
(** Opens (or appends to) the log at [path] over a fresh in-memory store.
    [sync_on_commit] defaults to false: the log is flushed but not
    fsynced per commit.  [group] turns on the batching commit pipeline
    (and makes [sync_on_commit] irrelevant: fsyncs are per batch).
    [sink] (default the production file sink) carries the WAL bytes —
    the fault-injection seam; [faults] must be the plan wrapping that
    sink, and additionally arms the logical fault points of the commit
    pipeline and checkpoint writer.  [retry] and [metrics] are handed to
    the pipeline; [log] to the scheduler so the live schedule can be
    certified; [trace] to both. *)

val recover :
  ?trace:Hdd_obs.Trace.t ->
  ?use_checkpoints:bool ->
  path:string ->
  segments:int ->
  init:(Granule.t -> int) ->
  unit ->
  recovered
(** Rebuild the database at [path]: newest valid checkpoint plus log
    tail, or full-log replay with [use_checkpoints:false] (the oracle
    the torture harness compares against) or when no checkpoint loads.
    A missing file recovers as the empty database (all counters zero,
    [log_intact = true]).  With [trace], emits
    {!Hdd_obs.Trace.event.Durable_recovered} per replayed commit and
    {!Hdd_obs.Trace.event.Recovery_complete} at the end — the feed of
    the durability monitor rule. *)

val of_recovery :
  ?sync_on_commit:bool ->
  ?sink:Fault.sink ->
  ?log:Hdd_txn.Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  ?group:Group_commit.config ->
  ?faults:Fault.plan ->
  ?retry:Hdd_sim.Retry.policy ->
  ?metrics:Hdd_obs.Metrics.t ->
  path:string ->
  partition:Hdd_core.Partition.t ->
  recovered ->
  t
(** Continue a recovered database, appending to the same log.  When the
    recovery dropped a torn or corrupt tail, the file is first truncated
    back to [recovered.valid_bytes]: appending after dead bytes would
    strand every future record beyond the next recovery's reach. *)

val scheduler : t -> int Hdd_core.Scheduler.t
(** The underlying scheduler — use it for reads, walls and metrics; all
    writes and transaction boundaries must go through this module so the
    log stays ahead of the state. *)

val store : t -> int Hdd_mvstore.Store.t
val group : t -> Group_commit.t option

val begin_update : t -> class_id:int -> Txn.t
val begin_read_only : t -> Txn.t

val begin_adhoc_update : t -> writes:int list -> reads:int list -> Txn.t
(** Ad-hoc updates (§7.1.1) log like any other update: their writes
    carry their own timestamps, so recovery needs no special casing. *)

val read : t -> Txn.t -> Granule.t -> int Hdd_core.Outcome.t
val write : t -> Txn.t -> Granule.t -> int -> unit Hdd_core.Outcome.t

val commit : t -> Txn.t -> unit
(** [commit_ticket] with the ticket dropped — for callers that treat
    in-memory commit as enough (or poll the pipeline elsewhere). *)

val commit_ticket : t -> Txn.t -> ticket
(** Commit in the scheduler, then log: directly (appended, and fsynced
    under [sync_on_commit]) or through the group-commit pipeline.  Poll
    the ticket with {!acked}. *)

val acked : t -> ticket -> bool
(** Whether the commit behind the ticket is known durable.  [Logged]
    and [Readonly] tickets are acked by construction. *)

val ack_offset : t -> ticket -> int option
(** Log offset just after the ticket's commit frame — the durability
    horizon a recovery must reach to contain it.  [None] until acked
    (or for read-only tickets / untracked offsets). *)

val abort : t -> Txn.t -> unit
val flush : t -> unit
(** Drain the commit pipeline (appending and fsyncing anything queued)
    and flush the WAL's buffer. *)

val sync : t -> unit
(** Advance the durable horizon: drain the pipeline (group mode) or
    fsync the WAL directly.  After a clean return, {!durable_offset}
    covers everything appended — the precondition for shipping a
    just-released wall.
    @raise Fault.Io_error on a scripted transient fsync fault (direct
    mode; the group pipeline retries internally and gives up silently —
    check {!durable_offset}). *)

val close : t -> unit

val checkpoint : t -> Checkpoint.meta
(** Cut and persist a checkpoint: drain the pipeline, snapshot the
    committed store at the clamped watermark wall plus the in-flight
    write table, write data file and manifest atomically
    ({!Checkpoint.write}), and emit
    {!Hdd_obs.Trace.event.Checkpoint_cut}.  Transactions may be in
    flight.  After it returns, recovery replays only the tail past the
    recorded offset.
    @raise Fault.Io_error when a scripted transient fault hits a
    checkpoint point — the checkpoint simply didn't happen; the handle
    stays usable. *)

val log_offset : t -> int
(** Current end of the log in bytes (appended, not necessarily fsynced).
    Under a fault plan this is the plan's byte counter plus the length
    at open; otherwise the flushed file size. *)

val durable_offset : t -> int
(** The fsynced horizon: bytes of log known durable — what a log
    shipper may send.  Grows at fsync granularity; 0 until the first
    fsync through this handle. *)

val in_flight : t -> int
(** Active update transactions begun through this handle. *)
