(** A durable HDD database: the scheduler over a multiversion store, with
    every update logged to a {!Wal} (redo-only logging) and crash
    recovery that rebuilds the committed state.

    Logging discipline: writes are appended as they are granted; the
    commit record is appended — and, with [sync_on_commit], fsynced —
    before {!commit} returns, so a transaction acknowledged as committed
    survives a crash.  Recovery ({!recover}) replays the intact log
    prefix, installing exactly the versions of committed transactions;
    uncommitted tails vanish, which is the correct outcome.
    {!of_recovery} then restarts a scheduler on the recovered store with
    the clock advanced past every recovered timestamp, so new
    transactions order strictly after everything recovered.

    Read-only transactions are never logged: they write nothing.

    {b Fault contract} (see {!Fault} and the DESIGN.md fault-model
    section).  When the WAL sink raises {!Fault.Io_error} the failure is
    transient and the handle stays usable: a failed {!begin_update}
    leaves no transaction behind (the scheduler is rolled back), and a
    failed {!write} leaves the granted write in memory but not on disk —
    the caller must {!abort} that transaction, or recovery could lose a
    write of a committed transaction.  An exception escaping {!commit}
    means the commit was {e not acknowledged}: the transaction may or
    may not be durable, and the handle must be abandoned and re-opened
    through {!recover} (the policy real engines adopt for WAL failures
    at commit).  {!Fault.Crash} is always fatal to the handle. *)

type t

type recovered = {
  store : int Hdd_mvstore.Store.t;
  last_time : Time.t;  (** largest timestamp in the recovered prefix *)
  committed : int;
  aborted : int;
  lost_uncommitted : int;  (** transactions begun but never committed *)
  log_intact : bool;  (** false when a torn/corrupt tail was dropped *)
  valid_bytes : int;  (** length of the intact prefix replayed *)
}

val create :
  ?sync_on_commit:bool ->
  ?sink:Fault.sink ->
  ?log:Hdd_txn.Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  path:string ->
  partition:Hdd_core.Partition.t ->
  unit ->
  t
(** Opens (or appends to) the log at [path] over a fresh in-memory store.
    [sync_on_commit] defaults to false: the log is flushed but not
    fsynced per commit, trading the durability of the last few commits
    for speed — the classic group-commit knob, minus the grouping.
    [sink] (default the production file sink) carries the WAL bytes —
    the fault-injection seam.  [log] is handed to the scheduler so the
    live schedule can be certified; [trace] likewise, so monitors and
    metrics can watch a durable database (the torture harness attaches
    invariant monitors this way). *)

val recover :
  path:string -> segments:int -> init:(Granule.t -> int) -> recovered
(** Replay the log at [path].  A missing file recovers as the empty
    database (all counters zero, [log_intact = true]): a database that
    was never written has an empty history, not an error. *)

val of_recovery :
  ?sync_on_commit:bool ->
  ?sink:Fault.sink ->
  ?log:Hdd_txn.Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  path:string ->
  partition:Hdd_core.Partition.t ->
  recovered ->
  t
(** Continue a recovered database, appending to the same log.  When the
    recovery dropped a torn or corrupt tail, the file is first truncated
    back to [recovered.valid_bytes]: appending after dead bytes would
    strand every future record beyond the next recovery's reach. *)

val scheduler : t -> int Hdd_core.Scheduler.t
(** The underlying scheduler — use it for reads, walls and metrics; all
    writes and transaction boundaries must go through this module so the
    log stays ahead of the state. *)

val begin_update : t -> class_id:int -> Txn.t
val begin_read_only : t -> Txn.t

val begin_adhoc_update : t -> writes:int list -> reads:int list -> Txn.t
(** Ad-hoc updates (§7.1.1) log like any other update: their writes
    carry their own timestamps, so recovery needs no special casing. *)

val read : t -> Txn.t -> Granule.t -> int Hdd_core.Outcome.t
val write : t -> Txn.t -> Granule.t -> int -> unit Hdd_core.Outcome.t
val commit : t -> Txn.t -> unit
val abort : t -> Txn.t -> unit
val close : t -> unit

val checkpoint : t -> unit
(** Compact the log: write the latest committed version of every granule
    as one synthetic transaction into a fresh log file, atomically
    replace the old log (write + rename), and continue appending.  After
    a checkpoint, recovery replays the snapshot plus the suffix instead
    of the whole history.  Must be called with no update transaction in
    flight (the scheduler's state is not snapshot), which the caller
    arranges; the wall/registry state is rebuilt empty on recovery as
    usual.
    @raise Failure when update transactions are in flight. *)

val in_flight : t -> int
(** Active transactions begun through this handle. *)
