(** Crash-recovery torture: seeded workloads driven into injected
    faults, recovered, and checked against the durability invariants.

    One {!run_cycle} plays a pseudo-random update workload against a
    {!Durable} database writing through a {!Fault}-wrapped sink — each
    cycle draws a group-commit configuration from a knob grid (off,
    flush-per-commit, widening batch windows), cuts checkpoints and
    ships log batches to a warm {!Replica} at random points — lets the
    scripted fault fire ("the machine dies"), recovers, verifies, then
    continues the workload on {!Durable.of_recovery} — possibly into a
    second fault — and recovers and verifies once more.  The invariants
    checked after every recovery:

    + {b Durability}: every transaction whose commit was {e acknowledged}
      — the direct append returned under [sync_on_commit], or the group
      ticket acked — is present in the recovered store with exactly its
      written values; unless silent corruption (a scripted bit flip)
      destroyed its frames, in which case it must be hidden, never
      half-applied.  Commits submitted but never acked have unknown
      durability: either outcome is legal, torn is not.
    + {b No resurrection}: every non-bootstrap version in the recovered
      store belongs to an acknowledged transaction or to a transaction
      whose commit was in flight (queued in the pipeline) when the fault
      fired; aborted and unfinished transactions leave no trace.
    + {b Clock domination}: [recovered.last_time] is at least every
      version timestamp recovered, so the resumed clock orders new work
      strictly after everything recovered.
    + {b Serializability}: the committed write schedule reconstructed
      from the log certifies against {!Hdd_core.Certifier}, and so does
      the live schedule the scheduler produced before the fault.
    + {b Checkpoint equivalence}: the production recovery (newest valid
      checkpoint + log tail) lands on exactly the wall-cut of the
      full-log replay oracle, with a clock at least as far along —
      checked whenever no bit flip has silently diverged the two.
    + {b Replica consistency}: every replica read at its effective wall
      equals the primary's Protocol A/C read at the same timestamp
      against the final recovered store — bounded staleness, never a
      different answer.

    Everything is a pure function of the seed: a failing seed replays
    exactly. *)

type config = {
  txns : int;  (** update transactions attempted per phase *)
  concurrency : int;  (** transactions kept open and interleaved *)
  keys_per_segment : int;
  max_writes : int;  (** writes per transaction, 1 to this many *)
  read_fraction : float;  (** probability an operation is a read *)
  corruption_probability : float;
      (** chance the plan adds silent corruption: a log bit flip, or a
          torn/corrupt checkpoint or manifest file write *)
  transient_probability : float;
      (** chance the plan adds a transient append/fsync/point error *)
  second_fault_probability : float;
      (** chance the post-recovery phase gets its own fault plan *)
  checkpoint_probability : float;
      (** per-step chance the workload cuts a checkpoint *)
  ship_probability : float;
      (** per-step chance the workload syncs and ships to the replica *)
}

val default_config : config

type outcome = {
  seed : int;
  crashed : bool;  (** a crash event fired in either phase *)
  fired : Fault.event list;  (** every fault event that fired *)
  reached : Fault.point list;
      (** every logical fault point the workload crossed, armed or not —
          the coverage record behind {!report.reached_kinds} *)
  acknowledged : int;  (** commits acknowledged across both phases *)
  recovered_committed : int;  (** commit records in the final replay *)
  log_intact : bool;  (** final recovery saw no torn/corrupt tail *)
  violations : string list;  (** empty when every invariant held *)
}

val run_cycle :
  ?config:config ->
  ?monitors:bool ->
  partition:Hdd_core.Partition.t ->
  path:string ->
  seed:int ->
  unit ->
  outcome
(** One crash/recover/resume/recover cycle at [path] (the file is
    removed first).  With [monitors] (default false) each phase runs
    under a fresh {!Hdd_obs.Monitor} — non-raising, a stack per phase
    because txn ids recur across sessions — and any invariant the
    monitor catches joins [violations] with a ["monitor phase N:"]
    prefix. *)

type report = {
  cycles : int;
  crashes : int;  (** cycles in which a crash event fired *)
  corruptions : int;  (** cycles in which a bit flip fired *)
  acknowledged : int;
  recovered : int;
  reached_kinds : (string * int) list;
      (** per {!Fault.kind} counts of fault points crossed, in
          {!Fault.kinds} order — assert against {!Fault.kinds} to prove a
          run exercised every boundary *)
  violating : outcome list;  (** outcomes with a non-empty violation list *)
}

val run :
  ?config:config ->
  ?monitors:bool ->
  ?first_seed:int ->
  partition:Hdd_core.Partition.t ->
  path:string ->
  seeds:int ->
  unit ->
  report
(** [run ~partition ~path ~seeds ()] executes [seeds] cycles with seeds
    [first_seed] (default 0) onward and aggregates.  [monitors] as in
    {!run_cycle}. *)

val pp_report : Format.formatter -> report -> unit
