(** Binary encoding of write-ahead-log records.

    Fixed little-endian framing: a 4-byte payload length, a 4-byte CRC-32
    of the payload, then the payload.  Torn tails (a crash mid-append)
    decode as [`Truncated]; flipped bits as [`Corrupt]; both stop
    recovery at the last intact prefix, which is exactly the contract
    {!Wal} needs. *)

type record =
  | Begin of { txn : Txn.id; class_id : int; init : Time.t }
  | Write of { txn : Txn.id; granule : Granule.t; ts : Time.t; value : int }
  | Commit of { txn : Txn.id; at : Time.t }
  | Abort of { txn : Txn.id; at : Time.t }
  | Wall of { released_at : Time.t; components : Time.t array }
      (** a released time-wall vector.  Never written to the WAL itself:
          it is the trailer of a log-shipping batch ({!Replica}), placed
          last so a partially applied batch never advances the replica's
          wall past the records it actually holds. *)

val equal_record : record -> record -> bool
val pp_record : Format.formatter -> record -> unit

val crc32 : Bytes.t -> int
(** Standard CRC-32 (polynomial 0xEDB88320), returned as a non-negative
    int. *)

val encode : record -> Bytes.t
(** Full frame: header plus payload. *)

val decode : Bytes.t -> pos:int -> (record * int, [ `Truncated | `Corrupt ]) result
(** [decode buf ~pos] reads one frame starting at [pos]; on success
    returns the record and the position just past the frame. *)
