(** The write-ahead log: an append-only file of {!Codec} frames.

    Appends go through a buffered channel; {!flush} pushes them to the
    OS and {!sync} forces them to disk.  {!read_all} recovers the intact
    prefix of a log file: a torn tail (crash mid-append) is normal and
    reported as [`Truncated]; a checksum mismatch as [`Corrupt]; both
    end recovery at the last good frame. *)

type t

val create : path:string -> t
(** Open for appending, creating the file if needed.
    @raise Sys_error on an unwritable path. *)

val append : t -> Codec.record -> unit
val flush : t -> unit
val sync : t -> unit
(** [flush] followed by [Unix.fsync]: the durability barrier. *)

val close : t -> unit
val path : t -> string
val appended : t -> int
(** Records appended through this handle. *)

type recovery = {
  records : Codec.record list;  (** the intact prefix, in log order *)
  complete : bool;  (** false when a torn or corrupt tail was dropped *)
  bytes_read : int;
}

val read_all : path:string -> recovery
(** @raise Sys_error if the file does not exist. *)
