(** The write-ahead log: an append-only file of {!Codec} frames.

    All bytes leave through a {!Fault.sink}: the default is the
    production {!Fault.file_sink} (buffered appends; {!flush} pushes
    them to the OS and {!sync} forces them to disk), and tests pass a
    fault-wrapped sink to inject crashes, torn writes and corruption
    without any hooks in this module.  {!read_all} recovers the intact
    prefix of a log file: a torn tail (crash mid-append) is normal and
    reported as [`Truncated]; a checksum mismatch as [`Corrupt]; both
    end recovery at the last good frame. *)

type t

val create : ?sink:Fault.sink -> path:string -> unit -> t
(** Open for appending, creating the file if needed.  [sink] (default
    [Fault.file_sink ~path ()]) carries every appended byte; pass a
    {!Fault.apply}-wrapped sink to inject faults.
    @raise Sys_error on an unwritable path. *)

val append : t -> Codec.record -> unit
(** @raise Fault.Crash or {!Fault.Io_error} when an injected (or real)
    failure stops the frame from reaching the sink; the appended count
    is not incremented in that case. *)

val flush : t -> unit
val sync : t -> unit
(** [flush] followed by [Unix.fsync]: the durability barrier. *)

val close : t -> unit
val path : t -> string
val appended : t -> int
(** Records appended through this handle. *)

type recovery = {
  records : Codec.record list;  (** the intact prefix, in log order *)
  complete : bool;  (** false when a torn or corrupt tail was dropped *)
  bytes_read : int;  (** length of the intact prefix in bytes *)
}

val read_all : path:string -> recovery
(** A missing file reads as the empty log — a database that was never
    written recovers to its initial state ([records = []],
    [complete = true]) rather than raising. *)

val read_from : path:string -> offset:int -> recovery
(** Like {!read_all} but decode only the tail starting at byte [offset]
    (clamped to the file length) — the O(Δ) path of checkpointed
    recovery.  [bytes_read] stays absolute: it is [offset] plus the
    intact tail length, so it remains directly comparable to
    {!read_all}'s and usable as a truncation bound.  [offset] must be a
    frame boundary of the log (a checkpoint's recorded cut), otherwise
    the tail decodes as corrupt at its first frame. *)

val size : path:string -> int
(** Current byte length of the log file at [path]; 0 when missing. *)
