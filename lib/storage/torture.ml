module Partition = Hdd_core.Partition
module Scheduler = Hdd_core.Scheduler
module Certifier = Hdd_core.Certifier
module Outcome = Hdd_core.Outcome
module Store = Hdd_mvstore.Store
module Chain = Hdd_mvstore.Chain
module Achain = Hdd_mvstore.Achain
module Segment = Hdd_mvstore.Segment
module Prng = Hdd_util.Prng

type config = {
  txns : int;
  concurrency : int;
  keys_per_segment : int;
  max_writes : int;
  read_fraction : float;
  corruption_probability : float;
  transient_probability : float;
  second_fault_probability : float;
  checkpoint_probability : float;
  ship_probability : float;
}

let default_config =
  { txns = 12; concurrency = 3; keys_per_segment = 4; max_writes = 3;
    read_fraction = 0.4; corruption_probability = 0.25;
    transient_probability = 0.3; second_fault_probability = 0.5;
    checkpoint_probability = 0.06; ship_probability = 0.12 }

(* The group-commit knob grid a cycle draws from: off (direct
   sync-on-commit), flush-per-commit, and widening batch windows. *)
let group_grid : Group_commit.config option array =
  [| None;
     Some { Group_commit.max_batch = 1; max_delay = 0 };
     Some { Group_commit.max_batch = 2; max_delay = 4 };
     Some { Group_commit.max_batch = 4; max_delay = 8 };
     Some { Group_commit.max_batch = 8; max_delay = 16 };
     Some { Group_commit.max_batch = 16; max_delay = 32 } |]

type outcome = {
  seed : int;
  crashed : bool;
  fired : Fault.event list;
  reached : Fault.point list;
  acknowledged : int;
  recovered_committed : int;
  log_intact : bool;
  violations : string list;
}

type report = {
  cycles : int;
  crashes : int;
  corruptions : int;
  acknowledged : int;
  recovered : int;
  reached_kinds : (string * int) list;
  violating : outcome list;
}

(* --- fault-plan generation --- *)

(* A random logical fault point, with indexes tight enough that most
   land on operations the phase actually performs. *)
let gen_point rng =
  match Prng.int rng 9 with
  | 0 -> Fault.Batch_append { batch = 1 + Prng.int rng 6; frame = Prng.int rng 4 }
  | 1 -> Fault.Batch_fsync (1 + Prng.int rng 8)
  | 2 -> Fault.Batch_ack (1 + Prng.int rng 8)
  | 3 -> Fault.Checkpoint_write (1 + Prng.int rng 3)
  | 4 -> Fault.Checkpoint_rename (1 + Prng.int rng 3)
  | 5 -> Fault.Manifest_write (1 + Prng.int rng 3)
  | 6 -> Fault.Manifest_rename (1 + Prng.int rng 3)
  | 7 -> Fault.Ship_send (1 + Prng.int rng 6)
  | _ -> Fault.Ship_apply (1 + Prng.int rng 6)

(* A checkpoint-file write point — the only points where torn and
   corrupt whole-file writes can fire. *)
let gen_file_point rng =
  let seq = 1 + Prng.int rng 3 in
  if Prng.bool rng then Fault.Checkpoint_write seq else Fault.Manifest_write seq

(* Rough per-phase log sizes, for placing byte/frame fault points: a
   transaction logs one Begin (33 bytes), up to [max_writes] Writes
   (49 bytes each) and one Commit or Abort (25 bytes).  Points beyond
   the actual log simply never fire, which gives clean-shutdown cycles
   for free. *)
let gen_plan rng (c : config) =
  let est_frames = c.txns * (2 + c.max_writes) in
  let est_bytes = est_frames * 44 in
  let events = ref [] in
  (match Prng.int rng 6 with
  | 0 -> events := [ Fault.Crash_after_frames (1 + Prng.int rng est_frames) ]
  | 1 -> events := [ Fault.Crash_after_bytes (1 + Prng.int rng est_bytes) ]
  | 2 ->
    events :=
      [ Fault.Torn_write
          { frame = Prng.int rng est_frames; keep = Prng.int rng 48 } ]
  | 3 | 4 -> events := [ Fault.Crash_at (gen_point rng) ]
  | _ -> () (* no scripted crash: the phase may reach a clean shutdown *));
  if Prng.float rng 1.0 < c.corruption_probability then
    events :=
      (match Prng.int rng 3 with
      | 0 ->
        Fault.Bit_flip { byte = Prng.int rng est_bytes; bit = Prng.int rng 8 }
      | 1 ->
        Fault.Torn_at { point = gen_file_point rng; keep = Prng.int rng 64 }
      | _ ->
        Fault.Corrupt_at
          { point = gen_file_point rng; byte = Prng.int rng 256;
            bit = Prng.int rng 8 })
      :: !events;
  if Prng.float rng 1.0 < c.transient_probability then
    events :=
      (match Prng.int rng 3 with
      | 0 -> Fault.Append_error { frame = Prng.int rng est_frames }
      | 1 -> Fault.Sync_error { sync = 1 + Prng.int rng c.txns }
      | _ -> Fault.Error_at (gen_point rng))
      :: !events;
  Fault.plan !events

(* --- the seeded workload, driven into the fault plan --- *)

type active = {
  txn : Txn.t;
  class_id : int;
  mutable to_do : int;  (** writes still to perform before finishing *)
  writes : (Granule.t, Time.t * int) Hashtbl.t;  (** last write per granule *)
}

(* One acknowledged commit: the id, its commit time, the absolute log
   offset just past its commit frame (everything the client was promised
   is within it), and the final value written to each granule. *)
type ack = {
  a_txn : Txn.id;
  a_at : Time.t;
  a_offset : int;
  a_writes : (Granule.t * Time.t * int) list;
}

type phase = {
  acked : ack list;
  pendings : (Txn.id * (Granule.t * Time.t * int) list) list;
      (** commits attempted or queued but never acknowledged:
          durability unknown *)
  phase_crashed : bool;
}

let run_phase db rng (c : config) ~partition ~shipper =
  let n_classes = Partition.segment_count partition in
  let readable =
    Array.init n_classes (fun cls ->
        List.init n_classes Fun.id
        |> List.filter (fun seg ->
               Partition.may_read partition ~class_id:cls ~segment:seg)
        |> Array.of_list)
  in
  let active = ref [] in
  let started = ref 0 in
  let acked = ref [] in
  (* group tickets awaiting their durability ack *)
  let waiting : (Durable.ticket * Txn.id * Time.t
                 * (Granule.t * Time.t * int) list) list ref = ref [] in
  let pendings = ref [] in
  let crashed = ref false in
  let poisoned = ref false in
  let snapshot_writes a =
    Hashtbl.fold (fun g (ts, v) l -> (g, ts, v) :: l) a.writes []
  in
  let remove a = active := List.filter (fun x -> x != a) !active in
  let drain_acks () =
    waiting :=
      List.filter
        (fun (tk, txn, at, ws) ->
          if Durable.acked db tk then begin
            acked :=
              { a_txn = txn; a_at = at;
                a_offset = Option.value ~default:0 (Durable.ack_offset db tk);
                a_writes = ws }
              :: !acked;
            false
          end
          else true)
        !waiting
  in
  let abort_active a =
    remove a;
    match Durable.abort db a.txn with
    | () -> ()
    | exception Fault.Io_error _ ->
      () (* the abort record is lost; recovery sees an in-flight txn *)
    | exception Fault.Crash _ -> crashed := true
  in
  let try_checkpoint () =
    match Durable.checkpoint db with
    | _ -> ()
    | exception Fault.Io_error _ -> () (* the checkpoint didn't happen *)
    | exception Fault.Crash _ -> crashed := true
  in
  let try_ship () =
    (* the wall first, the durability barrier second: commits below a
       released wall must be inside the shipped prefix, and only a sync
       completed after the release can promise that *)
    let wall = Scheduler.gc_watermark_vector (Durable.scheduler db) in
    match Durable.sync db with
    | () ->
      if Durable.durable_offset db >= Durable.log_offset db then begin
        match
          Replica.ship shipper ~upto:(Durable.durable_offset db) ~wall
        with
        | Ok () | Error _ -> () (* give-up: cursor unmoved, resend later *)
        | exception Fault.Crash _ -> crashed := true
      end
    | exception Fault.Io_error _ -> () (* not durable: don't ship the wall *)
    | exception Fault.Crash _ -> crashed := true
  in
  (try
     while
       (!started < c.txns || !active <> [])
       && (not !crashed) && not !poisoned
     do
       if Prng.float rng 1.0 < c.checkpoint_probability then try_checkpoint ();
       if (not !crashed) && Prng.float rng 1.0 < c.ship_probability then
         try_ship ();
       if !crashed then ()
       else begin
         let want_new =
           !started < c.txns
           && List.length !active < c.concurrency
           && (!active = [] || Prng.int rng 3 = 0)
         in
         if want_new then begin
           incr started;
           let class_id = Prng.int rng n_classes in
           match Durable.begin_update db ~class_id with
           | txn ->
             active :=
               { txn; class_id; to_do = 1 + Prng.int rng c.max_writes;
                 writes = Hashtbl.create 4 }
               :: !active
           | exception Fault.Io_error _ -> () (* the begin never happened *)
         end
         else begin
           let a = List.nth !active (Prng.int rng (List.length !active)) in
           if a.to_do <= 0 then begin
             if Prng.int rng 8 = 0 then abort_active a
             else begin
               remove a;
               match Durable.commit_ticket db a.txn with
               | tk ->
                 let at =
                   Option.value ~default:Time.zero (Txn.end_time a.txn)
                 in
                 waiting := (tk, a.txn.Txn.id, at, snapshot_writes a) :: !waiting;
                 drain_acks ()
               | exception Fault.Io_error _ ->
                 (* direct mode: maybe durable, never acknowledged; the
                    handle is poisoned *)
                 pendings := (a.txn.Txn.id, snapshot_writes a) :: !pendings;
                 poisoned := true
               | exception Fault.Crash _ ->
                 (* the crash may have fired just after the commit frame
                    was written: durable but unacknowledged *)
                 pendings := (a.txn.Txn.id, snapshot_writes a) :: !pendings;
                 crashed := true
             end
           end
           else if Prng.float rng 1.0 < c.read_fraction then begin
             let segs = readable.(a.class_id) in
             if Array.length segs > 0 then
               let g =
                 Granule.make ~segment:(Prng.pick rng segs)
                   ~key:(Prng.int rng c.keys_per_segment)
               in
               match Durable.read db a.txn g with
               | Outcome.Granted _ -> ()
               | Outcome.Blocked _ | Outcome.Rejected _ -> abort_active a
           end
           else begin
             let g =
               Granule.make ~segment:a.class_id
                 ~key:(Prng.int rng c.keys_per_segment)
             in
             let v = Prng.int rng 1_000_000 in
             match Durable.write db a.txn g v with
             | Outcome.Granted () ->
               Hashtbl.replace a.writes g (a.txn.Txn.init, v);
               a.to_do <- a.to_do - 1
             | Outcome.Blocked _ | Outcome.Rejected _ -> abort_active a
             | exception Fault.Io_error _ ->
               (* granted in memory, lost on disk: Durable's contract says
                  abort, or recovery could under-replay this txn *)
               abort_active a
           end
         end
       end
     done;
     (* clean end of phase: drain the pipeline so queued commits ack,
        and give the replica one final batch *)
     if (not !crashed) && not !poisoned then begin
       (try Durable.flush db
        with Fault.Io_error _ -> () | Fault.Crash _ -> crashed := true);
       if not !crashed then try_ship ()
     end
   with Fault.Crash _ -> crashed := true);
  drain_acks ();
  (* whatever never acked has unknown durability *)
  List.iter
    (fun (_, txn, _, ws) -> pendings := (txn, ws) :: !pendings)
    !waiting;
  (try Durable.close db
   with Fault.Crash _ | Fault.Io_error _ | Sys_error _ -> ());
  { acked = !acked; pendings = !pendings; phase_crashed = !crashed }

(* --- invariants --- *)

(* Rebuild the committed write schedule from a log, replaying sessions
   the way recovery does: a Begin opens a fresh incarnation of its txn id
   (ids recur across sessions), writes buffer, a Commit emits the
   surviving (last-per-granule) writes in commit order. *)
let committed_write_log records =
  let log = Sched_log.create () in
  let session : (Txn.id, int) Hashtbl.t = Hashtbl.create 32 in
  let buf : (int, (Granule.t * Time.t) list) Hashtbl.t = Hashtbl.create 32 in
  let next = ref 1 in
  let incarnation txn =
    match Hashtbl.find_opt session txn with
    | Some s -> s
    | None ->
      let s = !next in
      incr next;
      Hashtbl.replace session txn s;
      s
  in
  List.iter
    (fun (r : Codec.record) ->
      match r with
      | Codec.Begin { txn; _ } ->
        let s = !next in
        incr next;
        Hashtbl.replace session txn s;
        Hashtbl.replace buf s []
      | Codec.Write { txn; granule; ts; _ } ->
        let s = incarnation txn in
        let prior =
          match Hashtbl.find_opt buf s with Some l -> l | None -> []
        in
        (* last write of a granule wins, as in recovery replay *)
        Hashtbl.replace buf s
          ((granule, ts) :: List.filter (fun (g, _) -> g <> granule) prior)
      | Codec.Commit { txn; _ } ->
        let s = incarnation txn in
        (match Hashtbl.find_opt buf s with
        | Some writes ->
          List.iter
            (fun (g, ts) -> Sched_log.log_write log ~txn:s ~granule:g ~version:ts)
            (List.rev writes);
          Hashtbl.remove buf s
        | None -> ());
        Hashtbl.remove session txn
      | Codec.Abort { txn; _ } -> (
        match Hashtbl.find_opt session txn with
        | Some s ->
          Hashtbl.remove buf s;
          Hashtbl.remove session txn
        | None -> ())
      | Codec.Wall _ -> () (* never in the WAL; ship trailers only *))
    records;
  log

let check_recovery add ~label (r : Durable.recovered) ~visible ~allowed =
  (* invariant 1: every acknowledged commit within the intact prefix is
     present, with exactly the values it wrote *)
  List.iter
    (fun ack ->
      List.iter
        (fun (g, ts, v) ->
          match Store.committed_before r.Durable.store g ~ts:(ts + 1) with
          | Some ver when ver.Chain.ts = ts && ver.Chain.value = v -> ()
          | Some ver ->
            add
              (Printf.sprintf
                 "%s: acked txn %d wrote %s ts %d value %d; recovered ts %d \
                  value %d"
                 label ack.a_txn
                 (Format.asprintf "%a" Granule.pp g)
                 ts v ver.Chain.ts ver.Chain.value)
          | None ->
            add
              (Printf.sprintf "%s: acked txn %d write to %s ts %d lost" label
                 ack.a_txn
                 (Format.asprintf "%a" Granule.pp g)
                 ts))
        ack.a_writes)
    visible;
  (* invariants 2 and 3: nothing uncommitted resurrected, no pending
     version, and last_time dominates every recovered timestamp *)
  for seg = 0 to Store.segment_count r.Durable.store - 1 do
    let s = Store.segment r.Durable.store seg in
    List.iter
      (fun key ->
        let g = Granule.make ~segment:seg ~key in
        List.iter
          (fun (ver : int Chain.version) ->
            if ver.Chain.ts > Time.zero then begin
              if ver.Chain.ts > r.Durable.last_time then
                add
                  (Printf.sprintf
                     "%s: version %s ts %d beyond last_time %d" label
                     (Format.asprintf "%a" Granule.pp g)
                     ver.Chain.ts r.Durable.last_time);
              if ver.Chain.state <> Chain.Committed then
                add
                  (Printf.sprintf "%s: pending version survived at %s ts %d"
                     label
                     (Format.asprintf "%a" Granule.pp g)
                     ver.Chain.ts);
              match Hashtbl.find_all allowed (g, ver.Chain.ts) with
              | [] ->
                add
                  (Printf.sprintf
                     "%s: uncommitted write resurrected at %s ts %d value %d"
                     label
                     (Format.asprintf "%a" Granule.pp g)
                     ver.Chain.ts ver.Chain.value)
              | vs when List.mem ver.Chain.value vs -> ()
              | v :: _ ->
                add
                  (Printf.sprintf
                     "%s: version %s ts %d recovered value %d, written %d"
                     label
                     (Format.asprintf "%a" Granule.pp g)
                     ver.Chain.ts ver.Chain.value v)
            end)
          (Achain.versions (Segment.chain s key)))
      (Segment.keys s)
  done

(* Multi-valued: a pending commit whose frames were truncated never
   reached the disk, so its timestamps are legitimately reused by the
   resumed clock — one (granule, ts) key can have two permissible
   writers across the two phases. *)
let allowed_table visible pendings =
  let allowed : (Granule.t * Time.t, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun ack ->
      List.iter (fun (g, ts, v) -> Hashtbl.add allowed (g, ts) v)
        ack.a_writes)
    visible;
  List.iter
    (fun (_, writes) ->
      List.iter (fun (g, ts, v) -> Hashtbl.add allowed (g, ts) v) writes)
    pendings;
  allowed

let flipped plan =
  List.exists
    (function Fault.Bit_flip _ -> true | _ -> false)
    (Fault.fired plan)

(* Checkpoint equivalence: recovery through the manifest must land on
   exactly the wall-cut of the full-log replay — load(ckpt) + replay
   (tail) = cut(replay(log), wall) — and its clock must dominate. *)
let check_equivalence add ~label (r : Durable.recovered)
    (oracle : Durable.recovered) =
  (match r.Durable.from_checkpoint with
  | None ->
    if Store.dump r.Durable.store <> Store.dump oracle.Durable.store then
      add (label ^ ": full-replay recovery differs from the oracle replay")
  | Some m ->
    if
      Store.dump r.Durable.store
      <> Store.trim_dump ~wall:m.Checkpoint.wall
           (Store.dump oracle.Durable.store)
    then
      add
        (Printf.sprintf
           "%s: checkpoint %d + tail differs from the wall-cut full replay"
           label m.Checkpoint.seq));
  if r.Durable.last_time < oracle.Durable.last_time then
    add
      (Printf.sprintf "%s: recovered clock %d behind the oracle's %d" label
         r.Durable.last_time oracle.Durable.last_time)

(* Replica consistency: at every granule, a replica read at its
   effective wall equals the primary's Protocol A/C read there — and the
   primary's final state is the full-replay oracle. *)
let check_replica add replica (oracle : Durable.recovered)
    ~keys_per_segment =
  if (not (Replica.stalled replica)) && Array.length (Replica.wall replica) > 0
  then begin
    let w = Replica.effective_wall replica in
    Array.iteri
      (fun seg ts ->
        if ts > Time.zero then
          for key = 0 to keys_per_segment - 1 do
            let g = Granule.make ~segment:seg ~key in
            let expected =
              match Store.committed_before oracle.Durable.store g ~ts with
              | Some ver -> ver.Chain.value
              | None -> 0
            in
            match Replica.read replica g ~ts with
            | Ok v when v = expected -> ()
            | Ok v ->
              add
                (Printf.sprintf
                   "replica: read %s at %d returned %d, primary has %d"
                   (Format.asprintf "%a" Granule.pp g)
                   ts v expected)
            | Error _ ->
              add
                (Printf.sprintf
                   "replica: read %s at %d refused below the effective wall"
                   (Format.asprintf "%a" Granule.pp g)
                   ts)
          done)
      w
  end

(* A fresh per-phase observability stack: the monitor must not raise
   (violations join the cycle's list) and must not outlive its phase
   (txn ids recur across sessions, which would confuse its shadow). *)
let watch monitors =
  if not monitors then (None, fun _add ~label:_ -> ())
  else begin
    let trace = Hdd_obs.Trace.create () in
    let monitor = Hdd_obs.Monitor.create ~raise_on_violation:false () in
    Hdd_obs.Monitor.attach monitor trace;
    ( Some trace,
      fun add ~label ->
        List.iter
          (fun v -> add (Printf.sprintf "monitor %s: %s" label v))
          (Hdd_obs.Monitor.violations monitor) )
  end

(* The cross-phase durability monitor: acknowledged (txn, at) commits
   must reappear at every Recovery_complete.  Fed only on flip-free
   cycles — silent log corruption may legitimately destroy acked
   frames. *)
let watch_durability monitors =
  if not monitors then (None, fun _add -> ())
  else begin
    let trace = Hdd_obs.Trace.create () in
    let monitor =
      Hdd_obs.Monitor.create ~durability_only:true ~raise_on_violation:false ()
    in
    Hdd_obs.Monitor.attach monitor trace;
    ( Some trace,
      fun add ->
        List.iter
          (fun v -> add (Printf.sprintf "durability monitor: %s" v))
          (Hdd_obs.Monitor.violations monitor) )
  end

let emit_acks dtrace acked =
  match dtrace with
  | None -> ()
  | Some tr ->
    List.iter
      (fun a ->
        Hdd_obs.Trace.emit tr ~at:a.a_at
          (Hdd_obs.Trace.Durable_ack { txn = a.a_txn; at = a.a_at }))
      acked

(* Remove the log and every checkpoint artifact beside it. *)
let clean_slate path =
  if Sys.file_exists path then Sys.remove path;
  let dir = Filename.dirname path and base = Filename.basename path in
  Array.iter
    (fun f ->
      if
        String.length f > String.length base
        && String.sub f 0 (String.length base) = base
      then try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||])

let run_cycle ?(config = default_config) ?(monitors = false) ~partition ~path
    ~seed () =
  clean_slate path;
  let rng = Prng.create seed in
  let segments = Partition.segment_count partition in
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let group = group_grid.(Prng.int rng (Array.length group_grid)) in
  let replica = Replica.create ~segments ~init:(fun _ -> 0) () in
  let dtrace, ddrain = watch_durability monitors in
  (* phase 1: run into the fault *)
  let plan1 = gen_plan rng config in
  let log1 = Sched_log.create () in
  let trace1, drain1 = watch monitors in
  let shipper1 = Replica.shipper ~faults:plan1 ~log:path replica in
  let db1 =
    Durable.create ~sync_on_commit:(group = None)
      ~sink:(Fault.apply plan1 (Fault.file_sink ~fsync:false ~path ()))
      ?group ~faults:plan1 ~log:log1 ?trace:trace1 ~path ~partition ()
  in
  let p1 = run_phase db1 rng config ~partition ~shipper:shipper1 in
  if not (Certifier.serializable log1) then
    add "phase 1: live schedule not serializable";
  drain1 add ~label:"phase 1";
  (* first recovery: the production path (checkpoint + tail) continues
     the database; the full-replay oracle checks the invariants *)
  let flipped1 = flipped plan1 in
  let r1 = Durable.recover ~path ~segments ~init:(fun _ -> 0) () in
  if not flipped1 then emit_acks dtrace p1.acked;
  let r1_full =
    Durable.recover
      ?trace:(if flipped1 then None else dtrace)
      ~use_checkpoints:false ~path ~segments ~init:(fun _ -> 0) ()
  in
  let visible1 =
    List.filter (fun a -> a.a_offset <= r1_full.Durable.valid_bytes) p1.acked
  in
  if not flipped1 then
    List.iter
      (fun a ->
        if a.a_offset > r1_full.Durable.valid_bytes then
          add
            (Printf.sprintf
               "recovery 1: acked txn %d (log offset %d > intact %d) lost \
                without corruption"
               a.a_txn a.a_offset r1_full.Durable.valid_bytes))
      p1.acked;
  check_recovery add ~label:"recovery 1" r1_full ~visible:visible1
    ~allowed:(allowed_table visible1 p1.pendings);
  if not flipped1 then check_equivalence add ~label:"recovery 1" r1 r1_full;
  if
    not
      (Certifier.serializable
         (committed_write_log (Wal.read_all ~path).Wal.records))
  then add "recovery 1: recovered committed schedule not serializable";
  (* phase 2: continue on the recovered database, maybe into a new fault *)
  let plan2 =
    if Prng.float rng 1.0 < config.second_fault_probability then
      gen_plan rng config
    else Fault.plan []
  in
  let log2 = Sched_log.create () in
  let trace2, drain2 = watch monitors in
  let shipper2 =
    Replica.shipper ~faults:plan2 ~from:(Replica.shipped shipper1) ~log:path
      replica
  in
  let db2 =
    Durable.of_recovery ~sync_on_commit:(group = None)
      ~sink:(Fault.apply plan2 (Fault.file_sink ~fsync:false ~path ()))
      ?group ~faults:plan2 ~log:log2 ?trace:trace2 ~path ~partition r1
  in
  let p2 = run_phase db2 rng config ~partition ~shipper:shipper2 in
  if not (Certifier.serializable log2) then
    add "phase 2: live schedule not serializable";
  drain2 add ~label:"phase 2";
  (* final recovery over the full log *)
  let flipped2 = flipped plan2 in
  let clean = (not flipped1) && not flipped2 in
  let r2 = Durable.recover ~path ~segments ~init:(fun _ -> 0) () in
  if clean then emit_acks dtrace p2.acked;
  let r2_full =
    Durable.recover
      ?trace:(if clean then dtrace else None)
      ~use_checkpoints:false ~path ~segments ~init:(fun _ -> 0) ()
  in
  if r2_full.Durable.valid_bytes < r1_full.Durable.valid_bytes then
    add
      (Printf.sprintf
         "recovery 2: intact prefix shrank (%d < %d): phase 1 state damaged"
         r2_full.Durable.valid_bytes r1_full.Durable.valid_bytes);
  let visible2 =
    List.filter (fun a -> a.a_offset <= r2_full.Durable.valid_bytes) p2.acked
  in
  if clean then
    List.iter
      (fun a ->
        if a.a_offset > r2_full.Durable.valid_bytes then
          add
            (Printf.sprintf
               "recovery 2: acked txn %d (log offset %d > intact %d) lost \
                without corruption"
               a.a_txn a.a_offset r2_full.Durable.valid_bytes))
      p2.acked;
  let visible = visible1 @ visible2 in
  let pendings = p1.pendings @ p2.pendings in
  check_recovery add ~label:"recovery 2" r2_full ~visible
    ~allowed:(allowed_table visible pendings);
  if clean then check_equivalence add ~label:"recovery 2" r2 r2_full;
  if clean then
    check_replica add replica r2_full
      ~keys_per_segment:config.keys_per_segment;
  if clean then ddrain add;
  if
    not
      (Certifier.serializable
         (committed_write_log (Wal.read_all ~path).Wal.records))
  then add "recovery 2: recovered committed schedule not serializable";
  { seed;
    crashed = p1.phase_crashed || p2.phase_crashed;
    fired = Fault.fired plan2 @ Fault.fired plan1;
    reached = Fault.reached plan2 @ Fault.reached plan1;
    acknowledged = List.length p1.acked + List.length p2.acked;
    recovered_committed = r2_full.Durable.committed;
    log_intact = r2_full.Durable.log_intact;
    violations = List.rev !violations }

let run ?(config = default_config) ?(monitors = false) ?(first_seed = 0)
    ~partition ~path ~seeds () =
  let outcomes =
    List.init seeds (fun i ->
        run_cycle ~config ~monitors ~partition ~path ~seed:(first_seed + i) ())
  in
  clean_slate path;
  let reached_kinds =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (o : outcome) ->
        List.iter
          (fun p ->
            let k = Fault.kind p in
            Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
          o.reached)
      outcomes;
    List.filter_map
      (fun k -> Option.map (fun n -> (k, n)) (Hashtbl.find_opt tbl k))
      Fault.kinds
  in
  { cycles = seeds;
    crashes =
      List.length (List.filter (fun (o : outcome) -> o.crashed) outcomes);
    corruptions =
      List.length
        (List.filter
           (fun (o : outcome) ->
             List.exists
               (function Fault.Bit_flip _ -> true | _ -> false)
               o.fired)
           outcomes);
    acknowledged =
      List.fold_left (fun n (o : outcome) -> n + o.acknowledged) 0 outcomes;
    recovered =
      List.fold_left
        (fun n (o : outcome) -> n + o.recovered_committed)
        0 outcomes;
    reached_kinds;
    violating =
      List.filter (fun (o : outcome) -> o.violations <> []) outcomes }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>torture: %d cycles (%d crashed, %d corrupted), %d commits \
     acknowledged, %d recovered, %d violating seed(s)@,\
     fault points reached: %a%a@]"
    r.cycles r.crashes r.corruptions r.acknowledged r.recovered
    (List.length r.violating)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (k, n) -> Format.fprintf ppf "%s=%d" k n))
    r.reached_kinds
    (fun ppf -> function
      | [] -> ()
      | vs ->
        List.iter
          (fun o ->
            Format.fprintf ppf "@,  seed %d:" o.seed;
            List.iter (fun v -> Format.fprintf ppf "@,    %s" v) o.violations)
          vs)
    r.violating
