module Store = Hdd_mvstore.Store
module Retry = Hdd_sim.Retry
module Prng = Hdd_util.Prng

type t = {
  replay : Replay.t;
  mutable wall : Time.t array;  (** received wall; [||] until a trailer *)
  mutable ships : int;
  mutable records : int;
  mutable stalled : bool;
}

let create ?trace ~segments ~init () =
  { replay = Replay.create ?trace ~segments ~init ();
    wall = [||]; ships = 0; records = 0; stalled = false }

let store t = t.replay.Replay.store
let ships t = t.ships
let records t = t.records
let stalled t = t.stalled
let last_time t = t.replay.Replay.last_time
let wall t = t.wall

(* Walls only move forward: a resent batch carries the wall of its first
   send, which may be older than what a later batch already delivered. *)
let merge_wall t components =
  if Array.length t.wall <> Array.length components then
    t.wall <- Array.copy components
  else
    Array.iteri
      (fun i v -> if v > t.wall.(i) then t.wall.(i) <- v)
      components

let receive ?faults t batch =
  t.ships <- t.ships + 1;
  (match faults with
  | Some p -> Fault.cross p (Fault.Ship_apply t.ships)
  | None -> ());
  (match t.replay.Replay.trace with
  | Some tr ->
    Hdd_obs.Trace.emit_here tr
      (Hdd_obs.Trace.Sim { label = "durable.ship"; txn = t.ships })
  | None -> ());
  let len = Bytes.length batch in
  let rec go pos =
    if pos >= len then true
    else
      match Codec.decode batch ~pos with
      | Ok (r, next) ->
        (match r with
        | Codec.Wall { components; _ } -> merge_wall t components
        | r -> Replay.apply t.replay r);
        t.records <- t.records + 1;
        go next
      | Error (`Truncated | `Corrupt) ->
        t.stalled <- true;
        false
  in
  go 0

(* The received wall promises that every commit below it is in the
   shipped prefix — modulo two windows this clamp closes.  A ship
   boundary can cut a transaction in half: it sits in the replay's
   pending table, so the smallest pending init bounds what reads may
   see.  And after a primary crash the clock regresses to the largest
   logged timestamp, so a wall shipped just before the crash can exceed
   every timestamp the log (and hence the replica) will ever justify;
   post-recovery commits then land below it.  Clamping to last_time + 1
   closes that: non-commit frames reach the log in clock order, so any
   commit at or below the replica's last_time is either shipped or has
   shipped Begin/Write frames — and then the pending clamp covers it. *)
let effective_wall t =
  let clamp =
    Hashtbl.fold
      (fun _ (p : Replay.pending_txn) acc -> Stdlib.min acc p.Replay.init)
      t.replay.Replay.pending
      (t.replay.Replay.last_time + 1)
  in
  Array.map (fun w -> Stdlib.min w clamp) t.wall

let read t g ~ts =
  if Array.length t.wall = 0 then Error `No_wall
  else
    let w = effective_wall t in
    if g.Granule.segment < 0 || g.Granule.segment >= Array.length w then
      invalid_arg "Replica.read: granule segment out of range"
    else if ts > w.(g.Granule.segment) then Error `Too_new
    else
      match Store.committed_before (store t) g ~ts with
      | Some v -> Ok v.Hdd_mvstore.Chain.value
      | None -> Error `Too_new

let staleness t ~primary_wall =
  let w = effective_wall t in
  if Array.length w <> Array.length primary_wall then max_int
  else
    let lag = ref 0 in
    Array.iteri
      (fun i p -> if p - w.(i) > !lag then lag := p - w.(i))
      primary_wall;
    !lag

(* --- the shipping side --- *)

type shipper = {
  log : string;
  replica : t;
  faults : Fault.plan option;
  retry : Retry.policy;
  rng : Prng.t;
  rmon : Retry.monitor;
  mutable shipped : int;  (** absolute log bytes delivered and applied *)
  mutable sends : int;
}

let shipper ?faults ?(retry = Retry.default) ?(rng = Prng.create 0x5319)
    ?(from = 0) ~log replica =
  { log; replica; faults; retry; rng; rmon = Retry.monitor retry;
    shipped = from; sends = 0 }

let shipped s = s.shipped
let sends s = s.sends
let ship_livelocked s = Retry.livelocked s.rmon

let read_slice path ~from ~upto =
  if not (Sys.file_exists path) then Bytes.create 0
  else begin
    let ic = In_channel.open_bin path in
    let len = Int64.to_int (In_channel.length ic) in
    let upto = Stdlib.min upto len in
    let n = Stdlib.max 0 (upto - from) in
    let buf = Bytes.create n in
    if n > 0 then begin
      In_channel.seek ic (Int64.of_int from);
      ignore (In_channel.really_input ic buf 0 n)
    end;
    In_channel.close ic;
    buf
  end

exception Stalled

let ship s ~upto ~wall =
  let slice = read_slice s.log ~from:s.shipped ~upto in
  let upto = s.shipped + Bytes.length slice in
  let trailer =
    Codec.encode
      (Codec.Wall
         { released_at = Array.fold_left Stdlib.max Time.zero wall;
           components = Array.copy wall })
  in
  let batch = Bytes.cat slice trailer in
  let result =
    (* a stall is not transient: the corrupt bytes are on the primary's
       disk and every resend of this slice will stall again *)
    match
      Retry.run s.retry s.rng ~monitor:s.rmon
        ~transient:(function Fault.Io_error _ -> true | _ -> false)
        (fun () ->
          s.sends <- s.sends + 1;
          (match s.faults with
          | Some p -> Fault.cross p (Fault.Ship_send s.sends)
          | None -> ());
          if not (receive ?faults:s.faults s.replica batch) then raise Stalled)
    with
    | r -> r
    | exception Stalled -> Error Stalled
  in
  (match result with Ok () -> s.shipped <- upto | Error _ -> ());
  result
