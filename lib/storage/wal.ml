type t = {
  path : string;
  fd : Unix.file_descr;
  oc : out_channel;
  mutable appended : int;
}

let create ~path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
  { path; fd; oc = Unix.out_channel_of_descr fd; appended = 0 }

let append t record =
  output_bytes t.oc (Codec.encode record);
  t.appended <- t.appended + 1

let flush t = Stdlib.flush t.oc

let sync t =
  flush t;
  Unix.fsync t.fd

let close t =
  flush t;
  close_out t.oc (* also closes the descriptor *)

let path t = t.path
let appended t = t.appended

type recovery = {
  records : Codec.record list;
  complete : bool;
  bytes_read : int;
}

let read_all ~path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = Bytes.create len in
  really_input ic buf 0 len;
  close_in ic;
  let rec go pos acc =
    if pos >= len then
      { records = List.rev acc; complete = true; bytes_read = pos }
    else
      match Codec.decode buf ~pos with
      | Ok (r, next) -> go next (r :: acc)
      | Error (`Truncated | `Corrupt) ->
        { records = List.rev acc; complete = false; bytes_read = pos }
  in
  go 0 []
