type t = {
  path : string;
  sink : Fault.sink;
  mutable appended : int;
}

let create ?sink ~path () =
  let sink =
    match sink with Some s -> s | None -> Fault.file_sink ~path ()
  in
  { path; sink; appended = 0 }

let append t record =
  t.sink.Fault.append (Codec.encode record);
  t.appended <- t.appended + 1

let flush t = t.sink.Fault.flush ()
let sync t = t.sink.Fault.sync ()
let close t = t.sink.Fault.close ()
let path t = t.path
let appended t = t.appended

type recovery = {
  records : Codec.record list;
  complete : bool;
  bytes_read : int;
}

let read_from ~path ~offset =
  if not (Sys.file_exists path) then
    (* a database that was never written: recovery of the empty log *)
    { records = []; complete = true; bytes_read = 0 }
  else begin
    let ic = open_in_bin path in
    let file_len = in_channel_length ic in
    let offset = max 0 (min offset file_len) in
    seek_in ic offset;
    let len = file_len - offset in
    let buf = Bytes.create len in
    really_input ic buf 0 len;
    close_in ic;
    let rec go pos acc =
      if pos >= len then
        { records = List.rev acc; complete = true; bytes_read = offset + pos }
      else
        match Codec.decode buf ~pos with
        | Ok (r, next) -> go next (r :: acc)
        | Error (`Truncated | `Corrupt) ->
          { records = List.rev acc; complete = false; bytes_read = offset + pos }
    in
    go 0 []
  end

let read_all ~path = read_from ~path ~offset:0

let size ~path = if Sys.file_exists path then (Unix.stat path).Unix.st_size else 0
