(** Redo-only log replay: the shared state machine behind full-log
    recovery ({!Durable.recover}), checkpoint load and tail replay
    ({!Checkpoint}), and the warm replica ({!Replica}).

    Writes are appended to the log as they are granted, so a replayer
    buffers each transaction's writes and installs them — committed —
    only when it meets the transaction's commit record; an abort or a
    missing commit (a transaction the crash cut short) leaves nothing
    in the store.  Transaction ids recur across sessions, so a Begin
    record resets its id's buffer.

    Replay is idempotent over committed records: installing a version
    whose timestamp is already committed is a no-op.  That is what lets
    a replica re-apply a resent batch (the shipper crashed between
    applying and advancing its cursor) without double-installing. *)

type pending_txn = {
  class_id : int;
  init : Time.t;
  mutable writes : (Granule.t * Time.t * int) list;  (** newest first *)
}

type t = {
  store : int Hdd_mvstore.Store.t;
  pending : (Txn.id, pending_txn) Hashtbl.t;
  mutable last_time : Time.t;  (** largest timestamp seen *)
  mutable committed : int;
  mutable aborted : int;
  trace : Hdd_obs.Trace.t option;
}

val create :
  ?trace:Hdd_obs.Trace.t ->
  segments:int ->
  init:(Granule.t -> int) ->
  unit ->
  t
(** Fresh replay state over an empty store.  With [trace], every applied
    commit emits {!Hdd_obs.Trace.event.Durable_recovered} — the feed of
    the durability monitor rule. *)

val apply : t -> Codec.record -> unit
(** Apply one record.  {!Codec.record.Wall} records (ship-batch
    trailers) are ignored: the wall is connection state, not database
    state — {!Replica} interprets them. *)

val apply_all : t -> Codec.record list -> unit

val see : t -> Time.t -> unit
(** Advance [last_time]. *)

val install_writes : t -> txn:Txn.id -> (Granule.t * Time.t * int) list -> unit
(** Install a committed transaction's buffered writes (newest first),
    first occurrence per granule winning, idempotently. *)

val pending_dump : t -> (Txn.id * int * Time.t * (Granule.t * Time.t * int) list) list
(** The in-flight table, sorted by id: [(txn, class_id, init, writes)] —
    what a checkpoint persists so commits in the log tail can replay. *)

val restore_pending :
  t -> (Txn.id * int * Time.t * (Granule.t * Time.t * int) list) list -> unit
(** Rebuild the in-flight table from a checkpoint's {!pending_dump}. *)

val lost_uncommitted : t -> int
(** Transactions begun but neither committed nor aborted. *)
