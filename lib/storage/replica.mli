(** A warm in-process replica fed by log shipping, serving Protocol A/C
    reads off released time walls.

    The wire format is the log itself: a shipped batch is a raw slice of
    the primary's WAL file — only bytes the primary knows are fsynced
    ({!Durable.durable_offset}) — with one {!Codec.record.Wall} trailer
    carrying the primary's released wall vector.  The trailer is placed
    {e last}, so a batch that half-applies never advances the replica's
    wall past the records it actually holds.

    {b Consistency.}  A replica read at [ts ≤ effective_wall.(segment)]
    returns exactly what the primary's Protocol A/C read at [ts] returns:
    the shipped wall promises every commit below it is in the shipped
    prefix, and {!effective_wall} additionally clamps to the smallest
    in-flight init in the replay state, hiding the window where a ship
    boundary cut a transaction in half.  Reads above the effective wall
    are refused ([`Too_new]) — bounded staleness, never inconsistency.

    {b Fault points.}  Each send crosses [Ship_send n]; each delivery
    crosses [Ship_apply n] {e before} applying, so a transient fault
    drops the whole batch and the retry re-applies it from the top —
    safe, because replay is idempotent over committed records.  A crash
    leaves the cursor unadvanced; the resend after recovery re-applies
    the same slice, again idempotently. *)

type t

val create :
  ?trace:Hdd_obs.Trace.t ->
  segments:int ->
  init:(Granule.t -> int) ->
  unit ->
  t

val receive : ?faults:Fault.plan -> t -> Bytes.t -> bool
(** Apply one shipped batch.  Crosses [Ship_apply]; decodes and applies
    frames in order, the wall trailer last.  Returns false — and marks
    the replica {!stalled} — on a corrupt or torn frame; everything
    before the bad frame is applied, but the wall does not advance. *)

val wall : t -> Time.t array
(** Received wall (componentwise maximum over batches); [[||]] until the
    first trailer arrives. *)

val effective_wall : t -> Time.t array
(** The wall reads are actually served at: the received wall clamped by
    the smallest pending (half-shipped) transaction init and by
    [last_time + 1].  The latter covers primary crashes: a wall shipped
    just before a crash can exceed every logged timestamp, and the
    recovered primary (whose clock resumes from the log) may commit
    below it — timestamps the replica must not serve until re-shipped
    records justify them. *)

val read : t -> Granule.t -> ts:Time.t -> (int, [ `Too_new | `No_wall ]) result
(** Protocol A/C read at [ts]: newest committed version strictly below.
    [`Too_new] when [ts] lies above the effective wall — the caller
    backs off and retries, exactly like a Protocol A conflict. *)

val staleness : t -> primary_wall:Time.t array -> int
(** Largest componentwise lag between the primary's wall and the
    effective wall — the bounded-staleness measure. *)

val store : t -> int Hdd_mvstore.Store.t
val ships : t -> int
val records : t -> int
val stalled : t -> bool
val last_time : t -> Time.t

(** {1 The shipping side} *)

exception Stalled
(** {!ship} returned because the replica refused the batch: a frame in
    the shipped slice failed its checksum, meaning the bytes are corrupt
    on the {e primary's} disk.  Not transient — never retried. *)

type shipper

val shipper :
  ?faults:Fault.plan ->
  ?retry:Hdd_sim.Retry.policy ->
  ?rng:Hdd_util.Prng.t ->
  ?from:int ->
  log:string ->
  t ->
  shipper
(** A cursor over the primary's log file.  [faults] arms the [Ship_send]
    and [Ship_apply] points; [retry] governs backoff on transient send
    faults.  [from] (default 0) resumes a cursor — how a shipper
    reattaches to the same replica after the primary recovers. *)

val ship : shipper -> upto:int -> wall:Time.t array -> (unit, exn) result
(** Ship the log bytes [[shipped, upto)] (clamped to the file) plus the
    wall trailer, retrying transient faults with jittered exponential
    backoff.  On success the cursor advances; on give-up ([Error] of the
    transient fault), stall ([Error Stalled]) or crash it does not, and
    the next {!ship} resends the same slice (idempotent).  An empty
    slice still ships the wall — the heartbeat that lets a quiet
    primary's replica serve fresher reads. *)

val shipped : shipper -> int
val sends : shipper -> int
val ship_livelocked : shipper -> bool
