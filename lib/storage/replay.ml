module Store = Hdd_mvstore.Store
module Trace = Hdd_obs.Trace

type pending_txn = {
  class_id : int;
  init : Time.t;
  mutable writes : (Granule.t * Time.t * int) list;  (** newest first *)
}

type t = {
  store : int Store.t;
  pending : (Txn.id, pending_txn) Hashtbl.t;
  mutable last_time : Time.t;
  mutable committed : int;
  mutable aborted : int;
  trace : Trace.t option;
}

let create ?trace ~segments ~init () =
  { store = Store.create ~segments ~init;
    pending = Hashtbl.create 64;
    last_time = Time.zero;
    committed = 0;
    aborted = 0;
    trace }

let see t ts = if ts > t.last_time then t.last_time <- ts

let begin_pending t ~txn ~class_id ~init =
  see t init;
  Hashtbl.replace t.pending txn { class_id; init; writes = [] }

let add_pending_write t ~txn granule ~ts ~value =
  see t ts;
  match Hashtbl.find_opt t.pending txn with
  | Some p -> p.writes <- (granule, ts, value) :: p.writes
  | None ->
    (* a Write with no Begin in scope (e.g. the Begin fell before a
       checkpoint that lost the txn) — keep it, commit decides *)
    Hashtbl.replace t.pending txn
      { class_id = 0; init = ts; writes = [ (granule, ts, value) ] }

let install_writes t ~txn writes =
  List.iter
    (fun (granule, ts, value) ->
      (* the last write of a granule within a transaction wins; writes
         were buffered newest-first, so install the first occurrence of
         each granule.  The committed_before guard also makes re-applying
         an already-installed record a no-op — what a replica needs when
         a crashed shipper resends a batch. *)
      match Store.committed_before t.store granule ~ts:(ts + 1) with
      | Some v when v.Hdd_mvstore.Chain.ts = ts -> ()
      | _ ->
        ignore (Store.install t.store granule ~ts ~writer:txn ~value);
        Store.commit_version t.store granule ~ts)
    writes

let apply t (r : Codec.record) =
  match r with
  | Codec.Begin { txn; class_id; init } ->
    begin_pending t ~txn ~class_id ~init
  | Codec.Write { txn; granule; ts; value } ->
    add_pending_write t ~txn granule ~ts ~value
  | Codec.Commit { txn; at } ->
    see t at;
    (match Hashtbl.find_opt t.pending txn with
    | None -> ()
    | Some p ->
      install_writes t ~txn p.writes;
      Hashtbl.remove t.pending txn);
    t.committed <- t.committed + 1;
    (match t.trace with
    | Some tr -> Trace.emit tr ~at (Trace.Durable_recovered { txn; at })
    | None -> ())
  | Codec.Abort { txn; at } ->
    see t at;
    Hashtbl.remove t.pending txn;
    t.aborted <- t.aborted + 1
  | Codec.Wall _ -> ()

let apply_all t records = List.iter (apply t) records

let pending_dump t =
  Hashtbl.fold
    (fun txn p acc -> (txn, p.class_id, p.init, p.writes) :: acc)
    t.pending []
  |> List.sort compare

let restore_pending t entries =
  List.iter
    (fun (txn, class_id, init, writes) ->
      see t init;
      List.iter (fun (_, ts, _) -> see t ts) writes;
      Hashtbl.replace t.pending txn { class_id; init; writes })
    entries

let lost_uncommitted t = Hashtbl.length t.pending
