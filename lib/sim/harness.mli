(** Convenience layer used by the benchmark executable, the CLI and the
    integration tests: build fresh controllers for a workload and run a
    protocol comparison over it. *)

type spec =
  | Hdd
  | S2pl
  | S2plNoRl  (** 2PL with read locks off — the Figure 3 cripple *)
  | Tso
  | TsoNoRts  (** TSO with read timestamps off — the Figure 4 cripple *)
  | Mvto
  | Mv2pl
  | Prudent
      (** prudent-precedence ordering — commit-waits require a driver
          honouring [Controller.try_commit] ({!Runner} does); kept out
          of {!all} so the schedule-space explorer, which drives
          operations directly, never sweeps it *)
  | Sdd1
  | Nocc

val spec_name : spec -> string
val all_controlled : spec list
(** Every controller that actually enforces serializability (i.e. all but
    [Nocc] and the crippled variants), in Figure 10 presentation order:
    [Hdd; Sdd1; Mv2pl; S2pl; Tso; Mvto]. *)

val all : spec list
(** Every spec, crippled variants and [Nocc] included — the set the
    schedule-space explorer sweeps. *)

val make :
  ?log:Sched_log.t -> ?trace:Hdd_obs.Trace.t -> spec -> Workload.t ->
  Controller.t
(** A fresh controller instance (own clock and store) for the workload.
    [trace] is threaded to the HDD scheduler (the baselines carry no
    emission hooks and ignore it). *)

val compare_protocols :
  ?config:Runner.config ->
  ?specs:spec list ->
  Workload.t ->
  Runner.result list
(** Run the workload once per controller, each from a fresh instance with
    the same seed, and return the results in spec order. *)

val certified_run :
  ?config:Runner.config -> spec -> Workload.t -> Runner.result * bool
(** Run with schedule logging on and certify the final committed schedule;
    the boolean is the serializability verdict. *)

val traced_run :
  ?config:Runner.config ->
  ?capacity:int ->
  spec ->
  Workload.t ->
  Runner.result * Hdd_obs.Trace.t * Hdd_obs.Metrics.t * Hdd_obs.Monitor.t
(** Run with the full observability stack on: a fresh enabled trace of
    [capacity] records (default 65536), the standard {!Hdd_obs.Metrics}
    bridge and a non-raising {!Hdd_obs.Monitor}.  The caller inspects
    [Hdd_obs.Monitor.violations] for the verdict; for the baselines the
    trace only carries driver-level [Sim] records. *)
