type kind =
  | Update of int
  | Read_only
  | Adhoc of { writes : int list; reads : int list }

type counters = {
  begins : int;
  commits : int;
  aborts : int;
  reads : int;
  writes : int;
  read_registrations : int;
  blocks : int;
  rejects : int;
}

let zero_counters =
  { begins = 0; commits = 0; aborts = 0; reads = 0; writes = 0;
    read_registrations = 0; blocks = 0; rejects = 0 }

let sub_counters a b =
  { begins = a.begins - b.begins;
    commits = a.commits - b.commits;
    aborts = a.aborts - b.aborts;
    reads = a.reads - b.reads;
    writes = a.writes - b.writes;
    read_registrations = a.read_registrations - b.read_registrations;
    blocks = a.blocks - b.blocks;
    rejects = a.rejects - b.rejects }

type t = {
  name : string;
  begin_txn : kind -> Txn.t;
  read : Txn.t -> Granule.t -> int Hdd_core.Outcome.t;
  write : Txn.t -> Granule.t -> int -> unit Hdd_core.Outcome.t;
  commit : Txn.t -> unit;
  abort : Txn.t -> unit;
  try_commit : (Txn.t -> unit Hdd_core.Outcome.t) option;
  snapshot : unit -> counters;
}

let pp_kind ppf = function
  | Update c -> Format.fprintf ppf "update(T%d)" c
  | Read_only -> Format.fprintf ppf "read-only"
  | Adhoc { writes; reads } ->
    Format.fprintf ppf "adhoc(w:{%s} r:{%s})"
      (String.concat "," (List.map string_of_int writes))
      (String.concat "," (List.map string_of_int reads))

let with_hooks ?on_begin ?on_read ?on_write ?on_finish c =
  { c with
    begin_txn =
      (fun k ->
        let t = c.begin_txn k in
        (match on_begin with Some f -> f k t | None -> ());
        t);
    read =
      (fun t g ->
        let o = c.read t g in
        (match on_read with Some f -> f t g o | None -> ());
        o);
    write =
      (fun t g v ->
        let o = c.write t g v in
        (match on_write with Some f -> f t g o | None -> ());
        o);
    commit =
      (fun t ->
        (match on_finish with Some f -> f t ~commit:true | None -> ());
        c.commit t);
    abort =
      (fun t ->
        (match on_finish with Some f -> f t ~commit:false | None -> ());
        c.abort t) }
