type kind =
  | Update of int
  | Read_only
  | Adhoc of { writes : int list; reads : int list }

type counters = {
  begins : int;
  commits : int;
  aborts : int;
  reads : int;
  writes : int;
  read_registrations : int;
  blocks : int;
  rejects : int;
}

let zero_counters =
  { begins = 0; commits = 0; aborts = 0; reads = 0; writes = 0;
    read_registrations = 0; blocks = 0; rejects = 0 }

let sub_counters a b =
  { begins = a.begins - b.begins;
    commits = a.commits - b.commits;
    aborts = a.aborts - b.aborts;
    reads = a.reads - b.reads;
    writes = a.writes - b.writes;
    read_registrations = a.read_registrations - b.read_registrations;
    blocks = a.blocks - b.blocks;
    rejects = a.rejects - b.rejects }

type t = {
  name : string;
  begin_txn : kind -> Txn.t;
  read : Txn.t -> Granule.t -> int Hdd_core.Outcome.t;
  write : Txn.t -> Granule.t -> int -> unit Hdd_core.Outcome.t;
  commit : Txn.t -> unit;
  abort : Txn.t -> unit;
  snapshot : unit -> counters;
}
