(** Workload definitions: the synthetic stand-ins for the paper's §7.4
    case studies (see DESIGN.md, substitutions).

    A workload bundles a validated partition, transaction templates with
    mix weights, and the store initialiser, so the same workload value
    drives every controller. *)

type op = Read of Granule.t | Write of Granule.t * int

type template = {
  tpl_name : string;
  kind : Controller.kind;
  weight : float;
  gen : Hdd_util.Prng.t -> op list;
      (** fresh operation list per transaction instance *)
}

type t = {
  wl_name : string;
  partition : Hdd_core.Partition.t;
  templates : template list;
  init : Granule.t -> int;
}

val pick_template : t -> Hdd_util.Prng.t -> template
(** Weighted choice. *)

val segment_count : t -> int

(** {1 Builders} *)

val inventory :
  ?base_keys:int ->
  ?items:int ->
  ?orders:int ->
  ?events_per_txn:int ->
  ?reads_per_recompute:int ->
  ?ro_weight:float ->
  ?adhoc_weight:float ->
  ?zipf_alpha:float ->
  unit ->
  t
(** The paper's §1.2.1 retail application.  Segments: [D0] = reorder
    records (lowest), [D1] = inventory levels, [D2] = event records
    (sales / modifications / arrivals, highest).  Type 1 inserts events
    into [D2]; type 2 reads events and posts an inventory level in [D1];
    type 3 reads events and inventory and writes a reorder record in
    [D0]; ad hoc read-only transactions audit all three. *)

val chain :
  depth:int ->
  ?keys_per_segment:int ->
  ?reads_up:int ->
  ?cross_read_fraction:float ->
  ?ro_weight:float ->
  ?zipf_alpha:float ->
  unit ->
  t
(** A [depth]-segment chain [D_{depth-1} <- … <- D0]: class [i] writes
    [D_i] and reads upward.  [cross_read_fraction] sets the share of a
    transaction's reads that go to higher segments rather than its own —
    the knob of experiment E11. *)

val tree :
  ?branches:int ->
  ?keys_per_segment:int ->
  ?ro_weight:float ->
  unit ->
  t
(** Segment 0 on top, [branches] child segments each with a class that
    reads the top; read-only transactions span sibling branches — read
    sets on no single critical path, so only the time wall (Protocol C)
    serves them. *)

val random_hierarchy :
  seed:int ->
  ?segments:int ->
  ?keys_per_segment:int ->
  ?ro_weight:float ->
  unit ->
  t
(** A random TST-hierarchical workload: a random tree of segments (arcs
    point from each segment to its parent), one class per segment whose
    reads cover a random subset of its ancestor path (always a legal
    pattern — ancestor arcs are transitively induced), plus read-only
    transactions over arbitrary segments.  Used by the certification
    sweeps to cover hierarchy shapes beyond the fixed examples. *)
