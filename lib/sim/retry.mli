(** Bounded-restart policy for the simulator: how long an aborted
    transaction backs off before re-running, when it gives up, and when
    the whole system counts as livelocked.

    The paper's controllers resolve conflicts by rejection, so the
    restart discipline is part of the concurrency-control story:
    immediate blind restart of a rejected transaction can livelock two
    antagonists into rejecting each other forever, and a fixed backoff
    merely slows the loop down.  The policy here is the classic
    exponential backoff with jitter — deterministic given the caller's
    {!Hdd_util.Prng} — plus a per-transaction restart cap (starvation
    bound) and a system-wide livelock detector. *)

type policy = {
  base : float;  (** backoff before the first re-run, in virtual time *)
  multiplier : float;  (** growth per consecutive restart of one txn *)
  cap : float;  (** ceiling on the deterministic part of the backoff *)
  jitter : float;
      (** extra uniform delay in [0, jitter * backoff): decorrelates
          antagonists that would otherwise re-collide in lockstep *)
  max_restarts : int;
      (** give up on a transaction after this many consecutive
          restarts; 0 means never *)
  livelock_window : int;
      (** declare livelock after this many consecutive restarts
          system-wide with no commit in between; 0 disables *)
}

val default : policy
(** [base = 4.0] (the historical fixed backoff), [multiplier = 2.0],
    [cap = 64.0], [jitter = 0.5], [max_restarts = 50],
    [livelock_window = 50_000]. *)

val fixed : float -> policy
(** The legacy discipline: constant backoff, no jitter, no give-up, no
    livelock detection.  [fixed d] restarts forever every [d]. *)

val backoff : policy -> Hdd_util.Prng.t -> attempt:int -> float
(** Delay before re-running a transaction restarted [attempt] times
    ([attempt >= 1]): [min cap (base * multiplier^(attempt-1))] plus
    the jitter draw.  @raise Invalid_argument if [attempt < 1]. *)

val exhausted : policy -> attempt:int -> bool
(** True when a transaction restarted [attempt] times should give up
    rather than back off again. *)

(** Mutable livelock/starvation monitor: feed it every commit and every
    restart; it trips when [livelock_window] restarts accumulate with no
    commit between them. *)
type monitor

val monitor : policy -> monitor
val note_commit : monitor -> unit
val note_restart : monitor -> unit

val consecutive_restarts : monitor -> int
(** Restarts since the last commit. *)

val livelocked : monitor -> bool

val run :
  policy ->
  Hdd_util.Prng.t ->
  ?monitor:monitor ->
  ?on_backoff:(attempt:int -> delay:float -> unit) ->
  transient:(exn -> bool) ->
  (unit -> 'a) ->
  ('a, exn) result
(** [run policy rng ~transient f] calls [f] until it returns, retrying
    with jittered exponential backoff any exception [transient] accepts
    — the discipline the durable engine's fsync pipeline and the
    replica's catch-up use on transient I/O errors.  Returns [Error e]
    when the policy's [max_restarts] gives up on transient failure [e];
    non-transient exceptions propagate unchanged.  A success feeds
    [note_commit], each retry [note_restart], to the optional [monitor]
    (livelock surfacing); [on_backoff] observes each computed delay
    (virtual time — the caller decides whether to sleep). *)
