module B = Hdd_baselines
module Scheduler = Hdd_core.Scheduler

let of_cc_metrics (m : B.Cc_metrics.t) : Controller.counters =
  { begins = m.B.Cc_metrics.begins;
    commits = m.B.Cc_metrics.commits;
    aborts = m.B.Cc_metrics.aborts;
    reads = m.B.Cc_metrics.reads;
    writes = m.B.Cc_metrics.writes;
    read_registrations = m.B.Cc_metrics.read_registrations;
    blocks = m.B.Cc_metrics.blocks;
    rejects = m.B.Cc_metrics.rejects }

let hdd_detailed ?log ?trace ?wall_every_commits ?gc_every_commits ?gc_on_wall
    ~partition ~init () =
  let clock = Time.Clock.create () in
  let store =
    Hdd_mvstore.Store.create
      ~segments:(Hdd_core.Partition.segment_count partition) ~init
  in
  let sched =
    Scheduler.create ?log ?trace ?wall_every_commits ?gc_every_commits
      ?gc_on_wall ~partition ~clock ~store ()
  in
  let snapshot () : Controller.counters =
    let m = Scheduler.metrics sched in
    { begins = m.Scheduler.begins;
      commits = m.Scheduler.commits;
      aborts = m.Scheduler.aborts;
      reads = m.Scheduler.reads_a + m.Scheduler.reads_b + m.Scheduler.reads_c;
      writes = m.Scheduler.writes;
      read_registrations = m.Scheduler.read_registrations;
      blocks = m.Scheduler.blocks;
      rejects = m.Scheduler.rejects }
  in
  ( { Controller.name = "HDD";
      begin_txn =
        (function
        | Controller.Update class_id -> Scheduler.begin_update sched ~class_id
        | Controller.Read_only -> Scheduler.begin_read_only sched
        | Controller.Adhoc { writes; reads } ->
          Scheduler.begin_adhoc_update sched ~writes ~reads);
      read = Scheduler.read sched;
      write = Scheduler.write sched;
      commit = Scheduler.commit sched;
      abort = Scheduler.abort sched;
      try_commit = None;
      snapshot },
    sched,
    clock )

let hdd ?log ?trace ?wall_every_commits ~partition ~init () =
  let controller, _, _ =
    hdd_detailed ?log ?trace ?wall_every_commits ~partition ~init ()
  in
  controller

let s2pl ?log ?read_locks ~init () =
  let clock = Time.Clock.create () in
  let c = B.S2pl.create ?log ?read_locks ~clock ~init () in
  { Controller.name =
      (match read_locks with Some false -> "2PL-noRL" | _ -> "2PL");
    begin_txn =
      (function
      | Controller.Update _ | Controller.Adhoc _ ->
        B.S2pl.begin_txn c ~read_only:false
      | Controller.Read_only -> B.S2pl.begin_txn c ~read_only:true);
    read = B.S2pl.read c;
    write = B.S2pl.write c;
    commit = B.S2pl.commit c;
    abort = B.S2pl.abort c;
    try_commit = None;
    snapshot = (fun () -> of_cc_metrics (B.S2pl.metrics c)) }

let tso ?log ?read_timestamps ~init () =
  let clock = Time.Clock.create () in
  let c = B.Tso.create ?log ?read_timestamps ~clock ~init () in
  { Controller.name =
      (match read_timestamps with Some false -> "TSO-noRTS" | _ -> "TSO");
    begin_txn = (fun _ -> B.Tso.begin_txn c);
    read = B.Tso.read c;
    write = B.Tso.write c;
    commit = B.Tso.commit c;
    abort = B.Tso.abort c;
    try_commit = None;
    snapshot = (fun () -> of_cc_metrics (B.Tso.metrics c)) }

let mvto ?log ~segments ~init () =
  let clock = Time.Clock.create () in
  let c = B.Mvto.create ?log ~clock ~segments ~init () in
  { Controller.name = "MVTO";
    begin_txn = (fun _ -> B.Mvto.begin_txn c);
    read = B.Mvto.read c;
    write = B.Mvto.write c;
    commit = B.Mvto.commit c;
    abort = B.Mvto.abort c;
    try_commit = None;
    snapshot = (fun () -> of_cc_metrics (B.Mvto.metrics c)) }

let mv2pl ?log ~segments ~init () =
  let clock = Time.Clock.create () in
  let c = B.Mv2pl.create ?log ~clock ~segments ~init () in
  { Controller.name = "MV2PL";
    begin_txn =
      (function
      | Controller.Update _ | Controller.Adhoc _ ->
        B.Mv2pl.begin_txn c ~read_only:false
      | Controller.Read_only -> B.Mv2pl.begin_txn c ~read_only:true);
    read = B.Mv2pl.read c;
    write = B.Mv2pl.write c;
    commit = B.Mv2pl.commit c;
    abort = B.Mv2pl.abort c;
    try_commit = None;
    snapshot = (fun () -> of_cc_metrics (B.Mv2pl.metrics c)) }

let prudent ?log ~segments ~init () =
  let clock = Time.Clock.create () in
  let c = B.Prudent.create ?log ~clock ~segments ~init () in
  { Controller.name = "Prudent";
    begin_txn =
      (function
      | Controller.Update _ | Controller.Adhoc _ ->
        B.Prudent.begin_txn c ~read_only:false
      | Controller.Read_only -> B.Prudent.begin_txn c ~read_only:true);
    read = B.Prudent.read c;
    write = B.Prudent.write c;
    commit = B.Prudent.commit c;
    abort = B.Prudent.abort c;
    try_commit = Some (B.Prudent.try_commit c);
    snapshot = (fun () -> of_cc_metrics (B.Prudent.metrics c)) }

let sdd1 ?log ~partition ~init () =
  let clock = Time.Clock.create () in
  let c = B.Sdd1.create ?log ~clock ~partition ~init () in
  { Controller.name = "SDD-1";
    begin_txn =
      (function
      | Controller.Update class_id -> B.Sdd1.begin_txn c ~class_id
      | Controller.Read_only -> B.Sdd1.begin_adhoc c
      | Controller.Adhoc _ -> B.Sdd1.begin_adhoc ~updates:true c);
    read = B.Sdd1.read c;
    write = B.Sdd1.write c;
    commit = B.Sdd1.commit c;
    abort = B.Sdd1.abort c;
    try_commit = None;
    snapshot = (fun () -> of_cc_metrics (B.Sdd1.metrics c)) }

let nocc ?log ~init () =
  let clock = Time.Clock.create () in
  let c = B.Nocc.create ?log ~clock ~init () in
  { Controller.name = "NoCC";
    begin_txn = (fun _ -> B.Nocc.begin_txn c);
    read = B.Nocc.read c;
    write = B.Nocc.write c;
    commit = B.Nocc.commit c;
    abort = B.Nocc.abort c;
    try_commit = None;
    snapshot = (fun () -> of_cc_metrics (B.Nocc.metrics c)) }
