(** Constructors turning each concrete controller into the uniform
    {!Controller.t} the simulator drives.  Each adapter owns its store,
    clock and (optionally) schedule log, so two controllers never share
    state. *)

val hdd :
  ?log:Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  ?wall_every_commits:int ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t

val hdd_detailed :
  ?log:Sched_log.t ->
  ?trace:Hdd_obs.Trace.t ->
  ?wall_every_commits:int ->
  ?gc_every_commits:int ->
  ?gc_on_wall:bool ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t * int Hdd_core.Scheduler.t * Time.Clock.clock
(** Like {!hdd} but also exposes the scheduler, its clock and the
    garbage-collection knobs, for experiments and properties that
    instrument wall releases, staleness and collection. *)

val s2pl :
  ?log:Sched_log.t ->
  ?read_locks:bool ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t

val tso :
  ?log:Sched_log.t ->
  ?read_timestamps:bool ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t

val mvto :
  ?log:Sched_log.t ->
  segments:int ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t

val mv2pl :
  ?log:Sched_log.t ->
  segments:int ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t

val prudent :
  ?log:Sched_log.t ->
  segments:int ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t
(** Prudent-precedence ordering ({!Hdd_baselines.Prudent}): non-blocking
    reads, exclusive deferred writes, commit-waits on recorded
    precedence edges — the adapter wires {!Hdd_baselines.Prudent.try_commit}
    into [Controller.try_commit] so the driver parks at the commit
    point instead of aborting. *)

val sdd1 :
  ?log:Sched_log.t ->
  partition:Hdd_core.Partition.t ->
  init:(Granule.t -> int) ->
  unit ->
  Controller.t
(** SDD-1 gives read-only transactions no special handling (Figure 10):
    they join a synthetic ad-hoc class whose access set covers every
    segment, so writers pipeline behind them like behind any older
    transaction. *)

val nocc :
  ?log:Sched_log.t -> init:(Granule.t -> int) -> unit -> Controller.t
