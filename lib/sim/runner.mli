(** The discrete-event simulation driver: closed loop ({!run}) and open
    Poisson arrivals ({!run_open}).

    In closed mode, [mpl] workers each run transactions back to back:
    draw a template, begin, issue operations (each costing [op_cost] of
    virtual time), commit, repeat.  A blocked operation parks the worker until all its
    blockers finish; a rejected operation aborts the transaction and
    restarts it with a fresh timestamp under the [retry] policy:
    exponential backoff with jitter per consecutive restart, a
    per-transaction restart cap after which the transaction is given up
    ({!result.gave_up}), and a system-wide livelock detector that fails
    the run rather than spin.  The driver maintains the waits-for
    relation over parked workers and resolves deadlocks by aborting the
    requester whose wait closed a cycle (none of the timestamp-based
    controllers can deadlock; the locking ones can).

    Virtual time, not wall time, is reported: the simulator substitutes
    for the paper's multi-processor testbed (see DESIGN.md). *)

type config = {
  mpl : int;  (** multiprogramming level: concurrent workers *)
  target_commits : int;  (** stop once this many transactions committed *)
  seed : int;
  op_cost : float;  (** virtual service time per granted operation *)
  retry : Retry.policy;  (** restart/backoff/give-up discipline *)
  max_events : int;  (** hard safety bound; exceeded = livelock bug *)
}

val default_config : config

type result = {
  controller : string;
  workload : string;
  committed : int;
  restarts : int;  (** aborts from rejections and deadlocks *)
  deadlocks : int;
  gave_up : int;  (** transactions dropped by the restart cap *)
  total_backoff : float;  (** virtual time spent backing off *)
  max_restart_streak : int;
      (** longest run of restarts with no commit in between *)
  vtime : float;  (** virtual time consumed *)
  throughput : float;  (** commits per unit of virtual time *)
  mean_response : float;
  p95_response : float;
  counters : Controller.counters;  (** controller-side deltas *)
}

val run : ?trace:Hdd_obs.Trace.t -> config -> Workload.t -> Controller.t -> result
(** Closed loop: [mpl] workers run transactions back to back.  With
    [trace], driver-level outcomes the controller never sees — restarts,
    deadlock aborts, give-ups — emit [Sim] records.
    @raise Failure when [max_events] is exceeded. *)

val run_open :
  ?trace:Hdd_obs.Trace.t ->
  ?on_response:(float -> unit) ->
  arrival_rate:float -> config -> Workload.t -> Controller.t -> result
(** Open system: transactions arrive in a Poisson stream of the given
    rate and are served by [mpl] workers; arrivals finding every worker
    busy queue FIFO, and response time is measured from the arrival
    instant, so queueing delay counts.  Offered load beyond the service
    capacity shows up as unbounded response times, which is the point of
    the load-latency experiment.  [on_response] observes every commit's
    response time — the workload suite feeds latency histograms with it.
    @raise Invalid_argument on a non-positive rate;
    @raise Failure when [max_events] is exceeded. *)

val run_arrivals :
  ?trace:Hdd_obs.Trace.t ->
  ?on_response:(float -> unit) ->
  interarrival:(Hdd_util.Prng.t -> float) ->
  config -> Workload.t -> Controller.t -> result
(** Like {!run_open} but with an arbitrary interarrival sampler — the
    hook for bursty (MMPP) and think-time-driven arrival processes from
    the workload suite.  Negative samples are clamped to 0. *)

val pp_result : Format.formatter -> result -> unit
