(** The uniform face every concurrency controller shows the simulator:
    first-class operations plus cumulative counters.  One driver then runs
    the HDD scheduler and every baseline over identical workloads —
    Figure 10's comparison as measurement instead of a table of
    adjectives. *)

type kind =
  | Update of int
  | Read_only
  | Adhoc of { writes : int list; reads : int list }
      (** an update transaction outside the analysed classification
          (§7.1.1), declared by its segment-level access sets *)
(** How the workload declares a transaction. *)

type counters = {
  begins : int;
  commits : int;
  aborts : int;
  reads : int;
  writes : int;
  read_registrations : int;
      (** read locks set or read timestamps written *)
  blocks : int;
  rejects : int;
}

val zero_counters : counters
val sub_counters : counters -> counters -> counters

type t = {
  name : string;
  begin_txn : kind -> Txn.t;
  read : Txn.t -> Granule.t -> int Hdd_core.Outcome.t;
  write : Txn.t -> Granule.t -> int -> unit Hdd_core.Outcome.t;
  commit : Txn.t -> unit;
  abort : Txn.t -> unit;
  snapshot : unit -> counters;
}
