(** The uniform face every concurrency controller shows the simulator:
    first-class operations plus cumulative counters.  One driver then runs
    the HDD scheduler and every baseline over identical workloads —
    Figure 10's comparison as measurement instead of a table of
    adjectives. *)

type kind =
  | Update of int
  | Read_only
  | Adhoc of { writes : int list; reads : int list }
      (** an update transaction outside the analysed classification
          (§7.1.1), declared by its segment-level access sets *)
(** How the workload declares a transaction. *)

type counters = {
  begins : int;
  commits : int;
  aborts : int;
  reads : int;
  writes : int;
  read_registrations : int;
      (** read locks set or read timestamps written *)
  blocks : int;
  rejects : int;
}

val zero_counters : counters
val sub_counters : counters -> counters -> counters

type t = {
  name : string;
  begin_txn : kind -> Txn.t;
  read : Txn.t -> Granule.t -> int Hdd_core.Outcome.t;
  write : Txn.t -> Granule.t -> int -> unit Hdd_core.Outcome.t;
  commit : Txn.t -> unit;
  abort : Txn.t -> unit;
  try_commit : (Txn.t -> unit Hdd_core.Outcome.t) option;
      (** commit admission, for controllers that may delay the commit
          point itself (prudent-precedence commit-waits).  [Granted ()]
          means the driver may call {!commit} now; [Blocked preds] parks
          the transaction until its predecessors finish; [Rejected]
          restarts it.  [None]: commits are always admissible. *)
  snapshot : unit -> counters;
}

val pp_kind : Format.formatter -> kind -> unit

val with_hooks :
  ?on_begin:(kind -> Txn.t -> unit) ->
  ?on_read:(Txn.t -> Granule.t -> int Hdd_core.Outcome.t -> unit) ->
  ?on_write:(Txn.t -> Granule.t -> unit Hdd_core.Outcome.t -> unit) ->
  ?on_finish:(Txn.t -> commit:bool -> unit) ->
  t ->
  t
(** Deterministic observation hooks around every concurrency-control
    decision point, with no change in behaviour: the schedule-space
    explorer and the conformance properties use them to watch a
    controller decide without instrumenting the controller itself.
    Finish hooks fire just {e before} the commit/abort reaches the
    controller, so the observed transaction is still active. *)
