(** Priority queue of timed events for the discrete-event simulator.
    Events at equal times pop in insertion order (a monotone sequence
    number breaks ties), which keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> time:float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
val peek_time : 'a t -> float option
val size : 'a t -> int
val is_empty : 'a t -> bool
