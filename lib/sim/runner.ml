module Prng = Hdd_util.Prng
module Dist = Hdd_util.Dist
module Stats = Hdd_util.Stats

type config = {
  mpl : int;
  target_commits : int;
  seed : int;
  op_cost : float;
  retry : Retry.policy;
  max_events : int;
}

let default_config =
  { mpl = 8; target_commits = 2000; seed = 42; op_cost = 1.0;
    retry = Retry.default; max_events = 10_000_000 }

type result = {
  controller : string;
  workload : string;
  committed : int;
  restarts : int;
  deadlocks : int;
  gave_up : int;
  total_backoff : float;
  max_restart_streak : int;
  vtime : float;
  throughput : float;
  mean_response : float;
  p95_response : float;
  counters : Controller.counters;
}

type worker = {
  wid : int;
  rng : Prng.t;
  retry_rng : Prng.t;  (** backoff jitter, kept off the workload stream *)
  mutable txn : Txn.t option;
  mutable tpl : Workload.template option;
  mutable ops : Workload.op list;  (** remaining operations *)
  mutable all_ops : Workload.op list;  (** for restarts *)
  mutable first_begin : float;  (** response time includes restarts *)
  mutable attempts : int;  (** consecutive restarts of the current txn *)
  mutable parked_on : Txn.id list;  (** empty when runnable *)
  mutable needs_restart : bool;
  mutable idle : bool;  (** open mode: waiting for an arrival *)
}

type event = Start of int | Do of int | Arrive  (** worker ids *)

(* In closed mode the [mpl] workers run transactions back to back.  In
   open mode the same workers act as servers for an arrival stream
   drawn from an interarrival sampler (Poisson, bursty, …): an arrival
   is served immediately by an idle worker or queues (FIFO); response
   time is measured from the *arrival* instant, so queueing delay
   counts — the standard open-system latency. *)
type mode = Closed | Open of (Prng.t -> float)  (** interarrival sampler *)

let run_impl ?trace ?on_response ~mode config workload (c : Controller.t) =
  if config.mpl <= 0 then invalid_arg "Runner.run: mpl must be positive";
  (* driver-level telemetry: restarts, deadlock aborts and give-ups are
     scheduling-policy outcomes the controller never sees *)
  let emit_sim label txn =
    match trace with
    | None -> ()
    | Some tr -> Hdd_obs.Trace.emit_here tr (Hdd_obs.Trace.Sim { label; txn })
  in
  let q : event Event_queue.t = Event_queue.create () in
  let base_rng = Prng.create config.seed in
  let arrival_rng = Prng.split base_rng in
  let workers =
    Array.init config.mpl (fun wid ->
        let rng = Prng.split base_rng in
        { wid; rng; retry_rng = Prng.split base_rng; txn = None; tpl = None;
          ops = []; all_ops = []; first_begin = 0.; attempts = 0;
          parked_on = []; needs_restart = false; idle = false })
  in
  (* waiters: finished-transaction wakeups.  txn id -> worker ids parked on
     it. *)
  let waiters : (Txn.id, int list) Hashtbl.t = Hashtbl.create 64 in
  (* owner of each active transaction, for deadlock detection *)
  let owner : (Txn.id, int) Hashtbl.t = Hashtbl.create 64 in
  let committed = ref 0 in
  let restarts = ref 0 in
  let deadlocks = ref 0 in
  let gave_up = ref 0 in
  let total_backoff = ref 0. in
  let max_streak = ref 0 in
  let retry_monitor = Retry.monitor config.retry in
  let response = Stats.create () in
  let start_counters = c.Controller.snapshot () in
  let now = ref 0. in
  (* open mode: arrival instants waiting for a free server *)
  let backlog : float Queue.t = Queue.create () in

  let begin_fresh w ~restart =
    let tpl =
      match (restart, w.tpl) with
      | true, Some tpl -> tpl
      | _ -> Workload.pick_template workload w.rng
    in
    let txn = c.Controller.begin_txn tpl.Workload.kind in
    let ops = if restart then w.all_ops else tpl.Workload.gen w.rng in
    w.txn <- Some txn;
    w.tpl <- Some tpl;
    w.ops <- ops;
    w.all_ops <- ops;
    Hashtbl.replace owner txn.Txn.id w.wid
  in

  let wake_waiters txn_id =
    match Hashtbl.find_opt waiters txn_id with
    | None -> ()
    | Some ws ->
      Hashtbl.remove waiters txn_id;
      List.iter
        (fun wid ->
          let w = workers.(wid) in
          w.parked_on <- List.filter (fun b -> b <> txn_id) w.parked_on;
          if w.parked_on = [] then Event_queue.push q ~time:!now (Do wid))
        ws
  in

  let finish_txn w ~commit =
    match w.txn with
    | None -> ()
    | Some txn ->
      if commit then c.Controller.commit txn else c.Controller.abort txn;
      Hashtbl.remove owner txn.Txn.id;
      w.txn <- None;
      wake_waiters txn.Txn.id
  in

  (* Deadlock detection: does following parked_on edges from [start_wid]
     come back to it?  Edges go worker -> owner of each blocker. *)
  let in_deadlock start_wid =
    let visited = Hashtbl.create 8 in
    let rec dfs wid =
      if Hashtbl.mem visited wid then false
      else begin
        Hashtbl.replace visited wid ();
        List.exists
          (fun b ->
            match Hashtbl.find_opt owner b with
            | None -> false
            | Some o -> o = start_wid || dfs o)
          workers.(wid).parked_on
      end
    in
    List.exists
      (fun b ->
        match Hashtbl.find_opt owner b with
        | None -> false
        | Some o -> o = start_wid || dfs o)
      workers.(start_wid).parked_on
  in

  (* what a worker does once its transaction has committed or been
     abandoned *)
  let next_assignment w =
    match mode with
    | Closed -> Event_queue.push q ~time:(!now +. config.op_cost) (Start w.wid)
    | Open _ ->
      if Queue.is_empty backlog then w.idle <- true
      else begin
        let arrived = Queue.pop backlog in
        w.first_begin <- arrived;
        Event_queue.push q ~time:(!now +. config.op_cost) (Start w.wid)
      end
  in

  (* Abort and re-run the worker's transaction under the retry policy:
     back off exponentially (with jitter) per consecutive restart, give
     the transaction up entirely once the policy is exhausted, and fail
     fast when the whole system restarts without ever committing. *)
  let restart w =
    incr restarts;
    let tid = match w.txn with Some t -> t.Txn.id | None -> -1 in
    emit_sim "restart" tid;
    Retry.note_restart retry_monitor;
    if Retry.consecutive_restarts retry_monitor > !max_streak then
      max_streak := Retry.consecutive_restarts retry_monitor;
    if Retry.livelocked retry_monitor then
      failwith
        (Printf.sprintf
           "Runner.run: livelock detected (%d consecutive restarts without \
            a commit)"
           (Retry.consecutive_restarts retry_monitor));
    finish_txn w ~commit:false;
    w.attempts <- w.attempts + 1;
    if Retry.exhausted config.retry ~attempt:w.attempts then begin
      (* starvation bound: drop this transaction rather than retry it
         forever; the worker moves on to fresh work *)
      incr gave_up;
      emit_sim "give_up" tid;
      w.attempts <- 0;
      w.tpl <- None;
      w.all_ops <- [];
      w.needs_restart <- false;
      next_assignment w
    end
    else begin
      let delay = Retry.backoff config.retry w.retry_rng ~attempt:w.attempts in
      total_backoff := !total_backoff +. delay;
      w.needs_restart <- true;
      Event_queue.push q ~time:(!now +. delay) (Do w.wid)
    end
  in

  let park w blockers =
    let live =
      List.filter (fun b -> Hashtbl.mem owner b) blockers
      |> List.sort_uniq compare
    in
    if live = [] then
      (* everything already finished: retry immediately *)
      Event_queue.push q ~time:!now (Do w.wid)
    else begin
      w.parked_on <- live;
      List.iter
        (fun b ->
          let ws =
            match Hashtbl.find_opt waiters b with Some l -> l | None -> []
          in
          Hashtbl.replace waiters b (w.wid :: ws))
        live;
      if in_deadlock w.wid then begin
        (* break the cycle by aborting the requester *)
        incr deadlocks;
        emit_sim "deadlock"
          (match w.txn with Some t -> t.Txn.id | None -> -1);
        (* unpark first so the wakeups of our own finish don't re-add us *)
        List.iter
          (fun b ->
            match Hashtbl.find_opt waiters b with
            | None -> ()
            | Some ws ->
              Hashtbl.replace waiters b (List.filter (fun x -> x <> w.wid) ws))
          w.parked_on;
        w.parked_on <- [];
        restart w
      end
    end
  in

  let do_op w =
    match w.txn with
    | None ->
      (* a transaction restarting after a rejection or deadlock abort *)
      begin_fresh w ~restart:w.needs_restart;
      w.needs_restart <- false;
      Event_queue.push q ~time:(!now +. config.op_cost) (Do w.wid)
    | Some txn -> (
      match w.ops with
      | [] -> (
        (* all operations done: ask for commit admission, then commit *)
        let admitted =
          match c.Controller.try_commit with
          | None -> Hdd_core.Outcome.Granted ()
          | Some f -> f txn
        in
        match admitted with
        | Hdd_core.Outcome.Granted () ->
          finish_txn w ~commit:true;
          incr committed;
          Retry.note_commit retry_monitor;
          w.attempts <- 0;
          let r = !now -. w.first_begin in
          Stats.add response r;
          (match on_response with Some f -> f r | None -> ());
          w.tpl <- None;
          w.all_ops <- [];
          next_assignment w
        | Hdd_core.Outcome.Blocked blockers ->
          (* commit-wait: park until the predecessors finish *)
          park w blockers
        | Hdd_core.Outcome.Rejected _ -> restart w)
      | op :: rest -> (
        let outcome =
          match op with
          | Workload.Read g ->
            (match c.Controller.read txn g with
            | Hdd_core.Outcome.Granted _ -> Hdd_core.Outcome.Granted ()
            | Hdd_core.Outcome.Blocked b -> Hdd_core.Outcome.Blocked b
            | Hdd_core.Outcome.Rejected r -> Hdd_core.Outcome.Rejected r)
          | Workload.Write (g, v) -> c.Controller.write txn g v
        in
        match outcome with
        | Hdd_core.Outcome.Granted () ->
          w.ops <- rest;
          Event_queue.push q ~time:(!now +. config.op_cost) (Do w.wid)
        | Hdd_core.Outcome.Blocked blockers -> park w blockers
        | Hdd_core.Outcome.Rejected _ -> restart w))
  in

  let start_worker w =
    begin_fresh w ~restart:false;
    (match mode with
    | Closed -> w.first_begin <- !now
    | Open _ -> () (* set from the arrival instant *));
    Event_queue.push q ~time:(!now +. config.op_cost) (Do w.wid)
  in

  let handle_arrival () =
    match mode with
    | Closed -> ()
    | Open interarrival ->
      (* serve with an idle worker or queue the arrival *)
      (match Array.find_opt (fun w -> w.idle) workers with
      | Some w ->
        w.idle <- false;
        w.first_begin <- !now;
        Event_queue.push q ~time:!now (Start w.wid)
      | None -> Queue.push !now backlog);
      Event_queue.push q
        ~time:(!now +. Float.max 0. (interarrival arrival_rng))
        Arrive
  in

  (match mode with
  | Closed ->
    Array.iter (fun w -> Event_queue.push q ~time:0. (Start w.wid)) workers
  | Open _ ->
    Array.iter (fun w -> w.idle <- true) workers;
    Event_queue.push q ~time:0. Arrive);
  let events = ref 0 in
  let rec loop () =
    if !committed >= config.target_commits then ()
    else
      match Event_queue.pop q with
      | None -> failwith "Runner.run: event queue drained (all workers stuck)"
      | Some (t, ev) ->
        now := t;
        incr events;
        if !events > config.max_events then
          failwith "Runner.run: event budget exceeded (livelock?)";
        (match ev with
        | Arrive -> handle_arrival ()
        | Start wid -> start_worker workers.(wid)
        | Do wid ->
          let w = workers.(wid) in
          (* ignore stale wakeups for parked workers *)
          if w.parked_on = [] then do_op w);
        loop ()
  in
  loop ();
  let counters =
    Controller.sub_counters (c.Controller.snapshot ()) start_counters
  in
  { controller = c.Controller.name;
    workload = workload.Workload.wl_name;
    committed = !committed;
    restarts = !restarts;
    deadlocks = !deadlocks;
    gave_up = !gave_up;
    total_backoff = !total_backoff;
    max_restart_streak = !max_streak;
    vtime = !now;
    throughput = (if !now > 0. then float_of_int !committed /. !now else 0.);
    mean_response = Stats.mean response;
    p95_response =
      (if Stats.count response > 0 then Stats.percentile response 95. else nan);
    counters }

let run ?trace config workload c = run_impl ?trace ~mode:Closed config workload c

let run_arrivals ?trace ?on_response ~interarrival config workload c =
  run_impl ?trace ?on_response ~mode:(Open interarrival) config workload c

let run_open ?trace ?on_response ~arrival_rate config workload c =
  if arrival_rate <= 0. then
    invalid_arg "Runner.run_open: arrival rate must be positive";
  run_impl ?trace ?on_response
    ~mode:(Open (fun rng -> Dist.exponential rng ~rate:arrival_rate))
    config workload c

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>%s on %s: %d committed, %d restarts (%d deadlocks, %d gave up, \
     backoff %.1f, worst streak %d), vtime %.1f, tput %.3f, resp mean %.2f \
     p95 %.2f, regs %d, blocks %d, rejects %d@]"
    r.controller r.workload r.committed r.restarts r.deadlocks r.gave_up
    r.total_backoff r.max_restart_streak r.vtime r.throughput r.mean_response
    r.p95_response r.counters.Controller.read_registrations
    r.counters.Controller.blocks r.counters.Controller.rejects
