module Prng = Hdd_util.Prng

type policy = {
  base : float;
  multiplier : float;
  cap : float;
  jitter : float;
  max_restarts : int;
  livelock_window : int;
}

let default =
  { base = 4.0; multiplier = 2.0; cap = 64.0; jitter = 0.5; max_restarts = 50;
    livelock_window = 50_000 }

let fixed d =
  { base = d; multiplier = 1.0; cap = d; jitter = 0.0; max_restarts = 0;
    livelock_window = 0 }

let backoff p rng ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff: attempt must be >= 1";
  let d =
    Float.min p.cap (p.base *. (p.multiplier ** float_of_int (attempt - 1)))
  in
  if p.jitter > 0. then d +. Prng.float rng (p.jitter *. d) else d

let exhausted p ~attempt = p.max_restarts > 0 && attempt >= p.max_restarts

type monitor = { p : policy; mutable streak : int }

let monitor p = { p; streak = 0 }
let note_commit m = m.streak <- 0
let note_restart m = m.streak <- m.streak + 1
let consecutive_restarts m = m.streak
let livelocked m = m.p.livelock_window > 0 && m.streak >= m.p.livelock_window

let run p rng ?monitor ?on_backoff ~transient f =
  let note g = match monitor with Some m -> g m | None -> () in
  let rec go attempt =
    match f () with
    | v ->
      note note_commit;
      Ok v
    | exception e when transient e ->
      let attempt = attempt + 1 in
      note note_restart;
      if exhausted p ~attempt then Error e
      else begin
        let delay = backoff p rng ~attempt in
        (match on_backoff with
        | Some g -> g ~attempt ~delay
        | None -> ());
        go attempt
      end
  in
  go 0
