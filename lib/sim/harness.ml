type spec =
  | Hdd
  | S2pl
  | S2plNoRl
  | Tso
  | TsoNoRts
  | Mvto
  | Mv2pl
  | Prudent
  | Sdd1
  | Nocc

let spec_name = function
  | Hdd -> "HDD"
  | S2pl -> "2PL"
  | S2plNoRl -> "2PL-noRL"
  | Tso -> "TSO"
  | TsoNoRts -> "TSO-noRTS"
  | Mvto -> "MVTO"
  | Mv2pl -> "MV2PL"
  | Prudent -> "Prudent"
  | Sdd1 -> "SDD-1"
  | Nocc -> "NoCC"

let all_controlled = [ Hdd; Sdd1; Mv2pl; S2pl; Tso; Mvto ]

let all = [ Hdd; Sdd1; Mv2pl; S2pl; S2plNoRl; Tso; TsoNoRts; Mvto; Nocc ]

let make ?log ?trace spec (wl : Workload.t) =
  let init = wl.Workload.init in
  let segments = Workload.segment_count wl in
  match spec with
  | Hdd -> Adapters.hdd ?log ?trace ~partition:wl.Workload.partition ~init ()
  | S2pl -> Adapters.s2pl ?log ~init ()
  | S2plNoRl -> Adapters.s2pl ?log ~read_locks:false ~init ()
  | Tso -> Adapters.tso ?log ~init ()
  | TsoNoRts -> Adapters.tso ?log ~read_timestamps:false ~init ()
  | Mvto -> Adapters.mvto ?log ~segments ~init ()
  | Mv2pl -> Adapters.mv2pl ?log ~segments ~init ()
  | Prudent -> Adapters.prudent ?log ~segments ~init ()
  | Sdd1 -> Adapters.sdd1 ?log ~partition:wl.Workload.partition ~init ()
  | Nocc -> Adapters.nocc ?log ~init ()

let compare_protocols ?(config = Runner.default_config)
    ?(specs = all_controlled) wl =
  List.map (fun spec -> Runner.run config wl (make spec wl)) specs

let certified_run ?(config = Runner.default_config) spec wl =
  let log = Sched_log.create () in
  let controller = make ~log spec wl in
  let result = Runner.run config wl controller in
  (result, Hdd_core.Certifier.serializable log)

let traced_run ?(config = Runner.default_config) ?capacity spec wl =
  let trace = Hdd_obs.Trace.create ?capacity () in
  Hdd_obs.Trace.enable trace;
  let monitor = Hdd_obs.Monitor.create ~raise_on_violation:false () in
  Hdd_obs.Monitor.attach monitor trace;
  let metrics = Hdd_obs.Metrics.create () in
  Hdd_obs.Metrics.attach metrics trace;
  let controller = make ~trace spec wl in
  let result = Runner.run ~trace config wl controller in
  (result, trace, metrics, monitor)
