module Prng = Hdd_util.Prng
module Dist = Hdd_util.Dist
module Spec = Hdd_core.Spec
module Partition = Hdd_core.Partition

type op = Read of Granule.t | Write of Granule.t * int

type template = {
  tpl_name : string;
  kind : Controller.kind;
  weight : float;
  gen : Prng.t -> op list;
}

type t = {
  wl_name : string;
  partition : Partition.t;
  templates : template list;
  init : Granule.t -> int;
}

let pick_template t g =
  let total = List.fold_left (fun acc tpl -> acc +. tpl.weight) 0. t.templates in
  let x = Prng.float g total in
  let rec go acc = function
    | [] -> List.hd t.templates
    | tpl :: rest ->
      let acc = acc +. tpl.weight in
      if x < acc then tpl else go acc rest
  in
  go 0. t.templates

let segment_count t = Partition.segment_count t.partition

let granule segment key = Granule.make ~segment ~key

let zero_init _ = 0

(* --- the paper's retail inventory application (§1.2.1) --- *)

let inventory ?(base_keys = 256) ?(items = 64) ?(orders = 64)
    ?(events_per_txn = 2) ?(reads_per_recompute = 4) ?(ro_weight = 0.15)
    ?(adhoc_weight = 0.0) ?(zipf_alpha = 0.6) () =
  let spec =
    Spec.make
      ~segments:[ "reorders"; "inventory"; "events" ]
      ~types:
        [ Spec.txn_type ~name:"type1-log-event" ~writes:[ 2 ] ~reads:[];
          Spec.txn_type ~name:"type2-recompute" ~writes:[ 1 ] ~reads:[ 1; 2 ];
          Spec.txn_type ~name:"type3-reorder" ~writes:[ 0 ] ~reads:[ 0; 1; 2 ] ]
  in
  let partition = Partition.build_exn spec in
  let zipf_events = Dist.zipf ~n:base_keys ~alpha:zipf_alpha in
  let zipf_items = Dist.zipf ~n:items ~alpha:zipf_alpha in
  let type1 g =
    List.init events_per_txn (fun _ ->
        Write (granule 2 (Dist.zipf_draw zipf_events g), Prng.int g 1000))
  in
  let type2 g =
    let item = Dist.zipf_draw zipf_items g in
    let event_reads =
      List.init reads_per_recompute (fun _ ->
          Read (granule 2 (Dist.zipf_draw zipf_events g)))
    in
    event_reads
    @ [ Read (granule 1 item); Write (granule 1 item, Prng.int g 1000) ]
  in
  let type3 g =
    let item = Dist.zipf_draw zipf_items g in
    let order = Prng.int g orders in
    [ Read (granule 2 (Dist.zipf_draw zipf_events g));
      Read (granule 1 item);
      Read (granule 0 order);
      Write (granule 0 order, Prng.int g 1000) ]
  in
  let audit g =
    let item = Dist.zipf_draw zipf_items g in
    [ Read (granule 2 (Dist.zipf_draw zipf_events g));
      Read (granule 1 item);
      Read (granule 0 (Prng.int g orders)) ]
  in
  (* an ad-hoc correction: amend an event record AND the inventory level
     it fed — writes in two segments, outside every analysed class *)
  let correction g =
    let item = Dist.zipf_draw zipf_items g in
    let event = Dist.zipf_draw zipf_events g in
    [ Read (granule 2 event);
      Write (granule 2 event, Prng.int g 1000);
      Read (granule 1 item);
      Write (granule 1 item, Prng.int g 1000) ]
  in
  { wl_name = "inventory";
    partition;
    templates =
      [ { tpl_name = "type1"; kind = Controller.Update 2; weight = 0.4;
          gen = type1 };
        { tpl_name = "type2"; kind = Controller.Update 1; weight = 0.3;
          gen = type2 };
        { tpl_name = "type3"; kind = Controller.Update 0;
          weight = Float.max 0. (0.3 -. ro_weight -. adhoc_weight);
          gen = type3 };
        { tpl_name = "audit"; kind = Controller.Read_only; weight = ro_weight;
          gen = audit };
        { tpl_name = "correction";
          kind = Controller.Adhoc { writes = [ 1; 2 ]; reads = [ 1; 2 ] };
          weight = adhoc_weight;
          gen = correction } ];
    init = zero_init }

(* --- parametric chain for the sweeps --- *)

let chain ~depth ?(keys_per_segment = 128) ?(reads_up = 4)
    ?(cross_read_fraction = 0.75) ?(ro_weight = 0.1) ?(zipf_alpha = 0.6) () =
  if depth < 1 then invalid_arg "Workload.chain: depth must be >= 1";
  let segments = List.init depth (fun i -> Printf.sprintf "level%d" i) in
  (* class i writes D_i and reads everything above (D_{i+1} .. D_{depth-1}) *)
  let types =
    List.init depth (fun i ->
        Spec.txn_type
          ~name:(Printf.sprintf "class%d" i)
          ~writes:[ i ]
          ~reads:(List.init (depth - i) (fun k -> i + k)))
  in
  let spec = Spec.make ~segments ~types in
  let partition = Partition.build_exn spec in
  let zipf = Dist.zipf ~n:keys_per_segment ~alpha:zipf_alpha in
  let gen_for_class i g =
    let reads =
      List.init reads_up (fun _ ->
          let cross =
            i < depth - 1 && Dist.bernoulli g ~p:cross_read_fraction
          in
          let seg =
            if cross then Dist.uniform_int g ~lo:(i + 1) ~hi:(depth - 1)
            else i
          in
          Read (granule seg (Dist.zipf_draw zipf g)))
    in
    reads @ [ Write (granule i (Dist.zipf_draw zipf g), Prng.int g 1000) ]
  in
  let ro g =
    List.init reads_up (fun _ ->
        Read
          (granule (Dist.uniform_int g ~lo:0 ~hi:(depth - 1))
             (Dist.zipf_draw zipf g)))
  in
  let update_weight = (1. -. ro_weight) /. float_of_int depth in
  { wl_name = Printf.sprintf "chain-%d" depth;
    partition;
    templates =
      List.init depth (fun i ->
          { tpl_name = Printf.sprintf "class%d" i;
            kind = Controller.Update i;
            weight = update_weight;
            gen = gen_for_class i })
      @ [ { tpl_name = "ro"; kind = Controller.Read_only; weight = ro_weight;
            gen = ro } ];
    init = zero_init }

(* --- branching tree: read-only transactions span branches --- *)

let tree ?(branches = 3) ?(keys_per_segment = 128) ?(ro_weight = 0.2) () =
  if branches < 2 then invalid_arg "Workload.tree: branches must be >= 2";
  let segments =
    "base" :: List.init branches (fun i -> Printf.sprintf "branch%d" i)
  in
  let types =
    Spec.txn_type ~name:"feeder" ~writes:[ 0 ] ~reads:[]
    :: List.init branches (fun i ->
           Spec.txn_type
             ~name:(Printf.sprintf "derive%d" i)
             ~writes:[ i + 1 ]
             ~reads:[ 0; i + 1 ])
  in
  let spec = Spec.make ~segments ~types in
  let partition = Partition.build_exn spec in
  let key g = Prng.int g keys_per_segment in
  let feeder g = [ Write (granule 0 (key g), Prng.int g 1000) ] in
  let derive i g =
    [ Read (granule 0 (key g));
      Read (granule (i + 1) (key g));
      Write (granule (i + 1) (key g), Prng.int g 1000) ]
  in
  let ro g =
    (* reads two distinct branches plus the base: on no critical path *)
    let a = Prng.int g branches in
    let b = (a + 1 + Prng.int g (branches - 1)) mod branches in
    [ Read (granule 0 (key g));
      Read (granule (a + 1) (key g));
      Read (granule (b + 1) (key g)) ]
  in
  let update_weight = (1. -. ro_weight) /. float_of_int (branches + 1) in
  { wl_name = Printf.sprintf "tree-%d" branches;
    partition;
    templates =
      ({ tpl_name = "feeder"; kind = Controller.Update 0;
         weight = update_weight; gen = feeder }
      :: List.init branches (fun i ->
             { tpl_name = Printf.sprintf "derive%d" i;
               kind = Controller.Update (i + 1);
               weight = update_weight;
               gen = derive i }))
      @ [ { tpl_name = "ro-span"; kind = Controller.Read_only;
            weight = ro_weight; gen = ro } ];
    init = zero_init }

(* --- random TST hierarchies for the certification sweeps --- *)

let random_hierarchy ~seed ?(segments = 6) ?(keys_per_segment = 32)
    ?(ro_weight = 0.15) () =
  if segments < 2 then
    invalid_arg "Workload.random_hierarchy: need at least 2 segments";
  let rng = Prng.create seed in
  (* a random tree: node 0 is the root (highest); each later node picks a
     parent among the earlier ones *)
  let parent = Array.make segments 0 in
  for i = 1 to segments - 1 do
    parent.(i) <- Prng.int rng i
  done;
  let rec ancestors i = if i = 0 then [] else parent.(i) :: ancestors parent.(i) in
  (* Every class reads its parent; deeper ancestors join at random.  The
     mandatory parent read keeps the partition TST-hierarchical: with the
     whole parent chain present as arcs, any class-to-ancestor arc is
     transitively induced.  (Skipping intermediate ancestors while some
     class on the path skips its parent joins two branches by a second
     undirected path — the generator's first version did exactly that and
     produced invalid partitions.) *)
  let read_set i =
    match ancestors i with
    | [] -> []
    | p :: deeper -> p :: List.filter (fun _ -> Prng.bool rng) deeper
  in
  let types =
    List.init segments (fun i ->
        Spec.txn_type
          ~name:(Printf.sprintf "class%d" i)
          ~writes:[ i ]
          ~reads:(i :: read_set i))
  in
  let spec =
    Spec.make
      ~segments:(List.init segments (fun i -> Printf.sprintf "n%d" i))
      ~types
  in
  let partition = Partition.build_exn spec in
  let key g = Prng.int g keys_per_segment in
  let declared_reads = Array.init segments read_set in
  let gen_for i g =
    let ups =
      List.filter (fun _ -> Prng.bool g) declared_reads.(i)
    in
    List.map (fun s -> Read (granule s (key g))) ups
    @ [ Read (granule i (key g));
        Write (granule i (key g), Prng.int g 1000) ]
  in
  let ro g =
    List.init
      (1 + Prng.int g 3)
      (fun _ -> Read (granule (Prng.int g segments) (key g)))
  in
  let update_weight = (1. -. ro_weight) /. float_of_int segments in
  { wl_name = Printf.sprintf "random-%d" seed;
    partition;
    templates =
      List.init segments (fun i ->
          { tpl_name = Printf.sprintf "class%d" i;
            kind = Controller.Update i;
            weight = update_weight;
            gen = gen_for i })
      @ [ { tpl_name = "ro"; kind = Controller.Read_only; weight = ro_weight;
            gen = ro } ];
    init = zero_init }
