(** Per-class activity boards — wait-free cross-class [I_old].

    Batched publication (DESIGN.md §16) makes registry snapshots stale
    for up to K commits, and a Protocol A reader that insisted on a
    snapshot covering its own initiation would wait a scheduling
    round-trip per cross-read on an oversubscribed machine.  The board
    sidesteps the wait: each class's owner publishes
    {e state + active init + the last two activity windows} through a
    per-class seqlock, and readers compute [I_old] from that alone.

    Exactness hinges on the transition states.  The owner writes
    {!begin_txn} ([starting]) {e before} ticking the transaction's
    init, and {!set_ending} {e before} ticking its end.  A reader that
    ticked its own initiation [at] and then observes:

    - [busy a] with [a < at]: the running transaction's end tick is
      provably still in the future (it follows the [ending] write,
      which follows this read in the SC order), so its window spans
      [at] and [I_old at = a] — exact.
    - [idle]: any transaction not yet on the board will tick its init
      after this read, hence after [at] — the retained windows are the
      whole story below [at].
    - [starting]/[ending]: undecidable (the neighbouring tick may or
      may not have happened); the caller falls back to an awaited
      registry publication.  These windows are a few instructions
      wide. *)

type t

val stride : int

val idle : int
val starting : int
val busy : int
val ending : int

val create : classes:int -> t

(** Writer side — only the owning domain may call these for a class. *)

val begin_txn : t -> int -> unit
(** Mark [starting].  Must precede the init tick. *)

val set_busy : t -> int -> init:int -> unit
(** Record the ticked init; the class shows one active transaction. *)

val set_ending : t -> int -> unit
(** Mark [ending].  Must precede the end tick. *)

val set_idle : t -> int -> init:int -> endt:int -> unit
(** Close the window [(init, endt)], shifting the previous newest
    window into second position.  Must follow the end tick {e and} the
    commit's version-ring appends, so a reader that sees the window
    can also see its versions. *)

(** Reader side. *)

val read_into : t -> int -> out:int array -> retries:int -> bool
(** Copy the class record ([state; a_init; i1; e1; i2; e2]) into
    [out.(0..5)] under a stable sequence.  [false] after [retries]
    failed attempts (writer preempted mid-cycle) — take the snapshot
    fallback. *)

val i_old_of_record : int array -> at:int -> int
(** [I_old] at [at] over a consistently-read record, agreeing with
    {!Hdd_txn.Registry.i_old} on the engine's single-active-per-class
    histories.  [-1] when the argument falls below the two retained
    windows or the record is in a transition state. *)
