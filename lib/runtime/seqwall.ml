type t = {
  epoch : int Atomic.t;  (* even = stable, odd = publish in progress *)
  mutable wall : Hdd_core.Timewall.wall;
}

let create wall = { epoch = Atomic.make 0; wall }

let publish t wall =
  let e = Atomic.get t.epoch in
  Atomic.set t.epoch (e + 1);
  t.wall <- wall;
  Atomic.set t.epoch (e + 2)

let rec read t =
  let e1 = Atomic.get t.epoch in
  if e1 land 1 = 1 then begin
    Domain.cpu_relax ();
    read t
  end
  else begin
    let w = t.wall in
    if Atomic.get t.epoch = e1 then w
    else begin
      Domain.cpu_relax ();
      read t
    end
  end

let epoch t = Atomic.get t.epoch
