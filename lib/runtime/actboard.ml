(* Per-class activity board: the owner domain of a class publishes its
   activity state through a seqlocked fixed layout, and cross-class
   readers compute I_old from it without waiting for a registry
   publication.  One writer per class (the owning domain), any number
   of readers.

   Layout per class, stride [stride] ints in [recs] (the stride keeps
   each class's record on its own cache line):

     [state; a_init; i1; e1; i2; e2; _; _]

   where (i1, e1) is the most recently finished activity window and
   (i2, e2) the one before it — Protocol B runs a class one
   transaction at a time, so windows are disjoint and two of them are
   enough to answer I_old at any argument above i2 (older arguments
   fall back to the snapshot path).

   The [starting]/[ending] transition states exist for exactness, not
   convenience.  A reader that ticked its own initiation [at] and then
   observes [busy a_init] knows the running transaction's end tick has
   not happened yet — the owner writes [ending] *before* ticking the
   end, so in the SC order: reader-tick < record-read < ending-write <
   end-tick, hence end > at and the window spans [at].  Symmetrically,
   observing [idle] proves any not-yet-visible transaction's init tick
   is still in the future (the owner writes [starting] before ticking
   the init), hence init > at.  Observing a transition state proves
   nothing either way, and the reader must fall back to an awaited
   publication; the transition windows are a handful of instructions
   wide, so that path is rare. *)

type t = { seqs : int Atomic.t array; recs : int array }

let stride = 8
let idle = 0
let starting = 1
let busy = 2
let ending = 3

let create ~classes =
  if classes <= 0 then invalid_arg "Actboard.create: classes must be > 0";
  { seqs = Array.init classes (fun _ -> Atomic.make 0);
    recs = Array.make (classes * stride) 0 }

(* Writer side: a classic seqlock cycle.  Odd sequence = record in
   flux.  Only the owning domain writes a class's record, so plain
   increments are race-free on the writer side; the [Atomic.set] pairs
   order the plain field writes for readers. *)

let set_state t c st =
  let s = Atomic.get t.seqs.(c) in
  Atomic.set t.seqs.(c) (s + 1);
  Array.unsafe_set t.recs (c * stride) st;
  Atomic.set t.seqs.(c) (s + 2)

let begin_txn t c = set_state t c starting

let set_busy t c ~init =
  let s = Atomic.get t.seqs.(c) in
  Atomic.set t.seqs.(c) (s + 1);
  let base = c * stride in
  Array.unsafe_set t.recs base busy;
  Array.unsafe_set t.recs (base + 1) init;
  Atomic.set t.seqs.(c) (s + 2)

let set_ending t c = set_state t c ending

let set_idle t c ~init ~endt =
  let s = Atomic.get t.seqs.(c) in
  Atomic.set t.seqs.(c) (s + 1);
  let base = c * stride in
  Array.unsafe_set t.recs base idle;
  (* shift the window history: (i1, e1) -> (i2, e2) *)
  Array.unsafe_set t.recs (base + 4) (Array.unsafe_get t.recs (base + 2));
  Array.unsafe_set t.recs (base + 5) (Array.unsafe_get t.recs (base + 3));
  Array.unsafe_set t.recs (base + 2) init;
  Array.unsafe_set t.recs (base + 3) endt;
  Atomic.set t.seqs.(c) (s + 2)

(* Reader side: copy the six fields into a caller-provided scratch
   buffer under a stable sequence.  Racy plain reads of a record mid
   write may return stale values; they are discarded when the sequence
   check fails.  Bounded retries — a writer preempted mid-cycle must
   not wedge readers — after which the caller takes the snapshot
   fallback. *)

let rec read_into t c ~(out : int array) ~retries =
  let seq = t.seqs.(c) in
  let s1 = Atomic.get seq in
  if s1 land 1 = 1 then
    if retries = 0 then false
    else begin
      Domain.cpu_relax ();
      read_into t c ~out ~retries:(retries - 1)
    end
  else begin
    let base = c * stride in
    out.(0) <- Array.unsafe_get t.recs base;
    out.(1) <- Array.unsafe_get t.recs (base + 1);
    out.(2) <- Array.unsafe_get t.recs (base + 2);
    out.(3) <- Array.unsafe_get t.recs (base + 3);
    out.(4) <- Array.unsafe_get t.recs (base + 4);
    out.(5) <- Array.unsafe_get t.recs (base + 5);
    if Atomic.get seq = s1 then true
    else if retries = 0 then false
    else read_into t c ~out ~retries:(retries - 1)
  end

(* I_old over a consistently-read record, matching
   {!Registry.i_old} on the single-active histories the engine
   produces.  Returns [-1] when the answer sits below the two retained
   windows and the caller must consult a snapshot. *)
let i_old_of_record (r : int array) ~at =
  let st = r.(0) in
  if st = busy && r.(1) < at then r.(1)
  else if st = busy || st = idle then begin
    let i1 = r.(2) and e1 = r.(3) in
    if e1 <= at then at
    else if i1 < at then i1
    else
      let i2 = r.(4) and e2 = r.(5) in
      if e2 <= at then at else if i2 < at then i2 else -1
  end
  else -1
