module T = Hdd_obs.Trace
module P = Hdd_core.Partition
module Spec = Hdd_core.Spec
module Scheduler = Hdd_core.Scheduler
module Certifier = Hdd_core.Certifier
module Outcome = Hdd_core.Outcome
module Prng = Hdd_util.Prng

type script = Engine.desc array

let default_init (g : Granule.t) = (g.segment * 1000) + g.key

(* --- script generation --- *)

let gen_script ~partition ~seed ~txns ?(keys_per_segment = 6)
    ?(ro_frac = 0.25) ?(abort_frac = 0.15) ?(cross_frac = 0.5)
    ?(ops_per_txn = 4) () =
  let prng = Prng.create seed in
  let nseg = P.segment_count partition in
  let readable =
    Array.init nseg (fun c ->
        List.init nseg Fun.id
        |> List.filter (fun s ->
               s <> c && P.may_read partition ~class_id:c ~segment:s)
        |> Array.of_list)
  in
  let key () = Prng.int prng keys_per_segment in
  Array.init txns (fun n ->
      let id = n + 1 in
      if Prng.float prng 1. < ro_frac then begin
        let ops =
          List.init
            (1 + Prng.int prng ops_per_txn)
            (fun _ ->
              Engine.Read
                (Granule.make ~segment:(Prng.int prng nseg) ~key:(key ())))
        in
        { Engine.d_id = id; d_kind = `Read_only; d_ops = ops;
          d_abort = false }
      end
      else begin
        let cls = Prng.int prng nseg in
        let own_g () = Granule.make ~segment:cls ~key:(key ()) in
        let first = Engine.Write (own_g (), Prng.int prng 1_000_000) in
        let rest =
          List.init (Prng.int prng ops_per_txn) (fun _ ->
              let r = Prng.float prng 1. in
              if r < cross_frac && Array.length readable.(cls) > 0 then
                Engine.Read
                  (Granule.make
                     ~segment:(Prng.pick prng readable.(cls))
                     ~key:(key ()))
              else if r < cross_frac +. 0.2 then
                Engine.Write (own_g (), Prng.int prng 1_000_000)
              else Engine.Read (own_g ()))
        in
        { Engine.d_id = id;
          d_kind = `Update cls;
          d_ops = first :: rest;
          d_abort = Prng.float prng 1. < abort_frac }
      end)

(* --- report --- *)

type report = {
  r_serializable : bool;
  r_cycle : int list option;
  r_monitor_violations : string list;
  r_verdicts_agree : bool;
  r_b_reads_agree : bool;
  r_mismatches : string list;
  r_committed : int;
  r_aborted : int;
  r_wall_releases : int;
  r_repartitions : int;
  r_escalations : int;
  r_events : int;
}

(* The four checks by name, so an 8-worker stress failure says which
   leg of the oracle broke instead of burying it in a dump. *)
let failures r =
  List.filter_map Fun.id
    [ (if r.r_serializable then None else Some "mvsg-certification");
      (if r.r_monitor_violations = [] then None else Some "monitor-replay");
      (if r.r_verdicts_agree then None else Some "serial-oracle-agreement");
      (if r.r_b_reads_agree then None else Some "read-from-equality") ]

let ok r = failures r = []

let pp_report ppf r =
  (match failures r with
  | [] -> ()
  | names ->
    Format.fprintf ppf "FAILED checks: %s@." (String.concat ", " names));
  Format.fprintf ppf
    "serializable=%b monitor=%d verdicts=%b b_reads=%b committed=%d \
     aborted=%d walls=%d repartitions=%d escalations=%d events=%d"
    r.r_serializable
    (List.length r.r_monitor_violations)
    r.r_verdicts_agree r.r_b_reads_agree r.r_committed r.r_aborted
    r.r_wall_releases r.r_repartitions r.r_escalations r.r_events;
  List.iter (fun m -> Format.fprintf ppf "@.  %s" m) r.r_mismatches;
  List.iter
    (fun v -> Format.fprintf ppf "@.  monitor: %s" v)
    r.r_monitor_violations

(* --- the serial oracle --- *)

(* Execute the script through the serial scheduler, each descriptor run
   to completion in the order given.  Returns per-descriptor verdicts
   and, for committed updates, the writer descriptor each root-segment
   read resolved to (in op order). *)
let serial_replay ~partition ~init descs =
  let clock = Time.Clock.create () in
  let store =
    Hdd_mvstore.Store.create ~segments:(P.segment_count partition) ~init
  in
  let log = Sched_log.create () in
  let sched = Scheduler.create ~log ~partition ~clock ~store () in
  let verdicts = Hashtbl.create 64 in
  let of_serial = Hashtbl.create 64 in (* serial txn id -> descriptor id *)
  let mismatches = ref [] in
  List.iter
    (fun (d : Engine.desc) ->
      let txn =
        match d.d_kind with
        | `Update cls -> Scheduler.begin_update sched ~class_id:cls
        | `Read_only -> Scheduler.begin_read_only sched
      in
      Hashtbl.replace of_serial txn.Txn.id d.d_id;
      let refused = ref None in
      List.iter
        (fun op ->
          if !refused = None then
            let outcome_tag =
              match op with
              | Engine.Read g -> (
                match Scheduler.read sched txn g with
                | Outcome.Granted _ -> None
                | Outcome.Blocked _ -> Some "blocked"
                | Outcome.Rejected r -> Some ("rejected: " ^ r))
              | Engine.Write (g, v) -> (
                match Scheduler.write sched txn g v with
                | Outcome.Granted () -> None
                | Outcome.Blocked _ -> Some "blocked"
                | Outcome.Rejected r -> Some ("rejected: " ^ r))
            in
            match outcome_tag with
            | None -> ()
            | Some why ->
              refused := Some why;
              mismatches :=
                Printf.sprintf
                  "serial oracle refused an op of txn %d (%s); parallel \
                   granted it"
                  d.d_id why
                :: !mismatches)
        d.d_ops;
      match !refused with
      | Some _ ->
        Scheduler.abort sched txn;
        Hashtbl.replace verdicts d.d_id false
      | None ->
        if d.Engine.d_abort then begin
          Scheduler.abort sched txn;
          Hashtbl.replace verdicts d.d_id false
        end
        else begin
          Scheduler.commit sched txn;
          Hashtbl.replace verdicts d.d_id true
        end)
    descs;
  (* root-segment read-from writers, per committed update descriptor *)
  let class_of = Hashtbl.create 64 in
  List.iter
    (fun (d : Engine.desc) ->
      match d.d_kind with
      | `Update c -> Hashtbl.replace class_of d.d_id c
      | `Read_only -> ())
    descs;
  let writer_of_ts = Hashtbl.create 256 in
  Hashtbl.replace writer_of_ts Time.zero 0;
  List.iter
    (fun (s : Sched_log.step) ->
      if s.action = Sched_log.Write then
        match Hashtbl.find_opt of_serial s.txn with
        | Some did -> Hashtbl.replace writer_of_ts s.version did
        | None -> ())
    (Sched_log.steps log);
  let b_reads = Hashtbl.create 64 in
  List.iter
    (fun (s : Sched_log.step) ->
      if s.action = Sched_log.Read then
        match Hashtbl.find_opt of_serial s.txn with
        | None -> ()
        | Some did -> (
          match Hashtbl.find_opt class_of did with
          | Some cls when s.granule.Granule.segment = cls ->
            let prev =
              match Hashtbl.find_opt b_reads did with
              | Some l -> l
              | None -> []
            in
            let writer =
              match Hashtbl.find_opt writer_of_ts s.version with
              | Some w -> w
              | None -> -1
            in
            Hashtbl.replace b_reads did (writer :: prev)
          | _ -> ()))
    (Sched_log.steps log);
  (verdicts, b_reads, !mismatches)

(* --- the full differential check --- *)

(* The four checks over an already-completed run — any runner that can
   produce an [Engine.run]-shaped result (the multicore engine, the
   sharded cluster in any of its modes) feeds the same oracle. *)
let check_run ~partition ~init ~script (run : Engine.run) =
  let committed =
    List.filter_map (fun (id, c) -> if c then Some id else None) run.outcomes
    |> List.fold_left (fun s id -> Hashtbl.replace s id (); s)
         (Hashtbl.create 64)
  in
  let is_committed id = Hashtbl.mem committed id in
  (* 1. MVSG certification of the committed parallel history *)
  let log = Sched_log.create () in
  List.iter
    (fun (r : T.record) ->
      match r.ev with
      | T.Read { txn; segment; key; version; _ } when is_committed txn ->
        Sched_log.log_read log ~txn
          ~granule:(Granule.make ~segment ~key)
          ~version
      | T.Write { txn; segment; key; ts } when is_committed txn ->
        Sched_log.log_write log ~txn
          ~granule:(Granule.make ~segment ~key)
          ~version:ts
      | _ -> ())
    run.records;
  let verdict = Certifier.certify log in
  (* 2. online invariants over the merged trace *)
  let monitor =
    Hdd_obs.Monitor.create ~raise_on_violation:false
      ~wall_rule:`Any_released ()
  in
  List.iter (Hdd_obs.Monitor.feed monitor) run.records;
  (* 3 + 4. serial oracle in parallel-initiation order *)
  let init_of = Hashtbl.create 64 in
  List.iter
    (fun (r : T.record) ->
      match r.ev with
      | T.Begin { txn; init = i; _ } -> Hashtbl.replace init_of txn i
      | _ -> ())
    run.records;
  let order =
    Array.to_list script
    |> List.sort (fun (a : Engine.desc) b ->
           compare
             (Hashtbl.find_opt init_of a.d_id)
             (Hashtbl.find_opt init_of b.d_id))
  in
  let serial_verdicts, serial_b_reads, mismatches =
    serial_replay ~partition ~init order
  in
  let mismatches = ref mismatches in
  let verdicts_agree = ref true in
  List.iter
    (fun (id, par_committed) ->
      match Hashtbl.find_opt serial_verdicts id with
      | Some ser when ser = par_committed -> ()
      | Some ser ->
        verdicts_agree := false;
        mismatches :=
          Printf.sprintf "txn %d: parallel %s, serial %s" id
            (if par_committed then "committed" else "aborted")
            (if ser then "committed" else "aborted")
          :: !mismatches
      | None ->
        verdicts_agree := false;
        mismatches :=
          Printf.sprintf "txn %d: missing from serial replay" id
          :: !mismatches)
    run.outcomes;
  (* parallel root-segment read-from writers *)
  let par_writer_of_ts = Hashtbl.create 256 in
  Hashtbl.replace par_writer_of_ts Time.zero 0;
  List.iter
    (fun (r : T.record) ->
      match r.ev with
      | T.Write { txn; ts; _ } when is_committed txn ->
        Hashtbl.replace par_writer_of_ts ts txn
      | _ -> ())
    run.records;
  let par_b_reads = Hashtbl.create 64 in
  List.iter
    (fun (r : T.record) ->
      match r.ev with
      | T.Read { txn; protocol = T.B; version; _ } when is_committed txn ->
        let prev =
          match Hashtbl.find_opt par_b_reads txn with
          | Some l -> l
          | None -> []
        in
        let writer =
          match Hashtbl.find_opt par_writer_of_ts version with
          | Some w -> w
          | None -> -1
        in
        Hashtbl.replace par_b_reads txn (writer :: prev)
      | _ -> ())
    run.records;
  let b_reads_agree = ref true in
  Array.iter
    (fun (d : Engine.desc) ->
      match d.d_kind with
      | `Read_only -> ()
      | `Update _ ->
        if is_committed d.d_id then begin
          let got =
            match Hashtbl.find_opt par_b_reads d.d_id with
            | Some l -> l
            | None -> []
          and want =
            match Hashtbl.find_opt serial_b_reads d.d_id with
            | Some l -> l
            | None -> []
          in
          if got <> want then begin
            b_reads_agree := false;
            mismatches :=
              Printf.sprintf
                "txn %d: root-segment read-from writers differ \
                 (parallel [%s], serial [%s])"
                d.d_id
                (String.concat ";" (List.map string_of_int (List.rev got)))
                (String.concat ";" (List.map string_of_int (List.rev want)))
              :: !mismatches
          end
        end)
    script;
  { r_serializable = verdict.Certifier.serializable;
    r_cycle = verdict.Certifier.cycle;
    r_monitor_violations = Hdd_obs.Monitor.violations monitor;
    r_verdicts_agree = !verdicts_agree;
    r_b_reads_agree = !b_reads_agree;
    r_mismatches = List.rev !mismatches;
    r_committed = run.stats.Engine.committed;
    r_aborted = run.stats.Engine.aborted;
    r_wall_releases = run.stats.Engine.wall_releases;
    r_repartitions = run.stats.Engine.repartitions;
    r_escalations = run.stats.Engine.escalations;
    r_events = List.length run.records }

let check ?(plan = []) ?(mode_plan = []) ~partition ~init ~config script =
  check_run ~partition ~init ~script
    (Engine.run_script ~partition ~init ~plan ~mode_plan config ~script)

(* --- stress profiles --- *)

type profile = Abort_heavy | Adhoc_read | Mixed

let chain_partition depth =
  let segments = List.init depth (fun i -> Printf.sprintf "D%d" i) in
  let types =
    List.init depth (fun i ->
        Spec.txn_type
          ~name:(Printf.sprintf "t%d" i)
          ~writes:[ i ]
          ~reads:(if i < depth - 1 then [ i; i + 1 ] else [ i ]))
  in
  P.build_exn (Spec.make ~segments ~types)

let tree_partition branches =
  let segments = List.init (branches + 1) (fun i -> Printf.sprintf "D%d" i) in
  let types =
    Spec.txn_type ~name:"t0" ~writes:[ 0 ] ~reads:[ 0 ]
    :: List.init branches (fun b ->
           Spec.txn_type
             ~name:(Printf.sprintf "t%d" (b + 1))
             ~writes:[ b + 1 ]
             ~reads:[ b + 1; 0 ])
  in
  P.build_exn (Spec.make ~segments ~types)

let rotation_plan ~segments ~workers n =
  let rec go acc map i =
    if i = 0 then List.rev acc
    else
      let next = Engine.rotated_map map workers in
      go ((next, "migrate") :: acc) next (i - 1)
  in
  go [] (Engine.default_owner_map ~segments ~workers) n

(* n forced mode flips: step i escalates the classes of one parity and
   de-escalates the other, so every class changes stamping discipline
   at every step — the adversarial schedule for the escalation-
   equivalence property.  The last step restores all-plain so a run
   always ends comparable to a never-escalated one. *)
let escalation_plan ~segments n =
  List.init n (fun i ->
      if i = n - 1 then Array.make segments 0
      else Array.init segments (fun c -> (c + i) land 1))

let stress_one ?(publish_every = 8) ?(repartitions = 0) ?(escalations = 0)
    ~seed ~workers ~txns ~profile () =
  let prng = Prng.create (seed * 2 + 1) in
  let partition =
    if seed land 1 = 0 then chain_partition (4 + Prng.int prng 5)
    else tree_partition (3 + Prng.int prng 3)
  in
  let ro_frac, abort_frac =
    match profile with
    | Abort_heavy -> (0.1, 0.4)
    | Adhoc_read -> (0.5, 0.05)
    | Mixed -> (0.25, 0.15)
  in
  let script =
    gen_script ~partition ~seed ~txns ~ro_frac ~abort_frac ()
  in
  let config = { (Engine.default_config ~workers) with publish_every } in
  let plan =
    rotation_plan ~segments:(P.segment_count partition) ~workers repartitions
  in
  let mode_plan =
    escalation_plan ~segments:(P.segment_count partition) escalations
  in
  check ~plan ~mode_plan ~partition ~init:default_init ~config script
