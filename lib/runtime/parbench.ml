module J = Hdd_benchkit.Jsonlite
module M = Hdd_obs.Metrics

type point = {
  b_workers : int;
  b_elapsed_s : float;
  b_committed : int;
  b_aborted : int;
  b_txn_per_s : float;
  b_reads_a : int;
  b_reads_a_per_s : float;
  b_reads_b : int;
  b_reads_c : int;
  b_writes : int;
  b_wall_releases : int;
  b_wall_lag_mean : float;
  b_wall_lag_max : int;
  b_lat_p50_us : float;
  b_lat_p95_us : float;
  b_lat_p99_us : float;
}

type result = {
  r_points : point list;
  r_scaling_1_to_4 : float option;
  r_depth : int;
  r_seconds_per_point : float;
  r_seed : int;
}

(* The read-heavy cross-class mix: each update transaction does a couple
   of root-segment ops and a burst of Protocol A reads — the access
   pattern whose parallel cost the decomposition claims is zero. *)
let scaling_mix =
  { Engine.ro_frac = 0.05;
    abort_frac = 0.02;
    cross_reads = 8;
    own_ops = 2;
    keys_per_segment = 16 }

let run ?workers_list ?(depth = 8) ?(seconds = 1.0) ?(seed = 42) () =
  let workers_list =
    match workers_list with
    | Some l -> l
    | None ->
      let cores = Domain.recommended_domain_count () in
      let base = [ 1; 2; 4 ] in
      let hi = cores - 1 in
      if hi > 4 then base @ [ hi ] else base
  in
  let partition = Differential.chain_partition depth in
  let points =
    List.map
      (fun w ->
        let t =
          Engine.run_timed ~partition ~init:Differential.default_init
            ~workers:w ~seconds ~mix:scaling_mix ~seed ()
        in
        let s = t.Engine.t_stats in
        let el = t.Engine.t_elapsed_s in
        let hist = M.histogram t.Engine.t_latency "commit_latency_us" in
        let q p = M.quantile hist p in
        { b_workers = w;
          b_elapsed_s = el;
          b_committed = s.Engine.committed;
          b_aborted = s.Engine.aborted;
          b_txn_per_s = float_of_int s.Engine.committed /. el;
          b_reads_a = s.Engine.reads_a;
          b_reads_a_per_s = float_of_int s.Engine.reads_a /. el;
          b_reads_b = s.Engine.reads_b;
          b_reads_c = s.Engine.reads_c;
          b_writes = s.Engine.writes;
          b_wall_releases = s.Engine.wall_releases;
          b_wall_lag_mean =
            (if s.Engine.wall_releases = 0 then 0.
             else
               float_of_int s.Engine.wall_lag_sum
               /. float_of_int s.Engine.wall_releases);
          b_wall_lag_max = s.Engine.wall_lag_max;
          b_lat_p50_us = q 0.5;
          b_lat_p95_us = q 0.95;
          b_lat_p99_us = q 0.99 })
      workers_list
  in
  let rate w =
    List.find_opt (fun p -> p.b_workers = w) points
    |> Option.map (fun p -> p.b_reads_a_per_s)
  in
  let scaling =
    match (rate 1, rate 4) with
    | Some r1, Some r4 when r1 > 0. -> Some (r4 /. r1)
    | _ -> None
  in
  { r_points = points;
    r_scaling_1_to_4 = scaling;
    r_depth = depth;
    r_seconds_per_point = seconds;
    r_seed = seed }

let json_of_point p =
  J.Obj
    [ ("workers", J.num_of_int p.b_workers);
      ("elapsed_s", J.Num p.b_elapsed_s);
      ("committed", J.num_of_int p.b_committed);
      ("aborted", J.num_of_int p.b_aborted);
      ("txn_per_s", J.Num p.b_txn_per_s);
      ("reads_a", J.num_of_int p.b_reads_a);
      ("reads_a_per_s", J.Num p.b_reads_a_per_s);
      ("reads_b", J.num_of_int p.b_reads_b);
      ("reads_c", J.num_of_int p.b_reads_c);
      ("writes", J.num_of_int p.b_writes);
      ("wall_releases", J.num_of_int p.b_wall_releases);
      ("wall_lag_mean_ticks", J.Num p.b_wall_lag_mean);
      ("wall_lag_max_ticks", J.num_of_int p.b_wall_lag_max);
      ("commit_latency_us",
       J.Obj
         [ ("p50", J.Num p.b_lat_p50_us);
           ("p95", J.Num p.b_lat_p95_us);
           ("p99", J.Num p.b_lat_p99_us) ]) ]

let to_json r =
  J.with_schema
    [ ("benchmark", J.Str "parallel_runtime");
      ("hierarchy", J.Str (Printf.sprintf "chain-%d" r.r_depth));
      ("seconds_per_point", J.Num r.r_seconds_per_point);
      ("seed", J.num_of_int r.r_seed);
      ("recommended_domains",
       J.num_of_int (Domain.recommended_domain_count ()));
      ("points", J.List (List.map json_of_point r.r_points));
      ("cross_read_scaling_1_to_4",
       match r.r_scaling_1_to_4 with None -> J.Null | Some s -> J.Num s) ]

let pp ppf r =
  Format.fprintf ppf
    "parallel runtime, chain-%d, %.2fs/point (seed %d)@." r.r_depth
    r.r_seconds_per_point r.r_seed;
  Format.fprintf ppf
    "  %8s %12s %14s %10s %10s %10s@." "workers" "txn/s" "A-reads/s"
    "p50us" "p99us" "walls";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %8d %12.0f %14.0f %10.0f %10.0f %10d@."
        p.b_workers p.b_txn_per_s p.b_reads_a_per_s p.b_lat_p50_us
        p.b_lat_p99_us p.b_wall_releases)
    r.r_points;
  match r.r_scaling_1_to_4 with
  | Some s ->
    Format.fprintf ppf "  cross-class read scaling 1 -> 4 workers: %.2fx@." s
  | None -> ()
