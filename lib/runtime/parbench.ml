module J = Hdd_benchkit.Jsonlite
module M = Hdd_obs.Metrics

type point = {
  b_workers : int;
  b_publish_every : int;
  b_elapsed_s : float;
  b_committed : int;
  b_aborted : int;
  b_txn_per_s : float;
  b_reads_a : int;
  b_reads_a_per_s : float;
  b_reads_b : int;
  b_reads_c : int;
  b_writes : int;
  b_publications : int;
  b_wall_releases : int;
  b_wall_lag_mean : float;
  b_wall_lag_max : int;
  b_lat_p50_us : float;
  b_lat_p95_us : float;
  b_lat_p99_us : float;
}

type result = {
  r_points : point list;
  r_ksweep : point list;
  r_publish_every : int;
  r_scaling_1_to_4 : float option;
  r_scaling_1_to_8 : float option;
  r_scaling_1_to_16 : float option;
  r_depth : int;
  r_seconds_per_point : float;
  r_seed : int;
}

(* cross_read_scaling_1_to_8 measured on the PR 5..7 engine (per-commit
   publication, boxed snapshots) on the reference 1-core runner, kept
   as the floor the rebuilt runtime must clear by 1.5x: batched
   publication plus the board/ring cross-read service must not buy
   1-worker throughput with cross-worker waits. *)
let pre_pr_scaling_1_to_8 = 0.26

(* The read-heavy cross-class mix: each update transaction does a couple
   of root-segment ops and a burst of Protocol A reads — the access
   pattern whose parallel cost the decomposition claims is zero. *)
let scaling_mix =
  { Engine.ro_frac = 0.05;
    abort_frac = 0.02;
    cross_reads = 8;
    own_ops = 2;
    keys_per_segment = 16 }

let measure ~partition ~workers ~publish_every ~seconds ~seed =
  let t =
    Engine.run_timed ~partition ~init:Differential.default_init ~workers
      ~seconds ~publish_every ~mix:scaling_mix ~seed ()
  in
  let s = t.Engine.t_stats in
  let el = t.Engine.t_elapsed_s in
  let hist = M.histogram t.Engine.t_latency "commit_latency_us" in
  let q p = M.quantile hist p in
  { b_workers = workers;
    b_publish_every = publish_every;
    b_elapsed_s = el;
    b_committed = s.Engine.committed;
    b_aborted = s.Engine.aborted;
    b_txn_per_s = float_of_int s.Engine.committed /. el;
    b_reads_a = s.Engine.reads_a;
    b_reads_a_per_s = float_of_int s.Engine.reads_a /. el;
    b_reads_b = s.Engine.reads_b;
    b_reads_c = s.Engine.reads_c;
    b_writes = s.Engine.writes;
    b_publications = s.Engine.publications;
    b_wall_releases = s.Engine.wall_releases;
    b_wall_lag_mean =
      (if s.Engine.wall_releases = 0 then 0.
       else
         float_of_int s.Engine.wall_lag_sum
         /. float_of_int s.Engine.wall_releases);
    b_wall_lag_max = s.Engine.wall_lag_max;
    b_lat_p50_us = q 0.5;
    b_lat_p95_us = q 0.95;
    b_lat_p99_us = q 0.99 }

let run ?workers_list ?(publish_every = 16) ?(ksweep = [ 1; 4; 16; 64 ])
    ?(depth = 8) ?(seconds = 1.0) ?(seed = 42) () =
  let workers_list =
    match workers_list with
    | Some l -> l
    | None ->
      let cores = Domain.recommended_domain_count () in
      let base = [ 1; 2; 4; 8 ] in
      if cores - 1 > 8 then base @ [ cores - 1 ] else base
  in
  let partition = Differential.chain_partition depth in
  let points =
    List.map
      (fun w -> measure ~partition ~workers:w ~publish_every ~seconds ~seed)
      workers_list
  in
  (* the publication-batch sweep runs at the widest point: batching
     trades publication work against cross-read service cost, and the
     trade only shows where cross-worker traffic exists *)
  let kw = List.fold_left Int.max 1 workers_list in
  let ksweep_points =
    if kw <= 1 then []
    else
      List.map
        (fun k -> measure ~partition ~workers:kw ~publish_every:k ~seconds ~seed)
        ksweep
  in
  let rate w =
    List.find_opt (fun p -> p.b_workers = w) points
    |> Option.map (fun p -> p.b_reads_a_per_s)
  in
  let scaling w =
    match (rate 1, rate w) with
    | Some r1, Some rw when r1 > 0. -> Some (rw /. r1)
    | _ -> None
  in
  { r_points = points;
    r_ksweep = ksweep_points;
    r_publish_every = publish_every;
    r_scaling_1_to_4 = scaling 4;
    r_scaling_1_to_8 = scaling 8;
    r_scaling_1_to_16 = scaling 16;
    r_depth = depth;
    r_seconds_per_point = seconds;
    r_seed = seed }

(* Intrinsic acceptance gates, checked wherever the bench runs (the CI
   quick pass and the nightly full pass both call this): the rebuilt
   runtime must beat the pre-rebuild scaling floor by 1.5x, and the
   sweep must stay sound (commits at every K). *)
let gates r =
  let problems = ref [] in
  (match r.r_scaling_1_to_8 with
  | Some s when s < 1.5 *. pre_pr_scaling_1_to_8 ->
    problems :=
      Printf.sprintf
        "cross_read_scaling_1_to_8 %.3f below 1.5x the pre-rebuild floor \
         %.3f"
        s pre_pr_scaling_1_to_8
      :: !problems
  | _ -> ());
  List.iter
    (fun p ->
      if p.b_committed = 0 then
        problems :=
          Printf.sprintf "no commits at workers=%d publish_every=%d"
            p.b_workers p.b_publish_every
          :: !problems)
    (r.r_points @ r.r_ksweep);
  List.rev !problems

let json_of_point p =
  J.Obj
    [ ("workers", J.num_of_int p.b_workers);
      ("publish_every", J.num_of_int p.b_publish_every);
      ("elapsed_s", J.Num p.b_elapsed_s);
      ("committed", J.num_of_int p.b_committed);
      ("aborted", J.num_of_int p.b_aborted);
      ("txn_per_s", J.Num p.b_txn_per_s);
      ("reads_a", J.num_of_int p.b_reads_a);
      ("reads_a_per_s", J.Num p.b_reads_a_per_s);
      ("reads_b", J.num_of_int p.b_reads_b);
      ("reads_c", J.num_of_int p.b_reads_c);
      ("writes", J.num_of_int p.b_writes);
      ("publications", J.num_of_int p.b_publications);
      ("wall_releases", J.num_of_int p.b_wall_releases);
      ("wall_lag_mean_ticks", J.Num p.b_wall_lag_mean);
      ("wall_lag_max_ticks", J.num_of_int p.b_wall_lag_max);
      ("commit_latency_us",
       J.Obj
         [ ("p50", J.Num p.b_lat_p50_us);
           ("p95", J.Num p.b_lat_p95_us);
           ("p99", J.Num p.b_lat_p99_us) ]) ]

let opt_num = function None -> J.Null | Some s -> J.Num s

let to_json r =
  J.with_schema
    [ ("benchmark", J.Str "parallel_runtime");
      ("hierarchy", J.Str (Printf.sprintf "chain-%d" r.r_depth));
      ("seconds_per_point", J.Num r.r_seconds_per_point);
      ("seed", J.num_of_int r.r_seed);
      ("publish_every", J.num_of_int r.r_publish_every);
      ("recommended_domains",
       J.num_of_int (Domain.recommended_domain_count ()));
      ("points", J.List (List.map json_of_point r.r_points));
      ("publish_every_sweep", J.List (List.map json_of_point r.r_ksweep));
      ("pre_pr_scaling_1_to_8", J.Num pre_pr_scaling_1_to_8);
      ("cross_read_scaling_1_to_4", opt_num r.r_scaling_1_to_4);
      ("cross_read_scaling_1_to_8", opt_num r.r_scaling_1_to_8);
      ("cross_read_scaling_1_to_16", opt_num r.r_scaling_1_to_16) ]

let pp ppf r =
  Format.fprintf ppf
    "parallel runtime, chain-%d, %.2fs/point, K=%d (seed %d)@." r.r_depth
    r.r_seconds_per_point r.r_publish_every r.r_seed;
  Format.fprintf ppf "  %8s %12s %14s %10s %10s %10s %10s@." "workers"
    "txn/s" "A-reads/s" "p50us" "p99us" "pubs" "walls";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %8d %12.0f %14.0f %10.0f %10.0f %10d %10d@."
        p.b_workers p.b_txn_per_s p.b_reads_a_per_s p.b_lat_p50_us
        p.b_lat_p99_us p.b_publications p.b_wall_releases)
    r.r_points;
  if r.r_ksweep <> [] then begin
    Format.fprintf ppf "  publication batch sweep at %d workers:@."
      (List.fold_left (fun a p -> Int.max a p.b_workers) 1 r.r_ksweep);
    List.iter
      (fun p ->
        Format.fprintf ppf "  %8s %12.0f %14.0f %10.0f %10.0f %10d@."
          (Printf.sprintf "K=%d" p.b_publish_every)
          p.b_txn_per_s p.b_reads_a_per_s p.b_lat_p50_us p.b_lat_p99_us
          p.b_publications)
      r.r_ksweep
  end;
  let sc label = function
    | Some s ->
      Format.fprintf ppf "  cross-class read scaling %s: %.2fx@." label s
    | None -> ()
  in
  sc "1 -> 4 workers" r.r_scaling_1_to_4;
  sc "1 -> 8 workers" r.r_scaling_1_to_8;
  sc "1 -> 16 workers" r.r_scaling_1_to_16
