(** Scaling benchmark for the parallel runtime ([hdd_cli bench
    --parallel]).

    Runs the untraced closed-loop engine ({!Engine.run_timed}) on a
    chain hierarchy at increasing worker-domain counts and reports, per
    point: transaction throughput, cross-class (Protocol A) read rate,
    publication count, commit-latency quantiles, and wall-release count
    and lag.  A second pass sweeps the publication batch K at the
    widest worker count — the knob trading publication work against
    cross-read service cost (DESIGN.md §16).

    The headline figure is [cross_read_scaling_1_to_8]: the Protocol A
    read-rate ratio between the 8-worker and 1-worker points.  The
    paper's coordination-free cross-class reads should scale
    near-linearly; {!gates} holds the rebuilt runtime to at least 1.5x
    the {!pre_pr_scaling_1_to_8} floor the publish-per-commit engine
    measured, and CI additionally gates against the committed
    [bench/BENCH_parallel_baseline.json]. *)

type point = {
  b_workers : int;
  b_publish_every : int;
  b_elapsed_s : float;
  b_committed : int;
  b_aborted : int;
  b_txn_per_s : float;
  b_reads_a : int;
  b_reads_a_per_s : float;
  b_reads_b : int;
  b_reads_c : int;
  b_writes : int;
  b_publications : int;
  b_wall_releases : int;
  b_wall_lag_mean : float;  (** ticks between anchor and release *)
  b_wall_lag_max : int;
  b_lat_p50_us : float;
  b_lat_p95_us : float;
  b_lat_p99_us : float;
}

type result = {
  r_points : point list;
  r_ksweep : point list;
      (** publication-batch sweep at the widest worker count *)
  r_publish_every : int;  (** K used for [r_points] *)
  r_scaling_1_to_4 : float option;
      (** reads_a/s at 4 workers over 1 worker, when both ran *)
  r_scaling_1_to_8 : float option;
  r_scaling_1_to_16 : float option;
  r_depth : int;
  r_seconds_per_point : float;
  r_seed : int;
}

val pre_pr_scaling_1_to_8 : float
(** [cross_read_scaling_1_to_8] of the publish-per-commit engine on the
    reference runner — the floor {!gates} holds the rebuilt runtime
    1.5x above. *)

val run :
  ?workers_list:int list ->
  ?publish_every:int ->
  ?ksweep:int list ->
  ?depth:int ->
  ?seconds:float ->
  ?seed:int ->
  unit ->
  result
(** Defaults: workers [[1; 2; 4; 8]] extended with
    [Domain.recommended_domain_count () - 1] when that exceeds 8,
    publication batch 16, sweep over K in [[1; 4; 16; 64]], chain depth
    8, 1.0 s per point, seed 42. *)

val gates : result -> string list
(** Intrinsic acceptance checks: empty when the scaling headline clears
    1.5x {!pre_pr_scaling_1_to_8} and every point committed work;
    human-readable problems otherwise. *)

val to_json : result -> Hdd_benchkit.Jsonlite.t
(** Schema-versioned report ({!Hdd_benchkit.Jsonlite.with_schema}). *)

val pp : Format.formatter -> result -> unit
