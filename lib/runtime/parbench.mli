(** Scaling benchmark for the parallel runtime ([hdd_cli bench
    --parallel]).

    Runs the untraced closed-loop engine ({!Engine.run_timed}) on a
    chain hierarchy at increasing worker-domain counts and reports, per
    point: transaction throughput, cross-class (Protocol A) read rate,
    commit-latency quantiles, and wall-release count and lag.  The
    headline figure is [scaling_1_to_4]: the Protocol A read-rate ratio
    between the 4-worker and 1-worker points — the paper's
    coordination-free cross-class reads should scale near-linearly,
    which a 4-core runner checks in CI ([BENCH_parallel.json]). *)

type point = {
  b_workers : int;
  b_elapsed_s : float;
  b_committed : int;
  b_aborted : int;
  b_txn_per_s : float;
  b_reads_a : int;
  b_reads_a_per_s : float;
  b_reads_b : int;
  b_reads_c : int;
  b_writes : int;
  b_wall_releases : int;
  b_wall_lag_mean : float;  (** ticks between anchor and release *)
  b_wall_lag_max : int;
  b_lat_p50_us : float;
  b_lat_p95_us : float;
  b_lat_p99_us : float;
}

type result = {
  r_points : point list;
  r_scaling_1_to_4 : float option;
      (** reads_a/s at 4 workers over 1 worker, when both ran *)
  r_depth : int;
  r_seconds_per_point : float;
  r_seed : int;
}

val run :
  ?workers_list:int list ->
  ?depth:int ->
  ?seconds:float ->
  ?seed:int ->
  unit ->
  result
(** Defaults: workers [[1; 2; 4]] extended with [Domain
    .recommended_domain_count () - 1] when that exceeds 4, chain depth
    8, 1.0 s per point, seed 42. *)

val to_json : result -> Hdd_benchkit.Jsonlite.t
(** Schema-versioned report ({!Hdd_benchkit.Jsonlite.with_schema}). *)

val pp : Format.formatter -> result -> unit
